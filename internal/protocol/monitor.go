// Package protocol implements the paper's monitoring algorithms — the
// EXISTENCE-based violation handling (Section 3), the exact monitor of
// Corollary 3.3, the TOP-K-PROTOCOL of Section 4, DENSEPROTOCOL and
// SUBPROTOCOL of Section 5.2, the Theorem 5.8 controller, the Corollary 5.9
// half-error monitor, and two baselines — all against the engine-neutral
// cluster interface.
package protocol

import (
	"fmt"
	"sort"

	"topkmon/internal/cluster"
	"topkmon/internal/filter"
	"topkmon/internal/wire"
)

// Monitor is a continuous ε-Top-k monitoring algorithm driven by the
// simulation: Start runs once after the first observations; HandleStep runs
// after each subsequent observation and must leave the nodes with a valid
// filter set and the server with a correct output.
type Monitor interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Start initialises the first epoch.
	Start()
	// HandleStep processes the current time step to quiescence.
	HandleStep()
	// Output returns the current output F(t) as node ids.
	Output() []int
	// Epochs returns how many epochs (phases between guaranteed OPT
	// messages) have started; used by competitive-ratio experiments.
	Epochs() int64
}

// maxViolationsPerStep bounds the violation-processing loop; exceeding it
// means a protocol failed to quiesce, which is a bug, not a data condition.
func maxViolationsPerStep(n int) int { return 1000 + 200*n }

// drainViolations repeatedly detects and dispatches violations until the
// cluster is quiescent.
func drainViolations(c cluster.Cluster, handle func(wire.Report)) {
	limit := maxViolationsPerStep(c.N())
	for i := 0; ; i++ {
		if i > limit {
			panic(fmt.Sprintf("protocol: violation processing did not quiesce after %d violations", i))
		}
		rep, ok := c.DetectViolation()
		if !ok {
			return
		}
		handle(rep)
	}
}

// ids extracts the node ids of reports, sorted ascending.
func ids(reps []wire.Report) []int {
	out := make([]int, len(reps))
	for i, r := range reps {
		out[i] = r.ID
	}
	sort.Ints(out)
	return out
}

// resetAllTags returns a rule retagging every tag to the given one; chained
// With calls then define the fresh filters.
func resetAllTags(to wire.Tag) *wire.FilterRule {
	r := wire.NewFilterRule()
	for t := wire.Tag(0); t < wire.NumTags; t++ {
		r.WithRetag(t, to)
	}
	return r
}

// ruleScratch holds the reusable broadcast rules of a two-sided protocol.
// Engines apply a rule fully before BroadcastRule returns (see
// cluster.Cluster), so reusing the same rule object across broadcasts keeps
// steady-state filter updates allocation-free.
type ruleScratch struct {
	assign   *wire.FilterRule // retag-everything epoch opener
	retarget *wire.FilterRule // in-epoch two-filter update
}

// assignTwoSided resets the whole cluster to TagRest with the rest filter
// (one broadcast), then unicasts TagOut with the out filter to each output
// node — the standard two-filter epoch opening of Prop. 2.4-style protocols.
func (rs *ruleScratch) assignTwoSided(c cluster.Cluster, out []int, fOut, fRest filter.Interval) {
	if rs.assign == nil {
		rs.assign = resetAllTags(wire.TagRest)
	}
	c.BroadcastRule(rs.assign.With(wire.TagRest, fRest))
	for _, id := range out {
		c.SetTagFilter(id, wire.TagOut, fOut)
	}
}

// retargetTwoSided updates both filters of an ongoing two-sided epoch with a
// single broadcast.
func (rs *ruleScratch) retargetTwoSided(c cluster.Cluster, fOut, fRest filter.Interval) {
	if rs.retarget == nil {
		rs.retarget = wire.NewFilterRule()
	}
	c.BroadcastRule(rs.retarget.With(wire.TagOut, fOut).With(wire.TagRest, fRest))
}

// pow2Sat returns 2^x saturated to stay well below filter.Inf.
func pow2Sat(x int) int64 {
	if x >= 60 {
		return 1 << 60
	}
	return int64(1) << uint(x)
}

// satAdd adds two non-negative int64s, saturating below filter.Inf.
func satAdd(a, b int64) int64 {
	s := a + b
	if s < 0 || s >= filter.Inf {
		return filter.Inf - 1
	}
	return s
}
