package protocol

import (
	"fmt"

	"topkmon/internal/cluster"
	"topkmon/internal/eps"
	"topkmon/internal/wire"
)

// Approx is the Theorem 5.8 controller: per epoch it probes the k+1 largest
// values; if the (k+1)-st is clearly below the k-th the output is unique and
// TOP-K-PROTOCOL runs, otherwise DENSEPROTOCOL handles the dense
// ε-neighborhood. After either terminates, the controller probes and
// decides again. Its competitiveness against an offline optimum with the
// same error ε is O(σ² log(εv_k) + σ log²(εv_k) + log log Δ + log 1/ε).
type Approx struct {
	c cluster.Cluster
	k int
	e eps.Eps

	topk  *TopKProto
	dense *Dense

	inDense bool
	epochs  int64

	// AfterHandle, when set, runs after every processed violation (test
	// instrumentation for invariant checking).
	AfterHandle func(rep wire.Report)
}

// NewApprox wires the two sub-protocols to the controller.
func NewApprox(c cluster.Cluster, k int, e eps.Eps) *Approx {
	if k < 1 || k >= c.N() {
		panic(fmt.Sprintf("protocol: Approx needs 1 ≤ k < n, got k=%d n=%d", k, c.N()))
	}
	if e.IsZero() {
		panic("protocol: Approx needs ε > 0; use ExactMid for the exact problem")
	}
	a := &Approx{c: c, k: k, e: e}
	a.topk = NewTopKProto(c, k, e)
	a.dense = NewDense(c, k, e)
	a.topk.OnEpochEnd = a.startEpoch
	a.dense.OnEpochEnd = a.startEpoch
	a.dense.OnSwitchTopK = func() {
		a.inDense = false
		a.topk.StartWithProbe(TopM(a.c, a.k+1))
	}
	return a
}

// Name implements Monitor.
func (a *Approx) Name() string { return "approx-controller" }

// Epochs implements Monitor: the sum of sub-protocol epochs, each of which
// forces at least one OPT message by Theorems 4.5 and Lemma 5.7.
func (a *Approx) Epochs() int64 { return a.topk.Epochs() + a.dense.Epochs() }

// DenseEpochs returns how many epochs ran DENSEPROTOCOL.
func (a *Approx) DenseEpochs() int64 { return a.dense.Epochs() }

// DenseState exposes the dense sub-protocol for test instrumentation.
func (a *Approx) DenseState() *Dense { return a.dense }

// InDense reports whether DENSEPROTOCOL currently runs.
func (a *Approx) InDense() bool { return a.inDense }

// SubCalls returns the number of SUBPROTOCOL invocations.
func (a *Approx) SubCalls() int64 { return a.dense.SubCalls }

// Output implements Monitor.
func (a *Approx) Output() []int {
	if a.inDense {
		return a.dense.Output()
	}
	return a.topk.Output()
}

// Start implements Monitor.
func (a *Approx) Start() { a.startEpoch() }

func (a *Approx) startEpoch() {
	a.epochs++
	reps := TopM(a.c, a.k+1)
	vk, vk1 := reps[a.k-1].Value, reps[a.k].Value
	if a.e.ClearlyBelow(vk1, vk) {
		a.inDense = false
		a.topk.StartWithProbe(reps)
	} else {
		a.inDense = true
		a.dense.StartWithProbe(reps)
	}
}

// HandleStep implements Monitor, routing each violation to whichever
// sub-protocol currently runs (the mode may flip mid-drain).
func (a *Approx) HandleStep() {
	drainViolations(a.c, func(rep wire.Report) {
		if a.inDense {
			a.dense.Handle(rep)
		} else {
			a.topk.Handle(rep)
		}
		if a.AfterHandle != nil {
			a.AfterHandle(rep)
		}
	})
}
