// Package scenario declaratively describes a monitoring run — nodes,
// workload, algorithm, error, duration — as JSON, so experiments can be
// shipped, replayed, and diffed without code. cmd/topkmon runs them with
// -scenario; the package validates aggressively and builds the pieces from
// the same factories the rest of the system uses.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"

	"topkmon/internal/cluster"
	"topkmon/internal/eps"
	"topkmon/internal/protocol"
	"topkmon/internal/stream"
)

// Workload parameterises a generator.
type Workload struct {
	Kind string `json:"kind"` // walk | jumps | oscillator | loads | climber | descender | lowerbound
	// Common knobs (interpretation per kind; zero values take defaults).
	Start     int64   `json:"start,omitempty"`
	Step      int64   `json:"step,omitempty"`
	Max       int64   `json:"max,omitempty"`
	Lo        int64   `json:"lo,omitempty"`
	Hi        int64   `json:"hi,omitempty"`
	Top       int     `json:"top,omitempty"`
	Dense     int     `json:"dense,omitempty"`
	Low       int     `json:"low,omitempty"`
	Base      int64   `json:"base,omitempty"`
	Amplitude int64   `json:"amplitude,omitempty"`
	BurstProb float64 `json:"burstProb,omitempty"`
	BurstSize int64   `json:"burstSize,omitempty"`
	Sigma     int     `json:"sigma,omitempty"`
	Y0        int64   `json:"y0,omitempty"`
}

// Spec is a complete scenario.
type Spec struct {
	Name     string   `json:"name"`
	N        int      `json:"n"`
	K        int      `json:"k"`
	EpsNum   int64    `json:"epsNum"`
	EpsDen   int64    `json:"epsDen"`
	Steps    int      `json:"steps"`
	Seed     uint64   `json:"seed"`
	Monitor  string   `json:"monitor"` // approx | topk | exact-mid | half-eps | naive | mid-naive
	Workload Workload `json:"workload"`
}

// Parse reads and validates a JSON scenario.
func Parse(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks structural constraints before any construction.
func (s *Spec) Validate() error {
	if s.N < 2 {
		return fmt.Errorf("scenario: n must be ≥ 2, got %d", s.N)
	}
	if s.K < 1 || s.K >= s.N {
		return fmt.Errorf("scenario: need 1 ≤ k < n, got k=%d n=%d", s.K, s.N)
	}
	if s.Steps < 1 {
		return fmt.Errorf("scenario: steps must be ≥ 1, got %d", s.Steps)
	}
	if s.EpsDen == 0 {
		s.EpsDen = 1
	}
	if _, err := eps.New(s.EpsNum, s.EpsDen); err != nil {
		return err
	}
	switch s.Monitor {
	case "approx", "topk", "half-eps":
		if s.EpsNum == 0 {
			return fmt.Errorf("scenario: monitor %q needs ε > 0", s.Monitor)
		}
	case "exact-mid", "naive", "mid-naive":
	default:
		return fmt.Errorf("scenario: unknown monitor %q", s.Monitor)
	}
	switch s.Workload.Kind {
	case "walk", "jumps", "oscillator", "loads", "climber", "descender", "lowerbound":
	default:
		return fmt.Errorf("scenario: unknown workload %q", s.Workload.Kind)
	}
	return nil
}

// Eps returns the scenario's error.
func (s *Spec) Eps() eps.Eps {
	e, err := eps.New(s.EpsNum, s.EpsDen)
	if err != nil {
		panic(err) // Validate ran first
	}
	return e
}

// orDefault returns v, or d when v is zero.
func orDefault[T int | int64 | float64](v, d T) T {
	if v == 0 {
		return d
	}
	return v
}

// BuildGenerator constructs the workload.
func (s *Spec) BuildGenerator() (stream.Generator, error) {
	w := s.Workload
	switch w.Kind {
	case "walk":
		return stream.NewWalk(s.N, orDefault(w.Start, 10000), orDefault(w.Step, 100),
			orDefault(w.Max, 1<<20), s.Seed+100), nil
	case "jumps":
		lo := w.Lo
		hi := orDefault(w.Hi, 100000)
		if hi <= lo {
			return nil, fmt.Errorf("scenario: jumps needs hi > lo")
		}
		return stream.NewJumps(s.N, lo, hi, s.Seed+100), nil
	case "oscillator":
		top := orDefault(w.Top, s.K-1)
		low := orDefault(w.Low, s.N/4)
		dense := s.N - top - low
		if dense < 1 {
			return nil, fmt.Errorf("scenario: oscillator splits leave no dense nodes")
		}
		base := orDefault(w.Base, int64(10000))
		return stream.NewOscillator(top, dense, low, base,
			orDefault(w.Amplitude, base/20), base*64, base/64, s.Seed+100), nil
	case "loads":
		return stream.NewLoads(s.N, orDefault(w.Base, 1000), orDefault(w.Amplitude, 40),
			orDefault(w.BurstProb, 0.01), orDefault(w.BurstSize, 4000),
			orDefault(w.Max, 1<<20), s.Seed+100), nil
	case "climber":
		rest := s.N - s.K - 1
		if rest < 1 {
			return nil, fmt.Errorf("scenario: climber needs n ≥ k+2")
		}
		return stream.NewClimber(s.K, rest, orDefault(w.Top64(), int64(1<<20))), nil
	case "descender":
		rest := s.N - s.K - 1
		if rest < 1 {
			return nil, fmt.Errorf("scenario: descender needs n ≥ k+2")
		}
		return stream.NewDescender(s.K, rest, orDefault(w.Top64(), int64(1<<20))), nil
	case "lowerbound":
		sigma := orDefault(w.Sigma, s.K+2)
		rest := s.N - sigma
		if rest < 0 {
			return nil, fmt.Errorf("scenario: lowerbound σ=%d exceeds n=%d", sigma, s.N)
		}
		return stream.NewLowerBound(sigma, rest, s.K, s.Eps(), orDefault(w.Y0, 1<<20)), nil
	default:
		return nil, fmt.Errorf("scenario: unknown workload %q", w.Kind)
	}
}

// Top64 exposes the Top knob at int64 precision (climber/descender plateau).
func (w Workload) Top64() int64 {
	if w.Max != 0 {
		return w.Max
	}
	return int64(w.Top)
}

// BuildMonitor constructs the algorithm on a cluster.
func (s *Spec) BuildMonitor(c cluster.Cluster) (protocol.Monitor, error) {
	e := s.Eps()
	switch s.Monitor {
	case "approx":
		return protocol.NewApprox(c, s.K, e), nil
	case "topk":
		return protocol.NewTopKProto(c, s.K, e), nil
	case "exact-mid":
		return protocol.NewExactMid(c, s.K), nil
	case "half-eps":
		return protocol.NewHalfEps(c, s.K, e), nil
	case "naive":
		return protocol.NewNaive(c, s.K), nil
	case "mid-naive":
		return protocol.NewMidNaive(c, s.K), nil
	default:
		return nil, fmt.Errorf("scenario: unknown monitor %q", s.Monitor)
	}
}
