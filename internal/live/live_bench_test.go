package live

import (
	"testing"

	"topkmon/internal/cluster"
	"topkmon/internal/eps"
	"topkmon/internal/protocol"
	"topkmon/internal/stream"
	"topkmon/internal/wire"
)

// BenchmarkLiveStep measures the steady-state per-step cost of each monitor
// on the goroutine engine (n=64, k=8) — the live twin of the root
// BenchmarkMonitorStep. The step vectors are pre-generated outside the timed
// loop so the measurement isolates engine + monitor cost. With per-step
// batched directives and double-buffered responses the steady state must
// allocate nothing (asserted by TestLiveStepAllocs); goroutine wake-ups are
// the remaining cost over lockstep.
func BenchmarkLiveStep(b *testing.B) {
	const n, k = 64, 8
	const pregen = 1024
	e := eps.MustNew(1, 8)
	monitors := []struct {
		name string
		mk   func(cluster.Cluster) protocol.Monitor
	}{
		{"exact-mid", func(c cluster.Cluster) protocol.Monitor { return protocol.NewExactMid(c, k) }},
		{"topk", func(c cluster.Cluster) protocol.Monitor { return protocol.NewTopKProto(c, k, e) }},
		{"approx", func(c cluster.Cluster) protocol.Monitor { return protocol.NewApprox(c, k, e) }},
		{"half-eps", func(c cluster.Cluster) protocol.Monitor { return protocol.NewHalfEps(c, k, e) }},
		{"naive", func(c cluster.Cluster) protocol.Monitor { return protocol.NewNaive(c, k) }},
	}
	for _, m := range monitors {
		b.Run(m.name, func(b *testing.B) {
			gen := stream.NewWalk(n, 100000, 500, 1<<24, 13)
			steps := make([][]int64, pregen)
			for t := range steps {
				steps[t] = gen.Next(t)
			}
			eng := New(n, 5)
			defer eng.Close()
			mon := m.mk(eng)
			eng.Advance(steps[0])
			mon.Start()
			eng.EndStep()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Advance(steps[(i+1)%pregen])
				mon.HandleStep()
				eng.EndStep()
			}
		})
	}
}

// BenchmarkLiveSweepSilent measures the zero-violation fast path of the
// EXISTENCE sweep on the goroutine engine — the per-step floor every quiet
// time step pays (γ+1 barrier rounds of channel wake-ups).
func BenchmarkLiveSweepSilent(b *testing.B) {
	for _, n := range []int{64, 1024} {
		b.Run(benchName(n), func(b *testing.B) {
			c := New(n, 1)
			defer c.Close()
			c.Advance(make([]int64, n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := c.Sweep(wire.Violating()); got != nil {
					b.Fatal("unexpected senders")
				}
			}
		})
	}
}

func benchName(n int) string {
	if n == 64 {
		return "n=64"
	}
	return "n=1024"
}
