package vindex

import (
	"slices"
	"testing"

	"topkmon/internal/filter"
	"topkmon/internal/rngx"
)

// checkMirror verifies the mirror's full structural contract against
// reference value/filter vectors: the violator set holds exactly the ids
// whose value lies outside their filter, each exactly once, with pos/vio
// agreeing, and AppendViolators emits them in ascending id order.
func checkMirror(t *testing.T, m *Mirror, base int, vals []int64, flts []filter.Interval) {
	t.Helper()
	if m.Len() != len(vals) {
		t.Fatalf("mirror holds %d ids, want %d", m.Len(), len(vals))
	}
	want := 0
	for i := range vals {
		id := base + i
		wantVio := !flts[i].Contains(vals[i])
		if wantVio {
			want++
		}
		if m.Violating(id) != wantVio {
			t.Fatalf("Violating(%d) = %v, want %v (value %d filter %+v)",
				id, m.Violating(id), wantVio, vals[i], flts[i])
		}
		if m.Interval(id) != flts[i] {
			t.Fatalf("Interval(%d) = %+v, want %+v", id, m.Interval(id), flts[i])
		}
		if m.Value(id) != vals[i] {
			t.Fatalf("Value(%d) = %d, want %d", id, m.Value(id), vals[i])
		}
	}
	if m.NumViolating() != want {
		t.Fatalf("NumViolating = %d, want %d", m.NumViolating(), want)
	}
	for p, id := range m.vio {
		if m.pos[int(id)-base] != int32(p) {
			t.Fatalf("pos[%d] = %d, vio has it at %d", int(id)-base, m.pos[int(id)-base], p)
		}
	}
	got := m.AppendViolators(nil)
	if !slices.IsSorted(got) {
		t.Fatalf("AppendViolators not ascending: %v", got)
	}
	if len(got) != want {
		t.Fatalf("AppendViolators emitted %d ids, want %d", len(got), want)
	}
}

// TestMirrorRandomOps drives the mirror with random value and filter
// assignments (including the re-assign-same and empty-filter edges) and
// checks the violator set stays exact after every single operation.
func TestMirrorRandomOps(t *testing.T) {
	const base, n, ops = 7, 61, 4000
	r := rngx.New(99)
	m := NewMirror(base, n)
	vals := make([]int64, n)
	flts := make([]filter.Interval, n)
	for i := range flts {
		flts[i] = filter.All
	}
	checkMirror(t, m, base, vals, flts)

	for op := 0; op < ops; op++ {
		i := r.Intn(n)
		switch r.Intn(5) {
		case 0, 1: // value move (small domain to force in/out flips)
			v := r.Int63n(64)
			vals[i] = v
			m.SetValue(base+i, v)
		case 2: // narrow filter
			lo := r.Int63n(64)
			iv := filter.Make(lo, lo+r.Int63n(8))
			flts[i] = iv
			m.SetFilter(base+i, iv)
		case 3: // empty filter: everything violates
			iv := filter.Make(9, 3)
			flts[i] = iv
			m.SetFilter(base+i, iv)
		default: // all-admitting filter: nothing violates
			flts[i] = filter.All
			m.SetFilter(base+i, filter.All)
		}
		checkMirror(t, m, base, vals, flts)
	}

	m.Reset()
	clear(vals)
	for i := range flts {
		flts[i] = filter.All
	}
	checkMirror(t, m, base, vals, flts)
}

// TestMirrorAppendViolatorsReuses pins the zero-allocation contract of the
// sweep path: AppendViolators reuses dst capacity and sorts only its own
// suffix.
func TestMirrorAppendViolatorsReuses(t *testing.T) {
	m := NewMirror(0, 8)
	for _, id := range []int{6, 2, 4} {
		m.SetFilter(id, filter.Make(5, 5)) // value 0 → violating
	}
	buf := make([]int32, 1, 16)
	buf[0] = 99
	got := m.AppendViolators(buf)
	if &got[0] != &buf[0] {
		t.Error("AppendViolators reallocated despite sufficient capacity")
	}
	if want := []int32{99, 2, 4, 6}; !slices.Equal(got, want) {
		t.Errorf("AppendViolators = %v, want %v", got, want)
	}
}
