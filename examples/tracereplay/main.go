// Tracereplay: record a workload once, replay it byte-identically through
// two monitor configurations, and replay it again on the SAME monitor via
// Reset — the record/replay/compare loop a systems evaluation needs,
// entirely on the public topk API.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"topkmon/topk"
)

const (
	n     = 24
	k     = 4
	steps = 800
)

// record materialises a bursty load trace: per-node baseline, small jitter,
// occasional decaying bursts.
func record() [][]int64 {
	rng := rand.New(rand.NewSource(33))
	base := make([]int64, n)
	burst := make([]int64, n)
	for i := range base {
		base[i] = 1000 + rng.Int63n(2001)
	}
	trace := make([][]int64, steps)
	for t := range trace {
		row := make([]int64, n)
		for i := range row {
			if rng.Float64() < 0.005 {
				burst[i] += 4000 + rng.Int63n(8001)
			}
			burst[i] -= burst[i] / 4
			row[i] = base[i] + burst[i] + rng.Int63n(121) - 60
			if row[i] < 0 {
				row[i] = 0
			}
		}
		trace[t] = row
	}
	return trace
}

// replay pushes the recorded matrix through the monitor, one batch per
// recorded step, validating every output.
func replay(m *topk.Monitor, trace [][]int64) topk.Cost {
	batch := make([]topk.Update, n)
	for t, row := range trace {
		for i, v := range row {
			batch[i] = topk.Update{Node: i, Value: v}
		}
		if err := m.UpdateBatch(batch); err != nil {
			log.Fatal(err)
		}
		if err := m.Check(); err != nil {
			log.Fatalf("step %d: %v", t, err)
		}
	}
	return m.Cost()
}

func main() {
	e := topk.MustEpsilon(1, 8)

	// 1. Record once; both monitors see the identical data.
	trace := record()
	fmt.Printf("recorded %d steps × %d nodes\n\n", steps, n)

	// 2. Replay through two monitor configurations.
	run := func(algo topk.Algorithm) (topk.Cost, *topk.Monitor) {
		m, err := topk.New(k, e, topk.WithNodes(n), topk.WithSeed(5), topk.WithMonitor(algo))
		if err != nil {
			log.Fatal(err)
		}
		c := replay(m, trace)
		fmt.Printf("%-18s msgs=%7d  epochs=%4d  max rounds/step=%d  index fallbacks=%d\n",
			m.AlgorithmName(), c.Messages, m.Epochs(), c.MaxRoundsPerStep, c.IndexFallbacks)
		return c, m
	}
	approxCost, m := run(topk.Approx)
	naiveCost, mn := run(topk.Naive)
	mn.Close()

	fmt.Printf("\nthe filter protocol sent %.1fx fewer messages on the identical trace\n",
		float64(naiveCost.Messages)/float64(approxCost.Messages))

	// 3. Rewind the first monitor and replay the trace again: Reset(seed)
	// makes the rerun bit-identical to the first — the property replayable
	// evaluations depend on.
	if err := m.Reset(5); err != nil {
		log.Fatal(err)
	}
	again := replay(m, trace)
	m.Close()
	if again != approxCost {
		log.Fatalf("replay after Reset diverged:\nfirst  %+v\nsecond %+v", approxCost, again)
	}
	fmt.Printf("replay after Reset(seed): identical bill (%d messages) — runs are reproducible\n",
		again.Messages)
}
