package exp

import (
	"fmt"

	"topkmon/internal/metrics"
	istream "topkmon/internal/stream/items"
	"topkmon/topk"
	"topkmon/topk/items"
)

// E13HeavyHitters measures the sketch-backed ITEM monitoring layer end to
// end: per-node streaming summaries (Space-Saving, Misra-Gries,
// Count-Min) feed the ε-Top-k monitor with aggregated item estimates,
// and the table reports recall@k against exact ground truth as a
// function of the summary size, together with the protocol's message
// bill. The expected shape: recall climbs to ~1 once the per-node
// counter budget clears the trace's heavy-item count, while messages/step
// stay governed by the filter protocol, not by the event volume —
// constant-space summaries preserve top-k recall at a fraction of the
// state. Count-Min is the probabilistic outlier: its keeper can pin a
// collision-inflated item at tiny widths.
func E13HeavyHitters() Experiment {
	return Experiment{
		ID:    "E13",
		Title: "Sketch-backed item monitoring: recall@k vs summary size",
		Claim: "ROADMAP sketch-backed heavy-hitter scenarios: constant-space summaries (Space-Saving, Misra-Gries, Count-Min) preserve ε-Top-k item recall",
		Run: func(o Options) []*metrics.Table {
			const (
				nodes = 8
				m     = 256
				k     = 8
				s     = 1.1
			)
			perStep, steps := 1000, 40
			capacities := []int{16, 48, 128}
			if o.Quick {
				perStep, steps = 400, 15
				capacities = []int{16, 64}
			}
			kinds := []items.SketchKind{items.SpaceSaving, items.MisraGries, items.CountMin}

			type cellKey struct {
				kind items.SketchKind
				cap  int
			}
			grid := make([]cellKey, 0, len(kinds)*len(capacities))
			for _, kind := range kinds {
				for _, c := range capacities {
					grid = append(grid, cellKey{kind, c})
				}
			}

			type cell struct {
				recall   float64
				msgsStep float64
				kthEst   int64
				kthBound int64
			}
			cells := parMap(o, len(grid), func(i int) cell {
				g := grid[i]
				mon, err := items.New(items.Config{
					Nodes: nodes, Items: m, K: k,
					Epsilon: topk.MustEpsilon(1, 8),
					Sketch:  g.kind, Capacity: g.cap,
					Width: 4 * g.cap, Depth: 4, Track: g.cap,
					Seed: o.Seed + uint64(i),
				})
				if err != nil {
					panic(fmt.Sprintf("exp: E13 config: %v", err))
				}
				defer mon.Close()
				gen := istream.NewZipf(nodes, m, perStep, s, o.Seed+uint64(i)*1013)
				truth := istream.NewTruth(m)
				var evs []istream.Event
				for t := 0; t < steps; t++ {
					evs = gen.Next(t, evs[:0])
					for _, e := range evs {
						if err := mon.Observe(e.Node, e.Item, e.Count); err != nil {
							panic(fmt.Sprintf("exp: E13 observe: %v", err))
						}
					}
					truth.ObserveEvents(evs)
					if err := mon.Step(); err != nil {
						panic(fmt.Sprintf("exp: E13 step: %v", err))
					}
				}
				if err := mon.Check(); err != nil {
					panic(fmt.Sprintf("exp: E13 check: %v", err))
				}
				out := mon.TopItems(nil)
				var kthEst, kthBound int64
				if len(out) > 0 {
					kthEst, kthBound = mon.Estimate(out[len(out)-1])
				}
				cost := mon.Cost()
				return cell{
					recall:   truth.RecallAt(k, out),
					msgsStep: float64(cost.Messages) / float64(cost.Steps),
					kthEst:   kthEst,
					kthBound: kthBound,
				}
			})

			tb := metrics.NewTable(
				fmt.Sprintf("E13: recall@%d and message cost vs per-node summary size (zipf s=%.1f, m=%d, n=%d)", k, s, m, nodes),
				"sketch", "capacity", fmt.Sprintf("recall@%d", k), "msgs/step", "kth est", "kth bound")
			for i, g := range grid {
				c := cells[i]
				tb.AddRow(g.kind.String(), g.cap,
					fmt.Sprintf("%.3f", c.recall),
					fmt.Sprintf("%.1f", c.msgsStep),
					c.kthEst, c.kthBound)
			}
			return []*metrics.Table{tb}
		},
	}
}
