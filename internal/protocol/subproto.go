package protocol

import (
	"fmt"
	"slices"

	"topkmon/internal/filter"
	"topkmon/internal/wire"
)

// subState is the nested SUBPROTOCOL of Section 5.2, entered when some V2
// node has been observed both above u_r and below ℓ_r (it sits in S1∩S2, so
// DENSEPROTOCOL cannot decide whether it belongs to the optimal output).
// SUBPROTOCOL bisects L′ ⊆ [(1-ε)z, ℓ_r] — the lower part of the guess
// interval — until it either halves the outer L correctly or moves one node
// out of V2 into V1 or V3 (Lemma 5.6).
type subState struct {
	l     filter.Interval // L′
	round int
	s1    map[int]bool // S′1 (initialised to S1)
	s2    map[int]bool // S′2 (initialised to ∅)

	initiator int
	// lastDown is the last S′1∩S′2 node that violated downwards; it is the
	// node moved to V3 when L′ empties on an upper-half move.
	lastDown int
}

// lr is ℓ′_{r′}, the midpoint of L′.
func (s *subState) lr() int64 { return s.l.Mid() }

// ur is u′_{r′} = ⌊ℓ′_{r′}/(1-ε)⌋.
func (s *subState) ur(d *Dense) int64 { return d.e.GrowFloor(s.l.Mid()) }

// startSub opens SUBPROTOCOL for the S1∩S2 node initiator: L′ is the part
// of L at or below ℓ_r, S′1 copies S1, S′2 starts empty. One broadcast
// retags the disbanded S′2 view and installs the round-0 filters.
func (d *Dense) startSub(initiator int) {
	if d.Trace != nil {
		d.trace("startSub init=%d s1=%v s2=%v", initiator, sortedIDs(d.s1), sortedIDs(d.s2))
	}
	d.SubCalls++
	hi := d.lr()
	if hi > d.l.Hi {
		hi = d.l.Hi
	}
	s := &d.subStore
	if s.s1 == nil {
		s.s1, s.s2 = map[int]bool{}, map[int]bool{}
	}
	s.l = filter.Make(d.l.Lo, hi)
	s.round = 0
	copySetInto(s.s1, d.s1)
	clear(s.s2)
	s.initiator = initiator
	s.lastDown = -1
	d.sub = s
	rule := d.freshRoundRule().
		WithRetag(wire.TagV2S2, wire.TagV2).
		WithRetag(wire.TagV2S12, wire.TagV2S1)
	d.subRoundFilters(rule)
	d.c.BroadcastRule(rule)
	d.refreshOutput()
}

// subRoundFilters installs the SUBPROTOCOL step-2 filter table. V1 keeps its
// DENSE filter ("F′_i := F_i").
func (d *Dense) subRoundFilters(rule *wire.FilterRule) {
	s := d.sub
	lr := d.lr()
	slr, sur := s.lr(), s.ur(d)
	rule.With(wire.TagV2S1, filter.Make(lr, d.zUpper)).
		With(wire.TagV2S12, filter.Make(slr, d.zUpper)).
		With(wire.TagV2, filter.Make(lr, sur)).
		With(wire.TagV2S2, filter.Make(d.zLowC, sur)).
		With(wire.TagV3, filter.AtMost(sur))
}

// handleSub is the step-3 case analysis of SUBPROTOCOL.
func (d *Dense) handleSub(rep wire.Report) {
	gen := d.gen
	s := d.sub
	i := rep.ID
	switch {
	case d.v1[i]:
		// Case a: a V1 node fell below ℓ_r ⇒ terminate; the outer L
		// moves to its lower half.
		d.trace("S.a node=%d v=%d", i, rep.Value)
		d.subEnd()
		d.halveLower()
	case d.v3[i]:
		// Case a′: a V3 node rose above u′ ⇒ L′ → upper half, S′1 := S1.
		d.trace("S.a' node=%d v=%d", i, rep.Value)
		d.subUpperHalf()
	case s.s1[i] && s.s2[i]:
		if rep.Dir == filter.DirUp {
			// Case d.1: v > z/(1-ε) ⇒ i joins V1 and SUB terminates.
			d.trace("S.d1 node=%d v=%d", i, rep.Value)
			d.subEnd()
			d.moveToV1(i)
		} else {
			// Case d.2: v < ℓ′ ⇒ L′ → lower half, S′2 := ∅.
			d.trace("S.d2 node=%d v=%d", i, rep.Value)
			s.lastDown = i
			d.subLowerHalf(i)
		}
	case s.s1[i]:
		if rep.Dir == filter.DirUp {
			// Case c.1: v > z/(1-ε) ⇒ move i to V1 (SUB continues).
			d.trace("S.c1 node=%d v=%d", i, rep.Value)
			d.moveToV1(i)
		} else {
			// Case c.2: i joins S′2, entering S′1∩S′2.
			d.trace("S.c2 node=%d v=%d", i, rep.Value)
			s.s2[i] = true
			d.c.SetTagFilter(i, wire.TagV2S12, filter.Make(s.lr(), d.zUpper))
			d.refreshOutput()
		}
	case s.s2[i]:
		if rep.Dir == filter.DirDown {
			// Case c′.1: v < (1-ε)z ⇒ move i to V3 (SUB continues).
			d.trace("S.c'1 node=%d v=%d", i, rep.Value)
			d.moveToV3(i)
		} else {
			// Case c′.2: i joins S′1, entering S′1∩S′2.
			d.trace("S.c'2 node=%d v=%d", i, rep.Value)
			s.s1[i] = true
			d.c.SetTagFilter(i, wire.TagV2S12, filter.Make(s.lr(), d.zUpper))
			d.refreshOutput()
		}
	case d.v2[i]:
		if rep.Dir == filter.DirUp {
			// Case b: v > u′.
			if len(d.v1)+len(s.s1)+1 > d.k {
				// b.1: more than k nodes certified above.
				d.trace("S.b1 node=%d v=%d", i, rep.Value)
				d.subUpperHalf()
			} else {
				// b.2: record i in S′1.
				d.trace("S.b2 node=%d v=%d", i, rep.Value)
				s.s1[i] = true
				d.c.SetTagFilter(i, wire.TagV2S1, filter.Make(d.lr(), d.zUpper))
				d.refreshOutput()
			}
		} else {
			// Case b′: v < ℓ_r.
			if len(d.v3)+len(s.s2)+1 > d.c.N()-d.k {
				// b′.1: terminate; outer L → lower half.
				d.trace("S.b'1 node=%d v=%d", i, rep.Value)
				d.subEnd()
				d.halveLower()
			} else {
				// b′.2: record i in S′2.
				d.trace("S.b'2 node=%d v=%d", i, rep.Value)
				s.s2[i] = true
				d.c.SetTagFilter(i, wire.TagV2S2, filter.Make(d.zLowC, s.ur(d)))
				d.refreshOutput()
			}
		}
	default:
		panic(fmt.Sprintf("protocol: sub violation from unclassified node %d", i))
	}
	if d.gen != gen || !d.active {
		return
	}
	d.checkSubTopKSwitch()
	if d.gen != gen || !d.active {
		return
	}
	d.maybeReenterSub()
}

// subUpperHalf implements cases a′ and b.1: L′ → upper half and S′1 := S1.
// If L′ empties, SUB terminates moving the last S′1∩S′2 down-violator (or
// the initiator) to V3 — it observed a value below every surviving ℓ*
// candidate, so it cannot be in F* (Lemma 5.6).
func (d *Dense) subUpperHalf() {
	d.trace("subUpperHalf L'=%v", d.sub.l)
	s := d.sub
	s.l = s.l.UpperHalf()
	// Reset S′1 to S1: nodes recorded above an older, lower u′ lose that
	// certification (their tag reverts per their S′2 status).
	reverting := d.idBuf[:0]
	for i := range s.s1 {
		if !d.s1[i] {
			reverting = append(reverting, i)
		}
	}
	slices.Sort(reverting)
	d.idBuf = reverting
	for _, i := range reverting {
		if s.s2[i] {
			d.c.SetTagFilter(i, wire.TagV2S2, filter.Make(d.zLowC, s.ur(d)))
		} else {
			d.c.SetTagFilter(i, wire.TagV2, filter.Make(d.lr(), s.ur(d)))
		}
	}
	copySetInto(s.s1, d.s1)
	if s.l.Empty() {
		victim := s.lastDown
		if victim < 0 || !d.v2[victim] {
			victim = s.initiator
		}
		d.subEnd()
		if d.v2[victim] {
			d.moveToV3(victim)
		} else {
			d.refreshOutput()
		}
		return
	}
	s.round++
	rule := d.freshRoundRule()
	d.subRoundFilters(rule)
	d.c.BroadcastRule(rule)
	d.refreshOutput()
}

// subLowerHalf implements case d.2: L′ → lower half and S′2 := ∅. If L′
// empties, SUB terminates moving the violator to V3.
func (d *Dense) subLowerHalf(violator int) {
	d.trace("subLowerHalf L'=%v violator=%d", d.sub.l, violator)
	s := d.sub
	s.l = s.l.LowerHalf()
	if s.l.Empty() {
		// Terminate before disbanding S′2: subEnd diffs the primed sets
		// against the DENSE sets to restore tags, so they must still
		// describe the tags physically on the nodes.
		d.subEnd()
		if d.v2[violator] {
			d.moveToV3(violator)
		} else {
			d.refreshOutput()
		}
		return
	}
	clear(s.s2)
	s.round++
	rule := d.freshRoundRule().
		WithRetag(wire.TagV2S2, wire.TagV2).
		WithRetag(wire.TagV2S12, wire.TagV2S1)
	d.subRoundFilters(rule)
	d.c.BroadcastRule(rule)
	d.refreshOutput()
}

// subEnd closes SUBPROTOCOL: it restores every V2 node's tag to its
// DENSE-level classification (unicasts for the differing ones) and
// rebroadcasts the DENSE round filters so V3/V2 filters widen back from u′
// to u_r.
func (d *Dense) subEnd() {
	if d.Trace != nil {
		d.trace("subEnd s1'=%v s2'=%v", sortedIDs(d.sub.s1), sortedIDs(d.sub.s2))
	}
	s := d.sub
	d.sub = nil
	d.idBuf = sortedInto(d.idBuf, d.v2)
	for _, i := range d.idBuf {
		cur := classTag(s.s1[i], s.s2[i])
		want := classTag(d.s1[i], d.s2[i])
		if cur != want {
			d.c.SetTagFilter(i, want, d.denseFilterFor(want))
		}
	}
	rule := d.freshRoundRule()
	d.roundFilters(rule)
	d.c.BroadcastRule(rule)
}

// classTag maps S1/S2 membership to the node tag.
func classTag(inS1, inS2 bool) wire.Tag {
	switch {
	case inS1 && inS2:
		return wire.TagV2S12
	case inS1:
		return wire.TagV2S1
	case inS2:
		return wire.TagV2S2
	default:
		return wire.TagV2
	}
}

// denseFilterFor returns the DENSE step-2 filter for a tag. S1∩S2 nodes
// have no DENSE filter — SUBPROTOCOL is re-entered for them immediately —
// so they transiently hold the widest neighborhood interval.
func (d *Dense) denseFilterFor(t wire.Tag) filter.Interval {
	lr, ur := d.lr(), d.ur()
	switch t {
	case wire.TagV1:
		return filter.AtLeast(lr)
	case wire.TagV2S1:
		return filter.Make(lr, d.zUpper)
	case wire.TagV2S2:
		return filter.Make(d.zLowC, ur)
	case wire.TagV2S12:
		return filter.Make(d.zLowC, d.zUpper)
	case wire.TagV3:
		return filter.AtMost(ur)
	default:
		return filter.Make(lr, ur)
	}
}

// checkSubTopKSwitch is SUBPROTOCOL's case e, identical in spirit to the
// DENSE case (d) check but over the primed sets.
func (d *Dense) checkSubTopKSwitch() {
	s := d.sub
	if s == nil {
		return
	}
	if !intersects(s.s1, s.s2) && len(d.v1)+len(s.s1) == d.k && len(d.v3)+len(s.s2) == d.c.N()-d.k {
		d.subEnd()
		d.switchTopK()
	}
}

// maybeReenterSub re-invokes SUBPROTOCOL while an S1∩S2 node remains
// unresolved at the DENSE level (DESIGN.md interpretation 9): every SUB run
// either halves L (disbanding one S-side, emptying the intersection) or
// moves a node out of V2, so re-entry terminates.
func (d *Dense) maybeReenterSub() {
	d.trace("maybeReenterSub active=%v sub=%v", d.active, d.sub != nil)
	if !d.active || d.sub != nil {
		return
	}
	// Pick the smallest-id unresolved S1∩S2 node (the first hit of the
	// former sorted iteration) without materialising the sorted list.
	best := -1
	for i := range d.s1 {
		if d.s2[i] && (best < 0 || i < best) {
			best = i
		}
	}
	if best >= 0 {
		d.startSub(best)
	}
}
