package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// eventJSON is the SSE payload: a 1:1 rendering of topk.Event.
type eventJSON struct {
	Step   int64      `json:"step"`
	TopK   []int      `json:"topk"`
	Health healthJSON `json:"health"`
}

// handleEvents bridges Monitor.Subscribe onto Server-Sent Events: every
// facade Event (top-k-set change, or health change on a fault-armed
// tenant) becomes one "change" SSE frame. The bridge preserves the
// facade's delivery contract — the step loop never blocks on a consumer:
// a slow subscriber drops events at the facade's subscription buffer, and
// only this handler's goroutine ever waits on the client connection. On
// disconnect the subscription is removed (Monitor.Unsubscribe), on tenant
// Close/Delete the channel closes and the stream ends.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusNotImplemented, fmt.Errorf("serve: response writer cannot stream"))
		return
	}

	ch := t.Mon.Subscribe()
	defer t.Mon.Unsubscribe(ch)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	// An initial comment line commits the headers so clients observe the
	// stream as established before the first event.
	fmt.Fprintf(w, ": subscribed tenant=%s\n\n", t.Name)
	flusher.Flush()

	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case ev, open := <-ch:
			if !open {
				return
			}
			data, err := json.Marshal(eventJSON{
				Step: ev.Step,
				TopK: ev.TopK,
				Health: healthJSON{
					State:    ev.Health.State.String(),
					StaleFor: ev.Health.StaleFor,
				},
			})
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: change\nid: %d\ndata: %s\n\n", ev.Step, data); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}
