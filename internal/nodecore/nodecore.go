// Package nodecore implements the node-local state and behaviour shared by
// the deterministic lockstep engine and the concurrent goroutine engine.
//
// A node owns: its current stream value, its assigned filter, a protocol tag
// (V1/V2/S1-style set membership, updated by server messages), and a
// max-find activation flag. All server-visible behaviour is driven through
// Apply* message handlers and the EXISTENCE send schedule, so the two
// engines cannot diverge in node logic.
//
// Nodes are built for reuse: New allocates the node and its RNG stream
// once; Reset rewinds both in place to the state New would construct for a
// given root source, so engine Reset (trial reuse in the experiment
// harness) allocates nothing on the node side. Handlers never allocate —
// the per-step zero-allocation budget of both engines rests on that.
//
// State-mutation contract: Observe and Reset are the ONLY operations that
// change Node.Value, and SetFilter, ApplyFilterRule, and Reset the only
// ones that change Node.Filter. The engines rely on this to keep their
// value-bucket indexes and filter-interval mirrors (internal/vindex)
// consistent — they re-index a node exactly at those points — so any new
// mutation of Value or Filter must notify the owning engine's structures
// as well. In particular, harness code must never mutate a node reached
// through an engine's white-box Node accessor; it assigns filters through
// the engine's SetFilter instead.
package nodecore

import (
	"math/bits"

	"topkmon/internal/filter"
	"topkmon/internal/rngx"
	"topkmon/internal/wire"
)

// Node is the state of one distributed node.
type Node struct {
	ID     int
	Value  int64
	Filter filter.Interval
	Tag    wire.Tag

	// MFActive marks participation in the current max-find run.
	MFActive bool
	// MFExcluded marks a node already returned by a previous max-find run
	// of the same top-m computation; it sits out until a resetting init.
	MFExcluded bool

	// RNG drives the node's EXISTENCE coin flips.
	RNG *rngx.Source
}

// New returns a node with the all-admitting filter and its own child RNG.
func New(id int, seed *rngx.Source) *Node {
	return &Node{
		ID:     id,
		Filter: filter.All,
		Tag:    wire.TagNone,
		RNG:    seed.Child(uint64(id)),
	}
}

// Reset returns the node to the state New(nd.ID, root) would construct:
// value 0, the all-admitting filter, no tag, no max-find participation, and
// the RNG rewound to the child stream New would have derived from root. It
// reuses the node's Source, so engine Reset stays allocation-free on the
// node side.
func (nd *Node) Reset(root *rngx.Source) {
	nd.Value = 0
	nd.Filter = filter.All
	nd.Tag = wire.TagNone
	nd.MFActive = false
	nd.MFExcluded = false
	nd.RNG.Reseed(root.ChildSeed(uint64(nd.ID)))
}

// Observe sets the node's current value (the next stream element).
func (nd *Node) Observe(v int64) { nd.Value = v }

// Violation classifies the node's value against its filter.
func (nd *Node) Violation() filter.Direction { return nd.Filter.Violation(nd.Value) }

// Match evaluates a broadcastable predicate against node-local state.
func (nd *Node) Match(p wire.Pred) bool {
	switch p.Kind {
	case wire.PredViolating:
		return nd.Violation() != filter.DirNone
	case wire.PredAboveActive:
		return nd.MFActive && nd.Value > p.X
	case wire.PredInRange:
		return nd.Value >= p.X && nd.Value <= p.Y
	case wire.PredHasTag:
		return nd.Tag == p.Tag
	default:
		return false
	}
}

// ApplyFilterRule first retags the node per the rule, then derives its
// filter from its (possibly new) tag. Nodes whose tag the rule does not
// define keep their current filter.
func (nd *Node) ApplyFilterRule(r *wire.FilterRule) {
	nd.Tag, nd.Filter = r.Apply(nd.Tag, nd.Filter)
}

// SetFilter applies a unicast filter assignment.
func (nd *Node) SetFilter(iv filter.Interval) { nd.Filter = iv }

// SetTag applies a unicast tag change.
func (nd *Node) SetTag(t wire.Tag) { nd.Tag = t }

// MaxFindInit (broadcast) re-activates the node for a fresh max-find run
// when its value exceeds the announced floor; nodes at or below deactivate.
// With reset, prior exclusions (found maxima) are forgotten, starting a new
// top-m computation.
func (nd *Node) MaxFindInit(floor int64, reset bool) {
	if reset {
		nd.MFExcluded = false
	}
	nd.MFActive = !nd.MFExcluded && nd.Value > floor
}

// MaxFindRaise (broadcast) announces a new best (holder, value); the holder
// and every node not exceeding the value drop out.
func (nd *Node) MaxFindRaise(holder int, best int64) {
	if nd.ID == holder || nd.Value <= best {
		nd.MFActive = false
	}
}

// MaxFindExclude (broadcast) permanently benches the named node until the
// next resetting init; used to find the (j+1)-st largest after the j-th.
func (nd *Node) MaxFindExclude(id int) {
	if nd.ID == id {
		nd.MFExcluded = true
		nd.MFActive = false
	}
}

// ExistenceRounds returns γ = ⌈log₂ n⌉, the number of probabilistic rounds
// of the EXISTENCE protocol (Lemma 3.1). Round γ sends with probability 1.
func ExistenceRounds(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// ExistenceSend decides whether a node holding a 1 sends in round r of the
// EXISTENCE protocol over n nodes: independently with probability
// p_r = 2^r / n, and with certainty in the final round.
func (nd *Node) ExistenceSend(r, n int) bool {
	if r >= ExistenceRounds(n) {
		return true
	}
	p := float64(uint64(1)<<uint(r)) / float64(n)
	return nd.RNG.Bool(p)
}
