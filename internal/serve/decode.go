package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/url"
	"strconv"

	"topkmon/topk"
)

// ErrBatchTooLarge rejects a batch exceeding the server's per-request
// update limit before it is fully decoded.
var ErrBatchTooLarge = errors.New("serve: batch exceeds update limit")

// updateJSON is the wire shape of one update. Pointer fields distinguish
// "absent" from a legitimate zero, so a half-specified element is rejected
// instead of silently defaulting.
type updateJSON struct {
	Node  *int   `json:"node"`
	Value *int64 `json:"value"`
}

// DecodeBatch strictly decodes an update batch — a JSON array of
// {"node": int, "value": int64} objects — appending to dst[:0] and reusing
// its capacity. It is all-or-nothing by construction: any error (malformed
// JSON, unknown or missing fields, numeric overflow, more than max
// elements, trailing data after the array) returns a nil batch, so a
// handler can never partially apply a bad request. Range validation of
// node ids and values stays with Monitor.UpdateBatch, which itself
// validates the whole batch before staging anything.
func DecodeBatch(r io.Reader, dst []topk.Update, max int) ([]topk.Update, error) {
	dst = dst[:0]
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()

	tok, err := dec.Token()
	if err != nil {
		return nil, fmt.Errorf("serve: batch: %w", err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '[' {
		return nil, fmt.Errorf("serve: batch must be a JSON array, got %v", tok)
	}
	for dec.More() {
		if len(dst) >= max {
			return nil, fmt.Errorf("%w (max %d)", ErrBatchTooLarge, max)
		}
		var u updateJSON
		if err := dec.Decode(&u); err != nil {
			return nil, fmt.Errorf("serve: batch element %d: %w", len(dst), err)
		}
		if u.Node == nil || u.Value == nil {
			return nil, fmt.Errorf("serve: batch element %d: need both \"node\" and \"value\"", len(dst))
		}
		dst = append(dst, topk.Update{Node: *u.Node, Value: *u.Value})
	}
	if _, err := dec.Token(); err != nil { // the closing ']'
		return nil, fmt.Errorf("serve: batch: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, errors.New("serve: trailing data after batch array")
	}
	return dst, nil
}

// ParseIngestID extracts the idempotency parameters of an update request:
// ?client= names the retrying client (any short string; "" is a valid
// single-client identity) and ?seq= is its positive sequence number. seq
// absent or 0 means "no idempotency requested" — the batch always commits
// a fresh step. A seq that is present but unparsable is a client bug and
// is rejected rather than silently committed without idempotency.
func ParseIngestID(q url.Values) (client string, seq uint64, err error) {
	client = q.Get("client")
	if len(client) > 128 {
		return "", 0, errors.New("serve: client id longer than 128 bytes")
	}
	raw := q.Get("seq")
	if raw == "" {
		return client, 0, nil
	}
	seq, err = strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return "", 0, fmt.Errorf("serve: seq: %w", err)
	}
	return client, seq, nil
}
