package sketch

import "fmt"

// MisraGries is the classic deterministic frequent-items summary with c
// counters: an untracked arrival with no free counter decrements every
// counter (and the arrival) by the feasible minimum, dropping counters
// that reach zero. The total decrement any single item can have suffered
// is tracked exactly in decrs, which yields (for true count f(x)):
//
//	Estimate(x) <= f(x)                       (never over-estimates)
//	Estimate(x) + decrs >= f(x)               (exact undercount bound)
//	ErrorBound() = decrs <= Total()/(c+1)     (the epsilon*N bound)
//
// Weighted arrivals (delta > 1) are absorbed in decrement rounds of the
// feasible minimum each, so Observe is O(c) worst case and allocation-free.
type MisraGries struct {
	cap   int
	cnt   []int64
	item  []uint64
	n     int
	total int64
	decrs int64

	idx oaTable
	ord heavyOrder
}

// NewMisraGries returns a Misra-Gries summary with capacity counters
// (capacity >= 1).
func NewMisraGries(capacity int) *MisraGries {
	if capacity < 1 {
		panic("sketch: MisraGries capacity must be >= 1")
	}
	m := &MisraGries{
		cap:  capacity,
		cnt:  make([]int64, capacity),
		item: make([]uint64, capacity),
		idx:  newOATable(capacity),
	}
	m.ord = heavyOrder{order: make([]int32, 0, capacity), cnt: m.cnt, item: m.item}
	return m
}

// Name implements Summary.
func (m *MisraGries) Name() string { return fmt.Sprintf("misra-gries(c=%d)", m.cap) }

// Total implements Summary.
func (m *MisraGries) Total() int64 { return m.total }

// ErrorBound implements Summary: the exact cumulative decrement — no item
// is under-counted by more.
func (m *MisraGries) ErrorBound() int64 { return m.decrs }

// Observe implements Summary.
func (m *MisraGries) Observe(item uint64, delta int64) {
	if delta <= 0 {
		return
	}
	m.total += delta
	for delta > 0 {
		if slot := m.idx.get(item); slot >= 0 {
			m.cnt[slot] += delta
			return
		}
		if m.n < m.cap {
			slot := int32(m.n)
			m.n++
			m.cnt[slot] = delta
			m.item[slot] = item
			m.idx.put(item, slot)
			return
		}
		// No counter free: decrement everything (and the arrival) by the
		// feasible minimum, freeing zeroed counters by swap-compaction.
		d := delta
		for s := 0; s < m.n; s++ {
			if m.cnt[s] < d {
				d = m.cnt[s]
			}
		}
		m.decrs += d
		delta -= d
		for s := 0; s < m.n; {
			m.cnt[s] -= d
			if m.cnt[s] == 0 {
				m.idx.del(m.item[s])
				last := m.n - 1
				if s != last {
					// Move the (not-yet-decremented) last counter into the
					// hole and re-examine slot s without advancing, so the
					// loop applies its decrement too.
					m.cnt[s] = m.cnt[last]
					m.item[s] = m.item[last]
					m.idx.put(m.item[s], int32(s))
				}
				m.n = last
				continue
			}
			s++
		}
	}
}

// Estimate implements Summary: a tracked item's counter under-estimates by
// at most decrs; an untracked item's true count is at most decrs.
func (m *MisraGries) Estimate(item uint64) (est, bound int64) {
	if slot := m.idx.get(item); slot >= 0 {
		return m.cnt[slot], m.decrs
	}
	return 0, m.decrs
}

// Heavy implements Summary. Per-counter Err is the shared decrement bound.
func (m *MisraGries) Heavy(k int, dst []Counter) []Counter {
	dst = appendHeavy(&m.ord, m.n, k, dst, nil)
	for i := range dst {
		dst[i].Err = m.decrs
	}
	return dst
}

// Reset implements Summary (deterministic; the seed only honors the
// rewind contract).
func (m *MisraGries) Reset(uint64) {
	m.n = 0
	m.total = 0
	m.decrs = 0
	m.idx.clear()
}
