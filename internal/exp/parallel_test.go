package exp

import (
	"strings"
	"testing"
)

// renderAll runs an experiment and renders every table to one string.
func renderAll(t *testing.T, e Experiment, o Options) string {
	t.Helper()
	tables := e.Run(o)
	if len(tables) == 0 {
		t.Fatalf("%s produced no tables", e.ID)
	}
	var b strings.Builder
	for _, tb := range tables {
		b.WriteString(tb.String())
		b.WriteString(tb.CSV())
	}
	return b.String()
}

// TestParallelRunsAreDeterministic asserts the worker-pool fan-out is
// invisible in the output: for every experiment, Parallelism 4 produces
// byte-identical tables to Parallelism 1 under the same seed.
func TestParallelRunsAreDeterministic(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			seq := renderAll(t, e, Options{Quick: true, Seed: 3, Parallelism: 1})
			par := renderAll(t, e, Options{Quick: true, Seed: 3, Parallelism: 4})
			if seq != par {
				t.Fatalf("%s: parallel tables differ from sequential\n--- P=1 ---\n%s\n--- P=4 ---\n%s",
					e.ID, seq, par)
			}
		})
	}
}

// TestParMapOrderAndCoverage pins the worker-pool contract: every index is
// computed exactly once and results land in index order.
func TestParMapOrderAndCoverage(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		o := Options{Parallelism: workers}
		got := parMap(o, 100, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: index %d got %d, want %d", workers, i, v, i*i)
			}
		}
	}
	if out := parMap(Options{Parallelism: 8}, 0, func(i int) int { return i }); len(out) != 0 {
		t.Fatalf("empty input produced %d results", len(out))
	}
}
