package stream

import (
	"testing"

	"topkmon/internal/eps"
	"topkmon/internal/filter"
)

func TestDescenderShape(t *testing.T) {
	g := NewDescender(3, 5, 1<<20)
	if g.N() != 9 {
		t.Fatalf("N = %d", g.N())
	}
	if g.Name() == "" {
		t.Error("empty name")
	}
	first := g.Next(0)
	// The designated descender is the lowest plateau node.
	if first[2] != 1<<20+2 {
		t.Fatalf("descender home = %d, want %d", first[2], 1<<20+2)
	}
	for i := 0; i < 3; i++ {
		if first[i] <= 1<<20 {
			t.Fatalf("plateau node %d at %d", i, first[i])
		}
	}
}

// TestDescenderChasesFilterLo: each step the descender drops one below its
// filter's lower endpoint; when fenced on the rest side it restores.
func TestDescenderChasesFilterLo(t *testing.T) {
	g := NewDescender(2, 3, 1<<16)
	n := g.N()
	g.Next(0)
	filters := make([]filter.Interval, n)
	for i := range filters {
		filters[i] = filter.All
	}
	// Simulate a bisecting monitor fencing the descender (node 1) from
	// below at successive midpoints.
	lo := int64(1 << 15)
	for step := 1; step <= 3; step++ {
		filters[1] = filter.AtLeast(lo)
		g.ObserveFilters(filters, nil)
		vals := g.Next(step)
		if vals[1] != lo-1 {
			t.Fatalf("step %d: descender at %d, want %d", step, vals[1], lo-1)
		}
		lo /= 2
	}
	// Monitor gives up separating: rest-side filter with a low cap.
	filters[1] = filter.AtMost(100)
	g.ObserveFilters(filters, nil)
	vals := g.Next(4)
	if vals[1] != g.plateau {
		t.Fatalf("expected restore to %d, got %d", g.plateau, vals[1])
	}
	if g.Cycles != 1 {
		t.Fatalf("Cycles = %d", g.Cycles)
	}
}

// TestDescenderHoldsWithoutSeparator: with no meaningful lower bound and
// the value still at the plateau, the descender waits.
func TestDescenderHoldsWithoutSeparator(t *testing.T) {
	g := NewDescender(2, 3, 1<<16)
	n := g.N()
	first := g.Next(0)
	filters := make([]filter.Interval, n)
	for i := range filters {
		filters[i] = filter.All // lo = 0 everywhere
	}
	g.ObserveFilters(filters, nil)
	vals := g.Next(1)
	if vals[1] != first[1] {
		t.Fatalf("descender moved without a separator: %d → %d", first[1], vals[1])
	}
}

func TestDescenderValidatesArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("rest=0 must panic")
		}
	}()
	NewDescender(1, 0, 1<<16)
}

func TestDescenderLowPlateauPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("tiny plateau must panic")
		}
	}()
	NewDescender(2, 3, 10)
}

func TestClimberLowPlateauPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("tiny plateau must panic")
		}
	}()
	NewClimber(2, 3, 10)
}

func TestDistinctForwardsAdaptivity(t *testing.T) {
	inner := NewLowerBound(5, 1, 2, eps.MustNew(1, 4), 1<<16)
	g := Distinct{Inner: inner}
	filters := make([]filter.Interval, g.N())
	for i := range filters {
		filters[i] = filter.AtLeast(1)
	}
	g.ObserveFilters(filters, []int{0, 1})
	if inner.filters == nil {
		t.Error("Distinct did not forward ObserveFilters")
	}
	// A non-adaptive inner is a no-op, not a crash.
	g2 := Distinct{Inner: NewJumps(4, 0, 9, 1)}
	g2.ObserveFilters(filters[:4], nil)
}
