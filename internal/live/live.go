// Package live implements the cluster interface with genuinely concurrent
// workers communicating over channels — the protocols running against a
// "distributed" cluster rather than a sequential loop.
//
// # Worker shards
//
// The engine runs m ≪ n worker goroutines (m defaults to GOMAXPROCS,
// configurable with WithShards), each owning a contiguous shard of roughly
// n/m nodes. Model nodes are thereby decoupled from OS-level concurrency: a
// directive that used to wake n goroutines now wakes m workers, each of
// which executes the directive over its own nodes sequentially — the fix
// for the n = 10⁴ step cost where every quiet step paid n channel wake-ups
// per barrier round. One goroutine per node is the m = n special case.
//
// Each shard also owns a value-bucket partition and a filter-interval
// mirror (internal/vindex) over its nodes, maintained incrementally as the
// directives mutating node state execute: Collect and EXISTENCE-sweep
// rounds consult wire.Pred.Bounds and visit only the shard's plausible
// matchers, violation sweeps visit exactly the shard's mirrored violator
// set, falling back to the full shard scan for tag predicates or
// domain-covering intervals. Server-side work per response-bearing round is
// O(m + matches) — workers publish their matches into per-shard report
// lists which the server concatenates in shard order — instead of scanning
// all n response slots.
//
// # Batched directives
//
// The server does not send one channel message per node per directive.
// Instead it appends directives to a pending batch and flushes the batch as
// one barrier round: a single signal per participating worker, after which
// each worker walks the shared batch, executes the directives addressed to
// its shard in order, publishes replies (per-shard report lists for
// Collect/sweep rounds; per-node slots for Probe and Inspector snapshots),
// and decrements an atomic countdown whose last holder wakes the server.
// Directives that need no answer (Advance, BroadcastRule, SetFilter,
// SetTagFilter, MaxFind*, Reset) are deferred — they ride along with the
// next response-bearing flush — so a typical time step pays one barrier for
// Advance + the first sweep round combined instead of one per directive.
// Per-node execution order equals call order, so deferral is semantically
// invisible.
//
// The batch, the report lists, the response slots, and the slices returned
// by Collect/Sweep are all engine-owned and reused, mirroring the lockstep
// engine's buffers: the steady state allocates nothing (asserted by
// TestLiveStepAllocs and tracked by BenchmarkLiveStep). Report-slice
// ownership follows the cluster.Cluster contract — a Collect result
// survives exactly one further Collect, a Sweep result only until the next
// Sweep.
//
// # Semantics
//
// Semantics match the lockstep engine exactly: a flush is a synchronous
// round (the barrier realises the model's rounds; barrier tokens are
// simulation scaffolding and carry no message cost). Workers visit their
// candidate nodes in ascending id order and shards cover ascending id
// ranges, so concatenated reports are in id order; node-side randomness is
// consumed only by matching nodes, exactly as in lockstep. A live run with
// the same seed therefore reproduces the lockstep run's counters and
// outputs bit for bit — for every shard count — asserted by the
// cross-engine equivalence tests up to n = 10⁴ and the sharded conformance
// and Reset suites.
package live

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"topkmon/internal/eps"
	"topkmon/internal/filter"
	"topkmon/internal/metrics"
	"topkmon/internal/nodecore"
	"topkmon/internal/rngx"
	"topkmon/internal/vindex"
	"topkmon/internal/wire"
)

type dirKind uint8

const (
	dirAdvance   dirKind = iota // per-node values in Cluster.advVals
	dirApplyRule                // rule at Cluster.rules[ruleIdx]
	dirSetFilter
	dirSetTagFilter
	dirProbe
	dirCollect
	dirExistRound
	dirMaxInit
	dirMaxRaise
	dirMaxExclude
	dirSnapshot
	dirReset
	dirStop
)

// allNodes as a directive target addresses every worker.
const allNodes = -1

// serverRNG is the Child id of the server-side randomness stream, shared
// with the lockstep engine so both derive identical server coin flips from
// the same seed.
const serverRNG = 0xC0FFEE

type directive struct {
	kind    dirKind
	target  int // node id, or allNodes
	value   int64
	ruleIdx int
	iv      filter.Interval
	tag     wire.Tag
	pred    wire.Pred
	round   int
	reset   bool
	holder  int
	best    int64
	seed    uint64
}

// response is one node's answer slot for Probe and Inspector snapshots;
// slot i is written only by the worker owning node i during a flush and
// read only by the server after it. Collect and sweep-round replies go
// through the per-shard report lists instead, so quiet rounds touch no
// slots at all.
type response struct {
	report wire.Report
	// snapshot fields (Inspector scaffolding)
	value int64
	filt  filter.Interval
	tag   wire.Tag
}

// shard is the node range one worker goroutine owns: the nodes themselves,
// the value-bucket partition + filter-interval mirror + routing scratch
// over them (vindex.Router, the same routing policy the lockstep engine
// uses — the mirror is updated by the same directive that mutates the
// node, on the owning worker, so it can never desync), and
// the report list the worker publishes matches into. sweepScan caches the
// routed scan list across one sweep's EXISTENCE rounds: values cannot
// change mid-sweep, so rounds > 0 reuse round 0's candidates instead of
// re-sorting them γ times.
type shard struct {
	base      int // id of nodes[0]; the shard covers [base, base+len(nodes))
	nodes     []*nodecore.Node
	router    vindex.Router
	sweepScan []*nodecore.Node
	out       []wire.Report // this flush's Collect/sweep replies, id order
}

// node returns the shard's node with the given absolute id.
func (sh *shard) node(id int) *nodecore.Node { return sh.nodes[id-sh.base] }

// config collects construction options.
type config struct {
	shards int
}

// Option configures the engine at construction.
type Option func(*config)

// WithShards sets the number of worker goroutines (shards) the engine runs.
// Each worker owns a contiguous range of roughly n/m nodes and its own
// value-bucket partition. Any m ≤ 0 (including the default 0) means
// runtime.GOMAXPROCS(0); values above n are clamped to n. The shard count
// never affects observable behaviour — outputs, counters, and coin flips
// are bit-identical for every value (asserted by the sharded conformance
// and equivalence tests) — it only trades goroutine parallelism against
// wake-up cost.
func WithShards(m int) Option {
	return func(c *config) { c.shards = m }
}

// Cluster is the sharded concurrent engine.
type Cluster struct {
	n    int
	m    int // worker (shard) count
	ctr  *metrics.Counters
	rng  *rngx.Source
	maxV int64

	shards   []*shard
	workerOf []int32 // node id → owning worker index

	// Pending batch. The server owns these between flushes; workers read
	// them (and only them) during a flush. advPending coalesces repeated
	// Advance calls into one directive — only when no other directive was
	// pushed in between, because deferred directives may read node values
	// at execution time (see Advance).
	pend       []directive
	rules      []wire.FilterRule
	advVals    []int64
	advPending bool

	// Flush delivery: per-worker signal channels, an atomic countdown, and
	// one completion channel the last worker signals. touched/touchedIDs
	// track which workers a unicast-only batch must wake; a broadcast
	// directive sets allTouched instead.
	sig        []chan struct{}
	remaining  atomic.Int64
	done       chan struct{}
	touched    []bool
	touchedIDs []int
	allTouched bool

	// resp holds one slot per node, indexed by id, for Probe replies and
	// Inspector snapshots.
	resp []response

	// Report buffers mirroring the lockstep engine's ownership contract:
	// sweepBuf backs Sweep results (recycled by the next Sweep), the
	// double-buffered collectBufs let a Collect result survive exactly one
	// further Collect.
	sweepBuf    []wire.Report
	collectBufs [2][]wire.Report
	collectIdx  int

	wg    sync.WaitGroup
	alive bool
}

// DefaultShards returns the worker-shard policy New applies when WithShards
// is not given (or is ≤ 0): one worker per schedulable CPU, i.e.
// GOMAXPROCS at construction time. New additionally clamps the count to n.
// Exported so harnesses (the bench-env stamp in the root test suite) can
// record the actual policy instead of duplicating it.
func DefaultShards() int { return runtime.GOMAXPROCS(0) }

// New starts the engine's worker goroutines over n nodes.
func New(n int, seed uint64, opts ...Option) *Cluster {
	if n < 1 {
		panic("live: need at least one node")
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	m := cfg.shards
	if m <= 0 {
		m = DefaultShards()
	}
	if m > n {
		m = n
	}
	root := rngx.New(seed)
	c := &Cluster{
		n:          n,
		m:          m,
		ctr:        metrics.NewCounters(),
		rng:        root.Child(serverRNG),
		maxV:       1,
		shards:     make([]*shard, m),
		workerOf:   make([]int32, n),
		advVals:    make([]int64, n),
		sig:        make([]chan struct{}, m),
		done:       make(chan struct{}, 1),
		touched:    make([]bool, m),
		touchedIDs: make([]int, 0, m),
		resp:       make([]response, n),
		alive:      true,
	}
	// Contiguous near-equal shards: the first n%m shards get one extra node.
	q, r := n/m, n%m
	base := 0
	for w := 0; w < m; w++ {
		size := q
		if w < r {
			size++
		}
		sh := &shard{
			base:  base,
			nodes: make([]*nodecore.Node, size),
			router: vindex.Router{
				Idx: vindex.New(base, size),
				Mir: vindex.NewMirror(base, size),
			},
		}
		for i := range sh.nodes {
			sh.nodes[i] = nodecore.New(base+i, root)
			c.workerOf[base+i] = int32(w)
		}
		c.shards[w] = sh
		c.sig[w] = make(chan struct{}, 1)
		base += size
		c.wg.Add(1)
		go c.worker(w, sh)
	}
	return c
}

// Shards returns the worker (shard) count m.
func (c *Cluster) Shards() int { return c.m }

// worker is one shard's goroutine: it owns the shard's node and index state
// and, once per flush it participates in, executes the pending directives
// addressed to its shard in batch order.
func (c *Cluster) worker(w int, sh *shard) {
	defer c.wg.Done()
	mine := int32(w)
	for range c.sig[w] {
		stop := false
		sh.out = sh.out[:0]
		for i := range c.pend {
			d := &c.pend[i]
			switch d.kind {
			case dirAdvance:
				for _, nd := range sh.nodes {
					nd.Observe(c.advVals[nd.ID])
					sh.router.Idx.Update(nd.ID, nd.Value)
					sh.router.Mir.SetValue(nd.ID, nd.Value)
				}
			case dirApplyRule:
				for _, nd := range sh.nodes {
					nd.ApplyFilterRule(&c.rules[d.ruleIdx])
					sh.router.Mir.SetFilter(nd.ID, nd.Filter)
				}
			case dirSetFilter:
				if c.workerOf[d.target] == mine {
					sh.node(d.target).SetFilter(d.iv)
					sh.router.Mir.SetFilter(d.target, d.iv)
				}
			case dirSetTagFilter:
				if c.workerOf[d.target] == mine {
					nd := sh.node(d.target)
					nd.SetTag(d.tag)
					nd.SetFilter(d.iv)
					sh.router.Mir.SetFilter(d.target, d.iv)
				}
			case dirProbe:
				if c.workerOf[d.target] == mine {
					nd := sh.node(d.target)
					c.resp[d.target].report = wire.Report{ID: nd.ID, Value: nd.Value, Dir: nd.Violation()}
				}
			case dirCollect:
				for _, nd := range sh.router.ScanList(d.pred, sh.nodes, sh.base) {
					if nd.Match(d.pred) {
						sh.out = append(sh.out, wire.Report{ID: nd.ID, Value: nd.Value, Dir: nd.Violation()})
					}
				}
			case dirExistRound:
				// Candidates are stable across one sweep's rounds (values
				// only move on Advance, which cannot interleave with a
				// running Sweep), so only round 0 routes the predicate.
				if d.round == 0 {
					sh.sweepScan = sh.router.ScanList(d.pred, sh.nodes, sh.base)
				}
				for _, nd := range sh.sweepScan {
					if nd.Match(d.pred) && nd.ExistenceSend(d.round, c.n) {
						sh.out = append(sh.out, wire.Report{ID: nd.ID, Value: nd.Value, Dir: nd.Violation()})
					}
				}
			case dirMaxInit:
				for _, nd := range sh.nodes {
					nd.MaxFindInit(d.value, d.reset)
				}
			case dirMaxRaise:
				for _, nd := range sh.nodes {
					nd.MaxFindRaise(d.holder, d.best)
				}
			case dirMaxExclude:
				for _, nd := range sh.nodes {
					nd.MaxFindExclude(d.holder)
				}
			case dirSnapshot:
				for _, nd := range sh.nodes {
					r := &c.resp[nd.ID]
					r.value = nd.Value
					r.filt = nd.Filter
					r.tag = nd.Tag
				}
			case dirReset:
				// ChildSeed derivation is pure, so one root per shard
				// rewinds every node exactly as a per-node root would.
				root := rngx.New(d.seed)
				for _, nd := range sh.nodes {
					nd.Reset(root)
				}
				sh.router.Idx.Reset()
				sh.router.Mir.Reset()
			case dirStop:
				stop = true
			}
		}
		if c.remaining.Add(-1) == 0 {
			c.done <- struct{}{}
		}
		if stop {
			return
		}
	}
}

// push appends a directive to the pending batch and records which workers
// the next flush must wake.
func (c *Cluster) push(d directive) {
	if d.target == allNodes {
		c.allTouched = true
	} else if w := c.workerOf[d.target]; !c.allTouched && !c.touched[w] {
		c.touched[w] = true
		c.touchedIDs = append(c.touchedIDs, int(w))
	}
	c.pend = append(c.pend, d)
}

// flush delivers the pending batch to every touched worker in one signal
// each and blocks until all of them have executed it — the engine's barrier
// round. The server's writes to the batch happen-before the workers'
// reads (signal channel send/receive); every worker's response writes
// happen-before the server resumes (atomic countdown observed by the last
// worker, whose completion send the server receives).
func (c *Cluster) flush() {
	if len(c.pend) == 0 {
		return
	}
	if c.allTouched {
		c.remaining.Store(int64(c.m))
		for _, ch := range c.sig {
			ch <- struct{}{}
		}
	} else {
		c.remaining.Store(int64(len(c.touchedIDs)))
		for _, w := range c.touchedIDs {
			c.sig[w] <- struct{}{}
		}
	}
	<-c.done
	for _, w := range c.touchedIDs {
		c.touched[w] = false
	}
	c.touchedIDs = c.touchedIDs[:0]
	c.allTouched = false
	c.advPending = false
	c.pend = c.pend[:0]
	c.rules = c.rules[:0]
}

// Close stops all worker goroutines. Pending deferred directives are
// executed first; the cluster is unusable afterwards.
func (c *Cluster) Close() {
	if !c.alive {
		return
	}
	c.alive = false
	c.push(directive{kind: dirStop, target: allNodes})
	c.flush()
	c.wg.Wait()
}

// Reset implements cluster.Cluster: it rewinds the engine — every node, the
// shard indexes, the counters, and the server RNG — to the state
// New(n, seed) constructs, keeping the workers, batch, and report buffers.
// The directive is deferred like any other non-response mutation. A reset
// engine replays a fresh engine's run bit for bit (asserted by the Reset
// property tests, including the sharded configurations).
func (c *Cluster) Reset(seed uint64) {
	root := rngx.New(seed)
	c.ctr.Reset()
	c.rng.Reseed(root.ChildSeed(serverRNG))
	c.maxV = 1
	c.push(directive{kind: dirReset, target: allNodes, seed: seed})
}

// N implements cluster.Cluster.
func (c *Cluster) N() int { return c.n }

// Counters implements cluster.Cluster.
func (c *Cluster) Counters() *metrics.Counters { return c.ctr }

// Rand implements cluster.Cluster.
func (c *Cluster) Rand() *rngx.Source { return c.rng }

func (c *Cluster) count(ch metrics.Channel, k wire.Kind) {
	c.ctr.Count(ch, k.String(), wire.MsgBits(k, c.n, c.maxV))
}

// Advance implements cluster.Inspector. The values are copied into the
// engine-owned batch and installed by the next flush; callers may reuse
// their slice immediately.
func (c *Cluster) Advance(values []int64) {
	if len(values) != c.n {
		panic(fmt.Sprintf("live: Advance with %d values for %d nodes", len(values), c.n))
	}
	for i, v := range values {
		if v < 0 || v > eps.MaxValue {
			panic(fmt.Sprintf("live: value %d for node %d out of range", v, i))
		}
		if v > c.maxV {
			c.maxV = v
		}
	}
	if c.advPending && c.pend[len(c.pend)-1].kind != dirAdvance {
		// Directives pushed since the pending Advance (MaxFindInit,
		// MaxFindRaise) read node values at execution time; flush so they
		// observe the earlier values, as call order promises. Coalescing
		// (below) is only safe when the pending Advance is still the last
		// directive — then nothing could have read the overwritten values.
		c.flush()
	}
	copy(c.advVals, values)
	if !c.advPending {
		c.advPending = true
		c.push(directive{kind: dirAdvance, target: allNodes})
	}
}

// EndStep implements cluster.Inspector.
func (c *Cluster) EndStep() { c.ctr.EndStep() }

// snapshot flushes a snapshot round; afterwards c.resp holds every node's
// (value, filter, tag) in id order.
func (c *Cluster) snapshot() {
	c.push(directive{kind: dirSnapshot, target: allNodes})
	c.flush()
}

// Values implements cluster.Inspector.
func (c *Cluster) Values() []int64 {
	return c.ValuesInto(make([]int64, 0, c.n))
}

// ValuesInto implements cluster.Inspector: one snapshot flush, then a copy
// out of the response slots into dst's reused capacity.
func (c *Cluster) ValuesInto(dst []int64) []int64 {
	c.snapshot()
	dst = dst[:0]
	for i := range c.resp {
		dst = append(dst, c.resp[i].value)
	}
	return dst
}

// Filters implements cluster.Inspector.
func (c *Cluster) Filters() []filter.Interval {
	return c.FiltersInto(make([]filter.Interval, 0, c.n))
}

// FiltersInto implements cluster.Inspector.
func (c *Cluster) FiltersInto(dst []filter.Interval) []filter.Interval {
	c.snapshot()
	dst = dst[:0]
	for i := range c.resp {
		dst = append(dst, c.resp[i].filt)
	}
	return dst
}

// Tags implements cluster.Inspector.
func (c *Cluster) Tags() []wire.Tag {
	c.snapshot()
	out := make([]wire.Tag, c.n)
	for i := range c.resp {
		out[i] = c.resp[i].tag
	}
	return out
}

// BroadcastRule implements cluster.Cluster. The rule is copied into the
// engine-owned batch, so the caller may mutate and reuse it immediately —
// the contract's "fully applied on return" holds observably because every
// read of node state flushes first.
func (c *Cluster) BroadcastRule(rule *wire.FilterRule) {
	c.count(metrics.Broadcast, wire.KindFilterRule)
	c.ctr.Rounds(1)
	c.rules = append(c.rules, *rule)
	c.push(directive{kind: dirApplyRule, target: allNodes, ruleIdx: len(c.rules) - 1})
}

// SetFilter implements cluster.Cluster.
func (c *Cluster) SetFilter(id int, iv filter.Interval) {
	c.count(metrics.ServerToNode, wire.KindSetFilter)
	c.push(directive{kind: dirSetFilter, target: id, iv: iv})
}

// SetTagFilter implements cluster.Cluster.
func (c *Cluster) SetTagFilter(id int, t wire.Tag, iv filter.Interval) {
	c.count(metrics.ServerToNode, wire.KindSetFilter)
	c.push(directive{kind: dirSetTagFilter, target: id, tag: t, iv: iv})
}

// Probe implements cluster.Cluster.
func (c *Cluster) Probe(id int) wire.Report {
	c.count(metrics.ServerToNode, wire.KindProbeRequest)
	c.count(metrics.NodeToServer, wire.KindProbeReply)
	c.ctr.Rounds(1)
	c.push(directive{kind: dirProbe, target: id})
	c.flush()
	return c.resp[id].report
}

// Collect implements cluster.Cluster. Results alternate between two
// engine-owned buffers, honouring the Cluster contract that a Collect
// result survives exactly one further Collect. Workers route the scan
// through their shard's value index; the server concatenates the per-shard
// match lists in shard order (= id order), so gather cost is O(m + matches)
// rather than O(n).
func (c *Cluster) Collect(p wire.Pred) []wire.Report {
	c.count(metrics.Broadcast, wire.KindCollect)
	c.ctr.Rounds(1)
	if !vindex.Routable(p) {
		// Predicate-only decision, billed server-side so the count is
		// bit-identical to the lockstep engine's for equal call sequences.
		c.ctr.IndexFallback()
	}
	c.push(directive{kind: dirCollect, target: allNodes, pred: p})
	c.flush()
	out := c.collectBufs[c.collectIdx][:0]
	for _, sh := range c.shards {
		for _, rep := range sh.out {
			c.count(metrics.NodeToServer, wire.KindCollectReply)
			out = append(out, rep)
		}
	}
	c.collectBufs[c.collectIdx] = out
	c.collectIdx ^= 1
	return out
}

// Sweep implements cluster.Cluster: the EXISTENCE protocol of Lemma 3.1,
// one batched barrier per probabilistic round. The returned slice is backed
// by the engine-owned sweep buffer and recycled by the next Sweep.
func (c *Cluster) Sweep(p wire.Pred) []wire.Report {
	if !vindex.Routable(p) {
		// One fallback per sweep (the scan list is routed once and reused
		// across rounds), matching the lockstep engine's accounting.
		c.ctr.IndexFallback()
	}
	gamma := nodecore.ExistenceRounds(c.n)
	for r := 0; r <= gamma; r++ {
		c.ctr.Rounds(1)
		c.push(directive{kind: dirExistRound, target: allNodes, pred: p, round: r})
		c.flush()
		senders := c.sweepBuf[:0]
		for _, sh := range c.shards {
			for _, rep := range sh.out {
				c.count(metrics.NodeToServer, wire.KindExistenceReport)
				senders = append(senders, rep)
			}
		}
		c.sweepBuf = senders[:0]
		if len(senders) > 0 {
			c.count(metrics.Broadcast, wire.KindHalt)
			return senders
		}
	}
	return nil
}

// DetectViolation implements cluster.Cluster.
func (c *Cluster) DetectViolation() (wire.Report, bool) {
	senders := c.Sweep(wire.Violating())
	if len(senders) == 0 {
		return wire.Report{}, false
	}
	return senders[c.rng.Intn(len(senders))], true
}

// MaxFindInit implements cluster.Cluster.
func (c *Cluster) MaxFindInit(floor int64, reset bool) {
	c.count(metrics.Broadcast, wire.KindMaxFindInit)
	c.ctr.Rounds(1)
	c.push(directive{kind: dirMaxInit, target: allNodes, value: floor, reset: reset})
}

// MaxFindRaise implements cluster.Cluster.
func (c *Cluster) MaxFindRaise(holder int, best int64) {
	c.count(metrics.Broadcast, wire.KindMaxFindRaise)
	c.ctr.Rounds(1)
	c.push(directive{kind: dirMaxRaise, target: allNodes, holder: holder, best: best})
}

// MaxFindExclude implements cluster.Cluster.
func (c *Cluster) MaxFindExclude(id int) {
	c.count(metrics.Broadcast, wire.KindMaxFindExclude)
	c.ctr.Rounds(1)
	c.push(directive{kind: dirMaxExclude, target: allNodes, holder: id})
}
