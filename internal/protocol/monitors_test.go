package protocol_test

import (
	"testing"

	"topkmon/internal/cluster"
	"topkmon/internal/eps"
	"topkmon/internal/lockstep"
	"topkmon/internal/oracle"
	"topkmon/internal/protocol"
	"topkmon/internal/rngx"
	"topkmon/internal/stream"
	"topkmon/internal/wire"
)

func TestConstructorValidation(t *testing.T) {
	e := lockstep.New(4, 1)
	eOK := eps.MustNew(1, 4)
	cases := []struct {
		name string
		fn   func()
	}{
		{"exactmid k=0", func() { protocol.NewExactMid(e, 0) }},
		{"exactmid k=n", func() { protocol.NewExactMid(e, 4) }},
		{"topk k=n", func() { protocol.NewTopKProto(e, 4, eOK) }},
		{"dense eps=0", func() { protocol.NewDense(e, 2, eps.Zero) }},
		{"approx eps=0", func() { protocol.NewApprox(e, 2, eps.Zero) }},
		{"halfeps eps=0", func() { protocol.NewHalfEps(e, 2, eps.Zero) }},
		{"midnaive k=n", func() { protocol.NewMidNaive(e, 4) }},
		{"naive k>n", func() { protocol.NewNaive(e, 5) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			c.fn()
		})
	}
}

func TestNaiveAllowsKEqualsN(t *testing.T) {
	e := lockstep.New(3, 1)
	e.Advance([]int64{3, 2, 1})
	m := protocol.NewNaive(e, 3)
	m.Start()
	if len(m.Output()) != 3 {
		t.Errorf("output %v", m.Output())
	}
}

func TestMonitorNames(t *testing.T) {
	e := lockstep.New(8, 1)
	eOK := eps.MustNew(1, 4)
	monitors := []protocol.Monitor{
		protocol.NewExactMid(e, 2),
		protocol.NewTopKProto(e, 2, eOK),
		protocol.NewDense(e, 2, eOK),
		protocol.NewApprox(e, 2, eOK),
		protocol.NewHalfEps(e, 2, eOK),
		protocol.NewNaive(e, 2),
		protocol.NewMidNaive(e, 2),
	}
	seen := map[string]bool{}
	for _, m := range monitors {
		if m.Name() == "" || seen[m.Name()] {
			t.Errorf("monitor name %q empty or duplicate", m.Name())
		}
		seen[m.Name()] = true
	}
}

// TestMonitorsOnExtremeValues drives monitors over degenerate streams: all
// zeros, all equal, max-range values, and single-step alternations.
func TestMonitorsOnExtremeValues(t *testing.T) {
	const n, k = 6, 2
	e := eps.MustNew(1, 4)
	streams := map[string][][]int64{
		"all-zero":  {{0, 0, 0, 0, 0, 0}, {0, 0, 0, 0, 0, 0}, {0, 0, 0, 0, 0, 0}},
		"all-equal": {{7, 7, 7, 7, 7, 7}, {7, 7, 7, 7, 7, 7}},
		"max-range": {
			{eps.MaxValue, 0, eps.MaxValue / 2, 1, 2, 3},
			{0, eps.MaxValue, 1, eps.MaxValue / 2, 3, 2},
		},
		"flip-flop": {
			{100, 1, 1, 1, 1, 1}, {1, 100, 1, 1, 1, 1},
			{1, 1, 100, 1, 1, 1}, {1, 1, 1, 100, 1, 1},
		},
	}
	mks := map[string]func(cluster.Cluster) protocol.Monitor{
		"topk":     func(c cluster.Cluster) protocol.Monitor { return protocol.NewTopKProto(c, k, e) },
		"approx":   func(c cluster.Cluster) protocol.Monitor { return protocol.NewApprox(c, k, e) },
		"half-eps": func(c cluster.Cluster) protocol.Monitor { return protocol.NewHalfEps(c, k, e) },
		"naive":    func(c cluster.Cluster) protocol.Monitor { return protocol.NewNaive(c, k) },
	}
	for sName, matrix := range streams {
		for mName, mk := range mks {
			t.Run(sName+"/"+mName, func(t *testing.T) {
				eng := lockstep.New(n, 3)
				mon := mk(eng)
				for ts, vals := range matrix {
					eng.Advance(vals)
					if ts == 0 {
						mon.Start()
					} else {
						mon.HandleStep()
					}
					truth := oracle.Compute(vals, k, e)
					if err := truth.ValidateEps(mon.Output()); err != nil {
						t.Fatalf("step %d: %v", ts, err)
					}
					eng.EndStep()
				}
			})
		}
	}
}

// TestMonitorFuzz runs every monitor over randomized jump streams across
// many seeds with full per-step validation — the broad safety net for the
// protocol state machines.
func TestMonitorFuzz(t *testing.T) {
	const steps = 120
	e := eps.MustNew(1, 6)
	rng := rngx.New(2024)
	mks := map[string]func(c cluster.Cluster, k int) protocol.Monitor{
		"topk":     func(c cluster.Cluster, k int) protocol.Monitor { return protocol.NewTopKProto(c, k, e) },
		"approx":   func(c cluster.Cluster, k int) protocol.Monitor { return protocol.NewApprox(c, k, e) },
		"half-eps": func(c cluster.Cluster, k int) protocol.Monitor { return protocol.NewHalfEps(c, k, e) },
	}
	for name, mk := range mks {
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 12; trial++ {
				n := 4 + rng.Intn(12)
				k := 1 + rng.Intn(n-1)
				// Mix of jump scales to hit dense and sparse regimes.
				hi := int64(1) << uint(6+rng.Intn(20))
				gen := stream.NewJumps(n, hi/4, hi, uint64(trial)*7+3)
				eng := lockstep.New(n, uint64(trial)+99)
				mon := mk(eng, k)
				for ts := 0; ts < steps; ts++ {
					vals := gen.Next(ts)
					eng.Advance(vals)
					if ts == 0 {
						mon.Start()
					} else {
						mon.HandleStep()
					}
					truth := oracle.Compute(vals, k, e)
					if err := truth.ValidateEps(mon.Output()); err != nil {
						t.Fatalf("trial %d (n=%d k=%d hi=%d) step %d: %v",
							trial, n, k, hi, ts, err)
					}
					eng.EndStep()
				}
			}
		})
	}
}

// TestHalfEpsEntersTopKMode: a wide gap at the (k+1)-st value sends HalfEps
// through its TOP-K-PROTOCOL branch.
func TestHalfEpsEntersTopKMode(t *testing.T) {
	eng := lockstep.New(6, 4)
	e := eps.MustNew(1, 4)
	mon := protocol.NewHalfEps(eng, 2, e)
	eng.Advance([]int64{1000, 900, 10, 9, 8, 7}) // 10 ≪ 0.75·900
	mon.Start()
	truth := oracle.Compute([]int64{1000, 900, 10, 9, 8, 7}, 2, e)
	if err := truth.ValidateEps(mon.Output()); err != nil {
		t.Fatal(err)
	}
	// And the dense branch with a tight cluster.
	eng2 := lockstep.New(6, 4)
	mon2 := protocol.NewHalfEps(eng2, 2, e)
	eng2.Advance([]int64{1000, 900, 880, 9, 8, 7})
	mon2.Start()
	truth2 := oracle.Compute([]int64{1000, 900, 880, 9, 8, 7}, 2, e)
	if err := truth2.ValidateEps(mon2.Output()); err != nil {
		t.Fatal(err)
	}
}

// TestQuiescenceAfterHandleStep: after HandleStep returns, no node violates
// its filter — the protocols must leave a consistent (valid) filter state.
func TestQuiescenceAfterHandleStep(t *testing.T) {
	const n, k, steps = 10, 3, 150
	e := eps.MustNew(1, 5)
	gen := stream.NewJumps(n, 10, 50000, 7)
	eng := lockstep.New(n, 13)
	mon := protocol.NewApprox(eng, k, e)
	for ts := 0; ts < steps; ts++ {
		vals := gen.Next(ts)
		eng.Advance(vals)
		if ts == 0 {
			mon.Start()
		} else {
			mon.HandleStep()
		}
		if senders := eng.Sweep(wire.Violating()); senders != nil {
			t.Fatalf("step %d: violations remain after HandleStep: %v", ts, senders)
		}
		eng.EndStep()
	}
}
