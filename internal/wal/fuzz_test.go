package wal

import (
	"bytes"
	"testing"

	"topkmon/topk"
)

// fuzzSeedLogs builds the seeded corpus: well-formed logs of every record
// kind, their truncations, and a few deliberately hostile inputs.
func fuzzSeedLogs() [][]byte {
	mk := func(recs ...Record) []byte {
		var b []byte
		for i := range recs {
			b = AppendFrame(b, &recs[i])
		}
		return b
	}
	full := mk(
		Record{Kind: KindConfig, Epoch: 1, Seed: 42, Config: []byte(`{"nodes":8,"k":2,"seed":42}`)},
		Record{Kind: KindBatch, Epoch: 1, Step: 1, Client: "client-a", Seq: 1,
			Batch: []topk.Update{{Node: 0, Value: 100}, {Node: 7, Value: 0}}},
		Record{Kind: KindBatch, Epoch: 1, Step: 2, Client: "", Seq: 0, Batch: nil},
		Record{Kind: KindConfig, Epoch: 2, Seed: 7, Config: []byte(`{}`)},
		Record{Kind: KindBatch, Epoch: 2, Step: 1, Client: "client-a", Seq: 2,
			Batch: []topk.Update{{Node: 3, Value: 1 << 40}}},
		Record{Kind: KindDelete, Epoch: 2},
	)
	seeds := [][]byte{
		nil,
		full,
		full[:len(full)-1],   // torn final byte
		full[:len(full)/2],   // torn mid-log
		full[:frameHeader-1], // shorter than one header
		mk(Record{Kind: KindDelete, Epoch: 0}),
		{0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00},       // zero-length frame
		{0xff, 0xff, 0xff, 0xff, 0x00, 0x00, 0x00, 0x00, 0x01}, // absurd length prefix
		bytes.Repeat([]byte{0xa5}, 64),                         // garbage
	}
	flip := append([]byte(nil), full...)
	flip[len(full)/3] ^= 0x20 // bit-flipped mid-log
	seeds = append(seeds, flip)
	return seeds
}

// FuzzWALDecode pins the decoder's three torn-write obligations on
// arbitrary bytes:
//
//  1. Never panic, and never claim a prefix longer than the input.
//  2. The claimed prefix is exact: re-encoding the decoded records
//     reproduces data[:off] byte for byte (the canonical round-trip).
//  3. Truncation is clean and idempotent: decoding data[:off] again
//     yields the same records and the same offset, so recovery's
//     truncate-then-replay converges in one pass.
func FuzzWALDecode(f *testing.F) {
	for _, seed := range fuzzSeedLogs() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, off := DecodePrefix(data)
		if off < 0 || off > int64(len(data)) {
			t.Fatalf("truncation point %d outside [0,%d]", off, len(data))
		}
		var re []byte
		for i := range recs {
			if k := recs[i].Kind; k != KindConfig && k != KindBatch && k != KindDelete {
				t.Fatalf("record %d: invalid kind %d leaked out", i, k)
			}
			re = AppendFrame(re, &recs[i])
		}
		if !bytes.Equal(re, data[:off]) {
			t.Fatalf("re-encode mismatch: %d records, prefix %d bytes, re-encoded %d bytes",
				len(recs), off, len(re))
		}
		recs2, off2 := DecodePrefix(data[:off])
		if off2 != off || len(recs2) != len(recs) {
			t.Fatalf("truncation not idempotent: (%d recs, %d) then (%d recs, %d)",
				len(recs), off, len(recs2), off2)
		}
	})
}

// TestWALDecodeGolden re-checks the seed corpus without the fuzz engine,
// so plain `go test` covers the same properties.
func TestWALDecodeGolden(t *testing.T) {
	for i, seed := range fuzzSeedLogs() {
		recs, off := DecodePrefix(seed)
		if off < 0 || off > int64(len(seed)) {
			t.Fatalf("seed %d: truncation point %d outside input", i, off)
		}
		var re []byte
		for j := range recs {
			re = AppendFrame(re, &recs[j])
		}
		if !bytes.Equal(re, seed[:off]) {
			t.Fatalf("seed %d: re-encode mismatch", i)
		}
	}
	// The fully valid seed must decode completely.
	full := fuzzSeedLogs()[1]
	recs, off := DecodePrefix(full)
	if off != int64(len(full)) || len(recs) != 6 {
		t.Fatalf("full log: %d records, %d/%d bytes", len(recs), off, len(full))
	}
}
