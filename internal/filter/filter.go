// Package filter implements the interval filters of Definition 2.1 and the
// validity condition of Observation 2.2, together with the integer interval
// arithmetic used by the generic binary-search framework of Section 3.
//
// A filter is an interval [Lo, Hi] over ℕ ∪ {∞}; a node whose value leaves
// its filter "violates" it. Following the paper's (admittedly inverted)
// terminology: a value rising above Hi is a violation "from below" (DirUp
// here), a value dropping below Lo is a violation "from above" (DirDown).
package filter

import (
	"fmt"

	"topkmon/internal/eps"
)

// Inf is the representation of the unbounded upper endpoint ∞.
const Inf int64 = 1<<62 - 1

// Direction classifies a filter violation.
type Direction int8

const (
	// DirNone means the value is inside the filter.
	DirNone Direction = iota
	// DirUp is the paper's "violation from below": value > Hi.
	DirUp
	// DirDown is the paper's "violation from above": value < Lo.
	DirDown
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case DirNone:
		return "none"
	case DirUp:
		return "up"
	case DirDown:
		return "down"
	default:
		return fmt.Sprintf("Direction(%d)", int8(d))
	}
}

// Interval is a closed integer interval [Lo, Hi]; Hi = Inf means unbounded.
// The zero value is [0, 0].
type Interval struct {
	Lo int64
	Hi int64
}

// All is the filter admitting every value, [0, ∞].
var All = Interval{Lo: 0, Hi: Inf}

// Make returns [lo, hi].
func Make(lo, hi int64) Interval { return Interval{Lo: lo, Hi: hi} }

// AtLeast returns [lo, ∞].
func AtLeast(lo int64) Interval { return Interval{Lo: lo, Hi: Inf} }

// AtMost returns [0, hi].
func AtMost(hi int64) Interval { return Interval{Lo: 0, Hi: hi} }

// Contains reports v ∈ [Lo, Hi].
func (iv Interval) Contains(v int64) bool { return v >= iv.Lo && v <= iv.Hi }

// Violation classifies v against the interval.
func (iv Interval) Violation(v int64) Direction {
	switch {
	case v > iv.Hi:
		return DirUp
	case v < iv.Lo:
		return DirDown
	default:
		return DirNone
	}
}

// Empty reports whether the interval contains no integers.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Width returns Hi - Lo, or a large sentinel for unbounded intervals.
func (iv Interval) Width() int64 {
	if iv.Hi >= Inf {
		return Inf
	}
	if iv.Empty() {
		return -1
	}
	return iv.Hi - iv.Lo
}

// Intersect returns the intersection of two intervals (possibly empty).
func (iv Interval) Intersect(o Interval) Interval {
	lo, hi := iv.Lo, iv.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	return Interval{Lo: lo, Hi: hi}
}

// ClampAbove returns the interval intersected with [v, ∞] — the generic
// framework's update after an up-violation with value v.
func (iv Interval) ClampAbove(v int64) Interval { return iv.Intersect(AtLeast(v)) }

// ClampBelow returns the interval intersected with [0, v] — the update after
// a down-violation with value v.
func (iv Interval) ClampBelow(v int64) Interval { return iv.Intersect(AtMost(v)) }

// Mid returns the floored midpoint ⌊(Lo+Hi)/2⌋ of a bounded interval.
func (iv Interval) Mid() int64 { return iv.Lo + (iv.Hi-iv.Lo)/2 }

// LowerHalf returns the lower half of the interval around its midpoint.
// Halving rules (shared with UpperHalf):
//   - a single-point interval halves to an empty one, matching "in case L_r
//     contains one value and gets halved, L_{r+1} is empty" (Section 5.2);
//   - a width-1 interval splits into its two endpoints;
//   - otherwise both halves include the midpoint (the offline optimum's
//     endpoint ℓ* may equal it), yet both shrink strictly, so a width-w
//     interval dies after at most log₂w + 2 halvings.
func (iv Interval) LowerHalf() Interval {
	w := iv.Hi - iv.Lo
	switch {
	case iv.Empty() || w == 0:
		return Interval{Lo: 1, Hi: 0}
	case w == 1:
		return Interval{Lo: iv.Lo, Hi: iv.Lo}
	default:
		return Interval{Lo: iv.Lo, Hi: iv.Mid()}
	}
}

// UpperHalf returns the upper half of the interval; see LowerHalf for the
// halving rules.
func (iv Interval) UpperHalf() Interval {
	w := iv.Hi - iv.Lo
	switch {
	case iv.Empty() || w == 0:
		return Interval{Lo: 1, Hi: 0}
	case w == 1:
		return Interval{Lo: iv.Hi, Hi: iv.Hi}
	default:
		return Interval{Lo: iv.Mid(), Hi: iv.Hi}
	}
}

// String implements fmt.Stringer.
func (iv Interval) String() string {
	if iv.Hi >= Inf {
		return fmt.Sprintf("[%d,∞]", iv.Lo)
	}
	return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi)
}

// SetValid implements Observation 2.2: the n-tuple of intervals is a set of
// filters for output set out iff every value is inside its interval and for
// all pairs i ∈ out, j ∉ out: ℓ_i ≥ (1-ε)·u_j.
//
// values[i] is node i's current value; filters[i] its interval; out the
// output F(t) as a set of node ids; e the allowed error.
func SetValid(values []int64, filters []Interval, out map[int]bool, e eps.Eps) bool {
	minLoOut := Inf
	maxHiRest := int64(-1)
	for i, f := range filters {
		if !f.Contains(values[i]) {
			return false
		}
		if out[i] {
			if f.Lo < minLoOut {
				minLoOut = f.Lo
			}
		} else {
			if f.Hi > maxHiRest {
				maxHiRest = f.Hi
			}
		}
	}
	if maxHiRest < 0 || minLoOut == Inf {
		return true // one side empty: vacuously valid
	}
	if maxHiRest >= Inf {
		return false // a non-output node with an unbounded filter can pass anyone
	}
	return e.FilterCompatible(minLoOut, maxHiRest)
}

// PairValid reports the pairwise Observation 2.2 condition for a single
// (output, non-output) filter pair.
func PairValid(fOut, fRest Interval, e eps.Eps) bool {
	if fRest.Hi >= Inf {
		return false
	}
	return e.FilterCompatible(fOut.Lo, fRest.Hi)
}
