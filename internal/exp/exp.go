// Package exp defines the reproduction experiments E1–E11, each mapping a
// theorem or claim of the paper to a measured table (the paper itself is
// purely theoretical, so the "tables and figures" reproduced here are the
// bound shapes its theorems assert; see DESIGN.md §5 and EXPERIMENTS.md).
//
// Every monitor-driven experiment runs through sim.Run, which itself
// drives the public topk facade (push-batch ingest) — so the experiment
// suite continuously exercises the supported public API, not a private
// side door; the facade-equivalence tests prove the indirection
// byte-identical to direct engine use. The primitive-level experiments
// (E1, E2, E12) measure engine primitives directly by design.
//
// Experiments are deterministic given Options.Seed and scale down under
// Options.Quick so they double as benchmark bodies in bench_test.go.
// Independent trials and sweep points fan out across Options.Parallelism
// goroutines; every unit of work derives its randomness from its own index,
// never from execution order, so the tables are byte-identical for every
// worker count.
//
// Workers reuse engines instead of constructing one per trial: parMapWith
// gives each worker goroutine a persistent context (an engCtx caching a
// lockstep engine, rewound with Engine.Reset to each trial's index-derived
// seed — state-identical to a fresh construction, asserted by the Reset
// property tests). This cut E1's wall clock ≈ 4× and its allocations ≈ 80×
// (BENCH_PR2.json) while keeping every table byte-for-byte unchanged.
package exp

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"topkmon/internal/cluster"
	"topkmon/internal/eps"
	"topkmon/internal/lockstep"
	"topkmon/internal/metrics"
	"topkmon/internal/protocol"
	"topkmon/internal/sim"
)

// Options configures an experiment run.
type Options struct {
	// Quick shrinks sweeps and trial counts (CI/bench mode).
	Quick bool
	// Seed drives all randomness.
	Seed uint64
	// Parallelism caps the worker goroutines running independent trials
	// and sweep points; 0 means runtime.GOMAXPROCS(0). Results are
	// bit-identical for every value.
	Parallelism int
}

// workers resolves the effective worker count.
func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// parMap computes fn(0..n-1) on up to o.workers() goroutines and returns the
// results in index order — the experiment harness's worker pool. fn must
// derive all randomness from its index (seeds keyed by the swept parameter
// or trial number), which makes the fan-out invisible in the output. With
// one worker (or n == 1) it degrades to the plain sequential loop.
func parMap[T any](o Options, n int, fn func(i int) T) []T {
	return parMapWith(o, n, func() struct{} { return struct{}{} },
		func(_ struct{}, i int) T { return fn(i) })
}

// parMapWith is parMap with reusable per-worker state: mk constructs one
// context per worker goroutine — typically an engine that fn resets between
// trials instead of constructing 400 fresh engines per table cell — and
// fn(ctx, i) computes unit i. fn must still derive all randomness from its
// index alone; the context may carry buffers and resettable engines, never
// sequence state, so results stay byte-identical for every worker count
// (asserted by TestParallelRunsAreDeterministic).
func parMapWith[C, T any](o Options, n int, mk func() C, fn func(ctx C, i int) T) []T {
	out := make([]T, n)
	w := o.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		ctx := mk()
		for i := 0; i < n; i++ {
			out[i] = fn(ctx, i)
		}
		return out
	}
	var next atomic.Int64
	// A panicking unit (runOrPanic's "fail loudly") must reach the caller
	// as it does in the sequential loop, not kill the process from a
	// worker goroutine.
	var panicked any
	var panicOnce sync.Once
	var wg sync.WaitGroup
	for range w {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			ctx := mk()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(ctx, i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return out
}

// engCtx is the per-worker engine cache for parMapWith: reset returns a
// lockstep engine with n nodes in the state lockstep.New(n, seed) would
// construct, reusing the previous engine whenever the node count matches.
type engCtx struct {
	eng *lockstep.Engine
}

func (c *engCtx) reset(n int, seed uint64) *lockstep.Engine {
	if c.eng == nil || c.eng.N() != n {
		c.eng = lockstep.New(n, seed)
		return c.eng
	}
	c.eng.Reset(seed)
	return c.eng
}

// Experiment binds a paper claim to a measurement procedure.
type Experiment struct {
	ID    string
	Title string
	// Claim cites the paper item whose bound shape the tables reproduce.
	Claim string
	Run   func(Options) []*metrics.Table
}

// All returns the experiments in presentation order.
func All() []Experiment {
	return []Experiment{
		E1Existence(), E2MaxFind(), E3ExactCompetitive(), E4TopKProtocol(),
		E5LowerBound(), E6Dense(), E7HalfEps(), E8EpsilonSavings(),
		E9PhaseAblation(), E10Compliance(), E11SweepAblation(),
		E12Selectivity(), E13HeavyHitters(),
	}
}

// ByID returns one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// runOrPanic executes a simulation; experiment workloads are fixed, so a
// validation failure is a bug, not a data condition.
func runOrPanic(cfg sim.Config) sim.Report {
	rep, err := sim.Run(cfg)
	if err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
	return rep
}

// mkMonitor builds the named monitor; shared across experiments.
func mkMonitor(name string, k int, e eps.Eps) func(cluster.Cluster) protocol.Monitor {
	switch name {
	case "exact-mid":
		return func(c cluster.Cluster) protocol.Monitor { return protocol.NewExactMid(c, k) }
	case "topk":
		return func(c cluster.Cluster) protocol.Monitor { return protocol.NewTopKProto(c, k, e) }
	case "approx":
		return func(c cluster.Cluster) protocol.Monitor { return protocol.NewApprox(c, k, e) }
	case "half-eps":
		return func(c cluster.Cluster) protocol.Monitor { return protocol.NewHalfEps(c, k, e) }
	case "naive":
		return func(c cluster.Cluster) protocol.Monitor { return protocol.NewNaive(c, k) }
	case "mid-naive":
		return func(c cluster.Cluster) protocol.Monitor { return protocol.NewMidNaive(c, k) }
	default:
		panic("exp: unknown monitor " + name)
	}
}

func sortedKeys[K int | int64, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func perEpoch(total int64, epochs int64) float64 {
	if epochs < 1 {
		epochs = 1
	}
	return float64(total) / float64(epochs)
}
