package faults

import (
	"reflect"
	"testing"

	"topkmon/internal/cluster"
	"topkmon/internal/eps"
	"topkmon/internal/filter"
	"topkmon/internal/live"
	"topkmon/internal/lockstep"
	"topkmon/internal/metrics"
	"topkmon/internal/protocol"
	"topkmon/internal/stream"
	"topkmon/internal/wire"
)

// mkTrace pre-generates a drifting-walk trace.
func mkTrace(n, steps int, seed uint64) [][]int64 {
	gen := stream.NewWalk(n, 100000, 500, 1<<24, seed)
	trace := make([][]int64, steps)
	for t := range trace {
		trace[t] = gen.Next(t)
	}
	return trace
}

// faultTrail is everything observable about a faulty run: per-step outputs
// and the final counter snapshot (model messages AND fault accounting).
type faultTrail struct {
	outs []([]int)
	snap metrics.Snapshot
}

// runMonitored drives the Approx monitor over a trace on eng, tolerating
// protocol panics: under heavy injected faults a desynced protocol may
// trip its quiescence guard, and this harness heals it the way the facade
// supervisor does — rebuild the algorithm and reopen an epoch on the next
// step. Panic steps record the marker output [-1]. The whole trail,
// including where panics land, is deterministic.
func runMonitored(eng cluster.Engine, trace [][]int64, k int) (trail faultTrail) {
	e := eps.MustNew(1, 8)
	mon := protocol.NewApprox(eng, k, e)
	start := true
	for _, vals := range trace {
		eng.Advance(vals)
		panicked := func() (p bool) {
			defer func() {
				if recover() != nil {
					p = true
				}
			}()
			if start {
				mon.Start()
				start = false
			} else {
				mon.HandleStep()
			}
			return false
		}()
		if panicked {
			mon = protocol.NewApprox(eng, k, e)
			start = true
			trail.outs = append(trail.outs, []int{-1})
		} else {
			trail.outs = append(trail.outs, append([]int(nil), mon.Output()...))
		}
		eng.EndStep()
	}
	trail.snap = eng.Counters().Snapshot()
	return trail
}

func chaosPlan() *Plan {
	return &Plan{
		Drop:  0.15,
		Dup:   0.05,
		Delay: 0.05,
		Crashes: []Crash{
			{Node: 1, From: 20, Until: 60},
			{Node: 5, From: 80, Until: 110},
		},
	}
}

// TestZeroPlanTransparent: wrapping with a nil or zero plan changes
// nothing — outputs and every counter are byte-identical to the bare
// engine, and no fault counter moves.
func TestZeroPlanTransparent(t *testing.T) {
	const n, k, steps, seed = 32, 4, 150, 9
	trace := mkTrace(n, steps, 3)
	want := runMonitored(lockstep.New(n, seed), trace, k)

	for _, tc := range []struct {
		name string
		plan *Plan
	}{
		{"nil-plan", nil},
		{"zero-plan", &Plan{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := Wrap(lockstep.New(n, seed), tc.plan, seed)
			got := runMonitored(w, trace, k)
			if !reflect.DeepEqual(want.outs, got.outs) {
				t.Fatal("outputs diverge through a transparent wrapper")
			}
			if !reflect.DeepEqual(want.snap, got.snap) {
				t.Fatalf("counters diverge through a transparent wrapper:\nbare:    %+v\nwrapped: %+v",
					want.snap, got.snap)
			}
			if got.snap.DroppedMsgs|got.snap.DupMsgs|got.snap.Retries != 0 {
				t.Fatalf("transparent wrapper billed faults: %+v", got.snap)
			}
		})
	}
}

// TestActivePlanInjects: a plan with real rates actually drops, duplicates
// and retries — the chaos suite must not vacuously pass on a silent
// injector.
func TestActivePlanInjects(t *testing.T) {
	const n, k, steps, seed = 32, 4, 150, 9
	trace := mkTrace(n, steps, 3)
	got := runMonitored(Wrap(lockstep.New(n, seed), chaosPlan(), seed), trace, k)
	if got.snap.DroppedMsgs == 0 {
		t.Error("active plan dropped no messages")
	}
	if got.snap.DupMsgs == 0 {
		t.Error("active plan duplicated no messages")
	}
	if got.snap.Retries == 0 {
		t.Error("active plan triggered no retries")
	}
}

// TestFaultyReplayByteIdentical: equal seeds and plans replay chaos byte
// for byte — outputs, model counters, and fault counters.
func TestFaultyReplayByteIdentical(t *testing.T) {
	const n, k, steps, seed = 32, 4, 150, 9
	trace := mkTrace(n, steps, 3)
	a := runMonitored(Wrap(lockstep.New(n, seed), chaosPlan(), seed), trace, k)
	b := runMonitored(Wrap(lockstep.New(n, seed), chaosPlan(), seed), trace, k)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical faulty runs diverge:\na: %+v\nb: %+v", a.snap, b.snap)
	}
}

// TestResetReplaysInjector: Reset(seed) rewinds the injector's RNG stream,
// step clock, belief mirror and delay queue along with the engine, so a
// reset faulty system replays the fresh one bit for bit.
func TestResetReplaysInjector(t *testing.T) {
	const n, k, steps, seed = 32, 4, 120, 9
	trace := mkTrace(n, steps, 3)
	w := Wrap(lockstep.New(n, seed), chaosPlan(), seed)
	fresh := runMonitored(w, trace, k)
	w.Reset(seed)
	replay := runMonitored(w, trace, k)
	if !reflect.DeepEqual(fresh, replay) {
		t.Fatalf("reset faulty run diverges from fresh run:\nfresh:  %+v\nreplay: %+v",
			fresh.snap, replay.snap)
	}

	// A different seed must give a different fault pattern (the injector's
	// stream really is seed-derived, not fixed).
	w.Reset(seed + 1)
	other := runMonitored(w, trace, k)
	if reflect.DeepEqual(fresh.snap, other.snap) {
		t.Fatal("different seeds produced identical fault accounting")
	}
}

// TestEngineConformance pins the five fault counters across engines: the
// injector's decisions depend only on (seed, plan, message history), and
// the engines' message histories are equivalent, so lockstep and live runs
// under the same faults must agree on every counter and every output.
func TestEngineConformance(t *testing.T) {
	const n, k, steps, seed = 32, 4, 150, 9
	trace := mkTrace(n, steps, 3)

	ls := runMonitored(Wrap(lockstep.New(n, seed), chaosPlan(), seed), trace, k)
	lv := live.New(n, seed, live.WithShards(3))
	defer lv.Close()
	lw := runMonitored(Wrap(lv, chaosPlan(), seed), trace, k)

	if !reflect.DeepEqual(ls.outs, lw.outs) {
		t.Fatal("faulty outputs diverge across engines")
	}
	if !reflect.DeepEqual(ls.snap, lw.snap) {
		t.Fatalf("faulty counters diverge across engines:\nlockstep: %+v\nlive:     %+v",
			ls.snap, lw.snap)
	}
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"DroppedMsgs", ls.snap.DroppedMsgs},
		{"DupMsgs", ls.snap.DupMsgs},
		{"Retries", ls.snap.Retries},
	} {
		if c.v == 0 {
			t.Errorf("conformance run never exercised %s", c.name)
		}
	}
}

// TestCrashWindowSemantics: during its window a crashed node reports
// nothing and probes serve the stale pre-crash cache; after the window it
// reports again.
func TestCrashWindowSemantics(t *testing.T) {
	const n, seed = 4, 7
	w := Wrap(lockstep.New(n, seed), &Plan{
		Crashes: []Crash{{Node: 2, From: 2, Until: 4}},
	}, seed)

	vals := []int64{10, 20, 30, 40}
	w.Advance(vals) // step 1: node 2 up, lastVals[2] = 30
	if got := w.Probe(2); got.Value != 30 {
		t.Fatalf("step 1 probe = %d, want live value 30", got.Value)
	}
	w.EndStep()

	vals[2] = 99
	w.Advance(vals) // step 2: node 2 down; cache stays 30
	if !w.Crashed(2) {
		t.Fatal("node 2 should be crashed at step 2")
	}
	if got := w.Probe(2); got.Value != 30 {
		t.Fatalf("crashed probe = %d, want stale cache 30", got.Value)
	}
	if reps := w.Collect(wire.InRange(0, 1<<30)); len(reps) != n-1 {
		t.Fatalf("collect during crash returned %d reports, want %d (crashed node silent)", len(reps), n-1)
	}
	w.EndStep()

	w.Advance(vals) // step 3: still down
	w.EndStep()
	w.Advance(vals) // step 4: recovered
	if w.Crashed(2) {
		t.Fatal("node 2 should have recovered at step 4")
	}
	if got := w.Probe(2); got.Value != 99 {
		t.Fatalf("post-recovery probe = %d, want live value 99", got.Value)
	}
	if reps := w.Collect(wire.InRange(0, 1<<30)); len(reps) != n {
		t.Fatalf("collect after recovery returned %d reports, want %d", len(reps), n)
	}
	w.EndStep()
}

// TestDesyncDetection: a lost filter assignment makes the node report a
// violation that is impossible under the filter the server believes it
// holds; the wrapper latches the desync signal.
func TestDesyncDetection(t *testing.T) {
	const n, seed = 4, 7
	// Drop every SetFilter outright (no retries); reports get through.
	w := Wrap(lockstep.New(n, seed), &Plan{
		Drop:    1,
		Kinds:   MaskOf(wire.KindSetFilter),
		Retries: NoRetries,
	}, seed)

	// Only node 3 will ever sit above the [0, 15] filters assigned below,
	// so every violation sweep's terminating round contains exactly node 3
	// and the test stays deterministic.
	vals := []int64{10, 12, 14, 40}
	w.Advance(vals)
	// The server narrows node 3 to [0, 15]; the injector eats the message,
	// so the node still holds the all-admitting filter.
	w.SetFilter(3, filter.Make(0, 15))
	w.EndStep()
	if w.TakeDesync() {
		t.Fatal("desync latched before any report")
	}
	if w.Counters().DroppedMsgs() != 1 {
		t.Fatalf("DroppedMsgs = %d, want 1", w.Counters().DroppedMsgs())
	}

	// Node 3's value 40 violates the believed filter [0, 15], but the node
	// (still all-admitting) reports nothing: the violation sweep is silent,
	// no impossible report, no signal — this is the silent divergence only
	// the facade referee can catch.
	w.Advance(vals)
	if _, ok := w.DetectViolation(); ok {
		t.Fatal("node with all-admitting filter reported a violation")
	}
	if w.TakeDesync() {
		t.Fatal("silent divergence cannot be message-detected")
	}
	w.EndStep()

	// Now the server believes it widened node 3 to all-admitting again
	// (message also lost — irrelevant, belief is what counts) and instead
	// narrows node 0 successfully via a broadcast rule... but first: make
	// node 3 actually desync the other way. Assign node 3 a REAL filter via
	// a broadcast (rules are not masked), then believe a lost widening.
	rule := wire.NewFilterRule().With(wire.TagNone, filter.Make(0, 15))
	w.BroadcastRule(rule)      // delivered: every TagNone node now holds [0,15]
	w.SetFilter(3, filter.All) // lost: node 3 keeps [0,15], server believes All
	w.EndStep()

	// Node 3 (value 40) violates its actual filter [0,15] and reports; the
	// report is impossible under the believed all-admitting filter.
	w.Advance(vals)
	if _, ok := w.DetectViolation(); !ok {
		t.Fatal("expected a violation report from the desynced node")
	}
	if !w.TakeDesync() {
		t.Fatal("impossible report did not latch the desync signal")
	}
	if w.TakeDesync() {
		t.Fatal("TakeDesync did not clear the latch")
	}
	w.EndStep()
}

// TestPlanValidate covers the plan sanity checks.
func TestPlanValidate(t *testing.T) {
	if err := (*Plan)(nil).Validate(4); err != nil {
		t.Errorf("nil plan: %v", err)
	}
	if err := (&Plan{Drop: 1.5}).Validate(4); err == nil {
		t.Error("rate > 1 accepted")
	}
	if err := (&Plan{Crashes: []Crash{{Node: 4, From: 1, Until: 2}}}).Validate(4); err == nil {
		t.Error("out-of-range crash node accepted")
	}
	if err := (&Plan{Crashes: []Crash{{Node: 0, From: 0, Until: 2}}}).Validate(4); err == nil {
		t.Error("crash window starting before step 1 accepted")
	}
}
