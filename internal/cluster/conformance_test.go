package cluster_test

import (
	"runtime"
	"testing"

	"topkmon/internal/cluster"
	"topkmon/internal/filter"
	"topkmon/internal/live"
	"topkmon/internal/lockstep"
	"topkmon/internal/metrics"
	"topkmon/internal/wire"
)

// engines under conformance test: the lockstep reference plus the live
// engine in its sharded configurations — one worker, two workers (the
// smallest layout with cross-shard gather), and one worker per core (the
// default) — so the unit-cost accounting and Reset(seed) byte-equality
// cover every worker-shard code path.
func engines(n int, seed uint64) map[string]func() (cluster.Engine, func()) {
	mkLive := func(m int) func() (cluster.Engine, func()) {
		return func() (cluster.Engine, func()) {
			c := live.New(n, seed, live.WithShards(m))
			return c, c.Close
		}
	}
	return map[string]func() (cluster.Engine, func()){
		"lockstep": func() (cluster.Engine, func()) {
			return lockstep.New(n, seed), func() {}
		},
		"live/m=1":   mkLive(1),
		"live/m=2":   mkLive(2),
		"live/m=cpu": mkLive(runtime.NumCPU()),
	}
}

// TestConformanceMessageCosts pins the exact unit-cost accounting of every
// primitive on both engines.
func TestConformanceMessageCosts(t *testing.T) {
	for name, mk := range engines(8, 3) {
		t.Run(name, func(t *testing.T) {
			eng, done := mk()
			defer done()
			eng.Advance([]int64{10, 20, 30, 40, 50, 60, 70, 80})

			cost := func(f func()) int64 {
				before := eng.Counters().Snapshot()
				f()
				return eng.Counters().Snapshot().Sub(before).Total()
			}

			if got := cost(func() { eng.BroadcastRule(wire.NewFilterRule()) }); got != 1 {
				t.Errorf("BroadcastRule cost %d, want 1", got)
			}
			if got := cost(func() { eng.SetFilter(2, filter.All) }); got != 1 {
				t.Errorf("SetFilter cost %d, want 1", got)
			}
			if got := cost(func() { eng.SetTagFilter(2, wire.TagV1, filter.All) }); got != 1 {
				t.Errorf("SetTagFilter cost %d, want 1", got)
			}
			if got := cost(func() { eng.Probe(3) }); got != 2 {
				t.Errorf("Probe cost %d, want 2", got)
			}
			// Collect: 1 broadcast + 1 per match (values 30..50 → 3).
			if got := cost(func() { eng.Collect(wire.InRange(30, 50)) }); got != 4 {
				t.Errorf("Collect cost %d, want 4", got)
			}
			// Silent sweep is free.
			if got := cost(func() { eng.Sweep(wire.Violating()) }); got != 0 {
				t.Errorf("silent Sweep cost %d, want 0", got)
			}
			if got := cost(func() { eng.MaxFindInit(-1, true) }); got != 1 {
				t.Errorf("MaxFindInit cost %d, want 1", got)
			}
			if got := cost(func() { eng.MaxFindRaise(1, 20) }); got != 1 {
				t.Errorf("MaxFindRaise cost %d, want 1", got)
			}
			if got := cost(func() { eng.MaxFindExclude(1) }); got != 1 {
				t.Errorf("MaxFindExclude cost %d, want 1", got)
			}
		})
	}
}

// TestConformanceIndexFallbacks pins the engine-side full-scan accounting:
// tag predicates and domain-covering intervals bill exactly one fallback
// per Sweep/Collect; routable intervals and violation sweeps (resolved from
// the filter-interval mirror) bill none — and both engines, at every shard
// count, agree because the decision is made from the predicate alone.
func TestConformanceIndexFallbacks(t *testing.T) {
	for name, mk := range engines(8, 3) {
		t.Run(name, func(t *testing.T) {
			eng, done := mk()
			defer done()
			eng.Advance([]int64{10, 20, 30, 40, 50, 60, 70, 80})

			eng.Sweep(wire.Violating())            // mirror-routed → no fallback
			eng.Collect(wire.HasTag(wire.TagNone)) // state-decided → fallback
			eng.Collect(wire.InRange(30, 50))      // routed
			eng.Sweep(wire.InRange(200, 300))      // routed (silent)
			eng.MaxFindInit(-1, true)
			eng.Collect(wire.AboveActive(-1)) // domain-covering → fallback

			if got := eng.Counters().IndexFallbacks(); got != 2 {
				t.Errorf("IndexFallbacks = %d, want 2", got)
			}
			if got := eng.Counters().Snapshot().IndexFallbacks; got != 2 {
				t.Errorf("Snapshot.IndexFallbacks = %d, want 2", got)
			}
			eng.Reset(3)
			if got := eng.Counters().IndexFallbacks(); got != 0 {
				t.Errorf("Reset left IndexFallbacks = %d", got)
			}
		})
	}
}

// TestConformanceQuietStepsNoFallbacks pins the headline regression of the
// filter-interval mirror: the scheduled per-step violation sweep is
// mirror-routed, so a long run of quiet steps — values moving strictly
// inside their filters, every violation sweep finding nothing — bills ZERO
// index fallbacks AND zero messages on both engines at every shard count.
// If routing ever regresses to the full scan, the fallback counter moves
// and this test names the engine.
func TestConformanceQuietStepsNoFallbacks(t *testing.T) {
	const n, steps = 64, 50
	for name, mk := range engines(n, 5) {
		t.Run(name, func(t *testing.T) {
			eng, done := mk()
			defer done()
			// Wide filters admit the whole value walk below: every step
			// stays quiet.
			eng.Advance(make([]int64, n))
			eng.BroadcastRule(wire.NewFilterRule().With(wire.TagNone, filter.Make(0, 2000)))
			before := eng.Counters().Snapshot()
			vals := make([]int64, n)
			for step := 0; step < steps; step++ {
				for i := range vals {
					vals[i] = int64((step*37 + i*13) % 2000)
				}
				eng.Advance(vals)
				eng.Sweep(wire.Violating())
				if _, ok := eng.DetectViolation(); ok {
					t.Fatal("quiet step produced a violation")
				}
				eng.EndStep()
			}
			d := eng.Counters().Snapshot().Sub(before)
			if d.IndexFallbacks != 0 {
				t.Errorf("quiet steps billed %d index fallbacks, want 0", d.IndexFallbacks)
			}
			if d.Total() != 0 {
				t.Errorf("quiet steps spent %d messages, want 0", d.Total())
			}
		})
	}
}

// TestConformanceSweepChannelSplit: a sweep with violators bills node
// reports on the node→server channel plus exactly one halt broadcast.
func TestConformanceSweepChannelSplit(t *testing.T) {
	for name, mk := range engines(16, 7) {
		t.Run(name, func(t *testing.T) {
			eng, done := mk()
			defer done()
			vals := make([]int64, 16)
			eng.Advance(vals)
			eng.SetFilter(5, filter.Make(1, 2))
			before := eng.Counters().Snapshot()
			senders := eng.Sweep(wire.Violating())
			if len(senders) == 0 {
				t.Fatal("missed violator")
			}
			d := eng.Counters().Snapshot().Sub(before)
			if d.ByChannel[metrics.Broadcast] != 1 {
				t.Errorf("halt broadcasts = %d, want 1", d.ByChannel[metrics.Broadcast])
			}
			if d.ByChannel[metrics.NodeToServer] != int64(len(senders)) {
				t.Errorf("node reports %d != senders %d",
					d.ByChannel[metrics.NodeToServer], len(senders))
			}
		})
	}
}

// TestConformanceTagAndFilterState: state mutations via broadcast rules and
// unicasts are observable identically through the Inspector.
func TestConformanceTagAndFilterState(t *testing.T) {
	for name, mk := range engines(4, 11) {
		t.Run(name, func(t *testing.T) {
			eng, done := mk()
			defer done()
			eng.Advance([]int64{1, 2, 3, 4})
			eng.SetTagFilter(1, wire.TagV2S2, filter.Make(5, 6))
			rule := wire.NewFilterRule().
				WithRetag(wire.TagV2S2, wire.TagV2).
				With(wire.TagV2, filter.Make(7, 8)).
				With(wire.TagNone, filter.Make(0, 100))
			eng.BroadcastRule(rule)
			tags, filters := eng.Tags(), eng.Filters()
			if tags[1] != wire.TagV2 || filters[1] != filter.Make(7, 8) {
				t.Errorf("node 1 state: %v %v", tags[1], filters[1])
			}
			if tags[0] != wire.TagNone || filters[0] != filter.Make(0, 100) {
				t.Errorf("node 0 state: %v %v", tags[0], filters[0])
			}
		})
	}
}

// TestConformanceDetectOnlyViolators: DetectViolation never reports a node
// that is inside its filter, across many configurations.
func TestConformanceDetectOnlyViolators(t *testing.T) {
	for name, mk := range engines(12, 13) {
		t.Run(name, func(t *testing.T) {
			eng, done := mk()
			defer done()
			for round := 0; round < 20; round++ {
				vals := make([]int64, 12)
				for i := range vals {
					vals[i] = int64(i * 10)
				}
				eng.Advance(vals)
				// Fence nodes round and round+1 out.
				a, b := round%12, (round+1)%12
				eng.SetFilter(a, filter.Make(1000, 2000))
				eng.SetFilter(b, filter.Make(1000, 2000))
				rep, ok := eng.DetectViolation()
				if !ok {
					t.Fatalf("round %d: violations missed", round)
				}
				if rep.ID != a && rep.ID != b {
					t.Fatalf("round %d: reported non-violator %d", round, rep.ID)
				}
				eng.SetFilter(a, filter.All)
				eng.SetFilter(b, filter.All)
			}
		})
	}
}

// TestConformanceDeferredReadsSeeCallOrderValues: MaxFindInit reads node
// values at execution time, so an engine deferring or batching directives
// must still execute it against the values of the PRECEDING Advance when a
// further Advance follows before any flush — the call-order semantics the
// lockstep engine has by construction. Regression test for the live
// engine's Advance coalescing.
func TestConformanceDeferredReadsSeeCallOrderValues(t *testing.T) {
	for name, mk := range engines(4, 19) {
		t.Run(name, func(t *testing.T) {
			eng, done := mk()
			defer done()
			eng.Advance([]int64{10, 1, 1, 1})
			eng.MaxFindInit(5, true) // node 0 activates: 10 > 5
			eng.Advance([]int64{0, 1, 1, 1})
			senders := eng.Sweep(wire.AboveActive(-1))
			if len(senders) != 1 || senders[0].ID != 0 {
				t.Fatalf("senders = %v, want exactly node 0 (activated at value 10, still active at value 0)", senders)
			}
		})
	}
}

// TestConformanceRoundsAccounted: sweeps and collects consume protocol
// rounds on both engines.
func TestConformanceRoundsAccounted(t *testing.T) {
	for name, mk := range engines(32, 17) {
		t.Run(name, func(t *testing.T) {
			eng, done := mk()
			defer done()
			eng.Advance(make([]int64, 32))
			eng.Sweep(wire.Violating()) // silent: γ+1 rounds
			eng.Collect(wire.InRange(0, 0))
			eng.EndStep()
			if eng.Counters().MaxRoundsPerStep() < 6 {
				t.Errorf("rounds/step = %d, want ≥ γ+2", eng.Counters().MaxRoundsPerStep())
			}
		})
	}
}
