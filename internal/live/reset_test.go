package live

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"topkmon/internal/cluster"
	"topkmon/internal/eps"
	"topkmon/internal/lockstep"
	"topkmon/internal/protocol"
	"topkmon/internal/stream"
	"topkmon/internal/wire"
)

// traceString runs a full monitoring session on eng and serialises
// everything observable about it — per-step monitor outputs, node values,
// filters, tags, and the complete counter snapshot — into one string, the
// engine's "trace" for byte-identity comparisons.
func traceString(eng cluster.Engine, trace [][]int64, k int, e eps.Eps) string {
	var b strings.Builder
	mon := protocol.NewApprox(eng, k, e)
	for ti, vals := range trace {
		eng.Advance(vals)
		if ti == 0 {
			mon.Start()
		} else {
			mon.HandleStep()
		}
		eng.EndStep()
		snap := eng.Counters().Snapshot()
		fmt.Fprintf(&b, "step %d out=%v vals=%v filters=%v tags=%v total=%d kinds=%v rounds=%d bits=%d\n",
			ti, mon.Output(), eng.Values(), eng.Filters(), eng.Tags(),
			snap.Total(), snap.ByKind, snap.MaxRounds, snap.MaxBits)
	}
	return b.String()
}

func makeTrace(n, steps int, seed uint64) [][]int64 {
	gen := stream.NewWalk(n, 5000, 300, 1<<20, seed)
	out := make([][]int64, steps)
	for t := range out {
		out[t] = gen.Next(t)
	}
	return out
}

// TestResetMatchesFresh is the Reset property test for both engines: an
// engine that has already run a complete (different-seed) monitoring
// session and is then Reset(seed) must produce a byte-identical trace to a
// freshly constructed engine with that seed — including all counter state
// and every server- and node-side coin flip.
func TestResetMatchesFresh(t *testing.T) {
	const n, k, steps = 24, 4, 120
	const warmSeed, runSeed = 11, 77
	e := eps.MustNew(1, 6)
	warmTrace := makeTrace(n, steps, 3)
	runTrace := makeTrace(n, steps, 9)

	// Reset must rewind every sharded layout identically: the shard value
	// indexes and per-shard report lists are part of the state it covers.
	mkLive := func(m int) func(seed uint64) (cluster.Engine, func()) {
		return func(seed uint64) (cluster.Engine, func()) {
			c := New(n, seed, WithShards(m))
			return c, c.Close
		}
	}
	engines := map[string]func(seed uint64) (cluster.Engine, func()){
		"lockstep": func(seed uint64) (cluster.Engine, func()) {
			return lockstep.New(n, seed), func() {}
		},
		"live/m=1":   mkLive(1),
		"live/m=2":   mkLive(2),
		"live/m=cpu": mkLive(runtime.NumCPU()),
	}
	for name, mk := range engines {
		t.Run(name, func(t *testing.T) {
			fresh, closeFresh := mk(runSeed)
			defer closeFresh()
			want := traceString(fresh, runTrace, k, e)

			warm, closeWarm := mk(warmSeed)
			defer closeWarm()
			traceString(warm, warmTrace, k, e) // dirty every piece of engine state
			warm.Reset(runSeed)
			got := traceString(warm, runTrace, k, e)
			if got != want {
				t.Errorf("reset trace diverges from fresh trace:\n%s", firstDiff(want, got))
			}

			// A second Reset replays the identical run again: Reset leaves
			// no residue of the run it just hosted.
			warm.Reset(runSeed)
			if again := traceString(warm, runTrace, k, e); again != want {
				t.Errorf("second reset diverges:\n%s", firstDiff(want, again))
			}
		})
	}
}

// TestResetIsFullRewind pins the cheap observables directly: counters
// emptied, values zeroed, filters all-admitting, tags cleared.
func TestResetIsFullRewind(t *testing.T) {
	const n = 8
	engines := map[string]func() (cluster.Engine, func()){
		"lockstep": func() (cluster.Engine, func()) { return lockstep.New(n, 5), func() {} },
		"live/m=1": func() (cluster.Engine, func()) {
			c := New(n, 5, WithShards(1))
			return c, c.Close
		},
		"live/m=2": func() (cluster.Engine, func()) {
			c := New(n, 5, WithShards(2))
			return c, c.Close
		},
	}
	for name, mk := range engines {
		t.Run(name, func(t *testing.T) {
			eng, done := mk()
			defer done()
			vals := []int64{8, 7, 6, 5, 4, 3, 2, 1}
			eng.Advance(vals)
			eng.Probe(0)
			eng.Sweep(wire.Violating())
			eng.EndStep()
			eng.Reset(99)
			if got := eng.Counters().Snapshot().Total(); got != 0 {
				t.Errorf("messages after reset = %d, want 0", got)
			}
			if got := eng.Counters().Steps(); got != 0 {
				t.Errorf("steps after reset = %d, want 0", got)
			}
			for i, v := range eng.Values() {
				if v != 0 {
					t.Errorf("node %d value = %d after reset, want 0", i, v)
				}
			}
		})
	}
}

func firstDiff(want, got string) string {
	w := strings.Split(want, "\n")
	g := strings.Split(got, "\n")
	for i := 0; i < len(w) && i < len(g); i++ {
		if w[i] != g[i] {
			return fmt.Sprintf("line %d:\n want %q\n got  %q", i, w[i], g[i])
		}
	}
	return fmt.Sprintf("length differs: want %d lines, got %d", len(w), len(g))
}
