package filter

import "testing"

// FuzzIntervalContainment cross-checks the interval algebra's membership
// invariants: Contains agrees with Violation, intersection distributes over
// membership, the clamp updates of the generic binary-search framework
// restrict exactly as specified, and halving never admits a value the
// parent interval excluded.
func FuzzIntervalContainment(f *testing.F) {
	f.Add(int64(0), int64(10), int64(5), int64(3), int64(7))
	f.Add(int64(5), int64(5), int64(5), int64(0), Inf)
	f.Add(int64(10), int64(0), int64(4), int64(1), int64(2)) // empty interval
	f.Add(int64(0), Inf, int64(1<<40), int64(0), int64(0))   // unbounded
	f.Add(int64(-3), int64(3), int64(-1), int64(-2), int64(9))
	f.Fuzz(func(t *testing.T, lo, hi, v, olo, ohi int64) {
		a, b := Make(lo, hi), Make(olo, ohi)

		if got, want := a.Contains(v), a.Violation(v) == DirNone; got != want {
			t.Fatalf("%v: Contains(%d)=%v but Violation=%v", a, v, got, a.Violation(v))
		}
		if a.Empty() && a.Contains(v) {
			t.Fatalf("empty interval %v contains %d", a, v)
		}

		if in := a.Intersect(b); in.Contains(v) != (a.Contains(v) && b.Contains(v)) {
			t.Fatalf("intersect %v ∩ %v = %v: membership of %d does not distribute", a, b, in, v)
		}

		if ca := a.ClampAbove(olo); ca.Contains(v) != (a.Contains(v) && v >= olo && v <= Inf) {
			t.Fatalf("%v.ClampAbove(%d) = %v: wrong membership of %d", a, olo, ca, v)
		}
		if cb := a.ClampBelow(ohi); cb.Contains(v) != (a.Contains(v) && v >= 0 && v <= ohi) {
			t.Fatalf("%v.ClampBelow(%d) = %v: wrong membership of %d", a, ohi, cb, v)
		}

		lh, uh := a.LowerHalf(), a.UpperHalf()
		if lh.Contains(v) && !a.Contains(v) {
			t.Fatalf("%v.LowerHalf() = %v admits excluded %d", a, lh, v)
		}
		if uh.Contains(v) && !a.Contains(v) {
			t.Fatalf("%v.UpperHalf() = %v admits excluded %d", a, uh, v)
		}
		// Halving terminates: a bounded multi-point interval shrinks
		// strictly on both sides.
		if !a.Empty() && a.Hi < Inf && a.Width() > 0 {
			if lh.Width() >= a.Width() || uh.Width() >= a.Width() {
				t.Fatalf("%v halves to %v / %v without shrinking", a, lh, uh)
			}
		}
	})
}
