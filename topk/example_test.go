package topk_test

import (
	"fmt"
	"log"

	"topkmon/topk"
)

// The basic embedding: construct a monitor over n streams, push one batch
// of observations (= one monitored time step), and read the ε-Top-k set.
func ExampleNew() {
	m, err := topk.New(2, topk.MustEpsilon(1, 8), topk.WithNodes(5), topk.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	err = m.UpdateBatch([]topk.Update{
		{Node: 0, Value: 120},
		{Node: 1, Value: 900},
		{Node: 2, Value: 340},
		{Node: 3, Value: 77},
		{Node: 4, Value: 610},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("top-2 positions:", m.TopK(nil))
	fmt.Println("valid:", m.Check() == nil)
	// Output:
	// top-2 positions: [1 4]
	// valid: true
}

// Batch ingest over many collection intervals: each UpdateBatch is one
// time step, nodes absent from a batch keep their previous value, and the
// filter protocol keeps quiet intervals free of communication.
func ExampleMonitor_UpdateBatch() {
	m, err := topk.New(1, topk.MustEpsilon(1, 4), topk.WithNodes(4), topk.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	// Interval 1: the full fleet reports.
	m.UpdateBatch([]topk.Update{
		{Node: 0, Value: 1000}, {Node: 1, Value: 400},
		{Node: 2, Value: 250}, {Node: 3, Value: 120},
	})
	// Intervals 2–4: only small fluctuations arrive; the top set is stable
	// and the monitor spends nothing.
	quiet := m.Cost().Messages
	m.UpdateBatch([]topk.Update{{Node: 1, Value: 410}})
	m.UpdateBatch([]topk.Update{{Node: 2, Value: 260}})
	m.UpdateBatch(nil) // heartbeat: time advances, nothing changed

	c := m.Cost()
	fmt.Println("steps:", c.Steps)
	fmt.Println("top-1:", m.TopK(nil))
	fmt.Println("messages during quiet intervals:", c.Messages-quiet)
	// Output:
	// steps: 4
	// top-1: [0]
	// messages during quiet intervals: 0
}

// Subscribe delivers an event for every committed step that changed the
// top-k set — the hook for reactive consumers.
func ExampleMonitor_Subscribe() {
	m, err := topk.New(1, topk.Zero, topk.WithNodes(3), topk.WithMonitor(topk.Naive))
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	events := m.Subscribe()

	m.UpdateBatch([]topk.Update{{Node: 0, Value: 10}, {Node: 1, Value: 20}, {Node: 2, Value: 30}})
	m.UpdateBatch([]topk.Update{{Node: 1, Value: 25}}) // no set change: no event
	m.UpdateBatch([]topk.Update{{Node: 0, Value: 99}}) // node 0 takes the lead

	for len(events) > 0 {
		ev := <-events
		fmt.Printf("step %d: top set is now %v\n", ev.Step, ev.TopK)
	}
	// Output:
	// step 1: top set is now [2]
	// step 3: top set is now [0]
}
