package lockstep

import (
	"reflect"
	"testing"

	"topkmon/internal/eps"
	"topkmon/internal/filter"
	"topkmon/internal/rngx"
	"topkmon/internal/wire"
)

// adversarial value distributions for the index: the shapes that stress the
// bucket coarsening hardest.
func distributions(n int, r *rngx.Source) map[string]func() []int64 {
	return map[string]func() []int64{
		"random": func() []int64 {
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = r.Int63n(1 << 30)
			}
			return vals
		},
		"all-equal": func() []int64 { // every node in ONE bucket
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = 4711
			}
			return vals
		},
		"one-hot-bucket": func() []int64 { // dense cluster + sparse rest
			vals := make([]int64, n)
			for i := range vals {
				if i%8 == 0 {
					vals[i] = r.Int63n(eps.MaxValue)
				} else {
					vals[i] = (1 << 20) + r.Int63n(1<<19) // all in bucket 21
				}
			}
			return vals
		},
		"bucket-boundaries": func() []int64 { // 2^k-1 / 2^k straddles
			vals := make([]int64, n)
			for i := range vals {
				k := uint(1 + r.Intn(38))
				vals[i] = int64(1)<<k - r.Int63n(2)
			}
			return vals
		},
		"all-zero": func() []int64 { return make([]int64, n) },
	}
}

// randomPred draws predicates covering every routing path: interval
// predicates (indexed), empty and out-of-range intervals, max-find
// predicates (necessary-only bounds), and the full-scan fallbacks.
func randomPred(r *rngx.Source) wire.Pred {
	switch r.Intn(6) {
	case 0: // in-range, possibly matching
		lo := r.Int63n(1 << 30)
		return wire.InRange(lo, lo+r.Int63n(1<<28))
	case 1: // empty interval
		return wire.InRange(9, 3)
	case 2: // above all values: no matches through the index
		return wire.InRange(eps.MaxValue-5, eps.MaxValue)
	case 3:
		return wire.AboveActive(r.Int63n(1 << 30))
	case 4:
		return wire.Violating()
	default:
		return wire.HasTag(wire.Tag(r.Intn(int(wire.NumTags))))
	}
}

// TestIndexedScanMatchesFullScan is the predicate-bounds correctness
// property test: for random predicates over adversarial value
// distributions, the index-routed Sweep/Collect must return byte-identical
// reports — and identical counters, i.e. identical messages and coin
// flips — to the full scan. Two same-seeded engines run in lockstep, one
// with the index force-disabled.
func TestIndexedScanMatchesFullScan(t *testing.T) {
	const n, rounds = 133, 80
	for name := range distributions(n, rngx.New(0)) {
		t.Run(name, func(t *testing.T) {
			r := rngx.New(911)
			dist := distributions(n, r)[name]
			indexed := New(n, 5)
			fullScan := New(n, 5)
			fullScan.disableIndex = true

			step := func(f func(e *Engine) any) {
				t.Helper()
				a, b := f(indexed), f(fullScan)
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("indexed/full-scan diverge:\nindexed  %v\nfullscan %v", a, b)
				}
			}

			for round := 0; round < rounds; round++ {
				vals := dist()
				indexed.Advance(vals)
				fullScan.Advance(vals)

				// Occasionally dirty non-value state the fallbacks depend on.
				if round%5 == 1 {
					id := r.Intn(n)
					iv := filter.Make(r.Int63n(1<<20), 1<<21)
					tg := wire.Tag(r.Intn(int(wire.NumTags)))
					indexed.SetTagFilter(id, tg, iv)
					fullScan.SetTagFilter(id, tg, iv)
				}
				if round%7 == 2 {
					floor := r.Int63n(1 << 29)
					indexed.MaxFindInit(floor, round%14 == 2)
					fullScan.MaxFindInit(floor, round%14 == 2)
				}

				p := randomPred(r)
				step(func(e *Engine) any { return append([]wire.Report(nil), e.Collect(p)...) })
				step(func(e *Engine) any { return append([]wire.Report(nil), e.Sweep(p)...) })
				if round%3 == 0 {
					e11 := func(e *Engine) any {
						e.DirectReports = true
						out := append([]wire.Report(nil), e.Sweep(p)...)
						e.DirectReports = false
						return out
					}
					step(e11)
				}
				step(func(e *Engine) any {
					rep, ok := e.DetectViolation()
					return []any{rep, ok}
				})
				indexed.EndStep()
				fullScan.EndStep()
			}

			a := indexed.Counters().Snapshot()
			b := fullScan.Counters().Snapshot()
			if a.Total() != b.Total() || !reflect.DeepEqual(a.ByKind, b.ByKind) {
				t.Fatalf("counters diverge:\nindexed  total=%d kinds=%v\nfullscan total=%d kinds=%v",
					a.Total(), a.ByKind, b.Total(), b.ByKind)
			}
		})
	}
}

// TestIndexVisitsTrackSelectivity pins the point of the index: a Collect
// whose value interval isolates a few nodes must visit far fewer node
// structs than n, while the full-scan fallbacks keep visiting all of them.
func TestIndexVisitsTrackSelectivity(t *testing.T) {
	const n = 1024
	e := New(n, 3)
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = 1 << 10 // everyone cold in bucket 11
	}
	// Four hot nodes, alone in their magnitude class.
	for _, i := range []int{5, 100, 600, 1023} {
		vals[i] = 1 << 30
	}
	e.Advance(vals)

	before := e.VisitedNodes()
	reps := e.Collect(wire.InRange(1<<29, 1<<31))
	visited := e.VisitedNodes() - before
	if len(reps) != 4 {
		t.Fatalf("collect found %d hot nodes, want 4", len(reps))
	}
	if visited != 4 {
		t.Errorf("indexed collect visited %d nodes, want exactly the 4 candidates", visited)
	}

	before = e.VisitedNodes()
	e.Collect(wire.HasTag(wire.TagNone))
	if visited := e.VisitedNodes() - before; visited != n {
		t.Errorf("tag collect (fallback) visited %d nodes, want %d", visited, n)
	}
}
