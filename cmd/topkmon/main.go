// Command topkmon runs a live ε-Top-k monitoring session: one goroutine per
// node over channels (the live engine), a chosen workload, and a chosen
// monitoring algorithm, reporting the output set and the communication
// spent as the stream evolves.
//
// Usage:
//
//	topkmon [-n 32] [-k 4] [-eps 1/8] [-steps 2000] [-workload loads]
//	        [-monitor approx] [-seed 7] [-report 200] [-engine live]
//	        [-shards 0] [-repeat 1]
//	topkmon -scenario run.json [-engine lockstep]
//
// With -repeat R the session runs R times on ONE engine, rewound between
// sessions with Engine.Reset(seed+r) — each repetition is bit-identical to
// a fresh process started with that seed, at none of the construction cost
// (for the live engine: the n goroutines are started once).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"topkmon/internal/cluster"
	"topkmon/internal/eps"
	"topkmon/internal/filter"
	"topkmon/internal/live"
	"topkmon/internal/lockstep"
	"topkmon/internal/metrics"
	"topkmon/internal/oracle"
	"topkmon/internal/protocol"
	"topkmon/internal/scenario"
	"topkmon/internal/stream"
)

func main() {
	n := flag.Int("n", 32, "number of nodes")
	k := flag.Int("k", 4, "size of the monitored top set")
	epsStr := flag.String("eps", "1/8", "allowed error ε as a fraction p/q (0/1 = exact)")
	steps := flag.Int("steps", 2000, "time steps to run")
	workload := flag.String("workload", "loads", "workload: loads|walk|jumps|oscillator")
	monitor := flag.String("monitor", "approx", "algorithm: approx|topk|exact-mid|half-eps|naive|mid-naive")
	seed := flag.Uint64("seed", 7, "random seed")
	report := flag.Int("report", 200, "status line every this many steps")
	engine := flag.String("engine", "live", "engine: live (goroutines) | lockstep")
	scenarioPath := flag.String("scenario", "", "run a JSON scenario file instead of the flag-based setup")
	parallel := flag.Int("parallel", 0,
		"cap OS-level parallelism (GOMAXPROCS) for the live engine's node goroutines; 0 keeps the runtime default")
	shards := flag.Int("shards", 0,
		"worker shards for the live engine (each owns n/m nodes and its value-bucket partition); 0 = GOMAXPROCS. Output is bit-identical for every value")
	repeat := flag.Int("repeat", 1,
		"run the session this many times, reusing one engine via Reset(seed+r) between runs")
	flag.Parse()

	if *parallel > 0 {
		runtime.GOMAXPROCS(*parallel)
	}

	var (
		gen   stream.Generator
		e     eps.Eps
		err   error
		mkM   func(cluster.Cluster) (protocol.Monitor, error)
		mkGen func(seed uint64) (stream.Generator, error)
	)
	if *scenarioPath != "" {
		f, ferr := os.Open(*scenarioPath)
		if ferr != nil {
			fail(ferr)
		}
		spec, serr := scenario.Parse(f)
		f.Close()
		if serr != nil {
			fail(serr)
		}
		// Scenario files pin their own seed, so repeats replay identically.
		mkGen = func(uint64) (stream.Generator, error) { return spec.BuildGenerator() }
		gen, err = mkGen(0)
		if err != nil {
			fail(err)
		}
		e = spec.Eps()
		*k = spec.K
		*steps = spec.Steps
		*seed = spec.Seed
		*n = gen.N()
		mkM = spec.BuildMonitor
	} else {
		e, err = parseEps(*epsStr)
		if err != nil {
			fail(err)
		}
		mkGen = func(seed uint64) (stream.Generator, error) {
			return makeWorkload(*workload, *n, seed)
		}
		gen, err = mkGen(*seed)
		if err != nil {
			fail(err)
		}
		mkM = func(c cluster.Cluster) (protocol.Monitor, error) {
			return makeMonitor(*monitor, c, *k, e)
		}
	}

	var eng cluster.Engine
	switch *engine {
	case "live":
		lc := live.New(*n, *seed, live.WithShards(*shards))
		defer lc.Close()
		eng = lc
	case "lockstep":
		eng = lockstep.New(*n, *seed)
	default:
		fail(fmt.Errorf("unknown engine %q", *engine))
	}

	for r := 0; r < *repeat; r++ {
		sessionSeed := *seed + uint64(r)
		if r > 0 {
			// One engine, many sessions: Reset rewinds it to the state a
			// fresh construction with sessionSeed would have.
			eng.Reset(sessionSeed)
			if gen, err = mkGen(sessionSeed); err != nil {
				fail(err)
			}
		}
		mon, merr := mkM(eng)
		if merr != nil {
			fail(merr)
		}
		if *repeat > 1 {
			fmt.Printf("=== session %d/%d (seed %d) ===\n", r+1, *repeat, sessionSeed)
		}
		fmt.Printf("topkmon: %s on %s, n=%d k=%d ε=%s engine=%s\n",
			mon.Name(), gen.Name(), *n, *k, e, *engine)
		runSession(eng, gen, mon, *k, e, *steps, *report)
	}
}

// runSession drives one complete monitoring session on an already-seeded
// engine, validating every output and printing the communication summary.
func runSession(eng cluster.Engine, gen stream.Generator, mon protocol.Monitor,
	k int, e eps.Eps, steps, report int) {
	adaptive, _ := gen.(stream.Adaptive)
	var invalid int
	var sc oracle.Scratch
	var filterBuf []filter.Interval
	for t := 0; t < steps; t++ {
		if adaptive != nil {
			filterBuf = eng.FiltersInto(filterBuf)
			adaptive.ObserveFilters(filterBuf, mon.Output())
		}
		vals := gen.Next(t)
		eng.Advance(vals)
		if t == 0 {
			mon.Start()
		} else {
			mon.HandleStep()
		}
		truth := oracle.ComputeInto(&sc, vals, k, e)
		if err := truth.ValidateEps(mon.Output()); err != nil {
			invalid++
			fmt.Printf("step %6d: INVALID OUTPUT: %v\n", t, err)
		}
		eng.EndStep()
		if report > 0 && (t+1)%report == 0 {
			c := eng.Counters()
			fmt.Printf("step %6d: top-%d=%v  v_k=%d  σ=%d  msgs=%d (%.3f/step)\n",
				t+1, k, mon.Output(), truth.VK, truth.Sigma,
				c.Total(), float64(c.Total())/float64(t+1))
		}
	}

	c := eng.Counters()
	fmt.Printf("\nfinished %d steps; epochs=%d, invalid outputs=%d\n", steps, mon.Epochs(), invalid)
	fmt.Printf("messages: total=%d  node→server=%d  unicast=%d  broadcast=%d\n",
		c.Total(), c.ByChannel(metrics.NodeToServer),
		c.ByChannel(metrics.ServerToNode), c.ByChannel(metrics.Broadcast))
	fmt.Printf("max rounds/step=%d  max message bits=%d\n", c.MaxRoundsPerStep(), c.MaxBits())
	fmt.Printf("by kind:\n")
	for _, kind := range c.Kinds() {
		fmt.Printf("  %-18s %d\n", kind, c.ByKind(kind))
	}
}

func parseEps(s string) (eps.Eps, error) {
	parts := strings.SplitN(s, "/", 2)
	if len(parts) != 2 {
		return eps.Eps{}, fmt.Errorf("eps must be p/q, got %q", s)
	}
	p, err1 := strconv.ParseInt(parts[0], 10, 64)
	q, err2 := strconv.ParseInt(parts[1], 10, 64)
	if err1 != nil || err2 != nil {
		return eps.Eps{}, fmt.Errorf("eps must be p/q, got %q", s)
	}
	return eps.New(p, q)
}

func makeWorkload(name string, n int, seed uint64) (stream.Generator, error) {
	switch name {
	case "loads":
		return stream.NewLoads(n, 1000, 40, 0.01, 4000, 1<<20, seed+100), nil
	case "walk":
		return stream.NewWalk(n, 10000, 200, 1<<20, seed+100), nil
	case "jumps":
		return stream.NewJumps(n, 100, 100000, seed+100), nil
	case "oscillator":
		dense := n - n/4 - 4
		return stream.NewOscillator(4, dense, n/4, 10000, 400, 1<<20, 100, seed+100), nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}

func makeMonitor(name string, c cluster.Cluster, k int, e eps.Eps) (protocol.Monitor, error) {
	switch name {
	case "approx":
		return protocol.NewApprox(c, k, e), nil
	case "topk":
		return protocol.NewTopKProto(c, k, e), nil
	case "exact-mid":
		return protocol.NewExactMid(c, k), nil
	case "half-eps":
		return protocol.NewHalfEps(c, k, e), nil
	case "naive":
		return protocol.NewNaive(c, k), nil
	case "mid-naive":
		return protocol.NewMidNaive(c, k), nil
	default:
		return nil, fmt.Errorf("unknown monitor %q", name)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "topkmon: %v\n", err)
	os.Exit(2)
}
