// Package eps provides exact rational arithmetic for the approximation error
// ε used throughout ε-Top-k-Position Monitoring.
//
// The paper compares observed integer values against the real thresholds
// (1-ε)·x and x/(1-ε). Representing ε as an exact rational p/q lets every
// correctness-critical predicate be decided by integer cross-multiplication,
// with no floating-point corner cases. Products stay within int64 because
// values are bounded by MaxValue and denominators by MaxDen.
package eps

import (
	"errors"
	"fmt"
)

// MaxValue is the largest observed value supported by the exact predicates.
// With MaxDen below, all cross-multiplications fit in int64 with slack.
const MaxValue int64 = 1 << 40

// MaxDen bounds the denominator of ε so that value·den fits in int64.
const MaxDen int64 = 1 << 20

// Eps is an exact rational error ε = Num/Den with 0 ≤ Num < Den.
// The zero value is ε = 0, i.e. the exact (non-approximate) problem.
type Eps struct {
	Num int64
	Den int64
}

// Zero is the exact problem's error: ε = 0.
var Zero = Eps{Num: 0, Den: 1}

// New returns ε = num/den after validating 0 ≤ num < den ≤ MaxDen.
func New(num, den int64) (Eps, error) {
	if den <= 0 || den > MaxDen {
		return Eps{}, fmt.Errorf("eps: denominator %d out of range (0, %d]", den, MaxDen)
	}
	if num < 0 || num >= den {
		return Eps{}, fmt.Errorf("eps: ε = %d/%d outside [0, 1)", num, den)
	}
	g := gcd(num, den)
	if g == 0 {
		g = 1
	}
	return Eps{Num: num / g, Den: den / g}, nil
}

// MustNew is New but panics on invalid input; for tests and constants.
func MustNew(num, den int64) Eps {
	e, err := New(num, den)
	if err != nil {
		panic(err)
	}
	return e
}

// ErrValueRange reports a value outside [0, MaxValue].
var ErrValueRange = errors.New("eps: value outside supported range")

// IsZero reports whether ε = 0 (the exact problem).
func (e Eps) IsZero() bool { return e.Num == 0 }

// Float returns ε as a float64 (for reporting only, never for predicates).
func (e Eps) Float() float64 {
	if e.Den == 0 {
		return 0
	}
	return float64(e.Num) / float64(e.Den)
}

// String renders ε as "p/q".
func (e Eps) String() string {
	if e.Den == 0 {
		return "0/1"
	}
	return fmt.Sprintf("%d/%d", e.Num, e.Den)
}

// den returns the denominator, treating the zero value as ε = 0/1.
func (e Eps) den() int64 {
	if e.Den == 0 {
		return 1
	}
	return e.Den
}

// omNum and omDen give 1-ε = omNum/omDen.
func (e Eps) om() (num, den int64) { return e.den() - e.Num, e.den() }

// Half returns ε/2 exactly (used by the Corollary 5.9 offline comparison).
func (e Eps) Half() Eps {
	n, d := e.Num, e.den()
	if n%2 == 0 {
		return Eps{Num: n / 2, Den: d}
	}
	if 2*d <= MaxDen {
		return Eps{Num: n, Den: 2 * d}
	}
	// Fall back to a floor at the precision limit; only reachable for
	// denominators near MaxDen, which New discourages.
	return Eps{Num: n / 2, Den: d}
}

// ClearlyAbove reports v > ref/(1-ε), i.e. v lies in E(t) relative to ref.
func (e Eps) ClearlyAbove(v, ref int64) bool {
	on, od := e.om()
	return v*on > ref*od
}

// ClearlyBelow reports v < (1-ε)·ref, i.e. v lies strictly below the
// ε-neighborhood A(t) of ref.
func (e Eps) ClearlyBelow(v, ref int64) bool {
	on, od := e.om()
	return v*od < ref*on
}

// InNeighborhood reports (1-ε)·ref ≤ v ≤ ref/(1-ε), i.e. v ∈ A(t).
func (e Eps) InNeighborhood(v, ref int64) bool {
	return !e.ClearlyAbove(v, ref) && !e.ClearlyBelow(v, ref)
}

// ShrinkFloor returns ⌊(1-ε)·x⌋. Used for conservative lower filter
// endpoints: flooring can only loosen a lower bound on the F2 side, never
// violating Observation 2.2.
func (e Eps) ShrinkFloor(x int64) int64 {
	on, od := e.om()
	return (x * on) / od
}

// ShrinkCeil returns ⌈(1-ε)·x⌉.
func (e Eps) ShrinkCeil(x int64) int64 {
	on, od := e.om()
	return ceilDiv(x*on, od)
}

// GrowFloor returns ⌊x/(1-ε)⌋. Used for conservative upper filter endpoints:
// flooring tightens the F2 upper bound, preserving ℓ ≥ (1-ε)·u exactly.
func (e Eps) GrowFloor(x int64) int64 {
	on, od := e.om()
	if on == 0 {
		return MaxValue
	}
	return (x * od) / on
}

// GrowCeil returns ⌈x/(1-ε)⌉.
func (e Eps) GrowCeil(x int64) int64 {
	on, od := e.om()
	if on == 0 {
		return MaxValue
	}
	return ceilDiv(x*od, on)
}

// FilterCompatible reports ℓ ≥ (1-ε)·u, the pairwise condition of
// Observation 2.2 between a lower endpoint ℓ of an output node's filter and
// an upper endpoint u of a non-output node's filter.
func (e Eps) FilterCompatible(l, u int64) bool {
	on, od := e.om()
	return l*od >= u*on
}

// Leq reports e ≤ o as rationals.
func (e Eps) Leq(o Eps) bool {
	return e.Num*o.den() <= o.Num*e.den()
}

func ceilDiv(a, b int64) int64 {
	if a >= 0 {
		return (a + b - 1) / b
	}
	return a / b
}

func gcd(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
