package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestCountersBasics(t *testing.T) {
	c := NewCounters()
	c.Count(NodeToServer, "probe-reply", 24)
	c.Count(NodeToServer, "probe-reply", 24)
	c.Count(Broadcast, "halt", 8)
	if c.Total() != 3 {
		t.Errorf("Total = %d", c.Total())
	}
	if c.ByChannel(NodeToServer) != 2 || c.ByChannel(Broadcast) != 1 {
		t.Error("channel counts wrong")
	}
	if c.ByKind("probe-reply") != 2 || c.ByKind("halt") != 1 {
		t.Error("kind counts wrong")
	}
	if c.MaxBits() != 24 {
		t.Errorf("MaxBits = %d", c.MaxBits())
	}
	kinds := c.Kinds()
	if len(kinds) != 2 || kinds[0] != "halt" {
		t.Errorf("Kinds = %v", kinds)
	}
}

func TestZeroValueCounters(t *testing.T) {
	var c Counters
	c.Count(Broadcast, "x", 1)
	if c.Total() != 1 {
		t.Error("zero-value Counters must be usable")
	}
}

func TestRoundTracking(t *testing.T) {
	c := NewCounters()
	c.Rounds(5)
	c.EndStep()
	c.Rounds(3)
	c.EndStep()
	if c.MaxRoundsPerStep() != 5 {
		t.Errorf("MaxRoundsPerStep = %d", c.MaxRoundsPerStep())
	}
	if c.Steps() != 2 {
		t.Errorf("Steps = %d", c.Steps())
	}
	c.Rounds(9) // current open step counts too
	if c.MaxRoundsPerStep() != 9 {
		t.Errorf("open-step rounds ignored: %d", c.MaxRoundsPerStep())
	}
}

func TestSnapshotSub(t *testing.T) {
	c := NewCounters()
	c.Count(NodeToServer, "a", 1)
	s1 := c.Snapshot()
	c.Count(NodeToServer, "a", 1)
	c.Count(Broadcast, "b", 1)
	diff := c.Snapshot().Sub(s1)
	if diff.Total() != 2 || diff.ByKind["a"] != 1 || diff.ByKind["b"] != 1 {
		t.Errorf("Sub wrong: %+v", diff)
	}
}

func TestIndexFallbackCounting(t *testing.T) {
	c := NewCounters()
	c.IndexFallback()
	c.IndexFallback()
	if c.IndexFallbacks() != 2 {
		t.Errorf("IndexFallbacks = %d, want 2", c.IndexFallbacks())
	}
	s1 := c.Snapshot()
	if s1.IndexFallbacks != 2 {
		t.Errorf("Snapshot.IndexFallbacks = %d, want 2", s1.IndexFallbacks)
	}
	c.IndexFallback()
	if d := c.Snapshot().Sub(s1); d.IndexFallbacks != 1 {
		t.Errorf("Sub.IndexFallbacks = %d, want 1", d.IndexFallbacks)
	}
	c.Reset()
	if c.IndexFallbacks() != 0 {
		t.Errorf("Reset left IndexFallbacks = %d", c.IndexFallbacks())
	}
}

func TestFaultCounters(t *testing.T) {
	c := NewCounters()
	c.DroppedMsg()
	c.DroppedMsg()
	c.DupMsg()
	c.Retry()
	c.Retry()
	c.Retry()
	c.Resync()
	c.StaleStep()
	if c.DroppedMsgs() != 2 || c.DupMsgs() != 1 || c.Retries() != 3 ||
		c.Resyncs() != 1 || c.StaleSteps() != 1 {
		t.Errorf("fault counters wrong: drop=%d dup=%d retry=%d resync=%d stale=%d",
			c.DroppedMsgs(), c.DupMsgs(), c.Retries(), c.Resyncs(), c.StaleSteps())
	}
	s1 := c.Snapshot()
	if s1.DroppedMsgs != 2 || s1.DupMsgs != 1 || s1.Retries != 3 ||
		s1.Resyncs != 1 || s1.StaleSteps != 1 {
		t.Errorf("Snapshot fault counters wrong: %+v", s1)
	}
	c.DroppedMsg()
	c.Resync()
	d := c.Snapshot().Sub(s1)
	if d.DroppedMsgs != 1 || d.DupMsgs != 0 || d.Retries != 0 ||
		d.Resyncs != 1 || d.StaleSteps != 0 {
		t.Errorf("Sub fault counters wrong: %+v", d)
	}
	c.Reset()
	if c.DroppedMsgs()|c.DupMsgs()|c.Retries()|c.Resyncs()|c.StaleSteps() != 0 {
		t.Error("Reset left fault counters nonzero")
	}
}

func TestChannelString(t *testing.T) {
	if NodeToServer.String() == "" || ServerToNode.String() == "" || Broadcast.String() == "" {
		t.Error("channels must render")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Summary wrong: %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-9 {
		t.Errorf("Std = %f", s.Std)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Error("empty summary must be zero")
	}
	one := Summarize([]float64{7})
	if one.Mean != 7 || one.Std != 0 || one.P90 != 7 {
		t.Errorf("single-sample summary wrong: %+v", one)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	s := Summarize([]float64{0, 10})
	if math.Abs(s.Median-5) > 1e-9 {
		t.Errorf("median of {0,10} = %f", s.Median)
	}
	if math.Abs(s.P90-9) > 1e-9 {
		t.Errorf("p90 of {0,10} = %f", s.P90)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 3.14159)
	tb.AddRow("b", int64(12))
	out := tb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "alpha") {
		t.Errorf("table missing content:\n%s", out)
	}
	if !strings.Contains(out, "3.142") {
		t.Errorf("float formatting wrong:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "name,value\n") {
		t.Errorf("CSV header wrong: %q", csv)
	}
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != 3 {
		t.Errorf("CSV rows wrong: %q", csv)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "a", "longheader")
	tb.AddRow("xxxxxxxxxx", 1)
	lines := strings.Split(strings.TrimRight(tb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Error("header and separator must align")
	}
}
