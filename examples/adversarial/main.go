// Adversarial: the Theorem 5.1 lower bound, live. An adaptive adversary
// watches the filters the server assigns and, each step, drops one
// output-side node just far enough to violate — any filter-based online
// algorithm is forced to spend a message per step, while the offline
// optimum (which knows the future) re-filters once per phase for k+1
// messages. The measured ratio grows linearly in σ/k, for every monitor.
package main

import (
	"fmt"
	"log"

	"topkmon/internal/cluster"
	"topkmon/internal/eps"
	"topkmon/internal/protocol"
	"topkmon/internal/sim"
	"topkmon/internal/stream"
)

func main() {
	const k = 2
	const phases = 5
	e := eps.MustNew(1, 4)

	fmt.Printf("Theorem 5.1 adversary: k=%d, ε=%s, %d phases per run\n\n", k, e, phases)
	fmt.Printf("%8s  %10s  %12s  %14s  %8s\n",
		"σ", "σ/k", "online msgs", "OPT realistic", "ratio")
	for _, sigma := range []int{6, 12, 24, 48, 96} {
		steps := phases * (sigma - k + 1)
		rep, err := sim.Run(sim.Config{
			K: k, Eps: e, Steps: steps, Seed: 5,
			Gen: stream.NewLowerBound(sigma, 4, k, e, 1<<24),
			NewMonitor: func(c cluster.Cluster) protocol.Monitor {
				return protocol.NewApprox(c, k, e)
			},
			Validate:   sim.ValidateEps,
			ComputeOPT: true, OPTEps: e,
		})
		if err != nil {
			log.Fatal(err)
		}
		opt := rep.OPTRealistic
		if opt < 1 {
			opt = 1
		}
		fmt.Printf("%8d  %10.1f  %12d  %14d  %8.1f\n",
			sigma, float64(sigma)/k, rep.Messages.Total(), opt,
			float64(rep.Messages.Total())/float64(opt))
	}
	fmt.Println("\nthe ratio scales with σ — the Ω(σ/k) lower bound is real, not an artifact.")
}
