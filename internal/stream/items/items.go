// Package items provides item-granularity workload traces for the
// heavy-hitter monitoring layer: instead of one scalar value per node per
// step (package stream), a step here is a batch of (node, item, count)
// events drawn from m logical items spread across n nodes. Generators are
// seeded and deterministic — the same seed replays the identical event
// sequence — matching the repo-wide replay contract. The package also
// hosts the exact-frequency ground truth and the tie-aware recall@k
// evaluator the experiment harness scores sketch-backed monitoring with.
package items

import (
	"fmt"
	"math"
	"sort"

	"topkmon/internal/rngx"
)

// Event is one observation: count arrivals of item at node.
type Event struct {
	Node  int
	Item  int
	Count int64
}

// Generator produces one batch of item events per time step.
type Generator interface {
	// Name identifies the workload in reports.
	Name() string
	// Nodes returns the number of distributed nodes events land on.
	Nodes() int
	// Items returns the size m of the item universe.
	Items() int
	// Next appends step t's events to dst and returns it (called with
	// t = 0, 1, … strictly in order).
	Next(t int, dst []Event) []Event
}

// zipfWeights returns the cumulative Zipf(s) weights over ranks 0..m-1
// (weight of rank r is (r+1)^-s), for inverse-CDF sampling.
func zipfWeights(m int, s float64) []float64 {
	cum := make([]float64, m)
	acc := 0.0
	for r := 0; r < m; r++ {
		acc += 1 / math.Pow(float64(r+1), s)
		cum[r] = acc
	}
	return cum
}

// sampleRank draws a rank from the cumulative weights.
func sampleRank(rng *rngx.Source, cum []float64) int {
	u := rng.Float64() * cum[len(cum)-1]
	return sort.SearchFloat64s(cum, u)
}

// scatter returns a seeded permutation mapping rank -> item id, so item
// ids carry no information about hotness (generators that kept rank==id
// would make "return the smallest ids" accidentally score well).
func scatter(m int, rng *rngx.Source) []int {
	return rng.Perm(m)
}

// --- Zipfian trace ---

// Zipf emits PerStep unit-count events per step; items follow a Zipf(s)
// rank distribution through a seeded rank->item scatter, and each event
// lands on a uniformly random node. This is the canonical skewed
// heavy-hitter workload: a few globally heavy items, a long light tail.
type Zipf struct {
	NodesN  int
	ItemsM  int
	PerStep int
	S       float64

	cum      []float64
	rankItem []int
	rng      *rngx.Source
}

// NewZipf returns a seeded zipfian item-trace generator (s > 0).
func NewZipf(nodes, items, perStep int, s float64, seed uint64) *Zipf {
	if nodes < 1 || items < 1 || perStep < 1 || s <= 0 {
		panic("items: NewZipf needs nodes, items, perStep >= 1 and s > 0")
	}
	rng := rngx.New(seed)
	return &Zipf{
		NodesN: nodes, ItemsM: items, PerStep: perStep, S: s,
		cum:      zipfWeights(items, s),
		rankItem: scatter(items, rng.Child(1)),
		rng:      rng.Child(2),
	}
}

// Name implements Generator.
func (g *Zipf) Name() string { return fmt.Sprintf("zipf(s=%.2g,m=%d)", g.S, g.ItemsM) }

// Nodes implements Generator.
func (g *Zipf) Nodes() int { return g.NodesN }

// Items implements Generator.
func (g *Zipf) Items() int { return g.ItemsM }

// Next implements Generator.
func (g *Zipf) Next(_ int, dst []Event) []Event {
	for i := 0; i < g.PerStep; i++ {
		dst = append(dst, Event{
			Node:  g.rng.Intn(g.NodesN),
			Item:  g.rankItem[sampleRank(g.rng, g.cum)],
			Count: 1,
		})
	}
	return dst
}

// --- Bursty trace ---

// Bursty layers transient hotspots over a zipfian background: each step a
// fresh burst starts with probability BurstProb, pinning a uniformly
// random item for BurstLen steps at BurstRate extra events per step (all
// on one uniformly chosen node — bursts are local, the way a flash crowd
// hits one frontend). Bursts stress the monitor's reaction time: a
// burst item must climb into the top-k while it burns and fall out after.
type Bursty struct {
	Background *Zipf
	BurstProb  float64
	BurstLen   int
	BurstRate  int64

	rng    *rngx.Source
	active []burst
}

type burst struct {
	item, node, left int
}

// NewBursty returns a seeded bursty item-trace generator over a Zipf(s)
// background.
func NewBursty(nodes, items, perStep int, s float64, burstProb float64, burstLen int, burstRate int64, seed uint64) *Bursty {
	if burstLen < 1 || burstRate < 1 {
		panic("items: NewBursty needs burstLen, burstRate >= 1")
	}
	return &Bursty{
		Background: NewZipf(nodes, items, perStep, s, seed),
		BurstProb:  burstProb, BurstLen: burstLen, BurstRate: burstRate,
		rng: rngx.New(seed).Child(3),
	}
}

// Name implements Generator.
func (g *Bursty) Name() string {
	return fmt.Sprintf("bursty(p=%g,len=%d,rate=%d)", g.BurstProb, g.BurstLen, g.BurstRate)
}

// Nodes implements Generator.
func (g *Bursty) Nodes() int { return g.Background.NodesN }

// Items implements Generator.
func (g *Bursty) Items() int { return g.Background.ItemsM }

// Next implements Generator.
func (g *Bursty) Next(t int, dst []Event) []Event {
	dst = g.Background.Next(t, dst)
	if g.rng.Bool(g.BurstProb) {
		g.active = append(g.active, burst{
			item: g.rng.Intn(g.Background.ItemsM),
			node: g.rng.Intn(g.Background.NodesN),
			left: g.BurstLen,
		})
	}
	keep := g.active[:0]
	for _, b := range g.active {
		dst = append(dst, Event{Node: b.node, Item: b.item, Count: g.BurstRate})
		if b.left--; b.left > 0 {
			keep = append(keep, b)
		}
	}
	g.active = keep
	return dst
}

// --- Adversarial churn ---

// Churn is the adversarial workload for cumulative-count monitoring: a
// zipfian trace whose rank->item assignment rotates every Period steps —
// the current hottest item is demoted to coldest and every other item
// promotes one rank. The instantaneous top-k therefore drifts
// continuously while cumulative counts (what the sketches accumulate)
// lag behind, so recall measured against a trailing window punishes any
// monitor that only ever looks backwards.
type Churn struct {
	Background *Zipf
	Period     int
}

// NewChurn returns a seeded churn generator rotating hotness every period
// steps.
func NewChurn(nodes, items, perStep int, s float64, period int, seed uint64) *Churn {
	if period < 1 {
		panic("items: NewChurn needs period >= 1")
	}
	return &Churn{Background: NewZipf(nodes, items, perStep, s, seed), Period: period}
}

// Name implements Generator.
func (g *Churn) Name() string { return fmt.Sprintf("churn(period=%d)", g.Period) }

// Nodes implements Generator.
func (g *Churn) Nodes() int { return g.Background.NodesN }

// Items implements Generator.
func (g *Churn) Items() int { return g.Background.ItemsM }

// Next implements Generator.
func (g *Churn) Next(t int, dst []Event) []Event {
	if t > 0 && t%g.Period == 0 {
		ri := g.Background.rankItem
		hot := ri[0]
		copy(ri, ri[1:])
		ri[len(ri)-1] = hot
	}
	return g.Background.Next(t, dst)
}
