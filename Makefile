GO ?= go
BENCHTIME ?= 300ms
BENCH_OUT ?= BENCH_local.json

.PHONY: all build vet test check bench bench-smoke

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

check: build vet test

# bench runs the full root benchmark suite and captures machine-readable
# JSON (test2json event stream) in $(BENCH_OUT) alongside the human-readable
# console output — the format future PRs diff with benchstat / jq.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) -json . > $(BENCH_OUT)
	@grep -o '"Output":"Benchmark[^"]*"' $(BENCH_OUT) | sed -e 's/^"Output":"//' -e 's/"$$//' -e 's/\\t/\t/g' -e 's/\\n//'
	@echo "wrote $(BENCH_OUT)"

# bench-smoke is the CI-speed variant: one iteration per benchmark.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem .
