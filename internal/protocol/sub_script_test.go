package protocol_test

import (
	"testing"

	"topkmon/internal/eps"
)

// enterSub drives the standard rig into SUBPROTOCOL: node D (id 3) is first
// observed above u_0 (S1), then below ℓ_0 (S1∩S2 → SUB). On entry D
// re-violates into S′1∩S′2 and settles at 700 with filter [ℓ′, z/(1-ε)].
func enterSub(t *testing.T) *scriptRig {
	t.Helper()
	e := eps.MustNew(1, 2)
	// A=5000 (V1: > 2000), B=C=1000 (pins z=1000), D=900, E=800 (V2),
	// F=100 (V3). L0=[500,1000], ℓ0=750, u0=1500.
	rig := newScriptRig(t, 6, 2, e, []int64{5000, 1000, 1000, 900, 800, 100})
	rig.step([]int64{5000, 1000, 1000, 1600, 800, 100}) // D → S1 (b.2)
	rig.step([]int64{5000, 1000, 1000, 700, 800, 100})  // D → S1∩S2 → SUB (c.2)
	if !rig.d.InSub() {
		t.Fatal("rig failed to enter SUBPROTOCOL")
	}
	return rig
}

// TestSubCaseA: a V1 node dropping below ℓ_r during SUB terminates it and
// halves the outer L downward (SUB case a).
func TestSubCaseA(t *testing.T) {
	rig := enterSub(t)
	h0 := rig.d.Halvings
	rig.step([]int64{600, 1000, 1000, 700, 800, 100}) // A falls below ℓ0=750
	if rig.d.InSub() {
		t.Error("SUB must terminate on a V1 down-violation")
	}
	if rig.d.Halvings <= h0 && rig.ended == 0 {
		t.Error("outer L must halve (or the epoch end)")
	}
}

// TestSubCaseAPrime: a V3 node rising above u′ during SUB moves L′ to its
// upper half with S′1 := S1; SUB continues (case a′).
func TestSubCaseAPrime(t *testing.T) {
	rig := enterSub(t)
	// L' = [500,750], ℓ'=625, u' = 1250. F → 1300 > u'.
	rig.step([]int64{5000, 1000, 1000, 700, 800, 1300})
	// SUB may legitimately still run (L' = upper half, several rounds
	// remain) — or resolve if the cascade emptied L'. Either way the
	// outer interval must not have ended the epoch on this step alone.
	if rig.ended != 0 {
		t.Error("a single V3 up-violation must not end the whole epoch")
	}
}

// TestSubCaseB1: a V2\S′ node observed above u′ when k nodes are already
// certified above moves L′ upward (case b.1: |V1|+|S′1|+1 > k with V1={A},
// S′1={D} and k=2).
func TestSubCaseB1(t *testing.T) {
	rig := enterSub(t)
	rig.step([]int64{5000, 1000, 1000, 700, 1300, 100}) // E → 1300 > u'=1250
	if rig.ended != 0 {
		t.Error("b.1 must not end the epoch outright")
	}
	// The protocol must remain live and valid; drive one more churn step.
	rig.step([]int64{5000, 1000, 1000, 700, 800, 100})
}

// TestSubCaseBPrime1: once strictly more than n-k nodes are certified below
// ℓ_r, SUB terminates and the outer L halves downward (case b′.1).
func TestSubCaseBPrime1(t *testing.T) {
	rig := enterSub(t)
	h0 := rig.d.Halvings
	// n-k = 4. Drop B, C and E below ℓ0=750; with V3={F} and D already in
	// S′2 the third certification makes |V3|+|S′2|+1 = 5 > 4: b′.1 fires.
	rig.step([]int64{5000, 700, 700, 700, 700, 100})
	if rig.d.InSub() && rig.d.Halvings <= h0 && rig.ended == 0 {
		t.Error("mass descent below ℓ_r must eventually terminate SUB via b′.1")
	}
}

// TestSubReentry: if SUB resolves a different node while the initiator
// remains in S1∩S2, SUBPROTOCOL is re-entered until the intersection
// clears (DESIGN.md interpretation 9).
func TestSubReentry(t *testing.T) {
	rig := enterSub(t)
	calls0 := rig.d.SubCalls
	// E also straddles: above u' (S′1 via b.2 — count 1+1+1 ≤ 2? No:
	// |V1|+|S′1|+1 = 1+1+1 = 3 > 2 → actually b.1 path; instead push E
	// below ℓ_r into S′2, then above zUpper to force moves).
	rig.step([]int64{5000, 1000, 1000, 700, 700, 100})  // E → S′2 (b′.2)
	rig.step([]int64{5000, 1000, 1000, 700, 2500, 100}) // E → above z/(1-ε): c′.2 then d.1 → V1
	// After any SUB termination with D still unresolved, re-entry fires.
	if rig.d.SubCalls < calls0 {
		t.Error("SubCalls went backwards")
	}
	// Keep churning; protocol must stay valid (validated in step).
	rig.step([]int64{5000, 1000, 1000, 700, 2500, 100})
	t.Logf("subCalls=%d halvings=%d ended=%d topked=%d",
		rig.d.SubCalls, rig.d.Halvings, rig.ended, rig.topked)
}

// TestSubLifecycleUnderSweep drives the rig through a long pseudo-random
// churn of the V2 band, asserting validity at every step (the rig does) and
// that the epoch machinery (sub entries, halvings, endings) all fire.
func TestSubLifecycleUnderSweep(t *testing.T) {
	rig := enterSub(t)
	vals := []int64{5000, 1000, 1000, 700, 800, 100}
	seq := []int64{1600, 650, 1300, 580, 1700, 900, 520, 1400, 760, 2100}
	for i, v := range seq {
		vals[3] = v
		if i%3 == 2 {
			vals[4] = 1500 - v/2 // counter-movement from E
		}
		rig.step(append([]int64(nil), vals...))
	}
	if rig.d.SubCalls == 0 {
		t.Error("lifecycle sweep never used SUBPROTOCOL")
	}
}
