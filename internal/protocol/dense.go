package protocol

import (
	"fmt"
	"slices"

	"topkmon/internal/cluster"
	"topkmon/internal/eps"
	"topkmon/internal/filter"
	"topkmon/internal/wire"
)

// Dense is the DENSEPROTOCOL of Section 5.2, the main technical
// contribution: an ε-Top-k monitor competitive against an offline optimum
// that may itself use the error ε. It maintains a partition of the nodes —
// V1 (must be in any optimal output), V3 (cannot be), V2 (undecided, the
// dense ε-neighborhood of the reference value z) — and a guess interval
// L ⊆ [(1-ε)z, z] containing the lower endpoint ℓ* of the optimum's upper
// filter. Rounds halve L while the sets S1/S2 record V2 nodes observed above
// u_r / below ℓ_r; a node observed on both sides triggers the nested
// SUBPROTOCOL (subproto.go). When L empties, no feasible ℓ* remains, so the
// offline optimum communicated (Lemma 5.7) and the epoch ends.
//
// Dense runs under a controller (Approx, Theorem 5.8) that decides per epoch
// between Dense and TopKProto; the OnEpochEnd and OnSwitchTopK callbacks
// hand control back.
type Dense struct {
	c cluster.Cluster
	k int
	e eps.Eps

	// Reference value and derived exact thresholds.
	z      int64
	zUpper int64 // ⌊z/(1-ε)⌋: v > zUpper ⟺ v clearly above z
	zLowC  int64 // ⌈(1-ε)z⌉:  v < zLowC  ⟺ v clearly below z

	l     filter.Interval // L_r, the guess interval for ℓ*
	round int

	v1, v2, v3 map[int]bool // partition of node ids
	s1, s2     map[int]bool // subsets of v2

	sub *subState // non-nil while SUBPROTOCOL runs

	// Preamble state (z not yet pinned; Section 5.2's opening move when
	// the k-th and (k+1)-st values differ).
	inPreamble   bool
	preVK, preV1 int64

	out    []int
	epochs int64

	// active is true between StartWithProbe and epoch end / mode switch;
	// gen increments per epoch. Handlers use both to detect re-entrant
	// restarts triggered by their own callbacks.
	active bool
	gen    int64

	// OnEpochEnd is invoked when the epoch terminates (L empty or the
	// dense premise broke); the controller restarts. Required.
	OnEpochEnd func()
	// OnSwitchTopK is invoked when all of V2 is classified (case (d)):
	// the unique-output regime applies and TOP-K-PROTOCOL takes over.
	// Required.
	OnSwitchTopK func()

	// SubCalls counts SUBPROTOCOL invocations (Lemma 5.3's factor).
	SubCalls int64
	// Halvings counts L halvings across the epoch history.
	Halvings int64

	// Trace, when set, receives a line per state transition (debugging).
	Trace func(format string, args ...any)

	rules ruleScratch
	// Reusable working memory for the per-violation bookkeeping: the
	// output recomputation buffers, the round-broadcast rule, the
	// persistent SUBPROTOCOL state, and scratch id lists for the
	// deterministic sorted iterations.
	takeBuf, fillBuf, outBuf []int
	roundRule                *wire.FilterRule
	subStore                 subState
	idBuf                    []int
}

func (d *Dense) trace(format string, args ...any) {
	if d.Trace != nil {
		d.Trace(format, args...)
	}
}

// NewDense returns the Section 5.2 monitor core.
func NewDense(c cluster.Cluster, k int, e eps.Eps) *Dense {
	if k < 1 || k >= c.N() {
		panic(fmt.Sprintf("protocol: Dense needs 1 ≤ k < n, got k=%d n=%d", k, c.N()))
	}
	if e.IsZero() {
		panic("protocol: Dense needs ε > 0; use ExactMid for the exact problem")
	}
	return &Dense{
		c: c, k: k, e: e,
		v1: map[int]bool{}, v2: map[int]bool{}, v3: map[int]bool{},
		s1: map[int]bool{}, s2: map[int]bool{},
	}
}

// clearSets empties the partition maps, keeping their buckets allocated.
func (d *Dense) clearSets() {
	clear(d.v1)
	clear(d.v2)
	clear(d.v3)
	clear(d.s1)
	clear(d.s2)
}

// Name implements Monitor.
func (d *Dense) Name() string { return "dense-protocol" }

// Epochs implements Monitor.
func (d *Dense) Epochs() int64 { return d.epochs }

// InSub reports whether SUBPROTOCOL is currently running (observability for
// tests and diagnostics).
func (d *Dense) InSub() bool { return d.sub != nil }

// Output implements Monitor.
func (d *Dense) Output() []int { return d.out }

// Start implements Monitor (standalone use; controllers call
// StartWithProbe).
func (d *Dense) Start() {
	d.StartWithProbe(TopM(d.c, d.k+1))
}

// StartWithProbe begins an epoch from a freshly probed top-(k+1) list.
// If the k-th and (k+1)-st values coincide, z is pinned immediately;
// otherwise the preamble filters F1 = [v_{k+1}, ∞], F2 = [0, v_k] hold until
// the first violation pins z (Section 5.2's opening).
func (d *Dense) StartWithProbe(reps []wire.Report) {
	d.epochs++
	d.gen++
	d.active = true
	d.sub = nil
	d.clearSets()
	vk, vk1 := reps[d.k-1].Value, reps[d.k].Value
	d.trace("epoch %d start: vk=%d vk1=%d", d.epochs, vk, vk1)
	if vk == vk1 {
		d.inPreamble = false
		d.beginWithZ(vk)
		return
	}
	d.inPreamble = true
	d.preVK, d.preV1 = vk, vk1
	d.out = ids(reps[:d.k])
	d.rules.assignTwoSided(d.c, d.out, filter.AtLeast(vk1), filter.AtMost(vk))
}

// beginWithZ classifies the nodes around z and opens round 0. It probes the
// ε-neighborhood (σ replies) and the clearly-above range (< k replies),
// matching the O(k log n + σ) initialisation of Lemma 5.3.
func (d *Dense) beginWithZ(z int64) {
	d.trace("beginWithZ z=%d", z)
	d.z = z
	d.zUpper = d.e.GrowFloor(z)
	d.zLowC = d.e.ShrinkCeil(z)

	high := d.c.Collect(wire.InRange(d.zUpper+1, filter.Inf))
	mid := d.c.Collect(wire.InRange(d.zLowC, d.zUpper))

	d.clearSets()
	for _, r := range high {
		d.v1[r.ID] = true
	}
	for _, r := range mid {
		d.v2[r.ID] = true
	}
	for i := 0; i < d.c.N(); i++ {
		if !d.v1[i] && !d.v2[i] {
			d.v3[i] = true
		}
	}
	if len(d.v1) > d.k || len(d.v1)+len(d.v2) < d.k {
		// The dense premise broke between probe and classification
		// (only possible across steps); restart.
		d.endEpoch()
		return
	}

	d.l = filter.Make(d.zLowC, z)
	d.round = 0

	// One broadcast resets everyone to V3 with its filter; V1 and V2
	// members get their tags by unicast (≤ k + σ messages).
	rule := resetAllTags(wire.TagV3).With(wire.TagV3, filter.AtMost(d.ur()))
	d.c.BroadcastRule(rule)
	d.idBuf = sortedInto(d.idBuf, d.v1)
	for _, i := range d.idBuf {
		d.c.SetTagFilter(i, wire.TagV1, filter.AtLeast(d.lr()))
	}
	d.idBuf = sortedInto(d.idBuf, d.v2)
	for _, i := range d.idBuf {
		d.c.SetTagFilter(i, wire.TagV2, filter.Make(d.lr(), d.ur()))
	}
	d.refreshOutput()
}

// lr is ℓ_r, the midpoint of L_r.
func (d *Dense) lr() int64 { return d.l.Mid() }

// ur is u_r = ⌊ℓ_r/(1-ε)⌋.
func (d *Dense) ur() int64 { return d.e.GrowFloor(d.lr()) }

// HandleStep implements Monitor (standalone use).
func (d *Dense) HandleStep() {
	drainViolations(d.c, d.Handle)
}

// Handle routes one violation to the preamble, SUBPROTOCOL, or the DENSE
// case analysis.
func (d *Dense) Handle(rep wire.Report) {
	if d.inPreamble {
		d.inPreamble = false
		// Violation from below (a rest node crossed v_k): z := v_k;
		// from above (an output node fell through v_{k+1}): z := v_{k+1}.
		if rep.Dir == filter.DirUp {
			d.beginWithZ(d.preVK)
		} else {
			d.beginWithZ(d.preV1)
		}
		return
	}
	if d.sub != nil {
		d.handleSub(rep)
		return
	}
	d.handleDense(rep)
}

// endEpoch deactivates the epoch and hands control to the controller.
func (d *Dense) endEpoch() {
	d.trace("endEpoch")
	d.active = false
	d.OnEpochEnd()
}

// switchTopK deactivates the epoch and asks the controller to run
// TOP-K-PROTOCOL (case (d): the dense cluster dissolved).
func (d *Dense) switchTopK() {
	d.trace("switchTopK")
	d.active = false
	d.OnSwitchTopK()
}

// handleDense is the step-3 case analysis of DENSEPROTOCOL.
func (d *Dense) handleDense(rep wire.Report) {
	gen := d.gen
	i := rep.ID
	switch {
	case d.v1[i]:
		// Case a: i ∈ V1 fell below ℓ_r ⇒ ℓ* < ℓ_r.
		d.trace("D.a node=%d v=%d", i, rep.Value)
		d.halveLower()
	case d.v3[i]:
		// Case a′: i ∈ V3 rose above u_r ⇒ ℓ* ≥ ℓ_r.
		d.trace("D.a' node=%d v=%d", i, rep.Value)
		d.halveUpper()
	case d.s1[i] && d.s2[i]:
		// An unresolved S1∩S2 node: SUBPROTOCOL decides it (the
		// re-entry rule; see DESIGN.md interpretation 9).
		d.trace("D.reenter node=%d", i)
		d.startSub(i)
	case d.s1[i]:
		if rep.Dir == filter.DirUp {
			// Case c.1: v > z/(1-ε) ⇒ i must be in F*.
			d.trace("D.c1 node=%d v=%d", i, rep.Value)
			d.moveToV1(i)
		} else {
			// Case c.2: also observed below ℓ_r ⇒ S1∩S2 ⇒ SUB.
			d.trace("D.c2 node=%d v=%d", i, rep.Value)
			d.s2[i] = true
			d.startSub(i)
		}
	case d.s2[i]:
		if rep.Dir == filter.DirDown {
			// Case c′.1: v < (1-ε)z ⇒ i cannot be in F*.
			d.trace("D.c'1 node=%d v=%d", i, rep.Value)
			d.moveToV3(i)
		} else {
			// Case c′.2: also observed above u_r ⇒ S1∩S2 ⇒ SUB.
			d.trace("D.c'2 node=%d v=%d", i, rep.Value)
			// Align the node's tag with its S′1 membership before
			// the SUB entry broadcast retags the disbanded S′2.
			d.s1[i] = true
			d.c.SetTagFilter(i, wire.TagV2S1, filter.Make(d.lr(), d.zUpper))
			d.startSub(i)
		}
	case d.v2[i]:
		if rep.Dir == filter.DirUp {
			// Case b: v > u_r.
			if len(d.v1)+len(d.s1)+1 > d.k {
				// b.1: more than k nodes certified above u_r.
				d.trace("D.b1 node=%d v=%d", i, rep.Value)
				d.halveUpper()
			} else {
				// b.2: record i in S1.
				d.trace("D.b2 node=%d v=%d", i, rep.Value)
				d.s1[i] = true
				d.c.SetTagFilter(i, wire.TagV2S1, filter.Make(d.lr(), d.zUpper))
				d.refreshOutput()
			}
		} else {
			// Case b′: v < ℓ_r.
			if len(d.v3)+len(d.s2)+1 > d.c.N()-d.k {
				// b′.1: more than n-k nodes certified below ℓ_r.
				d.trace("D.b'1 node=%d v=%d", i, rep.Value)
				d.halveLower()
			} else {
				// b′.2: record i in S2.
				d.trace("D.b'2 node=%d v=%d", i, rep.Value)
				d.s2[i] = true
				d.c.SetTagFilter(i, wire.TagV2S2, filter.Make(d.zLowC, d.ur()))
				d.refreshOutput()
			}
		}
	default:
		panic(fmt.Sprintf("protocol: dense violation from unclassified node %d", i))
	}
	if d.gen != gen || !d.active || d.sub != nil {
		return
	}
	d.checkTopKSwitch()
}

// halveLower sets L_{r+1} to the lower half of L_r and disbands S2
// (cases a and b′.1).
func (d *Dense) halveLower() {
	d.l = d.l.LowerHalf()
	d.Halvings++
	clear(d.s2)
	d.advanceRound( /* disbandS2 */ true, false)
}

// halveUpper sets L_{r+1} to the upper half of L_r and disbands S1
// (cases a′ and b.1).
func (d *Dense) halveUpper() {
	d.l = d.l.UpperHalf()
	d.Halvings++
	clear(d.s1)
	d.advanceRound(false /* disbandS1 */, true)
}

// advanceRound ends the protocol if L is empty, otherwise opens round r+1:
// one broadcast retags the disbanded side and installs the new round's
// filters for every tag.
func (d *Dense) advanceRound(disbandS2, disbandS1 bool) {
	d.trace("advanceRound L=%v disbandS2=%v disbandS1=%v", d.l, disbandS2, disbandS1)
	if d.l.Empty() {
		d.endEpoch()
		return
	}
	d.round++
	rule := d.freshRoundRule()
	if disbandS2 {
		rule.WithRetag(wire.TagV2S2, wire.TagV2)
		rule.WithRetag(wire.TagV2S12, wire.TagV2S1)
	}
	if disbandS1 {
		rule.WithRetag(wire.TagV2S1, wire.TagV2)
		rule.WithRetag(wire.TagV2S12, wire.TagV2S2)
	}
	d.roundFilters(rule)
	d.c.BroadcastRule(rule)
	d.refreshOutput()
}

// freshRoundRule returns the reusable broadcast rule, reset to empty.
// Engines apply rules synchronously (see cluster.Cluster.BroadcastRule), so
// one rule object serves every round broadcast.
func (d *Dense) freshRoundRule() *wire.FilterRule {
	if d.roundRule == nil {
		d.roundRule = wire.NewFilterRule()
	}
	*d.roundRule = wire.FilterRule{}
	return d.roundRule
}

// roundFilters installs the step-2 filter table for the current round.
func (d *Dense) roundFilters(rule *wire.FilterRule) {
	lr, ur := d.lr(), d.ur()
	rule.With(wire.TagV1, filter.AtLeast(lr)).
		With(wire.TagV2S1, filter.Make(lr, d.zUpper)).
		With(wire.TagV2, filter.Make(lr, ur)).
		With(wire.TagV2S2, filter.Make(d.zLowC, ur)).
		With(wire.TagV3, filter.AtMost(ur))
}

// moveToV1 moves i out of V2 (and any S-sets) into V1.
func (d *Dense) moveToV1(i int) {
	d.trace("moveToV1 node=%d", i)
	d.removeFromV2(i)
	d.v1[i] = true
	d.c.SetTagFilter(i, wire.TagV1, filter.AtLeast(d.lr()))
	d.refreshOutput()
}

// moveToV3 moves i out of V2 into V3; the upper endpoint is the current
// context's u (u_r, or u′_{r′} while SUBPROTOCOL runs).
func (d *Dense) moveToV3(i int) {
	d.trace("moveToV3 node=%d", i)
	d.removeFromV2(i)
	d.v3[i] = true
	up := d.ur()
	if d.sub != nil {
		up = d.sub.ur(d)
	}
	d.c.SetTagFilter(i, wire.TagV3, filter.AtMost(up))
	d.refreshOutput()
}

func (d *Dense) removeFromV2(i int) {
	delete(d.v2, i)
	delete(d.s1, i)
	delete(d.s2, i)
	if d.sub != nil {
		delete(d.sub.s1, i)
		delete(d.sub.s2, i)
	}
}

// checkTopKSwitch implements case (d)/(e): when V2 is fully classified —
// k nodes certified above and n-k below — the unique-output regime holds
// and the controller switches to TOP-K-PROTOCOL.
func (d *Dense) checkTopKSwitch() {
	if d.sub != nil {
		return // sub has its own check
	}
	inter := intersects(d.s1, d.s2)
	if !inter && len(d.v1)+len(d.s1) == d.k && len(d.v3)+len(d.s2) == d.c.N()-d.k {
		d.switchTopK()
	}
}

// refreshOutput recomputes F(t) = V1 ∪ (S1\S2) ∪ fill from V2\(S1∪S2);
// during SUBPROTOCOL the primed sets take over (Lemma 5.4's output — and
// S′1\S′2 ∪ (S′1∩S′2) = S′1). If no valid output of size k exists the dense
// premise broke and the epoch ends. All buffers are reused; V1 and the
// S-sets are disjoint subsets of the partition, so concatenation needs no
// dedup, and sorting makes the result independent of map iteration order.
func (d *Dense) refreshOutput() {
	s1, s2 := d.s1, d.s2
	if d.sub != nil {
		s1, s2 = d.sub.s1, d.sub.s2
	}
	take := d.takeBuf[:0]
	for i := range d.v1 {
		take = append(take, i)
	}
	for i := range s1 {
		if d.sub != nil || !s2[i] {
			take = append(take, i)
		}
	}
	d.takeBuf = take
	if len(take) > d.k {
		d.endEpoch()
		return
	}
	fill := d.fillBuf[:0]
	for i := range d.v2 {
		if !s1[i] && !s2[i] {
			fill = append(fill, i)
		}
	}
	slices.Sort(fill)
	d.fillBuf = fill
	need := d.k - len(take)
	if need > len(fill) {
		d.endEpoch()
		return
	}
	out := append(d.outBuf[:0], take...)
	out = append(out, fill[:need]...)
	slices.Sort(out)
	d.outBuf = out
	d.out = out
}

// CheckInvariants compares the engine-side tags against the server-side set
// classification and the current output against the set-derived expectation.
// Test instrumentation; returns a description of the first divergence.
func (d *Dense) CheckInvariants(tags []wire.Tag) error {
	if !d.active || d.inPreamble {
		return nil
	}
	for i := range tags {
		var want wire.Tag
		switch {
		case d.v1[i]:
			want = wire.TagV1
		case d.v3[i]:
			want = wire.TagV3
		case d.v2[i] && d.sub != nil:
			want = classTag(d.sub.s1[i], d.sub.s2[i])
		case d.v2[i]:
			want = classTag(d.s1[i], d.s2[i])
		default:
			return fmt.Errorf("dense: node %d in no set", i)
		}
		if tags[i] != want {
			return fmt.Errorf("dense: node %d tag %v, sets say %v (sub=%v)", i, tags[i], want, d.sub != nil)
		}
	}
	return nil
}

// --- small set helpers ---

func sortedIDs(m map[int]bool) []int {
	return sortedInto(make([]int, 0, len(m)), m)
}

// sortedInto appends m's keys to buf[:0] and sorts them, reusing buf's
// capacity — the allocation-free form of sortedIDs for deterministic
// iteration in hot paths.
func sortedInto(buf []int, m map[int]bool) []int {
	buf = buf[:0]
	for i := range m {
		buf = append(buf, i)
	}
	slices.Sort(buf)
	return buf
}

func intersects(a, b map[int]bool) bool {
	small, big := a, b
	if len(b) < len(a) {
		small, big = b, a
	}
	for i := range small {
		if big[i] {
			return true
		}
	}
	return false
}

// copySetInto clears dst and fills it with src's members.
func copySetInto(dst, src map[int]bool) {
	clear(dst)
	for i := range src {
		dst[i] = true
	}
}
