// Package wal is the crash-safety layer under the HTTP frontend: a
// per-tenant append-only batch log whose replay reconstructs a tenant's
// monitor bit for bit.
//
// The design leans entirely on the repo's deterministic-replay discipline
// instead of serializing engine state: a monitor is a pure function of
// (config, seed, committed batch sequence), and Reset(seed) is proven
// byte-identical to fresh construction, so durability only has to make the
// *batch sequence* durable. A recovered tenant is `build(config)` +
// `Reset(seed)` + replay of the logged batches — outputs, the full cost
// counter snapshot, and even the fault injector's coin flips come back
// identical (TestRecoveryEquivalence in internal/serve).
//
// # Log format
//
// A log is a flat file of length-prefixed, CRC-framed records:
//
//	[4-byte LE payload length][4-byte LE CRC-32C of payload][payload]
//
// The payload starts with a one-byte record kind followed by canonical
// uvarint fields:
//
//	config (1): epoch, seed, len(config JSON), config JSON
//	            — opens a config epoch: tenant created (PUT) or reset.
//	            The config bytes are opaque to this package (the frontend
//	            stores its fully-populated tenant Config).
//	batch  (2): epoch, step, len(client id), client id, seq,
//	            count, count × (node, value)
//	            — one accepted UpdateBatch == one committed step. seq is
//	            the client's idempotency sequence number (0 = none); the
//	            highest committed seq per client is the exactly-once
//	            watermark, rebuilt from these records on recovery.
//	delete (3): epoch
//	            — the tenant was deleted; replay stops and the files are
//	            removed.
//
// Decoding is strict and canonical: unknown kinds, trailing payload bytes,
// and non-minimal varints are all rejected (enforced by re-encoding each
// decoded record and comparing bytes), so `encode(decode(prefix)) ==
// prefix` holds for every valid prefix — FuzzWALDecode pins it.
//
// # Torn tails
//
// A crash can leave a partially written final record (and, under the
// weaker fsync policies, drop a suffix of records). DecodePrefix therefore
// recovers the longest valid prefix: decoding stops at the first frame
// that is short, over-long, CRC-mismatched, or non-canonical, and returns
// the byte offset where the log is to be truncated. Everything before that
// point is exact; everything after is discarded. OpenExisting performs the
// truncation so the next append continues from a clean boundary.
//
// # Fsync policies
//
// SyncAlways fsyncs after every append — an acked batch survives a kernel
// panic. SyncInterval batches fsyncs on a background ticker (default
// 100ms) — an ack may precede durability by up to one interval.
// SyncNever leaves flushing to the OS. Lifecycle records (config epochs,
// deletes) are always fsynced regardless of policy: tenant existence is
// never allowed to race a crash.
//
// # Snapshots
//
// A snapshot is deliberately tiny — {config, seed, synced log offset,
// steps, seq watermarks} — because replay *is* the state transfer. It is
// written atomically (temp file + rename) beside the log every
// snapshot-every steps (forcing an fsync first, so the recorded offset is
// durable) and on compaction. Recovery uses it as a tripwire, not a fast
// path: a log whose valid prefix is shorter than the last snapshot's
// synced offset has lost acked durable batches, and recovery fails loudly
// instead of silently serving a shorter history.
//
// # Compaction
//
// Reset opens a new config epoch, after which no earlier record can ever
// be replayed — so the frontend compacts by atomically rewriting the log
// to a single fresh config record (Store.Compact: temp file + fsync +
// rename). Seq watermarks survive compaction via the snapshot written in
// the same breath. Batches within a live epoch are never dropped; that is
// exactly the byte-identical-recovery guarantee.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"topkmon/topk"
)

// Errors returned by the package.
var (
	ErrLogClosed = errors.New("wal: log is closed")
	ErrLostData  = errors.New("wal: log lost durable data (valid prefix shorter than last snapshot)")
)

// Policy selects when appends reach stable storage.
type Policy int

const (
	// SyncAlways fsyncs after every append.
	SyncAlways Policy = iota
	// SyncInterval fsyncs on the store's background ticker.
	SyncInterval
	// SyncNever never fsyncs explicitly (the OS flushes eventually).
	SyncNever
)

// ParsePolicy parses "always", "interval", or "never".
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(s) {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always|interval|never)", s)
}

func (p Policy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Kind discriminates record payloads.
type Kind byte

const (
	// KindConfig opens a config epoch (tenant create or reset).
	KindConfig Kind = 1
	// KindBatch is one accepted update batch == one committed step.
	KindBatch Kind = 2
	// KindDelete marks the tenant deleted.
	KindDelete Kind = 3
)

// frameHeader is the fixed per-record framing overhead.
const frameHeader = 8

// MaxPayload bounds a record payload; a length prefix beyond it is treated
// as tail corruption rather than an allocation request.
const MaxPayload = 1 << 24

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one decoded log entry. Which fields are meaningful depends on
// Kind (see the package documentation for the exact payload layouts).
type Record struct {
	Kind   Kind
	Epoch  uint64        // all kinds: the config epoch this record belongs to
	Seed   uint64        // config: the seed recovery must Reset to
	Config []byte        // config: opaque tenant-config bytes (JSON)
	Step   uint64        // batch: the 1-based step this batch committed
	Client string        // batch: idempotency client id ("" = anonymous)
	Seq    uint64        // batch: idempotency sequence number (0 = none)
	Batch  []topk.Update // batch: the accepted updates

	// End is the file offset just past this record's frame, filled in by
	// DecodePrefix — the truncation point that keeps this record and drops
	// everything after it.
	End int64
}

// appendPayload appends r's canonical payload encoding to dst.
func appendPayload(dst []byte, r *Record) []byte {
	dst = append(dst, byte(r.Kind))
	dst = binary.AppendUvarint(dst, r.Epoch)
	switch r.Kind {
	case KindConfig:
		dst = binary.AppendUvarint(dst, r.Seed)
		dst = binary.AppendUvarint(dst, uint64(len(r.Config)))
		dst = append(dst, r.Config...)
	case KindBatch:
		dst = binary.AppendUvarint(dst, r.Step)
		dst = binary.AppendUvarint(dst, uint64(len(r.Client)))
		dst = append(dst, r.Client...)
		dst = binary.AppendUvarint(dst, r.Seq)
		dst = binary.AppendUvarint(dst, uint64(len(r.Batch)))
		for _, u := range r.Batch {
			dst = binary.AppendUvarint(dst, uint64(u.Node))
			dst = binary.AppendUvarint(dst, uint64(u.Value))
		}
	case KindDelete:
		// epoch only
	}
	return dst
}

// AppendFrame appends r's full frame (length, CRC, payload) to dst.
func AppendFrame(dst []byte, r *Record) []byte {
	head := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = appendPayload(dst, r)
	payload := dst[head+frameHeader:]
	binary.LittleEndian.PutUint32(dst[head:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[head+4:], crc32.Checksum(payload, castagnoli))
	return dst
}

// uvarint reads one minimally-encoded uvarint; non-minimal encodings are
// legal for binary.Uvarint but would break the canonical round-trip, so
// the re-encode check in decodePayload rejects them.
func uvarint(p []byte) (uint64, int, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, 0, errors.New("wal: truncated varint")
	}
	return v, n, nil
}

// decodePayload strictly parses one payload. Any structural problem —
// unknown kind, short field, trailing bytes, value overflow — is an error,
// which DecodePrefix treats as tail corruption.
func decodePayload(p []byte) (Record, error) {
	var r Record
	if len(p) < 1 {
		return r, errors.New("wal: empty payload")
	}
	r.Kind = Kind(p[0])
	p = p[1:]
	epoch, n, err := uvarint(p)
	if err != nil {
		return r, err
	}
	r.Epoch = epoch
	p = p[n:]
	switch r.Kind {
	case KindConfig:
		if r.Seed, n, err = uvarint(p); err != nil {
			return r, err
		}
		p = p[n:]
		clen, n, err := uvarint(p)
		if err != nil {
			return r, err
		}
		p = p[n:]
		if uint64(len(p)) < clen {
			return r, errors.New("wal: truncated config bytes")
		}
		r.Config = append([]byte(nil), p[:clen]...)
		p = p[clen:]
	case KindBatch:
		if r.Step, n, err = uvarint(p); err != nil {
			return r, err
		}
		p = p[n:]
		clen, n, err := uvarint(p)
		if err != nil {
			return r, err
		}
		p = p[n:]
		if uint64(len(p)) < clen {
			return r, errors.New("wal: truncated client id")
		}
		r.Client = string(p[:clen])
		p = p[clen:]
		if r.Seq, n, err = uvarint(p); err != nil {
			return r, err
		}
		p = p[n:]
		count, n, err := uvarint(p)
		if err != nil {
			return r, err
		}
		p = p[n:]
		if count > MaxPayload/2 {
			return r, errors.New("wal: implausible batch count")
		}
		r.Batch = make([]topk.Update, 0, count)
		for i := uint64(0); i < count; i++ {
			node, n, err := uvarint(p)
			if err != nil {
				return r, err
			}
			p = p[n:]
			value, n, err := uvarint(p)
			if err != nil {
				return r, err
			}
			p = p[n:]
			if node > 1<<31 || value > 1<<62 {
				return r, errors.New("wal: update out of encodable range")
			}
			r.Batch = append(r.Batch, topk.Update{Node: int(node), Value: int64(value)})
		}
	case KindDelete:
		// epoch only
	default:
		return r, fmt.Errorf("wal: unknown record kind %d", r.Kind)
	}
	if len(p) != 0 {
		return r, errors.New("wal: trailing payload bytes")
	}
	return r, nil
}

// DecodePrefix decodes the longest valid prefix of data and returns the
// records plus the prefix length in bytes — the clean truncation point.
// The first frame that is short, over-long, CRC-mismatched, structurally
// invalid, or non-canonical (its re-encoding differs from the stored
// bytes) ends the prefix; it and everything after it are torn tail. The
// function never fails and never panics: arbitrary input yields some valid
// (possibly empty) prefix.
func DecodePrefix(data []byte) ([]Record, int64) {
	var recs []Record
	var scratch []byte
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) < frameHeader {
			return recs, off
		}
		plen := binary.LittleEndian.Uint32(rest)
		if plen == 0 || plen > MaxPayload {
			return recs, off
		}
		if uint64(len(rest)) < frameHeader+uint64(plen) {
			return recs, off
		}
		payload := rest[frameHeader : frameHeader+plen]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(rest[4:]) {
			return recs, off
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return recs, off
		}
		// Canonical-form check: a payload that decodes but does not
		// re-encode to the same bytes (non-minimal varint, for instance)
		// would break the round-trip property, so it is corruption too.
		scratch = appendPayload(scratch[:0], &rec)
		if string(scratch) != string(payload) {
			return recs, off
		}
		off += frameHeader + int64(plen)
		rec.End = off
		recs = append(recs, rec)
	}
}

// Snapshot is the tiny durable summary written beside a log: enough to
// detect a log that lost acked data and to carry seq watermarks across
// compaction. It is NOT engine state — recovery always replays the log.
type Snapshot struct {
	Epoch      uint64            `json:"epoch"`
	Steps      int64             `json:"steps"`
	Offset     int64             `json:"offset"` // synced log bytes the snapshot vouches for
	Seed       uint64            `json:"seed"`
	Config     json.RawMessage   `json:"config"`
	Watermarks map[string]uint64 `json:"watermarks,omitempty"`
}

// Log is one tenant's append-only record file. Appends are serialized by
// an internal mutex; a failed write latches the log broken (further
// appends refuse) so a torn frame stays at the tail where recovery can
// truncate it, instead of being buried under later records.
type Log struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	policy Policy
	buf    []byte
	size   int64 // bytes appended (valid frames only)
	synced int64 // bytes known durable
	dirty  bool
	broken error
	closed bool
}

// Append encodes r, writes it as one frame, and (under SyncAlways) fsyncs.
// It returns the log size after the append — r's End offset.
func (l *Log) Append(r *Record) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrLogClosed
	}
	if l.broken != nil {
		return 0, fmt.Errorf("wal: log %s is broken by an earlier write error: %w", l.path, l.broken)
	}
	l.buf = AppendFrame(l.buf[:0], r)
	if _, err := l.f.Write(l.buf); err != nil {
		l.broken = err
		return 0, fmt.Errorf("wal: append %s: %w", l.path, err)
	}
	l.size += int64(len(l.buf))
	l.dirty = true
	if l.policy == SyncAlways {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	return l.size, nil
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		l.broken = err
		return fmt.Errorf("wal: fsync %s: %w", l.path, err)
	}
	l.dirty = false
	l.synced = l.size
	return nil
}

// Sync forces everything appended so far to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrLogClosed
	}
	return l.syncLocked()
}

// Size returns the log's current length in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// SyncedOffset returns the bytes known to be on stable storage.
func (l *Log) SyncedOffset() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.synced
}

// Close fsyncs outstanding appends and closes the file. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	serr := error(nil)
	if l.broken == nil {
		serr = l.syncLocked()
	}
	cerr := l.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// Options configures a Store.
type Options struct {
	// Dir is the data directory; one <tenant>.wal (+ optional
	// <tenant>.snap) pair per tenant.
	Dir string
	// Policy is the fsync policy for batch appends (lifecycle records are
	// always synced).
	Policy Policy
	// Interval is the SyncInterval flush period (0 = 100ms).
	Interval time.Duration
	// SnapshotEvery is the number of committed steps between durable
	// snapshots (0 = 1024).
	SnapshotEvery int
}

// Store owns a data directory of per-tenant logs: creation, recovery
// scanning, compaction, snapshots, and the SyncInterval background
// flusher.
type Store struct {
	dir    string
	policy Policy
	every  int

	mu     sync.Mutex
	logs   map[string]*Log
	closed bool

	stop chan struct{}
	done chan struct{}
}

// Open creates the data directory if needed and returns a Store.
func Open(o Options) (*Store, error) {
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 1024
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	s := &Store{dir: o.Dir, policy: o.Policy, every: o.SnapshotEvery, logs: make(map[string]*Log)}
	if o.Policy == SyncInterval {
		s.stop = make(chan struct{})
		s.done = make(chan struct{})
		go s.flusher(o.Interval)
	}
	return s, nil
}

// flusher fsyncs every dirty log each tick until Close.
func (s *Store) flusher(interval time.Duration) {
	defer close(s.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.mu.Lock()
			logs := make([]*Log, 0, len(s.logs))
			for _, l := range s.logs {
				logs = append(logs, l)
			}
			s.mu.Unlock()
			for _, l := range logs {
				l.Sync() // a closed/broken log reports its own error to appenders
			}
		}
	}
}

// SnapshotEvery returns the configured steps-between-snapshots.
func (s *Store) SnapshotEvery() int { return s.every }

// Policy returns the store's fsync policy.
func (s *Store) Policy() Policy { return s.policy }

func (s *Store) walPath(tenant string) string {
	return filepath.Join(s.dir, tenant+".wal")
}

func (s *Store) snapPath(tenant string) string {
	return filepath.Join(s.dir, tenant+".snap")
}

// List returns the tenant names with a log file, sorted.
func (s *Store) List() ([]string, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var names []string
	for _, e := range ents {
		if n, ok := strings.CutSuffix(e.Name(), ".wal"); ok && !e.IsDir() {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

func (s *Store) register(tenant string, l *Log) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrLogClosed
	}
	s.logs[tenant] = l
	return nil
}

// Create opens a fresh log for a new tenant, refusing to clobber an
// existing file: a leftover log for the same name is recovery's business,
// never silently truncated.
func (s *Store) Create(tenant string) (*Log, error) {
	f, err := os.OpenFile(s.walPath(tenant), os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{f: f, path: s.walPath(tenant), policy: s.policy}
	if err := s.register(tenant, l); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// OpenExisting reads a tenant's log, decodes the longest valid prefix,
// truncates the torn tail, cross-checks the snapshot (a valid prefix
// shorter than the snapshot's synced offset means acked durable data was
// lost — ErrLostData), and reopens the file for appending.
func (s *Store) OpenExisting(tenant string) (*Log, []Record, *Snapshot, error) {
	data, err := os.ReadFile(s.walPath(tenant))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("wal: %w", err)
	}
	recs, valid := DecodePrefix(data)
	snap, err := s.ReadSnapshot(tenant)
	if err != nil {
		return nil, nil, nil, err
	}
	if snap != nil && snap.Offset > valid {
		return nil, nil, nil, fmt.Errorf("%w: tenant %s: valid prefix %d < snapshot offset %d",
			ErrLostData, tenant, valid, snap.Offset)
	}
	f, err := os.OpenFile(s.walPath(tenant), os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("wal: %w", err)
	}
	if valid < int64(len(data)) {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, nil, fmt.Errorf("wal: truncate torn tail of %s: %w", tenant, err)
		}
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, nil, nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{f: f, path: s.walPath(tenant), policy: s.policy, size: valid, synced: valid}
	if err := s.register(tenant, l); err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	return l, recs, snap, nil
}

// Compact atomically replaces a tenant's log with a single fresh record
// (temp file + fsync + rename) and returns the new log, closing and
// superseding the old one. Used when a reset opens a new config epoch and
// every earlier record becomes unreplayable.
func (s *Store) Compact(tenant string, rec *Record) (*Log, error) {
	s.mu.Lock()
	old := s.logs[tenant]
	s.mu.Unlock()
	if old != nil {
		old.Close()
	}
	tmp := s.walPath(tenant) + ".tmp"
	frame := AppendFrame(nil, rec)
	if err := writeFileSync(tmp, frame); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, s.walPath(tenant)); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	syncDir(s.dir)
	f, err := os.OpenFile(s.walPath(tenant), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{f: f, path: s.walPath(tenant), policy: s.policy, size: int64(len(frame)), synced: int64(len(frame))}
	if err := s.register(tenant, l); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// Remove deletes a tenant's log and snapshot files and drops its log from
// the flusher set.
func (s *Store) Remove(tenant string) error {
	s.mu.Lock()
	l := s.logs[tenant]
	delete(s.logs, tenant)
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	err := os.Remove(s.walPath(tenant))
	if rerr := os.Remove(s.snapPath(tenant)); err == nil && rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
		err = rerr
	}
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("wal: %w", err)
	}
	syncDir(s.dir)
	return nil
}

// WriteSnapshot atomically writes a tenant's snapshot sidecar.
func (s *Store) WriteSnapshot(tenant string, snap *Snapshot) error {
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	tmp := s.snapPath(tenant) + ".tmp"
	if err := writeFileSync(tmp, data); err != nil {
		return err
	}
	if err := os.Rename(tmp, s.snapPath(tenant)); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	syncDir(s.dir)
	return nil
}

// ReadSnapshot returns a tenant's snapshot, nil when none exists. A
// snapshot that exists but cannot be parsed is an error: it is the
// lost-data tripwire, so recovery must not shrug it off.
func (s *Store) ReadSnapshot(tenant string) (*Snapshot, error) {
	data, err := os.ReadFile(s.snapPath(tenant))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("wal: corrupt snapshot for tenant %s: %w", tenant, err)
	}
	return &snap, nil
}

// Close stops the flusher and closes every open log (fsyncing each).
// Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	logs := make([]*Log, 0, len(s.logs))
	for _, l := range s.logs {
		logs = append(logs, l)
	}
	s.logs = make(map[string]*Log)
	s.mu.Unlock()
	if s.stop != nil {
		close(s.stop)
		<-s.done
	}
	var err error
	for _, l := range logs {
		if cerr := l.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// writeFileSync writes data to path and fsyncs it before returning.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// syncDir best-effort fsyncs a directory so renames/removals are durable.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
