// Loadbalancer: the paper's motivating scenario on the public topk API — a
// balancer in front of a web-server cluster continuously tracking the k
// most loaded servers, with real concurrency: the Live engine hosts the
// servers' node state on 4 worker shards, and the balancer only learns what
// the filter protocol tells it.
//
// The balancer reacts through Monitor.Subscribe: every committed tick that
// changes the hot set delivers one event. The demo compares the
// Theorem 5.8 controller against the naive report-every-change design on an
// identical bursty load trace.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"topkmon/topk"
)

const (
	servers = 48
	k       = 5
	steps   = 1500
)

// loadTrace pre-generates the bursty load matrix once so both monitors see
// identical data: per-server baseline noise plus sudden hotspots that decay
// geometrically.
func loadTrace() [][]int64 {
	rng := rand.New(rand.NewSource(99))
	base := make([]int64, servers)
	burst := make([]int64, servers)
	for i := range base {
		base[i] = 1000 + rng.Int63n(2001)
	}
	trace := make([][]int64, steps)
	for t := range trace {
		row := make([]int64, servers)
		for i := range row {
			if rng.Float64() < 0.004 {
				burst[i] += 4000 + rng.Int63n(8001)
			}
			burst[i] -= burst[i] / 4
			row[i] = base[i] + burst[i] + rng.Int63n(121) - 60
			if row[i] < 0 {
				row[i] = 0
			}
		}
		trace[t] = row
	}
	return trace
}

func run(trace [][]int64, algo topk.Algorithm, e topk.Epsilon, label string) int64 {
	// Four worker shards host the 48 servers' node state: each owns 12
	// nodes and their value-bucket partition, so a quiet tick wakes 4
	// workers, not 48 goroutines. The shard count never changes outputs.
	m, err := topk.New(k, e,
		topk.WithNodes(servers), topk.WithSeed(11),
		topk.WithEngine(topk.Live), topk.WithShards(4),
		topk.WithMonitor(algo))
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	events := m.Subscribe()

	hotSwaps := 0
	batch := make([]topk.Update, servers)
	for t, row := range trace {
		for i, v := range row {
			batch[i] = topk.Update{Node: i, Value: v}
		}
		if err := m.UpdateBatch(batch); err != nil {
			log.Fatal(err)
		}
		if err := m.Check(); err != nil {
			log.Fatalf("%s step %d: %v", label, t, err)
		}
		// React to hot-set changes; the balancer would re-route here.
		for len(events) > 0 {
			<-events
			hotSwaps++
		}
	}
	c := m.Cost()
	fmt.Printf("%-22s messages=%7d (%.3f/step)  hot-set changes=%d\n",
		label, c.Messages, float64(c.Messages)/steps, hotSwaps)
	return c.Messages
}

func main() {
	fmt.Printf("balancer tracking top-%d of %d servers over %d ticks\n\n", k, servers, steps)
	trace := loadTrace()
	e := topk.MustEpsilon(1, 10)
	filtered := run(trace, topk.Approx, e, "approx (ε=1/10)")
	naive := run(trace, topk.Naive, e, "naive report-all")
	fmt.Printf("\nfilter-based monitoring sent %.1fx fewer messages\n",
		float64(naive)/float64(filtered))
}
