package sketch

import (
	"reflect"
	"testing"
)

// decodeOps turns fuzz bytes into a bounded op sequence over a small item
// universe (small on purpose: collisions, evictions, and decrement rounds
// must actually happen). Each op consumes 3 bytes: item selector, delta
// selector, and an op selector that occasionally interleaves Estimate
// calls (which must never disturb state).
type fuzzOp struct {
	item  uint64
	delta int64
}

func decodeOps(data []byte) []fuzzOp {
	const maxOps = 4096
	var ops []fuzzOp
	for i := 0; i+2 < len(data) && len(ops) < maxOps; i += 3 {
		ops = append(ops, fuzzOp{
			item: uint64(data[i]) % 48,
			// Deltas include 0 and negatives, which Observe must ignore.
			delta: int64(int8(data[i+1])),
		})
	}
	return ops
}

// checkAgainstTruth asserts the per-sketch estimate invariants against the
// exact counts. over is true for sketches that never under-estimate
// (Space-Saving, Count-Min), false for never-over (Misra-Gries).
func checkAgainstTruth(t *testing.T, s Summary, truth map[uint64]int64, over bool) {
	t.Helper()
	for item := uint64(0); item < 48; item++ {
		f := truth[item]
		est, bound := s.Estimate(item)
		if f < est-bound || f > est+bound {
			t.Fatalf("%s: item %d true %d outside est %d +- %d", s.Name(), item, f, est, bound)
		}
		if over && est < f {
			t.Fatalf("%s: under-estimate item %d: est %d < true %d", s.Name(), item, est, f)
		}
		if !over && est > f {
			t.Fatalf("%s: over-estimate item %d: est %d > true %d", s.Name(), item, est, f)
		}
	}
}

// fuzzSummary drives one sketch through the decoded ops, checking the
// estimate invariants along the way and the Reset-replay contract at the
// end: Reset(seed) + identical replay must reproduce the identical Heavy
// snapshot, Total, and ErrorBound (Reset idempotence / replay contract).
func fuzzSummary(t *testing.T, s Summary, data []byte, over bool) {
	ops := decodeOps(data)
	truth := make(map[uint64]int64)
	replay := func() {
		for i, op := range ops {
			s.Observe(op.item, op.delta)
			if i%64 == 63 {
				// Interleaved reads must not disturb state.
				s.Estimate(op.item)
				s.Heavy(8, nil)
			}
		}
	}
	replay()
	for _, op := range ops {
		if op.delta > 0 {
			truth[op.item] += op.delta
		}
	}
	checkAgainstTruth(t, s, truth, over)
	if s.ErrorBound() < 0 {
		t.Fatalf("%s: negative ErrorBound", s.Name())
	}

	h1, t1, e1 := s.Heavy(64, nil), s.Total(), s.ErrorBound()
	s.Reset(42)
	if s.Total() != 0 {
		t.Fatalf("%s: Total %d after Reset, want 0", s.Name(), s.Total())
	}
	if h := s.Heavy(64, nil); len(h) != 0 {
		t.Fatalf("%s: %d heavy items after Reset, want none", s.Name(), len(h))
	}
	replay()
	h2, t2, e2 := s.Heavy(64, nil), s.Total(), s.ErrorBound()
	if !reflect.DeepEqual(h1, h2) || t1 != t2 || e1 != e2 {
		t.Fatalf("%s: Reset replay diverged:\n%v total=%d bound=%d\n%v total=%d bound=%d",
			s.Name(), h1, t1, e1, h2, t2, e2)
	}
}

// FuzzSpaceSaving fuzzes the Space-Saving invariants: no panics on any
// input, estimates never below the true count and never above it by more
// than the tracked bound, and Reset replay is byte-identical. Capacities
// are derived from the input so eviction pressure varies.
func FuzzSpaceSaving(f *testing.F) {
	f.Add(uint8(4), []byte{})
	f.Add(uint8(1), []byte{0, 1, 0, 0, 1, 0, 1, 1, 0})
	f.Add(uint8(8), []byte{5, 10, 0, 5, 10, 0, 7, 1, 0, 9, 3, 0, 11, 2, 0})
	f.Add(uint8(2), []byte{1, 255, 0, 2, 128, 0, 3, 127, 0, 1, 0, 0})
	f.Fuzz(func(t *testing.T, capSel uint8, data []byte) {
		capacity := int(capSel)%24 + 1
		fuzzSummary(t, NewSpaceSaving(capacity), data, true)
		// Misra-Gries shares the counter-table machinery; fuzz it in the
		// same session under the dual (never-over-estimate) invariant.
		fuzzSummary(t, NewMisraGries(capacity), data, false)
	})
}

// FuzzCountMin fuzzes the Count-Min over-estimate invariant (estimates
// never below the true count, whatever the collisions), no panics, and
// Reset(seed) replay identity — including across the keeper.
func FuzzCountMin(f *testing.F) {
	f.Add(uint8(3), uint8(2), uint64(1), []byte{})
	f.Add(uint8(0), uint8(0), uint64(7), []byte{1, 1, 0, 2, 1, 0, 3, 1, 0})
	f.Add(uint8(16), uint8(1), uint64(42), []byte{9, 100, 0, 9, 100, 0, 4, 50, 0})
	f.Fuzz(func(t *testing.T, widthSel, depthSel uint8, seed uint64, data []byte) {
		width := int(widthSel)%32 + 1
		depth := int(depthSel)%4 + 1
		track := int(widthSel)%8 + 1
		c := NewCountMin(width, depth, track, seed)
		ops := decodeOps(data)
		truth := make(map[uint64]int64)
		for _, op := range ops {
			c.Observe(op.item, op.delta)
			if op.delta > 0 {
				truth[op.item] += op.delta
			}
		}
		for item := uint64(0); item < 48; item++ {
			est, _ := c.Estimate(item)
			if est < truth[item] {
				t.Fatalf("count-min under-estimates item %d: est %d < true %d", item, est, truth[item])
			}
		}
		h1, t1 := c.Heavy(track, nil), c.Total()
		c.Reset(seed)
		for _, op := range ops {
			c.Observe(op.item, op.delta)
		}
		h2, t2 := c.Heavy(track, nil), c.Total()
		if !reflect.DeepEqual(h1, h2) || t1 != t2 {
			t.Fatalf("count-min Reset replay diverged:\n%v total=%d\n%v total=%d", h1, t1, h2, t2)
		}
		// A different seed is a different sketch but the invariant holds.
		c.Reset(seed + 1)
		for _, op := range ops {
			c.Observe(op.item, op.delta)
		}
		for item := uint64(0); item < 48; item++ {
			est, _ := c.Estimate(item)
			if est < truth[item] {
				t.Fatalf("count-min (reseeded) under-estimates item %d: est %d < true %d", item, est, truth[item])
			}
		}
	})
}
