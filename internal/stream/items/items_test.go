package items

import (
	"reflect"
	"sort"
	"testing"
)

// collect runs a generator for steps steps and returns the concatenated
// events plus the per-item exact totals.
func collect(g Generator, steps int) ([]Event, []int64) {
	var evs []Event
	counts := make([]int64, g.Items())
	for t := 0; t < steps; t++ {
		before := len(evs)
		evs = g.Next(t, evs)
		for _, e := range evs[before:] {
			counts[e.Item] += e.Count
		}
	}
	return evs, counts
}

func generators(seed uint64) []Generator {
	return []Generator{
		NewZipf(8, 64, 200, 1.1, seed),
		NewBursty(8, 64, 100, 1.1, 0.2, 5, 50, seed),
		NewChurn(8, 64, 200, 1.3, 10, seed),
	}
}

// TestDeterministicReplay pins the replay contract: the same constructor
// arguments produce byte-identical event sequences, and a different seed
// produces a different one (guarding against an ignored seed).
func TestDeterministicReplay(t *testing.T) {
	a, b := generators(7), generators(7)
	other := generators(8)
	for i := range a {
		e1, _ := collect(a[i], 40)
		e2, _ := collect(b[i], 40)
		if !reflect.DeepEqual(e1, e2) {
			t.Fatalf("%s: same seed diverged", a[i].Name())
		}
		e3, _ := collect(other[i], 40)
		if reflect.DeepEqual(e1, e3) {
			t.Fatalf("%s: different seed replayed identically", a[i].Name())
		}
	}
}

// TestEventRanges checks every emitted event is in-universe with a
// positive count.
func TestEventRanges(t *testing.T) {
	for _, g := range generators(3) {
		evs, _ := collect(g, 30)
		if len(evs) == 0 {
			t.Fatalf("%s: no events", g.Name())
		}
		for _, e := range evs {
			if e.Node < 0 || e.Node >= g.Nodes() {
				t.Fatalf("%s: node %d out of [0,%d)", g.Name(), e.Node, g.Nodes())
			}
			if e.Item < 0 || e.Item >= g.Items() {
				t.Fatalf("%s: item %d out of [0,%d)", g.Name(), e.Item, g.Items())
			}
			if e.Count < 1 {
				t.Fatalf("%s: non-positive count %d", g.Name(), e.Count)
			}
		}
	}
}

// TestZipfSkew guards the workload against accidental uniformity: under
// s=1.3 the hottest item must dominate the median by a wide margin.
func TestZipfSkew(t *testing.T) {
	_, counts := collect(NewZipf(4, 64, 500, 1.3, 11), 40)
	sorted := append([]int64(nil), counts...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] > sorted[b] })
	if sorted[0] < 5*max64(sorted[32], 1) {
		t.Fatalf("zipf not skewed: max %d vs median %d", sorted[0], sorted[32])
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// TestBurstyInjectsBursts checks bursts actually fire and route extra
// mass somewhere: with p=1 every step starts a burst, so some item must
// exceed anything the pure background could give it.
func TestBurstyInjectsBursts(t *testing.T) {
	g := NewBursty(4, 64, 10, 1.1, 1.0, 4, 100, 5)
	_, counts := collect(g, 20)
	var total int64
	for _, c := range counts {
		total += c
	}
	// Background is 10 events/step * 20 steps = 200; bursts add ~4*100 per
	// step once saturated. Anything under 2x background means bursts died.
	if total < 400 {
		t.Fatalf("bursty produced only %d total count; bursts not firing", total)
	}
}

// TestChurnRotatesHotness checks the adversarial property: the identity
// of the per-window hottest item changes across rotation periods.
func TestChurnRotatesHotness(t *testing.T) {
	g := NewChurn(4, 32, 400, 1.5, 5, 9)
	hot := map[int]bool{}
	for window := 0; window < 6; window++ {
		counts := make([]int64, g.Items())
		var evs []Event
		for t0 := 0; t0 < 5; t0++ {
			evs = g.Next(window*5+t0, evs[:0])
			for _, e := range evs {
				counts[e.Item] += e.Count
			}
		}
		best := 0
		for i, c := range counts {
			if c > counts[best] {
				best = i
			}
		}
		hot[best] = true
	}
	if len(hot) < 3 {
		t.Fatalf("churn kept the same hot item: only %d distinct leaders in 6 windows", len(hot))
	}
}

// bruteRecall is an independent reference implementation of tie-aware
// recall@k, written as differently as possible from Truth.RecallAt: full
// sort of (count, id) pairs, explicit tie set, set-membership hits.
func bruteRecall(counts []int64, k int, approx []int) float64 {
	type pair struct {
		item int
		cnt  int64
	}
	ps := make([]pair, len(counts))
	for i, c := range counts {
		ps[i] = pair{i, c}
	}
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].cnt != ps[b].cnt {
			return ps[a].cnt > ps[b].cnt
		}
		return ps[a].item < ps[b].item
	})
	kk := k
	if kk > len(ps) {
		kk = len(ps)
	}
	if kk == 0 {
		return 1
	}
	thr := ps[kk-1].cnt
	ok := map[int]bool{}
	for _, p := range ps {
		if p.cnt >= thr {
			ok[p.item] = true
		}
	}
	if len(approx) > k {
		approx = approx[:k]
	}
	seen := map[int]bool{}
	hits := 0
	for _, it := range approx {
		if it >= 0 && it < len(counts) && ok[it] && !seen[it] {
			hits++
			seen[it] = true
		}
	}
	return float64(hits) / float64(kk)
}

// TestRecallGoldenZipf cross-checks the evaluator against the brute-force
// reference on a real zipfian trace, for many k and many candidate
// answers (exact, rotated, partially wrong, junk ids, duplicates).
func TestRecallGoldenZipf(t *testing.T) {
	g := NewZipf(4, 48, 300, 1.1, 21)
	tr := NewTruth(48)
	var evs []Event
	for step := 0; step < 30; step++ {
		evs = g.Next(step, evs[:0])
		tr.ObserveEvents(evs)
	}
	counts := make([]int64, 48)
	for i := range counts {
		counts[i] = tr.Count(i)
	}

	answers := [][]int{
		tr.TopK(8, nil),
		tr.TopK(4, nil),
		{0, 1, 2, 3, 4, 5, 6, 7},
		{47, 46, 45, 44},
		{-1, 99, 0, 0, 1}, // junk + duplicate
		{},
	}
	for _, k := range []int{1, 2, 4, 8, 16, 48, 60} {
		for ai, ans := range answers {
			got := tr.RecallAt(k, ans)
			want := bruteRecall(counts, k, ans)
			if got != want {
				t.Fatalf("recall@%d answer %d: evaluator %v != brute force %v", k, ai, got, want)
			}
		}
	}
	// Non-vacuity: the exact top-8 must score 1, the 4 coldest items must
	// not (the trace is skewed, so cold != hot).
	if r := tr.RecallAt(8, tr.TopK(8, nil)); r != 1 {
		t.Fatalf("exact top-8 scored %v, want 1", r)
	}
	ord := tr.rank()
	cold := []int{ord[47], ord[46], ord[45], ord[44]}
	if r := tr.RecallAt(4, cold); r == 1 {
		t.Fatalf("coldest items scored perfect recall; evaluator is vacuous")
	}
}

// TestRecallAllEqualTies pins the tie convention on an all-equal trace:
// every item has the same count, so ANY k distinct in-range items are a
// correct top-k and must score recall 1.
func TestRecallAllEqualTies(t *testing.T) {
	tr := NewTruth(16)
	for i := 0; i < 16; i++ {
		tr.Observe(i, 7)
	}
	for _, ans := range [][]int{{0, 1, 2, 3}, {12, 3, 9, 0}, {15, 14, 13, 12}} {
		if r := tr.RecallAt(4, ans); r != 1 {
			t.Fatalf("all-equal trace: answer %v scored %v, want 1", ans, r)
		}
		if r := bruteRecall(tr.counts, 4, ans); r != 1 {
			t.Fatalf("brute force disagrees on ties: %v", r)
		}
	}
	// Duplicates still cost: {3,3,3,3} names only one distinct item.
	if r := tr.RecallAt(4, []int{3, 3, 3, 3}); r != 0.25 {
		t.Fatalf("duplicate answer scored %v, want 0.25", r)
	}
}

// TestTruthTopKAndThreshold pins the deterministic order and threshold.
func TestTruthTopKAndThreshold(t *testing.T) {
	tr := NewTruth(6)
	for item, c := range map[int]int64{0: 5, 1: 9, 2: 5, 3: 1, 4: 9} {
		tr.Observe(item, c)
	}
	got := tr.TopK(4, nil)
	want := []int{1, 4, 0, 2} // 9,9 then 5,5 — ties by ascending id
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopK = %v, want %v", got, want)
	}
	if thr := tr.Threshold(4); thr != 5 {
		t.Fatalf("Threshold(4) = %d, want 5", thr)
	}
	if tr.Total() != 29 {
		t.Fatalf("Total = %d, want 29", tr.Total())
	}
	tr.Reset()
	if tr.Total() != 0 || tr.Count(1) != 0 {
		t.Fatalf("Reset did not zero the truth")
	}
}
