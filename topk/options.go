package topk

import (
	"topkmon/internal/cluster"
	"topkmon/internal/eps"
	"topkmon/internal/protocol"
)

// EngineKind selects the execution substrate hosting the n nodes.
type EngineKind int

const (
	// Lockstep is the deterministic sequential engine: nodes are plain
	// structs, rounds are loops. The default — cheapest per step,
	// bit-reproducible, and exactly the paper's synchronous model.
	Lockstep EngineKind = iota
	// Live is the concurrent engine: m worker goroutines (see WithShards)
	// each own a contiguous shard of nodes and communicate over channels.
	// Observably identical to Lockstep for equal seeds.
	Live
)

// String implements fmt.Stringer.
func (k EngineKind) String() string {
	switch k {
	case Lockstep:
		return "lockstep"
	case Live:
		return "live"
	default:
		return "EngineKind(?)"
	}
}

// Algorithm selects which of the paper's monitoring protocols runs on the
// engine.
type Algorithm int

const (
	// Approx is the Theorem 5.8 controller (the default): DENSEPROTOCOL
	// inside dense phases, TOP-K-PROTOCOL otherwise — the paper's
	// best-of-both σ-dependent monitor.
	Approx Algorithm = iota
	// Exact is the exact monitor of Corollary 3.3 (ε is ignored; values
	// must be pairwise distinct, as the paper assumes via identifier
	// tie-breaking).
	Exact
	// TopKProtocol is the four-phase TOP-K-PROTOCOL of Section 4.
	TopKProtocol
	// Dense is DENSEPROTOCOL of Section 5.2; ε-correct in the dense regime
	// it is designed for (many nodes inside the ε-neighborhood).
	Dense
	// HalfEps is the Corollary 5.9 monitor: runs at ε/2 to be competitive
	// against the ε/2-optimum while outputting valid ε-Top-k sets.
	HalfEps
	// Naive is the report-every-change baseline.
	Naive
	// MidNaive is the midpoint-probing exact baseline.
	MidNaive
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case Approx:
		return "approx"
	case Exact:
		return "exact"
	case TopKProtocol:
		return "topk-protocol"
	case Dense:
		return "dense"
	case HalfEps:
		return "half-eps"
	case Naive:
		return "naive"
	case MidNaive:
		return "mid-naive"
	default:
		return "Algorithm(?)"
	}
}

// config collects the construction options of New.
type config struct {
	nodes  int
	engine EngineKind
	shards int
	algo   Algorithm
	seed   uint64

	// faults, when non-nil, wraps the engine in the deterministic fault
	// injector and arms the recovery supervisor (see WithFaults).
	faults *FaultPlan

	// Harness scaffolding (module-internal): a pre-built engine and/or a
	// custom monitor constructor injected by internal/sim and the tests.
	rawEngine cluster.Engine
	monitorFn func(cluster.Cluster) protocol.Monitor
}

// Option configures New.
type Option func(*config)

// WithNodes sets the number of monitored node streams n. Required unless an
// engine is injected; k must satisfy 1 ≤ k ≤ n.
func WithNodes(n int) Option {
	return func(c *config) { c.nodes = n }
}

// WithEngine selects the execution substrate (default Lockstep).
func WithEngine(k EngineKind) Option {
	return func(c *config) { c.engine = k }
}

// WithShards sets the Live engine's worker count m: each worker owns a
// contiguous shard of roughly n/m nodes and its value-bucket partition.
// m ≤ 0 (the default) means GOMAXPROCS; the shard count never affects
// outputs, counters, or coin flips. Ignored by the Lockstep engine.
func WithShards(m int) Option {
	return func(c *config) { c.shards = m }
}

// WithMonitor selects the monitoring algorithm (default Approx).
func WithMonitor(a Algorithm) Option {
	return func(c *config) { c.algo = a }
}

// WithSeed sets the root random seed; every run with equal seeds, pushes,
// and options replays bit for bit. The default seed is 1.
func WithSeed(seed uint64) Option {
	return func(c *config) { c.seed = seed }
}

// WithClusterEngine injects a pre-built engine instead of constructing one.
// It is harness scaffolding for the module's own internal/sim and test
// packages (the parameter type lives under internal/, so code outside this
// module cannot call it): the engine must be freshly constructed or Reset —
// all node values zero — because the Monitor mirrors values from that
// state, and it stays owned by the caller (Close will not stop it).
func WithClusterEngine(e cluster.Engine) Option {
	return func(c *config) { c.rawEngine = e }
}

// WithMonitorFunc injects a custom monitor constructor, overriding
// WithMonitor. Harness scaffolding like WithClusterEngine — internal/sim
// runs every experiment's monitor through the facade with it.
func WithMonitorFunc(fn func(cluster.Cluster) protocol.Monitor) Option {
	return func(c *config) { c.monitorFn = fn }
}

// newMonitorFn resolves the configured algorithm to a constructor.
func (c *config) newMonitorFn(k int, e eps.Eps) func(cluster.Cluster) protocol.Monitor {
	if c.monitorFn != nil {
		return c.monitorFn
	}
	switch c.algo {
	case Exact:
		return func(cl cluster.Cluster) protocol.Monitor { return protocol.NewExactMid(cl, k) }
	case TopKProtocol:
		return func(cl cluster.Cluster) protocol.Monitor { return protocol.NewTopKProto(cl, k, e) }
	case Dense:
		return func(cl cluster.Cluster) protocol.Monitor { return protocol.NewDense(cl, k, e) }
	case HalfEps:
		return func(cl cluster.Cluster) protocol.Monitor { return protocol.NewHalfEps(cl, k, e) }
	case Naive:
		return func(cl cluster.Cluster) protocol.Monitor { return protocol.NewNaive(cl, k) }
	case MidNaive:
		return func(cl cluster.Cluster) protocol.Monitor { return protocol.NewMidNaive(cl, k) }
	default:
		return func(cl cluster.Cluster) protocol.Monitor { return protocol.NewApprox(cl, k, e) }
	}
}
