package oracle

import (
	"reflect"
	"testing"
	"testing/quick"

	"topkmon/internal/eps"
	"topkmon/internal/rngx"
)

func TestComputeKnownExample(t *testing.T) {
	// Values: id0=100 id1=95 id2=80 id3=50 id4=10; k=2; ε=1/4.
	// v_k = 95; E = (126.67, ∞) → none; A = [71.25, 126.67] → {0,1,2}.
	e := eps.MustNew(1, 4)
	tr := Compute([]int64{100, 95, 80, 50, 10}, 2, e)
	if tr.VK != 95 {
		t.Errorf("VK = %d", tr.VK)
	}
	if len(tr.Clearly) != 0 {
		t.Errorf("Clearly = %v", tr.Clearly)
	}
	if !reflect.DeepEqual(tr.Neighborhood, []int{0, 1, 2}) {
		t.Errorf("Neighborhood = %v", tr.Neighborhood)
	}
	if tr.Sigma != 3 {
		t.Errorf("Sigma = %d", tr.Sigma)
	}
	if !reflect.DeepEqual(tr.TopK(), []int{0, 1}) {
		t.Errorf("TopK = %v", tr.TopK())
	}
}

func TestIdentifierTieBreak(t *testing.T) {
	tr := Compute([]int64{50, 50, 50}, 2, eps.Zero)
	if !reflect.DeepEqual(tr.TopK(), []int{0, 1}) {
		t.Errorf("tie-break TopK = %v", tr.TopK())
	}
}

func TestValidateEpsAcceptsNeighborhoodSwap(t *testing.T) {
	e := eps.MustNew(1, 4)
	// 100, 95, 90, 10: k=2 → v_k=95, A ∋ {100, 95, 90}. Output {0,2}
	// (swapping 95 for 90) is legal.
	tr := Compute([]int64{100, 95, 90, 10}, 2, e)
	if err := tr.ValidateEps([]int{0, 2}); err != nil {
		t.Errorf("neighborhood swap rejected: %v", err)
	}
	if err := tr.ValidateEps([]int{0, 1}); err != nil {
		t.Errorf("exact top-k rejected: %v", err)
	}
	// Output containing the clearly-low node 3 is invalid.
	if err := tr.ValidateEps([]int{0, 3}); err == nil {
		t.Error("clearly-low node accepted")
	}
}

func TestValidateEpsRequiresClearlyAbove(t *testing.T) {
	e := eps.MustNew(1, 4)
	// 1000 is clearly above v_k=95 (95/0.75 ≈ 126.7): must be in output.
	tr := Compute([]int64{1000, 95, 94, 93}, 2, e)
	if err := tr.ValidateEps([]int{1, 2}); err == nil {
		t.Error("output missing a clearly-above node accepted")
	}
	if err := tr.ValidateEps([]int{0, 2}); err != nil {
		t.Errorf("legal output rejected: %v", err)
	}
}

func TestValidateEpsSizeAndDuplicates(t *testing.T) {
	tr := Compute([]int64{5, 4, 3}, 2, eps.MustNew(1, 2))
	if err := tr.ValidateEps([]int{0}); err == nil {
		t.Error("wrong-size output accepted")
	}
	if err := tr.ValidateEps([]int{0, 0}); err == nil {
		t.Error("duplicate ids accepted")
	}
	if err := tr.ValidateEps([]int{0, 9}); err == nil {
		t.Error("out-of-range id accepted")
	}
}

func TestValidateExact(t *testing.T) {
	tr := Compute([]int64{9, 8, 7, 6}, 2, eps.Zero)
	if err := tr.ValidateExact([]int{0, 1}); err != nil {
		t.Errorf("exact top-k rejected: %v", err)
	}
	if err := tr.ValidateExact([]int{0, 2}); err == nil {
		t.Error("wrong set accepted as exact")
	}
}

func TestUnique(t *testing.T) {
	e := eps.MustNew(1, 4)
	// v_{k+1}=50 < 0.75·95: unique.
	if !Compute([]int64{100, 95, 50}, 2, e).Unique() {
		t.Error("clear gap must be unique")
	}
	// v_{k+1}=90 ≥ 0.75·95: ambiguous.
	if Compute([]int64{100, 95, 90}, 2, e).Unique() {
		t.Error("dense neighborhood must not be unique")
	}
	if !Compute([]int64{3, 2}, 2, e).Unique() {
		t.Error("k = n must be unique")
	}
}

// TestExactTopKAlwaysValidEps: the exact top-k satisfies the ε-relaxation
// for every ε — a structural property the protocols rely on.
func TestExactTopKAlwaysValidEps(t *testing.T) {
	rng := rngx.New(5)
	prop := func(seed uint64) bool {
		r := rng.Child(seed)
		n := 2 + r.Intn(12)
		k := 1 + r.Intn(n)
		e := eps.MustNew(int64(r.Intn(9)), 10)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = r.Int63n(1000)
		}
		tr := Compute(vals, k, e)
		return tr.ValidateEps(tr.TopK()) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestClearlySubsetOfTopK: |E(t)| < k always (at most k-1 nodes can be
// clearly above the k-th largest).
func TestClearlyFewerThanK(t *testing.T) {
	rng := rngx.New(6)
	prop := func(seed uint64) bool {
		r := rng.Child(seed)
		n := 2 + r.Intn(12)
		k := 1 + r.Intn(n)
		e := eps.MustNew(int64(r.Intn(9)), 10)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = r.Int63n(100)
		}
		return len(Compute(vals, k, e).Clearly) < k
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestComputePanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("k=0 must panic")
		}
	}()
	Compute([]int64{1, 2}, 0, eps.Zero)
}
