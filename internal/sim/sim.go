// Package sim drives complete monitoring runs: a workload generator feeds
// the public topk facade (which batches each step's values into one engine
// step — the very ingest path embedders use), the oracle validates every
// output, and the offline package prices the adversary's optimum on the
// recorded trace. The resulting Report carries everything the experiment
// harness tabulates.
//
// Running through the facade instead of calling the engine directly is
// deliberate: every experiment and property test in this repository then
// exercises the public API, and the facade-equivalence tests prove the
// indirection byte-identical to direct engine use. The engine itself stays
// injected (Config.Engine) and visible to sim for the pieces that are
// simulation scaffolding, not ingest: Inspector snapshots for adaptive
// adversaries and the final counter snapshot.
package sim

import (
	"fmt"

	"topkmon/internal/cluster"
	"topkmon/internal/eps"
	"topkmon/internal/filter"
	"topkmon/internal/lockstep"
	"topkmon/internal/metrics"
	"topkmon/internal/offline"
	"topkmon/internal/oracle"
	"topkmon/internal/protocol"
	"topkmon/internal/stream"
	"topkmon/topk"
)

// Validate selects the per-step output check.
type Validate int

const (
	// ValidateNone skips output validation (pure benchmarking).
	ValidateNone Validate = iota
	// ValidateEps checks the ε-Top-k properties each step.
	ValidateEps
	// ValidateExact checks output == exact top-k each step.
	ValidateExact
)

// Config describes one run.
type Config struct {
	K     int
	Eps   eps.Eps
	Steps int
	Seed  uint64

	// Gen supplies the streams; adaptive generators see filters/output.
	Gen stream.Generator
	// NewMonitor builds the algorithm under test on the engine.
	NewMonitor func(c cluster.Cluster) protocol.Monitor

	Validate Validate

	// ComputeOPT solves the offline optimum on the recorded trace with
	// OPTEps (which may differ from Eps, e.g. ε/2 for Corollary 5.9).
	ComputeOPT bool
	OPTEps     eps.Eps

	// Engine overrides the default lockstep engine (the live engine's
	// integration tests inject theirs; the experiment harness injects
	// per-worker engines rewound with Engine.Reset(Seed), which is
	// state-identical to the fresh construction Run would perform).
	// Run uses the engine as handed over — callers reusing one engine
	// across runs are responsible for the Reset between them.
	Engine cluster.Engine

	// KeepTrace retains the recorded matrix in the report.
	KeepTrace bool
}

// Report summarises one run.
type Report struct {
	Monitor  string
	Workload string
	N        int
	K        int
	Eps      eps.Eps
	Steps    int

	Messages metrics.Snapshot
	Epochs   int64

	SigmaMax     int
	OPTBreaks    int
	OPTRealistic int64

	// RatioLB is messages / max(1, OPT breaks): the empirical competitive
	// ratio against the break lower bound.
	RatioLB float64

	MaxRounds int64
	MaxBits   int

	Trace [][]int64
}

// Run executes the configured simulation. It returns an error on the first
// invalid output (with full step context) — validation is the reproduction's
// correctness instrument, so it fails loudly.
func Run(cfg Config) (Report, error) {
	if cfg.Gen == nil || cfg.NewMonitor == nil {
		return Report{}, fmt.Errorf("sim: Gen and NewMonitor are required")
	}
	if cfg.Steps < 1 {
		return Report{}, fmt.Errorf("sim: need at least one step")
	}
	eng := cfg.Engine
	if eng == nil {
		eng = lockstep.New(cfg.Gen.N(), cfg.Seed)
	}
	// The run goes through the public facade: each generator step is pushed
	// as one UpdateBatch, which performs the exact Advance → Start /
	// HandleStep → EndStep sequence this loop used to issue directly (the
	// facade-equivalence tests pin the byte-identity).
	m, err := topk.New(cfg.K, topk.WrapEps(cfg.Eps),
		topk.WithClusterEngine(eng), topk.WithMonitorFunc(cfg.NewMonitor))
	if err != nil {
		return Report{}, fmt.Errorf("sim: %w", err)
	}
	defer m.Close()

	rep := Report{
		Monitor:  m.AlgorithmName(),
		Workload: cfg.Gen.Name(),
		N:        cfg.Gen.N(),
		K:        cfg.K,
		Eps:      cfg.Eps,
		Steps:    cfg.Steps,
	}
	adaptive, _ := cfg.Gen.(stream.Adaptive)

	// The recorded trace is only needed for offline pricing or on request;
	// skipping it keeps pure monitoring runs free of per-step retention.
	needTrace := cfg.ComputeOPT || cfg.KeepTrace
	var trace [][]int64
	if needTrace {
		trace = make([][]int64, 0, cfg.Steps)
	}

	// Per-step scratch, reused across all T steps: the oracle buffers, the
	// adaptive-adversary filter snapshot, the push batch, and the output
	// buffer the facade's TopK fills.
	var sc oracle.Scratch
	var filterBuf []filter.Interval
	batch := make([]topk.Update, 0, cfg.Gen.N())
	var outBuf []int

	for t := 0; t < cfg.Steps; t++ {
		if adaptive != nil {
			filterBuf = eng.FiltersInto(filterBuf)
			outBuf = m.TopK(outBuf)
			adaptive.ObserveFilters(filterBuf, outBuf)
		}
		vals := cfg.Gen.Next(t)
		if needTrace {
			trace = append(trace, vals)
		}

		batch = batch[:0]
		for i, v := range vals {
			batch = append(batch, topk.Update{Node: i, Value: v})
		}
		if err := m.UpdateBatch(batch); err != nil {
			return rep, fmt.Errorf("sim: step %d: %w", t, err)
		}

		if cfg.Validate != ValidateNone {
			truth := oracle.ComputeInto(&sc, vals, cfg.K, cfg.Eps)
			if truth.Sigma > rep.SigmaMax {
				rep.SigmaMax = truth.Sigma
			}
			outBuf = m.TopK(outBuf)
			var err error
			if cfg.Validate == ValidateExact {
				err = truth.ValidateExact(outBuf)
			} else {
				err = truth.ValidateEps(outBuf)
			}
			if err != nil {
				return rep, fmt.Errorf("sim: step %d, monitor %s on %s: %w",
					t, rep.Monitor, rep.Workload, err)
			}
		}
	}

	rep.Messages = eng.Counters().Snapshot()
	rep.Epochs = m.Epochs()
	rep.MaxRounds = rep.Messages.MaxRounds
	rep.MaxBits = rep.Messages.MaxBits

	if cfg.ComputeOPT {
		optEps := cfg.OPTEps
		inst, err := offline.NewInstance(trace, cfg.K, optEps)
		if err != nil {
			return rep, fmt.Errorf("sim: offline instance: %w", err)
		}
		res := inst.Solve()
		rep.OPTBreaks = res.Breaks
		rep.OPTRealistic = res.Realistic
		denom := float64(res.Breaks)
		if denom < 1 {
			denom = 1
		}
		rep.RatioLB = float64(rep.Messages.Total()) / denom
		if rep.SigmaMax == 0 {
			rep.SigmaMax = inst.SigmaMax()
		}
	}
	if cfg.KeepTrace {
		rep.Trace = trace
	}
	return rep, nil
}
