package rngx

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must replay identically")
		}
	}
}

func TestSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds collided %d times in 64 draws", same)
	}
}

func TestChildDecorrelation(t *testing.T) {
	root := New(7)
	c1, c2 := root.Child(1), root.Child(2)
	if c1.Uint64() == c2.Uint64() {
		t.Error("children of distinct ids should diverge immediately")
	}
	// Child derivation must not consume parent state.
	r1, r2 := New(7), New(7)
	r1.Child(5)
	if r1.Uint64() != r2.Uint64() {
		t.Error("Child must not advance the parent stream")
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		if v := s.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := s.Int63n(1 << 40); v < 0 || v >= 1<<40 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) must panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(9)
	var sum float64
	const trials = 20000
	for i := 0; i < trials; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
		sum += f
	}
	if mean := sum / trials; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Float64 mean %f far from 0.5", mean)
	}
}

func TestBoolEdgesAndRate(t *testing.T) {
	s := New(11)
	if s.Bool(0) {
		t.Error("Bool(0) must be false")
	}
	if !s.Bool(1) {
		t.Error("Bool(1) must be true")
	}
	hits := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-0.25) > 0.02 {
		t.Errorf("Bool(0.25) rate %f", rate)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(13)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation at %d", v)
		}
		seen[v] = true
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(17)
	var sum, sumSq float64
	const trials = 50000
	for i := 0; i < trials; i++ {
		x := s.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Errorf("normal mean %f", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance %f", variance)
	}
}
