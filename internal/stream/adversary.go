package stream

import (
	"fmt"

	"topkmon/internal/eps"
	"topkmon/internal/filter"
)

// LowerBound is the adaptive adversary of Theorem 5.1. Sigma nodes start at
// Y0 (the rest clearly below); each step the adversary inspects the
// monitor's filters and drops one output-side node still at Y0 to
// Y1 < (1-ε)·Y0, forcing a filter violation — any valid filter set must
// leave some droppable node, as the theorem's argument shows. After σ-k
// drops it restores the σ nodes to Y0 and repeats, extending the instance
// to arbitrary length while an offline algorithm pays only k+1 messages per
// phase.
type LowerBound struct {
	Sigma int // nodes starting at Y0 (σ ∈ [k+1, n])
	Rest  int // additional clearly-low nodes
	K     int
	Eps   eps.Eps
	Y0    int64
	Y1    int64 // must satisfy Y1 < (1-ε)·Y0
	Low   int64 // level of the Rest nodes (clearly below Y1's neighborhood)

	cur     []int64
	filters []filter.Interval
	output  []int
	dropped int
}

// NewLowerBound builds the Theorem 5.1 instance. It derives Y1 as the
// largest integer strictly below (1-ε)·Y0.
func NewLowerBound(sigma, rest, k int, e eps.Eps, y0 int64) *LowerBound {
	if sigma < k+1 {
		panic(fmt.Sprintf("stream: lower bound needs σ ≥ k+1, got σ=%d k=%d", sigma, k))
	}
	y1 := e.ShrinkCeil(y0) - 1 // largest integer < (1-ε)·y0
	if y1 < 1 {
		panic("stream: y0 too small to fit y1 < (1-ε)·y0")
	}
	g := &LowerBound{
		Sigma: sigma, Rest: rest, K: k, Eps: e,
		Y0: y0, Y1: y1, Low: y1 / 4,
	}
	g.cur = make([]int64, sigma+rest)
	for i := 0; i < sigma; i++ {
		g.cur[i] = y0
	}
	for i := sigma; i < len(g.cur); i++ {
		g.cur[i] = g.Low
	}
	return g
}

// Name implements Generator.
func (g *LowerBound) Name() string { return fmt.Sprintf("thm5.1(σ=%d,k=%d)", g.Sigma, g.K) }

// N implements Generator.
func (g *LowerBound) N() int { return g.Sigma + g.Rest }

// ObserveFilters implements Adaptive.
func (g *LowerBound) ObserveFilters(filters []filter.Interval, output []int) {
	g.filters = filters
	g.output = output
}

// Next implements Generator. Step 0 emits the initial configuration; each
// later step drops one victim, preferring an output node at Y0 whose filter
// the drop violates.
func (g *LowerBound) Next(t int) []int64 {
	if t == 0 {
		return append([]int64(nil), g.cur...)
	}
	if g.dropped >= g.Sigma-g.K {
		// Phase over: restore and start the next phase.
		for i := 0; i < g.Sigma; i++ {
			g.cur[i] = g.Y0
		}
		g.dropped = 0
		return append([]int64(nil), g.cur...)
	}
	victim := g.pickVictim()
	if victim >= 0 {
		g.cur[victim] = g.Y1
		g.dropped++
	}
	return append([]int64(nil), g.cur...)
}

// pickVictim chooses an output-side node still at Y0 whose filter's lower
// bound exceeds Y1, so the drop is guaranteed to violate. As argued in
// Theorem 5.1 such a node must exist under any valid filter set; the
// fallbacks (any output node at Y0, then any node at Y0) only fire against
// invalid or unknown filters.
func (g *LowerBound) pickVictim() int {
	inOut := make(map[int]bool, len(g.output))
	for _, id := range g.output {
		inOut[id] = true
	}
	for i := 0; i < g.Sigma; i++ {
		if g.cur[i] == g.Y0 && inOut[i] && g.filterLo(i) > g.Y1 {
			return i
		}
	}
	for i := 0; i < g.Sigma; i++ {
		if g.cur[i] == g.Y0 && inOut[i] {
			return i
		}
	}
	for i := 0; i < g.Sigma; i++ {
		if g.cur[i] == g.Y0 {
			return i
		}
	}
	return -1
}

func (g *LowerBound) filterLo(i int) int64 {
	if g.filters == nil || i >= len(g.filters) {
		return filter.Inf // unknown: assume the drop violates
	}
	return g.filters[i].Lo
}
