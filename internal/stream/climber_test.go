package stream

import (
	"testing"

	"topkmon/internal/filter"
)

func TestClimberShape(t *testing.T) {
	g := NewClimber(3, 5, 1<<20)
	if g.N() != 9 {
		t.Fatalf("N = %d", g.N())
	}
	first := g.Next(0)
	// Plateau values distinct and above Top.
	seen := map[int64]bool{}
	for i := 0; i < 3; i++ {
		if first[i] <= 1<<20 || seen[first[i]] {
			t.Fatalf("plateau value %d invalid", first[i])
		}
		seen[first[i]] = true
	}
	if first[3] != g.LowBase {
		t.Fatalf("climber must start at LowBase, got %d", first[3])
	}
	for i := 4; i < 9; i++ {
		if first[i] >= g.LowBase {
			t.Fatalf("fill node %d at %d not below LowBase", i, first[i])
		}
	}
}

// TestClimberChasesFilterCap: each step the climber lands one past its
// filter's upper endpoint until it overtakes, then demotes.
func TestClimberChasesFilterCap(t *testing.T) {
	g := NewClimber(2, 3, 1<<16)
	n := g.N()
	g.Next(0)
	filters := make([]filter.Interval, n)
	for i := range filters {
		filters[i] = filter.All
	}
	// Simulate a bisecting monitor: cap at successive midpoints.
	cap := int64(1 << 15)
	for step := 1; step <= 3; step++ {
		filters[2] = filter.AtMost(cap)
		g.ObserveFilters(filters, nil)
		vals := g.Next(step)
		if vals[2] != cap+1 {
			t.Fatalf("step %d: climber at %d, want %d", step, vals[2], cap+1)
		}
		cap += (1<<16 - cap) / 2
	}
	// Cap at the plateau edge: the climber must overtake.
	minTop := int64(1<<16) + 2
	filters[2] = filter.AtMost(minTop - 1)
	g.ObserveFilters(filters, nil)
	vals := g.Next(4)
	if vals[2] != minTop+1 {
		t.Fatalf("expected overtake to %d, got %d", minTop+1, vals[2])
	}
	// Next step: demotion and a counted cycle.
	g.ObserveFilters(filters, nil)
	vals = g.Next(5)
	if vals[2] != g.LowBase {
		t.Fatalf("expected demotion to %d, got %d", g.LowBase, vals[2])
	}
	if g.Cycles != 1 {
		t.Fatalf("Cycles = %d", g.Cycles)
	}
}

// TestClimberDemotesOnUnboundedFilter: an output-side (unbounded) filter on
// the climber also completes the cycle.
func TestClimberDemotesOnUnboundedFilter(t *testing.T) {
	g := NewClimber(2, 3, 1<<16)
	n := g.N()
	g.Next(0)
	filters := make([]filter.Interval, n)
	for i := range filters {
		filters[i] = filter.AtLeast(0)
	}
	g.ObserveFilters(filters, nil)
	vals := g.Next(1)
	if vals[2] != g.LowBase {
		t.Fatalf("unbounded filter must demote, got %d", vals[2])
	}
	if g.Cycles != 1 {
		t.Fatalf("Cycles = %d", g.Cycles)
	}
}

func TestClimberValidatesArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("rest=0 must panic")
		}
	}()
	NewClimber(1, 0, 1<<16)
}
