// Package sim drives complete monitoring runs: a workload generator feeds a
// cluster engine, a monitor processes each step, the oracle validates every
// output, and the offline package prices the adversary's optimum on the
// recorded trace. The resulting Report carries everything the experiment
// harness tabulates.
package sim

import (
	"fmt"

	"topkmon/internal/cluster"
	"topkmon/internal/eps"
	"topkmon/internal/filter"
	"topkmon/internal/lockstep"
	"topkmon/internal/metrics"
	"topkmon/internal/offline"
	"topkmon/internal/oracle"
	"topkmon/internal/protocol"
	"topkmon/internal/stream"
)

// Validate selects the per-step output check.
type Validate int

const (
	// ValidateNone skips output validation (pure benchmarking).
	ValidateNone Validate = iota
	// ValidateEps checks the ε-Top-k properties each step.
	ValidateEps
	// ValidateExact checks output == exact top-k each step.
	ValidateExact
)

// Config describes one run.
type Config struct {
	K     int
	Eps   eps.Eps
	Steps int
	Seed  uint64

	// Gen supplies the streams; adaptive generators see filters/output.
	Gen stream.Generator
	// NewMonitor builds the algorithm under test on the engine.
	NewMonitor func(c cluster.Cluster) protocol.Monitor

	Validate Validate

	// ComputeOPT solves the offline optimum on the recorded trace with
	// OPTEps (which may differ from Eps, e.g. ε/2 for Corollary 5.9).
	ComputeOPT bool
	OPTEps     eps.Eps

	// Engine overrides the default lockstep engine (the live engine's
	// integration tests inject theirs; the experiment harness injects
	// per-worker engines rewound with Engine.Reset(Seed), which is
	// state-identical to the fresh construction Run would perform).
	// Run uses the engine as handed over — callers reusing one engine
	// across runs are responsible for the Reset between them.
	Engine cluster.Engine

	// KeepTrace retains the recorded matrix in the report.
	KeepTrace bool
}

// Report summarises one run.
type Report struct {
	Monitor  string
	Workload string
	N        int
	K        int
	Eps      eps.Eps
	Steps    int

	Messages metrics.Snapshot
	Epochs   int64

	SigmaMax     int
	OPTBreaks    int
	OPTRealistic int64

	// RatioLB is messages / max(1, OPT breaks): the empirical competitive
	// ratio against the break lower bound.
	RatioLB float64

	MaxRounds int64
	MaxBits   int

	Trace [][]int64
}

// Run executes the configured simulation. It returns an error on the first
// invalid output (with full step context) — validation is the reproduction's
// correctness instrument, so it fails loudly.
func Run(cfg Config) (Report, error) {
	if cfg.Gen == nil || cfg.NewMonitor == nil {
		return Report{}, fmt.Errorf("sim: Gen and NewMonitor are required")
	}
	if cfg.Steps < 1 {
		return Report{}, fmt.Errorf("sim: need at least one step")
	}
	eng := cfg.Engine
	if eng == nil {
		eng = lockstep.New(cfg.Gen.N(), cfg.Seed)
	}
	mon := cfg.NewMonitor(eng)

	rep := Report{
		Monitor:  mon.Name(),
		Workload: cfg.Gen.Name(),
		N:        cfg.Gen.N(),
		K:        cfg.K,
		Eps:      cfg.Eps,
		Steps:    cfg.Steps,
	}
	adaptive, _ := cfg.Gen.(stream.Adaptive)

	// The recorded trace is only needed for offline pricing or on request;
	// skipping it keeps pure monitoring runs free of per-step retention.
	needTrace := cfg.ComputeOPT || cfg.KeepTrace
	var trace [][]int64
	if needTrace {
		trace = make([][]int64, 0, cfg.Steps)
	}

	// Per-step scratch: the oracle buffers and the adaptive-adversary
	// filter snapshot are reused across all T steps.
	var sc oracle.Scratch
	var filterBuf []filter.Interval

	for t := 0; t < cfg.Steps; t++ {
		if adaptive != nil {
			filterBuf = eng.FiltersInto(filterBuf)
			adaptive.ObserveFilters(filterBuf, mon.Output())
		}
		vals := cfg.Gen.Next(t)
		eng.Advance(vals)
		if needTrace {
			trace = append(trace, vals)
		}

		if t == 0 {
			mon.Start()
		} else {
			mon.HandleStep()
		}

		if cfg.Validate != ValidateNone {
			truth := oracle.ComputeInto(&sc, vals, cfg.K, cfg.Eps)
			if truth.Sigma > rep.SigmaMax {
				rep.SigmaMax = truth.Sigma
			}
			var err error
			if cfg.Validate == ValidateExact {
				err = truth.ValidateExact(mon.Output())
			} else {
				err = truth.ValidateEps(mon.Output())
			}
			if err != nil {
				return rep, fmt.Errorf("sim: step %d, monitor %s on %s: %w",
					t, rep.Monitor, rep.Workload, err)
			}
		}
		eng.EndStep()
	}

	rep.Messages = eng.Counters().Snapshot()
	rep.Epochs = mon.Epochs()
	rep.MaxRounds = rep.Messages.MaxRounds
	rep.MaxBits = rep.Messages.MaxBits

	if cfg.ComputeOPT {
		optEps := cfg.OPTEps
		inst, err := offline.NewInstance(trace, cfg.K, optEps)
		if err != nil {
			return rep, fmt.Errorf("sim: offline instance: %w", err)
		}
		res := inst.Solve()
		rep.OPTBreaks = res.Breaks
		rep.OPTRealistic = res.Realistic
		denom := float64(res.Breaks)
		if denom < 1 {
			denom = 1
		}
		rep.RatioLB = float64(rep.Messages.Total()) / denom
		if rep.SigmaMax == 0 {
			rep.SigmaMax = inst.SigmaMax()
		}
	}
	if cfg.KeepTrace {
		rep.Trace = trace
	}
	return rep, nil
}
