package sketch

import (
	"fmt"
	"math"
)

// CountMin is the Cormode–Muthukrishnan sketch: depth rows of width
// counters, each row under an independent seeded hash; an item's estimate
// is the minimum of its row cells. With non-negative deltas it never
// under-estimates, and the standard analysis bounds the over-estimate by
// eps*N with eps = e/width, failing with probability at most e^-depth —
// probabilistic where Space-Saving and Misra-Gries are exact, which is why
// the seed participates in Reset. Because a bare CMS cannot enumerate
// items, a track-slot min-heap keeper (the min-heap + frequency-map top-k
// of the heavy-hitters literature) retains the highest-estimate items seen
// so Heavy works; the keeper is deterministic (ties broken by item id).
type CountMin struct {
	width, depth int
	seed         uint64
	rows         []int64 // depth * width, row-major
	rowSeed      []uint64
	total        int64

	// Heavy keeper: up to track items with the largest estimates.
	track int
	hcnt  []int64
	hitem []uint64
	hn    int
	hheap []int32
	hpos  []int32
	hidx  oaTable
	ord   heavyOrder
}

// NewCountMin returns a Count-Min sketch of depth x width counters whose
// heavy keeper retains the track highest-estimate items (all >= 1). The
// seed derives the row hash functions.
func NewCountMin(width, depth, track int, seed uint64) *CountMin {
	if width < 1 || depth < 1 || track < 1 {
		panic("sketch: CountMin width, depth, track must all be >= 1")
	}
	c := &CountMin{
		width: width, depth: depth, seed: seed, track: track,
		rows:    make([]int64, width*depth),
		rowSeed: make([]uint64, depth),
		hcnt:    make([]int64, track),
		hitem:   make([]uint64, track),
		hheap:   make([]int32, 0, track),
		hpos:    make([]int32, track),
		hidx:    newOATable(track),
	}
	c.ord = heavyOrder{order: make([]int32, 0, track), cnt: c.hcnt, item: c.hitem}
	for i := range c.rowSeed {
		c.rowSeed[i] = hashSeed(seed, i)
	}
	return c
}

// CountMinWidth returns the width achieving over-estimate <= eps*N in the
// standard analysis (width = ceil(e/eps)).
func CountMinWidth(eps float64) int { return int(math.Ceil(math.E / eps)) }

// CountMinDepth returns the depth achieving failure probability <= delta
// (depth = ceil(ln(1/delta))).
func CountMinDepth(delta float64) int { return int(math.Ceil(math.Log(1 / delta))) }

// Name implements Summary.
func (c *CountMin) Name() string {
	return fmt.Sprintf("count-min(w=%d,d=%d,track=%d)", c.width, c.depth, c.track)
}

// Total implements Summary.
func (c *CountMin) Total() int64 { return c.total }

// ErrorBound implements Summary: ceil(e*N/width), the eps*N of the
// standard analysis. Unlike the counter sketches' exact bounds it holds
// with probability 1-e^-depth per item; the unit tests pin it on seeded
// traces where it is deterministic.
func (c *CountMin) ErrorBound() int64 {
	return int64(math.Ceil(math.E * float64(c.total) / float64(c.width)))
}

func (c *CountMin) cell(row int, item uint64) *int64 {
	h := mix(item ^ c.rowSeed[row])
	return &c.rows[row*c.width+int(h%uint64(c.width))]
}

// Observe implements Summary.
func (c *CountMin) Observe(item uint64, delta int64) {
	if delta <= 0 {
		return
	}
	c.total += delta
	est := int64(math.MaxInt64)
	for r := 0; r < c.depth; r++ {
		p := c.cell(r, item)
		*p += delta
		if *p < est {
			est = *p
		}
	}
	// Keeper update: track the item if it is already kept, there is room,
	// or it now beats the smallest kept estimate (strictly — deterministic).
	if slot := c.hidx.get(item); slot >= 0 {
		c.hcnt[slot] = est
		c.hSiftDown(c.hpos[slot])
		return
	}
	if c.hn < c.track {
		slot := int32(c.hn)
		c.hn++
		c.hcnt[slot] = est
		c.hitem[slot] = item
		c.hidx.put(item, slot)
		c.hheap = append(c.hheap, slot)
		c.hpos[slot] = int32(len(c.hheap) - 1)
		c.hSiftUp(int32(len(c.hheap) - 1))
		return
	}
	slot := c.hheap[0]
	if est <= c.hcnt[slot] {
		return
	}
	c.hidx.del(c.hitem[slot])
	c.hcnt[slot] = est
	c.hitem[slot] = item
	c.hidx.put(item, slot)
	c.hSiftDown(0)
}

// Estimate implements Summary.
func (c *CountMin) Estimate(item uint64) (est, bound int64) {
	est = int64(math.MaxInt64)
	for r := 0; r < c.depth; r++ {
		if v := *c.cell(r, item); v < est {
			est = v
		}
	}
	return est, c.ErrorBound()
}

// Heavy implements Summary: the keeper's items by (estimate descending,
// item ascending). Kept estimates are refreshed lazily on Observe, so a
// kept item whose cells grew through collisions reports its estimate as of
// its last observation. Err is the shared eps*N bound.
func (c *CountMin) Heavy(k int, dst []Counter) []Counter {
	dst = appendHeavy(&c.ord, c.hn, k, dst, nil)
	bound := c.ErrorBound()
	for i := range dst {
		dst[i].Err = bound
	}
	return dst
}

// Reset implements Summary: zero counters and keeper, re-derive the row
// hashes from the new seed.
func (c *CountMin) Reset(seed uint64) {
	c.seed = seed
	c.total = 0
	clear(c.rows)
	for i := range c.rowSeed {
		c.rowSeed[i] = hashSeed(seed, i)
	}
	c.hn = 0
	c.hheap = c.hheap[:0]
	c.hidx.clear()
}

func (c *CountMin) hLess(a, b int32) bool {
	if c.hcnt[a] != c.hcnt[b] {
		return c.hcnt[a] < c.hcnt[b]
	}
	return c.hitem[a] < c.hitem[b]
}

func (c *CountMin) hSwap(i, j int32) {
	c.hheap[i], c.hheap[j] = c.hheap[j], c.hheap[i]
	c.hpos[c.hheap[i]] = i
	c.hpos[c.hheap[j]] = j
}

func (c *CountMin) hSiftUp(i int32) {
	for i > 0 {
		p := (i - 1) / 2
		if !c.hLess(c.hheap[i], c.hheap[p]) {
			return
		}
		c.hSwap(i, p)
		i = p
	}
}

func (c *CountMin) hSiftDown(i int32) {
	n := int32(len(c.hheap))
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && c.hLess(c.hheap[l], c.hheap[m]) {
			m = l
		}
		if r < n && c.hLess(c.hheap[r], c.hheap[m]) {
			m = r
		}
		if m == i {
			return
		}
		c.hSwap(i, m)
		i = m
	}
}
