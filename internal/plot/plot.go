// Package plot renders small ASCII charts for the experiment harness: line
// charts for growth curves (messages vs log Δ, ratio vs σ, …) and bar
// charts for categorical comparisons. Pure text, no dependencies — meant
// for terminal output next to the metrics tables.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of (x, y) points; all series of a chart share
// the x positions.
type Series struct {
	Name   string
	Values []float64
}

// markers assigned to series in order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Line renders a fixed-height line chart of the series over the shared x
// labels. Y is auto-scaled across all series (always including zero when
// close); each series draws with its own marker; a legend follows.
func Line(title string, xLabels []string, series []Series, width, height int) string {
	if len(series) == 0 || len(xLabels) == 0 || width < 16 || height < 4 {
		return ""
	}
	for _, s := range series {
		if len(s.Values) != len(xLabels) {
			return fmt.Sprintf("plot: series %q has %d points for %d labels\n",
				s.Name, len(s.Values), len(xLabels))
		}
	}
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Values {
			ymin = math.Min(ymin, v)
			ymax = math.Max(ymax, v)
		}
	}
	if ymin > 0 && ymin < ymax/2 {
		ymin = 0
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	// x positions spread across the width.
	xpos := make([]int, len(xLabels))
	for i := range xLabels {
		if len(xLabels) == 1 {
			xpos[i] = width / 2
		} else {
			xpos[i] = i * (width - 1) / (len(xLabels) - 1)
		}
	}
	yrow := func(v float64) int {
		f := (v - ymin) / (ymax - ymin)
		r := height - 1 - int(math.Round(f*float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		prevR, prevC := -1, -1
		for i, v := range s.Values {
			r, c := yrow(v), xpos[i]
			if prevC >= 0 {
				drawSegment(grid, prevR, prevC, r, c)
			}
			grid[r][c] = m
			prevR, prevC = r, c
		}
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	yTop := formatY(ymax)
	yBot := formatY(ymin)
	pad := len(yTop)
	if len(yBot) > pad {
		pad = len(yBot)
	}
	for r, row := range grid {
		label := strings.Repeat(" ", pad)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", pad, yTop)
		case height - 1:
			label = fmt.Sprintf("%*s", pad, yBot)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	// x axis labels: first and last always; middle if room.
	axis := make([]byte, width)
	for i := range axis {
		axis[i] = '-'
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", pad), string(axis))
	lab := make([]byte, width)
	for i := range lab {
		lab[i] = ' '
	}
	placeLabel(lab, xpos[0], xLabels[0])
	placeLabel(lab, xpos[len(xpos)-1], xLabels[len(xLabels)-1])
	if len(xLabels) > 2 {
		mid := len(xLabels) / 2
		placeLabel(lab, xpos[mid], xLabels[mid])
	}
	fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", pad), strings.TrimRight(string(lab), " "))
	for si, s := range series {
		fmt.Fprintf(&b, "%s %c %s\n", strings.Repeat(" ", pad), markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// drawSegment connects two points with light interpolation dots.
func drawSegment(grid [][]byte, r0, c0, r1, c1 int) {
	steps := abs(c1-c0) + abs(r1-r0)
	if steps == 0 {
		return
	}
	for s := 1; s < steps; s++ {
		r := r0 + (r1-r0)*s/steps
		c := c0 + (c1-c0)*s/steps
		if grid[r][c] == ' ' {
			grid[r][c] = '.'
		}
	}
}

func placeLabel(lab []byte, pos int, text string) {
	start := pos - len(text)/2
	if start < 0 {
		start = 0
	}
	if start+len(text) > len(lab) {
		start = len(lab) - len(text)
	}
	copy(lab[start:], text)
}

// Bars renders a horizontal bar chart of labelled values.
func Bars(title string, labels []string, values []float64, width int) string {
	if len(labels) != len(values) || len(labels) == 0 || width < 16 {
		return ""
	}
	maxV := math.Inf(-1)
	maxLab := 0
	for i, v := range values {
		maxV = math.Max(maxV, v)
		if len(labels[i]) > maxLab {
			maxLab = len(labels[i])
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, v := range values {
		n := int(math.Round(v / maxV * float64(width)))
		if n < 1 && v > 0 {
			n = 1
		}
		fmt.Fprintf(&b, "%-*s |%s %s\n", maxLab, labels[i],
			strings.Repeat("█", n), formatY(v))
	}
	return b.String()
}

func formatY(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e6:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1e6:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
