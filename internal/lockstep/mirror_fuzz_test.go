package lockstep

import (
	"testing"

	"topkmon/internal/faults"
	"topkmon/internal/filter"
	"topkmon/internal/wire"
)

// checkMirrorMatchesNodes asserts the engine's filter-interval mirror is a
// faithful copy of the actual per-node state: every mirrored interval and
// value equals the node's, and the mirrored violator flag equals the ground
// truth !Filter.Contains(Value). This is the tentpole's no-desync
// obligation — a single divergence would make mirror-routed violation
// sweeps return different reports than a full scan.
func checkMirrorMatchesNodes(t *testing.T, e *Engine) {
	t.Helper()
	m := e.router.Mir
	for _, nd := range e.nodes {
		if got := m.Interval(nd.ID); got != nd.Filter {
			t.Fatalf("mirror interval for node %d = %+v, node has %+v", nd.ID, got, nd.Filter)
		}
		if got := m.Value(nd.ID); got != nd.Value {
			t.Fatalf("mirror value for node %d = %d, node has %d", nd.ID, got, nd.Value)
		}
		want := !nd.Filter.Contains(nd.Value)
		if got := m.Violating(nd.ID); got != want {
			t.Fatalf("mirror Violating(%d) = %v, want %v (value %d, filter %+v)",
				nd.ID, got, want, nd.Value, nd.Filter)
		}
	}
}

// FuzzFilterMirror drives random op sequences — observations, unicast and
// broadcast filter assignments, engine resets — through the fault injector
// with delayed filter assignments, message drops, and a crash window
// enabled, and checks after every single op that the mirror still equals
// the actual node state. The injector sits ABOVE the engine: a delayed op
// reaches the engine at the next Advance, a dropped op never reaches it,
// so the mirror (updated inside the engine, adjacent to the node mutation)
// must agree with the nodes no matter what the fault layer does.
func FuzzFilterMirror(f *testing.F) {
	// Delayed-assignment schedules in the PR 6 idiom: filter ops issued
	// back-to-back with Advances so held ops land one step late, plus a
	// reset mid-run and an empty-filter assignment.
	f.Add(uint8(2), []byte{1, 10, 3, 0, 40, 1, 20, 5, 0, 41, 2, 7, 9, 0, 42})
	f.Add(uint8(5), []byte{3, 8, 4, 0, 1, 3, 60, 0, 2, 4, 9, 1, 3, 3, 0, 5})
	f.Add(uint8(0), []byte{0, 1, 1, 2, 2, 3, 3, 4, 4, 0, 9})
	f.Add(uint8(7), []byte{1, 200, 200, 0, 0, 1, 200, 0, 0, 0, 3, 255, 0, 0})

	f.Fuzz(func(t *testing.T, planByte uint8, script []byte) {
		const n, seed = 17, 1234
		delays := [...]float64{0, 0.5, 1}
		drops := [...]float64{0, 0.4}
		plan := &faults.Plan{
			Delay: delays[planByte%3],
			Drop:  drops[(planByte/3)%2],
		}
		if planByte&0x40 != 0 {
			plan.Crashes = []faults.Crash{{Node: 2, From: 2, Until: 5}}
		}
		e := New(n, seed)
		w := faults.Wrap(e, plan, seed)

		next := func() byte {
			if len(script) == 0 {
				return 0
			}
			b := script[0]
			script = script[1:]
			return b
		}
		vals := make([]int64, n)
		for steps := 0; len(script) > 0 && steps < 4096; steps++ {
			switch next() % 6 {
			case 0: // new observations (small domain → frequent flips)
				b := next()
				for i := range vals {
					vals[i] = int64(b)%64 + int64(i*7%64)
				}
				w.Advance(vals)
			case 1: // unicast filter (possibly delayed or dropped)
				id, lo, width := int(next())%n, int64(next())%64, int64(next())%8
				w.SetFilter(id, filter.Make(lo, lo+width))
			case 2: // tag+filter unicast, occasionally the empty interval
				id, lo := int(next())%n, int64(next())%64
				iv := filter.Make(lo, lo+4)
				if lo%5 == 0 {
					iv = filter.Make(9, 3) // empty: always violating
				}
				w.SetTagFilter(id, wire.Tag(int(next())%int(wire.NumTags)), iv)
			case 3: // broadcast rule: narrow for untagged, all for the rest
				lo := int64(next()) % 64
				rule := wire.NewFilterRule().
					With(wire.TagNone, filter.Make(lo, lo+int64(next())%16)).
					With(wire.TagRest, filter.All)
				w.BroadcastRule(rule)
			case 4: // full reset: mirror must rewind with the nodes
				w.Reset(uint64(next()))
			default: // exercise the mirror-routed read paths
				w.Sweep(wire.Violating())
				w.DetectViolation()
			}
			checkMirrorMatchesNodes(t, e)
		}
	})
}
