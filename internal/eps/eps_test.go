package eps

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		num, den int64
		ok       bool
	}{
		{1, 2, true}, {0, 1, true}, {3, 4, true}, {1, MaxDen, true},
		{1, 0, false}, {-1, 2, false}, {2, 2, false}, {3, 2, false},
		{1, MaxDen + 1, false}, {1, -5, false},
	}
	for _, c := range cases {
		_, err := New(c.num, c.den)
		if (err == nil) != c.ok {
			t.Errorf("New(%d,%d): err=%v, want ok=%v", c.num, c.den, err, c.ok)
		}
	}
}

func TestNewReduces(t *testing.T) {
	e := MustNew(2, 4)
	if e.Num != 1 || e.Den != 2 {
		t.Errorf("New(2,4) = %v, want 1/2", e)
	}
}

func TestZeroValueBehavesAsZeroEps(t *testing.T) {
	var e Eps
	if !e.IsZero() {
		t.Error("zero value should be ε=0")
	}
	if e.ClearlyAbove(5, 5) {
		t.Error("with ε=0, 5 is not clearly above 5")
	}
	if !e.ClearlyAbove(6, 5) {
		t.Error("with ε=0, 6 is clearly above 5")
	}
	if !e.ClearlyBelow(4, 5) {
		t.Error("with ε=0, 4 is clearly below 5")
	}
	if e.GrowFloor(7) != 7 || e.ShrinkFloor(7) != 7 {
		t.Error("ε=0 scalers must be identity")
	}
}

func TestPredicatesKnownValues(t *testing.T) {
	e := MustNew(1, 4) // ε = 0.25, 1-ε = 0.75
	// ref = 100: E = (133.33, ∞), A = [75, 133.33]
	if !e.ClearlyAbove(134, 100) || e.ClearlyAbove(133, 100) {
		t.Error("ClearlyAbove boundary wrong around 133.33")
	}
	if !e.ClearlyBelow(74, 100) || e.ClearlyBelow(75, 100) {
		t.Error("ClearlyBelow boundary wrong around 75")
	}
	if !e.InNeighborhood(75, 100) || !e.InNeighborhood(133, 100) {
		t.Error("neighborhood endpoints must be included")
	}
	if e.InNeighborhood(134, 100) || e.InNeighborhood(74, 100) {
		t.Error("points outside neighborhood accepted")
	}
	if e.ShrinkFloor(100) != 75 || e.ShrinkCeil(100) != 75 {
		t.Error("(1-ε)·100 should be exactly 75")
	}
	if e.GrowFloor(100) != 133 || e.GrowCeil(100) != 134 {
		t.Errorf("100/(1-ε): floor=%d ceil=%d, want 133/134", e.GrowFloor(100), e.GrowCeil(100))
	}
}

func TestHalf(t *testing.T) {
	if h := MustNew(1, 2).Half(); h.Num != 1 || h.Den != 4 {
		t.Errorf("(1/2)/2 = %v, want 1/4", h)
	}
	if h := MustNew(2, 5).Half(); h.Num != 1 || h.Den != 5 {
		t.Errorf("(2/5)/2 = %v, want 1/5", h)
	}
}

func TestFilterCompatible(t *testing.T) {
	e := MustNew(1, 4)
	// ℓ ≥ 0.75·u
	if !e.FilterCompatible(75, 100) {
		t.Error("75 ≥ 0.75·100 must hold")
	}
	if e.FilterCompatible(74, 100) {
		t.Error("74 ≥ 0.75·100 must not hold")
	}
}

// TestPredicatesAgreeWithFloat cross-checks the exact integer predicates
// against float arithmetic away from the boundary.
func TestPredicatesAgreeWithFloat(t *testing.T) {
	e := MustNew(3, 17)
	f := e.Float()
	check := func(v, ref int64) bool {
		v, ref = clampProp(v), clampProp(ref)
		fAbove := float64(v)*(1-f) > float64(ref)*1.0000001
		fBelow := float64(v)*1.0000001 < float64(ref)*(1-f)
		// Only assert when float is confidently away from the boundary.
		gap := math.Abs(float64(v)*(1-f) - float64(ref))
		if gap < 1 {
			return true
		}
		gap2 := math.Abs(float64(v) - float64(ref)*(1-f))
		if gap2 < 1 {
			return true
		}
		if fAbove != e.ClearlyAbove(v, ref) {
			return false
		}
		fBelowExact := e.ClearlyBelow(v, ref)
		return fBelow == fBelowExact
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestScalersAreConservative: filter endpoints built with GrowFloor always
// satisfy the Observation 2.2 compatibility with their source.
func TestScalersAreConservative(t *testing.T) {
	e := MustNew(2, 7)
	prop := func(x int64) bool {
		x = clampProp(x)
		u := e.GrowFloor(x)
		return e.FilterCompatible(x, u) // x ≥ (1-ε)·u must hold exactly
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestShrinkGrowOrdering: ShrinkFloor ≤ ShrinkCeil ≤ x ≤ GrowFloor ≤ GrowCeil.
func TestShrinkGrowOrdering(t *testing.T) {
	e := MustNew(5, 13)
	prop := func(x int64) bool {
		x = clampProp(x)
		sf, sc := e.ShrinkFloor(x), e.ShrinkCeil(x)
		gf, gc := e.GrowFloor(x), e.GrowCeil(x)
		return sf <= sc && sc <= x && x <= gf && gf <= gc
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestNeighborhoodTransitivity: v in E(ref) implies v not clearly below, and
// the three regions partition the value space.
func TestRegionsPartition(t *testing.T) {
	e := MustNew(1, 3)
	prop := func(v, ref int64) bool {
		v, ref = clampProp(v), clampProp(ref)
		regions := 0
		if e.ClearlyAbove(v, ref) {
			regions++
		}
		if e.ClearlyBelow(v, ref) {
			regions++
		}
		if e.InNeighborhood(v, ref) {
			regions++
		}
		return regions == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestLeq(t *testing.T) {
	a, b := MustNew(1, 4), MustNew(1, 2)
	if !a.Leq(b) || b.Leq(a) {
		t.Error("1/4 ≤ 1/2 ordering broken")
	}
	if !a.Leq(a) {
		t.Error("Leq must be reflexive")
	}
	half := b.Half()
	if !half.Leq(b) {
		t.Error("ε/2 ≤ ε must hold")
	}
}

func TestStringer(t *testing.T) {
	if s := MustNew(1, 4).String(); s != "1/4" {
		t.Errorf("String() = %q", s)
	}
	var z Eps
	if s := z.String(); s != "0/1" {
		t.Errorf("zero String() = %q", s)
	}
}

// clampProp maps arbitrary quick-generated int64s into the supported value
// range.
func clampProp(x int64) int64 {
	if x < 0 {
		x = -x
	}
	return x % (MaxValue + 1)
}
