package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"topkmon/internal/rngx"
)

func sample() *Trace {
	tr, err := New([][]int64{{10, 20, 30}, {11, 19, 30}, {12, 18, 31}})
	if err != nil {
		panic(err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := New([][]int64{{}}); err == nil {
		t.Error("zero-width matrix accepted")
	}
	if _, err := New([][]int64{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Values, tr.Values) {
		t.Fatalf("round trip mismatch: %v", got.Values)
	}
}

func TestCSVSkipsBlankLines(t *testing.T) {
	got, err := ReadCSV(strings.NewReader("1,2\n\n3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got.T() != 2 {
		t.Fatalf("T = %d", got.T())
	}
}

func TestCSVRejectsGarbage(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("1,x\n")); err == nil {
		t.Error("garbage cell accepted")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Values, tr.Values) {
		t.Fatalf("round trip mismatch: %v", got.Values)
	}
}

func TestBinaryRejectsBadHeader(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("NOPE....."))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Truncated body.
	tr := sample()
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBinary(bytes.NewReader(buf.Bytes()[:buf.Len()-2])); err == nil {
		t.Error("truncated body accepted")
	}
}

// TestBinaryRoundTripRandom: property test over random matrices.
func TestBinaryRoundTripRandom(t *testing.T) {
	rng := rngx.New(5)
	prop := func(seed uint64) bool {
		r := rng.Child(seed)
		n := 1 + r.Intn(8)
		T := 1 + r.Intn(30)
		values := make([][]int64, T)
		for tt := range values {
			row := make([]int64, n)
			for i := range row {
				row[i] = r.Int63n(1 << 40)
			}
			values[tt] = row
		}
		tr, err := New(values)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := tr.WriteBinary(&buf); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Values, values)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestBinaryBeatsCSVOnSmoothTraces: delta encoding should compress random
// walks well below their CSV size.
func TestBinaryBeatsCSVOnSmoothTraces(t *testing.T) {
	r := rngx.New(8)
	const n, T = 16, 500
	values := make([][]int64, T)
	cur := make([]int64, n)
	for i := range cur {
		cur[i] = 1 << 30
	}
	for tt := range values {
		row := make([]int64, n)
		for i := range row {
			cur[i] += r.Int63n(21) - 10
			row[i] = cur[i]
		}
		values[tt] = row
	}
	tr, _ := New(values)
	var csvBuf, binBuf bytes.Buffer
	if err := tr.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteBinary(&binBuf); err != nil {
		t.Fatal(err)
	}
	if binBuf.Len()*4 > csvBuf.Len() {
		t.Errorf("binary (%d B) should be ≪ CSV (%d B) on smooth traces",
			binBuf.Len(), csvBuf.Len())
	}
}
