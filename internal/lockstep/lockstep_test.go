package lockstep

import (
	"testing"

	"topkmon/internal/filter"
	"topkmon/internal/metrics"
	"topkmon/internal/wire"
)

func advance(e *Engine, vals ...int64) { e.Advance(vals) }

func TestSweepSilentWhenNoMatch(t *testing.T) {
	e := New(8, 1)
	advance(e, 1, 2, 3, 4, 5, 6, 7, 8)
	// All filters are [0,∞]: nobody violates.
	if got := e.Sweep(wire.Violating()); got != nil {
		t.Fatalf("silent sweep returned %v", got)
	}
	if e.Counters().Total() != 0 {
		t.Errorf("silent sweep must be free, cost %d", e.Counters().Total())
	}
}

// TestSweepAlwaysFindsViolator: the EXISTENCE protocol is Las Vegas — with
// at least one matching node it always reports.
func TestSweepAlwaysFindsViolator(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		e := New(16, seed)
		vals := make([]int64, 16)
		for i := range vals {
			vals[i] = 10
		}
		e.Advance(vals)
		e.SetFilter(3, filter.Make(0, 5)) // node 3 violates
		senders := e.Sweep(wire.Violating())
		if len(senders) == 0 {
			t.Fatalf("seed %d: sweep missed the violator", seed)
		}
		found := false
		for _, s := range senders {
			if s.ID == 3 && s.Dir == filter.DirUp {
				found = true
			}
		}
		if !found {
			t.Fatalf("seed %d: violator 3 not among senders %v", seed, senders)
		}
	}
}

// TestSweepExpectedMessages reproduces Lemma 3.1's bound: over many trials
// the mean number of node messages stays O(1) (≤ 6 in the paper's analysis;
// we allow slack for the halt broadcast and finite-sample noise).
func TestSweepExpectedMessages(t *testing.T) {
	for _, b := range []int{1, 8, 64, 512} {
		const n = 512
		var total int64
		const trials = 300
		for trial := 0; trial < trials; trial++ {
			e := New(n, uint64(trial)*31+7)
			vals := make([]int64, n)
			e.Advance(vals)
			for i := 0; i < b; i++ {
				e.SetFilter(i, filter.Make(5, 10)) // value 0 violates down
			}
			before := e.Counters().Snapshot()
			// Exclude the b filter-setting unicasts from the measurement.
			senders := e.Sweep(wire.Violating())
			if len(senders) == 0 {
				t.Fatal("sweep missed violators")
			}
			total += e.Counters().Snapshot().Sub(before).Total()
		}
		mean := float64(total) / trials
		if mean > 8.0 {
			t.Errorf("b=%d: mean sweep cost %.2f exceeds O(1) bound", b, mean)
		}
	}
}

func TestDetectViolationPicksOne(t *testing.T) {
	e := New(8, 3)
	vals := make([]int64, 8)
	e.Advance(vals)
	e.SetFilter(2, filter.Make(5, 9))
	e.SetFilter(6, filter.Make(5, 9))
	rep, ok := e.DetectViolation()
	if !ok {
		t.Fatal("violation not detected")
	}
	if rep.ID != 2 && rep.ID != 6 {
		t.Errorf("picked non-violator %d", rep.ID)
	}
	if rep.Dir != filter.DirDown {
		t.Errorf("direction = %v", rep.Dir)
	}
}

func TestCollect(t *testing.T) {
	e := New(6, 5)
	e.Advance([]int64{10, 20, 30, 40, 50, 60})
	before := e.Counters().Snapshot()
	reps := e.Collect(wire.InRange(25, 45))
	if len(reps) != 2 || reps[0].ID != 2 || reps[1].ID != 3 {
		t.Fatalf("Collect = %v", reps)
	}
	cost := e.Counters().Snapshot().Sub(before)
	if cost.Total() != 3 { // 1 broadcast + 2 replies
		t.Errorf("collect cost %d, want 3", cost.Total())
	}
}

func TestProbeCost(t *testing.T) {
	e := New(4, 7)
	e.Advance([]int64{5, 6, 7, 8})
	rep := e.Probe(2)
	if rep.ID != 2 || rep.Value != 7 {
		t.Errorf("Probe = %+v", rep)
	}
	if e.Counters().Total() != 2 {
		t.Errorf("probe cost %d, want 2", e.Counters().Total())
	}
}

func TestBroadcastRuleAppliesToAll(t *testing.T) {
	e := New(4, 9)
	e.Advance([]int64{1, 2, 3, 4})
	e.SetTagFilter(1, wire.TagOut, filter.AtLeast(0))
	rule := wire.NewFilterRule().
		With(wire.TagOut, filter.AtLeast(2)).
		With(wire.TagNone, filter.AtMost(2))
	before := e.Counters().Snapshot()
	e.BroadcastRule(rule)
	if cost := e.Counters().Snapshot().Sub(before); cost.Total() != 1 {
		t.Errorf("broadcast cost %d, want 1", cost.Total())
	}
	fs := e.Filters()
	if fs[1] != filter.AtLeast(2) {
		t.Errorf("tagged node filter = %v", fs[1])
	}
	if fs[0] != filter.AtMost(2) || fs[3] != filter.AtMost(2) {
		t.Errorf("untagged filters = %v", fs)
	}
}

func TestAdvanceValidation(t *testing.T) {
	e := New(3, 1)
	defer func() {
		if recover() == nil {
			t.Error("wrong-length Advance must panic")
		}
	}()
	e.Advance([]int64{1, 2})
}

func TestValueRangeValidation(t *testing.T) {
	e := New(1, 1)
	defer func() {
		if recover() == nil {
			t.Error("negative value must panic")
		}
	}()
	e.Advance([]int64{-1})
}

func TestInspectorCopies(t *testing.T) {
	e := New(3, 2)
	e.Advance([]int64{1, 2, 3})
	vs := e.Values()
	vs[0] = 99
	if e.Values()[0] == 99 {
		t.Error("Values must return a copy")
	}
	ts := e.Tags()
	ts[0] = wire.TagV3
	if e.Tags()[0] == wire.TagV3 {
		t.Error("Tags must return a copy")
	}
}

func TestRoundAccounting(t *testing.T) {
	e := New(16, 4)
	vals := make([]int64, 16)
	e.Advance(vals)
	e.Sweep(wire.Violating()) // silent: γ+1 rounds
	e.EndStep()
	if e.Counters().MaxRoundsPerStep() < 4 {
		t.Errorf("silent sweep rounds = %d, want ≥ γ", e.Counters().MaxRoundsPerStep())
	}
}

func TestMessageAccountingByKind(t *testing.T) {
	e := New(4, 6)
	e.Advance([]int64{1, 2, 3, 4})
	e.MaxFindInit(-1, true)
	e.MaxFindRaise(3, 4)
	e.MaxFindExclude(3)
	c := e.Counters()
	if c.ByChannel(metrics.Broadcast) != 3 {
		t.Errorf("broadcasts = %d", c.ByChannel(metrics.Broadcast))
	}
	if c.ByKind(wire.KindMaxFindRaise.String()) != 1 {
		t.Error("kind accounting missing")
	}
}
