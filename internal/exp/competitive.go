package exp

import (
	"topkmon/internal/cluster"
	"topkmon/internal/eps"
	"topkmon/internal/metrics"
	"topkmon/internal/protocol"
	"topkmon/internal/sim"
	"topkmon/internal/stream"
)

// climberGen builds the adaptive worst case for separator search used by
// the Δ-dependence experiments: one adversarial node repeatedly ascends a
// gap of width ~Δ by always jumping just past its filter (stream.Climber).
func climberGen(k, rest int, delta int64) stream.Generator {
	return stream.NewClimber(k, rest, delta)
}

func complianceConfig(n int, maxV int64, steps int, seed uint64) sim.Config {
	k := 4
	e := eps.MustNew(1, 8)
	return sim.Config{
		K: k, Eps: e, Steps: steps, Seed: seed,
		Gen:        stream.NewJumps(n, maxV/2, maxV-1, seed+1),
		NewMonitor: mkMonitor("approx", k, e),
		Validate:   sim.ValidateEps,
	}
}

// E3ExactCompetitive reproduces Corollary 3.3: the exact monitor's messages
// per epoch grow linearly in log Δ (plus the k·log n probe), and the
// framework beats the probe-per-violation baseline.
func E3ExactCompetitive() Experiment {
	return Experiment{
		ID:    "E3",
		Title: "Exact monitor: O(k log n + log Δ) per epoch",
		Claim: "Corollary 3.3: O(k log n + log Δ)-competitive exact Top-k",
		Run: func(o Options) []*metrics.Table {
			deltas := []int64{1 << 10, 1 << 16, 1 << 22, 1 << 28, 1 << 34}
			steps := 2500
			if o.Quick {
				deltas = []int64{1 << 10, 1 << 22}
				steps = 400
			}
			const k, rest = 4, 11 // n = 16
			tb := metrics.NewTable("E3: exact monitors vs Δ (n=16, k=4, adaptive climber)",
				"log2(Δ)", "exact-mid msgs", "epochs", "msgs/epoch",
				"mid-naive msgs", "OPT breaks", "exact-mid ratio")
			type e3row struct{ em, mn sim.Report }
			rows := parMapWith(o, len(deltas),
				func() *engCtx { return &engCtx{} },
				func(ctx *engCtx, i int) e3row {
					delta := deltas[i]
					emGen := climberGen(k, rest, delta)
					em := runOrPanic(sim.Config{
						K: k, Steps: steps, Seed: o.Seed + 3,
						Gen:        emGen,
						NewMonitor: mkMonitor("exact-mid", k, eps.Zero),
						Validate:   sim.ValidateExact,
						ComputeOPT: true, OPTEps: eps.Zero,
						Engine: ctx.reset(emGen.N(), o.Seed+3),
					})
					mnGen := climberGen(k, rest, delta)
					mn := runOrPanic(sim.Config{
						K: k, Steps: steps, Seed: o.Seed + 3,
						Gen:        mnGen,
						NewMonitor: mkMonitor("mid-naive", k, eps.Zero),
						Validate:   sim.ValidateExact,
						Engine:     ctx.reset(mnGen.N(), o.Seed+3),
					})
					return e3row{em, mn}
				})
			for i, delta := range deltas {
				em, mn := rows[i].em, rows[i].mn
				tb.AddRow(log2i(delta), em.Messages.Total(), em.Epochs,
					perEpoch(em.Messages.Total(), em.Epochs),
					mn.Messages.Total(),
					em.OPTBreaks, em.RatioLB)
			}
			return []*metrics.Table{tb}
		},
	}
}

// E4TopKProtocol reproduces Theorem 4.5: per epoch, TOP-K-PROTOCOL pays
// O(k log n + log log Δ + log 1/ε) — flat in Δ where the exact monitor grows
// with log Δ, and logarithmic in 1/ε.
func E4TopKProtocol() Experiment {
	return Experiment{
		ID:    "E4",
		Title: "TOP-K-PROTOCOL: log log Δ and log 1/ε dependence",
		Claim: "Theorem 4.5: O(k log n + log log Δ + log 1/ε) vs an exact offline OPT",
		Run: func(o Options) []*metrics.Table {
			const k, rest = 4, 11 // n = 16
			e := eps.MustNew(1, 8)
			deltas := []int64{1 << 10, 1 << 16, 1 << 22, 1 << 28, 1 << 34}
			steps := 2500
			if o.Quick {
				deltas = []int64{1 << 10, 1 << 22}
				steps = 400
			}
			t1 := metrics.NewTable("E4a: msgs/epoch vs Δ (n=16, k=4, ε=1/8, adaptive descender)",
				"log2(Δ)", "exact-mid", "topk-protocol", "topk epochs")
			type e4row struct{ em, tk sim.Report }
			rows := parMapWith(o, len(deltas),
				func() *engCtx { return &engCtx{} },
				func(ctx *engCtx, i int) e4row {
					delta := deltas[i]
					emGen := stream.NewDescender(k, rest, delta)
					em := runOrPanic(sim.Config{
						K: k, Steps: steps, Seed: o.Seed + 5,
						Gen:        emGen,
						NewMonitor: mkMonitor("exact-mid", k, eps.Zero),
						Validate:   sim.ValidateExact,
						Engine:     ctx.reset(emGen.N(), o.Seed+5),
					})
					tkGen := stream.NewDescender(k, rest, delta)
					tk := runOrPanic(sim.Config{
						K: k, Eps: e, Steps: steps, Seed: o.Seed + 5,
						Gen:        tkGen,
						NewMonitor: mkMonitor("topk", k, e),
						Validate:   sim.ValidateEps,
						Engine:     ctx.reset(tkGen.N(), o.Seed+5),
					})
					return e4row{em, tk}
				})
			for i, delta := range deltas {
				em, tk := rows[i].em, rows[i].tk
				t1.AddRow(log2i(delta),
					perEpoch(em.Messages.Total(), em.Epochs),
					perEpoch(tk.Messages.Total(), tk.Epochs),
					tk.Epochs)
			}

			epsilons := []eps.Eps{
				eps.MustNew(1, 2), eps.MustNew(1, 4), eps.MustNew(1, 16),
				eps.MustNew(1, 64), eps.MustNew(1, 256),
			}
			if o.Quick {
				epsilons = epsilons[:3]
			}
			t2 := metrics.NewTable("E4b: msgs/epoch vs ε (n=16, k=4, Δ=2^22, adaptive climber)",
				"eps", "1/eps", "msgs", "epochs", "msgs/epoch")
			epsRows := parMapWith(o, len(epsilons),
				func() *engCtx { return &engCtx{} },
				func(ctx *engCtx, i int) sim.Report {
					ee := epsilons[i]
					gen := climberGen(k, rest, 1<<22)
					return runOrPanic(sim.Config{
						K: k, Eps: ee, Steps: steps, Seed: o.Seed + 6,
						Gen:        gen,
						NewMonitor: mkMonitor("topk", k, ee),
						Validate:   sim.ValidateEps,
						Engine:     ctx.reset(gen.N(), o.Seed+6),
					})
				})
			for i, ee := range epsilons {
				tk := epsRows[i]
				t2.AddRow(ee.String(), float64(ee.Den)/float64(ee.Num),
					tk.Messages.Total(), tk.Epochs,
					perEpoch(tk.Messages.Total(), tk.Epochs))
			}
			return []*metrics.Table{t1, t2}
		},
	}
}

// E9PhaseAblation isolates the contribution of phases A1/A2: disabling them
// degrades the per-epoch Δ-dependence from log log Δ back to log Δ.
func E9PhaseAblation() Experiment {
	return Experiment{
		ID:    "E9",
		Title: "Ablation: phases A1/A2 give the log log Δ bound",
		Claim: "Section 4 design: A1 (double-exponential) + A2 (geometric mean) vs plain bisection",
		Run: func(o Options) []*metrics.Table {
			const k, rest = 4, 11 // n = 16
			e := eps.MustNew(1, 8)
			deltas := []int64{1 << 10, 1 << 16, 1 << 22, 1 << 28, 1 << 34}
			steps := 2500
			if o.Quick {
				deltas = []int64{1 << 10, 1 << 22}
				steps = 400
			}
			tb := metrics.NewTable("E9: TOP-K-PROTOCOL msgs/epoch, phases on vs off (adaptive descender)",
				"log2(Δ)", "full (A1+A2+A3)", "A3-only (ablated)", "full epochs", "ablated epochs")
			type e9row struct{ full, ablated sim.Report }
			rows := parMapWith(o, len(deltas),
				func() *engCtx { return &engCtx{} },
				func(ctx *engCtx, i int) e9row {
					delta := deltas[i]
					fullGen := stream.NewDescender(k, rest, delta)
					full := runOrPanic(sim.Config{
						K: k, Eps: e, Steps: steps, Seed: o.Seed + 8,
						Gen:        fullGen,
						NewMonitor: mkMonitor("topk", k, e),
						Validate:   sim.ValidateEps,
						Engine:     ctx.reset(fullGen.N(), o.Seed+8),
					})
					ablGen := stream.NewDescender(k, rest, delta)
					ablated := runOrPanic(sim.Config{
						K: k, Eps: e, Steps: steps, Seed: o.Seed + 8,
						Gen: ablGen,
						NewMonitor: func(c cluster.Cluster) protocol.Monitor {
							m := protocol.NewTopKProto(c, k, e)
							m.DisableA1 = true
							m.DisableA2 = true
							return m
						},
						Validate: sim.ValidateEps,
						Engine:   ctx.reset(ablGen.N(), o.Seed+8),
					})
					return e9row{full, ablated}
				})
			for i, delta := range deltas {
				full, ablated := rows[i].full, rows[i].ablated
				tb.AddRow(log2i(delta),
					perEpoch(full.Messages.Total(), full.Epochs),
					perEpoch(ablated.Messages.Total(), ablated.Epochs),
					full.Epochs, ablated.Epochs)
			}
			return []*metrics.Table{tb}
		},
	}
}

func log2i(x int64) int {
	n := 0
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}
