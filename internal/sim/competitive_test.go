package sim

import (
	"fmt"
	"math"
	"testing"

	"topkmon/internal/cluster"
	"topkmon/internal/eps"
	"topkmon/internal/protocol"
	"topkmon/internal/stream"
)

// TestExactMidEpochsMatchOPTBreaks pins the heart of Corollary 3.3's
// competitive argument: every completed epoch of the exact monitor forces
// the offline optimum to communicate at least once, so
// epochs ≤ OPT breaks + 1 — with equality on the adaptive climber.
func TestExactMidEpochsMatchOPTBreaks(t *testing.T) {
	for _, delta := range []int64{1 << 12, 1 << 20, 1 << 28} {
		t.Run(fmt.Sprintf("delta=2^%d", log2(delta)), func(t *testing.T) {
			rep, err := Run(Config{
				K: 3, Steps: 800, Seed: 7,
				Gen:        stream.NewClimber(3, 8, delta),
				NewMonitor: func(c cluster.Cluster) protocol.Monitor { return protocol.NewExactMid(c, 3) },
				Validate:   ValidateExact,
				ComputeOPT: true, OPTEps: eps.Zero,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Epochs > int64(rep.OPTBreaks)+1 {
				t.Errorf("epochs %d exceed OPT breaks %d + 1: the per-epoch OPT argument fails",
					rep.Epochs, rep.OPTBreaks)
			}
			if rep.Epochs < int64(rep.OPTBreaks) {
				t.Logf("note: OPT broke more often than epochs (%d vs %d) — allowed, greedy counts maximal segments",
					rep.OPTBreaks, rep.Epochs)
			}
		})
	}
}

// TestTopKEpochsBoundedByExactOPT pins Theorem 4.5's adversary model: the
// ε-monitor's epochs are bounded by the breaks of an EXACT offline optimum
// (plus one open epoch).
func TestTopKEpochsBoundedByExactOPT(t *testing.T) {
	e := eps.MustNew(1, 8)
	rep, err := Run(Config{
		K: 3, Eps: e, Steps: 800, Seed: 11,
		Gen:        stream.NewClimber(3, 8, 1<<24),
		NewMonitor: func(c cluster.Cluster) protocol.Monitor { return protocol.NewTopKProto(c, 3, e) },
		Validate:   ValidateEps,
		ComputeOPT: true, OPTEps: eps.Zero, // exact adversary
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs > int64(rep.OPTBreaks)+1 {
		t.Errorf("epochs %d exceed exact-OPT breaks %d + 1", rep.Epochs, rep.OPTBreaks)
	}
}

// TestExactMidPerEpochBound: empirical guard on the Corollary 3.3 shape —
// msgs/epoch ≤ C·(k·log n + log Δ) with a generous constant.
func TestExactMidPerEpochBound(t *testing.T) {
	const k, rest = 4, 11
	n := float64(k + 1 + rest)
	for _, delta := range []int64{1 << 12, 1 << 24, 1 << 36} {
		rep, err := Run(Config{
			K: k, Steps: 1000, Seed: 3,
			Gen:        stream.NewClimber(k, rest, delta),
			NewMonitor: func(c cluster.Cluster) protocol.Monitor { return protocol.NewExactMid(c, k) },
			Validate:   ValidateExact,
		})
		if err != nil {
			t.Fatal(err)
		}
		perEpoch := float64(rep.Messages.Total()) / float64(rep.Epochs)
		bound := 6 * (float64(k)*math.Log2(n) + math.Log2(float64(delta)))
		if perEpoch > bound {
			t.Errorf("Δ=2^%d: %.1f msgs/epoch exceeds C(k log n + log Δ) = %.1f",
				log2(delta), perEpoch, bound)
		}
	}
}

// TestTopKPerEpochFlatInDelta: empirical guard on Theorem 4.5's shape —
// per-epoch cost against the descender must not grow with Δ.
func TestTopKPerEpochFlatInDelta(t *testing.T) {
	const k, rest = 4, 11
	e := eps.MustNew(1, 8)
	per := map[int64]float64{}
	for _, delta := range []int64{1 << 12, 1 << 36} {
		rep, err := Run(Config{
			K: k, Eps: e, Steps: 1000, Seed: 5,
			Gen:        stream.NewDescender(k, rest, delta),
			NewMonitor: func(c cluster.Cluster) protocol.Monitor { return protocol.NewTopKProto(c, k, e) },
			Validate:   ValidateEps,
		})
		if err != nil {
			t.Fatal(err)
		}
		per[delta] = float64(rep.Messages.Total()) / float64(rep.Epochs)
	}
	small, big := per[1<<12], per[1<<36]
	if big > small*1.25 {
		t.Errorf("per-epoch cost grew from %.1f (Δ=2^12) to %.1f (Δ=2^36): log Δ leaked back in",
			small, big)
	}
}

// TestHalfEpsBeatsApproxPerEpoch: Corollary 5.9's point — with the adversary
// weakened to ε/2, per-epoch cost drops well below the Theorem 5.8
// controller's on the same dense workload.
func TestHalfEpsBeatsApproxPerEpoch(t *testing.T) {
	const k = 4
	e := eps.MustNew(1, 4)
	mkGen := func() stream.Generator {
		base := int64(4096)
		amp := (base - e.ShrinkFloor(base)) * 9 / 10
		return stream.NewOscillator(k-1, 24, 4, base, amp, base*100, base/100, 5)
	}
	run := func(mk func(cluster.Cluster) protocol.Monitor) float64 {
		rep, err := Run(Config{
			K: k, Eps: e, Steps: 800, Seed: 3,
			Gen:        mkGen(),
			NewMonitor: mk,
			Validate:   ValidateEps,
		})
		if err != nil {
			t.Fatal(err)
		}
		return float64(rep.Messages.Total()) / float64(rep.Epochs)
	}
	ap := run(func(c cluster.Cluster) protocol.Monitor { return protocol.NewApprox(c, k, e) })
	he := run(func(c cluster.Cluster) protocol.Monitor { return protocol.NewHalfEps(c, k, e) })
	if he >= ap {
		t.Errorf("half-eps per-epoch (%.1f) should undercut approx (%.1f)", he, ap)
	}
	t.Logf("per-epoch: approx=%.1f half-eps=%.1f", ap, he)
}

func log2(x int64) int {
	n := 0
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}
