package topk_test

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestPublicEntryPointsImportNoInternal pins the API boundary this package
// exists for: cmd/ and examples/ are consumers of the PUBLIC surface and
// must not import any internal/... package. (CI runs the same check via
// `go list`; asserting it here makes the boundary part of tier-1
// `go test ./...` as well.)
//
// One sanctioned exception: cmd/topkd may import topkmon/internal/serve —
// the HTTP frontend's tenant pool and handlers, factored out of the binary
// so they are unit-testable without a socket. The boundary's spirit is
// preserved by the complementary rule below: internal/serve itself may
// import nothing from internal/, only the public topk facade, so the
// entire server path still consumes the supported API.
func TestPublicEntryPointsImportNoInternal(t *testing.T) {
	allowed := map[string]map[string]bool{
		filepath.Join("..", "cmd", "topkd", "main.go"): {"topkmon/internal/serve": true},
	}
	fset := token.NewFileSet()
	for _, root := range []string{"../cmd", "../examples"} {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") {
				return nil
			}
			f, perr := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if perr != nil {
				return perr
			}
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if strings.HasPrefix(p, "topkmon/internal/") || p == "topkmon/internal" {
					if allowed[path][p] {
						continue
					}
					t.Errorf("%s imports %s — public entry points must use only the topk package", path, p)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("walking %s: %v", root, err)
		}
	}
}

// TestServeImportsOnlyPublicFacade is the other half of the topkd
// exception: the HTTP frontend must stay a pure consumer of the public
// topk package — no imports from the rest of internal/ except
// internal/wal, its durability layer — so every server guarantee
// (byte-identical outputs, zero-alloc ingest, fault health) is inherited
// from the facade rather than re-derived beside it. The companion rule
// closes the loop: internal/wal itself may import only the public topk
// package, so even the durability layer consumes the supported API.
func TestServeImportsOnlyPublicFacade(t *testing.T) {
	check := func(dir string, allowed map[string]bool) {
		fset := token.NewFileSet()
		err := filepath.WalkDir(filepath.Join("..", "internal", dir), func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") {
				return nil
			}
			f, perr := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if perr != nil {
				return perr
			}
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if strings.HasPrefix(p, "topkmon/internal/") || p == "topkmon/internal" {
					if allowed[p] {
						continue
					}
					t.Errorf("%s imports %s — internal/%s may only consume the public topk facade", path, p, dir)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("walking internal/%s: %v", dir, err)
		}
	}
	check("serve", map[string]bool{"topkmon/internal/wal": true})
	check("wal", nil)
}

// TestSketchImportsNothingFromModule pins the sketch layer's isolation:
// internal/sketch is a pure-stdlib leaf — it imports NOTHING from this
// module (not even rngx; its seed mixing is self-contained) — so the
// streaming summaries stay reusable and their replay contract cannot
// entangle with the engine packages. Test files are exempt (they may use
// module helpers).
func TestSketchImportsNothingFromModule(t *testing.T) {
	fset := token.NewFileSet()
	err := filepath.WalkDir(filepath.Join("..", "internal", "sketch"), func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if perr != nil {
			return perr
		}
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p == "topkmon" || strings.HasPrefix(p, "topkmon/") {
				t.Errorf("%s imports %s — internal/sketch must stay a stdlib-only leaf", path, p)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking internal/sketch: %v", err)
	}
}

// TestItemsLayerBoundary pins the item-monitoring layer's dependencies:
// topk/items is a PUBLIC subpackage built strictly on the public facade
// plus the sketch leaf — topkmon/topk and topkmon/internal/sketch and
// nothing else from the module — so it can never reach around the facade
// into the engines or protocols. Test files are exempt (they drive the
// layer with internal/stream/items traces).
func TestItemsLayerBoundary(t *testing.T) {
	allowed := map[string]bool{
		"topkmon/topk":            true,
		"topkmon/internal/sketch": true,
	}
	fset := token.NewFileSet()
	err := filepath.WalkDir("items", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if perr != nil {
			return perr
		}
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p == "topkmon" || strings.HasPrefix(p, "topkmon/") {
				if allowed[p] {
					continue
				}
				t.Errorf("%s imports %s — topk/items may only consume topk and internal/sketch", path, p)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking topk/items: %v", err)
	}
}
