package exp

import (
	"topkmon/internal/cluster"
	"topkmon/internal/eps"
	"topkmon/internal/metrics"
	"topkmon/internal/protocol"
	"topkmon/internal/sim"
	"topkmon/internal/stream"
)

// E5LowerBound realises the Theorem 5.1 adversary: any filter-based online
// algorithm pays Ω(σ-k) per phase while the offline optimum pays k+1, so
// the ratio grows as Ω(σ/k) — for every monitor, including both §5 upper
// bound algorithms.
func E5LowerBound() Experiment {
	return Experiment{
		ID:    "E5",
		Title: "Theorem 5.1 adversary: Ω(σ/k) for every online algorithm",
		Claim: "Theorem 5.1: competitiveness Ω(σ/k) against an ε-OPT adversary",
		Run: func(o Options) []*metrics.Table {
			const k = 2
			e := eps.MustNew(1, 4)
			sigmas := []int{6, 12, 24, 48, 96}
			phases := 4
			if o.Quick {
				sigmas = []int{6, 24}
				phases = 2
			}
			tb := metrics.NewTable("E5: Thm 5.1 instance (k=2, ε=1/4, 4 phases)",
				"sigma", "sigma/k", "monitor", "online msgs", "OPT realistic", "ratio", "msgs/phase")
			monitors := []string{"approx", "half-eps"}
			jobs := len(sigmas) * len(monitors)
			reps := parMap(o, jobs, func(i int) sim.Report {
				sigma := sigmas[i/len(monitors)]
				mon := monitors[i%len(monitors)]
				steps := phases * (sigma - k + 1)
				return runOrPanic(sim.Config{
					K: k, Eps: e, Steps: steps, Seed: o.Seed + 13,
					Gen:        stream.NewLowerBound(sigma, 4, k, e, 1<<24),
					NewMonitor: mkMonitor(mon, k, e),
					Validate:   sim.ValidateEps,
					ComputeOPT: true, OPTEps: e,
				})
			})
			for i, rep := range reps {
				sigma := sigmas[i/len(monitors)]
				mon := monitors[i%len(monitors)]
				ratio := float64(rep.Messages.Total()) / float64(max64(rep.OPTRealistic, 1))
				tb.AddRow(sigma, float64(sigma)/k, mon,
					rep.Messages.Total(), rep.OPTRealistic, ratio,
					float64(rep.Messages.Total())/float64(phases))
			}
			return []*metrics.Table{tb}
		},
	}
}

// denseWorkload builds the σ-parameterised dense oscillator: k-1 nodes
// pinned clearly above, `dense` nodes churning through the ε-neighborhood
// of v_k (amplitude chosen to cross the round thresholds ℓ_r/u_r), the rest
// clearly below.
func denseWorkload(k, dense, low int, base int64, e eps.Eps, seed uint64) stream.Generator {
	amp := (base - e.ShrinkFloor(base)) * 9 / 10 // most of the neighborhood half-width
	return stream.NewOscillator(k-1, dense, low, base, amp, base*100, base/100, seed)
}

// E6Dense measures DENSEPROTOCOL (under the Theorem 5.8 controller) across
// σ and across v_k: the σ² and log(εv_k) factors of the upper bound.
func E6Dense() Experiment {
	return Experiment{
		ID:    "E6",
		Title: "DENSEPROTOCOL cost vs σ and vs v_k",
		Claim: "Theorem 5.8: O(σ² log(εv_k) + σ log²(εv_k) + log log Δ + log 1/ε)",
		Run: func(o Options) []*metrics.Table {
			const k = 4
			e := eps.MustNew(1, 4)
			denseCounts := []int{4, 8, 16, 32, 64}
			steps := 1500
			if o.Quick {
				denseCounts = []int{4, 16}
				steps = 300
			}
			t1 := metrics.NewTable("E6a: approx controller vs σ (k=4, ε=1/4, v_k≈4096)",
				"dense nodes", "sigma(max)", "msgs", "epochs", "dense epochs", "sub calls", "msgs/step")
			type e6row struct {
				rep                   sim.Report
				denseEpochs, subCalls int64
			}
			rows := parMap(o, len(denseCounts), func(i int) e6row {
				dc := denseCounts[i]
				var ap *protocol.Approx
				rep := runOrPanic(sim.Config{
					K: k, Eps: e, Steps: steps, Seed: o.Seed + 17,
					Gen: denseWorkload(k, dc, 4, 4096, e, o.Seed+200+uint64(dc)),
					NewMonitor: func(c cluster.Cluster) protocol.Monitor {
						ap = protocol.NewApprox(c, k, e)
						return ap
					},
					Validate: sim.ValidateEps,
				})
				return e6row{rep, ap.DenseEpochs(), ap.SubCalls()}
			})
			for i, dc := range denseCounts {
				r := rows[i]
				t1.AddRow(dc, r.rep.SigmaMax, r.rep.Messages.Total(), r.rep.Epochs,
					r.denseEpochs, r.subCalls,
					float64(r.rep.Messages.Total())/float64(steps))
			}

			bases := []int64{1 << 8, 1 << 12, 1 << 16, 1 << 20}
			if o.Quick {
				bases = bases[:2]
			}
			t2 := metrics.NewTable("E6b: approx controller vs v_k (k=4, ε=1/4, 16 dense nodes)",
				"v_k", "log2(eps*v_k)", "msgs", "epochs", "msgs/epoch")
			baseRows := parMap(o, len(bases), func(i int) sim.Report {
				return runOrPanic(sim.Config{
					K: k, Eps: e, Steps: steps, Seed: o.Seed + 19,
					Gen:        denseWorkload(k, 16, 4, bases[i], e, o.Seed+300),
					NewMonitor: mkMonitor("approx", k, e),
					Validate:   sim.ValidateEps,
				})
			})
			for i, base := range bases {
				rep := baseRows[i]
				t2.AddRow(base, log2i(base/4), rep.Messages.Total(), rep.Epochs,
					perEpoch(rep.Messages.Total(), rep.Epochs))
			}
			return []*metrics.Table{t1, t2}
		},
	}
}

// E7HalfEps compares the Corollary 5.9 monitor with the Theorem 5.8
// controller on identical dense workloads: the ε/2-restricted adversary
// buys a per-epoch cost linear (not quadratic) in σ.
func E7HalfEps() Experiment {
	return Experiment{
		ID:    "E7",
		Title: "Corollary 5.9 monitor: O(σ + k log n + …) vs ε/2-OPT",
		Claim: "Corollary 5.9: linear σ-dependence when the offline error is ε/2",
		Run: func(o Options) []*metrics.Table {
			const k = 4
			e := eps.MustNew(1, 4)
			denseCounts := []int{4, 8, 16, 32, 64}
			steps := 1500
			if o.Quick {
				denseCounts = []int{4, 16}
				steps = 300
			}
			tb := metrics.NewTable("E7: approx vs half-eps across σ (k=4, ε=1/4)",
				"dense nodes", "sigma(max)", "approx msgs/epoch", "half-eps msgs/epoch",
				"approx msgs", "half-eps msgs", "OPT(ε/2) breaks", "half-eps ratio")
			type e7row struct{ ap, he sim.Report }
			rows := parMap(o, len(denseCounts), func(i int) e7row {
				dc := denseCounts[i]
				gen1 := denseWorkload(k, dc, 4, 4096, e, o.Seed+400+uint64(dc))
				gen2 := denseWorkload(k, dc, 4, 4096, e, o.Seed+400+uint64(dc))
				apRep := runOrPanic(sim.Config{
					K: k, Eps: e, Steps: steps, Seed: o.Seed + 23,
					Gen:        gen1,
					NewMonitor: mkMonitor("approx", k, e),
					Validate:   sim.ValidateEps,
				})
				heRep := runOrPanic(sim.Config{
					K: k, Eps: e, Steps: steps, Seed: o.Seed + 23,
					Gen:        gen2,
					NewMonitor: mkMonitor("half-eps", k, e),
					Validate:   sim.ValidateEps,
					ComputeOPT: true, OPTEps: e.Half(),
				})
				return e7row{apRep, heRep}
			})
			for i, dc := range denseCounts {
				apRep, heRep := rows[i].ap, rows[i].he
				tb.AddRow(dc, heRep.SigmaMax,
					perEpoch(apRep.Messages.Total(), apRep.Epochs),
					perEpoch(heRep.Messages.Total(), heRep.Epochs),
					apRep.Messages.Total(), heRep.Messages.Total(),
					heRep.OPTBreaks, heRep.RatioLB)
			}
			return []*metrics.Table{tb}
		},
	}
}

// E8EpsilonSavings quantifies the paper's motivation: on noisy oscillation
// around v_k, allowing an error ε collapses the communication that exact
// monitoring burns.
func E8EpsilonSavings() Experiment {
	return Experiment{
		ID:    "E8",
		Title: "ε-approximation communication savings on noisy streams",
		Claim: "Section 1 motivation: marginal/noisy changes need not be communicated",
		Run: func(o Options) []*metrics.Table {
			const k, dense, low = 4, 16, 8
			const base = int64(1 << 16)
			steps := 1500
			if o.Quick {
				steps = 300
			}
			// Noise amplitude fixed at ~3% of v_k; ε sweeps across it.
			amp := base * 3 / 100
			mkGen := func(seed uint64) stream.Generator {
				return stream.NewOscillator(k-1, dense, low, base, amp, base*64, base/64, seed)
			}
			epsList := []eps.Eps{
				eps.MustNew(1, 64), eps.MustNew(1, 16), eps.MustNew(1, 8),
				eps.MustNew(1, 4), eps.MustNew(1, 2),
			}
			// Jobs: 0 = naive baseline, 1 = exact-mid, 2+i = approx(ε_i);
			// the naive total is every row's denominator, so rows are
			// assembled after the barrier.
			reps := parMap(o, 2+len(epsList), func(i int) sim.Report {
				switch i {
				case 0:
					return runOrPanic(sim.Config{
						K: k, Steps: steps, Seed: o.Seed + 29,
						Gen:        mkGen(o.Seed + 500),
						NewMonitor: mkMonitor("naive", k, eps.Zero),
						Validate:   sim.ValidateEps, // ε=0 → exact check via eps-validate with Zero
					})
				case 1:
					return runOrPanic(sim.Config{
						K: k, Steps: steps, Seed: o.Seed + 29,
						Gen:        stream.Distinct{Inner: mkGen(o.Seed + 500)},
						NewMonitor: mkMonitor("exact-mid", k, eps.Zero),
						Validate:   sim.ValidateExact,
					})
				default:
					ee := epsList[i-2]
					return runOrPanic(sim.Config{
						K: k, Eps: ee, Steps: steps, Seed: o.Seed + 29,
						Gen:        mkGen(o.Seed + 500),
						NewMonitor: mkMonitor("approx", k, ee),
						Validate:   sim.ValidateEps,
					})
				}
			})
			naive, exact := reps[0], reps[1]
			tb := metrics.NewTable("E8: messages over 1500 noisy steps (amp ≈ 3% of v_k)",
				"monitor", "eps", "msgs", "msgs/step", "vs naive")
			tb.AddRow("naive", "0", naive.Messages.Total(),
				float64(naive.Messages.Total())/float64(steps), 1.0)
			tb.AddRow("exact-mid", "0", exact.Messages.Total(),
				float64(exact.Messages.Total())/float64(steps),
				ratio(naive.Messages.Total(), exact.Messages.Total()))
			for i, ee := range epsList {
				rep := reps[2+i]
				tb.AddRow("approx", ee.String(), rep.Messages.Total(),
					float64(rep.Messages.Total())/float64(steps),
					ratio(naive.Messages.Total(), rep.Messages.Total()))
			}
			return []*metrics.Table{tb}
		},
	}
}

func ratio(a, b int64) float64 {
	if b == 0 {
		b = 1
	}
	return float64(a) / float64(b)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
