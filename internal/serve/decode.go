package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"topkmon/topk"
)

// ErrBatchTooLarge rejects a batch exceeding the server's per-request
// update limit before it is fully decoded.
var ErrBatchTooLarge = errors.New("serve: batch exceeds update limit")

// updateJSON is the wire shape of one update. Pointer fields distinguish
// "absent" from a legitimate zero, so a half-specified element is rejected
// instead of silently defaulting.
type updateJSON struct {
	Node  *int   `json:"node"`
	Value *int64 `json:"value"`
}

// DecodeBatch strictly decodes an update batch — a JSON array of
// {"node": int, "value": int64} objects — appending to dst[:0] and reusing
// its capacity. It is all-or-nothing by construction: any error (malformed
// JSON, unknown or missing fields, numeric overflow, more than max
// elements, trailing data after the array) returns a nil batch, so a
// handler can never partially apply a bad request. Range validation of
// node ids and values stays with Monitor.UpdateBatch, which itself
// validates the whole batch before staging anything.
func DecodeBatch(r io.Reader, dst []topk.Update, max int) ([]topk.Update, error) {
	dst = dst[:0]
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()

	tok, err := dec.Token()
	if err != nil {
		return nil, fmt.Errorf("serve: batch: %w", err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '[' {
		return nil, fmt.Errorf("serve: batch must be a JSON array, got %v", tok)
	}
	for dec.More() {
		if len(dst) >= max {
			return nil, fmt.Errorf("%w (max %d)", ErrBatchTooLarge, max)
		}
		var u updateJSON
		if err := dec.Decode(&u); err != nil {
			return nil, fmt.Errorf("serve: batch element %d: %w", len(dst), err)
		}
		if u.Node == nil || u.Value == nil {
			return nil, fmt.Errorf("serve: batch element %d: need both \"node\" and \"value\"", len(dst))
		}
		dst = append(dst, topk.Update{Node: *u.Node, Value: *u.Value})
	}
	if _, err := dec.Token(); err != nil { // the closing ']'
		return nil, fmt.Errorf("serve: batch: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, errors.New("serve: trailing data after batch array")
	}
	return dst, nil
}
