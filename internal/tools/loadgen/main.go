// Command loadgen drives a running topkd with many concurrent simulated
// clients and reports sustained throughput and latency percentiles. It is
// the measurement half of `make bench-serve` (snapshot: BENCH_PR8.json)
// and the CI serve-smoke job's traffic source.
//
// Each client owns a seeded random-walk workload over one tenant's nodes
// and POSTs batches to /v1/{tenant}/update in a closed loop; tenants are
// pre-created (PUT, 409-tolerant) from the config flags so the run does
// not depend on the server's lazy defaults. After the drive, every
// tenant's /v1/{tenant}/cost snapshot is scraped and the run FAILS (exit
// 1) on any transport error or any silent-invalid answer — a tenant whose
// referee Check fails while Health still claims fresh — making the
// no-silent-wrong-answers guarantee an operational assertion, not just a
// test one.
//
// Exactly-once accounting (-seq, on by default): every POST carries
// ?client=&seq= idempotency parameters, so a durable topkd (-data-dir)
// commits each batch exactly once even when loadgen retries it. -retries
// N turns on retry-on-error: a failed request (transport error, 429, or
// 5xx) is resent with the SAME seq after a growing backoff (honoring a
// Retry-After header when the server sends one), which is how kill/restart
// runs are driven without double-counting. After the drive, each tenant's
// step-count delta (versus a pre-drive baseline scrape) is checked against
// the batches this run actually acked: delta < acked means an acked batch
// was LOST, delta > acked + unresolved-errors means a batch DOUBLE
// COMMITTED — both fail the run.
//
// Usage:
//
//	loadgen [-addr http://127.0.0.1:7070] [-tenants 8] [-clients 64]
//	        [-requests 200] [-batch 16] [-nodes 64] [-k 4] [-eps 1/8]
//	        [-engine lockstep] [-shards 0] [-monitor approx] [-seed 1]
//	        [-faults spec] [-tenant-prefix t] [-out FILE] [-wait 10s]
//	        [-seq] [-retries 0] [-retry-backoff 100ms] [-workload uniform]
//
// -workload selects how each client spreads its batch across the tenant's
// nodes: "uniform" (the default, every node equally likely) or "zipf:s"
// with s > 1 (e.g. "zipf:1.2") for an item-skewed drive where a few hot
// nodes absorb most updates — the heavy-hitter ingest shape. The pick
// sequence stays a pure function of the client index and -seed, and the
// exactly-once accounting is untouched by the choice.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"topkmon/internal/serve"
	"topkmon/topk"
)

type params struct {
	Addr     string `json:"addr"`
	Prefix   string `json:"tenantPrefix"`
	Tenants  int    `json:"tenants"`
	Clients  int    `json:"clients"`
	Requests int    `json:"requestsPerClient"`
	Batch    int    `json:"updatesPerBatch"`
	Nodes    int    `json:"nodes"`
	K        int    `json:"k"`
	Eps      string `json:"eps"`
	Engine   string `json:"engine"`
	Shards   int    `json:"shards"`
	Monitor  string `json:"monitor"`
	Seed     uint64 `json:"seed"`
	Faults   string `json:"faults,omitempty"`
	Seq      bool   `json:"seq"`
	Retries  int    `json:"retries,omitempty"`
	Workload string `json:"workload"`

	backoff time.Duration
	runID   string // per-run client-id nonce, so reruns never collide on watermarks
}

type latencySummary struct {
	P50Ms float64 `json:"p50"`
	P90Ms float64 `json:"p90"`
	P99Ms float64 `json:"p99"`
	MaxMs float64 `json:"max"`
}

type results struct {
	Requests      int            `json:"requests"`
	Errors        int            `json:"errors"`
	Acked         int            `json:"acked"`
	Duplicates    int            `json:"duplicates"`
	Resends       int            `json:"resends"`
	Updates       int64          `json:"updates"`
	WallSeconds   float64        `json:"wallSeconds"`
	ReqPerSec     float64        `json:"reqPerSec"`
	UpdatesPerSec float64        `json:"updatesPerSec"`
	LatencyMs     latencySummary `json:"latencyMs"`
}

type tenantReport struct {
	Name          string `json:"name"`
	Steps         int64  `json:"steps"`
	StepDelta     int64  `json:"stepDelta"`
	Acked         int    `json:"acked"`
	Messages      int64  `json:"messages"`
	Epochs        int64  `json:"epochs"`
	Check         string `json:"check"`
	Health        string `json:"health"`
	SilentInvalid bool   `json:"silentInvalid"`
}

type snapshot struct {
	Kind    string            `json:"kind"`
	When    string            `json:"when"`
	Env     map[string]any    `json:"env"`
	Params  params            `json:"params"`
	Results results           `json:"results"`
	Tenants []tenantReport    `json:"tenants"`
	Notes   map[string]string `json:"notes,omitempty"`
}

// costScrape is the slice of serve's /cost response loadgen consumes.
type costScrape struct {
	Steps         int64  `json:"steps"`
	Epochs        int64  `json:"epochs"`
	Messages      int64  `json:"messages"`
	Check         string `json:"check"`
	SilentInvalid bool   `json:"silentInvalid"`
	Health        struct {
		State string `json:"state"`
	} `json:"health"`
}

type clientStats struct {
	lats    []time.Duration
	errs    int
	reqs    int
	acked   int // batches with a 200 ack (counting a duplicate ack once)
	dups    int // acks that reported duplicate:true (a retry landed twice)
	resends int // retry attempts beyond the first send
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:7070", "topkd base URL")
	tenants := flag.Int("tenants", 8, "tenant count")
	prefix := flag.String("tenant-prefix", "t", "tenant name prefix")
	clients := flag.Int("clients", 64, "concurrent client goroutines")
	requests := flag.Int("requests", 200, "requests per client")
	batch := flag.Int("batch", 16, "updates per request")
	nodes := flag.Int("nodes", 64, "nodes per tenant")
	k := flag.Int("k", 4, "top-set size per tenant")
	epsStr := flag.String("eps", "1/8", "tenant ε as p/q")
	engine := flag.String("engine", "lockstep", "tenant engine: lockstep | live")
	shards := flag.Int("shards", 0, "tenant live-engine shards")
	monitor := flag.String("monitor", "approx", "tenant algorithm")
	seed := flag.Uint64("seed", 1, "workload + tenant seed")
	faultSpec := flag.String("faults", "", "tenant fault spec (same syntax as topkd -faults)")
	out := flag.String("out", "", "write the JSON snapshot here (default: stdout summary only)")
	wait := flag.Duration("wait", 10*time.Second, "how long to wait for the server to come up")
	seqMode := flag.Bool("seq", true, "send per-client sequence numbers (exactly-once accounting)")
	retries := flag.Int("retries", 0, "retry a failed request this many times with the same seq (0 = no retries)")
	backoff := flag.Duration("retry-backoff", 100*time.Millisecond, "base backoff between retries (grows linearly)")
	workload := flag.String("workload", "uniform", "node-selection workload: uniform | zipf:s (s > 1)")
	flag.Parse()

	p := params{
		Addr: *addr, Prefix: *prefix, Tenants: *tenants, Clients: *clients, Requests: *requests,
		Batch: *batch, Nodes: *nodes, K: *k, Eps: *epsStr, Engine: *engine,
		Shards: *shards, Monitor: *monitor, Seed: *seed, Faults: *faultSpec,
		Seq: *seqMode, Retries: *retries, backoff: *backoff, Workload: *workload,
		runID: strconv.FormatInt(time.Now().UnixNano(), 36),
	}
	if p.Tenants < 1 || p.Clients < 1 || p.Requests < 1 || p.Batch < 1 {
		fail(fmt.Errorf("tenants, clients, requests, batch must all be >= 1"))
	}
	if _, err := parseWorkload(p.Workload); err != nil {
		fail(err)
	}

	hc := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        p.Clients + 8,
			MaxIdleConnsPerHost: p.Clients + 8,
		},
	}

	if err := waitReady(hc, p.Addr, *wait); err != nil {
		fail(err)
	}
	if err := createTenants(hc, p); err != nil {
		fail(err)
	}

	// Baseline scrape: step counts before this run's traffic, so the
	// acked-vs-committed check below works against a server that already
	// holds state (reruns, recovery runs).
	baseline := make(map[string]int64, p.Tenants)
	if p.Seq {
		reports, _, err := scrapeTenants(hc, p)
		if err != nil {
			fail(err)
		}
		for _, tr := range reports {
			baseline[tr.Name] = tr.Steps
		}
	}

	// Drive: each client is pinned to one tenant (round-robin) and runs a
	// seeded random-walk workload — deterministic per client index.
	stats := make([]clientStats, p.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < p.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			stats[c] = driveClient(hc, p, c)
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	// Aggregate, tracking acked batches and unresolved errors per tenant
	// (clients are pinned round-robin, so client c drives tenant c%T).
	var all []time.Duration
	res := results{WallSeconds: wall.Seconds()}
	ackedBy := make(map[string]int, p.Tenants)
	errsBy := make(map[string]int, p.Tenants)
	for c, st := range stats {
		res.Requests += st.reqs
		res.Errors += st.errs
		res.Acked += st.acked
		res.Duplicates += st.dups
		res.Resends += st.resends
		name := tenantName(p, c%p.Tenants)
		ackedBy[name] += st.acked
		errsBy[name] += st.errs
		all = append(all, st.lats...)
	}
	res.Updates = int64(res.Acked) * int64(p.Batch)
	res.ReqPerSec = float64(res.Requests) / wall.Seconds()
	res.UpdatesPerSec = float64(res.Updates) / wall.Seconds()
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.LatencyMs = latencySummary{
		P50Ms: pctMs(all, 0.50), P90Ms: pctMs(all, 0.90),
		P99Ms: pctMs(all, 0.99), MaxMs: pctMs(all, 1.00),
	}

	// Scrape every tenant's cost snapshot; traffic has quiesced, so the
	// check/health verdict is consistent.
	reports, silent, err := scrapeTenants(hc, p)
	if err != nil {
		fail(err)
	}
	// Exactly-once accounting: each tenant's step delta must match the
	// batches this run acked. Requests that errored out even after
	// retries MAY have committed server-side (the ack was lost), so they
	// widen the upper bound — but an acked batch that didn't commit, or a
	// batch that committed twice, is never explainable.
	var lost, doubled []string
	for i := range reports {
		tr := &reports[i]
		tr.StepDelta = tr.Steps - baseline[tr.Name]
		tr.Acked = ackedBy[tr.Name]
		if !p.Seq {
			continue
		}
		if tr.StepDelta < int64(tr.Acked) {
			lost = append(lost, fmt.Sprintf("%s: %d steps for %d acked batches", tr.Name, tr.StepDelta, tr.Acked))
		}
		if tr.StepDelta > int64(tr.Acked)+int64(errsBy[tr.Name]) {
			doubled = append(doubled, fmt.Sprintf("%s: %d steps for %d acked + %d unresolved",
				tr.Name, tr.StepDelta, tr.Acked, errsBy[tr.Name]))
		}
	}

	snap := snapshot{
		Kind: "topkd-loadgen",
		When: time.Now().UTC().Format(time.RFC3339),
		Env: map[string]any{
			"goVersion":  runtime.Version(),
			"goos":       runtime.GOOS,
			"goarch":     runtime.GOARCH,
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"numcpu":     runtime.NumCPU(),
		},
		Params:  p,
		Results: res,
		Tenants: reports,
	}

	fmt.Printf("loadgen: %d clients × %d reqs × %d updates over %d tenants in %.2fs\n",
		p.Clients, p.Requests, p.Batch, p.Tenants, res.WallSeconds)
	fmt.Printf("loadgen: %.0f req/s, %.0f updates/s, errors=%d acked=%d dups=%d resends=%d\n",
		res.ReqPerSec, res.UpdatesPerSec, res.Errors, res.Acked, res.Duplicates, res.Resends)
	fmt.Printf("loadgen: latency ms p50=%.3f p90=%.3f p99=%.3f max=%.3f\n",
		res.LatencyMs.P50Ms, res.LatencyMs.P90Ms, res.LatencyMs.P99Ms, res.LatencyMs.MaxMs)
	for _, tr := range reports {
		fmt.Printf("loadgen: tenant %s: steps=%d msgs=%d epochs=%d health=%s check=%s silentInvalid=%v\n",
			tr.Name, tr.Steps, tr.Messages, tr.Epochs, tr.Health,
			abbrev(tr.Check), tr.SilentInvalid)
	}

	if *out != "" {
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fail(err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("loadgen: wrote %s\n", *out)
	}

	if len(lost) > 0 {
		fail(fmt.Errorf("LOST ACKED BATCHES: %v", lost))
	}
	if len(doubled) > 0 {
		fail(fmt.Errorf("DOUBLE-COMMITTED BATCHES: %v", doubled))
	}
	if res.Errors > 0 {
		fail(fmt.Errorf("%d request errors", res.Errors))
	}
	if silent > 0 {
		fail(fmt.Errorf("%d tenants served a SILENT INVALID answer (Check failed with Health fresh)", silent))
	}
}

func tenantName(p params, i int) string { return p.Prefix + strconv.Itoa(i) }

func waitReady(hc *http.Client, addr string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		resp, err := hc.Get(addr + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not ready after %s: %v", addr, wait, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// createTenants PUTs every tenant with the explicit config from the flags
// (an already-existing tenant is fine — reruns against a live server).
func createTenants(hc *http.Client, p params) error {
	var faults *serve.FaultConfig
	if p.Faults != "" {
		plan, err := topk.ParseFaultPlan(p.Faults)
		if err != nil {
			return err
		}
		faults = &serve.FaultConfig{
			Drop: plan.Drop, Dup: plan.Dup, Delay: plan.Delay, Retries: plan.Retries,
		}
		for _, c := range plan.Crashes {
			faults.Crashes = append(faults.Crashes,
				serve.CrashConfig{Node: c.Node, From: c.From, Until: c.Until})
		}
	}
	cfg := serve.Config{
		Nodes: p.Nodes, K: p.K, Eps: p.Eps, Engine: p.Engine, Shards: p.Shards,
		Monitor: p.Monitor, Seed: p.Seed, Faults: faults,
	}
	body, err := json.Marshal(cfg)
	if err != nil {
		return err
	}
	for i := 0; i < p.Tenants; i++ {
		req, err := http.NewRequest(http.MethodPut,
			p.Addr+"/v1/"+tenantName(p, i), bytes.NewReader(body))
		if err != nil {
			return err
		}
		resp, err := hc.Do(req)
		if err != nil {
			return err
		}
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
			return fmt.Errorf("create tenant %s: %s: %s",
				tenantName(p, i), resp.Status, bytes.TrimSpace(msg))
		}
	}
	return nil
}

// driveClient runs one client's closed loop: build a batch from its
// random walk, POST it (with this client's next sequence number when -seq
// is on), and record the latency. A failed attempt — transport error,
// 429, or 5xx — is resent with the SAME seq up to -retries times, backing
// off linearly (or as the server's Retry-After header instructs): against
// a durable server the seq guarantees the batch commits exactly once no
// matter which attempt lands.
func driveClient(hc *http.Client, p params, c int) clientStats {
	st := clientStats{lats: make([]time.Duration, 0, p.Requests)}
	tenant := tenantName(p, c%p.Tenants)
	url := p.Addr + "/v1/" + tenant + "/update"
	clientID := p.runID + "-c" + strconv.Itoa(c)
	rng := rand.New(rand.NewSource(int64(p.Seed) + int64(c)*7919))
	pickNode := nodePicker(p, rng)

	walk := make([]int64, p.Nodes)
	for i := range walk {
		walk[i] = 5000 + rng.Int63n(10001)
	}
	type upd struct {
		Node  int   `json:"node"`
		Value int64 `json:"value"`
	}
	batch := make([]upd, p.Batch)
	var buf bytes.Buffer

	for r := 0; r < p.Requests; r++ {
		for b := range batch {
			node := pickNode()
			walk[node] += rng.Int63n(401) - 200
			if walk[node] < 0 {
				walk[node] = 0
			}
			batch[b] = upd{Node: node, Value: walk[node]}
		}
		buf.Reset()
		if err := json.NewEncoder(&buf).Encode(batch); err != nil {
			st.errs++
			st.reqs++
			continue
		}
		target := url
		if p.Seq {
			target = fmt.Sprintf("%s?client=%s&seq=%d", url, clientID, r+1)
		}
		st.reqs++
		acked := false
		for attempt := 0; attempt <= p.Retries; attempt++ {
			if attempt > 0 {
				st.resends++
			}
			t0 := time.Now()
			resp, err := hc.Post(target, "application/json", bytes.NewReader(buf.Bytes()))
			lat := time.Since(t0)
			if err != nil {
				sleepBackoff(p, attempt, "")
				continue
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				var ur struct {
					Duplicate bool `json:"duplicate"`
				}
				if json.Unmarshal(body, &ur) == nil && ur.Duplicate {
					st.dups++
				}
				st.acked = st.acked + 1
				st.lats = append(st.lats, lat)
				acked = true
				break
			}
			if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500 {
				sleepBackoff(p, attempt, resp.Header.Get("Retry-After"))
				continue
			}
			break // a 4xx is a permanent rejection; retrying cannot help
		}
		if !acked {
			st.errs++
		}
	}
	return st
}

// parseWorkload validates -workload and returns the zipf exponent (0 for
// uniform).
func parseWorkload(spec string) (float64, error) {
	if spec == "" || spec == "uniform" {
		return 0, nil
	}
	if s, ok := strings.CutPrefix(spec, "zipf:"); ok {
		exp, err := strconv.ParseFloat(s, 64)
		if err != nil || exp <= 1 {
			return 0, fmt.Errorf("workload %q: zipf exponent must be a number > 1", spec)
		}
		return exp, nil
	}
	return 0, fmt.Errorf("workload %q: want uniform or zipf:s", spec)
}

// nodePicker returns the per-batch node selector: uniform by default, or
// zipf-skewed over a per-client shuffled node order so the hot node set
// differs between clients (the skew is per tenant stream, not a single
// global hot node). Both draw only from rng, keeping the sequence a pure
// function of the client index and -seed.
func nodePicker(p params, rng *rand.Rand) func() int {
	exp, err := parseWorkload(p.Workload)
	if err != nil || exp == 0 {
		return func() int { return rng.Intn(p.Nodes) }
	}
	z := rand.NewZipf(rng, exp, 1, uint64(p.Nodes-1))
	order := rng.Perm(p.Nodes)
	return func() int { return order[int(z.Uint64())] }
}

// sleepBackoff waits before a retry: the server's Retry-After seconds when
// given, otherwise the base backoff growing linearly with the attempt.
func sleepBackoff(p params, attempt int, retryAfter string) {
	if p.Retries == 0 {
		return
	}
	if retryAfter != "" {
		if secs, err := strconv.Atoi(retryAfter); err == nil && secs >= 0 {
			time.Sleep(time.Duration(secs) * time.Second)
			return
		}
	}
	time.Sleep(p.backoff * time.Duration(attempt+1))
}

func scrapeTenants(hc *http.Client, p params) ([]tenantReport, int, error) {
	var reports []tenantReport
	silent := 0
	for i := 0; i < p.Tenants; i++ {
		name := tenantName(p, i)
		resp, err := hc.Get(p.Addr + "/v1/" + name + "/cost")
		if err != nil {
			return nil, 0, err
		}
		var c costScrape
		err = json.NewDecoder(resp.Body).Decode(&c)
		resp.Body.Close()
		if err != nil {
			return nil, 0, fmt.Errorf("scrape %s/cost: %v", name, err)
		}
		if c.SilentInvalid {
			silent++
		}
		reports = append(reports, tenantReport{
			Name: name, Steps: c.Steps, Messages: c.Messages, Epochs: c.Epochs,
			Check: c.Check, Health: c.Health.State, SilentInvalid: c.SilentInvalid,
		})
	}
	return reports, silent, nil
}

func pctMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i]) / float64(time.Millisecond)
}

func abbrev(s string) string {
	if len(s) > 60 {
		return s[:57] + "..."
	}
	return s
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
	os.Exit(1)
}
