package wire

import (
	"testing"

	"topkmon/internal/filter"
)

func TestKindStrings(t *testing.T) {
	for k := Kind(0); int(k) < NumKinds; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
	seen := map[string]bool{}
	for k := Kind(0); int(k) < NumKinds; k++ {
		if seen[k.String()] {
			t.Errorf("duplicate kind name %q", k.String())
		}
		seen[k.String()] = true
	}
}

func TestTagStrings(t *testing.T) {
	seen := map[string]bool{}
	for tg := Tag(0); tg < NumTags; tg++ {
		s := tg.String()
		if s == "" || seen[s] {
			t.Errorf("tag %d name %q invalid or duplicate", tg, s)
		}
		seen[s] = true
	}
}

func TestFilterRuleApply(t *testing.T) {
	r := NewFilterRule().
		With(TagOut, filter.AtLeast(50)).
		With(TagRest, filter.AtMost(50))
	tag, f := r.Apply(TagOut, filter.All)
	if tag != TagOut || f != filter.AtLeast(50) {
		t.Errorf("Apply(TagOut) = %v, %v", tag, f)
	}
	// Undefined tag keeps its filter.
	tag, f = r.Apply(TagV1, filter.Make(1, 2))
	if tag != TagV1 || f != filter.Make(1, 2) {
		t.Errorf("undefined tag changed: %v %v", tag, f)
	}
}

func TestFilterRuleRetagThenFilter(t *testing.T) {
	r := NewFilterRule().
		WithRetag(TagV2S2, TagV2).
		With(TagV2, filter.Make(10, 20))
	tag, f := r.Apply(TagV2S2, filter.All)
	if tag != TagV2 {
		t.Errorf("retag failed: %v", tag)
	}
	if f != filter.Make(10, 20) {
		t.Errorf("filter must follow the NEW tag, got %v", f)
	}
}

func TestFilterRuleNilSafe(t *testing.T) {
	var r *FilterRule
	tag, f := r.Apply(TagV1, filter.Make(3, 4))
	if tag != TagV1 || f != filter.Make(3, 4) {
		t.Error("nil rule must be identity")
	}
	if _, ok := r.Lookup(TagV1); ok {
		t.Error("nil rule lookup must miss")
	}
}

func TestFilterRuleCount(t *testing.T) {
	r := NewFilterRule().With(TagV1, filter.All).With(TagV3, filter.All)
	if r.Count() != 2 {
		t.Errorf("Count = %d", r.Count())
	}
}

func TestPredConstructors(t *testing.T) {
	if p := Violating(); p.Kind != PredViolating {
		t.Error("Violating constructor")
	}
	if p := AboveActive(7); p.Kind != PredAboveActive || p.X != 7 {
		t.Error("AboveActive constructor")
	}
	if p := InRange(3, 9); p.Kind != PredInRange || p.X != 3 || p.Y != 9 {
		t.Error("InRange constructor")
	}
	if p := HasTag(TagV2); p.Kind != PredHasTag || p.Tag != TagV2 {
		t.Error("HasTag constructor")
	}
}

// TestPredBounds pins the value-interval contract the engines' index
// routing relies on: the interval must be a NECESSARY condition (a value
// outside it never matches), and ok=false exactly for the state-decided
// predicates.
func TestPredBounds(t *testing.T) {
	if lo, hi, ok := InRange(30, 50).Bounds(); !ok || lo != 30 || hi != 50 {
		t.Errorf("InRange bounds = [%d,%d] ok=%v", lo, hi, ok)
	}
	if lo, _, ok := AboveActive(7).Bounds(); !ok || lo != 8 {
		t.Errorf("AboveActive bounds lo = %d ok=%v", lo, ok)
	}
	// AboveActive(-1) (FindMax's unbounded first run) must yield a bound
	// starting at 0 — the engines treat it as the full-scan fallback.
	if lo, _, ok := AboveActive(-1).Bounds(); !ok || lo != 0 {
		t.Errorf("AboveActive(-1) lo = %d ok=%v", lo, ok)
	}
	if lo, hi, ok := AboveActive(1<<63 - 1).Bounds(); !ok || lo <= hi {
		t.Errorf("AboveActive(max) must be an empty interval, got [%d,%d]", lo, hi)
	}
	if _, _, ok := Violating().Bounds(); ok {
		t.Error("Violating must not expose bounds (filter-decided)")
	}
	if _, _, ok := HasTag(TagV2).Bounds(); ok {
		t.Error("HasTag must not expose bounds (tag-decided)")
	}
}

func TestMsgBitsWithinModelBound(t *testing.T) {
	// The model allows c·(log n + log Δ) bits; check a generous c.
	const c = 24
	for _, n := range []int{2, 64, 1 << 16} {
		for _, maxV := range []int64{2, 1 << 20, 1 << 40} {
			bound := c * (IDBits(n) + ValueBits(maxV))
			for k := Kind(0); int(k) < NumKinds; k++ {
				if got := MsgBits(k, n, maxV); got > bound {
					t.Errorf("kind %v n=%d Δ=%d: %d bits > bound %d", k, n, maxV, got, bound)
				}
				if MsgBits(k, n, maxV) <= 0 {
					t.Errorf("kind %v: non-positive size", k)
				}
			}
		}
	}
}

func TestBitsHelpers(t *testing.T) {
	if IDBits(1) != 1 || IDBits(2) != 1 || IDBits(1024) != 10 {
		t.Error("IDBits wrong")
	}
	if ValueBits(1) != 1 || ValueBits(1<<20) != 21 {
		t.Errorf("ValueBits wrong: %d", ValueBits(1<<20))
	}
}
