#!/bin/sh
# Crash-restart smoke: the durability layer's end-to-end gate, run by
# `make smoke-crash` and the CI crash-smoke job.
#
#   1. Boot topkd with -data-dir and drive it cleanly (run 1) — every batch
#      acked and, under -fsync always, durable.
#   2. Start a second drive and SIGKILL the server mid-load: the torn tail
#      and the lost acks are exactly the crash model the WAL is built for.
#   3. Restart topkd on the same data dir. Recovery must replay every
#      tenant: for each tenant assert (a) the step count is at least run
#      1's acked steps — no lost acked batch — and (b) health is Fresh
#      with no silent-invalid verdict.
#   4. Drive it again (run 3) with retries: loadgen's own exactly-once
#      accounting (acked batches vs step delta) gates the recovered
#      server's ingest path.
set -eu

ADDR=${ADDR:-127.0.0.1:7071}
DATA_DIR=$(mktemp -d /tmp/topkd-crash-smoke.XXXXXX)
OUT1=/tmp/crash_smoke_run1.json
trap 'kill $PID 2>/dev/null || true; rm -rf "$DATA_DIR"' EXIT

go build -o /tmp/topkd ./cmd/topkd
go build -o /tmp/topkd-loadgen ./internal/tools/loadgen

echo "== boot (fresh data dir $DATA_DIR)"
/tmp/topkd -addr "$ADDR" -data-dir "$DATA_DIR" -fsync always &
PID=$!

echo "== run 1: clean drive (every ack durable)"
/tmp/topkd-loadgen -addr "http://$ADDR" -tenants 4 -clients 16 -requests 40 -batch 8 \
    -retries 2 -out "$OUT1"

echo "== run 2: SIGKILL mid-load"
(/tmp/topkd-loadgen -addr "http://$ADDR" -tenants 4 -clients 16 -requests 5000 -batch 8 \
    -retries 0 >/dev/null 2>&1 || true) &
LG=$!
sleep 1
kill -9 "$PID"
wait "$LG" 2>/dev/null || true

echo "== restart on the same data dir"
/tmp/topkd -addr "$ADDR" -data-dir "$DATA_DIR" -fsync always &
PID=$!
for i in $(seq 1 50); do
    curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && break
    sleep 0.2
done

echo "== recovery asserts: no lost acked batch, Fresh, no silent-invalid"
for t in $(jq -r '.tenants[].name' "$OUT1"); do
    want=$(jq -r ".tenants[] | select(.name==\"$t\") | .steps" "$OUT1")
    cost=$(curl -sf "http://$ADDR/v1/$t/cost")
    steps=$(echo "$cost" | jq -r .steps)
    state=$(echo "$cost" | jq -r .health.state)
    silent=$(echo "$cost" | jq -r .silentInvalid)
    echo "   tenant $t: recovered steps=$steps (run-1 acked $want) health=$state silentInvalid=$silent"
    if [ "$steps" -lt "$want" ]; then
        echo "FAIL: tenant $t lost acked batches ($steps < $want)"; exit 1
    fi
    if [ "$state" != "fresh" ] || [ "$silent" != "false" ]; then
        echo "FAIL: tenant $t recovered unhealthy (state=$state silentInvalid=$silent)"; exit 1
    fi
done

echo "== run 3: clean drive on the recovered server (exactly-once accounting)"
/tmp/topkd-loadgen -addr "http://$ADDR" -tenants 4 -clients 16 -requests 40 -batch 8 -retries 3

echo "== crash smoke OK"
