package exp

import (
	"fmt"

	"topkmon/internal/metrics"
	"topkmon/internal/wire"
)

// HotCold fills vals with sigma "hot" nodes isolated in the [2^30, 2^31)
// value bucket (spread across the id space) and everyone else cold in the
// low buckets 3..10 — the workload whose plausible-matcher count the value
// index is supposed to track. sigma is capped at len(vals). Shared by the
// E12 selectivity experiment and the root BenchmarkSweepSelectivity so the
// two always measure the same distribution.
func HotCold(vals []int64, sigma int) {
	n := len(vals)
	if sigma > n {
		sigma = n
	}
	stride := n / sigma
	for j := range vals {
		if j%stride == 0 && j/stride < sigma {
			vals[j] = int64(1)<<30 + int64(j)
		} else {
			vals[j] = 4 << (j % 8)
		}
	}
}

// HotInterval returns the predicate isolating HotCold's hot bucket.
func HotInterval() wire.Pred { return wire.InRange(1<<30, 1<<31-1) }

// E12Selectivity measures the value index added with the sharded node
// state: the number of node structs a predicate-routed Collect actually
// visits as a function of the plausible-matcher count σ and of n. With the
// power-of-two bucket index, visits track σ (here the isolated hot nodes)
// and stay flat as the cold population grows; the state-decided fallback
// (a tag collect) keeps visiting all n nodes. Visits are deterministic —
// no randomness is involved — so the table doubles as a regression pin for
// the routing itself. The value-ordered organisation follows the
// companion top-k-position work (arXiv:1410.7912) and the top-k/k-select
// structures of arXiv:1709.07259.
func E12Selectivity() Experiment {
	return Experiment{
		ID:    "E12",
		Title: "Value-index selectivity: visited nodes track σ, not n",
		Claim: "ROADMAP sharded state: Sweep/Collect cost O(σ + log Δ) candidates, not n (cf. arXiv:1410.7912, arXiv:1709.07259)",
		Run: func(o Options) []*metrics.Table {
			ns := []int{256, 4096, 16384}
			if o.Quick {
				ns = []int{256, 1024}
			}
			sigmas := []int{1, 16, 256}
			headers := []string{"n"}
			for _, s := range sigmas {
				headers = append(headers, fmt.Sprintf("visits σ=%d", s))
			}
			headers = append(headers, "fallback (tag)", "max visits/σ")
			tb := metrics.NewTable("E12: Collect node visits vs σ (hot nodes) and n", headers...)

			type cell struct{ visits []int64 }
			cells := parMapWith(o, len(ns),
				func() *trialCtx { return &trialCtx{} },
				func(c *trialCtx, i int) cell {
					n := ns[i]
					e := c.reset(n, o.Seed+uint64(n))
					if cap(c.vals) < n {
						c.vals = make([]int64, n)
					}
					c.vals = c.vals[:n]
					visits := make([]int64, 0, len(sigmas)+1)
					for _, sigma := range sigmas {
						if sigma > n {
							sigma = n
						}
						HotCold(c.vals, sigma)
						e.Advance(c.vals)
						before := e.VisitedNodes()
						reps := e.Collect(HotInterval())
						if len(reps) != sigma {
							panic(fmt.Sprintf("exp: E12 collect matched %d nodes, want %d", len(reps), sigma))
						}
						visits = append(visits, e.VisitedNodes()-before)
					}
					// Fallback: a tag predicate has no value bounds, so the
					// engine must visit all n nodes.
					before := e.VisitedNodes()
					e.Collect(wire.HasTag(wire.TagNone))
					visits = append(visits, e.VisitedNodes()-before)
					return cell{visits: visits}
				})

			for i, n := range ns {
				row := []any{n}
				worst := 0.0
				for j, s := range sigmas {
					v := cells[i].visits[j]
					row = append(row, v)
					if s > n {
						s = n
					}
					if r := float64(v) / float64(s); r > worst {
						worst = r
					}
				}
				row = append(row, cells[i].visits[len(sigmas)], fmt.Sprintf("%.2f", worst))
				tb.AddRow(row...)
			}
			return []*metrics.Table{tb}
		},
	}
}
