// Package exp defines the reproduction experiments E1–E10, each mapping a
// theorem or claim of the paper to a measured table (the paper itself is
// purely theoretical, so the "tables and figures" reproduced here are the
// bound shapes its theorems assert; see DESIGN.md §5 and EXPERIMENTS.md).
//
// Experiments are deterministic given Options.Seed and scale down under
// Options.Quick so they double as benchmark bodies in bench_test.go.
package exp

import (
	"fmt"
	"sort"

	"topkmon/internal/cluster"
	"topkmon/internal/eps"
	"topkmon/internal/metrics"
	"topkmon/internal/protocol"
	"topkmon/internal/sim"
)

// Options configures an experiment run.
type Options struct {
	// Quick shrinks sweeps and trial counts (CI/bench mode).
	Quick bool
	// Seed drives all randomness.
	Seed uint64
}

// Experiment binds a paper claim to a measurement procedure.
type Experiment struct {
	ID    string
	Title string
	// Claim cites the paper item whose bound shape the tables reproduce.
	Claim string
	Run   func(Options) []*metrics.Table
}

// All returns the experiments in presentation order.
func All() []Experiment {
	return []Experiment{
		E1Existence(), E2MaxFind(), E3ExactCompetitive(), E4TopKProtocol(),
		E5LowerBound(), E6Dense(), E7HalfEps(), E8EpsilonSavings(),
		E9PhaseAblation(), E10Compliance(), E11SweepAblation(),
	}
}

// ByID returns one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// runOrPanic executes a simulation; experiment workloads are fixed, so a
// validation failure is a bug, not a data condition.
func runOrPanic(cfg sim.Config) sim.Report {
	rep, err := sim.Run(cfg)
	if err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
	return rep
}

// mkMonitor builds the named monitor; shared across experiments.
func mkMonitor(name string, k int, e eps.Eps) func(cluster.Cluster) protocol.Monitor {
	switch name {
	case "exact-mid":
		return func(c cluster.Cluster) protocol.Monitor { return protocol.NewExactMid(c, k) }
	case "topk":
		return func(c cluster.Cluster) protocol.Monitor { return protocol.NewTopKProto(c, k, e) }
	case "approx":
		return func(c cluster.Cluster) protocol.Monitor { return protocol.NewApprox(c, k, e) }
	case "half-eps":
		return func(c cluster.Cluster) protocol.Monitor { return protocol.NewHalfEps(c, k, e) }
	case "naive":
		return func(c cluster.Cluster) protocol.Monitor { return protocol.NewNaive(c, k) }
	case "mid-naive":
		return func(c cluster.Cluster) protocol.Monitor { return protocol.NewMidNaive(c, k) }
	default:
		panic("exp: unknown monitor " + name)
	}
}

func sortedKeys[K int | int64, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func perEpoch(total int64, epochs int64) float64 {
	if epochs < 1 {
		epochs = 1
	}
	return float64(total) / float64(epochs)
}
