package sim

import (
	"strings"
	"testing"

	"topkmon/internal/cluster"
	"topkmon/internal/eps"
	"topkmon/internal/protocol"
	"topkmon/internal/stream"
)

func validCfg() Config {
	e := eps.MustNew(1, 8)
	return Config{
		K: 2, Eps: e, Steps: 10, Seed: 1,
		Gen: stream.NewWalk(6, 100, 5, 1000, 1),
		NewMonitor: func(c cluster.Cluster) protocol.Monitor {
			return protocol.NewApprox(c, 2, e)
		},
		Validate: ValidateEps,
	}
}

func TestRunRejectsMissingPieces(t *testing.T) {
	cfg := validCfg()
	cfg.Gen = nil
	if _, err := Run(cfg); err == nil {
		t.Error("nil Gen accepted")
	}
	cfg = validCfg()
	cfg.NewMonitor = nil
	if _, err := Run(cfg); err == nil {
		t.Error("nil NewMonitor accepted")
	}
	cfg = validCfg()
	cfg.Steps = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero steps accepted")
	}
}

func TestRunValidateNoneSkipsOracle(t *testing.T) {
	cfg := validCfg()
	cfg.Validate = ValidateNone
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SigmaMax != 0 {
		t.Error("σ should not be computed without validation or OPT")
	}
}

func TestRunKeepsTraceOnRequest(t *testing.T) {
	cfg := validCfg()
	cfg.KeepTrace = true
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trace) != cfg.Steps || len(rep.Trace[0]) != 6 {
		t.Errorf("trace shape %dx%d", len(rep.Trace), len(rep.Trace[0]))
	}
	cfg.KeepTrace = false
	rep, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace != nil {
		t.Error("trace kept without request")
	}
}

func TestRunReportsValidationFailureWithContext(t *testing.T) {
	cfg := validCfg()
	// A monitor that lies: always outputs the first k ids.
	cfg.NewMonitor = func(c cluster.Cluster) protocol.Monitor {
		return liar{c}
	}
	// Workload where the top-k moves away from {0,1}.
	cfg.Gen = stream.NewReplay("swap", [][]int64{
		{100, 90, 1, 1, 1, 1},
		{1, 1, 100, 90, 80, 70},
	})
	cfg.Steps = 2
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("invalid output not reported")
	}
	if !strings.Contains(err.Error(), "step 1") {
		t.Errorf("error lacks step context: %v", err)
	}
}

// liar is a deliberately broken monitor for failure-path testing.
type liar struct{ c cluster.Cluster }

func (l liar) Name() string  { return "liar" }
func (l liar) Start()        {}
func (l liar) HandleStep()   {}
func (l liar) Output() []int { return []int{0, 1} }
func (l liar) Epochs() int64 { return 1 }

// TestSoakLargeDense is a larger-scale stress run: 128 nodes, heavy dense
// churn, full validation at every step.
func TestSoakLargeDense(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const n, k, steps = 128, 8, 600
	e := eps.MustNew(1, 5)
	gen := stream.NewOscillator(k-1, 90, n-k+1-90, 100000, 15000, 10000000, 50, 12)
	rep, err := Run(Config{
		K: k, Eps: e, Steps: steps, Seed: 9,
		Gen:        gen,
		NewMonitor: func(c cluster.Cluster) protocol.Monitor { return protocol.NewApprox(c, k, e) },
		Validate:   ValidateEps,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak: msgs=%d epochs=%d σ=%d maxRounds=%d",
		rep.Messages.Total(), rep.Epochs, rep.SigmaMax, rep.MaxRounds)
}
