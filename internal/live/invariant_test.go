package live

import (
	"testing"

	"topkmon/internal/eps"
	"topkmon/internal/oracle"
	"topkmon/internal/protocol"
	"topkmon/internal/stream"
	"topkmon/internal/wire"
)

// TestLiveDenseInvariants runs the DENSE/SUB tag-vs-set invariant checker on
// the goroutine engine after every processed violation — the live twin of
// the lockstep invariant stress, guarding against engine-specific state
// divergence (ordering, races, lost directives).
func TestLiveDenseInvariants(t *testing.T) {
	const n, k, steps = 20, 3, 150
	e := eps.MustNew(1, 4)
	gen := stream.NewOscillator(k-1, 13, 4, 20000, 20000*4/100, 2000000, 300, 9)
	eng := New(gen.N(), 41)
	defer eng.Close()
	ap := protocol.NewApprox(eng, k, e)
	ap.AfterHandle = func(rep wire.Report) {
		if ap.InDense() {
			if err := ap.DenseState().CheckInvariants(eng.Tags()); err != nil {
				t.Fatalf("invariant after violation (node %d %v): %v", rep.ID, rep.Dir, err)
			}
		}
	}
	for ts := 0; ts < steps; ts++ {
		vals := gen.Next(ts)
		eng.Advance(vals)
		if ts == 0 {
			ap.Start()
		} else {
			ap.HandleStep()
		}
		truth := oracle.Compute(vals, k, e)
		if err := truth.ValidateEps(ap.Output()); err != nil {
			t.Fatalf("step %d: %v", ts, err)
		}
		eng.EndStep()
	}
}
