// Command tracegen materialises workload traces (CSV or compact binary)
// for offline analysis or replay, and can price the offline optimum of an
// existing trace.
//
// It is an internal tool (it drives internal/stream, internal/trace, and
// internal/offline directly, so it lives under internal/tools rather than
// cmd/, which holds only consumers of the public topk API).
//
// Usage:
//
//	go run ./internal/tools/tracegen -workload oscillator -n 24 -steps 1000 -out trace.csv
//	go run ./internal/tools/tracegen -workload walk -steps 5000 -format bin -out trace.tkmt
//	go run ./internal/tools/tracegen -solve trace.csv -k 4 -eps 1/8
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"topkmon/internal/eps"
	"topkmon/internal/offline"
	"topkmon/internal/stream"
	"topkmon/internal/trace"
)

func main() {
	workload := flag.String("workload", "walk", "workload: loads|walk|jumps|oscillator")
	n := flag.Int("n", 16, "number of nodes")
	steps := flag.Int("steps", 1000, "steps to generate")
	seed := flag.Uint64("seed", 1, "random seed")
	format := flag.String("format", "csv", "output format: csv|bin")
	out := flag.String("out", "", "output path (default stdout)")
	solve := flag.String("solve", "", "price the offline optimum of this trace instead")
	k := flag.Int("k", 4, "k for -solve")
	epsStr := flag.String("eps", "1/8", "ε for -solve (p/q)")
	flag.Parse()

	if *solve != "" {
		if err := solveTrace(*solve, *k, *epsStr); err != nil {
			fail(err)
		}
		return
	}

	gen, err := makeWorkload(*workload, *n, *seed)
	if err != nil {
		fail(err)
	}
	values := make([][]int64, *steps)
	for t := 0; t < *steps; t++ {
		values[t] = gen.Next(t)
	}
	tr, err := trace.New(values)
	if err != nil {
		fail(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "csv":
		err = tr.WriteCSV(w)
	case "bin":
		err = tr.WriteBinary(w)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fail(err)
	}
}

func solveTrace(path string, k int, epsStr string) error {
	e, err := parseEps(epsStr)
	if err != nil {
		return err
	}
	tr, err := loadTrace(path)
	if err != nil {
		return err
	}
	inst, err := offline.NewInstance(tr.Values, k, e)
	if err != nil {
		return err
	}
	res := inst.Solve()
	fmt.Printf("trace: %d steps × %d nodes, k=%d ε=%s\n", inst.T(), inst.N(), k, e)
	fmt.Printf("OPT segments=%d breaks=%d realistic-cost=%d σ=%d\n",
		len(res.Segments), res.Breaks, res.Realistic, inst.SigmaMax())
	return nil
}

// loadTrace sniffs the format from the magic header.
func loadTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var head [4]byte
	if _, err := f.Read(head[:]); err != nil {
		return nil, err
	}
	if _, err := f.Seek(0, 0); err != nil {
		return nil, err
	}
	if string(head[:]) == "TKMT" {
		return trace.ReadBinary(f)
	}
	return trace.ReadCSV(f)
}

func parseEps(s string) (eps.Eps, error) {
	parts := strings.SplitN(s, "/", 2)
	if len(parts) != 2 {
		return eps.Eps{}, fmt.Errorf("eps must be p/q, got %q", s)
	}
	p, err1 := strconv.ParseInt(parts[0], 10, 64)
	q, err2 := strconv.ParseInt(parts[1], 10, 64)
	if err1 != nil || err2 != nil {
		return eps.Eps{}, fmt.Errorf("eps must be p/q, got %q", s)
	}
	return eps.New(p, q)
}

func makeWorkload(name string, n int, seed uint64) (stream.Generator, error) {
	switch name {
	case "loads":
		return stream.NewLoads(n, 1000, 40, 0.01, 4000, 1<<20, seed), nil
	case "walk":
		return stream.NewWalk(n, 10000, 200, 1<<20, seed), nil
	case "jumps":
		return stream.NewJumps(n, 100, 100000, seed), nil
	case "oscillator":
		dense := n - n/4 - 4
		if dense < 1 {
			return nil, fmt.Errorf("n too small for oscillator")
		}
		return stream.NewOscillator(4, dense, n/4, 10000, 400, 1<<20, 100, seed), nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
	os.Exit(2)
}
