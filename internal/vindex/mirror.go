package vindex

import (
	"slices"

	"topkmon/internal/filter"
)

// Mirror is the server-side filter-interval mirror that makes the violation
// predicate routable: the server assigns every filter (SetFilter,
// SetTagFilter, BroadcastRule), so the engine owning the nodes can record
// each assigned interval next to the node's current value and maintain the
// exact violator set incrementally — the (value-bucket ∩ mirrored-interval)
// set operation evaluated not per query but per update, which makes every
// violation sweep of a quiet step O(1) instead of the O(n) full scan the
// ROADMAP's BENCH_PR3 numbers price at ~136µs (n=4096) to ~674µs (n=16384)
// per step.
//
// # Ownership and update points
//
// A Mirror belongs to the engine (or live-engine shard) owning the mirrored
// nodes and must be updated by the same code path that mutates the node,
// immediately after the mutation, on the goroutine owning the node:
//
//   - Observe/Advance  → SetValue(id, v)
//   - SetFilter, SetTagFilter → SetFilter(id, iv)
//   - ApplyFilterRule  → SetFilter(id, nd.Filter) after the rule applied
//     (the mirror needs no tag state: it reads the node's derived filter)
//   - engine Reset     → Reset()
//
// Because the mirror update is adjacent to the node mutation, layers above
// the engine cannot desync it: the fault injector's delayed or dropped
// filter assignments simply reach — or never reach — the engine's
// SetFilter, and the mirror tracks exactly what the nodes actually hold
// (property-tested by FuzzFilterMirror and the chaos routing suites).
//
// # Exactness
//
// Unlike the value buckets, the mirror is not a coarsening: Violators
// returns exactly the ids whose value lies outside their filter. Engines
// still evaluate Match per candidate — the byte-equality proof obligation
// treats the scan list as a superset like any other routed scan.
type Mirror struct {
	base int
	flt  []filter.Interval // mirrored filter per node
	val  []int64           // mirrored value per node

	// vio holds the violating ids in arbitrary order; pos[id-base] is the
	// id's position in vio, or -1. Swap-remove keeps both O(1) per update.
	vio []int32
	pos []int32
}

// NewMirror returns a mirror over the ids [base, base+n) in the engines'
// construction state: every value 0, every filter all-admitting, no
// violators.
func NewMirror(base, n int) *Mirror {
	m := &Mirror{
		base: base,
		flt:  make([]filter.Interval, n),
		val:  make([]int64, n),
		vio:  make([]int32, 0, n),
		pos:  make([]int32, n),
	}
	m.Reset()
	return m
}

// Reset returns the mirror to the engines' post-Reset node state: value 0,
// the all-admitting filter, no violators. It reuses the arrays and
// allocates nothing.
func (m *Mirror) Reset() {
	for i := range m.flt {
		m.flt[i] = filter.All
		m.val[i] = 0
		m.pos[i] = -1
	}
	m.vio = m.vio[:0]
}

// SetValue records that node id now holds value v.
func (m *Mirror) SetValue(id int, v int64) {
	i := id - m.base
	m.val[i] = v
	m.recheck(i)
}

// SetFilter records that node id now holds filter iv.
func (m *Mirror) SetFilter(id int, iv filter.Interval) {
	i := id - m.base
	m.flt[i] = iv
	m.recheck(i)
}

// recheck moves slot i in or out of the violator set to match the mirrored
// (value, filter) pair; both directions are O(1).
func (m *Mirror) recheck(i int) {
	want := !m.flt[i].Contains(m.val[i])
	have := m.pos[i] >= 0
	switch {
	case want && !have:
		m.pos[i] = int32(len(m.vio))
		m.vio = append(m.vio, int32(m.base+i))
	case !want && have:
		p := m.pos[i]
		last := m.vio[len(m.vio)-1]
		m.vio[p] = last
		m.pos[last-int32(m.base)] = p
		m.vio = m.vio[:len(m.vio)-1]
		m.pos[i] = -1
	}
}

// Violating reports whether the mirror holds node id as a violator.
func (m *Mirror) Violating(id int) bool { return m.pos[id-m.base] >= 0 }

// Interval returns the mirrored filter of node id (test and invariant
// scaffolding).
func (m *Mirror) Interval(id int) filter.Interval { return m.flt[id-m.base] }

// Value returns the mirrored value of node id (test and invariant
// scaffolding).
func (m *Mirror) Value(id int) int64 { return m.val[id-m.base] }

// NumViolating returns the current violator count.
func (m *Mirror) NumViolating() int { return len(m.vio) }

// Len returns the number of mirrored ids.
func (m *Mirror) Len() int { return len(m.flt) }

// AppendViolators appends the violating ids to dst in ascending id order,
// reusing dst's capacity — the form Router.ScanList needs to preserve the
// engines' id-ordered report contract. Sorting costs O(σ log σ) in the
// violator count σ; a quiet step (σ = 0) appends nothing.
func (m *Mirror) AppendViolators(dst []int32) []int32 {
	n := len(dst)
	dst = append(dst, m.vio...)
	slices.Sort(dst[n:])
	return dst
}
