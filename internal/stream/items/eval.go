package items

import "sort"

// Truth is the brute-force exact-frequency ground truth: one int64 per
// item in the universe. It is the oracle the recall@k evaluator scores
// approximate monitors against, and it is deliberately trivial — an
// array and a sort — so there is nothing to trust but arithmetic.
type Truth struct {
	counts []int64
	total  int64
	ord    []int // scratch for TopK / threshold
}

// NewTruth returns an exact counter over an m-item universe.
func NewTruth(items int) *Truth {
	if items < 1 {
		panic("items: NewTruth needs items >= 1")
	}
	return &Truth{counts: make([]int64, items), ord: make([]int, items)}
}

// Observe adds count arrivals of item (count <= 0 is ignored, mirroring
// the sketch Observe contract).
func (tr *Truth) Observe(item int, count int64) {
	if count <= 0 || item < 0 || item >= len(tr.counts) {
		return
	}
	tr.counts[item] += count
	tr.total += count
}

// ObserveEvents folds a whole step batch into the truth.
func (tr *Truth) ObserveEvents(evs []Event) {
	for _, e := range evs {
		tr.Observe(e.Item, e.Count)
	}
}

// Count returns item's exact frequency (0 for out-of-range ids).
func (tr *Truth) Count(item int) int64 {
	if item < 0 || item >= len(tr.counts) {
		return 0
	}
	return tr.counts[item]
}

// Total returns the exact stream length (sum of all counts).
func (tr *Truth) Total() int64 { return tr.total }

// Items returns the universe size m.
func (tr *Truth) Items() int { return len(tr.counts) }

// Reset zeroes the truth.
func (tr *Truth) Reset() {
	clear(tr.counts)
	tr.total = 0
}

// rank orders the scratch index by (count descending, item ascending) —
// the same deterministic order the sketches and the monitor use.
func (tr *Truth) rank() []int {
	ord := tr.ord[:0]
	for i := range tr.counts {
		ord = append(ord, i)
	}
	sort.Slice(ord, func(a, b int) bool {
		if tr.counts[ord[a]] != tr.counts[ord[b]] {
			return tr.counts[ord[a]] > tr.counts[ord[b]]
		}
		return ord[a] < ord[b]
	})
	return ord
}

// TopK appends the exact top-k item ids (count descending, ties by
// ascending id) to dst and returns it.
func (tr *Truth) TopK(k int, dst []int) []int {
	ord := tr.rank()
	if k > len(ord) {
		k = len(ord)
	}
	return append(dst, ord[:k]...)
}

// Threshold returns the exact k-th largest count (the tie threshold):
// any item with count >= Threshold(k) is a legitimate top-k answer.
func (tr *Truth) Threshold(k int) int64 {
	if k < 1 {
		return 0
	}
	ord := tr.rank()
	if k > len(ord) {
		k = len(ord)
	}
	return tr.counts[ord[k-1]]
}

// RecallAt scores an approximate top-k answer tie-aware: an approx item
// is a hit if its exact count reaches the exact k-th largest count, so
// swapping tied items costs nothing (any of them is a correct answer —
// the convention of the heavy-hitters literature). Duplicates and
// out-of-range ids are misses; only the first k entries of approx are
// considered; the denominator is min(k, m). Returns a value in [0, 1].
func (tr *Truth) RecallAt(k int, approx []int) float64 {
	if k < 1 {
		return 1
	}
	denom := k
	if m := len(tr.counts); denom > m {
		denom = m
	}
	thr := tr.Threshold(k)
	if len(approx) > k {
		approx = approx[:k]
	}
	hits := 0
	for i, it := range approx {
		if it < 0 || it >= len(tr.counts) || tr.counts[it] < thr {
			continue
		}
		dup := false
		for _, prev := range approx[:i] {
			if prev == it {
				dup = true
				break
			}
		}
		if !dup {
			hits++
		}
	}
	return float64(hits) / float64(denom)
}
