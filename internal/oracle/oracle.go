// Package oracle computes the ground truth of one time step — order
// statistics, the clearly-larger set E(t), the ε-neighborhood K(t), σ(t) —
// and validates monitor outputs against the two defining properties of
// ε-Top-k-Position Monitoring (Section 2):
//
//  1. F_E(t) = {i : v_i ∈ E(t)} ⊆ F(t), and
//  2. F(t) \ F_E(t) ⊆ K(t), with |F(t)| = k.
//
// The oracle sees all values directly; it is simulation scaffolding and
// never takes part in the protocols' communication.
package oracle

import (
	"fmt"
	"sort"

	"topkmon/internal/eps"
)

// Truth is the ground truth of a single time step.
type Truth struct {
	K      int
	Eps    eps.Eps
	Values []int64
	// Order lists node ids by decreasing (value, id); Order[0] is π(1,t).
	Order []int
	// VK is the k-th largest value v_{π(k,t)}.
	VK int64
	// Clearly is the set E(t)'s node ids: v > VK/(1-ε).
	Clearly []int
	// Neighborhood is K(t): (1-ε)·VK ≤ v ≤ VK/(1-ε).
	Neighborhood []int
	// Sigma is |K(t)|.
	Sigma int
}

// Compute derives the truth for one step. It panics if k is out of range —
// a harness bug, not a data condition.
func Compute(values []int64, k int, e eps.Eps) Truth {
	n := len(values)
	if k < 1 || k > n {
		panic(fmt.Sprintf("oracle: k=%d out of range for n=%d", k, n))
	}
	t := Truth{K: k, Eps: e, Values: values, Order: make([]int, n)}
	for i := range t.Order {
		t.Order[i] = i
	}
	sort.Slice(t.Order, func(a, b int) bool {
		ia, ib := t.Order[a], t.Order[b]
		if values[ia] != values[ib] {
			return values[ia] > values[ib]
		}
		return ia < ib // the paper's identifier tie-break
	})
	t.VK = values[t.Order[k-1]]
	for i, v := range values {
		if e.ClearlyAbove(v, t.VK) {
			t.Clearly = append(t.Clearly, i)
		} else if !e.ClearlyBelow(v, t.VK) {
			t.Neighborhood = append(t.Neighborhood, i)
		}
	}
	t.Sigma = len(t.Neighborhood)
	return t
}

// TopK returns the exact top-k node ids (identifier tie-break), sorted by id.
func (t Truth) TopK() []int {
	out := append([]int(nil), t.Order[:t.K]...)
	sort.Ints(out)
	return out
}

// ValidateEps checks output out against the ε-Top-k properties.
func (t Truth) ValidateEps(out []int) error {
	if len(out) != t.K {
		return fmt.Errorf("output has %d nodes, want k=%d", len(out), t.K)
	}
	in := make(map[int]bool, len(out))
	for _, id := range out {
		if id < 0 || id >= len(t.Values) {
			return fmt.Errorf("output contains invalid node id %d", id)
		}
		if in[id] {
			return fmt.Errorf("output contains duplicate node id %d", id)
		}
		in[id] = true
	}
	for _, id := range t.Clearly {
		if !in[id] {
			return fmt.Errorf("node %d (value %d) is clearly above v_k=%d but missing from output",
				id, t.Values[id], t.VK)
		}
	}
	for _, id := range out {
		if t.Eps.ClearlyBelow(t.Values[id], t.VK) {
			return fmt.Errorf("node %d (value %d) is clearly below v_k=%d but in output",
				id, t.Values[id], t.VK)
		}
	}
	return nil
}

// ValidateExact checks output out against the exact top-k (tie-broken by id).
func (t Truth) ValidateExact(out []int) error {
	if len(out) != t.K {
		return fmt.Errorf("output has %d nodes, want k=%d", len(out), t.K)
	}
	want := make(map[int]bool, t.K)
	for _, id := range t.Order[:t.K] {
		want[id] = true
	}
	for _, id := range out {
		if !want[id] {
			return fmt.Errorf("node %d (value %d) in output but not in exact top-%d (v_k=%d)",
				id, t.Values[id], t.K, t.VK)
		}
	}
	return nil
}

// Unique reports whether the ε-output is forced, i.e. the exact and the
// approximate problem coincide at this step: |K(t)| = 1, equivalently
// v_{k+1} < (1-ε)·v_k.
func (t Truth) Unique() bool {
	if t.K >= len(t.Values) {
		return true
	}
	vk1 := t.Values[t.Order[t.K]]
	return t.Eps.ClearlyBelow(vk1, t.VK)
}
