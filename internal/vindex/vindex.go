// Package vindex maintains a value-bucketed index over node ids so that the
// engines' predicate-routed primitives (Sweep, Collect) visit only the nodes
// whose values can possibly match, instead of scanning all n nodes per
// round — the step cost then tracks the number of plausible matchers (σ in
// the paper's σ-dependent bounds), not n. The value-ordered organisation
// follows the companion top-k-position work (arXiv:1410.7912) and the
// communication-efficient top-k structures of arXiv:1709.07259, which touch
// only O(σ + polylog) candidates per operation.
//
// # Layout
//
// Buckets are power-of-two value classes: bucket 0 holds value 0 and bucket
// b ≥ 1 holds values in [2^(b-1), 2^b - 1], so there are O(log Δ) buckets
// over the supported domain [0, eps.MaxValue]. The index keeps every node id
// in one flat array grouped by ascending bucket (byBucket) with a boundary
// offset per bucket (start) and, per node, its current bucket and position.
// All four arrays are allocated once in New and never grow:
//
//   - Update moves a node between adjacent buckets with one swap and a
//     boundary shift, so a value change costs O(|bucket distance|) ≤
//     O(log Δ) writes and the steady state allocates nothing.
//   - Span returns the candidate ids for a value interval as one zero-copy
//     subslice of byBucket, because the buckets intersecting [lo, hi] are
//     contiguous in the grouped array.
//
// A bucket is a coarsening: Span is a superset of the true matchers (the
// boundary buckets can hold values just outside [lo, hi]), so callers must
// still evaluate the predicate per candidate. Correctness only needs the
// necessary-condition direction — every node with a value in [lo, hi] IS in
// the span — which is what makes index-routed sweeps byte-identical to full
// scans (asserted by the lockstep index property tests).
//
// # Filter-interval mirror
//
// The violation predicate (PredViolating) has no value bounds — a match
// depends on each node's assigned filter — so bucket routing alone cannot
// serve it. But every filter is server-assigned, so the engine mirrors the
// assigned intervals next to the node values (Mirror) and maintains the
// exact violator set incrementally; Router resolves violation sweeps from
// that set the same way it resolves value sweeps from the buckets. With
// both structures in place the only remaining full-scan fallbacks are tag
// predicates and domain-covering intervals.
package vindex

import (
	"math/bits"
	"slices"

	"topkmon/internal/eps"
	"topkmon/internal/nodecore"
	"topkmon/internal/wire"
)

// numBuckets is the number of power-of-two value classes needed for the
// supported domain [0, eps.MaxValue]: bucket 0 plus one per magnitude.
var numBuckets = bits.Len64(uint64(eps.MaxValue)) + 1

// BucketOf returns the bucket of value v: 0 for v ≤ 0, otherwise the number
// of significant bits of v (so bucket b holds [2^(b-1), 2^b - 1]), clamped
// to the last bucket for values beyond eps.MaxValue — those only appear as
// query endpoints, never as indexed values (engines reject them on Advance).
func BucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= numBuckets {
		return numBuckets - 1
	}
	return b
}

// FullRange reports whether the value interval [lo, hi] covers the entire
// supported domain, i.e. routing through the index would visit every node
// anyway and the caller should use its plain full scan instead (the cheaper
// of the two when nothing can be pruned).
func FullRange(lo, hi int64) bool {
	return lo <= 0 && hi >= eps.MaxValue
}

// Routable reports whether predicate p can be routed through the engines'
// index structures: the violation predicate through the filter-interval
// Mirror, interval predicates through the value-bucket Index when their
// Bounds do not cover the whole domain. The negation is exactly the
// full-scan fallback both engines count through
// metrics.Counters.IndexFallback — tag predicates (the only remaining
// state-decided matches) and domain-covering intervals. The decision
// depends on the predicate alone, so the engines can never disagree.
func Routable(p wire.Pred) bool {
	if p.Kind == wire.PredViolating {
		return true
	}
	lo, hi, ok := p.Bounds()
	return ok && !FullRange(lo, hi)
}

// Index is a value-bucket index over the node ids [base, base+n). The zero
// value is not usable; construct with New.
type Index struct {
	base int

	// byBucket holds every indexed id exactly once, grouped by ascending
	// bucket; start[b] is the offset of bucket b's segment, so bucket b is
	// byBucket[start[b]:start[b+1]] (possibly empty).
	byBucket []int32
	start    []int32

	// pos[id-base] is the id's position in byBucket; bkt[id-base] its
	// current bucket.
	pos []int32
	bkt []uint8
}

// New returns an index over the ids [base, base+n), all with value 0 — the
// state engine construction and Reset leave every node in.
func New(base, n int) *Index {
	ix := &Index{
		base:     base,
		byBucket: make([]int32, n),
		start:    make([]int32, numBuckets+1),
		pos:      make([]int32, n),
		bkt:      make([]uint8, n),
	}
	ix.Reset()
	return ix
}

// Reset rebuckets every indexed node to value 0 (bucket 0), matching the
// node state after an engine Reset. It reuses the arrays and allocates
// nothing.
func (ix *Index) Reset() {
	for i := range ix.byBucket {
		ix.byBucket[i] = int32(ix.base + i)
		ix.pos[i] = int32(i)
		ix.bkt[i] = 0
	}
	ix.start[0] = 0
	for b := 1; b < len(ix.start); b++ {
		ix.start[b] = int32(len(ix.byBucket))
	}
}

// Update records that node id now holds value v, moving it between buckets
// when its magnitude class changed. The move walks adjacent bucket
// boundaries — one swap plus one boundary shift each — so it costs
// O(|bucket distance|) and never allocates.
func (ix *Index) Update(id int, v int64) {
	i := id - ix.base
	nb := uint8(BucketOf(v))
	ob := ix.bkt[i]
	if nb == ob {
		return
	}
	ix.bkt[i] = nb
	p := ix.pos[i]
	for b := ob; b < nb; b++ {
		// Swap to the end of bucket b, then pull b+1's boundary back over
		// the id so it becomes the first element of bucket b+1.
		last := ix.start[b+1] - 1
		ix.swap(p, last)
		ix.start[b+1] = last
		p = last
	}
	for b := ob; b > nb; b-- {
		// Symmetric: swap to the front of bucket b, push the boundary
		// forward, and the id becomes the last element of bucket b-1.
		first := ix.start[b]
		ix.swap(p, first)
		ix.start[b] = first + 1
		p = first
	}
}

func (ix *Index) swap(a, b int32) {
	if a == b {
		return
	}
	ia, ib := ix.byBucket[a], ix.byBucket[b]
	ix.byBucket[a], ix.byBucket[b] = ib, ia
	ix.pos[ia-int32(ix.base)], ix.pos[ib-int32(ix.base)] = b, a
}

// Span returns the ids of every indexed node whose value could lie in
// [lo, hi]: the contents of the buckets intersecting the interval, in no
// particular order. The result is a zero-copy view into the index — valid
// only until the next Update or Reset, and callers must not modify it. An
// empty interval (lo > hi) yields nil.
func (ix *Index) Span(lo, hi int64) []int32 {
	if lo > hi {
		return nil
	}
	bLo, bHi := BucketOf(lo), BucketOf(hi)
	return ix.byBucket[ix.start[bLo]:ix.start[bHi+1]]
}

// AppendSorted appends Span(lo, hi) to dst in ascending id order, reusing
// dst's capacity — the form the engines use to preserve their id-ordered
// report contract. Sorting costs O(c log c) in the candidate count c, which
// the full-range fallback (see FullRange) keeps below the O(n) scan it
// replaces; slices.Sort on []int32 allocates nothing.
func (ix *Index) AppendSorted(dst []int32, lo, hi int64) []int32 {
	n := len(dst)
	dst = append(dst, ix.Span(lo, hi)...)
	slices.Sort(dst[n:])
	return dst
}

// Len returns the number of indexed ids.
func (ix *Index) Len() int { return len(ix.byBucket) }

// Router bundles the value-bucket Index and the filter-interval Mirror
// with the reusable scratch that turns a predicate into an id-ordered node
// scan list. It is the single place the routing policy lives, shared by
// the lockstep engine and the live engine's worker shards — which
// predicates route through which structure and which fall back to the full
// scan can therefore never diverge between engines.
type Router struct {
	// Idx is the bucket index over the routed nodes; callers own its
	// maintenance (Update on value changes, Reset on engine reset).
	Idx *Index

	// Mir is the filter-interval mirror over the same nodes; callers own
	// its maintenance (SetValue/SetFilter on every node mutation, Reset on
	// engine reset — see the contract on Mirror).
	Mir *Mirror

	cand []int32
	scan []*nodecore.Node
}

// ScanList returns the nodes a predicate-routed primitive must visit out
// of nodes (whose i-th element must hold id base+i, the Idx id range), in
// ascending id order: the mirror's violator set for the violation
// predicate, the index candidates for a predicate's value bounds, or all
// of nodes for the full-scan fallback — tag predicates and
// domain-covering intervals (e.g. AboveActive(-1)), where routing could
// prune nothing and sorting candidates would only add cost. The result is
// Router-owned scratch recycled by the next ScanList call (or nodes
// itself); candidate values may lie outside the bounds (bucket
// coarsening), so callers still Match every node.
func (r *Router) ScanList(p wire.Pred, nodes []*nodecore.Node, base int) []*nodecore.Node {
	if !Routable(p) {
		return nodes
	}
	if p.Kind == wire.PredViolating {
		r.cand = r.Mir.AppendViolators(r.cand[:0])
	} else {
		lo, hi, _ := p.Bounds()
		r.cand = r.Idx.AppendSorted(r.cand[:0], lo, hi)
	}
	r.scan = r.scan[:0]
	for _, id := range r.cand {
		r.scan = append(r.scan, nodes[int(id)-base])
	}
	return r.scan
}
