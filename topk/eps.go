package topk

import "topkmon/internal/eps"

// Epsilon is the approximation error ε ∈ [0, 1) as an exact rational p/q.
// All correctness predicates are decided by integer cross-multiplication,
// so there are no floating-point corner cases. The zero value is ε = 0,
// the exact (non-approximate) problem; [Zero] names it.
type Epsilon struct {
	e eps.Eps
}

// Zero is ε = 0: the exact Top-k-Position problem (which assumes pairwise
// distinct values — see [Exact]).
var Zero = Epsilon{e: eps.Zero}

// NewEpsilon returns ε = num/den after validating 0 ≤ num < den ≤ 2^20.
func NewEpsilon(num, den int64) (Epsilon, error) {
	e, err := eps.New(num, den)
	if err != nil {
		return Epsilon{}, err
	}
	return Epsilon{e: e}, nil
}

// MustEpsilon is NewEpsilon but panics on invalid input; for constants.
func MustEpsilon(num, den int64) Epsilon {
	e, err := NewEpsilon(num, den)
	if err != nil {
		panic(err)
	}
	return e
}

// WrapEps adapts an internal eps.Eps. It is harness scaffolding for the
// module's own internal/sim and internal/exp packages: the parameter type
// lives under internal/, so code outside this module cannot call it.
func WrapEps(e eps.Eps) Epsilon { return Epsilon{e: e} }

// String renders ε as "p/q".
func (e Epsilon) String() string { return e.e.String() }

// Float returns ε as a float64, for reporting only.
func (e Epsilon) Float() float64 { return e.e.Float() }

// IsZero reports whether ε = 0.
func (e Epsilon) IsZero() bool { return e.e.IsZero() }

// MaxValue is the largest value a node may push: the exact ε-arithmetic
// bounds the observation domain so every predicate stays within int64.
const MaxValue int64 = eps.MaxValue
