package items_test

import (
	"reflect"
	"testing"

	istream "topkmon/internal/stream/items"
	"topkmon/topk"
	"topkmon/topk/items"
)

// drive feeds steps of the generator into the monitor (and, when tr is
// non-nil, into the exact ground truth), committing one monitor step per
// generator step.
func drive(t *testing.T, m *items.Monitor, g istream.Generator, tr *istream.Truth, steps int) {
	t.Helper()
	var evs []istream.Event
	for s := 0; s < steps; s++ {
		evs = g.Next(s, evs[:0])
		for _, e := range evs {
			if err := m.Observe(e.Node, e.Item, e.Count); err != nil {
				t.Fatalf("Observe: %v", err)
			}
		}
		if tr != nil {
			tr.ObserveEvents(evs)
		}
		if err := m.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
}

func zipfConfig(kind items.SketchKind) items.Config {
	return items.Config{
		Nodes: 8, Items: 256, K: 8,
		Epsilon: topk.MustEpsilon(1, 8),
		Sketch:  kind, Capacity: 128,
		Width: 512, Depth: 4, Track: 128,
		Seed: 7,
	}
}

// TestRecallZipf is the end-to-end fidelity gate of this layer: on a
// zipf(s=1.1) trace over 256 items and 8 nodes, Space-Saving summaries of
// 128 counters per node must drive the monitor to recall@8 >= 0.9
// against exact ground truth — the documented operating point.
func TestRecallZipf(t *testing.T) {
	m, err := items.New(zipfConfig(items.SpaceSaving))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	g := istream.NewZipf(m.N(), m.Items(), 2000, 1.1, 13)
	tr := istream.NewTruth(m.Items())
	drive(t, m, g, tr, 50)
	if err := m.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	out := m.TopItems(nil)
	if len(out) != 8 {
		t.Fatalf("TopItems returned %d ids, want 8", len(out))
	}
	if r := tr.RecallAt(8, out); r < 0.9 {
		t.Fatalf("recall@8 = %v < 0.9 (space-saving c=128, zipf s=1.1)", r)
	}
	if c := m.Cost(); c.Steps != 50 || c.Messages <= 0 {
		t.Fatalf("implausible cost: %+v", c)
	}
}

// TestAllSketchKinds runs every summary through the layer: Check must
// hold throughout and recall must stay useful (the weaker 0.7 gate —
// Count-Min and Misra-Gries are not this layer's documented default).
func TestAllSketchKinds(t *testing.T) {
	for _, kind := range []items.SketchKind{items.SpaceSaving, items.MisraGries, items.CountMin} {
		t.Run(kind.String(), func(t *testing.T) {
			m, err := items.New(zipfConfig(kind))
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			g := istream.NewZipf(m.N(), m.Items(), 1000, 1.1, 29)
			tr := istream.NewTruth(m.Items())
			drive(t, m, g, tr, 30)
			if err := m.Check(); err != nil {
				t.Fatalf("Check: %v", err)
			}
			if r := tr.RecallAt(8, m.TopItems(nil)); r < 0.7 {
				t.Fatalf("%s: recall@8 = %v < 0.7", kind, r)
			}
		})
	}
}

// TestDeterministicReplay pins the replay contract at the layer level:
// two monitors from the same Config see the same trace and must agree on
// every committed output and the final Cost; a Reset monitor must then
// reproduce the same run on the same buffers.
func TestDeterministicReplay(t *testing.T) {
	cfg := zipfConfig(items.SpaceSaving)
	cfg.Items, cfg.Capacity, cfg.Track, cfg.Width = 64, 32, 32, 128
	run := func(m *items.Monitor) ([][]int, topk.Cost) {
		g := istream.NewZipf(m.N(), m.Items(), 300, 1.2, 17)
		var outs [][]int
		var evs []istream.Event
		for s := 0; s < 25; s++ {
			evs = g.Next(s, evs[:0])
			for _, e := range evs {
				if err := m.Observe(e.Node, e.Item, e.Count); err != nil {
					t.Fatal(err)
				}
			}
			if err := m.Step(); err != nil {
				t.Fatal(err)
			}
			outs = append(outs, m.TopItems(nil))
		}
		return outs, m.Cost()
	}
	m1, err := items.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m1.Close()
	m2, err := items.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()

	o1, c1 := run(m1)
	o2, c2 := run(m2)
	if !reflect.DeepEqual(o1, o2) || c1 != c2 {
		t.Fatalf("fresh monitors diverged")
	}
	if err := m1.Reset(cfg.Seed); err != nil {
		t.Fatal(err)
	}
	o3, c3 := run(m1)
	if !reflect.DeepEqual(o1, o3) || c1 != c3 {
		t.Fatalf("Reset replay diverged from fresh run")
	}
}

// TestObserveAllocs enforces the hot-path contract: staging an event
// allocates nothing, for every sketch kind.
func TestObserveAllocs(t *testing.T) {
	for _, kind := range []items.SketchKind{items.SpaceSaving, items.MisraGries, items.CountMin} {
		cfg := zipfConfig(kind)
		m, err := items.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		item := 0
		if avg := testing.AllocsPerRun(2000, func() {
			m.Observe(item&7, item%cfg.Items, 1)
			item++
		}); avg != 0 {
			t.Fatalf("%v: Observe allocates %v allocs/op, want 0", kind, avg)
		}
		m.Close()
	}
}

// TestEstimateAggregates checks Estimate sums across nodes and respects
// the Space-Saving over-estimate guarantee.
func TestEstimateAggregates(t *testing.T) {
	m, err := items.New(items.Config{Nodes: 3, Items: 16, K: 2, Epsilon: topk.MustEpsilon(1, 10), Capacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for node := 0; node < 3; node++ {
		for i := 0; i < 5; i++ {
			if err := m.Observe(node, 4, 10); err != nil {
				t.Fatal(err)
			}
		}
	}
	est, bound := m.Estimate(4)
	if est < 150 {
		t.Fatalf("Estimate(4) = %d, want >= 150 (space-saving never under-estimates)", est)
	}
	if bound < 0 {
		t.Fatalf("negative bound %d", bound)
	}
	if e, b := m.Estimate(-1); e != 0 || b != 0 {
		t.Fatalf("out-of-range Estimate = (%d,%d), want (0,0)", e, b)
	}
}

// TestValidationAndClose pins the error surface.
func TestValidationAndClose(t *testing.T) {
	e := topk.MustEpsilon(1, 10)
	if _, err := items.New(items.Config{Nodes: 0, Items: 4, K: 1, Epsilon: e}); err == nil {
		t.Fatal("Nodes=0 accepted")
	}
	if _, err := items.New(items.Config{Nodes: 1, Items: 0, K: 1, Epsilon: e}); err == nil {
		t.Fatal("Items=0 accepted")
	}
	if _, err := items.New(items.Config{Nodes: 1, Items: 4, K: 5, Epsilon: e}); err == nil {
		t.Fatal("K > Items accepted")
	}
	if _, err := items.New(items.Config{Nodes: 1, Items: 4, K: 1}); err == nil {
		t.Fatal("zero Epsilon with default algorithm accepted")
	}
	m, err := items.New(items.Config{Nodes: 2, Items: 4, K: 1, Epsilon: e})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Observe(2, 0, 1); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if err := m.Observe(0, 4, 1); err == nil {
		t.Fatal("out-of-range item accepted")
	}
	if err := m.Observe(0, 0, 0); err != nil {
		t.Fatalf("non-positive count must be ignored, got %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close not idempotent: %v", err)
	}
	if err := m.Observe(0, 0, 1); err != topk.ErrClosed {
		t.Fatalf("Observe after Close: %v, want ErrClosed", err)
	}
	if err := m.Step(); err != topk.ErrClosed {
		t.Fatalf("Step after Close: %v, want ErrClosed", err)
	}
	if err := m.Reset(1); err != topk.ErrClosed {
		t.Fatalf("Reset after Close: %v, want ErrClosed", err)
	}
}
