// Tracereplay: record a workload once, replay it through two monitors, and
// price the offline optimum on the very same trace — the full
// record/replay/compare loop a systems evaluation needs, exercising the
// trace, sim, and offline packages end to end.
package main

import (
	"bytes"
	"fmt"
	"log"

	"topkmon/internal/cluster"
	"topkmon/internal/eps"
	"topkmon/internal/offline"
	"topkmon/internal/protocol"
	"topkmon/internal/sim"
	"topkmon/internal/stream"
	"topkmon/internal/trace"
)

const (
	n     = 24
	k     = 4
	steps = 800
)

func main() {
	e := eps.MustNew(1, 8)

	// 1. Record: materialise a bursty load trace.
	gen := stream.NewLoads(n, 2000, 60, 0.005, 8000, 1<<20, 33)
	matrix := make([][]int64, steps)
	for t := 0; t < steps; t++ {
		matrix[t] = gen.Next(t)
	}
	tr, err := trace.New(matrix)
	if err != nil {
		log.Fatal(err)
	}

	// Round-trip through the compact binary format, as a file would.
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		log.Fatal(err)
	}
	encodedSize := buf.Len()
	loaded, err := trace.ReadBinary(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d steps × %d nodes (%d bytes binary)\n\n",
		loaded.T(), loaded.N(), encodedSize)

	// 2. Replay through two monitors on the identical data.
	run := func(name string, mk func(cluster.Cluster) protocol.Monitor) sim.Report {
		rep, err := sim.Run(sim.Config{
			K: k, Eps: e, Steps: loaded.T(), Seed: 5,
			Gen:        stream.NewReplay("loads", loaded.Values),
			NewMonitor: mk,
			Validate:   sim.ValidateEps,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s msgs=%7d  epochs=%4d  max rounds/step=%d\n",
			name, rep.Messages.Total(), rep.Epochs, rep.MaxRounds)
		return rep
	}
	ap := run("approx (Thm 5.8)", func(c cluster.Cluster) protocol.Monitor {
		return protocol.NewApprox(c, k, e)
	})
	run("naive report-all", func(c cluster.Cluster) protocol.Monitor {
		return protocol.NewNaive(c, k)
	})

	// 3. Price the offline optimum on the same trace.
	inst, err := offline.NewInstance(loaded.Values, k, e)
	if err != nil {
		log.Fatal(err)
	}
	res := inst.Solve()
	fmt.Printf("\noffline OPT: %d segments, %d breaks, realistic cost %d (σ=%d)\n",
		len(res.Segments), res.Breaks, res.Realistic, inst.SigmaMax())
	fmt.Printf("approx empirical competitive ratio (vs breaks LB): %.1f\n",
		float64(ap.Messages.Total())/float64(max(1, res.Breaks)))
}
