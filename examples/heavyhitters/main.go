// Heavyhitters: track the top-k ITEMS of a distributed event stream with
// constant per-node state. 8 ingest nodes see a zipf-skewed stream of
// 100k events over 4096 distinct items; each node summarises its share
// in a 256-counter Space-Saving sketch, and the sketch estimates feed
// the ε-Top-k monitor (topk/items) — so the full filter protocol, cost
// accounting, and referee run over item aggregates. The example keeps an
// exact per-item count on the side and scores the monitor's recall
// against it, then prints the communication bill: the point is that the
// protocol's messages are governed by top-k churn, not by event volume.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"topkmon/topk"
	"topkmon/topk/items"
)

func main() {
	const (
		nodes    = 8
		universe = 4096
		k        = 10
		capacity = 256 // per-node Space-Saving counters: 16x fewer than items
		steps    = 100
		perStep  = 1000
		zipfS    = 1.2
	)

	mon, err := items.New(items.Config{
		Nodes: nodes, Items: universe, K: k,
		Epsilon:  topk.MustEpsilon(1, 8),
		Sketch:   items.SpaceSaving,
		Capacity: capacity,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer mon.Close()

	// The workload: item popularity follows Zipf(s) over a shuffled id
	// space, each event lands on a random node. Exact counts are kept on
	// the side purely to referee the approximation.
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, zipfS, 1, universe-1)
	ids := rng.Perm(universe)
	exact := make([]int64, universe)

	for t := 0; t < steps; t++ {
		for i := 0; i < perStep; i++ {
			item := ids[int(zipf.Uint64())]
			node := rng.Intn(nodes)
			if err := mon.Observe(node, item, 1); err != nil {
				log.Fatal(err)
			}
			exact[item]++
		}
		// One Step = one committed monitor time step: nodes report their
		// sketch heavy lists, aggregates are re-filtered, output updates.
		if err := mon.Step(); err != nil {
			log.Fatal(err)
		}
		if err := mon.Check(); err != nil {
			log.Fatalf("step %d: ε-referee: %v", t, err)
		}
	}

	// Score the final output against the exact counts (tie-aware: any
	// item tied with the exact k-th count is a legitimate answer).
	top := mon.TopItems(nil)
	order := make([]int, universe)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if exact[order[a]] != exact[order[b]] {
			return exact[order[a]] > exact[order[b]]
		}
		return order[a] < order[b]
	})
	threshold := exact[order[k-1]]
	hits := 0
	fmt.Printf("top-%d items (space-saving c=%d per node, %d events):\n", k, capacity, steps*perStep)
	for _, item := range top {
		est, bound := mon.Estimate(item)
		mark := " "
		if exact[item] >= threshold {
			mark = "*"
			hits++
		}
		fmt.Printf("  %s item %4d  est %6d ±%4d  exact %6d\n", mark, item, est, bound, exact[item])
	}
	recall := float64(hits) / float64(k)
	fmt.Printf("recall@%d vs exact ground truth: %.2f\n", k, recall)
	if recall < 0.9 {
		log.Fatalf("recall %.2f below the 0.9 the documented sizing guarantees", recall)
	}

	cost := mon.Cost()
	events := float64(steps * perStep)
	fmt.Printf("\ncommunication: %d messages over %d steps (%.1f msgs/step)\n",
		cost.Messages, cost.Steps, float64(cost.Messages)/float64(cost.Steps))
	fmt.Printf("vs shipping every event to the server: %d messages (%.0fx saved)\n",
		int64(events), math.Round(events/float64(cost.Messages)))
}
