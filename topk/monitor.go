package topk

import (
	"errors"
	"fmt"
	"sync"

	"topkmon/internal/cluster"
	"topkmon/internal/eps"
	"topkmon/internal/faults"
	"topkmon/internal/live"
	"topkmon/internal/lockstep"
	"topkmon/internal/metrics"
	"topkmon/internal/oracle"
	"topkmon/internal/protocol"
)

// ErrClosed is returned by mutating methods after Close.
var ErrClosed = errors.New("topk: monitor is closed")

// Update is one node's pushed observation.
type Update struct {
	Node  int
	Value int64
}

// Event reports that a committed step changed the top-k set or, on a
// fault-armed monitor (WithFaults), the monitor's health. The TopK slice
// is shared by all subscribers receiving the event — treat it as read-only.
type Event struct {
	// Step is the 1-based index of the committed step that changed the set
	// or the health.
	Step int64
	// TopK is the current output, in the monitor's id order.
	TopK []int
	// Health is the monitor's health as of this step. Degradation events —
	// deliveries whose only trigger is a health-state change — carry the
	// unchanged TopK; without WithFaults, Health is always the zero value
	// (Fresh) and events fire only on set changes, as before.
	Health Health
}

// subBuffer is each subscription channel's capacity. Deliveries never
// block the push path: when a subscriber falls this far behind, further
// events are dropped for it until it drains.
const subBuffer = 64

// Monitor is the embeddable push-based ε-Top-k monitor: an engine hosting
// the n nodes, one of the paper's monitoring algorithms on top, and the
// batching that turns pushed updates into the model's time steps. Methods
// are safe for use from one goroutine at a time (guarded by one mutex);
// subscription channels may be drained from any goroutine.
type Monitor struct {
	mu sync.Mutex

	eng        cluster.Engine
	ownsEngine bool
	mkMon      func(cluster.Cluster) protocol.Monitor
	mon        protocol.Monitor

	k    int
	e    eps.Eps
	seed uint64

	// vals mirrors every node's last pushed value — the full observation
	// vector each committed step installs (nodes without a staged push
	// keep their previous value). stagedAt[i] == batch marks node i as
	// staged in the current (uncommitted) batch.
	vals     []int64
	stagedAt []uint64
	batch    uint64
	steps    int64

	// prev is the last committed output, for top-k-set-change detection.
	prev []int
	subs []chan Event

	// Fault-layer state (zero and inert without WithFaults): the injector
	// wrapping eng, the recovery supervisor's health machine, and the
	// resync backoff clock. prevHealth is the last state delivered to
	// subscribers, for degradation-event detection.
	faulty         *faults.Cluster
	health         HealthState
	prevHealth     HealthState
	staleFor       int64
	healthErr      error
	epochBase      int64
	resyncBackoff  int64
	resyncCooldown int64

	sc     oracle.Scratch
	closed bool
}

// New returns a Monitor for the k largest of n node streams with error ε.
// n comes from WithNodes (or an injected engine); the remaining options
// have working defaults: Lockstep engine, Approx algorithm, seed 1.
func New(k int, e Epsilon, opts ...Option) (*Monitor, error) {
	cfg := config{seed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	n := cfg.nodes
	if cfg.rawEngine != nil {
		if n != 0 && n != cfg.rawEngine.N() {
			return nil, fmt.Errorf("topk: WithNodes(%d) contradicts injected engine with %d nodes", n, cfg.rawEngine.N())
		}
		n = cfg.rawEngine.N()
	}
	if n < 1 {
		return nil, errors.New("topk: node count required (WithNodes)")
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("topk: k = %d outside [1, n = %d]", k, n)
	}

	eng := cfg.rawEngine
	owns := false
	if eng == nil {
		owns = true
		switch cfg.engine {
		case Live:
			eng = live.New(n, cfg.seed, live.WithShards(cfg.shards))
		default:
			eng = lockstep.New(n, cfg.seed)
		}
	}

	var faulty *faults.Cluster
	if cfg.faults != nil {
		fp := cfg.faults.internal()
		if err := fp.Validate(n); err != nil {
			if owns {
				if lc, ok := eng.(*live.Cluster); ok {
					lc.Close()
				}
			}
			return nil, err
		}
		faulty = faults.Wrap(eng, fp, cfg.seed)
		eng = faulty
	}

	m := &Monitor{
		eng:           eng,
		ownsEngine:    owns,
		faulty:        faulty,
		resyncBackoff: 1,
		mkMon:         cfg.newMonitorFn(k, e.e),
		k:             k,
		e:             e.e,
		seed:          cfg.seed,
		vals:          make([]int64, n),
		stagedAt:      make([]uint64, n),
		batch:         1,
		prev:          make([]int, 0, k),
	}
	m.mon = m.mkMon(eng)
	return m, nil
}

// Update stages one push into the current batch. A second push for the same
// node first commits the pending batch as one time step (a node observes
// one value per step), so a round-robin pusher forms steps naturally; use
// Flush to close a batch explicitly or UpdateBatch for bulk ingest.
func (m *Monitor) Update(node int, value int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if err := m.stageLocked(node, value); err != nil {
		return err
	}
	return nil
}

// UpdateBatch merges the batch into any staged pushes (within one batch the
// last push per node wins) and commits everything as ONE time step. An
// empty batch is a heartbeat tick: time advances, nothing changed, and a
// quiet monitor spends no messages.
func (m *Monitor) UpdateBatch(batch []Update) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	for _, u := range batch {
		if err := m.checkPush(u.Node, u.Value); err != nil {
			return err
		}
	}
	for _, u := range batch {
		m.stagedAt[u.Node] = m.batch
		m.vals[u.Node] = u.Value
	}
	m.commitLocked()
	return nil
}

// ValidateBatch reports whether UpdateBatch would accept every update in
// the batch — the same node and value range checks, with no state
// mutation. Callers that must make a batch durable before committing it
// (write-ahead journaling, as in the HTTP frontend's recovery log)
// validate first so the journal never records a batch the monitor would
// reject on replay.
func (m *Monitor) ValidateBatch(batch []Update) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	for _, u := range batch {
		if err := m.checkPush(u.Node, u.Value); err != nil {
			return err
		}
	}
	return nil
}

// Flush commits the staged pushes as one time step. It always closes a
// step, even with nothing staged — the heartbeat tick of a push source
// that is idle but alive.
func (m *Monitor) Flush() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.commitLocked()
	return nil
}

// checkPush validates a push without mutating state.
func (m *Monitor) checkPush(node int, value int64) error {
	if node < 0 || node >= len(m.vals) {
		return fmt.Errorf("topk: node %d outside [0, %d)", node, len(m.vals))
	}
	if value < 0 || value > eps.MaxValue {
		return fmt.Errorf("topk: value %d for node %d outside [0, %d]", value, node, eps.MaxValue)
	}
	return nil
}

// stageLocked records one push, committing the pending batch first when the
// node already has a staged value.
func (m *Monitor) stageLocked(node int, value int64) error {
	if err := m.checkPush(node, value); err != nil {
		return err
	}
	if m.stagedAt[node] == m.batch {
		m.commitLocked()
	}
	m.stagedAt[node] = m.batch
	m.vals[node] = value
	return nil
}

// commitLocked closes the current batch as one engine time step: install
// the observation vector, run the algorithm to quiescence, close the round
// accounting, and notify subscribers on a top-k-set change. This is the
// exact Advance → Start/HandleStep → EndStep sequence the simulation
// harness performs, which is what makes pushed runs byte-identical to
// engine-driven ones.
// A fault-armed monitor (WithFaults) additionally runs the recovery
// supervisor between the protocol step and the round-accounting close, so
// resync traffic bills into the step that needed it.
func (m *Monitor) commitLocked() {
	m.eng.Advance(m.vals)
	if m.faulty == nil {
		if m.steps == 0 {
			m.mon.Start()
		} else {
			m.mon.HandleStep()
		}
	} else {
		m.superviseLocked(m.guardedStepLocked())
	}
	m.eng.EndStep()
	m.steps++
	m.batch++
	m.notifyLocked()
}

// notifyLocked compares the committed output (and, under faults, the
// health state) to the previously delivered ones and, on a change,
// delivers one Event to every subscriber (non-blocking; slow subscribers
// drop).
func (m *Monitor) notifyLocked() {
	out := m.mon.Output()
	setChanged := !equalInts(m.prev, out)
	healthChanged := m.health != m.prevHealth
	if !setChanged && !healthChanged {
		return
	}
	if setChanged {
		m.prev = append(m.prev[:0], out...)
	}
	m.prevHealth = m.health
	if len(m.subs) == 0 {
		return
	}
	ev := Event{
		Step:   m.steps,
		TopK:   append([]int(nil), out...),
		Health: Health{State: m.health, StaleFor: m.staleFor, Err: m.healthErr},
	}
	for _, ch := range m.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TopK appends the current output — the node ids forming a valid ε-Top-k
// set as of the last committed step — to dst[:0] and returns it, reusing
// dst's capacity (zero-alloc once dst can hold k ids). Before the first
// committed step it returns dst[:0].
func (m *Monitor) TopK(dst []int) []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	dst = dst[:0]
	if m.steps == 0 {
		return dst
	}
	return append(dst, m.mon.Output()...)
}

// Cost is the communication bill and engine-side work accounting of a run.
// All message counts follow the paper's unit-cost model.
type Cost struct {
	// Messages is the total across all channels.
	Messages int64
	// NodeToServer / Unicasts / Broadcasts split Messages by channel.
	NodeToServer int64
	Unicasts     int64
	Broadcasts   int64
	// MaxRoundsPerStep is the largest number of protocol rounds any single
	// step consumed (the model allows polylog rounds between steps).
	MaxRoundsPerStep int64
	// MaxMessageBits is the largest accounted message size seen.
	MaxMessageBits int
	// Steps is the number of committed time steps.
	Steps int64
	// IndexFallbacks counts predicate-routed engine primitives that fell
	// back to a full node scan (engine-side work, not message cost). Only
	// tag predicates and domain-covering intervals full-scan; violation
	// sweeps — once the dominant source — are routed through the engines'
	// filter-interval mirror, so a settled monitor's quiet steps hold this
	// counter flat (a regression test pins that on both engines).
	IndexFallbacks int64
	// Fault-layer accounting, all zero without WithFaults: messages the
	// injector lost for good / delivered twice, redelivery attempts by the
	// reliability sublayer, epoch resyncs run by the recovery supervisor,
	// and committed steps whose output ended unvalidated (served degraded).
	DroppedMsgs int64
	DupMsgs     int64
	Retries     int64
	Resyncs     int64
	StaleSteps  int64
}

// Cost returns the communication spent since construction or the last
// Reset. It allocates nothing.
func (m *Monitor) Cost() Cost {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.eng.Counters()
	return Cost{
		Messages:         c.Total(),
		NodeToServer:     c.ByChannel(metrics.NodeToServer),
		Unicasts:         c.ByChannel(metrics.ServerToNode),
		Broadcasts:       c.ByChannel(metrics.Broadcast),
		MaxRoundsPerStep: c.MaxRoundsPerStep(),
		MaxMessageBits:   c.MaxBits(),
		Steps:            m.steps,
		IndexFallbacks:   c.IndexFallbacks(),
		DroppedMsgs:      c.DroppedMsgs(),
		DupMsgs:          c.DupMsgs(),
		Retries:          c.Retries(),
		Resyncs:          c.Resyncs(),
		StaleSteps:       c.StaleSteps(),
	}
}

// Epsilon returns the configured approximation error ε.
func (m *Monitor) Epsilon() Epsilon { return Epsilon{e: m.e} }

// N returns the number of monitored node streams.
func (m *Monitor) N() int { return len(m.vals) }

// K returns the size of the monitored top set.
func (m *Monitor) K() int { return m.k }

// Steps returns the number of committed time steps.
func (m *Monitor) Steps() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.steps
}

// Epochs returns how many epochs (phases between guaranteed OPT messages)
// the algorithm has started — the unit competitive analyses count in.
// Epochs opened before a fault-recovery resync stay counted.
func (m *Monitor) Epochs() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epochBase + m.mon.Epochs()
}

// AlgorithmName returns the running algorithm's report name (e.g.
// "approx-controller").
func (m *Monitor) AlgorithmName() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.mon.Name()
}

// Check recomputes the ground truth over the monitor's mirror of all
// pushed values and verifies the current output's ε-Top-k property,
// returning a descriptive error on violation. It is the omniscient referee
// of the paper's model — pure server-side arithmetic, no messages — and
// allocates nothing in steady state. Before the first committed step it
// trivially passes.
func (m *Monitor) Check() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.steps == 0 {
		return nil
	}
	truth := oracle.ComputeInto(&m.sc, m.vals, m.k, m.e)
	return truth.ValidateEps(m.mon.Output())
}

// Subscribe returns a channel delivering one Event per committed step that
// changed the top-k set. Delivery is non-blocking: a subscriber more than
// subBuffer events behind misses the intermediate sets (the latest set is
// always available via TopK). Subscriptions survive Reset and are closed
// by Close, or individually by Unsubscribe.
func (m *Monitor) Subscribe() <-chan Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	ch := make(chan Event, subBuffer)
	if m.closed {
		close(ch)
		return ch
	}
	m.subs = append(m.subs, ch)
	return ch
}

// Unsubscribe removes ch — a channel previously returned by Subscribe —
// from the delivery list and closes it. Long-lived monitors serving
// transient consumers (the HTTP frontend's SSE bridge, dashboards) must
// unsubscribe departed consumers or the delivery list grows without bound.
// Unsubscribing a foreign or already-removed channel is a no-op, and after
// Close every subscription is closed already, so Unsubscribe never
// double-closes.
func (m *Monitor) Unsubscribe(ch <-chan Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, c := range m.subs {
		if (<-chan Event)(c) == ch {
			m.subs = append(m.subs[:i], m.subs[i+1:]...)
			close(c)
			return
		}
	}
}

// Reset rewinds the monitor to the state a fresh New with the given seed
// would produce — engine state, counters, algorithm, value mirror, and
// step count — while keeping every buffer, goroutine, and subscription.
// Staged-but-uncommitted pushes are discarded. A reset monitor replays a
// fresh monitor's run bit for bit.
func (m *Monitor) Reset(seed uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.eng.Reset(seed)
	m.seed = seed
	m.mon = m.mkMon(m.eng)
	clear(m.vals)
	m.batch++ // invalidates every stagedAt mark: staged pushes are dropped
	m.steps = 0
	m.prev = m.prev[:0]
	// The fault layer rewinds with the engine (the injector's RNG stream is
	// re-derived inside eng.Reset); the health machine starts over too.
	m.health = Fresh
	m.prevHealth = Fresh
	m.staleFor = 0
	m.healthErr = nil
	m.epochBase = 0
	m.resyncBackoff = 1
	m.resyncCooldown = 0
	return nil
}

// Close releases the monitor: subscription channels are closed and, when
// the Monitor constructed its own Live engine, the engine's workers are
// stopped. Staged-but-uncommitted pushes are discarded. Reads (TopK, Cost)
// remain valid; mutations return ErrClosed. Close is idempotent.
func (m *Monitor) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	for _, ch := range m.subs {
		close(ch)
	}
	m.subs = nil
	if m.ownsEngine {
		eng := m.eng
		if m.faulty != nil {
			eng = m.faulty.Inner()
		}
		if lc, ok := eng.(*live.Cluster); ok {
			lc.Close()
		}
	}
	return nil
}
