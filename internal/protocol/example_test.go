package protocol_test

import (
	"fmt"

	"topkmon/internal/eps"
	"topkmon/internal/lockstep"
	"topkmon/internal/protocol"
)

// ExampleNewApprox monitors the ε-approximate top-2 of six streams with the
// Theorem 5.8 controller and prints the output as values move.
func ExampleNewApprox() {
	engine := lockstep.New(6, 1)
	monitor := protocol.NewApprox(engine, 2, eps.MustNew(1, 10))

	// Step 0: nodes 0 and 1 lead.
	engine.Advance([]int64{900, 800, 500, 400, 300, 200})
	monitor.Start()
	fmt.Println("t=0:", monitor.Output())

	// Small wiggles inside the filters: no communication, same output.
	engine.Advance([]int64{905, 795, 505, 398, 301, 199})
	monitor.HandleStep()
	fmt.Println("t=1:", monitor.Output())

	// Node 5 surges decisively past everyone: the output must follow.
	engine.Advance([]int64{905, 795, 505, 398, 301, 5000})
	monitor.HandleStep()
	fmt.Println("t=2:", monitor.Output())

	// Output:
	// t=0: [0 1]
	// t=1: [0 1]
	// t=2: [0 5]
}

// ExampleFindMax locates the maximum with the Lemma 2.6 protocol.
func ExampleFindMax() {
	engine := lockstep.New(5, 3)
	engine.Advance([]int64{10, 99, 20, 45, 7})
	rep, ok := protocol.FindMax(engine, true)
	fmt.Println(ok, rep.ID, rep.Value)
	// Output:
	// true 1 99
}
