package sim

import (
	"testing"

	"topkmon/internal/cluster"
	"topkmon/internal/eps"
	"topkmon/internal/protocol"
	"topkmon/internal/stream"
)

// TestDenseProtocolIsExercised drives the Approx controller on a workload
// whose k-th value sits inside a dense oscillating band, and asserts that
// DENSEPROTOCOL (and, over enough churn, SUBPROTOCOL) actually ran — the
// correctness tests would be vacuous for Section 5 if the controller always
// fell through to TOP-K-PROTOCOL.
func TestDenseProtocolIsExercised(t *testing.T) {
	const n, k, steps = 24, 4, 1500
	e := eps.MustNew(1, 4) // wide neighborhood: (1-ε)v_k = 0.75·v_k
	// 2 pinned-high nodes, 18 oscillating around 1000 ± 40 (inside the
	// ε-neighborhood of v_k ≈ 1000), 4 pinned low.
	gen := stream.NewOscillator(2, 18, 4, 1000, 40, 100000, 10, 77)

	var ap *protocol.Approx
	rep, err := Run(Config{
		K: k, Eps: e, Steps: steps, Seed: 21,
		Gen: gen,
		NewMonitor: func(c cluster.Cluster) protocol.Monitor {
			ap = protocol.NewApprox(c, k, e)
			return ap
		},
		Validate: ValidateEps,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ap.DenseEpochs() == 0 {
		t.Fatal("DENSEPROTOCOL never ran on a dense workload")
	}
	t.Logf("messages=%d epochs=%d denseEpochs=%d subCalls=%d sigmaMax=%d",
		rep.Messages.Total(), rep.Epochs, ap.DenseEpochs(), ap.SubCalls(), rep.SigmaMax)
}

// TestDenseWithTightOscillation: oscillation fully inside the neighborhood
// should eventually be communication-free for an ε-monitor once the sets
// stabilise — total cost must be far below the naive monitor's.
func TestDenseWithTightOscillation(t *testing.T) {
	const n, k, steps = 20, 3, 1000
	e := eps.MustNew(1, 3)
	mk := func() stream.Generator {
		return stream.NewOscillator(2, 14, 4, 3000, 20, 300000, 10, 99)
	}

	apRep, err := Run(Config{
		K: k, Eps: e, Steps: steps, Seed: 4,
		Gen:        mk(),
		NewMonitor: func(c cluster.Cluster) protocol.Monitor { return protocol.NewApprox(c, k, e) },
		Validate:   ValidateEps,
	})
	if err != nil {
		t.Fatal(err)
	}
	nvRep, err := Run(Config{
		K: k, Eps: e, Steps: steps, Seed: 4,
		Gen:        mk(),
		NewMonitor: func(c cluster.Cluster) protocol.Monitor { return protocol.NewNaive(c, k) },
		Validate:   ValidateEps,
	})
	if err != nil {
		t.Fatal(err)
	}
	if apRep.Messages.Total()*2 >= nvRep.Messages.Total() {
		t.Errorf("approx monitor (%d msgs) should be well below naive (%d msgs) on tight oscillation",
			apRep.Messages.Total(), nvRep.Messages.Total())
	}
	t.Logf("approx=%d naive=%d", apRep.Messages.Total(), nvRep.Messages.Total())
}

// TestLowerBoundAdversary runs the Theorem 5.1 instance and checks the
// online cost exceeds the offline realistic cost by a factor growing with
// σ/k — the Ω(σ/k) lower bound's empirical shape.
func TestLowerBoundAdversary(t *testing.T) {
	const k = 2
	e := eps.MustNew(1, 4)
	for _, sigma := range []int{6, 12, 24} {
		gen := stream.NewLowerBound(sigma, 4, k, e, 1<<20)
		steps := 3 * (sigma - k) // a few phases
		rep, err := Run(Config{
			K: k, Eps: e, Steps: steps, Seed: 17,
			Gen:        gen,
			NewMonitor: func(c cluster.Cluster) protocol.Monitor { return protocol.NewApprox(c, k, e) },
			Validate:   ValidateEps,
			ComputeOPT: true, OPTEps: e,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Messages.Total() < int64(sigma-k) {
			t.Errorf("σ=%d: adversary should force ≥ σ-k messages, got %d", sigma, rep.Messages.Total())
		}
		t.Logf("σ=%d: online=%d optBreaks=%d optRealistic=%d ratioLB=%.1f",
			sigma, rep.Messages.Total(), rep.OPTBreaks, rep.OPTRealistic, rep.RatioLB)
	}
}
