package exp

import (
	"strings"
	"testing"
)

// TestAllExperimentsRunQuick executes every experiment in quick mode,
// asserting each produces at least one non-empty table.
func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(Options{Quick: true, Seed: 1})
			if len(tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tb := range tables {
				if tb.NumRows() == 0 {
					t.Errorf("table %q is empty", tb.Title)
				}
				if !strings.Contains(tb.Title, e.ID) {
					t.Errorf("table title %q does not carry the experiment id", tb.Title)
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E1"); !ok {
		t.Error("E1 missing")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("phantom experiment found")
	}
}

func TestRegistryMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("experiment %q metadata incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
	if len(seen) != 13 {
		t.Errorf("expected 13 experiments, got %d", len(seen))
	}
}
