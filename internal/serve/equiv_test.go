package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"topkmon/topk"
)

// makeTrace builds a deterministic random-walk trace: steps full batches
// over n nodes, identical for every caller with equal parameters.
func makeTrace(n, steps int, seed uint64) [][]topk.Update {
	rng := rand.New(rand.NewSource(int64(seed) * 7919))
	walk := make([]int64, n)
	for i := range walk {
		walk[i] = 5000 + rng.Int63n(10001)
	}
	out := make([][]topk.Update, steps)
	for t := range out {
		batch := make([]topk.Update, n)
		for i := range walk {
			if t > 0 {
				walk[i] += rng.Int63n(401) - 200
				if walk[i] < 0 {
					walk[i] = 0
				}
			}
			batch[i] = topk.Update{Node: i, Value: walk[i]}
		}
		out[t] = batch
	}
	return out
}

// encodeBatch renders a batch in the update route's wire shape.
func encodeBatch(t *testing.T, batch []topk.Update) string {
	t.Helper()
	type upd struct {
		Node  int   `json:"node"`
		Value int64 `json:"value"`
	}
	w := make([]upd, len(batch))
	for i, u := range batch {
		w[i] = upd{Node: u.Node, Value: u.Value}
	}
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// costSnapshot builds the /cost wire response directly from a facade
// monitor — the reference the HTTP-scraped snapshot must match byte for
// byte.
func costSnapshot(m *topk.Monitor) costResponse {
	c := m.Cost()
	chk := m.Check()
	h := m.Health()
	return costResponse{
		Algorithm:        m.AlgorithmName(),
		Steps:            c.Steps,
		Epochs:           m.Epochs(),
		Messages:         c.Messages,
		NodeToServer:     c.NodeToServer,
		Unicasts:         c.Unicasts,
		Broadcasts:       c.Broadcasts,
		MaxRoundsPerStep: c.MaxRoundsPerStep,
		MaxMessageBits:   c.MaxMessageBits,
		IndexFallbacks:   c.IndexFallbacks,
		DroppedMsgs:      c.DroppedMsgs,
		DupMsgs:          c.DupMsgs,
		Retries:          c.Retries,
		Resyncs:          c.Resyncs,
		StaleSteps:       c.StaleSteps,
		Check:            checkString(chk),
		Health:           healthOf(h),
		SilentInvalid:    chk != nil && h.State == topk.Fresh,
	}
}

// TestServeEquivalence is the frontend's core guarantee: a trace ingested
// over the HTTP handlers is byte-identical — outputs, the full Cost
// counter snapshot, and epochs — to the same trace pushed directly into a
// topk.Monitor. The server path is pure transport; it inherits the
// facade's equivalence guarantee instead of weakening it. Covered on both
// engines and with the fault layer armed.
func TestServeEquivalence(t *testing.T) {
	const (
		n     = 48
		k     = 4
		steps = 220
		seed  = 11
	)
	cases := []struct {
		name   string
		cfg    Config
		opts   []topk.Option
		faults *topk.FaultPlan
	}{
		{
			name: "lockstep",
			cfg:  Config{Nodes: n, K: k, Eps: "1/8", Engine: "lockstep", Monitor: "approx", Seed: seed},
			opts: []topk.Option{topk.WithEngine(topk.Lockstep)},
		},
		{
			name: "live",
			cfg:  Config{Nodes: n, K: k, Eps: "1/8", Engine: "live", Shards: 3, Monitor: "approx", Seed: seed},
			opts: []topk.Option{topk.WithEngine(topk.Live), topk.WithShards(3)},
		},
		{
			name: "lockstep-faulty",
			cfg: Config{Nodes: n, K: k, Eps: "1/8", Engine: "lockstep", Monitor: "approx", Seed: seed,
				Faults: &FaultConfig{Drop: 0.05, Dup: 0.02, Delay: 0.05,
					Crashes: []CrashConfig{{Node: 3, From: 40, Until: 90}}}},
			opts:   []topk.Option{topk.WithEngine(topk.Lockstep)},
			faults: &topk.FaultPlan{Drop: 0.05, Dup: 0.02, Delay: 0.05, Crashes: []topk.Crash{{Node: 3, From: 40, Until: 90}}},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// The direct path: the embeddable facade, driven in-process.
			e := topk.MustEpsilon(1, 8)
			opts := append([]topk.Option{
				topk.WithNodes(n), topk.WithSeed(seed), topk.WithMonitor(topk.Approx),
			}, tc.opts...)
			if tc.faults != nil {
				opts = append(opts, topk.WithFaults(tc.faults))
			}
			direct, err := topk.New(k, e, opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer direct.Close()

			// The HTTP path: same config through the tenant-create route.
			s := newTestServer(t, Options{})
			cfgBody, err := json.Marshal(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			wantStatus(t, do(t, s, "PUT", "/v1/eq", string(cfgBody)), 201)

			trace := makeTrace(n, steps, seed)
			topBuf := make([]int, 0, k)
			for step, batch := range trace {
				rec := do(t, s, "POST", "/v1/eq/update", encodeBatch(t, batch))
				wantStatus(t, rec, 200)
				if err := direct.UpdateBatch(batch); err != nil {
					t.Fatal(err)
				}

				// Outputs must match after EVERY step.
				rec = do(t, s, "GET", "/v1/eq/topk", "")
				wantStatus(t, rec, 200)
				var tr topkResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
					t.Fatal(err)
				}
				topBuf = direct.TopK(topBuf)
				if fmt.Sprint(tr.TopK) != fmt.Sprint(topBuf) || tr.Step != direct.Steps() {
					t.Fatalf("step %d: served topk %v (step %d) != direct %v (step %d)",
						step, tr.TopK, tr.Step, topBuf, direct.Steps())
				}

				// Full introspection snapshots must be byte-identical at
				// checkpoints and at the end.
				if (step+1)%55 == 0 || step == steps-1 {
					rec = do(t, s, "GET", "/v1/eq/cost", "")
					wantStatus(t, rec, 200)
					want, err := json.Marshal(costSnapshot(direct))
					if err != nil {
						t.Fatal(err)
					}
					got := bytes.TrimSpace(rec.Body.Bytes())
					if !bytes.Equal(got, want) {
						t.Fatalf("step %d: cost snapshot diverged\nhttp:   %s\ndirect: %s",
							step, got, want)
					}
				}
			}

			// Non-vacuity: the trace exercised the protocol.
			if c := direct.Cost(); c.Messages == 0 || direct.Epochs() == 0 {
				t.Fatalf("vacuous trace: %+v", c)
			}
		})
	}
}

// TestServeResetEquivalence: a served tenant Reset over HTTP replays the
// trace byte-identically to its first run — the facade's Reset contract
// survives the transport.
func TestServeResetEquivalence(t *testing.T) {
	const n, k, steps = 24, 3, 120
	s := newTestServer(t, Options{Defaults: Config{Nodes: n, K: k, Seed: 5}, Lazy: true})
	trace := makeTrace(n, steps, 5)

	run := func() (last topkResponse, cost costResponse) {
		for _, batch := range trace {
			wantStatus(t, do(t, s, "POST", "/v1/r/update", encodeBatch(t, batch)), 200)
		}
		rec := do(t, s, "GET", "/v1/r/topk", "")
		wantStatus(t, rec, 200)
		json.Unmarshal(rec.Body.Bytes(), &last)
		rec = do(t, s, "GET", "/v1/r/cost", "")
		wantStatus(t, rec, 200)
		json.Unmarshal(rec.Body.Bytes(), &cost)
		return last, cost
	}

	top1, cost1 := run()
	// Reset with the tenant's construction seed (the default body).
	wantStatus(t, do(t, s, "POST", "/v1/r/reset", ""), 200)
	top2, cost2 := run()

	if fmt.Sprint(top1) != fmt.Sprint(top2) {
		t.Fatalf("topk after reset replay: %+v != %+v", top2, top1)
	}
	if cost1 != cost2 {
		t.Fatalf("cost after reset replay:\n%+v\n!=\n%+v", cost2, cost1)
	}
}
