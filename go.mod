module topkmon

go 1.24
