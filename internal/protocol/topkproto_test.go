package protocol_test

import (
	"testing"

	"topkmon/internal/eps"
	"topkmon/internal/filter"
	"topkmon/internal/lockstep"
	"topkmon/internal/oracle"
	"topkmon/internal/protocol"
	"topkmon/internal/sim"
	"topkmon/internal/stream"

	"topkmon/internal/cluster"
)

// TestTopKPhaseProgression drives TOP-K-PROTOCOL through A1 → A2 → A3 → P4
// with an ascending adversary and checks the per-phase violation counters.
func TestTopKPhaseProgression(t *testing.T) {
	const k, rest = 2, 5
	e := eps.MustNew(1, 8)
	gen := stream.NewClimber(k, rest, 1<<30)
	eng := lockstep.New(gen.N(), 9)
	mon := protocol.NewTopKProto(eng, k, e)
	for ts := 0; ts < 400; ts++ {
		gen.ObserveFilters(eng.Filters(), mon.Output())
		vals := gen.Next(ts)
		eng.Advance(vals)
		if ts == 0 {
			mon.Start()
		} else {
			mon.HandleStep()
		}
		truth := oracle.Compute(vals, k, e)
		if err := truth.ValidateEps(mon.Output()); err != nil {
			t.Fatalf("step %d: %v", ts, err)
		}
		eng.EndStep()
	}
	pv := mon.PhaseViolations()
	t.Logf("phase violations: %v over %d epochs", pv, mon.Epochs())
	for _, ph := range []protocol.Phase{protocol.PhaseA1, protocol.PhaseA2, protocol.PhaseA3, protocol.PhaseP4} {
		if pv[ph] == 0 {
			t.Errorf("phase %v never processed a violation", ph)
		}
	}
	if mon.Epochs() < 2 {
		t.Errorf("climber must force repeated epochs, got %d", mon.Epochs())
	}
}

// TestTopKA1TerminatesOnDownViolation pins the Lemma 4.1 rule: a violation
// from above ends phase A1. Without the exit, A1's separator ℓ₀+2^(2^r) can
// exceed u and a descending output node violates forever (the violation
// drain would panic).
func TestTopKA1TerminatesOnDownViolation(t *testing.T) {
	const k, rest = 4, 11
	e := eps.MustNew(1, 8)
	gen := stream.NewDescender(k, rest, 1<<30)
	_, err := sim.Run(sim.Config{
		K: k, Eps: e, Steps: 300, Seed: 31,
		Gen: gen,
		NewMonitor: func(c cluster.Cluster) protocol.Monitor {
			return protocol.NewTopKProto(c, k, e)
		},
		Validate: sim.ValidateEps,
	})
	if err != nil {
		t.Fatal(err)
	}
	if gen.Cycles < 2 {
		t.Errorf("descender should complete cycles against TOP-K, got %d", gen.Cycles)
	}
}

// TestTopKDescenderCheaperThanExact quantifies the Section 4 win on the
// descending attack: per epoch, the full phase machinery pays O(1)-ish
// while arithmetic bisection pays ~log Δ.
func TestTopKDescenderCheaperThanExact(t *testing.T) {
	const k, rest, steps = 4, 11, 1000
	e := eps.MustNew(1, 8)
	perEpoch := func(mk func(cluster.Cluster) protocol.Monitor, validate sim.Validate) float64 {
		rep, err := sim.Run(sim.Config{
			K: k, Eps: e, Steps: steps, Seed: 17,
			Gen:        stream.NewDescender(k, rest, 1<<32),
			NewMonitor: mk,
			Validate:   validate,
		})
		if err != nil {
			t.Fatal(err)
		}
		return float64(rep.Messages.Total()) / float64(rep.Epochs)
	}
	topk := perEpoch(func(c cluster.Cluster) protocol.Monitor {
		return protocol.NewTopKProto(c, k, e)
	}, sim.ValidateEps)
	exact := perEpoch(func(c cluster.Cluster) protocol.Monitor {
		return protocol.NewExactMid(c, k)
	}, sim.ValidateExact)
	if topk*1.2 >= exact {
		t.Errorf("TOP-K per-epoch (%.1f) should be well below exact bisection (%.1f) at Δ=2^32",
			topk, exact)
	}
	t.Logf("per-epoch: topk=%.1f exact=%.1f", topk, exact)
}

// TestTopKEpochRestartsProduceValidFilters: after any epoch restart the
// filter set must be valid for the current values (no lingering violation).
func TestTopKEpochRestartsProduceValidFilters(t *testing.T) {
	const k = 3
	e := eps.MustNew(1, 4)
	gen := stream.NewJumps(10, 100, 100000, 5)
	eng := lockstep.New(10, 77)
	mon := protocol.NewTopKProto(eng, k, e)
	for ts := 0; ts < 300; ts++ {
		vals := gen.Next(ts)
		eng.Advance(vals)
		if ts == 0 {
			mon.Start()
		} else {
			mon.HandleStep()
		}
		filters := eng.Filters()
		for i, v := range vals {
			if filters[i].Violation(v) != filter.DirNone {
				t.Fatalf("step %d: node %d value %d outside filter %v after quiescence",
					ts, i, v, filters[i])
			}
		}
		out := map[int]bool{}
		for _, id := range mon.Output() {
			out[id] = true
		}
		if !filter.SetValid(vals, filters, out, e) {
			t.Fatalf("step %d: filter set invalid per Observation 2.2", ts)
		}
		eng.EndStep()
	}
}
