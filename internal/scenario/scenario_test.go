package scenario

import (
	"strings"
	"testing"

	"topkmon/internal/lockstep"
)

const validJSON = `{
  "name": "demo",
  "n": 16, "k": 3,
  "epsNum": 1, "epsDen": 8,
  "steps": 100, "seed": 7,
  "monitor": "approx",
  "workload": {"kind": "oscillator", "base": 5000, "amplitude": 200}
}`

func TestParseValid(t *testing.T) {
	s, err := Parse(strings.NewReader(validJSON))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "demo" || s.N != 16 || s.K != 3 {
		t.Errorf("parsed spec wrong: %+v", s)
	}
	if s.Eps().String() != "1/8" {
		t.Errorf("eps = %v", s.Eps())
	}
}

func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":   `{"n":4,"k":1,"steps":1,"monitor":"naive","workload":{"kind":"walk"},"bogus":1}`,
		"k >= n":          `{"n":4,"k":4,"steps":1,"monitor":"naive","workload":{"kind":"walk"}}`,
		"n too small":     `{"n":1,"k":1,"steps":1,"monitor":"naive","workload":{"kind":"walk"}}`,
		"no steps":        `{"n":4,"k":1,"monitor":"naive","workload":{"kind":"walk"}}`,
		"bad monitor":     `{"n":4,"k":1,"steps":1,"monitor":"wat","workload":{"kind":"walk"}}`,
		"bad workload":    `{"n":4,"k":1,"steps":1,"monitor":"naive","workload":{"kind":"wat"}}`,
		"eps needed":      `{"n":4,"k":1,"steps":1,"monitor":"approx","workload":{"kind":"walk"}}`,
		"eps ≥ 1":         `{"n":4,"k":1,"steps":1,"epsNum":3,"epsDen":2,"monitor":"approx","workload":{"kind":"walk"}}`,
		"not even json":   `nope`,
		"jumps empty rng": `{"n":4,"k":1,"steps":1,"monitor":"naive","workload":{"kind":"jumps","lo":5,"hi":5}}`,
	}
	for name, js := range cases {
		t.Run(name, func(t *testing.T) {
			s, err := Parse(strings.NewReader(js))
			if err == nil {
				// Some constraints only surface at build time.
				if _, err = s.BuildGenerator(); err == nil {
					t.Errorf("accepted invalid scenario %q", js)
				}
			}
		})
	}
}

// TestAllWorkloadsAndMonitorsBuildAndRun: every (workload, monitor)
// combination from a scenario constructs and survives a short run.
func TestAllWorkloadsAndMonitorsBuildAndRun(t *testing.T) {
	workloads := []string{"walk", "jumps", "oscillator", "loads", "climber", "descender", "lowerbound"}
	monitors := []string{"approx", "topk", "exact-mid", "half-eps", "naive", "mid-naive"}
	for _, w := range workloads {
		for _, m := range monitors {
			t.Run(w+"/"+m, func(t *testing.T) {
				s := &Spec{
					N: 12, K: 3, EpsNum: 1, EpsDen: 8, Steps: 30, Seed: 5,
					Monitor:  m,
					Workload: Workload{Kind: w, Sigma: 6},
				}
				if err := s.Validate(); err != nil {
					t.Fatal(err)
				}
				gen, err := s.BuildGenerator()
				if err != nil {
					t.Fatal(err)
				}
				if gen.N() < s.K+1 {
					t.Fatalf("generator built %d nodes for k=%d", gen.N(), s.K)
				}
				eng := lockstep.New(gen.N(), s.Seed)
				mon, err := s.BuildMonitor(eng)
				if err != nil {
					t.Fatal(err)
				}
				for ts := 0; ts < s.Steps; ts++ {
					eng.Advance(gen.Next(ts))
					if ts == 0 {
						mon.Start()
					} else {
						mon.HandleStep()
					}
					eng.EndStep()
				}
				if len(mon.Output()) != s.K {
					t.Errorf("output size %d", len(mon.Output()))
				}
			})
		}
	}
}

func TestEpsDenDefaults(t *testing.T) {
	s := &Spec{N: 4, K: 1, Steps: 1, Monitor: "naive", Workload: Workload{Kind: "walk"}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !s.Eps().IsZero() {
		t.Errorf("default eps should be 0, got %v", s.Eps())
	}
}
