package offline

import (
	"testing"

	"topkmon/internal/eps"
	"topkmon/internal/rngx"
)

func TestNewInstanceValidation(t *testing.T) {
	if _, err := NewInstance(nil, 1, eps.Zero); err == nil {
		t.Error("empty instance accepted")
	}
	if _, err := NewInstance([][]int64{{1, 2}}, 3, eps.Zero); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := NewInstance([][]int64{{1, 2}, {1}}, 1, eps.Zero); err == nil {
		t.Error("ragged matrix accepted")
	}
}

func TestFeasibleSimple(t *testing.T) {
	// Two nodes, k=1: envelopes MIN=MAX.
	if !Feasible([]int64{100, 50}, []int64{100, 50}, 1, eps.Zero) {
		t.Error("separated values must be feasible")
	}
	// Crossing envelopes: node0 dipped to 40 while node1 peaked at 60.
	if Feasible([]int64{40, 50}, []int64{100, 60}, 1, eps.Zero) {
		t.Error("crossed envelopes must be infeasible for ε=0")
	}
	// With ε=1/2 the same envelopes are fine: pick S={0}: 40 ≥ 0.5·60 ✓.
	if !Feasible([]int64{40, 50}, []int64{100, 60}, 1, eps.MustNew(1, 2)) {
		t.Error("ε=1/2 must admit the crossed envelopes")
	}
}

func TestWitnessIsValid(t *testing.T) {
	minEnv := []int64{90, 80, 70, 20, 10}
	maxEnv := []int64{100, 85, 75, 30, 15}
	e := eps.MustNew(1, 4)
	s, ok := Witness(minEnv, maxEnv, 3, e)
	if !ok {
		t.Fatal("expected feasible")
	}
	checkWitness(t, s, minEnv, maxEnv, 3, e)
}

func checkWitness(t *testing.T, s []int, minEnv, maxEnv []int64, k int, e eps.Eps) {
	t.Helper()
	if len(s) != k {
		t.Fatalf("witness size %d, want %d", len(s), k)
	}
	inS := map[int]bool{}
	minS := int64(1) << 62
	for _, id := range s {
		inS[id] = true
		if minEnv[id] < minS {
			minS = minEnv[id]
		}
	}
	for id := range minEnv {
		if inS[id] {
			continue
		}
		if !e.FilterCompatible(minS, maxEnv[id]) {
			t.Fatalf("witness violates Lemma 2.5: minS=%d vs MAX[%d]=%d", minS, id, maxEnv[id])
		}
	}
}

// TestFeasibleMatchesBruteForce: the O(n log n) check agrees with exhaustive
// subset enumeration on random small envelopes.
func TestFeasibleMatchesBruteForce(t *testing.T) {
	rng := rngx.New(42)
	for trial := 0; trial < 500; trial++ {
		n := 2 + rng.Intn(7)
		k := 1 + rng.Intn(n)
		e := eps.MustNew(int64(rng.Intn(9)), 10)
		minEnv := make([]int64, n)
		maxEnv := make([]int64, n)
		for i := range minEnv {
			a, b := rng.Int63n(50), rng.Int63n(50)
			if a > b {
				a, b = b, a
			}
			minEnv[i], maxEnv[i] = a, b
		}
		fast, ok := Witness(minEnv, maxEnv, k, e)
		slow := bruteFeasible(minEnv, maxEnv, k, e)
		if ok != slow {
			t.Fatalf("trial %d: fast=%v brute=%v (min=%v max=%v k=%d ε=%v)",
				trial, ok, slow, minEnv, maxEnv, k, e)
		}
		if ok {
			checkWitness(t, fast, minEnv, maxEnv, k, e)
		}
	}
}

func bruteFeasible(minEnv, maxEnv []int64, k int, e eps.Eps) bool {
	n := len(minEnv)
	for mask := 0; mask < 1<<n; mask++ {
		if popcount(mask) != k {
			continue
		}
		minS, maxR := int64(1)<<62, int64(-1)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				if minEnv[i] < minS {
					minS = minEnv[i]
				}
			} else if maxEnv[i] > maxR {
				maxR = maxEnv[i]
			}
		}
		if maxR < 0 || e.FilterCompatible(minS, maxR) {
			return true
		}
	}
	return false
}

func popcount(x int) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

// TestGreedyMatchesDP: greedy maximal segmentation is optimal.
func TestGreedyMatchesDP(t *testing.T) {
	rng := rngx.New(7)
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(5)
		k := 1 + rng.Intn(n-1)
		T := 3 + rng.Intn(15)
		e := eps.MustNew(int64(rng.Intn(5)), 8)
		matrix := make([][]int64, T)
		cur := make([]int64, n)
		for i := range cur {
			cur[i] = rng.Int63n(200)
		}
		for tt := range matrix {
			row := make([]int64, n)
			for i := range row {
				cur[i] += rng.Int63n(61) - 30
				if cur[i] < 0 {
					cur[i] = 0
				}
				row[i] = cur[i]
			}
			matrix[tt] = row
		}
		inst, err := NewInstance(matrix, k, e)
		if err != nil {
			t.Fatal(err)
		}
		greedy := len(inst.Solve().Segments)
		dp := inst.BruteSegments()
		if greedy != dp {
			t.Fatalf("trial %d: greedy=%d dp=%d", trial, greedy, dp)
		}
	}
}

func TestSolveConstantStream(t *testing.T) {
	matrix := [][]int64{{10, 5, 1}, {10, 5, 1}, {10, 5, 1}}
	inst, _ := NewInstance(matrix, 1, eps.Zero)
	res := inst.Solve()
	if len(res.Segments) != 1 || res.Breaks != 0 {
		t.Errorf("constant stream: %+v", res)
	}
	if res.Segments[0].From != 0 || res.Segments[0].To != 2 {
		t.Errorf("segment bounds: %+v", res.Segments[0])
	}
	// Realistic cost: 1 broadcast + k unicasts.
	if res.Realistic != 2 {
		t.Errorf("realistic = %d, want 2", res.Realistic)
	}
}

func TestSolveForcedBreak(t *testing.T) {
	// Node 0 and node 1 swap decisively: a break is unavoidable for ε=0.
	matrix := [][]int64{{100, 1}, {100, 1}, {1, 100}, {1, 100}}
	inst, _ := NewInstance(matrix, 1, eps.Zero)
	res := inst.Solve()
	if res.Breaks != 1 {
		t.Errorf("breaks = %d, want 1", res.Breaks)
	}
}

func TestEpsilonReducesBreaks(t *testing.T) {
	// Oscillation around the k-th value: exact OPT breaks, ε OPT doesn't.
	matrix := make([][]int64, 40)
	for tt := range matrix {
		hi := int64(100)
		lo := int64(96)
		if tt%2 == 1 {
			hi, lo = 96, 100
		}
		matrix[tt] = []int64{hi, lo, 10}
	}
	exact, _ := NewInstance(matrix, 1, eps.Zero)
	approx, _ := NewInstance(matrix, 1, eps.MustNew(1, 10))
	if exact.Solve().Breaks == 0 {
		t.Error("exact OPT should break on swaps")
	}
	if approx.Solve().Breaks != 0 {
		t.Error("ε OPT should ride out the oscillation")
	}
}

func TestSigmaMax(t *testing.T) {
	e := eps.MustNew(1, 4)
	matrix := [][]int64{
		{100, 99, 98, 10}, // σ = 3
		{100, 99, 10, 9},  // σ = 2
	}
	inst, _ := NewInstance(matrix, 2, e)
	if got := inst.SigmaMax(); got != 3 {
		t.Errorf("SigmaMax = %d, want 3", got)
	}
}

func TestRealisticCostCountsSwitches(t *testing.T) {
	matrix := [][]int64{{100, 1}, {1, 100}}
	inst, _ := NewInstance(matrix, 1, eps.Zero)
	res := inst.Solve()
	// Segment 1: bcast + node0; segment 2: bcast + node1 = 4.
	if res.Realistic != 4 {
		t.Errorf("realistic = %d, want 4", res.Realistic)
	}
}
