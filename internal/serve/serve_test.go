package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"topkmon/topk"
)

// do runs one request through the handler stack without a socket.
func do(t *testing.T, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, path, nil)
	} else {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func wantStatus(t *testing.T, rec *httptest.ResponseRecorder, want int) {
	t.Helper()
	if rec.Code != want {
		t.Fatalf("status = %d, want %d (body: %s)", rec.Code, want, rec.Body.String())
	}
}

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestTenantLifecycle walks create → info → ingest → reset → delete through
// the handlers, without a socket.
func TestTenantLifecycle(t *testing.T) {
	s := newTestServer(t, Options{Defaults: Config{Nodes: 16, K: 2}})

	// Unknown tenant reads are 404; lazy creation is off.
	wantStatus(t, do(t, s, "GET", "/v1/web/topk", ""), http.StatusNotFound)
	wantStatus(t, do(t, s, "POST", "/v1/web/update", "[]"), http.StatusNotFound)

	// Create with a partial config: zero fields inherit the defaults.
	rec := do(t, s, "PUT", "/v1/web", `{"k":3,"seed":9}`)
	wantStatus(t, rec, http.StatusCreated)
	var info tenantInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Config.Nodes != 16 || info.Config.K != 3 || info.Config.Seed != 9 ||
		info.Config.Eps != "1/8" || info.Config.Engine != "lockstep" || info.Config.Monitor != "approx" {
		t.Fatalf("merged config = %+v", info.Config)
	}

	// Duplicate create conflicts; invalid names and configs are rejected.
	wantStatus(t, do(t, s, "PUT", "/v1/web", ""), http.StatusConflict)
	wantStatus(t, do(t, s, "PUT", "/v1/bad%20name", ""), http.StatusBadRequest)
	wantStatus(t, do(t, s, "PUT", "/v1/tenants", ""), http.StatusBadRequest)
	wantStatus(t, do(t, s, "PUT", "/v1/neg", `{"k":-1}`), http.StatusBadRequest)
	wantStatus(t, do(t, s, "PUT", "/v1/neg", `{"engine":"vax"}`), http.StatusBadRequest)
	wantStatus(t, do(t, s, "PUT", "/v1/neg", `{"unknown":1}`), http.StatusBadRequest)

	// Ingest three steps: one batch, one staged pair via update+flush shape
	// (the update route always commits the batch as one step), one
	// heartbeat flush.
	wantStatus(t, do(t, s, "POST", "/v1/web/update", `[{"node":0,"value":100},{"node":1,"value":50}]`), http.StatusOK)
	wantStatus(t, do(t, s, "POST", "/v1/web/update", `[]`), http.StatusOK)
	rec = do(t, s, "POST", "/v1/web/flush", "")
	wantStatus(t, rec, http.StatusOK)
	var ur updateResponse
	json.Unmarshal(rec.Body.Bytes(), &ur)
	if ur.Step != 3 {
		t.Fatalf("steps after 3 commits = %d", ur.Step)
	}

	// Reads.
	rec = do(t, s, "GET", "/v1/web/topk", "")
	wantStatus(t, rec, http.StatusOK)
	var tr topkResponse
	json.Unmarshal(rec.Body.Bytes(), &tr)
	if tr.K != 3 || len(tr.TopK) != 3 || tr.Step != 3 {
		t.Fatalf("topk response = %+v", tr)
	}
	rec = do(t, s, "GET", "/v1/web/cost", "")
	wantStatus(t, rec, http.StatusOK)
	var cr costResponse
	json.Unmarshal(rec.Body.Bytes(), &cr)
	if cr.Check != "ok" || cr.SilentInvalid || cr.Steps != 3 || cr.Messages == 0 {
		t.Fatalf("cost response = %+v", cr)
	}
	rec = do(t, s, "GET", "/v1/web/health", "")
	wantStatus(t, rec, http.StatusOK)
	var hr healthResponse
	json.Unmarshal(rec.Body.Bytes(), &hr)
	if hr.Check != "ok" || hr.Health.State != "fresh" {
		t.Fatalf("health response = %+v", hr)
	}

	// Reset rewinds the step count.
	wantStatus(t, do(t, s, "POST", "/v1/web/reset", `{"seed":5}`), http.StatusOK)
	rec = do(t, s, "GET", "/v1/web", "")
	wantStatus(t, rec, http.StatusOK)
	json.Unmarshal(rec.Body.Bytes(), &info)
	if info.Steps != 0 {
		t.Fatalf("steps after reset = %d", info.Steps)
	}

	// Delete; further reads 404, delete is not idempotent (404 again).
	wantStatus(t, do(t, s, "DELETE", "/v1/web", ""), http.StatusNoContent)
	wantStatus(t, do(t, s, "GET", "/v1/web/topk", ""), http.StatusNotFound)
	wantStatus(t, do(t, s, "DELETE", "/v1/web", ""), http.StatusNotFound)
}

// TestLazyCreationAndLimits pins the lazy-ingest path and the tenant cap.
func TestLazyCreationAndLimits(t *testing.T) {
	s := newTestServer(t, Options{Defaults: Config{Nodes: 8, K: 2}, Lazy: true, MaxTenants: 2})

	wantStatus(t, do(t, s, "POST", "/v1/a/update", `[{"node":0,"value":1}]`), http.StatusOK)
	wantStatus(t, do(t, s, "POST", "/v1/b/flush", ""), http.StatusOK)
	// Third tenant exceeds the cap, lazily or explicitly.
	wantStatus(t, do(t, s, "POST", "/v1/c/update", `[]`), http.StatusTooManyRequests)
	wantStatus(t, do(t, s, "PUT", "/v1/c", ""), http.StatusTooManyRequests)
	// Lazily-created tenants carry the server defaults.
	rec := do(t, s, "GET", "/v1/a", "")
	wantStatus(t, rec, http.StatusOK)
	var info tenantInfo
	json.Unmarshal(rec.Body.Bytes(), &info)
	if info.Config.Nodes != 8 || info.Config.K != 2 {
		t.Fatalf("lazy tenant config = %+v", info.Config)
	}
	// Deleting frees a slot.
	wantStatus(t, do(t, s, "DELETE", "/v1/b", ""), http.StatusNoContent)
	wantStatus(t, do(t, s, "POST", "/v1/c/flush", ""), http.StatusOK)

	rec = do(t, s, "GET", "/v1/tenants", "")
	wantStatus(t, rec, http.StatusOK)
	var list []tenantInfo
	json.Unmarshal(rec.Body.Bytes(), &list)
	if len(list) != 2 || list[0].Name != "a" || list[1].Name != "c" {
		t.Fatalf("tenant list = %+v", list)
	}
}

// TestUpdateRejections pins the ingest route's error envelope: bad
// requests never commit a step or touch monitor state.
func TestUpdateRejections(t *testing.T) {
	s := newTestServer(t, Options{Defaults: Config{Nodes: 4, K: 1}, Lazy: true, MaxBatch: 8})

	cases := []struct {
		name, body string
		status     int
	}{
		{"malformed", `[{"node":0,`, http.StatusBadRequest},
		{"not-array", `{"node":0,"value":1}`, http.StatusBadRequest},
		{"unknown-field", `[{"node":0,"value":1,"x":2}]`, http.StatusBadRequest},
		{"missing-value", `[{"node":0}]`, http.StatusBadRequest},
		{"node-overflow", `[{"node":99999999999999999999,"value":1}]`, http.StatusBadRequest},
		{"value-overflow", `[{"node":0,"value":99999999999999999999}]`, http.StatusBadRequest},
		{"float-node", `[{"node":1.5,"value":1}]`, http.StatusBadRequest},
		{"trailing", `[{"node":0,"value":1}] x`, http.StatusBadRequest},
		{"node-out-of-range", `[{"node":64,"value":1}]`, http.StatusBadRequest},
		{"value-negative", `[{"node":0,"value":-1}]`, http.StatusBadRequest},
		{"too-many", `[{"node":0,"value":1},{"node":0,"value":1},{"node":0,"value":1},{"node":0,"value":1},{"node":0,"value":1},{"node":0,"value":1},{"node":0,"value":1},{"node":0,"value":1},{"node":0,"value":1}]`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		rec := do(t, s, "POST", "/v1/x/update", tc.body)
		if rec.Code != tc.status {
			t.Errorf("%s: status = %d, want %d (body: %s)", tc.name, rec.Code, tc.status, rec.Body.String())
		}
	}
	// None of the rejected requests committed anything (the tenant was
	// still lazily created by the first ingest attempt — with zero steps).
	rec := do(t, s, "GET", "/v1/x", "")
	wantStatus(t, rec, http.StatusOK)
	var info tenantInfo
	json.Unmarshal(rec.Body.Bytes(), &info)
	if info.Steps != 0 {
		t.Fatalf("rejected updates committed %d steps", info.Steps)
	}
}

// TestDecodeBatchReuse pins the decoder's buffer contract: appending into
// dst[:0] and reusing capacity.
func TestDecodeBatchReuse(t *testing.T) {
	buf := make([]topk.Update, 0, 4)
	got, err := DecodeBatch(strings.NewReader(`[{"node":1,"value":2},{"node":3,"value":4}]`), buf, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != (topk.Update{Node: 1, Value: 2}) || got[1] != (topk.Update{Node: 3, Value: 4}) {
		t.Fatalf("batch = %+v", got)
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("decoder did not reuse dst capacity")
	}
	// Duplicate nodes within a batch are legal (last wins at commit, a
	// Monitor.UpdateBatch contract) and empty batches are heartbeats.
	if _, err := DecodeBatch(strings.NewReader(`[{"node":0,"value":1},{"node":0,"value":2}]`), nil, 8); err != nil {
		t.Fatal(err)
	}
	if got, err := DecodeBatch(strings.NewReader(`[]`), nil, 8); err != nil || len(got) != 0 {
		t.Fatalf("empty batch: %v, %v", got, err)
	}
}

func TestValidName(t *testing.T) {
	for _, ok := range []string{"a", "Tenant-1", "x_y", strings.Repeat("a", 64)} {
		if !ValidName(ok) {
			t.Errorf("ValidName(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", "tenants", "a b", "a/b", "ü", strings.Repeat("a", 65)} {
		if ValidName(bad) {
			t.Errorf("ValidName(%q) = true", bad)
		}
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Options{Lazy: true})
	wantStatus(t, do(t, s, "GET", "/healthz", ""), http.StatusOK)
}
