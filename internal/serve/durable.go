package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"topkmon/internal/wal"
	"topkmon/topk"
)

// Durability configures the write-ahead batch log under the tenant pool.
// The zero value (empty Dir) keeps the server volatile — exactly the
// pre-durability behavior. With a Dir set, every accepted batch is
// journaled BEFORE its step commits, tenant lifecycle ops (create, reset,
// delete) are logged as config-epoch records, and a booting server
// replays every tenant bit for bit (outputs, cost counters, fault coins —
// TestRecoveryEquivalence) via build(config) + Reset(seed) + batch replay.
type Durability struct {
	// Dir is the data directory (one <tenant>.wal per tenant).
	Dir string
	// Fsync is the batch-append policy: "always" (default), "interval",
	// or "never". Lifecycle records are always fsynced.
	Fsync string
	// SnapshotEvery is the number of committed steps between durable
	// snapshot sidecars (0 = 1024). A snapshot forces an fsync and records
	// the synced offset + seq watermarks; recovery fails loudly if the log
	// has lost data a snapshot vouched for.
	SnapshotEvery int
	// SyncInterval is the "interval" policy's flush period (0 = 100ms).
	SyncInterval time.Duration
}

// openStore builds the wal.Store for a non-zero Durability config.
func (d Durability) openStore() (*wal.Store, error) {
	if d.Dir == "" {
		return nil, nil
	}
	fsync := d.Fsync
	if fsync == "" {
		fsync = "always"
	}
	policy, err := wal.ParsePolicy(fsync)
	if err != nil {
		return nil, err
	}
	return wal.Open(wal.Options{
		Dir:           d.Dir,
		Policy:        policy,
		Interval:      d.SyncInterval,
		SnapshotEvery: d.SnapshotEvery,
	})
}

// journalCreate writes (and fsyncs) the config-epoch record that makes a
// fresh tenant durable. Called by Pool.Create after the tenant won the
// map insert; on error the caller rolls the insert back.
func (t *Tenant) journalCreate() error {
	cfgJSON, err := json.Marshal(t.Cfg)
	if err != nil {
		return err
	}
	log, err := t.store.Create(t.Name)
	if err != nil {
		return err
	}
	rec := wal.Record{Kind: wal.KindConfig, Epoch: 1, Seed: t.seed, Config: cfgJSON}
	if _, err := log.Append(&rec); err != nil {
		log.Close()
		t.store.Remove(t.Name)
		return err
	}
	if err := log.Sync(); err != nil { // lifecycle records are always durable
		log.Close()
		t.store.Remove(t.Name)
		return err
	}
	t.log = log
	t.epoch = 1
	return nil
}

// CommitBatch is the durable ingest path: dedup against the per-client
// seq watermark, validate, journal, THEN commit the step. It returns the
// step count after the commit and whether the batch was a duplicate retry
// (seq already committed — acknowledged without committing a second
// step). seq 0 means "no idempotency requested" and is never deduped.
//
// The tenant mutex serializes every committed mutation so journal order
// equals commit order; a crash between journal and commit re-commits the
// batch on replay, and the client's retry of the un-acked seq is then
// absorbed by the watermark — exactly once either way.
func (t *Tenant) CommitBatch(batch []topk.Update, client string, seq uint64) (step int64, dup bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if seq > 0 && t.seqs[client] >= seq {
		return t.Mon.Steps(), true, nil
	}
	// Validate before journaling: the log must never hold a batch the
	// monitor would reject on replay (this also surfaces ErrClosed for a
	// concurrently deleted tenant before any I/O happens).
	if err := t.Mon.ValidateBatch(batch); err != nil {
		return 0, false, err
	}
	if t.log != nil {
		rec := wal.Record{
			Kind: wal.KindBatch, Epoch: t.epoch, Step: uint64(t.Mon.Steps()) + 1,
			Client: client, Seq: seq, Batch: batch,
		}
		if _, err := t.log.Append(&rec); err != nil {
			return 0, false, err
		}
	}
	if err := t.Mon.UpdateBatch(batch); err != nil {
		// Unreachable in practice: the batch validated and Close/Delete
		// hold t.mu. Surfaced rather than swallowed if it ever happens.
		return 0, false, err
	}
	if seq > 0 {
		if t.seqs == nil {
			t.seqs = make(map[string]uint64)
		}
		t.seqs[client] = seq
	}
	t.maybeSnapshotLocked()
	return t.Mon.Steps(), false, nil
}

// CommitFlush journals and commits a heartbeat step (an empty batch).
func (t *Tenant) CommitFlush() (int64, error) {
	step, _, err := t.CommitBatch(nil, "", 0)
	return step, err
}

// CommitReset rewinds the tenant to seed and — when durable — compacts
// the log: the reset opens a new config epoch, after which no earlier
// record can ever replay, so the log is atomically rewritten to a single
// fresh config record. Seq watermarks survive via the snapshot written in
// the same breath (a retried pre-reset seq is still a duplicate).
func (t *Tenant) CommitReset(seed uint64) (int64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.log != nil {
		cfgJSON, err := json.Marshal(t.Cfg)
		if err != nil {
			return 0, err
		}
		rec := wal.Record{Kind: wal.KindConfig, Epoch: t.epoch + 1, Seed: seed, Config: cfgJSON}
		log, err := t.store.Compact(t.Name, &rec)
		if err != nil {
			return 0, err
		}
		t.log = log
		t.epoch++
		t.writeSnapshotLocked(0, seed)
	}
	if err := t.Mon.Reset(seed); err != nil {
		return 0, err
	}
	t.seed = seed
	t.sinceSnap = 0
	return t.Mon.Steps(), nil
}

// closeDurable journals the tombstone (fsynced), removes the tenant's
// files, and closes the monitor. Called by Pool.Delete outside the pool
// lock; the tenant mutex drains any in-flight commit first.
func (t *Tenant) closeDurable() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.log != nil {
		rec := wal.Record{Kind: wal.KindDelete, Epoch: t.epoch}
		if _, err := t.log.Append(&rec); err == nil {
			t.log.Sync()
		}
		t.store.Remove(t.Name) // closes the log and deletes both files
		t.log = nil
	}
	return t.Mon.Close()
}

// closeQuiesced fsyncs and closes the log, then the monitor — the
// graceful-shutdown path (files stay for the next boot). Takes the tenant
// mutex, so an in-flight commit finishes before anything closes.
func (t *Tenant) closeQuiesced() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.log != nil {
		t.log.Close()
		t.log = nil
	}
	t.Mon.Close()
}

// maybeSnapshotLocked writes a durable snapshot every SnapshotEvery
// committed steps: fsync first (so the recorded offset is really on
// stable storage — a durability point even under fsync=interval/never),
// then the sidecar. Snapshot write failures are deliberately non-fatal:
// the batch itself is already journaled, and the snapshot is a tripwire,
// not the source of truth.
func (t *Tenant) maybeSnapshotLocked() {
	if t.log == nil {
		return
	}
	t.sinceSnap++
	if t.sinceSnap < t.store.SnapshotEvery() {
		return
	}
	t.sinceSnap = 0
	if err := t.log.Sync(); err != nil {
		return
	}
	t.writeSnapshotLocked(t.Mon.Steps(), t.seed)
}

func (t *Tenant) writeSnapshotLocked(steps int64, seed uint64) {
	cfgJSON, err := json.Marshal(t.Cfg)
	if err != nil {
		return
	}
	marks := make(map[string]uint64, len(t.seqs))
	for c, s := range t.seqs {
		marks[c] = s
	}
	t.store.WriteSnapshot(t.Name, &wal.Snapshot{
		Epoch:      t.epoch,
		Steps:      steps,
		Offset:     t.log.SyncedOffset(),
		Seed:       seed,
		Config:     cfgJSON,
		Watermarks: marks,
	})
}

// recover rebuilds every tenant found in the data directory: decode the
// longest valid log prefix (the store truncates the torn tail), then
// replay — build(config), Reset(seed), UpdateBatch per batch record —
// which the facade's Reset contract makes byte-identical to the
// uninterrupted run. Deleted tenants have their files removed. Any
// structural inconsistency (epoch/step mismatches, lost durable data,
// unbuildable config) fails the boot loudly: recovering LESS than was
// acked must never look like success.
func (p *Pool) recover() error {
	names, err := p.store.List()
	if err != nil {
		return err
	}
	for _, name := range names {
		if err := p.recoverTenant(name); err != nil {
			return fmt.Errorf("serve: recover tenant %s: %w", name, err)
		}
	}
	return nil
}

func (p *Pool) recoverTenant(name string) error {
	log, recs, snap, err := p.store.OpenExisting(name)
	if err != nil {
		return err
	}
	var t *Tenant
	deleted := false
	fail := func(err error) error {
		log.Close()
		if t != nil {
			t.Mon.Close()
		}
		return err
	}
replay:
	for _, rec := range recs {
		switch rec.Kind {
		case wal.KindConfig:
			// First record, or a compacted reset epoch. The logged config
			// is the fully-populated one from creation time — it wins over
			// whatever the server defaults are at boot.
			var cfg Config
			if err := json.Unmarshal(rec.Config, &cfg); err != nil {
				return fail(fmt.Errorf("config record: %w", err))
			}
			if t == nil {
				mon, err := cfg.build()
				if err != nil {
					return fail(fmt.Errorf("rebuild monitor: %w", err))
				}
				t = &Tenant{Name: name, Cfg: cfg, Mon: mon, store: p.store, log: log}
			}
			// Reset(seed) on a fresh monitor is byte-identical to fresh
			// construction (the facade's Reset contract), so one code path
			// serves both creation and reset epochs.
			if err := t.Mon.Reset(rec.Seed); err != nil {
				return fail(err)
			}
			t.seed = rec.Seed
			t.epoch = rec.Epoch
		case wal.KindBatch:
			if t == nil {
				return fail(errors.New("batch record before config record"))
			}
			if rec.Epoch != t.epoch {
				return fail(fmt.Errorf("batch epoch %d != current epoch %d", rec.Epoch, t.epoch))
			}
			if rec.Step != uint64(t.Mon.Steps())+1 {
				return fail(fmt.Errorf("batch step %d != expected %d", rec.Step, t.Mon.Steps()+1))
			}
			if err := t.Mon.UpdateBatch(rec.Batch); err != nil {
				return fail(fmt.Errorf("replay step %d: %w", rec.Step, err))
			}
			if rec.Seq > 0 {
				if t.seqs == nil {
					t.seqs = make(map[string]uint64)
				}
				if t.seqs[rec.Client] < rec.Seq {
					t.seqs[rec.Client] = rec.Seq
				}
			}
		case wal.KindDelete:
			deleted = true
			break replay
		}
	}
	if deleted || t == nil {
		// A tombstoned tenant, or an empty log whose config record never
		// made it: nothing to serve, clean the files up.
		if t != nil {
			t.Mon.Close()
		}
		return p.store.Remove(name)
	}
	if snap != nil {
		if snap.Steps > t.Mon.Steps() && snap.Epoch == t.epoch {
			return fail(fmt.Errorf("replayed %d steps < %d the last snapshot vouched for",
				t.Mon.Steps(), snap.Steps))
		}
		// Watermarks survive compaction only through the snapshot.
		for c, s := range snap.Watermarks {
			if t.seqs == nil {
				t.seqs = make(map[string]uint64)
			}
			if t.seqs[c] < s {
				t.seqs[c] = s
			}
		}
	}
	// Recovered tenants are existing data: they are inserted even when the
	// pool's MaxTenants cap is lower than the directory's tenant count.
	p.mu.Lock()
	p.tenants[name] = t
	p.mu.Unlock()
	return nil
}
