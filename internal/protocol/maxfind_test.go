package protocol_test

import (
	"math"
	"testing"

	"topkmon/internal/lockstep"
	"topkmon/internal/protocol"
	"topkmon/internal/rngx"
)

// TestFindMaxReturnsTrueMax: Lemma 2.6's protocol is Las Vegas.
func TestFindMaxReturnsTrueMax(t *testing.T) {
	rng := rngx.New(31)
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(40)
		e := lockstep.New(n, uint64(trial))
		vals := make([]int64, n)
		bestID, bestV := 0, int64(-1)
		for i := range vals {
			vals[i] = rng.Int63n(1 << 30)
			if vals[i] > bestV || (vals[i] == bestV && i > bestID) {
				bestID, bestV = i, vals[i]
			}
		}
		e.Advance(vals)
		rep, ok := protocol.FindMax(e, true)
		if !ok {
			t.Fatal("max not found")
		}
		if rep.Value != bestV {
			t.Fatalf("trial %d: found value %d, want %d", trial, rep.Value, bestV)
		}
	}
}

// TestTopMOrderAndCompleteness: TopM returns the m largest values in
// non-increasing order covering every id exactly once.
func TestTopMOrderAndCompleteness(t *testing.T) {
	rng := rngx.New(77)
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(20)
		m := 1 + rng.Intn(n)
		e := lockstep.New(n, uint64(trial)+1000)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = rng.Int63n(1000)
		}
		e.Advance(vals)
		reps := protocol.TopM(e, m)
		if len(reps) != m {
			t.Fatalf("TopM returned %d of %d", len(reps), m)
		}
		seen := map[int]bool{}
		for i, r := range reps {
			if seen[r.ID] {
				t.Fatal("duplicate id in TopM")
			}
			seen[r.ID] = true
			if i > 0 && r.Value > reps[i-1].Value {
				t.Fatal("TopM out of order")
			}
		}
		// The m-th value must dominate all unreturned values.
		floor := reps[m-1].Value
		for i, v := range vals {
			if !seen[i] && v > floor {
				t.Fatalf("value %d at %d missed by TopM (floor %d)", v, i, floor)
			}
		}
	}
}

// TestTopMWithTies: duplicate values are all found across runs.
func TestTopMWithTies(t *testing.T) {
	e := lockstep.New(6, 5)
	e.Advance([]int64{50, 50, 50, 10, 10, 5})
	reps := protocol.TopM(e, 3)
	if len(reps) != 3 {
		t.Fatalf("got %d reports", len(reps))
	}
	found := map[int]bool{}
	for _, r := range reps {
		if r.Value != 50 {
			t.Fatalf("expected the three 50s, got %+v", reps)
		}
		found[r.ID] = true
	}
	if !found[0] || !found[1] || !found[2] {
		t.Fatalf("tie group incomplete: %+v", reps)
	}
}

// TestFindMaxMessageScaling reproduces the O(log n) expectation of
// Lemma 2.6: mean messages grow at most ~c·ln n.
func TestFindMaxMessageScaling(t *testing.T) {
	means := map[int]float64{}
	for _, n := range []int{16, 64, 256, 1024} {
		var total int64
		const trials = 60
		for trial := 0; trial < trials; trial++ {
			e := lockstep.New(n, uint64(n*1000+trial))
			vals := make([]int64, n)
			r := rngx.New(uint64(trial) * 13)
			for i := range vals {
				vals[i] = r.Int63n(1 << 30)
			}
			e.Advance(vals)
			before := e.Counters().Snapshot()
			if _, ok := protocol.FindMax(e, true); !ok {
				t.Fatal("no max")
			}
			total += e.Counters().Snapshot().Sub(before).Total()
		}
		means[n] = float64(total) / trials
	}
	for n, mean := range means {
		bound := 10 * (math.Log(float64(n)) + 1)
		if mean > bound {
			t.Errorf("n=%d: mean %.1f messages exceeds O(log n) bound %.1f", n, mean, bound)
		}
	}
	t.Logf("FindMax mean messages: %v", means)
}

func TestTopMCapsAtN(t *testing.T) {
	e := lockstep.New(3, 9)
	e.Advance([]int64{5, 3, 1})
	reps := protocol.TopM(e, 10)
	if len(reps) != 3 {
		t.Errorf("TopM beyond n returned %d", len(reps))
	}
}
