// Package metrics provides the communication accounting used throughout the
// reproduction: message counters by kind and by channel (node→server,
// server→node unicast, broadcast), per-step round tracking for the model's
// polylog-round constraint, bit-size high-water marks, and summary
// statistics with text-table and CSV rendering for the experiment harness.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Channel classifies which primitive carried a message; each costs 1 unit.
type Channel uint8

const (
	// NodeToServer is a message from a node to the server.
	NodeToServer Channel = iota
	// ServerToNode is a unicast from the server to one node.
	ServerToNode
	// Broadcast is a server broadcast received by all nodes.
	Broadcast
	numChannels
)

// String implements fmt.Stringer.
func (c Channel) String() string {
	switch c {
	case NodeToServer:
		return "node→server"
	case ServerToNode:
		return "server→node"
	case Broadcast:
		return "broadcast"
	default:
		return fmt.Sprintf("Channel(%d)", uint8(c))
	}
}

// Counters accumulates communication cost. The zero value is ready to use.
type Counters struct {
	byChannel [numChannels]int64
	byKind    map[string]int64

	// Round accounting: the model allows polylogarithmically many rounds
	// of communication between consecutive time steps.
	roundsThisStep int64
	maxRoundsStep  int64
	steps          int64

	// maxBits tracks the largest message observed, for the size bound.
	maxBits int

	// indexFallbacks counts predicate-routed primitives (Sweep, Collect)
	// that had to take the full node scan because no index structure can
	// serve the predicate: tag predicates (HasTag — matches depend on
	// node-local tags the server does not index) and domain-covering value
	// intervals (e.g. AboveActive(-1)), where routing could prune nothing.
	// Violation sweeps no longer fall back: they are resolved from the
	// engines' filter-interval mirror (vindex.Mirror), so a quiet-step run
	// holds this counter flat (asserted by the quiet-step regression
	// tests). It is engine-side work accounting, not message cost: both
	// engines count identically (the decision is made from the predicate
	// alone), so cross-engine equivalence is preserved.
	indexFallbacks int64

	// Fault accounting (internal/faults and the topk facade's recovery
	// supervisor). These five counters stay zero on a fault-free run: the
	// engines themselves never touch them — the fault injector bills
	// droppedMsgs/dupMsgs/retries at the wrapped message layer, and the
	// facade bills resyncs/staleSteps from its recovery loop. Like
	// indexFallbacks they are layered accounting, not model message cost,
	// and both engines produce identical values under equal seeds and
	// fault plans (pinned by the faults conformance tests).
	droppedMsgs int64
	dupMsgs     int64
	retries     int64
	resyncs     int64
	staleSteps  int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{byKind: make(map[string]int64)}
}

// Reset returns the counters to the empty state while retaining the kind
// map's storage, so an engine Reset leaves no garbage behind. A reset
// counter set is indistinguishable from NewCounters() through the public
// API.
func (c *Counters) Reset() {
	c.byChannel = [numChannels]int64{}
	clear(c.byKind)
	c.roundsThisStep = 0
	c.maxRoundsStep = 0
	c.steps = 0
	c.maxBits = 0
	c.indexFallbacks = 0
	c.droppedMsgs = 0
	c.dupMsgs = 0
	c.retries = 0
	c.resyncs = 0
	c.staleSteps = 0
}

// Count records one message on channel c of the named kind with the given
// accounted bit size.
func (c *Counters) Count(ch Channel, kind string, bitSize int) {
	c.byChannel[ch]++
	if c.byKind == nil {
		c.byKind = make(map[string]int64)
	}
	c.byKind[kind]++
	if bitSize > c.maxBits {
		c.maxBits = bitSize
	}
}

// Rounds records that the current time step consumed r additional protocol
// rounds.
func (c *Counters) Rounds(r int64) { c.roundsThisStep += r }

// IndexFallback records that one predicate-routed primitive fell back to the
// full node scan because its predicate carries no usable value interval.
func (c *Counters) IndexFallback() { c.indexFallbacks++ }

// IndexFallbacks returns how many predicate-routed primitives took the
// full-scan fallback since construction or the last Reset.
func (c *Counters) IndexFallbacks() int64 { return c.indexFallbacks }

// DroppedMsg records that the fault layer lost one message of the given
// kind after exhausting any retries.
func (c *Counters) DroppedMsg() { c.droppedMsgs++ }

// DroppedMsgs returns how many messages the fault layer lost for good.
func (c *Counters) DroppedMsgs() int64 { return c.droppedMsgs }

// DupMsg records that the fault layer delivered one message twice.
func (c *Counters) DupMsg() { c.dupMsgs++ }

// DupMsgs returns how many duplicate deliveries the fault layer injected.
func (c *Counters) DupMsgs() int64 { return c.dupMsgs }

// Retry records one redelivery attempt of the reliability sublayer.
func (c *Counters) Retry() { c.retries++ }

// Retries returns how many redelivery attempts the reliability sublayer
// has made (successful or not).
func (c *Counters) Retries() int64 { return c.retries }

// Resync records one epoch resync: the server re-broadcasting filters and
// re-running the sweep after detecting divergence.
func (c *Counters) Resync() { c.resyncs++ }

// Resyncs returns how many epoch resyncs the recovery supervisor ran.
func (c *Counters) Resyncs() int64 { return c.resyncs }

// StaleStep records one committed step whose published output was not
// validated fresh (the monitor was degraded or still recovering).
func (c *Counters) StaleStep() { c.staleSteps++ }

// StaleSteps returns how many committed steps ended without a
// validated-fresh output.
func (c *Counters) StaleSteps() int64 { return c.staleSteps }

// EndStep closes the current time step's round accounting.
func (c *Counters) EndStep() {
	if c.roundsThisStep > c.maxRoundsStep {
		c.maxRoundsStep = c.roundsThisStep
	}
	c.roundsThisStep = 0
	c.steps++
}

// Total returns the total number of messages across all channels.
func (c *Counters) Total() int64 {
	var t int64
	for _, v := range c.byChannel {
		t += v
	}
	return t
}

// ByChannel returns the count on one channel.
func (c *Counters) ByChannel(ch Channel) int64 { return c.byChannel[ch] }

// ByKind returns the count of one message kind.
func (c *Counters) ByKind(kind string) int64 { return c.byKind[kind] }

// Kinds returns all recorded kinds, sorted.
func (c *Counters) Kinds() []string {
	ks := make([]string, 0, len(c.byKind))
	for k := range c.byKind {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// MaxRoundsPerStep returns the largest number of protocol rounds consumed by
// any single time step.
func (c *Counters) MaxRoundsPerStep() int64 {
	if c.roundsThisStep > c.maxRoundsStep {
		return c.roundsThisStep
	}
	return c.maxRoundsStep
}

// MaxBits returns the largest accounted message size seen, in bits.
func (c *Counters) MaxBits() int { return c.maxBits }

// Steps returns the number of completed time steps.
func (c *Counters) Steps() int64 { return c.steps }

// Snapshot returns a copy of the counters for later diffing.
func (c *Counters) Snapshot() Snapshot {
	s := Snapshot{
		ByChannel:      c.byChannel,
		ByKind:         make(map[string]int64, len(c.byKind)),
		MaxRounds:      c.MaxRoundsPerStep(),
		MaxBits:        c.maxBits,
		IndexFallbacks: c.indexFallbacks,
		DroppedMsgs:    c.droppedMsgs,
		DupMsgs:        c.dupMsgs,
		Retries:        c.retries,
		Resyncs:        c.resyncs,
		StaleSteps:     c.staleSteps,
	}
	for k, v := range c.byKind {
		s.ByKind[k] = v
	}
	return s
}

// Snapshot is an immutable copy of counter state.
type Snapshot struct {
	ByChannel [numChannels]int64
	ByKind    map[string]int64
	MaxRounds int64
	MaxBits   int
	// IndexFallbacks is the engine-side full-scan count (see
	// Counters.IndexFallback); it is work accounting, not message cost.
	IndexFallbacks int64
	// Fault accounting (see the matching Counters methods): zero on a
	// fault-free run.
	DroppedMsgs int64
	DupMsgs     int64
	Retries     int64
	Resyncs     int64
	StaleSteps  int64
}

// Total returns total messages in the snapshot.
func (s Snapshot) Total() int64 {
	var t int64
	for _, v := range s.ByChannel {
		t += v
	}
	return t
}

// Sub returns the message-count difference s - o (channel- and kind-wise).
func (s Snapshot) Sub(o Snapshot) Snapshot {
	d := Snapshot{
		ByKind:         make(map[string]int64),
		MaxRounds:      s.MaxRounds,
		MaxBits:        s.MaxBits,
		IndexFallbacks: s.IndexFallbacks - o.IndexFallbacks,
		DroppedMsgs:    s.DroppedMsgs - o.DroppedMsgs,
		DupMsgs:        s.DupMsgs - o.DupMsgs,
		Retries:        s.Retries - o.Retries,
		Resyncs:        s.Resyncs - o.Resyncs,
		StaleSteps:     s.StaleSteps - o.StaleSteps,
	}
	for i := range s.ByChannel {
		d.ByChannel[i] = s.ByChannel[i] - o.ByChannel[i]
	}
	for k, v := range s.ByKind {
		d.ByKind[k] = v - o.ByKind[k]
	}
	return d
}

// Summary holds basic statistics over a sample of float64 observations.
type Summary struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	Median, P90    float64
	ObservationSum float64
}

// Summarize computes a Summary of xs. An empty sample yields the zero value.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, x := range xs {
		s.ObservationSum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.ObservationSum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = quantile(sorted, 0.5)
	s.P90 = quantile(sorted, 0.9)
	return s
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	if i >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(i)
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// Table renders aligned text tables for experiment output.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Column returns the rendered cells of column i, or nil if out of range.
func (t *Table) Column(i int) []string {
	if i < 0 || i >= len(t.Headers) {
		return nil
	}
	out := make([]string, 0, len(t.rows))
	for _, row := range t.rows {
		if i < len(row) {
			out = append(out, row[i])
		} else {
			out = append(out, "")
		}
	}
	return out
}

// ColumnFloats parses column i as float64s; ok is false if any cell fails.
func (t *Table) ColumnFloats(i int) (vals []float64, ok bool) {
	cells := t.Column(i)
	if cells == nil {
		return nil, false
	}
	vals = make([]float64, len(cells))
	for j, c := range cells {
		v, err := strconv.ParseFloat(strings.TrimSpace(c), 64)
		if err != nil {
			return nil, false
		}
		vals[j] = v
	}
	return vals, true
}

func formatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (no quoting needed for our data).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
