package stream

import (
	"fmt"

	"topkmon/internal/filter"
)

// Climber is the adaptive adversary behind the Δ-dependence experiments
// (E3/E4/E9): k nodes sit on a fixed plateau near Top, fill nodes idle at
// the bottom, and one designated climber repeatedly ascends from LowBase by
// always jumping to one past the upper endpoint of its current filter —
// the worst case for separator-placement strategies. Every jump forces a
// violation, so an arithmetic-bisection monitor pays ~log₂(Top) violations
// per ascent while the Section 4 phase strategies pay ~log log Top.
//
// When the climber's filter cap reaches the plateau it overtakes the lowest
// plateau node (forcing a top-k change the offline optimum must also pay
// for), then demotes itself back to LowBase, completing a cycle.
type Climber struct {
	K    int   // plateau nodes (the stable top-k)
	Rest int   // idle low fill nodes
	Top  int64 // plateau level (Δ scale)

	LowBase int64
	climber int
	cur     []int64
	filters []filter.Interval

	// Cycles counts completed climb-overtake-demote cycles.
	Cycles int
}

// NewClimber builds the adversary; n = k + 1 + rest.
func NewClimber(k, rest int, top int64) *Climber {
	if k < 1 || rest < 1 {
		panic("stream: Climber needs k ≥ 1 and rest ≥ 1")
	}
	lowBase := int64(rest) + 2
	if top <= 4*lowBase {
		panic(fmt.Sprintf("stream: Climber plateau %d too low", top))
	}
	g := &Climber{K: k, Rest: rest, Top: top, LowBase: lowBase, climber: k}
	g.cur = make([]int64, k+1+rest)
	for i := 0; i < k; i++ {
		// Distinct plateau values top+2, top+4, …; the overtake value
		// top+3 slots between the two lowest without collision.
		g.cur[i] = top + 2*int64(k-i)
	}
	g.cur[k] = lowBase
	for i := k + 1; i < len(g.cur); i++ {
		g.cur[i] = int64(i - k) // 1, 2, …, rest < lowBase
	}
	return g
}

// Name implements Generator.
func (g *Climber) Name() string { return fmt.Sprintf("climber(top=%d,k=%d)", g.Top, g.K) }

// N implements Generator.
func (g *Climber) N() int { return g.K + 1 + g.Rest }

// ObserveFilters implements Adaptive.
func (g *Climber) ObserveFilters(filters []filter.Interval, _ []int) {
	g.filters = filters
}

// Next implements Generator.
func (g *Climber) Next(t int) []int64 {
	if t == 0 {
		return append([]int64(nil), g.cur...)
	}
	c := g.climber
	cap := int64(-1)
	if g.filters != nil && c < len(g.filters) {
		cap = g.filters[c].Hi
	}
	minTop := g.Top + 2 // the lowest plateau value
	switch {
	case g.cur[c] > g.Top:
		// Overtaken last step: complete the cycle by demoting.
		g.cur[c] = g.LowBase
		g.Cycles++
	case cap >= filter.Inf || cap+1 > 2*g.Top:
		// The monitor placed the climber on the unbounded output side
		// (or pushed the cap past the plateau): demote to end the cycle.
		g.cur[c] = g.LowBase
		g.Cycles++
	case cap+1 >= minTop:
		// The separator search is exhausted: overtake the lowest
		// plateau node decisively (top+3 sits between top+2 and top+4).
		g.cur[c] = minTop + 1
	case cap < g.cur[c]:
		// The filter already excludes the current value (mid-epoch churn);
		// hold still and let the monitor settle.
	default:
		g.cur[c] = cap + 1
	}
	return append([]int64(nil), g.cur...)
}
