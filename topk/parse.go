package topk

import (
	"fmt"
	"strconv"
	"strings"
)

// This file holds the textual option parsers shared by every frontend that
// configures a Monitor from strings — cmd/topkmon's flags, cmd/topkd's
// flags, and the HTTP frontend's per-tenant JSON configs (internal/serve).
// Keeping them here means one spelling of each option name across every
// surface.

// ParseEpsilon parses the approximation error ε from its "p/q" fraction
// form (e.g. "1/8"; "0/1" is the exact problem — see [Zero]).
func ParseEpsilon(s string) (Epsilon, error) {
	num, den, ok := strings.Cut(s, "/")
	if !ok {
		return Epsilon{}, fmt.Errorf("topk: eps must be p/q, got %q", s)
	}
	p, err1 := strconv.ParseInt(num, 10, 64)
	q, err2 := strconv.ParseInt(den, 10, 64)
	if err1 != nil || err2 != nil {
		return Epsilon{}, fmt.Errorf("topk: eps must be p/q, got %q", s)
	}
	return NewEpsilon(p, q)
}

// ParseEngine parses an [EngineKind] name: "lockstep" or "live".
func ParseEngine(s string) (EngineKind, error) {
	switch s {
	case "lockstep":
		return Lockstep, nil
	case "live":
		return Live, nil
	default:
		return 0, fmt.Errorf("topk: unknown engine %q (want lockstep|live)", s)
	}
}

// ParseAlgorithm parses an [Algorithm] name. It accepts the canonical
// String() forms plus the CLI's historical aliases ("topk" for
// topk-protocol, "exact-mid" for exact).
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "approx":
		return Approx, nil
	case "exact", "exact-mid":
		return Exact, nil
	case "topk", "topk-protocol":
		return TopKProtocol, nil
	case "dense":
		return Dense, nil
	case "half-eps":
		return HalfEps, nil
	case "naive":
		return Naive, nil
	case "mid-naive":
		return MidNaive, nil
	default:
		return 0, fmt.Errorf("topk: unknown algorithm %q", s)
	}
}

// ParseFaultPlan parses the textual fault-injection spec used by the CLIs:
// a comma list of drop=P, dup=P, delay=P, retries=N, and
// crash=NODE@FROM:UNTIL (repeatable), e.g.
//
//	drop=0.1,dup=0.05,crash=2@100:300,crash=5@500:700
//
// An empty spec returns (nil, nil): no fault layer.
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	if spec == "" {
		return nil, nil
	}
	plan := &FaultPlan{}
	for _, tok := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(tok), "=")
		if !ok {
			return nil, fmt.Errorf("topk: faults: token %q is not key=value", tok)
		}
		switch key {
		case "drop", "dup", "delay":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("topk: faults: %s=%q: %v", key, val, err)
			}
			switch key {
			case "drop":
				plan.Drop = p
			case "dup":
				plan.Dup = p
			case "delay":
				plan.Delay = p
			}
		case "retries":
			r, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("topk: faults: retries=%q: %v", val, err)
			}
			plan.Retries = r
		case "crash":
			node, window, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("topk: faults: crash=%q is not NODE@FROM:UNTIL", val)
			}
			from, until, ok := strings.Cut(window, ":")
			if !ok {
				return nil, fmt.Errorf("topk: faults: crash=%q is not NODE@FROM:UNTIL", val)
			}
			id, err1 := strconv.Atoi(node)
			lo, err2 := strconv.ParseInt(from, 10, 64)
			hi, err3 := strconv.ParseInt(until, 10, 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("topk: faults: crash=%q is not NODE@FROM:UNTIL", val)
			}
			plan.Crashes = append(plan.Crashes, Crash{Node: id, From: lo, Until: hi})
		default:
			return nil, fmt.Errorf("topk: faults: unknown key %q", key)
		}
	}
	return plan, nil
}
