package wal

import (
	"bytes"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"topkmon/topk"
)

func testRecords() []Record {
	return []Record{
		{Kind: KindConfig, Epoch: 1, Seed: 42, Config: []byte(`{"nodes":8,"k":2}`)},
		{Kind: KindBatch, Epoch: 1, Step: 1, Client: "c-1", Seq: 7,
			Batch: []topk.Update{{Node: 0, Value: 100}, {Node: 3, Value: 0}}},
		{Kind: KindBatch, Epoch: 1, Step: 2, Client: "", Seq: 0, Batch: nil},
		{Kind: KindDelete, Epoch: 1},
	}
}

// TestFrameRoundTrip: every record kind encodes to a frame that decodes
// back to the same record (modulo End), and the re-encode of the decoded
// prefix reproduces the input bytes exactly.
func TestFrameRoundTrip(t *testing.T) {
	var buf []byte
	want := testRecords()
	for i := range want {
		buf = AppendFrame(buf, &want[i])
	}
	recs, off := DecodePrefix(buf)
	if off != int64(len(buf)) {
		t.Fatalf("valid prefix %d, want %d", off, len(buf))
	}
	if len(recs) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(recs), len(want))
	}
	var re []byte
	for i := range recs {
		got := recs[i]
		got.End = 0
		// Batch nil-vs-empty is an encoding detail; normalize for compare.
		if len(got.Batch) == 0 {
			got.Batch = nil
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("record %d: %+v != %+v", i, got, want[i])
		}
		re = AppendFrame(re, &recs[i])
	}
	if !bytes.Equal(re, buf) {
		t.Fatal("re-encoding the decoded prefix diverged from the input")
	}
}

// TestDecodePrefixTornTail: every strict prefix of a valid log decodes to
// exactly the records whose frames fit, with the truncation point at the
// last complete frame.
func TestDecodePrefixTornTail(t *testing.T) {
	var buf []byte
	var ends []int64
	for _, r := range testRecords() {
		buf = AppendFrame(buf, &r)
		ends = append(ends, int64(len(buf)))
	}
	for cut := 0; cut <= len(buf); cut++ {
		recs, off := DecodePrefix(buf[:cut])
		wantN := 0
		for _, e := range ends {
			if e <= int64(cut) {
				wantN++
			}
		}
		if len(recs) != wantN {
			t.Fatalf("cut %d: %d records, want %d", cut, len(recs), wantN)
		}
		if wantN > 0 && off != ends[wantN-1] {
			t.Fatalf("cut %d: truncation point %d, want %d", cut, off, ends[wantN-1])
		}
		if wantN == 0 && off != 0 {
			t.Fatalf("cut %d: truncation point %d, want 0", cut, off)
		}
	}
}

// TestDecodePrefixCorruption: a flipped bit anywhere inside a frame kills
// that frame and everything after it, never an earlier one.
func TestDecodePrefixCorruption(t *testing.T) {
	var buf []byte
	var ends []int64
	for _, r := range testRecords() {
		buf = AppendFrame(buf, &r)
		ends = append(ends, int64(len(buf)))
	}
	for pos := 0; pos < len(buf); pos++ {
		flip := append([]byte(nil), buf...)
		flip[pos] ^= 0x10
		recs, off := DecodePrefix(flip)
		// The flipped byte lives in frame idx; all earlier frames survive.
		idx := 0
		for idx < len(ends) && int64(pos) >= ends[idx] {
			idx++
		}
		if len(recs) < idx {
			t.Fatalf("flip@%d: lost record before the corruption (%d < %d)", pos, len(recs), idx)
		}
		if off > int64(len(flip)) {
			t.Fatalf("flip@%d: truncation point %d beyond input", pos, off)
		}
		// Whatever survived must re-encode to the claimed prefix.
		var re []byte
		for i := range recs {
			re = AppendFrame(re, &recs[i])
		}
		if !bytes.Equal(re, flip[:off]) {
			t.Fatalf("flip@%d: surviving prefix not canonical", pos)
		}
	}
}

// TestNonCanonicalRejected: a payload using a non-minimal varint decodes
// under binary.Uvarint but must be rejected as corruption, or the
// round-trip property would break.
func TestNonCanonicalRejected(t *testing.T) {
	rec := Record{Kind: KindDelete, Epoch: 1}
	frame := AppendFrame(nil, &rec)
	// Rebuild the frame with epoch 1 encoded as the two-byte varint 0x81
	// 0x00 instead of the minimal 0x01.
	payload := []byte{byte(KindDelete), 0x81, 0x00}
	bad := make([]byte, 0, frameHeader+len(payload))
	bad = append(bad, 0, 0, 0, 0, 0, 0, 0, 0)
	bad = append(bad, payload...)
	putFrameHeader(bad, payload)
	if len(bad) <= len(frame) {
		t.Fatal("test setup: non-minimal frame not longer")
	}
	recs, off := DecodePrefix(bad)
	if len(recs) != 0 || off != 0 {
		t.Fatalf("non-canonical frame accepted: %d records, offset %d", len(recs), off)
	}
}

// TestStoreLifecycle drives one tenant through the store: create, append,
// close, reopen (with a torn tail truncated), append more, compact,
// remove.
func TestStoreLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	l, err := s.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("x"); err == nil {
		t.Fatal("Create clobbered an existing log")
	}
	cfg := Record{Kind: KindConfig, Epoch: 1, Seed: 9, Config: []byte(`{}`)}
	if _, err := l.Append(&cfg); err != nil {
		t.Fatal(err)
	}
	b1 := Record{Kind: KindBatch, Epoch: 1, Step: 1, Batch: []topk.Update{{Node: 1, Value: 5}}}
	end, err := l.Append(&b1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: a half-written frame after the last good record.
	path := filepath.Join(dir, "x.wal")
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write([]byte{0xee, 0xff, 0x00})
	f.Close()

	s2, err := Open(Options{Dir: dir, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	names, err := s2.List()
	if err != nil || len(names) != 1 || names[0] != "x" {
		t.Fatalf("List = %v, %v", names, err)
	}
	l2, recs, snap, err := s2.OpenExisting("x")
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil {
		t.Fatalf("unexpected snapshot %+v", snap)
	}
	if len(recs) != 2 || recs[1].Step != 1 {
		t.Fatalf("reopened records: %+v", recs)
	}
	if fi, _ := os.Stat(path); fi.Size() != end {
		t.Fatalf("torn tail not truncated: size %d, want %d", fi.Size(), end)
	}
	b2 := Record{Kind: KindBatch, Epoch: 1, Step: 2}
	if _, err := l2.Append(&b2); err != nil {
		t.Fatal(err)
	}
	if err := l2.Sync(); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if recs, off := DecodePrefix(data); len(recs) != 3 || off != int64(len(data)) {
		t.Fatalf("after append: %d records, %d/%d valid", len(recs), off, len(data))
	}

	// Compact to a fresh epoch: one record, smaller file.
	fresh := Record{Kind: KindConfig, Epoch: 2, Seed: 10, Config: []byte(`{}`)}
	l3, err := s2.Compact("x", &fresh)
	if err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(path)
	if recs, _ := DecodePrefix(data); len(recs) != 1 || recs[0].Epoch != 2 {
		t.Fatalf("after compact: %+v", recs)
	}
	if _, err := l3.Append(&Record{Kind: KindBatch, Epoch: 2, Step: 1}); err != nil {
		t.Fatal(err)
	}

	if err := s2.Remove("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("Remove left the log file")
	}
	if names, _ := s2.List(); len(names) != 0 {
		t.Fatalf("List after Remove = %v", names)
	}
}

// TestSnapshotTripwire: OpenExisting fails with ErrLostData when the valid
// prefix is shorter than the snapshot's synced offset, and succeeds when
// the snapshot is honest.
func TestSnapshotTripwire(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	l, err := s.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	end, err := l.Append(&Record{Kind: KindConfig, Epoch: 1, Seed: 1, Config: []byte(`{}`)})
	if err != nil {
		t.Fatal(err)
	}
	end2, err := l.Append(&Record{Kind: KindBatch, Epoch: 1, Step: 1})
	if err != nil {
		t.Fatal(err)
	}
	snap := &Snapshot{Epoch: 1, Steps: 1, Offset: end2, Seed: 1, Config: []byte(`{}`),
		Watermarks: map[string]uint64{"a": 3}}
	if err := s.WriteSnapshot("x", snap); err != nil {
		t.Fatal(err)
	}
	l.Close()

	got, err := s.ReadSnapshot("x")
	if err != nil || got.Offset != end2 || got.Watermarks["a"] != 3 {
		t.Fatalf("ReadSnapshot = %+v, %v", got, err)
	}

	// Honest log: reopen fine.
	s2, _ := Open(Options{Dir: dir, Policy: SyncNever})
	defer s2.Close()
	if _, _, _, err := s2.OpenExisting("x"); err != nil {
		t.Fatal(err)
	}
	s2.Close()

	// Truncate below the vouched offset: boot must refuse.
	full, _ := os.ReadFile(filepath.Join(dir, "x.wal"))
	os.WriteFile(filepath.Join(dir, "x.wal"), full[:end], 0o644)
	s3, _ := Open(Options{Dir: dir, Policy: SyncNever})
	defer s3.Close()
	if _, _, _, err := s3.OpenExisting("x"); !errors.Is(err, ErrLostData) {
		t.Fatalf("OpenExisting on a shrunk log = %v, want ErrLostData", err)
	}
}

// TestParsePolicy covers the flag surface.
func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{"always": SyncAlways, "Interval": SyncInterval, "NEVER": SyncNever} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
		if got.String() == "" {
			t.Errorf("Policy(%v).String() empty", got)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Error("ParsePolicy accepted garbage")
	}
}

// TestClosedAndBrokenLog: appends after Close refuse with ErrLogClosed;
// Close is idempotent.
func TestClosedAndBrokenLog(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(Options{Dir: dir, Policy: SyncNever})
	defer s.Close()
	l, err := s.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
	if _, err := l.Append(&Record{Kind: KindDelete, Epoch: 1}); !errors.Is(err, ErrLogClosed) {
		t.Fatalf("append after close = %v", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrLogClosed) {
		t.Fatalf("sync after close = %v", err)
	}
}

// putFrameHeader stamps length+CRC over a hand-built frame (test helper
// for constructing deliberately non-canonical payloads).
func putFrameHeader(frame, payload []byte) {
	le := func(off int, v uint32) {
		frame[off] = byte(v)
		frame[off+1] = byte(v >> 8)
		frame[off+2] = byte(v >> 16)
		frame[off+3] = byte(v >> 24)
	}
	le(0, uint32(len(payload)))
	le(4, crc32.Checksum(payload, castagnoli))
}
