# Build/test/benchmark entry points.
#
# Benchmark workflow (the BENCH_*.json trajectory): see BENCH.md for how to
# read the snapshots and their caveats. In short:
#   `make bench` runs the full root benchmark suite and captures the
#   test2json event stream in $(BENCH_OUT) (default BENCH_local.json)
#   alongside the human-readable console lines. Committed snapshots record
#   the trajectory across PRs — BENCH_PR1.json (lockstep/oracle zero-alloc
#   baseline), BENCH_PR2.json (live-engine batching + engine Reset reuse),
#   BENCH_PR3.json (value-indexed sharded node state: the σ-scaling table
#   from `make bench-selectivity`), BENCH_PR7.json (filter-interval mirror:
#   the violation-sweep before/after from `make bench-violation`) — and
#   future PRs diff against them with benchstat or jq, e.g.:
#     jq -r 'select(.Action=="output") | .Output' BENCH_PR2.json | grep Benchmark
#   `make bench-smoke` is the CI-speed variant (one iteration per
#   benchmark, alloc regressions still fail loudly via the *Allocs tests).
#   `make bench-selectivity` reruns only BenchmarkSweepSelectivity — the
#   σ-vs-n scaling of the value-indexed Sweep/Collect — into $(BENCH_SEL_OUT).
#
# `make check` = build + fmt-check + vet + api-check + test, the same gate
# CI runs.

GO ?= go
BENCHTIME ?= 300ms
BENCH_OUT ?= BENCH_local.json
BENCH_SEL_OUT ?= BENCH_local_selectivity.json
BENCH_VIO_OUT ?= BENCH_local_violation.json
BENCH_SERVE_OUT ?= BENCH_local_serve.json
BENCH_WAL_OUT ?= BENCH_local_wal.json
BENCH_SKETCH_OUT ?= BENCH_local_sketch.json
SERVE_ADDR ?= 127.0.0.1:7070

.PHONY: all build fmt-check vet api-check test race fuzz check cover bench bench-smoke bench-selectivity bench-violation bench-sketch serve bench-serve bench-wal smoke-crash

all: check

build:
	$(GO) build ./...

# fmt-check fails (listing the files) if any file needs gofmt.
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "files need gofmt:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# api-check enforces the public-API boundary: cmd/ and examples/ consume
# the embeddable topk package and must not import internal/... directly.
# One sanctioned exception: cmd/topkd may import topkmon/internal/serve
# (the HTTP frontend's tenant pool + handlers, factored out for socketless
# testing); in exchange, internal/serve itself may import only
# internal/wal (its durability layer) beyond the public topk facade, and
# internal/wal in turn imports only topk — so the whole server path still
# consumes the supported API. Two sketch-layer rules complete the map:
# internal/sketch is a stdlib-only leaf (no module imports at all), and
# the public topk/items layer consumes only topk + internal/sketch. The
# topk boundary tests pin the same rules inside `go test ./...`.
api-check:
	@leaks=$$($(GO) list -f '{{.ImportPath}}: {{join .Imports " "}}' ./cmd/... ./examples/... \
		| grep 'topkmon/internal' \
		| grep -v '^topkmon/cmd/topkd:' || true); \
	if [ -n "$$leaks" ]; then \
		echo "internal imports leaked into public entry points:"; \
		echo "$$leaks"; exit 1; \
	fi
	@topkd=$$($(GO) list -f '{{join .Imports "\n"}}' ./cmd/topkd \
		| grep 'topkmon/internal' | grep -v '^topkmon/internal/serve$$' || true); \
	if [ -n "$$topkd" ]; then \
		echo "cmd/topkd may import only topkmon/internal/serve, but imports:"; \
		echo "$$topkd"; exit 1; \
	fi
	@serveleaks=$$($(GO) list -f '{{join .Imports "\n"}}' ./internal/serve \
		| grep 'topkmon/internal' | grep -v '^topkmon/internal/wal$$' || true); \
	if [ -n "$$serveleaks" ]; then \
		echo "internal/serve may only consume topk and internal/wal, but imports:"; \
		echo "$$serveleaks"; exit 1; \
	fi
	@walleaks=$$($(GO) list -f '{{join .Imports "\n"}}' ./internal/wal \
		| grep 'topkmon/internal' || true); \
	if [ -n "$$walleaks" ]; then \
		echo "internal/wal may only consume the public topk facade, but imports:"; \
		echo "$$walleaks"; exit 1; \
	fi
	@sketchleaks=$$($(GO) list -f '{{join .Imports "\n"}}' ./internal/sketch \
		| grep '^topkmon' || true); \
	if [ -n "$$sketchleaks" ]; then \
		echo "internal/sketch must stay a stdlib-only leaf, but imports:"; \
		echo "$$sketchleaks"; exit 1; \
	fi
	@itemsleaks=$$($(GO) list -f '{{join .Imports "\n"}}' ./topk/items \
		| grep '^topkmon' | grep -v '^topkmon/topk$$' | grep -v '^topkmon/internal/sketch$$' || true); \
	if [ -n "$$itemsleaks" ]; then \
		echo "topk/items may only consume topk and internal/sketch, but imports:"; \
		echo "$$itemsleaks"; exit 1; \
	fi

test:
	$(GO) test ./...

# race runs the whole module under the race detector (short mode bounds the
# heavy property suites); CI runs the same job.
race:
	$(GO) test -race -short ./...

# fuzz gives the seeded fuzz targets a short randomized session each — the
# interval algebra, the Pred.Bounds value-routing contract, the
# filter-interval mirror's no-desync obligation under fault injection, the
# HTTP frontend's all-or-nothing batch-decode path, the WAL decoder's
# torn-write obligations (no panic, exact canonical prefix, idempotent
# truncation) on arbitrary bytes, and the streaming summaries' estimate
# invariants (Space-Saving/Misra-Gries one-sided bounds, Count-Min
# never-under-estimates, Reset replay identity) on arbitrary op tapes.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -fuzz FuzzIntervalContainment -fuzztime $(FUZZTIME) ./internal/filter/
	$(GO) test -fuzz FuzzPredBounds -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) test -fuzz FuzzFilterMirror -fuzztime $(FUZZTIME) ./internal/lockstep/
	$(GO) test -fuzz FuzzBatchDecode -fuzztime $(FUZZTIME) ./internal/serve/
	$(GO) test -fuzz FuzzWALDecode -fuzztime $(FUZZTIME) ./internal/wal/
	$(GO) test -fuzz FuzzSpaceSaving -fuzztime $(FUZZTIME) ./internal/sketch/
	$(GO) test -fuzz FuzzCountMin -fuzztime $(FUZZTIME) ./internal/sketch/

# cover prints per-package statement coverage for the engine-core packages
# the violation-routing test matrix concentrates on — the index + mirror,
# both engines, and the fault layer — plus the sketch leaf the item layer
# stands on. CI publishes the same table.
cover:
	$(GO) test -cover ./internal/vindex/ ./internal/lockstep/ ./internal/live/ ./internal/faults/ ./internal/sketch/

check: build fmt-check vet api-check test

# bench runs the full root benchmark suite and captures machine-readable
# JSON (test2json event stream) in $(BENCH_OUT) alongside the human-readable
# console output — the format future PRs diff with benchstat / jq. Every
# run is stamped with a "bench-env:" line (TestMain in benchenv_test.go)
# recording go version, GOOS/GOARCH, GOMAXPROCS, NumCPU, and the live
# engine's default worker-shard count, so multi-core claims stay
# attributable when CI hardware changes.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) -json . > $(BENCH_OUT)
	@grep -o '"Output":"Benchmark[^"]*"' $(BENCH_OUT) | sed -e 's/^"Output":"//' -e 's/"$$//' -e 's/\\t/\t/g' -e 's/\\n//'
	@echo "wrote $(BENCH_OUT)"

# bench-smoke is the CI-speed variant: one iteration per benchmark.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem .

# bench-selectivity emits the σ-scaling table of the value-indexed engines
# (BenchmarkSweepSelectivity: collect/sweep latency vs σ at fixed n, vs n at
# fixed σ, and the full-scan fallbacks) as test2json into $(BENCH_SEL_OUT).
# The committed snapshot of this table — annotated with environment and
# before/after context — is BENCH_PR3.json. See BENCH.md.
bench-selectivity:
	$(GO) test -run='^$$' -bench='^BenchmarkSweepSelectivity$$' -benchmem \
		-benchtime=$(BENCHTIME) -json . > $(BENCH_SEL_OUT)
	@grep -o '"Output":"Benchmark[^"]*"' $(BENCH_SEL_OUT) | sed -e 's/^"Output":"//' -e 's/"$$//' -e 's/\\t/\t/g' -e 's/\\n//'
	@echo "wrote $(BENCH_SEL_OUT)"

# bench-violation emits the violation-sweep before/after table
# (BenchmarkViolationSweep: the filter-interval mirror vs. the FullScan
# ablation, quiet and one-violator, at n=4096 and n=16384) as test2json into
# $(BENCH_VIO_OUT). The committed snapshot of this table is BENCH_PR7.json.
# See BENCH.md.
bench-violation:
	$(GO) test -run='^$$' -bench='^BenchmarkViolationSweep$$' -benchmem \
		-benchtime=$(BENCHTIME) -json . > $(BENCH_VIO_OUT)
	@grep -o '"Output":"Benchmark[^"]*"' $(BENCH_VIO_OUT) | sed -e 's/^"Output":"//' -e 's/"$$//' -e 's/\\t/\t/g' -e 's/\\n//'
	@echo "wrote $(BENCH_VIO_OUT)"

# bench-sketch emits the sketch-layer tables: the summaries' hot paths
# (BenchmarkSketchObserve/BenchmarkSketchHeavy — Observe stays 0 allocs/op),
# one committed step of the item-monitoring layer (BenchmarkItemsStep), and
# the E13 recall-vs-summary-size run (BenchmarkE13HeavyHitters), as
# test2json into $(BENCH_SKETCH_OUT). The committed snapshot of this table
# is BENCH_PR10.json. See BENCH.md.
bench-sketch:
	$(GO) test -run='^$$' -bench='^(BenchmarkSketchObserve|BenchmarkSketchHeavy|BenchmarkItemsStep|BenchmarkE13HeavyHitters)$$' -benchmem \
		-benchtime=$(BENCHTIME) -json . > $(BENCH_SKETCH_OUT)
	@grep -o '"Output":"Benchmark[^"]*"' $(BENCH_SKETCH_OUT) | sed -e 's/^"Output":"//' -e 's/"$$//' -e 's/\\t/\t/g' -e 's/\\n//'
	@echo "wrote $(BENCH_SKETCH_OUT)"

# serve runs the multi-tenant HTTP frontend on $(SERVE_ADDR) with the
# stock per-server defaults (override via topkd flags, see cmd/topkd).
serve:
	$(GO) run ./cmd/topkd -addr $(SERVE_ADDR)

# bench-serve measures the served path end to end: boot topkd, drive it
# with the closed-loop load generator (thousands of client goroutines ×
# multiple tenants), and capture throughput + latency percentiles + the
# final per-tenant /cost scrape into $(BENCH_SERVE_OUT). The loadgen exits
# nonzero on any request error or any silent-invalid tenant (Check failed
# while Health still reported Fresh), so this target doubles as an
# integration gate. The committed snapshot of this table is BENCH_PR8.json.
bench-serve:
	$(GO) build -o /tmp/topkd ./cmd/topkd
	$(GO) build -o /tmp/topkd-loadgen ./internal/tools/loadgen
	@/tmp/topkd -addr $(SERVE_ADDR) & pid=$$!; \
	/tmp/topkd-loadgen -addr http://$(SERVE_ADDR) -tenants 8 -clients 256 \
		-requests 400 -batch 16 -out $(BENCH_SERVE_OUT); status=$$?; \
	kill $$pid 2>/dev/null; \
	exit $$status
	@echo "wrote $(BENCH_SERVE_OUT)"

# bench-wal measures what durability costs: per-batch ingest under each
# fsync policy vs. the volatile baseline (BenchmarkDurableCommit — the
# steady path stays zero-alloc) and boot-time replay vs. log length
# (BenchmarkRecovery — the curve that motivates snapshot compaction).
# The committed snapshot of this table is BENCH_PR9.json. See BENCH.md.
bench-wal:
	$(GO) test -run='^$$' -bench='^(BenchmarkDurableCommit|BenchmarkRecovery)$$' -benchmem \
		-benchtime=$(BENCHTIME) -json ./internal/serve/ > $(BENCH_WAL_OUT)
	@grep -o '"Output":"Benchmark[^"]*"' $(BENCH_WAL_OUT) | sed -e 's/^"Output":"//' -e 's/"$$//' -e 's/\\t/\t/g' -e 's/\\n//'
	@echo "wrote $(BENCH_WAL_OUT)"

# smoke-crash is the durability layer's end-to-end gate: boot topkd with a
# data dir, drive it, SIGKILL it mid-load, restart on the same dir, and
# assert every tenant recovers Fresh with no silent-invalid verdict and no
# lost acked batch — then re-drive the recovered server under loadgen's
# exactly-once accounting. CI runs the same script (crash-smoke job).
smoke-crash:
	sh scripts/crash_smoke.sh
