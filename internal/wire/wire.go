// Package wire defines the message vocabulary exchanged between the server
// and the nodes, the broadcastable predicates and filter rules, and bit-size
// accounting used to check the model's message-size constraint (messages may
// carry at most O(log n + log Δ) bits).
//
// Everything here is a pure value: Report, Pred, and FilterRule contain no
// slices or maps, so engines may copy them freely into reused batch buffers
// and protocols may keep one FilterRule and mutate it between broadcasts
// (the engines guarantee a broadcast rule is applied — or copied — before
// BroadcastRule returns; see the contract on cluster.Cluster). This
// copy-by-value property is what the engines' zero-allocation steady state
// is built on.
package wire

import (
	"fmt"
	"math"
	"math/bits"

	"topkmon/internal/filter"
)

// Kind enumerates message types.
type Kind uint8

const (
	// KindExistenceReport is a node → server message sent during an
	// EXISTENCE sweep round; carries the node id, its value, and (for
	// violation sweeps) the violation direction.
	KindExistenceReport Kind = iota
	// KindHalt is the server broadcast terminating an EXISTENCE sweep.
	KindHalt
	// KindProbeRequest asks one node for its value.
	KindProbeRequest
	// KindProbeReply answers a probe with (id, value).
	KindProbeReply
	// KindCollect is a broadcast asking all nodes matching a predicate to
	// report their values.
	KindCollect
	// KindCollectReply is a node's answer to a collect.
	KindCollectReply
	// KindSetFilter assigns one node its filter (unicast).
	KindSetFilter
	// KindFilterRule broadcasts a rule from which every node derives its
	// own filter from its locally-known tags.
	KindFilterRule
	// KindTag changes one node's tag (unicast).
	KindTag
	// KindMaxFindInit resets max-find participation (broadcast).
	KindMaxFindInit
	// KindMaxFindRaise broadcasts a new best (value, holder) pair;
	// nodes at or below it deactivate.
	KindMaxFindRaise
	// KindMaxFindExclude broadcasts the id of a found maximum so that it
	// sits out subsequent max-find runs (the paper's identifier-based
	// tie-breaking / exclusion when computing the k+1 largest values).
	KindMaxFindExclude
	numKinds
)

var kindNames = [numKinds]string{
	"existence-report", "halt", "probe-request", "probe-reply",
	"collect", "collect-reply", "set-filter", "filter-rule", "tag",
	"maxfind-init", "maxfind-raise", "maxfind-exclude",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// NumKinds is the number of distinct message kinds.
const NumKinds = int(numKinds)

// Tag labels a node with its protocol-set membership. Tags are node-local
// state: a broadcast filter rule maps each tag to an interval, so one
// broadcast re-filters the whole cluster.
type Tag uint8

// Tags used by the protocols. Their meaning follows Section 5:
// V1 must be in any optimal output, V3 cannot be, V2 is undecided; S1/S2
// mark V2 nodes observed above u_r / below ℓ_r respectively.
const (
	TagNone Tag = iota
	TagOut      // member of the current output F(t) (used by two-filter protocols)
	TagRest     // non-member
	TagV1
	TagV2 // V2 \ (S1 ∪ S2)
	TagV2S1
	TagV2S2
	TagV2S12 // V2 ∩ S1 ∩ S2 (filter assigned only inside SUBPROTOCOL)
	TagV3
	NumTags
)

var tagNames = [NumTags]string{
	"none", "out", "rest", "V1", "V2", "V2∩S1", "V2∩S2", "V2∩S1∩S2", "V3",
}

// String implements fmt.Stringer.
func (t Tag) String() string {
	if int(t) < len(tagNames) {
		return tagNames[t]
	}
	return fmt.Sprintf("Tag(%d)", uint8(t))
}

// PredKind enumerates broadcastable node predicates: each is decidable from
// node-local state plus the O(1) parameters carried by the predicate, so
// announcing one costs a single broadcast.
type PredKind uint8

const (
	// PredViolating matches nodes outside their filter. The scheduled
	// per-step violation sweep uses it implicitly (no broadcast needed).
	PredViolating PredKind = iota
	// PredAboveActive matches max-find-active nodes with value > X.
	PredAboveActive
	// PredInRange matches nodes with value in [X, Y].
	PredInRange
	// PredHasTag matches nodes whose tag equals Tag.
	PredHasTag
)

// Pred is a broadcastable predicate over node-local state.
type Pred struct {
	Kind PredKind
	X    int64
	Y    int64
	Tag  Tag
}

// Bounds returns the value interval a matching node's value must lie in —
// the contract the engines' value-bucket routing is built on (see
// internal/vindex): when ok is true, a node whose value is outside [lo, hi]
// can never match p, so Sweep/Collect may restrict their scan to the nodes
// plausibly in range. The interval is a NECESSARY condition only —
// candidates still need a per-node Match (bucket routing visits supersets,
// and PredAboveActive additionally requires max-find activity). ok is false
// for predicates decided by non-value node state — PredViolating (per-node
// filters) and PredHasTag (tags). PredViolating is nevertheless routable:
// filters are server-assigned, so the engines resolve it from their
// filter-interval mirror (vindex.Mirror) instead of these bounds; only
// PredHasTag (and domain-covering intervals) still take the full node
// scan.
func (p Pred) Bounds() (lo, hi int64, ok bool) {
	switch p.Kind {
	case PredInRange:
		return p.X, p.Y, true
	case PredAboveActive:
		if p.X == math.MaxInt64 {
			return 1, 0, true // nothing exceeds X: empty interval
		}
		return p.X + 1, math.MaxInt64, true
	default:
		return 0, math.MaxInt64, false
	}
}

// Violating returns the violation predicate.
func Violating() Pred { return Pred{Kind: PredViolating} }

// AboveActive returns the max-find predicate "active and value > x".
func AboveActive(x int64) Pred { return Pred{Kind: PredAboveActive, X: x} }

// InRange returns the predicate "value ∈ [lo, hi]".
func InRange(lo, hi int64) Pred { return Pred{Kind: PredInRange, X: lo, Y: hi} }

// HasTag returns the predicate "tag == t".
func HasTag(t Tag) Pred { return Pred{Kind: PredHasTag, Tag: t} }

// FilterRule maps tags to filter intervals and may additionally rename tags
// (e.g. "S2 disbands: every V2∩S2 node becomes plain V2"). Broadcasting one
// rule lets every node first retag itself and then derive its own filter;
// rules carry O(1) intervals and tag pairs, so their bit size respects the
// model's message bound.
type FilterRule struct {
	ByTag [NumTags]filter.Interval
	// Set marks which tags the rule defines; nodes with an unset tag keep
	// their current filter.
	Set [NumTags]bool
	// Retag maps an old tag to a new one, applied before filter lookup.
	Retag    [NumTags]Tag
	RetagSet [NumTags]bool
}

// NewFilterRule returns an empty rule.
func NewFilterRule() *FilterRule { return &FilterRule{} }

// With adds a tag → interval mapping and returns the rule for chaining.
func (r *FilterRule) With(t Tag, iv filter.Interval) *FilterRule {
	r.ByTag[t] = iv
	r.Set[t] = true
	return r
}

// WithRetag renames tag from → to before filter lookup.
func (r *FilterRule) WithRetag(from, to Tag) *FilterRule {
	r.Retag[from] = to
	r.RetagSet[from] = true
	return r
}

// Apply returns the new tag and filter for a node currently tagged t with
// filter cur.
func (r *FilterRule) Apply(t Tag, cur filter.Interval) (Tag, filter.Interval) {
	if r == nil {
		return t, cur
	}
	if r.RetagSet[t] {
		t = r.Retag[t]
	}
	if r.Set[t] {
		cur = r.ByTag[t]
	}
	return t, cur
}

// Lookup returns the interval for tag t, if defined.
func (r *FilterRule) Lookup(t Tag) (filter.Interval, bool) {
	if r == nil || !r.Set[t] {
		return filter.Interval{}, false
	}
	return r.ByTag[t], true
}

// Count returns the number of tags the rule defines.
func (r *FilterRule) Count() int {
	n := 0
	for _, s := range r.Set {
		if s {
			n++
		}
	}
	return n
}

// Report is a node → server value report.
type Report struct {
	ID    int
	Value int64
	Dir   filter.Direction
}

// BitSize helpers: the model requires message size ≤ c·(log n + log Δ).
// We account ids with ⌈log₂ n⌉ bits, values with ⌈log₂(Δ+1)⌉ bits, and O(1)
// bits of framing per message.

const frameBits = 8 // kind + direction + round framing

// IDBits returns the bits needed for a node id among n nodes.
func IDBits(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// ValueBits returns the bits needed for a value bounded by maxV.
func ValueBits(maxV int64) int {
	if maxV <= 1 {
		return 1
	}
	return bits.Len64(uint64(maxV))
}

// MsgBits returns the accounted bit size of one message of the given kind,
// in a system of n nodes and value bound maxV.
func MsgBits(k Kind, n int, maxV int64) int {
	id, val := IDBits(n), ValueBits(maxV)
	switch k {
	case KindExistenceReport, KindProbeReply, KindCollectReply:
		return frameBits + id + val
	case KindHalt, KindMaxFindInit:
		return frameBits
	case KindProbeRequest, KindTag:
		return frameBits + id
	case KindCollect:
		return frameBits + 2*val
	case KindSetFilter:
		return frameBits + id + 2*val
	case KindFilterRule:
		// ≤ NumTags interval endpoints; still O(log Δ) total.
		return frameBits + 2*val*int(NumTags)
	case KindMaxFindRaise:
		return frameBits + id + val
	case KindMaxFindExclude:
		return frameBits + id
	default:
		return frameBits
	}
}
