package topkmon

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"topkmon/internal/live"
)

// TestMain stamps the execution environment into every test/benchmark run
// of the root package — and therefore into every BENCH_*.json `make bench`
// captures (the test2json stream records stdout as Output events). The
// ROADMAP's multi-core claims (experiment fan-out ≥2× on multi-core, the
// live engine's multi-shard throughput) are only attributable when each
// snapshot records what hardware produced it: gomaxprocs/numcpu identify
// the parallelism available, and live-default-shards is the worker-shard
// count live.New uses when WithShards is not given (live.DefaultShards,
// clamped to n per engine).
func TestMain(m *testing.M) {
	fmt.Printf("bench-env: go=%s goos=%s goarch=%s gomaxprocs=%d numcpu=%d live-default-shards=%d\n",
		runtime.Version(), runtime.GOOS, runtime.GOARCH,
		runtime.GOMAXPROCS(0), runtime.NumCPU(), live.DefaultShards())
	os.Exit(m.Run())
}
