// Package items layers heavy-hitter ITEM monitoring on top of the node
// monitor: m logical items are observed as (node, item, count) events on n
// distributed nodes, each node summarises its local substream in a
// streaming sketch (internal/sketch), and the per-item sketch estimates
// feed a topk.Monitor whose "nodes" are the items — so the full machinery
// of the paper's ε-Top-k protocols (filters, violation handling, cost
// accounting, Check) tracks the top-k ITEMS end to end.
//
// # Aggregation choice: per-item, not per-(node,item)
//
// The monitored scalar for item j is the SUM over all n nodes of node i's
// sketch estimate of j, and the inner monitor runs over m item-streams.
// The alternative — one monitored stream per (node, item) pair — was
// rejected: its output is pair ids that still need a second aggregation
// to answer "which items are hot", it cannot see items that are globally
// heavy but locally light everywhere (each pair stream stays small), and
// its monitor state scales with n·m instead of m. With per-item
// aggregation the inner monitor's output IS the answer (item ids), and
// its size is independent of the node count.
//
// Each committed step, every node reports its sketch's current heavy
// list; the union of those lists (plus nothing else) is re-aggregated and
// pushed as one batch. Items outside every heavy list keep their previous
// pushed value — safe because counts are monotone non-decreasing, so a
// stale value only under-states an item that, by not being on any node's
// heavy list, is bounded below the per-node error bounds anyway. The
// recall harness (internal/stream/items + the E-table experiment)
// measures the end-to-end effect of both approximations — sketch error
// and stale non-candidates — against exact ground truth.
package items

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"topkmon/internal/sketch"
	"topkmon/topk"
)

// SketchKind selects the per-node summary algorithm.
type SketchKind int

const (
	// SpaceSaving (the default) never under-estimates and tracks a
	// per-item over-estimation error; the usual best choice for top-k.
	SpaceSaving SketchKind = iota
	// MisraGries never over-estimates; deterministic counterpart with the
	// dual one-sided guarantee.
	MisraGries
	// CountMin is the hashed sketch: probabilistic, never under-estimates,
	// with a keeper of the Track highest-estimate items for heavy lists.
	CountMin
)

// String implements fmt.Stringer.
func (k SketchKind) String() string {
	switch k {
	case SpaceSaving:
		return "space-saving"
	case MisraGries:
		return "misra-gries"
	case CountMin:
		return "count-min"
	default:
		return "SketchKind(?)"
	}
}

// Config parameterises New. Zero values get working defaults where noted.
type Config struct {
	// Nodes is the number of distributed nodes n (required, >= 1).
	Nodes int
	// Items is the item-universe size m (required, >= 1); the inner
	// monitor runs over m streams, so K <= Items.
	Items int
	// K is the size of the monitored top set (required, 1 <= K <= Items).
	K int
	// Epsilon is the inner monitor's approximation error.
	Epsilon topk.Epsilon
	// Sketch selects the per-node summary (default SpaceSaving).
	Sketch SketchKind
	// Capacity is the per-node counter budget for SpaceSaving and
	// MisraGries, and the keeper size for CountMin when Track is 0.
	// Default 64.
	Capacity int
	// Width and Depth size the CountMin table (defaults 256 and 4; see
	// sketch.CountMinWidth / CountMinDepth to derive them from eps/delta).
	Width, Depth int
	// Track is the CountMin keeper size (default Capacity).
	Track int
	// Seed is the root seed: it derives every per-node sketch seed and
	// the inner monitor's seed, so equal seeds replay bit for bit.
	// Default 1.
	Seed uint64
	// Monitor is appended to the inner topk.New options, after the ones
	// this package sets (nodes, seed) — e.g. topk.WithMonitor,
	// topk.WithEngine.
	Monitor []topk.Option
}

func (c *Config) withDefaults() Config {
	cfg := *c
	if cfg.Capacity == 0 {
		cfg.Capacity = 64
	}
	if cfg.Width == 0 {
		cfg.Width = 256
	}
	if cfg.Depth == 0 {
		cfg.Depth = 4
	}
	if cfg.Track == 0 {
		cfg.Track = cfg.Capacity
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

// nodeSeed derives node i's sketch seed from the root seed (splitmix64's
// golden-ratio stride, matching the repo's child-stream idiom).
func nodeSeed(seed uint64, i int) uint64 {
	return seed ^ (0x9e3779b97f4a7c15 * (uint64(i) + 1))
}

// Monitor tracks the approximate top-k items of a distributed item
// stream. Observe stages events; Step commits everything observed since
// the last Step as ONE time step of the inner monitor. Methods are safe
// for one goroutine at a time.
type Monitor struct {
	mu sync.Mutex

	cfg   Config
	inner *topk.Monitor
	per   []sketch.Summary // one summary per node

	// Step scratch, all reused: per-node heavy lists, the candidate-item
	// stamp array (stamp[j] == round marks j a candidate this step), the
	// sorted candidate ids, and the update batch.
	heavyBuf   []sketch.Counter
	stamp      []uint64
	round      uint64
	candidates []int
	batch      []topk.Update

	closed bool
}

// New returns an item monitor for the k heaviest of cfg.Items items
// observed across cfg.Nodes nodes.
func New(c Config) (*Monitor, error) {
	cfg := c.withDefaults()
	if cfg.Nodes < 1 {
		return nil, errors.New("items: Nodes must be >= 1")
	}
	if cfg.Items < 1 {
		return nil, errors.New("items: Items must be >= 1")
	}
	if cfg.K < 1 || cfg.K > cfg.Items {
		return nil, fmt.Errorf("items: K = %d outside [1, Items = %d]", cfg.K, cfg.Items)
	}
	if cfg.Epsilon.IsZero() && len(cfg.Monitor) == 0 {
		// The inner default algorithm (Approx) requires ε > 0; callers who
		// really want the exact problem must select an exact algorithm via
		// cfg.Monitor explicitly.
		return nil, errors.New("items: Epsilon required (or select an exact algorithm via Monitor options)")
	}
	per := make([]sketch.Summary, cfg.Nodes)
	for i := range per {
		switch cfg.Sketch {
		case MisraGries:
			per[i] = sketch.NewMisraGries(cfg.Capacity)
		case CountMin:
			per[i] = sketch.NewCountMin(cfg.Width, cfg.Depth, cfg.Track, nodeSeed(cfg.Seed, i))
		default:
			per[i] = sketch.NewSpaceSaving(cfg.Capacity)
		}
	}
	opts := append([]topk.Option{topk.WithNodes(cfg.Items), topk.WithSeed(cfg.Seed)}, cfg.Monitor...)
	inner, err := topk.New(cfg.K, cfg.Epsilon, opts...)
	if err != nil {
		return nil, err
	}
	return &Monitor{
		cfg:      cfg,
		inner:    inner,
		per:      per,
		heavyBuf: make([]sketch.Counter, 0, cfg.Track),
		stamp:    make([]uint64, cfg.Items),
		round:    1,
		batch:    make([]topk.Update, 0, cfg.Items),
	}, nil
}

// Observe stages count arrivals of item at node into the current step.
// Counts <= 0 are ignored (the sketch contract). Observe allocates
// nothing.
func (m *Monitor) Observe(node, item int, count int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return topk.ErrClosed
	}
	if node < 0 || node >= len(m.per) {
		return fmt.Errorf("items: node %d outside [0, %d)", node, len(m.per))
	}
	if item < 0 || item >= m.cfg.Items {
		return fmt.Errorf("items: item %d outside [0, %d)", item, m.cfg.Items)
	}
	m.per[node].Observe(uint64(item), count)
	return nil
}

// Step commits everything observed since the last Step as one time step:
// every node contributes its sketch's heavy list, the union of those
// lists is re-aggregated (value = sum over nodes of the node's estimate)
// and pushed to the inner monitor as one batch. Steps with no new heavy
// movement still advance time (the inner monitor's heartbeat semantics).
func (m *Monitor) Step() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return topk.ErrClosed
	}
	m.round++
	m.candidates = m.candidates[:0]
	for _, s := range m.per {
		m.heavyBuf = s.Heavy(m.cfg.Track, m.heavyBuf[:0])
		for _, c := range m.heavyBuf {
			j := int(c.Item)
			if m.stamp[j] != m.round {
				m.stamp[j] = m.round
				m.candidates = append(m.candidates, j)
			}
		}
	}
	// Ascending item order keeps the batch — and therefore the inner
	// monitor's replay — independent of the per-node iteration interleave.
	sort.Ints(m.candidates)
	m.batch = m.batch[:0]
	for _, j := range m.candidates {
		var sum int64
		for _, s := range m.per {
			est, _ := s.Estimate(uint64(j))
			sum += est
		}
		if sum > topk.MaxValue {
			sum = topk.MaxValue
		}
		m.batch = append(m.batch, topk.Update{Node: j, Value: sum})
	}
	return m.inner.UpdateBatch(m.batch)
}

// TopItems appends the current top-k ITEM ids to dst[:0] and returns it
// (the inner monitor's output — item ids are the inner node ids). Before
// the first Step it returns dst[:0].
func (m *Monitor) TopItems(dst []int) []int { return m.inner.TopK(dst) }

// Estimate returns the monitor's current aggregate estimate for one item
// — the sum of the per-node sketch estimates — and the summed error
// bound. It reads the sketches live (not the last pushed value).
func (m *Monitor) Estimate(item int) (est, bound int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if item < 0 || item >= m.cfg.Items {
		return 0, 0
	}
	for _, s := range m.per {
		e, b := s.Estimate(uint64(item))
		est += e
		bound += b
	}
	return est, bound
}

// Cost returns the inner monitor's communication bill. Sketch updates are
// node-local (free in the paper's model); what is billed is the filter
// protocol over the m aggregated item streams.
func (m *Monitor) Cost() topk.Cost { return m.inner.Cost() }

// Check verifies the inner monitor's ε-Top-k property over the pushed
// aggregates (the no-silent-wrong-answers referee). Sketch-vs-truth error
// is measured separately by the recall harness.
func (m *Monitor) Check() error { return m.inner.Check() }

// Steps returns the number of committed steps.
func (m *Monitor) Steps() int64 { return m.inner.Steps() }

// N returns the number of distributed nodes n.
func (m *Monitor) N() int { return len(m.per) }

// Items returns the item-universe size m.
func (m *Monitor) Items() int { return m.cfg.Items }

// K returns the size of the monitored top set.
func (m *Monitor) K() int { return m.cfg.K }

// Reset rewinds the monitor — sketches, inner monitor, and scratch — to
// the state a fresh New with the given seed would produce, keeping every
// buffer. A reset monitor replays a fresh monitor's run bit for bit.
func (m *Monitor) Reset(seed uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return topk.ErrClosed
	}
	if err := m.inner.Reset(seed); err != nil {
		return err
	}
	m.cfg.Seed = seed
	for i, s := range m.per {
		s.Reset(nodeSeed(seed, i))
	}
	clear(m.stamp)
	m.round = 1
	return nil
}

// Close releases the monitor (idempotent; reads stay valid, mutations
// return topk.ErrClosed).
func (m *Monitor) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	return m.inner.Close()
}
