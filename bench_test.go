// The root benchmarks regenerate every reproduction experiment
// (one Benchmark per table/claim, E1–E13; see DESIGN.md §5 and
// EXPERIMENTS.md) plus micro-benchmarks of the communication primitives.
//
// Run with: go test -bench=. -benchmem
package topkmon

import (
	"fmt"
	"testing"

	"topkmon/internal/cluster"
	"topkmon/internal/eps"
	"topkmon/internal/exp"
	"topkmon/internal/filter"
	"topkmon/internal/lockstep"
	"topkmon/internal/offline"
	"topkmon/internal/oracle"
	"topkmon/internal/protocol"
	"topkmon/internal/rngx"
	"topkmon/internal/sim"
	"topkmon/internal/sketch"
	"topkmon/internal/stream"
	istream "topkmon/internal/stream/items"
	"topkmon/internal/wire"
	"topkmon/topk"
	"topkmon/topk/items"
)

// benchExperiment runs one registered experiment per iteration (quick mode)
// with the given worker count (0 = GOMAXPROCS).
func benchExperiment(b *testing.B, id string, parallelism int) {
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables := e.Run(exp.Options{Quick: true, Seed: uint64(i) + 1, Parallelism: parallelism})
		if len(tables) == 0 {
			b.Fatal("experiment produced no tables")
		}
	}
}

// The base experiment benchmarks pin Parallelism to 1 so their numbers stay
// comparable across machines; the *Parallel variants use every core
// (identical tables, lower wall clock — compare with benchstat).
func BenchmarkE1Existence(b *testing.B)        { benchExperiment(b, "E1", 1) }
func BenchmarkE2MaxFind(b *testing.B)          { benchExperiment(b, "E2", 1) }
func BenchmarkE3ExactCompetitive(b *testing.B) { benchExperiment(b, "E3", 1) }
func BenchmarkE4TopKProtocol(b *testing.B)     { benchExperiment(b, "E4", 1) }
func BenchmarkE5LowerBound(b *testing.B)       { benchExperiment(b, "E5", 1) }
func BenchmarkE6Dense(b *testing.B)            { benchExperiment(b, "E6", 1) }
func BenchmarkE7HalfEps(b *testing.B)          { benchExperiment(b, "E7", 1) }
func BenchmarkE8EpsilonSavings(b *testing.B)   { benchExperiment(b, "E8", 1) }
func BenchmarkE9PhaseAblation(b *testing.B)    { benchExperiment(b, "E9", 1) }
func BenchmarkE10Compliance(b *testing.B)      { benchExperiment(b, "E10", 1) }
func BenchmarkE11SweepAblation(b *testing.B)   { benchExperiment(b, "E11", 1) }

func BenchmarkE12Selectivity(b *testing.B)  { benchExperiment(b, "E12", 1) }
func BenchmarkE13HeavyHitters(b *testing.B) { benchExperiment(b, "E13", 1) }

func BenchmarkE1ExistenceParallel(b *testing.B)      { benchExperiment(b, "E1", 0) }
func BenchmarkE8EpsilonSavingsParallel(b *testing.B) { benchExperiment(b, "E8", 0) }
func BenchmarkE11SweepAblationParallel(b *testing.B) { benchExperiment(b, "E11", 0) }

// --- micro-benchmarks of the primitives ---

// BenchmarkSweepSilent measures the zero-violation fast path of the
// EXISTENCE sweep (the steady-state cost of a quiet time step).
func BenchmarkSweepSilent(b *testing.B) {
	for _, n := range []int{64, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			e := lockstep.New(n, 1)
			e.Advance(make([]int64, n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := e.Sweep(wire.Violating()); got != nil {
					b.Fatal("unexpected senders")
				}
			}
		})
	}
}

// BenchmarkSweepOneViolator measures detection latency with one violator.
func BenchmarkSweepOneViolator(b *testing.B) {
	for _, n := range []int{64, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			e := lockstep.New(n, 1)
			vals := make([]int64, n)
			e.Advance(vals)
			e.SetFilter(3, filter.Make(5, 10))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := e.Sweep(wire.Violating()); len(got) == 0 {
					b.Fatal("missed violator")
				}
			}
		})
	}
}

// BenchmarkViolationSweep is the tentpole measurement of the
// filter-interval mirror (BENCH_PR7.json records the before/after): the
// scheduled violation sweep of a quiet step, and the same sweep with a
// single violator, on the mirror-routed engine vs. the FullScan ablation.
// The quiet indexed variant is the protocol's steady-state per-step cost
// and must be O(1) in n and 0 allocs/op; the full-scan ablation is what
// every quiet step cost before the mirror — the acceptance bar is ≥100×
// between the two at n=16384.
func BenchmarkViolationSweep(b *testing.B) {
	for _, n := range []int{4096, 16384} {
		for _, mode := range []struct {
			name string
			full bool
		}{{"indexed", false}, {"fullscan", true}} {
			b.Run(fmt.Sprintf("quiet/%s/n=%d", mode.name, n), func(b *testing.B) {
				e := lockstep.New(n, 1)
				e.FullScan = mode.full
				e.Advance(make([]int64, n))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if got := e.Sweep(wire.Violating()); got != nil {
						b.Fatal("unexpected senders")
					}
				}
			})
			b.Run(fmt.Sprintf("one-violator/%s/n=%d", mode.name, n), func(b *testing.B) {
				e := lockstep.New(n, 1)
				e.FullScan = mode.full
				e.Advance(make([]int64, n))
				e.SetFilter(3, filter.Make(5, 10))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if got := e.Sweep(wire.Violating()); len(got) == 0 {
						b.Fatal("missed violator")
					}
				}
			})
		}
	}
}

// hotRange is the value interval isolating exp.HotCold's hot bucket (the
// same workload experiment E12 pins deterministic visit counts on).
var hotRange = exp.HotInterval()

// BenchmarkSweepSelectivity measures how the value-indexed engines' scan
// cost follows the plausible-matcher count σ instead of n (the ROADMAP
// "sharded server state" item; BENCH_PR3.json records the trajectory):
//
//   - collect/n=…/σ=… — latency grows with σ at fixed n and stays
//     near-flat in n at fixed σ;
//   - sweep-hit/… — an EXISTENCE sweep whose predicate interval isolates
//     the σ hot nodes: only they flip coins;
//   - sweep-quiet-indexed/… — a matchless interval sweep: the index makes
//     all γ+1 rounds free, where the state-decided fallback
//     (sweep-quiet-fallback, = the violation sweep of a quiet step) still
//     scans all n nodes per round.
//
// All variants must stay at 0 allocs/op — the index and its candidate
// scratch are engine-owned and reused.
func BenchmarkSweepSelectivity(b *testing.B) {
	const nFixed = 4096
	mk := func(n, sigma int) *lockstep.Engine {
		e := lockstep.New(n, 1)
		vals := make([]int64, n)
		exp.HotCold(vals, sigma)
		e.Advance(vals)
		return e
	}
	for _, sigma := range []int{1, 16, 256, nFixed} {
		b.Run(fmt.Sprintf("collect/n=%d/sigma=%d", nFixed, sigma), func(b *testing.B) {
			e := mk(nFixed, sigma)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := e.Collect(hotRange); len(got) != sigma {
					b.Fatalf("matched %d, want %d", len(got), sigma)
				}
			}
		})
	}
	for _, n := range []int{1024, 4096, 16384} {
		b.Run(fmt.Sprintf("collect/sigma=16/n=%d", n), func(b *testing.B) {
			e := mk(n, 16)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := e.Collect(hotRange); len(got) != 16 {
					b.Fatalf("matched %d, want 16", len(got))
				}
			}
		})
		b.Run(fmt.Sprintf("collect-fallback/n=%d", n), func(b *testing.B) {
			e := mk(n, 16)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := e.Collect(wire.HasTag(wire.TagNone)); len(got) != n {
					b.Fatal("tag collect must match every node")
				}
			}
		})
	}
	for _, sigma := range []int{1, 256} {
		b.Run(fmt.Sprintf("sweep-hit/n=%d/sigma=%d", nFixed, sigma), func(b *testing.B) {
			e := mk(nFixed, sigma)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := e.Sweep(hotRange); len(got) == 0 {
					b.Fatal("sweep missed the hot nodes")
				}
			}
		})
	}
	for _, n := range []int{4096, 16384} {
		b.Run(fmt.Sprintf("sweep-quiet-indexed/n=%d", n), func(b *testing.B) {
			e := mk(n, 16)
			empty := wire.InRange(1<<38, 1<<39) // above every value
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := e.Sweep(empty); got != nil {
					b.Fatal("unexpected senders")
				}
			}
		})
		b.Run(fmt.Sprintf("sweep-quiet-fallback/n=%d", n), func(b *testing.B) {
			e := mk(n, 16)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := e.Sweep(wire.Violating()); got != nil {
					b.Fatal("unexpected violators")
				}
			}
		})
	}
}

// sketchKinds enumerates the streaming summaries for the sketch hot-path
// benchmarks (sized to the E13 / topk-items operating point: 128 counters,
// Count-Min 512x4 with a 128-item keeper).
func sketchKinds() []struct {
	name string
	mk   func() sketch.Summary
} {
	return []struct {
		name string
		mk   func() sketch.Summary
	}{
		{"space-saving", func() sketch.Summary { return sketch.NewSpaceSaving(128) }},
		{"misra-gries", func() sketch.Summary { return sketch.NewMisraGries(128) }},
		{"count-min", func() sketch.Summary { return sketch.NewCountMin(512, 4, 128, 42) }},
	}
}

// sketchTrace pre-generates a zipf-skewed item sequence outside the timed
// loops so the sketch benchmarks measure only the summaries.
func sketchTrace(n int) []uint64 {
	gen := istream.NewZipf(1, 4096, n, 1.2, 99)
	evs := gen.Next(0, make([]istream.Event, 0, n))
	trace := make([]uint64, len(evs))
	for i, e := range evs {
		trace[i] = uint64(e.Item)
	}
	return trace
}

// BenchmarkSketchObserve measures the per-event ingest cost of each
// summary on a zipf(1.2) item stream — the sketch layer's hot path.
// 0 allocs/op is the enforced budget (sketch's TestObserveAllocs).
func BenchmarkSketchObserve(b *testing.B) {
	trace := sketchTrace(1 << 14)
	for _, s := range sketchKinds() {
		b.Run(s.name, func(b *testing.B) {
			sum := s.mk()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sum.Observe(trace[i&(len(trace)-1)], 1)
			}
		})
	}
}

// BenchmarkSketchHeavy measures extracting the ranked heavy list into a
// reused buffer — the per-step cost each node pays in the items layer.
func BenchmarkSketchHeavy(b *testing.B) {
	trace := sketchTrace(1 << 14)
	for _, s := range sketchKinds() {
		b.Run(s.name, func(b *testing.B) {
			sum := s.mk()
			for _, it := range trace {
				sum.Observe(it, 1)
			}
			buf := make([]sketch.Counter, 0, 128)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = sum.Heavy(128, buf[:0])
				if len(buf) == 0 {
					b.Fatal("empty heavy list")
				}
			}
		})
	}
}

// BenchmarkItemsStep measures one committed step of the item-monitoring
// layer end to end — per-node heavy lists, candidate aggregation, and the
// inner monitor's filter protocol — at the documented operating point
// (8 nodes, 256 items, k=8, space-saving c=128), with the per-step event
// batch pre-generated and replayed outside the measurement.
func BenchmarkItemsStep(b *testing.B) {
	const nodes, universe, k = 8, 256, 8
	mon, err := items.New(items.Config{
		Nodes: nodes, Items: universe, K: k,
		Epsilon: topk.MustEpsilon(1, 8), Capacity: 128, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer mon.Close()
	gen := istream.NewZipf(nodes, universe, 1000, 1.1, 13)
	const pregen = 64
	batches := make([][]istream.Event, pregen)
	for t := range batches {
		batches[t] = gen.Next(t, nil)
	}
	step := func(i int) {
		for _, e := range batches[i%pregen] {
			if err := mon.Observe(e.Node, e.Item, e.Count); err != nil {
				b.Fatal(err)
			}
		}
		if err := mon.Step(); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 32; i++ {
		step(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step(i + 32)
	}
}

// BenchmarkFindMax measures Lemma 2.6's protocol end to end.
func BenchmarkFindMax(b *testing.B) {
	for _, n := range []int{64, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			e := lockstep.New(n, 1)
			vals := make([]int64, n)
			r := rngx.New(9)
			for i := range vals {
				vals[i] = r.Int63n(1 << 30)
			}
			e.Advance(vals)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := protocol.FindMax(e, true); !ok {
					b.Fatal("no max")
				}
			}
		})
	}
}

// BenchmarkMonitorStep measures the steady-state per-step cost of each
// monitor on a moderately active workload (n=64, k=8). The step vectors are
// pre-generated outside the timed loop so the measurement isolates the
// engine + monitor cost — 0 allocs/op is the enforced budget.
func BenchmarkMonitorStep(b *testing.B) {
	const n, k = 64, 8
	const pregen = 1024
	e := eps.MustNew(1, 8)
	monitors := []struct {
		name string
		mk   func(cluster.Cluster) protocol.Monitor
	}{
		{"exact-mid", func(c cluster.Cluster) protocol.Monitor { return protocol.NewExactMid(c, k) }},
		{"topk", func(c cluster.Cluster) protocol.Monitor { return protocol.NewTopKProto(c, k, e) }},
		{"approx", func(c cluster.Cluster) protocol.Monitor { return protocol.NewApprox(c, k, e) }},
		{"half-eps", func(c cluster.Cluster) protocol.Monitor { return protocol.NewHalfEps(c, k, e) }},
		{"naive", func(c cluster.Cluster) protocol.Monitor { return protocol.NewNaive(c, k) }},
	}
	for _, m := range monitors {
		b.Run(m.name, func(b *testing.B) {
			gen := stream.NewWalk(n, 100000, 500, 1<<24, 13)
			steps := make([][]int64, pregen)
			for t := range steps {
				steps[t] = gen.Next(t)
			}
			eng := lockstep.New(n, 5)
			mon := m.mk(eng)
			eng.Advance(steps[0])
			mon.Start()
			eng.EndStep()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Advance(steps[(i+1)%pregen])
				mon.HandleStep()
				eng.EndStep()
			}
		})
	}
}

// BenchmarkFacadePush measures one pushed time step through the PUBLIC
// topk facade (n=64, k=8, drifting walk batched as one UpdateBatch per
// step) on both engines — the embedder-visible form of
// BenchmarkMonitorStep. 0 allocs/op is the enforced budget
// (topk's TestFacadeStepAllocs).
func BenchmarkFacadePush(b *testing.B) {
	const n, k, pregen = 64, 8, 1024
	gen := stream.NewWalk(n, 100000, 500, 1<<24, 13)
	batches := make([][]topk.Update, pregen)
	for t := range batches {
		vals := gen.Next(t)
		batches[t] = make([]topk.Update, n)
		for i, v := range vals {
			batches[t][i] = topk.Update{Node: i, Value: v}
		}
	}
	engines := []struct {
		name string
		opts []topk.Option
	}{
		{"lockstep", nil},
		{"live", []topk.Option{topk.WithEngine(topk.Live)}},
	}
	for _, eng := range engines {
		b.Run(eng.name, func(b *testing.B) {
			opts := append([]topk.Option{topk.WithNodes(n), topk.WithSeed(5)}, eng.opts...)
			m, err := topk.New(k, topk.MustEpsilon(1, 8), opts...)
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			for i := 0; i < 64; i++ {
				if err := m.UpdateBatch(batches[i%pregen]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.UpdateBatch(batches[i%pregen]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOracle measures the steady-state per-step ground-truth
// computation (reused Scratch — the path sim.Run takes; 0 allocs/op).
func BenchmarkOracle(b *testing.B) {
	const n, k = 1024, 16
	vals := make([]int64, n)
	r := rngx.New(3)
	for i := range vals {
		vals[i] = r.Int63n(1 << 30)
	}
	e := eps.MustNew(1, 8)
	var sc oracle.Scratch
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := oracle.ComputeInto(&sc, vals, k, e)
		if tr.VK == 0 {
			b.Fatal("bogus truth")
		}
	}
}

// BenchmarkOracleFresh tracks the allocating compatibility wrapper.
func BenchmarkOracleFresh(b *testing.B) {
	const n, k = 1024, 16
	vals := make([]int64, n)
	r := rngx.New(3)
	for i := range vals {
		vals[i] = r.Int63n(1 << 30)
	}
	e := eps.MustNew(1, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := oracle.Compute(vals, k, e)
		if tr.VK == 0 {
			b.Fatal("bogus truth")
		}
	}
}

// BenchmarkOfflineSolve measures the offline optimum segmentation.
func BenchmarkOfflineSolve(b *testing.B) {
	const n, k, T = 64, 8, 500
	gen := stream.NewWalk(n, 100000, 800, 1<<24, 21)
	matrix := make([][]int64, T)
	for t := range matrix {
		matrix[t] = gen.Next(t)
	}
	e := eps.MustNew(1, 8)
	inst, err := offline.NewInstance(matrix, k, e)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := inst.Solve()
		if len(res.Segments) == 0 {
			b.Fatal("no segments")
		}
	}
}

// BenchmarkEndToEndRun measures a complete simulated run (400 steps, n=32)
// through the sim harness including validation.
func BenchmarkEndToEndRun(b *testing.B) {
	const n, k, steps = 32, 4, 400
	e := eps.MustNew(1, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := sim.Run(sim.Config{
			K: k, Eps: e, Steps: steps, Seed: uint64(i),
			Gen: stream.NewLoads(n, 1000, 40, 0.01, 4000, 1<<20, uint64(i)+7),
			NewMonitor: func(c cluster.Cluster) protocol.Monitor {
				return protocol.NewApprox(c, k, e)
			},
			Validate: sim.ValidateEps,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
