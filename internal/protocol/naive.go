package protocol

import (
	"fmt"
	"slices"

	"topkmon/internal/cluster"
	"topkmon/internal/filter"
	"topkmon/internal/oracle"
	"topkmon/internal/wire"
)

// Naive is the report-on-change baseline: every node holds the degenerate
// filter [v, v], so any change is a violation; the server collects all
// changes each step and re-pins the movers. It solves the exact problem
// with ~3 messages per changed value — the cost a filterless design pays,
// and the yardstick the filter-based algorithms are measured against.
type Naive struct {
	c     cluster.Cluster
	k     int
	vals  []int64
	order []int // reusable id-sort buffer
	out   []int
}

// NewNaive returns the baseline monitor.
func NewNaive(c cluster.Cluster, k int) *Naive {
	if k < 1 || k > c.N() {
		panic(fmt.Sprintf("protocol: Naive needs 1 ≤ k ≤ n, got k=%d n=%d", k, c.N()))
	}
	return &Naive{c: c, k: k}
}

// Name implements Monitor.
func (m *Naive) Name() string { return "naive-report-all" }

// Epochs implements Monitor; the naive baseline has no epoch structure.
func (m *Naive) Epochs() int64 { return 1 }

// Output implements Monitor.
func (m *Naive) Output() []int { return m.out }

// Start implements Monitor: collect every value once and pin all filters.
func (m *Naive) Start() {
	m.vals = make([]int64, m.c.N())
	reps := m.c.Collect(wire.InRange(0, filter.Inf))
	for _, r := range reps {
		m.vals[r.ID] = r.Value
		m.c.SetFilter(r.ID, filter.Make(r.Value, r.Value))
	}
	m.recompute()
}

// HandleStep implements Monitor.
func (m *Naive) HandleStep() {
	// The scheduled existence sweep keeps the quiet case free.
	if senders := m.c.Sweep(wire.Violating()); len(senders) == 0 {
		return
	}
	reps := m.c.Collect(wire.Violating())
	for _, r := range reps {
		m.vals[r.ID] = r.Value
		m.c.SetFilter(r.ID, filter.Make(r.Value, r.Value))
	}
	m.recompute()
}

func (m *Naive) recompute() {
	if m.order == nil {
		m.order = make([]int, len(m.vals))
	}
	for i := range m.order {
		m.order[i] = i
	}
	oracle.SortIDs(m.order, m.vals)
	m.out = append(m.out[:0], m.order[:m.k]...)
	slices.Sort(m.out)
}
