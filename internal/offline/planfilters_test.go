package offline

import (
	"testing"

	"topkmon/internal/eps"
	"topkmon/internal/filter"
	"topkmon/internal/oracle"
	"topkmon/internal/rngx"
)

// TestPlanFiltersSufficiency is the Lemma 2.5 sufficiency check: for every
// greedy segment of random instances, the Proposition 2.4 two-filter
// deployment must (a) contain every node's value at every step of the
// segment, (b) form a valid filter set per Observation 2.2, and (c) make
// the segment's witness a valid ε-output at every step. Together these
// certify that the offline optimum we price is genuinely realisable.
func TestPlanFiltersSufficiency(t *testing.T) {
	rng := rngx.New(99)
	for trial := 0; trial < 120; trial++ {
		n := 3 + rng.Intn(6)
		k := 1 + rng.Intn(n)
		T := 5 + rng.Intn(25)
		e := eps.MustNew(int64(rng.Intn(6)), 8)
		matrix := make([][]int64, T)
		cur := make([]int64, n)
		for i := range cur {
			cur[i] = 50 + rng.Int63n(300)
		}
		for tt := range matrix {
			row := make([]int64, n)
			for i := range row {
				cur[i] += rng.Int63n(81) - 40
				if cur[i] < 0 {
					cur[i] = 0
				}
				row[i] = cur[i]
			}
			matrix[tt] = row
		}
		inst, err := NewInstance(matrix, k, e)
		if err != nil {
			t.Fatal(err)
		}
		res := inst.Solve()
		for _, seg := range res.Segments {
			fOut, fRest := inst.PlanFilters(seg)
			inS := map[int]bool{}
			for _, id := range seg.Out {
				inS[id] = true
			}
			for tt := seg.From; tt <= seg.To; tt++ {
				row := matrix[tt]
				filters := make([]filter.Interval, n)
				for i := range filters {
					if inS[i] {
						filters[i] = fOut
					} else {
						filters[i] = fRest
					}
				}
				// (a) containment.
				for i, v := range row {
					if !filters[i].Contains(v) {
						t.Fatalf("trial %d seg [%d,%d] step %d: node %d value %d outside %v",
							trial, seg.From, seg.To, tt, i, v, filters[i])
					}
				}
				// (b) Observation 2.2 validity.
				if k < n && !filter.SetValid(row, filters, inS, e) {
					t.Fatalf("trial %d seg [%d,%d] step %d: filter set invalid",
						trial, seg.From, seg.To, tt)
				}
				// (c) output validity.
				truth := oracle.Compute(row, k, e)
				if err := truth.ValidateEps(seg.Out); err != nil {
					t.Fatalf("trial %d seg [%d,%d] step %d: witness invalid: %v",
						trial, seg.From, seg.To, tt, err)
				}
			}
		}
	}
}

// TestPlanFiltersKEqualsN: the degenerate all-output segment.
func TestPlanFiltersKEqualsN(t *testing.T) {
	inst, err := NewInstance([][]int64{{5, 3}, {9, 1}}, 2, eps.Zero)
	if err != nil {
		t.Fatal(err)
	}
	res := inst.Solve()
	if len(res.Segments) != 1 {
		t.Fatalf("segments = %d", len(res.Segments))
	}
	fOut, _ := inst.PlanFilters(res.Segments[0])
	for _, row := range inst.Values {
		for _, v := range row {
			if !fOut.Contains(v) {
				t.Fatalf("value %d outside all-output filter %v", v, fOut)
			}
		}
	}
}
