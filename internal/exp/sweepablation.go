package exp

import (
	"topkmon/internal/eps"
	"topkmon/internal/metrics"
	"topkmon/internal/sim"
	"topkmon/internal/stream"
)

// E11SweepAblation isolates the EXISTENCE protocol's contribution (the
// Section 3 tool behind Corollaries 3.2/3.3): the same monitor on the same
// hostile workload, with violation reporting done either by the Lemma 3.1
// randomized sweep or by naive direct reporting (every violator sends every
// sweep). With bursts of simultaneous violations the naive scheme pays
// per violator per processed violation — quadratic in the burst size —
// while EXISTENCE keeps each processing round at O(1) expected messages.
func E11SweepAblation() Experiment {
	return Experiment{
		ID:    "E11",
		Title: "Ablation: EXISTENCE sweep vs naive direct reporting",
		Claim: "Section 3 / Cor 3.2: randomized reporting keeps violation bursts at O(1) msgs each",
		Run: func(o Options) []*metrics.Table {
			const k = 4
			e := eps.MustNew(1, 8)
			ns := []int{16, 32, 64, 128}
			steps := 400
			if o.Quick {
				ns = []int{16, 64}
				steps = 120
			}
			tb := metrics.NewTable("E11: violation reporting cost (uniform jumps, k=4, ε=1/8)",
				"n", "existence msgs", "direct msgs", "direct/existence",
				"existence reports", "direct reports")
			// Jobs: (n, reporting scheme) pairs, all independent; each
			// worker reuses one engine via Reset (rebuilt only when the
			// job's n differs from the previous one).
			reps := parMapWith(o, len(ns)*2,
				func() *engCtx { return &engCtx{} },
				func(ctx *engCtx, i int) sim.Report {
					n := ns[i/2]
					eng := ctx.reset(n, o.Seed+41)
					eng.DirectReports = i%2 == 1
					return runOrPanic(sim.Config{
						K: k, Eps: e, Steps: steps, Seed: o.Seed + 41,
						Gen:        stream.NewJumps(n, 1000, 1<<20, o.Seed+900+uint64(n)),
						NewMonitor: mkMonitor("approx", k, e),
						Validate:   sim.ValidateEps,
						Engine:     eng,
					})
				})
			for i, n := range ns {
				ex, dr := reps[2*i], reps[2*i+1]
				tb.AddRow(n, ex.Messages.Total(), dr.Messages.Total(),
					ratio(dr.Messages.Total(), ex.Messages.Total()),
					ex.Messages.ByKind["existence-report"],
					dr.Messages.ByKind["existence-report"])
			}
			return []*metrics.Table{tb}
		},
	}
}
