package exp

import (
	"strings"
	"testing"

	"topkmon/internal/metrics"
)

func TestRenderFiguresFromTables(t *testing.T) {
	// Run E9 quick and render its registered figure.
	e, _ := ByID("E9")
	tables := e.Run(Options{Quick: true, Seed: 1})
	figs := RenderFigures("E9", tables)
	if len(figs) != 1 {
		t.Fatalf("E9 should render 1 figure, got %d", len(figs))
	}
	if !strings.Contains(figs[0], "full") || !strings.Contains(figs[0], "ablated") {
		t.Errorf("figure missing legends:\n%s", figs[0])
	}
}

func TestRenderFiguresUnknownExperiment(t *testing.T) {
	if figs := RenderFigures("E99", nil); len(figs) != 0 {
		t.Errorf("unknown experiment rendered %d figures", len(figs))
	}
}

func TestRenderFiguresToleratesBadColumns(t *testing.T) {
	// A table whose y column is non-numeric must be skipped silently.
	tb := metrics.NewTable("E5-ish", "sigma", "x", "y", "z", "w", "ratio")
	tb.AddRow(1, "a", "b", "c", "d", "not-a-number")
	if figs := RenderFigures("E5", []*metrics.Table{tb}); len(figs) != 0 {
		t.Errorf("non-numeric column rendered %d figures", len(figs))
	}
}

func TestFigureSpecsReferenceRealExperiments(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		ids[e.ID] = true
	}
	for _, spec := range figureSpecs() {
		if !ids[spec.ExpID] {
			t.Errorf("figure spec references unknown experiment %q", spec.ExpID)
		}
		if spec.Title == "" || len(spec.YCols) == 0 {
			t.Errorf("figure spec for %s incomplete", spec.ExpID)
		}
	}
}
