// Quickstart: embed the public topk API. 16 drifting streams push one batch
// per tick into a monitor running the Theorem 5.8 controller on the
// deterministic engine; every output is validated by the built-in referee
// and the final communication bill is printed.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"topkmon/topk"
)

func main() {
	const (
		n     = 16
		k     = 3
		steps = 1000
	)

	// Allow 12.5% slack around the k-th value: marginal, noise-driven rank
	// changes need not be communicated.
	m, err := topk.New(k, topk.MustEpsilon(1, 8), topk.WithNodes(n), topk.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	// Streams: smooth random walks, the friendly case for filters.
	rng := rand.New(rand.NewSource(7))
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = 5000 + rng.Int63n(10001)
	}

	batch := make([]topk.Update, n)
	topBuf := make([]int, 0, k)
	for t := 0; t < steps; t++ {
		for i := range vals {
			if t > 0 {
				vals[i] += rng.Int63n(301) - 150
				if vals[i] < 0 {
					vals[i] = 0
				}
			}
			batch[i] = topk.Update{Node: i, Value: vals[i]}
		}
		// One pushed batch = one monitored time step.
		if err := m.UpdateBatch(batch); err != nil {
			log.Fatal(err)
		}

		// The referee recomputes the ground truth centrally — only to check
		// the protocol; it is not part of the distributed computation.
		if err := m.Check(); err != nil {
			log.Fatalf("step %d: %v", t, err)
		}

		if t%250 == 0 {
			topBuf = m.TopK(topBuf)
			fmt.Printf("step %4d: top-%d positions = %v\n", t, k, topBuf)
		}
	}

	c := m.Cost()
	fmt.Printf("\n%d steps monitored with %d messages (%.3f per step), %d epochs\n",
		steps, c.Messages, float64(c.Messages)/steps, m.Epochs())
	fmt.Printf("a naive report-every-change design would have sent ~%d messages\n", n*steps)
}
