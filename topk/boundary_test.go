package topk_test

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestPublicEntryPointsImportNoInternal pins the API boundary this package
// exists for: cmd/ and examples/ are consumers of the PUBLIC surface and
// must not import any internal/... package. (CI runs the same check via
// `go list`; asserting it here makes the boundary part of tier-1
// `go test ./...` as well.)
func TestPublicEntryPointsImportNoInternal(t *testing.T) {
	fset := token.NewFileSet()
	for _, root := range []string{"../cmd", "../examples"} {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") {
				return nil
			}
			f, perr := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if perr != nil {
				return perr
			}
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if strings.HasPrefix(p, "topkmon/internal/") || p == "topkmon/internal" {
					t.Errorf("%s imports %s — public entry points must use only the topk package", path, p)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("walking %s: %v", root, err)
		}
	}
}
