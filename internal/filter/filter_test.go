package filter

import (
	"testing"
	"testing/quick"

	"topkmon/internal/eps"
)

func TestContainsAndViolation(t *testing.T) {
	iv := Make(10, 20)
	cases := []struct {
		v    int64
		dir  Direction
		cont bool
	}{
		{9, DirDown, false}, {10, DirNone, true}, {15, DirNone, true},
		{20, DirNone, true}, {21, DirUp, false},
	}
	for _, c := range cases {
		if got := iv.Contains(c.v); got != c.cont {
			t.Errorf("Contains(%d) = %v", c.v, got)
		}
		if got := iv.Violation(c.v); got != c.dir {
			t.Errorf("Violation(%d) = %v, want %v", c.v, got, c.dir)
		}
	}
}

func TestUnboundedFilter(t *testing.T) {
	iv := AtLeast(5)
	if iv.Violation(1<<50) != DirNone {
		t.Error("unbounded filter must admit huge values")
	}
	if iv.Violation(4) != DirDown {
		t.Error("AtLeast must reject below Lo")
	}
	if All.Violation(0) != DirNone || All.Violation(1<<55) != DirNone {
		t.Error("All must admit everything")
	}
}

func TestIntersectAndClamp(t *testing.T) {
	iv := Make(10, 30)
	if got := iv.ClampAbove(20); got != Make(20, 30) {
		t.Errorf("ClampAbove = %v", got)
	}
	if got := iv.ClampBelow(15); got != Make(10, 15) {
		t.Errorf("ClampBelow = %v", got)
	}
	if got := iv.ClampAbove(31); !got.Empty() {
		t.Errorf("clamping past Hi should empty, got %v", got)
	}
	if got := Make(5, 7).Intersect(Make(8, 9)); !got.Empty() {
		t.Errorf("disjoint intersect should be empty, got %v", got)
	}
}

func TestHalvingRules(t *testing.T) {
	// Single point halves to empty (Section 5.2 rule).
	p := Make(7, 7)
	if !p.LowerHalf().Empty() || !p.UpperHalf().Empty() {
		t.Error("single-point halves must be empty")
	}
	// Width 1 splits into endpoints.
	w1 := Make(7, 8)
	if w1.LowerHalf() != Make(7, 7) || w1.UpperHalf() != Make(8, 8) {
		t.Errorf("width-1 halves: %v / %v", w1.LowerHalf(), w1.UpperHalf())
	}
	// Width ≥ 2: both halves include the midpoint.
	w := Make(10, 20)
	m := w.Mid()
	if !w.LowerHalf().Contains(m) || !w.UpperHalf().Contains(m) {
		t.Error("width ≥ 2 halves must include the midpoint")
	}
}

// TestHalvingTerminates: repeated halving of any interval empties it within
// log₂(width) + 2 steps, whichever halves are chosen.
func TestHalvingTerminates(t *testing.T) {
	prop := func(lo, width int64, pattern uint64) bool {
		lo = lo % (1 << 30)
		if lo < 0 {
			lo = -lo
		}
		width = width % (1 << 30)
		if width < 0 {
			width = -width
		}
		iv := Make(lo, lo+width)
		bound := 2
		for w := width; w > 0; w /= 2 {
			bound++
		}
		for i := 0; i < bound+2; i++ {
			if iv.Empty() {
				return true
			}
			if pattern&(1<<uint(i%64)) != 0 {
				iv = iv.LowerHalf()
			} else {
				iv = iv.UpperHalf()
			}
		}
		return iv.Empty()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestHalvesShrinkStrictly: non-empty intervals always shrink.
func TestHalvesShrinkStrictly(t *testing.T) {
	prop := func(lo, width int64) bool {
		lo = abs64(lo) % (1 << 40)
		width = abs64(width) % (1 << 40)
		iv := Make(lo, lo+width)
		l, u := iv.LowerHalf(), iv.UpperHalf()
		return widthOf(l) < width || l.Empty() || (widthOf(l) <= width && widthOf(u) < width)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func widthOf(iv Interval) int64 {
	if iv.Empty() {
		return -1
	}
	return iv.Hi - iv.Lo
}

func abs64(x int64) int64 {
	if x < 0 {
		if x == -x { // MinInt64
			return 0
		}
		return -x
	}
	return x
}

func TestSetValidExact(t *testing.T) {
	values := []int64{100, 90, 50, 40}
	filters := []Interval{AtLeast(70), AtLeast(70), AtMost(70), AtMost(70)}
	out := map[int]bool{0: true, 1: true}
	if !SetValid(values, filters, out, eps.Zero) {
		t.Error("clean separation at 70 must be valid")
	}
	// An out-node filter dipping below a rest-node ceiling breaks it.
	filters[0] = AtLeast(60)
	if SetValid(values, filters, out, eps.Zero) {
		t.Error("ℓ=60 < u=70 must be invalid for ε=0")
	}
	// But the same overlap is fine with ε = 1/4: 60 ≥ 0.75·70 = 52.5.
	if !SetValid(values, filters, out, eps.MustNew(1, 4)) {
		t.Error("overlap within ε-slack must be valid")
	}
}

func TestSetValidRejectsValueOutsideFilter(t *testing.T) {
	values := []int64{100, 10}
	filters := []Interval{AtLeast(70), AtMost(5)} // node 1 at 10 > 5
	if SetValid(values, filters, map[int]bool{0: true}, eps.Zero) {
		t.Error("a value outside its filter invalidates the set")
	}
}

func TestSetValidUnboundedRest(t *testing.T) {
	values := []int64{100, 10}
	filters := []Interval{AtLeast(70), All}
	if SetValid(values, filters, map[int]bool{0: true}, eps.MustNew(1, 2)) {
		t.Error("an unbounded non-output filter can never be valid")
	}
}

// TestSetValidMatchesPairwise: the aggregate check agrees with checking all
// (out, rest) pairs individually.
func TestSetValidMatchesPairwise(t *testing.T) {
	e := eps.MustNew(1, 4)
	prop := func(seed int64) bool {
		rng := seed
		next := func(mod int64) int64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := rng >> 33
			if v < 0 {
				v = -v
			}
			return v % mod
		}
		n := int(2 + next(6))
		values := make([]int64, n)
		filters := make([]Interval, n)
		out := map[int]bool{}
		for i := range values {
			lo := next(1000)
			hi := lo + next(1000)
			filters[i] = Make(lo, hi)
			values[i] = lo + next(hi-lo+1)
			if next(2) == 0 {
				out[i] = true
			}
		}
		agg := SetValid(values, filters, out, e)
		pair := true
		for i := range values {
			if !filters[i].Contains(values[i]) {
				pair = false
			}
		}
		for i := range values {
			if !out[i] {
				continue
			}
			for j := range values {
				if out[j] {
					continue
				}
				if !PairValid(filters[i], filters[j], e) {
					pair = false
				}
			}
		}
		return agg == pair
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestStringForms(t *testing.T) {
	if s := Make(3, 9).String(); s != "[3,9]" {
		t.Errorf("String = %q", s)
	}
	if s := AtLeast(3).String(); s != "[3,∞]" {
		t.Errorf("String = %q", s)
	}
	for _, d := range []Direction{DirNone, DirUp, DirDown} {
		if d.String() == "" {
			t.Error("direction must render")
		}
	}
}
