package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"topkmon/topk"
)

// sseClient consumes /v1/{tenant}/events from a real listener, delivering
// each decoded frame on Events. Construction blocks until the stream's
// opening comment arrives, so callers know the subscription exists before
// they start driving steps.
type sseClient struct {
	resp   *http.Response
	Events chan eventJSON
}

func newSSEClient(t *testing.T, base, tenant string) *sseClient {
	t.Helper()
	resp, err := http.Get(base + "/v1/" + tenant + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("events status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("events content-type = %q", ct)
	}
	c := &sseClient{resp: resp, Events: make(chan eventJSON, 1024)}
	ready := make(chan struct{})
	go func() {
		defer close(c.Events)
		sc := bufio.NewScanner(resp.Body)
		opened := false
		for sc.Scan() {
			line := sc.Text()
			if !opened && strings.HasPrefix(line, ":") {
				opened = true
				close(ready)
				continue
			}
			if data, ok := strings.CutPrefix(line, "data: "); ok {
				var ev eventJSON
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					return
				}
				c.Events <- ev
			}
		}
	}()
	select {
	case <-ready:
	case <-time.After(5 * time.Second):
		resp.Body.Close()
		t.Fatal("SSE stream did not open")
	}
	return c
}

func (c *sseClient) Close() { c.resp.Body.Close() }

// putTenant materializes a tenant from the server defaults over HTTP (the
// events route reads, so it does not create lazily).
func putTenant(t *testing.T, hc *http.Client, base, name string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, base+"/v1/"+name, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := hc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create %s: status = %d", name, resp.StatusCode)
	}
}

// TestSSEBridgeMatchesSubscribe drives the same scripted trace through a
// served tenant (with an SSE consumer attached) and a direct facade
// monitor (with a drained Subscribe channel), and asserts the SSE stream
// carried exactly the events the facade emitted — same steps, same sets,
// same health, same order, nothing extra.
func TestSSEBridgeMatchesSubscribe(t *testing.T) {
	const n, k, steps = 24, 3, 160
	srv := newTestServer(t, Options{Defaults: Config{Nodes: n, K: k, Seed: 3}, Lazy: true})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	direct, err := topk.New(k, topk.MustEpsilon(1, 8),
		topk.WithNodes(n), topk.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	directCh := direct.Subscribe()

	// Subscribe BEFORE the first step so no event predates the bridge.
	putTenant(t, ts.Client(), ts.URL, "sub")
	sse := newSSEClient(t, ts.URL, "sub")
	defer sse.Close()

	// A churny trace: the hot set rotates by one node per step, so nearly
	// every commit changes the top-k set. The comparison is synchronous —
	// the facade delivers events inside UpdateBatch, so after each step the
	// direct event (if any) is already buffered, and the bridge's frame for
	// it is awaited before the next step; neither side can overrun a
	// subscription buffer, making the exactly-once comparison
	// deterministic.
	trace := makeChurnTrace(n, k, steps)
	hc := ts.Client()
	events := 0
	for step, batch := range trace {
		resp, err := hc.Post(ts.URL+"/v1/sub/update", "application/json",
			strings.NewReader(encodeBatch(t, batch)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("update status = %d", resp.StatusCode)
		}
		if err := direct.UpdateBatch(batch); err != nil {
			t.Fatal(err)
		}
		for {
			var want topk.Event
			select {
			case want = <-directCh:
			default:
				goto nextStep
			}
			select {
			case g, ok := <-sse.Events:
				if !ok {
					t.Fatalf("SSE stream ended at step %d", step)
				}
				if g.Step != want.Step || fmt.Sprint(g.TopK) != fmt.Sprint(want.TopK) ||
					g.Health.State != want.Health.State.String() || g.Health.StaleFor != want.Health.StaleFor {
					t.Fatalf("event %d: served %+v != direct {step:%d topk:%v health:%s/%d}",
						events, g, want.Step, want.TopK, want.Health.State, want.Health.StaleFor)
				}
				events++
			case <-time.After(5 * time.Second):
				t.Fatalf("SSE frame for step %d never arrived", want.Step)
			}
		}
	nextStep:
	}
	if events < steps/2 {
		t.Fatalf("vacuous trace: only %d set changes over %d steps", events, steps)
	}
	// Silence after the trace: the bridge forwarded nothing the facade did
	// not emit.
	select {
	case ev := <-sse.Events:
		t.Fatalf("unexpected extra SSE event: %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}
}

// makeChurnTrace rotates the k hot nodes by one position per step: value
// rank is preserved inside the hot set, so nearly every step changes the
// top-k set by exactly one node.
func makeChurnTrace(n, k, steps int) [][]topk.Update {
	out := make([][]topk.Update, steps)
	for t := range out {
		batch := make([]topk.Update, n)
		for i := 0; i < n; i++ {
			batch[i] = topk.Update{Node: i, Value: int64(1000 + i)}
		}
		for j := 0; j < k; j++ {
			hot := (t + j) % n
			batch[hot].Value = int64(900000 - j*10000)
		}
		out[t] = batch
	}
	return out
}

// TestSSESlowClientDoesNotBlockIngest pins the delivery contract under a
// subscriber that never reads: the step loop keeps committing at full
// speed (events drop at the facade's subscription buffer), and a fresh
// subscriber attached afterwards still receives events.
func TestSSESlowClientDoesNotBlockIngest(t *testing.T) {
	const n, steps = 8, 400
	srv := newTestServer(t, Options{Defaults: Config{Nodes: n, K: 1, Seed: 2}, Lazy: true})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	hc := ts.Client()

	// A connected subscriber that never reads its stream.
	putTenant(t, hc, ts.URL, "s")
	resp, err := hc.Get(ts.URL + "/v1/s/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Leader flips between node 0 and node 1 every step: every commit is a
	// top-k-set change, so the slow subscriber falls behind immediately.
	post := func(hot int) {
		body := fmt.Sprintf(`[{"node":0,"value":%d},{"node":1,"value":%d}]`,
			1000+999000*((hot+1)%2), 1000+999000*(hot%2))
		r, err := hc.Post(ts.URL+"/v1/s/update", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("update status = %d", r.StatusCode)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < steps; i++ {
			post(i)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("ingest stalled behind a slow SSE subscriber")
	}

	// The monitor committed every step despite the unread stream.
	cr, err := hc.Get(ts.URL + "/v1/s/cost")
	if err != nil {
		t.Fatal(err)
	}
	var cost costResponse
	json.NewDecoder(cr.Body).Decode(&cost)
	cr.Body.Close()
	if cost.Steps != steps {
		t.Fatalf("steps = %d, want %d", cost.Steps, steps)
	}

	// A fresh subscriber still gets live events. The loop ended on
	// hot = steps-1 (odd), so hot = 0 flips the leader again.
	fresh := newSSEClient(t, ts.URL, "s")
	defer fresh.Close()
	post(0)
	select {
	case ev, ok := <-fresh.Events:
		if !ok {
			t.Fatal("fresh SSE stream closed immediately")
		}
		if len(ev.TopK) != 1 {
			t.Fatalf("fresh event = %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fresh subscriber received nothing")
	}
}

// TestSSEDisconnectCleansUp pins the Unsubscribe bridge: cycling many
// short-lived SSE consumers leaves no goroutines behind once they
// disconnect (the handler returns on context cancellation and removes its
// subscription).
func TestSSEDisconnectCleansUp(t *testing.T) {
	srv := newTestServer(t, Options{Defaults: Config{Nodes: 8, K: 1, Seed: 2}, Lazy: true})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	// Materialize the tenant.
	resp, err := ts.Client().Post(ts.URL+"/v1/d/flush", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	for i := 0; i < 20; i++ {
		c := newSSEClient(t, ts.URL, "d")
		c.Close()
	}
	// Deleting the tenant closes any surviving subscription channels; a
	// leaked handler goroutine would deadlock Close if it still blocked the
	// facade. Reaching this point quickly is the assertion; the race job
	// additionally verifies no unsynchronized teardown.
	if err := srv.Pool().Delete("d"); err != nil {
		t.Fatal(err)
	}
}
