package sim

import (
	"fmt"
	"testing"

	"topkmon/internal/cluster"
	"topkmon/internal/eps"
	"topkmon/internal/lockstep"
	"topkmon/internal/oracle"
	"topkmon/internal/protocol"
	"topkmon/internal/stream"
	"topkmon/internal/wire"
)

// TestRegressionSubLowerHalfTagRestore pins the fix for a tag/set divergence
// bug: when SUBPROTOCOL terminated through an emptied L′ lower half, S′2 was
// disbanded before subEnd diffed the primed sets against the DENSE sets, so
// the restore skipped the physical retag of S′2 members — leaving a node
// filtered as a non-output V2∩S2 member while the server's sets placed it
// in the output. Caught originally by the E8 validator at ε=1/64.
func TestRegressionSubLowerHalfTagRestore(t *testing.T) {
	const k, steps = 4, 60
	e := eps.MustNew(1, 64)
	gen := stream.NewOscillator(k-1, 16, 8, 65536, 65536*3/100, 65536*64, 65536/64, 501)
	runInvariantChecked(t, gen, k, e, steps, 30)
}

// TestApproxInvariantStress sweeps seeds and ε values, checking after every
// single processed violation that node tags match the server-side set
// classification, and after every step that the output is ε-valid.
func TestApproxInvariantStress(t *testing.T) {
	const k, steps = 3, 200
	for _, ed := range []int64{2, 4, 16, 64, 256} {
		e := eps.MustNew(1, ed)
		for seed := uint64(0); seed < 6; seed++ {
			t.Run(fmt.Sprintf("eps=1_%d/seed=%d", ed, seed), func(t *testing.T) {
				gen := stream.NewOscillator(k-1, 12, 6, 50000, 50000*4/100, 50000*64, 700, seed*17+3)
				runInvariantChecked(t, gen, k, e, steps, seed)
			})
		}
	}
}

func runInvariantChecked(t *testing.T, gen stream.Generator, k int, e eps.Eps, steps int, seed uint64) {
	t.Helper()
	eng := lockstep.New(gen.N(), seed)
	var c cluster.Cluster = eng
	ap := protocol.NewApprox(c, k, e)
	ap.AfterHandle = func(rep wire.Report) {
		if ap.InDense() {
			if err := ap.DenseState().CheckInvariants(eng.Tags()); err != nil {
				t.Fatalf("invariant after violation (node %d %v): %v", rep.ID, rep.Dir, err)
			}
		}
	}
	for ts := 0; ts < steps; ts++ {
		vals := gen.Next(ts)
		eng.Advance(vals)
		if ts == 0 {
			ap.Start()
		} else {
			ap.HandleStep()
		}
		truth := oracle.Compute(vals, k, e)
		if err := truth.ValidateEps(ap.Output()); err != nil {
			t.Fatalf("step %d: %v", ts, err)
		}
		eng.EndStep()
	}
}
