package protocol

import (
	"fmt"

	"topkmon/internal/cluster"
	"topkmon/internal/filter"
	"topkmon/internal/wire"
)

// ExactMid is the O(k log n + log Δ)-competitive exact Top-k monitor of
// Corollary 3.3: per epoch it computes the k+1 largest values, keeps the
// top-k as its output, and maintains the separator interval
// L = [v_{k+1}, v_k] under the generic framework of Section 3, bisecting L
// at each filter violation. When L empties the epoch ends — by the paper's
// argument the offline optimum communicated at least once within it — and a
// fresh epoch starts.
type ExactMid struct {
	c      cluster.Cluster
	k      int
	out    []int
	l      filter.Interval
	epochs int64
	rules  ruleScratch
}

// NewExactMid returns the monitor for the exact problem (ε plays no role).
func NewExactMid(c cluster.Cluster, k int) *ExactMid {
	if k < 1 || k >= c.N() {
		panic(fmt.Sprintf("protocol: ExactMid needs 1 ≤ k < n, got k=%d n=%d", k, c.N()))
	}
	return &ExactMid{c: c, k: k}
}

// Name implements Monitor.
func (m *ExactMid) Name() string { return "exact-mid" }

// Epochs implements Monitor.
func (m *ExactMid) Epochs() int64 { return m.epochs }

// Output implements Monitor.
func (m *ExactMid) Output() []int { return m.out }

// Start implements Monitor.
func (m *ExactMid) Start() { m.startEpoch() }

func (m *ExactMid) startEpoch() {
	m.epochs++
	reps := TopM(m.c, m.k+1)
	m.out = ids(reps[:m.k])
	m.l = filter.Make(reps[m.k].Value, reps[m.k-1].Value)
	mid := m.l.Mid()
	m.rules.assignTwoSided(m.c, m.out, filter.AtLeast(mid), filter.AtMost(mid))
}

// HandleStep implements Monitor.
func (m *ExactMid) HandleStep() {
	drainViolations(m.c, m.handle)
}

func (m *ExactMid) handle(rep wire.Report) {
	// Generic framework: an up-violation (a rest node crossed the
	// separator) proves the optimal separator lies at or above the value;
	// a down-violation (an output node fell through) that it lies at or
	// below it.
	if rep.Dir == filter.DirUp {
		m.l = m.l.ClampAbove(rep.Value)
	} else {
		m.l = m.l.ClampBelow(rep.Value)
	}
	if m.l.Empty() {
		m.startEpoch()
		return
	}
	mid := m.l.Mid()
	m.rules.retargetTwoSided(m.c, filter.AtLeast(mid), filter.AtMost(mid))
}
