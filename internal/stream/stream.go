// Package stream provides the workload generators driving the reproduction:
// smooth random walks, hostile uniform jumps, the dense oscillators of the
// paper's motivating noise scenario, bursty web-server load traces for the
// load-balancer example, record/replay, and the adaptive adversary realising
// the Theorem 5.1 lower bound.
package stream

import (
	"fmt"

	"topkmon/internal/eps"
	"topkmon/internal/filter"
	"topkmon/internal/rngx"
)

// Generator produces one value vector per time step.
type Generator interface {
	// Name identifies the workload in reports.
	Name() string
	// N returns the number of node streams.
	N() int
	// Next returns the values observed at step t (called with t = 0, 1, …
	// strictly in order). The returned slice is owned by the caller.
	Next(t int) []int64
}

// Adaptive generators additionally observe the monitor's state before each
// step — the adversary model of the paper ("the adversary … can see the
// filters communicated by the server").
type Adaptive interface {
	Generator
	// ObserveFilters is called before Next with the filters currently
	// assigned to the nodes and the monitor's current output.
	ObserveFilters(filters []filter.Interval, output []int)
}

// clampVals bounds a value into [0, max].
func clampVal(v, max int64) int64 {
	if v < 0 {
		return 0
	}
	if v > max {
		return max
	}
	return v
}

// --- Random walk ---

// Walk is a bounded random walk per node: each step moves by a uniform
// offset in [-Step, +Step]. It models smoothly drifting loads where filters
// pay off.
type Walk struct {
	Nodes int
	Start int64 // initial level (spread per node)
	Step  int64 // maximum per-step move
	Max   int64 // value cap (Δ)

	rng *rngx.Source
	cur []int64
}

// NewWalk returns a seeded random-walk generator. Initial values are spread
// uniformly in [Start/2, Start+Start/2] so the top-k is non-degenerate.
func NewWalk(nodes int, start, step, max int64, seed uint64) *Walk {
	w := &Walk{Nodes: nodes, Start: start, Step: step, Max: max, rng: rngx.New(seed)}
	w.cur = make([]int64, nodes)
	for i := range w.cur {
		span := start
		if span < 1 {
			span = 1
		}
		w.cur[i] = clampVal(start/2+w.rng.Int63n(span), max)
	}
	return w
}

// Name implements Generator.
func (w *Walk) Name() string { return fmt.Sprintf("walk(step=%d,max=%d)", w.Step, w.Max) }

// N implements Generator.
func (w *Walk) N() int { return w.Nodes }

// Next implements Generator.
func (w *Walk) Next(t int) []int64 {
	out := make([]int64, w.Nodes)
	if t == 0 {
		copy(out, w.cur)
		return out
	}
	for i := range w.cur {
		delta := w.rng.Int63n(2*w.Step+1) - w.Step
		w.cur[i] = clampVal(w.cur[i]+delta, w.Max)
		out[i] = w.cur[i]
	}
	return out
}

// --- Uniform jumps ---

// Jumps draws every node's value fresh and uniformly each step — the
// hostile regime where filters barely help and every monitor pays.
type Jumps struct {
	Nodes int
	Lo    int64
	Hi    int64
	rng   *rngx.Source
}

// NewJumps returns a seeded uniform-jump generator.
func NewJumps(nodes int, lo, hi int64, seed uint64) *Jumps {
	return &Jumps{Nodes: nodes, Lo: lo, Hi: hi, rng: rngx.New(seed)}
}

// Name implements Generator.
func (g *Jumps) Name() string { return fmt.Sprintf("jumps[%d,%d]", g.Lo, g.Hi) }

// N implements Generator.
func (g *Jumps) N() int { return g.Nodes }

// Next implements Generator.
func (g *Jumps) Next(int) []int64 {
	out := make([]int64, g.Nodes)
	for i := range out {
		out[i] = g.Lo + g.rng.Int63n(g.Hi-g.Lo+1)
	}
	return out
}

// --- Dense oscillator ---

// Oscillator is the paper's motivating noise scenario: Top nodes sit
// clearly above, Low nodes clearly below, and Dense nodes oscillate inside
// a ±Amplitude band around Base — i.e. around the k-th largest value — so
// that σ ≈ Dense+… and the exact problem churns while the ε-problem is
// quiet whenever Amplitude stays inside the ε-neighborhood.
type Oscillator struct {
	Top       int   // nodes pinned clearly above (use k-1 of them in-output)
	Dense     int   // nodes oscillating around Base
	Low       int   // nodes clearly below
	Base      int64 // the oscillation centre (≈ v_k)
	Amplitude int64 // oscillation half-width
	TopLevel  int64 // level of the Top nodes
	LowLevel  int64 // level of the Low nodes

	rng *rngx.Source
}

// NewOscillator returns a seeded dense-oscillator generator.
func NewOscillator(top, dense, low int, base, amplitude, topLevel, lowLevel int64, seed uint64) *Oscillator {
	return &Oscillator{
		Top: top, Dense: dense, Low: low,
		Base: base, Amplitude: amplitude, TopLevel: topLevel, LowLevel: lowLevel,
		rng: rngx.New(seed),
	}
}

// Name implements Generator.
func (g *Oscillator) Name() string {
	return fmt.Sprintf("oscillator(dense=%d,amp=%d,base=%d)", g.Dense, g.Amplitude, g.Base)
}

// N implements Generator.
func (g *Oscillator) N() int { return g.Top + g.Dense + g.Low }

// Next implements Generator.
func (g *Oscillator) Next(int) []int64 {
	out := make([]int64, 0, g.N())
	for i := 0; i < g.Top; i++ {
		out = append(out, g.TopLevel+g.rng.Int63n(g.Amplitude+1))
	}
	for i := 0; i < g.Dense; i++ {
		out = append(out, g.Base-g.Amplitude+g.rng.Int63n(2*g.Amplitude+1))
	}
	for i := 0; i < g.Low; i++ {
		out = append(out, g.LowLevel+g.rng.Int63n(g.Amplitude+1))
	}
	return out
}

// --- Bursty load trace ---

// Loads models web-server loads for the load-balancer scenario of the
// paper's introduction: a per-node baseline, small multiplicative jitter,
// and occasional bursts that decay geometrically.
type Loads struct {
	Nodes     int
	Baseline  int64
	Jitter    int64   // uniform per-step jitter half-width
	BurstProb float64 // per-node per-step probability of a new burst
	BurstSize int64
	Max       int64

	rng   *rngx.Source
	burst []int64
	base  []int64
}

// NewLoads returns a seeded load-trace generator.
func NewLoads(nodes int, baseline, jitter int64, burstProb float64, burstSize, max int64, seed uint64) *Loads {
	g := &Loads{
		Nodes: nodes, Baseline: baseline, Jitter: jitter,
		BurstProb: burstProb, BurstSize: burstSize, Max: max,
		rng: rngx.New(seed),
	}
	g.burst = make([]int64, nodes)
	g.base = make([]int64, nodes)
	for i := range g.base {
		g.base[i] = baseline/2 + g.rng.Int63n(baseline+1)
	}
	return g
}

// Name implements Generator.
func (g *Loads) Name() string { return fmt.Sprintf("loads(burst=%g)", g.BurstProb) }

// N implements Generator.
func (g *Loads) N() int { return g.Nodes }

// Next implements Generator.
func (g *Loads) Next(int) []int64 {
	out := make([]int64, g.Nodes)
	for i := range out {
		if g.rng.Bool(g.BurstProb) {
			g.burst[i] += g.BurstSize/2 + g.rng.Int63n(g.BurstSize+1)
		}
		g.burst[i] -= g.burst[i] / 4 // geometric decay
		j := g.rng.Int63n(2*g.Jitter+1) - g.Jitter
		out[i] = clampVal(g.base[i]+g.burst[i]+j, g.Max)
	}
	return out
}

// --- Replay ---

// Replay feeds back a recorded matrix.
type Replay struct {
	Label  string
	Matrix [][]int64
}

// NewReplay wraps a recorded matrix; steps beyond the recording repeat the
// last row.
func NewReplay(label string, matrix [][]int64) *Replay {
	if len(matrix) == 0 {
		panic("stream: empty replay matrix")
	}
	return &Replay{Label: label, Matrix: matrix}
}

// Name implements Generator.
func (g *Replay) Name() string { return "replay(" + g.Label + ")" }

// N implements Generator.
func (g *Replay) N() int { return len(g.Matrix[0]) }

// Next implements Generator.
func (g *Replay) Next(t int) []int64 {
	if t >= len(g.Matrix) {
		t = len(g.Matrix) - 1
	}
	return append([]int64(nil), g.Matrix[t]...)
}

// --- Distinctness wrapper ---

// Distinct makes any generator's values pairwise distinct by the order- and
// shape-preserving map v ↦ v·n + (n-1-i); required by exact-problem
// experiments (the paper assumes distinct values via identifier
// tie-breaking).
type Distinct struct {
	Inner Generator
}

// Name implements Generator.
func (g Distinct) Name() string { return "distinct:" + g.Inner.Name() }

// N implements Generator.
func (g Distinct) N() int { return g.Inner.N() }

// Next implements Generator.
func (g Distinct) Next(t int) []int64 {
	vals := g.Inner.Next(t)
	n := int64(len(vals))
	for i := range vals {
		vals[i] = vals[i]*n + (n - 1 - int64(i))
		if vals[i] > eps.MaxValue {
			vals[i] = eps.MaxValue - int64(i)
		}
	}
	return vals
}

// ObserveFilters forwards adaptivity to the inner generator.
func (g Distinct) ObserveFilters(filters []filter.Interval, output []int) {
	if a, ok := g.Inner.(Adaptive); ok {
		a.ObserveFilters(filters, output)
	}
}
