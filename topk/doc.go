// Package topk is the public, embeddable entry point of this module: a
// push-based server-side monitor that continuously knows an ε-approximate
// set of the k largest-valued nodes among n distributed streams, spending
// as few node↔server messages as possible (Mäcker, Malatyali, Meyer auf
// der Heide: "On Competitive Algorithms for Approximations of
// Top-k-Position Monitoring of Distributed Streams", IPPS 2016).
//
// Everything else in the module lives under internal/; applications import
// only this package:
//
//	m, err := topk.New(4, topk.MustEpsilon(1, 8),
//		topk.WithNodes(64),
//		topk.WithEngine(topk.Live),
//		topk.WithShards(4),
//		topk.WithSeed(7))
//	defer m.Close()
//
//	m.UpdateBatch(batch)        // one batch of pushes = one monitored time step
//	ids := m.TopK(buf)          // current ε-Top-k positions, zero-alloc
//	cost := m.Cost()            // messages / rounds / bits spent so far
//
// # Push-based ingest
//
// The paper's protocols are defined over synchronous time steps: at each
// step every node observes a new value, then server and nodes exchange
// messages until the output is valid again. This package inverts the
// simulation harness's generator-driven loop into a push API and batches
// pushes into engine steps:
//
//   - [Monitor.UpdateBatch] applies one batch of pushes as ONE time step
//     (nodes absent from the batch keep their previous value — the model's
//     "unchanged observation"). This is the bulk ingest path: one batch per
//     collection interval, whatever arrived.
//   - [Monitor.Update] stages a single push into the current batch. The
//     pending batch is committed automatically when the same node pushes
//     twice (a node observes one value per step) and explicitly by
//     [Monitor.Flush], which always closes a step — an empty Flush is a
//     heartbeat tick on which the monitor may go entirely quiet.
//
// Reads ([Monitor.TopK], [Monitor.Cost], [Monitor.Check]) reflect the last
// committed step; staged-but-unflushed pushes are not visible yet.
//
// # Engines, algorithms, correctness
//
// WithEngine selects the execution substrate: [Lockstep] (deterministic
// sequential, the default — cheapest and bit-reproducible) or [Live]
// (worker-sharded goroutines over channels, see WithShards). Both are
// observably identical for equal seeds; the facade-equivalence tests prove
// a pushed run byte-identical to driving the engines directly.
//
// WithMonitor selects the paper's algorithm: the Theorem 5.8 controller
// [Approx] (default), the exact monitor [Exact] (Corollary 3.3; assumes
// pairwise-distinct values), [TopKProtocol] (Section 4), [Dense]
// (Section 5.2; ε-correct in the dense regime it is designed for),
// [HalfEps] (Corollary 5.9), and the [Naive] / [MidNaive] baselines.
//
// [Monitor.Check] recomputes the ground truth over the monitor's mirror of
// all pushed values and verifies the current output's ε-Top-k property —
// the referee the examples and the CLI run every step.
//
// # Performance
//
// The steady-state push path allocates nothing: Update, UpdateBatch, and
// TopK are 0 allocs/op on both engines (benchmark- and test-enforced),
// riding on the engines' zero-allocation step pipeline. [Monitor.Reset]
// rewinds monitor and engine to a fresh construction with a new seed while
// keeping all buffers and goroutines, so long-running embedders can run
// many sessions on one Monitor.
//
// The Reset contract is also the replay-recovery contract: a Monitor is a
// pure function of (config, seed, batch sequence), so persisting those
// inputs and re-driving them through Reset + UpdateBatch reconstructs the
// monitor byte for byte — outputs, every cost counter, fault coins.
// cmd/topkd's write-ahead batch log (internal/wal, topkd -data-dir) builds
// crash recovery on exactly this property, and [Monitor.ValidateBatch]
// exists for such journal-before-commit consumers: it runs UpdateBatch's
// full input validation without committing, so a batch is only journaled
// if its replay can never fail.
//
// [Monitor.Subscribe] delivers an [Event] whenever a committed step changed
// the top-k set — the hook for HTTP/gRPC frontends and reactive consumers
// ([Monitor.Unsubscribe] detaches one subscriber without closing the
// monitor, e.g. on client disconnect; cmd/topkd's SSE bridge is the
// reference consumer).
//
// # Faults and health
//
// The paper assumes reliable synchronous messaging. WithFaults drops that
// assumption deterministically: the engine is wrapped in a seed-driven
// fault injector (message drops, duplications, delayed filter assignments,
// scheduled node crashes, bounded unicast retries — every coin from a
// dedicated RNG stream, so chaotic runs replay byte-identically), and the
// monitor supervises every committed step. Outputs that fail the built-in
// referee, protocol failures, and detected node desyncs surface through
// [Monitor.Health] ([Fresh], [Recovering], [Degraded] + staleness age) and
// as degradation [Event]s on Subscribe, while the monitor heals itself with
// epoch resyncs under exponential backoff. The guarantee: after every
// committed step, either [Monitor.Check] passes or Health is not [Fresh] —
// the monitor never serves a wrong answer silently. [Cost] carries the
// fault bill (DroppedMsgs, DupMsgs, Retries, Resyncs, StaleSteps)
// separately from the model's message counters, which keep billing only
// delivered messages.
package topk
