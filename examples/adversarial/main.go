// Adversarial: two adversaries against the public topk API.
//
// Part 1 — the adversarial DATA of Theorem 5.1's Ω(σ/k) lower bound: an
// adaptive adversary reads the monitor's published output each step —
// exactly what the paper's adversary may observe — and always drops one
// currently-output plateau node clearly out of the ε-neighborhood, forcing
// a violation and an output change on every single step. An offline
// algorithm that knew the future would re-filter once per phase; any
// online filter-based monitor pays every step, and the per-phase cost
// grows with the plateau size σ.
//
// Part 2 — an adversarial NETWORK: the same monitoring session run under a
// deterministic fault plan (WithFaults) that drops, duplicates and delays
// messages and crashes nodes mid-run. The demo tallies the no-silent-
// wrong-answers guarantee: every committed step either validates against
// the built-in referee or is flagged non-Fresh through Health().
package main

import (
	"fmt"
	"log"

	"topkmon/topk"
)

const (
	k      = 2
	phases = 5
	low    = 4              // clearly-below bystander nodes
	plat   = int64(1 << 24) // the plateau level
)

// run executes one adversarial session against a plateau of sigma nodes and
// returns total messages and steps.
func run(sigma int, e topk.Epsilon) (int64, int64) {
	n := sigma + low
	steps := phases * (sigma - k + 1)
	m, err := topk.New(k, e, topk.WithNodes(n), topk.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	// Plateau nodes 0..sigma-1 all sit at plat (distinct by a tiny
	// order-preserving offset); bystanders sit far below.
	vals := make([]int64, n)
	for i := 0; i < sigma; i++ {
		vals[i] = plat + int64(sigma-i)
	}
	for i := sigma; i < n; i++ {
		vals[i] = 1000 + int64(i)
	}

	batch := make([]topk.Update, 0, n)
	push := func() {
		batch = batch[:0]
		for i, v := range vals {
			batch = append(batch, topk.Update{Node: i, Value: v})
		}
		if err := m.UpdateBatch(batch); err != nil {
			log.Fatal(err)
		}
		if err := m.Check(); err != nil {
			log.Fatal(err)
		}
	}
	push() // step 0 establishes the plateau

	topBuf := make([]int, 0, k)
	dropped := -1
	for t := 1; t < steps; t++ {
		// The adversary watches the published output and victimises a node
		// the monitor currently vouches for.
		topBuf = m.TopK(topBuf)
		victim := -1
		for _, id := range topBuf {
			if id < sigma && id != dropped {
				victim = id
				break
			}
		}
		if victim < 0 {
			log.Fatalf("step %d: output %v contains no plateau node", t, topBuf)
		}
		if dropped >= 0 {
			vals[dropped] = plat + 1 // rejoin the plateau
		}
		vals[victim] = plat / 4 // clearly outside the ε-neighborhood
		dropped = victim
		push()
	}
	return m.Cost().Messages, int64(steps)
}

func main() {
	e := topk.MustEpsilon(1, 4)
	fmt.Printf("adaptive adversary against the published output: k=%d, ε=%s, %d phases per run\n\n", k, e, phases)
	fmt.Printf("%8s  %10s  %12s  %10s  %14s\n",
		"σ", "σ/k", "online msgs", "msgs/step", "msgs/phase")
	for _, sigma := range []int{6, 12, 24, 48, 96} {
		msgs, steps := run(sigma, e)
		fmt.Printf("%8d  %10.1f  %12d  %10.2f  %14.1f\n",
			sigma, float64(sigma)/k, msgs, float64(msgs)/float64(steps),
			float64(msgs)/phases)
	}
	fmt.Println("\nan offline optimum re-filters once per phase (O(k) messages); the online")
	fmt.Println("monitor is forced to react every step, so its per-phase bill grows with σ —")
	fmt.Println("the Ω(σ/k) lower bound is real, not an artifact.")

	chaos()
}

// chaos is the adversarial-network demo: a session under injected message
// faults and node crashes, with every committed step either validated or
// explicitly flagged.
func chaos() {
	const (
		n     = 24
		kk    = 4
		steps = 400
	)
	e := topk.MustEpsilon(1, 8)
	m, err := topk.New(kk, e, topk.WithNodes(n), topk.WithSeed(5),
		topk.WithFaults(&topk.FaultPlan{
			Drop:  0.08,
			Dup:   0.03,
			Delay: 0.03,
			Crashes: []topk.Crash{
				{Node: 3, From: 100, Until: 180},
				{Node: 7, From: 250, Until: 320},
			},
		}))
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	fmt.Printf("\nadversarial network: drop=8%% dup=3%% delay=3%%, two node crashes, %d steps\n", steps)

	// A drifting workload: node i oscillates deterministically around its
	// own baseline, so the top set churns and filters stay under pressure.
	vals := make([]int64, n)
	batch := make([]topk.Update, 0, n)
	var validated, flagged, silent int
	for t := 0; t < steps; t++ {
		for i := range vals {
			phase := (t + 7*i) % 40
			if phase > 20 {
				phase = 40 - phase
			}
			vals[i] = int64(1000*(i+1) + 900*phase)
		}
		batch = batch[:0]
		for i, v := range vals {
			batch = append(batch, topk.Update{Node: i, Value: v})
		}
		if err := m.UpdateBatch(batch); err != nil {
			log.Fatal(err)
		}
		switch h := m.Health(); {
		case m.Check() == nil:
			validated++
		case h.State != topk.Fresh:
			flagged++
		default:
			silent++
		}
	}

	c := m.Cost()
	fmt.Printf("fault bill: dropped=%d dup=%d retries=%d resyncs=%d stale-steps=%d\n",
		c.DroppedMsgs, c.DupMsgs, c.Retries, c.Resyncs, c.StaleSteps)
	fmt.Printf("steps: %d validated, %d degraded-and-flagged, %d SILENT WRONG (must be 0)\n",
		validated, flagged, silent)
	if silent > 0 {
		log.Fatal("the no-silent-wrong-answers guarantee is broken")
	}
	fmt.Println("every step was either provably ε-valid or explicitly flagged — no silent lies.")
}
