package sketch

import "fmt"

// SpaceSaving is the Metwally–Agrawal–El Abbadi stream-summary sketch: c
// counters and a min-heap over them. A new item evicts the minimum counter
// and inherits its count as the per-item over-estimation error, which
// yields the classic guarantees (for every item x with true count f(x)):
//
//	Estimate(x) >= f(x)                      (never under-estimates)
//	Estimate(x) - Err(x) <= f(x)             (per-item error is tracked)
//	ErrorBound() = min counter <= Total()/c  (the epsilon*N bound, eps=1/c)
//
// Eviction is deterministic: the minimum counter, ties broken by the
// smallest item id, so runs replay byte-identically.
type SpaceSaving struct {
	cap   int
	cnt   []int64
	err   []int64
	item  []uint64
	n     int
	total int64

	heap []int32 // heap of slot indices, min by (cnt, item)
	pos  []int32 // slot -> heap position
	idx  oaTable
	ord  heavyOrder
}

// NewSpaceSaving returns a Space-Saving summary with capacity counters
// (capacity >= 1).
func NewSpaceSaving(capacity int) *SpaceSaving {
	if capacity < 1 {
		panic("sketch: SpaceSaving capacity must be >= 1")
	}
	s := &SpaceSaving{
		cap:  capacity,
		cnt:  make([]int64, capacity),
		err:  make([]int64, capacity),
		item: make([]uint64, capacity),
		heap: make([]int32, 0, capacity),
		pos:  make([]int32, capacity),
		idx:  newOATable(capacity),
	}
	s.ord = heavyOrder{order: make([]int32, 0, capacity), cnt: s.cnt, item: s.item}
	return s
}

// Name implements Summary.
func (s *SpaceSaving) Name() string { return fmt.Sprintf("space-saving(c=%d)", s.cap) }

// Total implements Summary.
func (s *SpaceSaving) Total() int64 { return s.total }

// ErrorBound implements Summary: the largest possible over-estimate of any
// single item — the minimum counter once the summary is full, 0 before
// (every count is exact until the first eviction).
func (s *SpaceSaving) ErrorBound() int64 {
	if s.n < s.cap {
		return 0
	}
	return s.cnt[s.heap[0]]
}

// Observe implements Summary.
func (s *SpaceSaving) Observe(item uint64, delta int64) {
	if delta <= 0 {
		return
	}
	s.total += delta
	if slot := s.idx.get(item); slot >= 0 {
		s.cnt[slot] += delta
		s.siftDown(s.pos[slot])
		return
	}
	if s.n < s.cap {
		slot := int32(s.n)
		s.n++
		s.cnt[slot] = delta
		s.err[slot] = 0
		s.item[slot] = item
		s.idx.put(item, slot)
		s.heap = append(s.heap, slot)
		s.pos[slot] = int32(len(s.heap) - 1)
		s.siftUp(int32(len(s.heap) - 1))
		return
	}
	// Evict the deterministic minimum: it vouches for the new item's count.
	slot := s.heap[0]
	s.idx.del(s.item[slot])
	s.err[slot] = s.cnt[slot]
	s.cnt[slot] += delta
	s.item[slot] = item
	s.idx.put(item, slot)
	s.siftDown(0)
}

// Estimate implements Summary. A tracked item returns its counter and
// recorded takeover error; an untracked item is bounded by the minimum
// counter (it was evicted at or below that count), so est = bound = min.
func (s *SpaceSaving) Estimate(item uint64) (est, bound int64) {
	if slot := s.idx.get(item); slot >= 0 {
		return s.cnt[slot], s.err[slot]
	}
	if s.n < s.cap {
		return 0, 0 // never tracked and nothing ever evicted: true count is 0
	}
	m := s.cnt[s.heap[0]]
	return m, m
}

// Heavy implements Summary.
func (s *SpaceSaving) Heavy(k int, dst []Counter) []Counter {
	return appendHeavy(&s.ord, s.n, k, dst, s.err)
}

// Reset implements Summary. Space-Saving is deterministic, so the seed
// only honors the rewind contract.
func (s *SpaceSaving) Reset(uint64) {
	s.n = 0
	s.total = 0
	s.heap = s.heap[:0]
	s.idx.clear()
}

// less orders heap entries by (count, item) ascending — the deterministic
// eviction order.
func (s *SpaceSaving) less(a, b int32) bool {
	if s.cnt[a] != s.cnt[b] {
		return s.cnt[a] < s.cnt[b]
	}
	return s.item[a] < s.item[b]
}

func (s *SpaceSaving) swap(i, j int32) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.pos[s.heap[i]] = i
	s.pos[s.heap[j]] = j
}

func (s *SpaceSaving) siftUp(i int32) {
	for i > 0 {
		p := (i - 1) / 2
		if !s.less(s.heap[i], s.heap[p]) {
			return
		}
		s.swap(i, p)
		i = p
	}
}

func (s *SpaceSaving) siftDown(i int32) {
	n := int32(len(s.heap))
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && s.less(s.heap[l], s.heap[m]) {
			m = l
		}
		if r < n && s.less(s.heap[r], s.heap[m]) {
			m = r
		}
		if m == i {
			return
		}
		s.swap(i, m)
		i = m
	}
}
