// Package rngx provides a small, fast, deterministic PRNG (splitmix64) with
// no global state. Every protocol, node, and experiment owns its own Source
// seeded explicitly, so whole simulations replay bit-for-bit from a seed —
// a requirement for the paper-reproduction harness and for the lockstep/live
// engine equivalence tests.
package rngx

import "math"

// Source is a splitmix64 PRNG. The zero value is a valid source seeded at 0;
// prefer New to decorrelate streams.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Child derives an independent source for a subcomponent, mixing in an id.
// Children of distinct ids, and the parent, produce decorrelated streams.
// Deriving a child does not advance the parent, so the order in which
// children are created never matters.
func (s *Source) Child(id uint64) *Source {
	return New(s.ChildSeed(id))
}

// ChildSeed returns the seed Child(id) would construct its stream from,
// without allocating — the allocation-free half of Child used by engine
// Reset to rewind existing node sources in place.
func (s *Source) ChildSeed(id uint64) uint64 {
	return mix(s.state ^ (0x9e3779b97f4a7c15 * (id + 1)))
}

// Reseed rewinds the source to the state New(seed) would start from,
// reusing the Source value. Combined with ChildSeed it lets a whole engine
// restore its RNG tree to a freshly-constructed state without allocating.
func (s *Source) Reseed(seed uint64) { s.state = seed }

// Uint64 returns the next pseudo-random 64-bit value.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return mix(s.state)
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rngx: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (s *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rngx: Int63n with non-positive n")
	}
	return int64(s.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p (clamped to [0,1]).
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method
// without caching the second variate, keeping consumption order replayable).
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}
