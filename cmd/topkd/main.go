// Command topkd is the multi-tenant HTTP ingest frontend: one listener
// multiplexing many independent ε-Top-k monitors (tenant id →
// topk.Monitor), each created lazily from the per-server defaults below or
// explicitly with a per-tenant JSON config. It is a thin binary over
// internal/serve, which itself consumes only the public topk facade — the
// server path inherits the facade's byte-identical-outputs and
// no-silent-wrong-answers guarantees (TestServeEquivalence pins the
// former; the /v1/{tenant}/cost snapshot exposes the latter as
// "silentInvalid").
//
// Usage:
//
//	topkd [-addr :7070] [-n 64] [-k 4] [-eps 1/8] [-engine lockstep]
//	      [-shards 0] [-monitor approx] [-seed 1] [-faults spec]
//	      [-lazy] [-max-tenants 0] [-max-batch 65536]
//	      [-data-dir DIR] [-fsync always|interval|never] [-snapshot-every 1024]
//
// With -data-dir set the server is durable: every accepted batch is
// journaled to a per-tenant write-ahead log before its step commits, all
// tenants are replayed byte-identically on the next boot, and clients may
// pass ?client=&seq= on updates for exactly-once ingest under retries.
// -fsync picks when appends reach stable storage (lifecycle records are
// always fsynced); -snapshot-every sets the steps between durable
// snapshot sidecars. On graceful shutdown the server drains in-flight
// updates, fsyncs, and closes every log.
//
// The API (see internal/serve for the full route table):
//
//	curl -XPUT localhost:7070/v1/web -d '{"nodes":128,"k":8,"engine":"live"}'
//	curl -XPOST localhost:7070/v1/web/update -d '[{"node":0,"value":500}]'
//	curl localhost:7070/v1/web/topk
//	curl localhost:7070/v1/web/cost
//	curl -N localhost:7070/v1/web/events        # SSE stream
//
// Load-driving a running topkd: internal/tools/loadgen (or `make
// bench-serve` for the scripted boot + drive + BENCH snapshot).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"topkmon/internal/serve"
	"topkmon/topk"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	n := flag.Int("n", 64, "default nodes per tenant")
	k := flag.Int("k", 4, "default size of the monitored top set")
	epsStr := flag.String("eps", "1/8", "default allowed error ε as a fraction p/q")
	engine := flag.String("engine", "lockstep", "default engine: lockstep | live")
	shards := flag.Int("shards", 0, "default live-engine worker shards (0 = GOMAXPROCS)")
	monitor := flag.String("monitor", "approx",
		"default algorithm: approx|topk|exact|dense|half-eps|naive|mid-naive")
	seed := flag.Uint64("seed", 1, "default random seed")
	faultSpec := flag.String("faults", "",
		"default fault injection: comma list of drop=P, dup=P, delay=P, retries=N, crash=NODE@FROM:UNTIL")
	lazy := flag.Bool("lazy", true, "create unknown tenants from the defaults on first ingest")
	maxTenants := flag.Int("max-tenants", 0, "tenant limit (0 = unlimited)")
	maxBatch := flag.Int("max-batch", 0, "updates per request limit (0 = 65536)")
	dataDir := flag.String("data-dir", "", "write-ahead log directory (empty = volatile, no durability)")
	fsync := flag.String("fsync", "always", "WAL fsync policy: always | interval | never")
	snapEvery := flag.Int("snapshot-every", 0, "committed steps between durable snapshots (0 = 1024)")
	flag.Parse()

	// Validate the default config eagerly — a typo should fail the boot,
	// not the first tenant creation.
	if _, err := topk.ParseEpsilon(*epsStr); err != nil {
		fail(err)
	}
	if _, err := topk.ParseEngine(*engine); err != nil {
		fail(err)
	}
	if _, err := topk.ParseAlgorithm(*monitor); err != nil {
		fail(err)
	}
	plan, err := topk.ParseFaultPlan(*faultSpec)
	if err != nil {
		fail(err)
	}
	var faults *serve.FaultConfig
	if plan != nil {
		faults = &serve.FaultConfig{
			Drop: plan.Drop, Dup: plan.Dup, Delay: plan.Delay, Retries: plan.Retries,
		}
		for _, c := range plan.Crashes {
			faults.Crashes = append(faults.Crashes,
				serve.CrashConfig{Node: c.Node, From: c.From, Until: c.Until})
		}
	}

	srv, err := serve.New(serve.Options{
		Defaults: serve.Config{
			Nodes: *n, K: *k, Eps: *epsStr, Engine: *engine, Shards: *shards,
			Monitor: *monitor, Seed: *seed, Faults: faults,
		},
		Lazy:       *lazy,
		MaxTenants: *maxTenants,
		MaxBatch:   *maxBatch,
		Durability: serve.Durability{Dir: *dataDir, Fsync: *fsync, SnapshotEvery: *snapEvery},
	})
	if err != nil {
		fail(err)
	}
	defer srv.Close()

	hs := &http.Server{Addr: *addr, Handler: srv}
	done := make(chan error, 1)
	go func() { done <- hs.ListenAndServe() }()

	d := srv.Pool().Defaults()
	fmt.Printf("topkd: listening on %s (defaults: n=%d k=%d ε=%s engine=%s monitor=%s seed=%d lazy=%v)\n",
		*addr, d.Nodes, d.K, d.Eps, d.Engine, d.Monitor, d.Seed, *lazy)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
	case s := <-sig:
		fmt.Printf("topkd: %v — draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := hs.Shutdown(ctx)
		// Close before reporting the shutdown error: in-flight commits
		// drain tenant by tenant, every log is fsynced and closed, and the
		// data directory is left ready for the next boot (fail() exits
		// without running defers).
		srv.Close()
		if err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "topkd: %v\n", err)
	os.Exit(2)
}
