// Package faults implements a deterministic, seed-driven fault injector at
// the cluster boundary: Wrap turns any cluster.Engine into one whose
// message layer misbehaves per a composable Plan — message drop,
// duplication, node crash/recover schedules, and delayed filter application
// — while both engines underneath run unchanged.
//
// # Determinism
//
// Every coin the injector flips comes from its own rngx child stream,
// derived from the engine seed and fully disjoint from the server and
// per-node streams (the injector draws nothing from the engine's RNGs and
// perturbs none of their draws). A run under seed s and plan p therefore
// replays byte-identically — outputs, model counters, fault counters, and
// every injected fault — and Reset(seed) rewinds the injector's stream
// along with the engine, so a reset faulty run replays a fresh faulty run
// bit for bit (the reset-under-fault property tests).
//
// # Fault model
//
// The injector perturbs messages, not node state:
//
//   - Server→node unicasts (SetFilter, SetTagFilter, probe requests) can be
//     dropped. A reliability sublayer retries a dropped unicast up to
//     Plan.Retries times with exponentially growing backoff billed as
//     protocol rounds; only when every attempt fails (or the target is
//     crashed) is the op lost for good.
//   - Broadcasts (FilterRule, MaxFind*) can be dropped whole — no node
//     receives them — or, for filter rules, delivered twice (duplication is
//     not masked by retries: the server believes one copy was sent).
//   - Node→server reports (sweep/existence reports, collect replies) can be
//     dropped or duplicated individually.
//   - Filter application (SetFilter, SetTagFilter, BroadcastRule) can be
//     delayed one step: the op is held in flight and applied just before
//     the next step's observations install.
//   - A crashed node (per Plan.Crashes windows, in committed-step time)
//     receives nothing and reports nothing; a probe to it returns its last
//     value from before the crash (the server reading a stale cache). Node
//     state inside the engine keeps evolving invisibly, so a recovered node
//     may be arbitrarily desynced — which is exactly what the recovery
//     path must handle.
//
// Model message counters keep billing what the engine delivered;
// the injected faults are accounted separately in the pinned
// metrics.Counters fault counters (DroppedMsgs, DupMsgs, Retries), so a
// faulty run's bill remains comparable to a clean run's.
//
// # Desync detection
//
// The wrapper mirrors every filter and tag the server has assigned — the
// state the server believes the cluster is in. A violation-sweep report
// whose value sits inside the reporter's believed filter is impossible
// under that belief: some earlier filter op must have been lost (a missed
// SetFilter/FilterRule ack surfacing as an impossible report). The wrapper
// latches this as a desync signal that the recovery supervisor (topk
// facade) polls via TakeDesync to trigger an epoch resync before the
// divergence grows into a wrong answer.
//
// # Transparency
//
// A nil or zero Plan makes the wrapper bit-for-bit transparent: every
// method delegates straight to the engine, no coins are drawn, no report
// slices are copied, and the steady state allocates nothing — the existing
// cross-engine equivalence and zero-allocation suites pass through a
// zero-plan wrapper unchanged.
package faults

import (
	"fmt"

	"topkmon/internal/cluster"
	"topkmon/internal/filter"
	"topkmon/internal/metrics"
	"topkmon/internal/rngx"
	"topkmon/internal/wire"
)

// DefaultRetries is the reliability sublayer's retry budget per unicast
// when Plan.Retries is 0.
const DefaultRetries = 3

// NoRetries disables the reliability sublayer (Plan.Retries = NoRetries):
// a dropped unicast is lost on the first coin.
const NoRetries = -1

// Crash takes one node down for a window of committed steps: the node is
// unreachable (and silent) during steps t with From ≤ t < Until, where the
// first committed step is step 1. Windows of distinct Crash entries for the
// same node may not overlap.
type Crash struct {
	Node int
	// From is the first committed step (1-based) the node is down for.
	From int64
	// Until is the first step the node is back up. Until ≤ From is an
	// empty window.
	Until int64
}

// KindMask selects which wire message kinds the drop/dup/delay coins apply
// to. The zero mask means "all kinds".
type KindMask uint16

// MaskOf returns a mask enabling exactly the given kinds.
func MaskOf(kinds ...wire.Kind) KindMask {
	var m KindMask
	for _, k := range kinds {
		m |= 1 << uint(k)
	}
	return m
}

// Has reports whether kind k is enabled by the mask (zero mask = all).
func (m KindMask) Has(k wire.Kind) bool {
	return m == 0 || m&(1<<uint(k)) != 0
}

// Plan is a composable description of the faults to inject. The zero value
// (and nil) injects nothing and makes the wrapper fully transparent.
type Plan struct {
	// Drop is the per-message drop probability in [0, 1].
	Drop float64
	// Dup is the per-message duplication probability in [0, 1].
	Dup float64
	// Delay is the probability a filter op (SetFilter, SetTagFilter,
	// BroadcastRule) is held in flight and applied at the start of the
	// next step instead of immediately.
	Delay float64
	// Kinds masks which message kinds the rates above apply to; the zero
	// mask applies them to every kind.
	Kinds KindMask
	// Crashes is the node crash/recover schedule.
	Crashes []Crash
	// Retries is the reliability sublayer's budget of redelivery attempts
	// per dropped unicast: 0 means DefaultRetries, NoRetries disables
	// retries entirely.
	Retries int
}

// Active reports whether the plan can inject anything at all; an inactive
// plan (nil or zero rates and no crashes) makes Wrap fully transparent.
func (p *Plan) Active() bool {
	return p != nil && (p.Drop > 0 || p.Dup > 0 || p.Delay > 0 || len(p.Crashes) > 0)
}

// retries resolves the Retries encoding to a concrete budget.
func (p *Plan) retries() int {
	switch {
	case p == nil || p.Retries == 0:
		return DefaultRetries
	case p.Retries < 0:
		return 0
	default:
		return p.Retries
	}
}

// Validate checks the plan's rates and crash windows.
func (p *Plan) Validate(n int) error {
	if p == nil {
		return nil
	}
	for _, r := range [...]struct {
		name string
		v    float64
	}{{"Drop", p.Drop}, {"Dup", p.Dup}, {"Delay", p.Delay}} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("faults: %s rate %v outside [0, 1]", r.name, r.v)
		}
	}
	for _, c := range p.Crashes {
		if c.Node < 0 || c.Node >= n {
			return fmt.Errorf("faults: crash node %d outside [0, %d)", c.Node, n)
		}
		if c.From < 1 {
			return fmt.Errorf("faults: crash window for node %d starts at step %d, want ≥ 1", c.Node, c.From)
		}
	}
	return nil
}

// faultRNG is the Child id of the injector's randomness stream; distinct
// from the engines' server stream id and from any node id, so the
// injector's draws are decorrelated from — and invisible to — the engine.
const faultRNG = 0xFA177 // "fault"

// delayedOp is one filter op held in flight across a step boundary.
type delayedOp struct {
	kind wire.Kind // KindSetFilter, KindTag (tag+filter), or KindFilterRule
	id   int
	tag  wire.Tag
	iv   filter.Interval
	rule wire.FilterRule
}

// Cluster wraps an engine with the fault injector. It implements
// cluster.Engine; protocols and the topk facade run on it unchanged.
type Cluster struct {
	inner cluster.Engine
	plan  Plan
	on    bool // plan.Active() at Wrap/Reset time
	rng   *rngx.Source
	ctr   *metrics.Counters

	// step is the 1-based index of the current committed step (incremented
	// by Advance); crash windows are expressed in this clock.
	step int64

	// crashWin indexes the plan's crash windows by node.
	crashWin map[int][]Crash

	// believedF/believedT mirror the filters and tags the server has
	// assigned — what the cluster looks like if no message was lost. The
	// desync detector compares violation reports against this belief.
	believedF []filter.Interval
	believedT []wire.Tag

	// lastVals freezes each node's last value from before a crash, backing
	// the stale probe replies served while the node is down.
	lastVals []int64

	// pending holds delayed filter ops, applied in order at next Advance.
	pending []delayedOp

	// desync latches the impossible-report signal until TakeDesync.
	desync bool

	// Report buffers for the perturbed Sweep/Collect paths, honouring the
	// cluster contract (collect results survive one further Collect; sweep
	// results until the next sweep). Unused — and unallocated — while the
	// plan is inactive, where inner slices pass through untouched.
	sweepBuf    []wire.Report
	collectBufs [2][]wire.Report
	collectIdx  int
}

var _ cluster.Engine = (*Cluster)(nil)

// Wrap layers the fault injector over an engine. The injector's RNG stream
// is derived from seed exactly as the engine derives its own streams, so
// Wrap(New(n, s), p, s) is one deterministic system under seed s. The plan
// is copied; later mutations of p do not affect the wrapper. Wrap panics on
// an invalid plan — a harness bug, not a data condition.
func Wrap(inner cluster.Engine, p *Plan, seed uint64) *Cluster {
	if err := p.Validate(inner.N()); err != nil {
		panic(err)
	}
	w := &Cluster{
		inner: inner,
		rng:   rngx.New(seed).Child(faultRNG),
		ctr:   inner.Counters(),
	}
	if p != nil {
		w.plan = *p
		w.plan.Crashes = append([]Crash(nil), p.Crashes...)
	}
	w.on = w.plan.Active()
	if w.on {
		n := inner.N()
		w.crashWin = make(map[int][]Crash, len(w.plan.Crashes))
		for _, c := range w.plan.Crashes {
			w.crashWin[c.Node] = append(w.crashWin[c.Node], c)
		}
		w.believedF = make([]filter.Interval, n)
		w.believedT = make([]wire.Tag, n)
		w.lastVals = make([]int64, n)
		w.resetBelief()
	}
	return w
}

// resetBelief returns the server-belief mirror to the engines' initial
// state: all-admitting filters, no tags.
func (w *Cluster) resetBelief() {
	for i := range w.believedF {
		w.believedF[i] = filter.All
		w.believedT[i] = wire.TagNone
	}
	clear(w.lastVals)
}

// Inner returns the wrapped engine (harness scaffolding: Close handling
// and white-box tests).
func (w *Cluster) Inner() cluster.Engine { return w.inner }

// Plan returns a copy of the wrapper's plan.
func (w *Cluster) Plan() Plan {
	p := w.plan
	p.Crashes = append([]Crash(nil), w.plan.Crashes...)
	return p
}

// Step returns the 1-based index of the current committed step.
func (w *Cluster) Step() int64 { return w.step }

// Crashed reports whether node id is down at the current step.
func (w *Cluster) Crashed(id int) bool {
	if !w.on {
		return false
	}
	for _, c := range w.crashWin[id] {
		if w.step >= c.From && w.step < c.Until {
			return true
		}
	}
	return false
}

// TakeDesync returns and clears the latched desync signal: true when an
// impossible report (violation inside the reporter's believed filter)
// surfaced since the last call — evidence that a filter op was lost.
func (w *Cluster) TakeDesync() bool {
	d := w.desync
	w.desync = false
	return d
}

// perturb reports whether kind k's messages are subject to the plan's
// coins.
func (w *Cluster) perturb(k wire.Kind) bool {
	return w.on && w.plan.Kinds.Has(k)
}

// dropCoin draws one drop coin for kind k.
func (w *Cluster) dropCoin(k wire.Kind) bool {
	return w.perturb(k) && w.rng.Bool(w.plan.Drop)
}

// dupCoin draws one duplication coin for kind k.
func (w *Cluster) dupCoin(k wire.Kind) bool {
	return w.perturb(k) && w.rng.Bool(w.plan.Dup)
}

// delayCoin draws one delay coin for kind k.
func (w *Cluster) delayCoin(k wire.Kind) bool {
	return w.perturb(k) && w.rng.Bool(w.plan.Delay)
}

// deliverUnicast runs the reliability sublayer for one unicast of kind k to
// node id: the first attempt and up to Plan.Retries redeliveries, each
// retry billed one protocol round of backoff (1, 2, 4, … rounds — the
// synchronous model's rendering of exponential backoff) and one Retry.
// It returns false when every attempt was lost or the target is crashed —
// the op is gone for good (one DroppedMsg).
func (w *Cluster) deliverUnicast(k wire.Kind, id int) bool {
	if w.Crashed(id) {
		// No coin is drawn for an unreachable node: the sublayer burns its
		// whole retry budget against silence, then gives up.
		budget := w.plan.retries()
		for i := 0; i < budget; i++ {
			w.ctr.Retry()
			w.ctr.Rounds(1 << uint(i))
		}
		w.ctr.DroppedMsg()
		return false
	}
	if !w.dropCoin(k) {
		return true
	}
	budget := w.plan.retries()
	for i := 0; i < budget; i++ {
		w.ctr.Retry()
		w.ctr.Rounds(1 << uint(i))
		if !w.rng.Bool(w.plan.Drop) {
			return true
		}
	}
	w.ctr.DroppedMsg()
	return false
}

// ---- cluster.Cluster ----

// N implements cluster.Cluster.
func (w *Cluster) N() int { return w.inner.N() }

// Counters implements cluster.Cluster.
func (w *Cluster) Counters() *metrics.Counters { return w.ctr }

// Rand implements cluster.Cluster.
func (w *Cluster) Rand() *rngx.Source { return w.inner.Rand() }

// Reset implements cluster.Cluster: the engine rewinds as usual and the
// injector rewinds with it — RNG stream re-derived from seed, step clock,
// belief mirror, delay queue, and desync latch cleared — so a reset faulty
// system replays a freshly wrapped one bit for bit.
func (w *Cluster) Reset(seed uint64) {
	w.inner.Reset(seed)
	w.rng.Reseed(rngx.New(seed).ChildSeed(faultRNG))
	w.step = 0
	w.pending = w.pending[:0]
	w.desync = false
	if w.on {
		w.resetBelief()
	}
}

// BroadcastRule implements cluster.Cluster. The server's belief mirror is
// updated unconditionally — the server thinks the broadcast went out —
// while the coins decide what the nodes actually see: nothing (drop), the
// rule next step (delay), the rule once, or the rule twice (dup; rule
// application is not idempotent under retagging, which is the point).
func (w *Cluster) BroadcastRule(rule *wire.FilterRule) {
	if !w.on {
		w.inner.BroadcastRule(rule)
		return
	}
	w.believeRule(rule)
	if w.dropCoin(wire.KindFilterRule) {
		w.ctr.DroppedMsg()
		return
	}
	if w.delayCoin(wire.KindFilterRule) {
		w.pending = append(w.pending, delayedOp{kind: wire.KindFilterRule, rule: *rule})
		return
	}
	w.inner.BroadcastRule(rule)
	if w.dupCoin(wire.KindFilterRule) {
		w.ctr.DupMsg()
		w.inner.BroadcastRule(rule)
	}
}

// believeRule applies a filter rule to the belief mirror.
func (w *Cluster) believeRule(rule *wire.FilterRule) {
	for i := range w.believedT {
		w.believedT[i], w.believedF[i] = rule.Apply(w.believedT[i], w.believedF[i])
	}
}

// SetFilter implements cluster.Cluster.
func (w *Cluster) SetFilter(id int, iv filter.Interval) {
	if !w.on {
		w.inner.SetFilter(id, iv)
		return
	}
	w.believedF[id] = iv
	if !w.deliverUnicast(wire.KindSetFilter, id) {
		return
	}
	if w.delayCoin(wire.KindSetFilter) {
		w.pending = append(w.pending, delayedOp{kind: wire.KindSetFilter, id: id, iv: iv})
		return
	}
	w.inner.SetFilter(id, iv)
	if w.dupCoin(wire.KindSetFilter) {
		w.ctr.DupMsg()
		w.inner.SetFilter(id, iv)
	}
}

// SetTagFilter implements cluster.Cluster.
func (w *Cluster) SetTagFilter(id int, t wire.Tag, iv filter.Interval) {
	if !w.on {
		w.inner.SetTagFilter(id, t, iv)
		return
	}
	w.believedT[id], w.believedF[id] = t, iv
	if !w.deliverUnicast(wire.KindSetFilter, id) {
		return
	}
	if w.delayCoin(wire.KindSetFilter) {
		w.pending = append(w.pending, delayedOp{kind: wire.KindTag, id: id, tag: t, iv: iv})
		return
	}
	w.inner.SetTagFilter(id, t, iv)
	if w.dupCoin(wire.KindSetFilter) {
		w.ctr.DupMsg()
		w.inner.SetTagFilter(id, t, iv)
	}
}

// Probe implements cluster.Cluster. A probe to a crashed node returns the
// server's stale cache of the node — its last value from before the crash,
// classified against the believed filter — after the request's retry
// budget burns out; a dropped reply is retried like any unicast exchange.
func (w *Cluster) Probe(id int) wire.Report {
	if !w.on {
		return w.inner.Probe(id)
	}
	if !w.deliverUnicast(wire.KindProbeRequest, id) {
		v := w.lastVals[id]
		return wire.Report{ID: id, Value: v, Dir: w.believedF[id].Violation(v)}
	}
	rep := w.inner.Probe(id)
	if w.dropCoin(wire.KindProbeReply) {
		// The reply, not the request, was lost; the sublayer re-asks.
		budget := w.plan.retries()
		for i := 0; i < budget; i++ {
			w.ctr.Retry()
			w.ctr.Rounds(1 << uint(i))
			if !w.rng.Bool(w.plan.Drop) {
				return rep
			}
		}
		w.ctr.DroppedMsg()
		v := w.lastVals[id]
		return wire.Report{ID: id, Value: v, Dir: w.believedF[id].Violation(v)}
	}
	return rep
}

// perturbReports filters one batch of node→server reports of kind k into
// dst: crashed senders are silenced, each surviving report draws a drop
// and a dup coin. Coins are drawn in report order, so the outcome is a
// pure function of (seed, plan, history).
func (w *Cluster) perturbReports(dst []wire.Report, reps []wire.Report, k wire.Kind) []wire.Report {
	dst = dst[:0]
	for _, r := range reps {
		if w.Crashed(r.ID) {
			continue
		}
		if w.dropCoin(k) {
			w.ctr.DroppedMsg()
			continue
		}
		dst = append(dst, r)
		if w.dupCoin(k) {
			w.ctr.DupMsg()
			dst = append(dst, r)
		}
	}
	return dst
}

// checkImpossible latches the desync signal for violation reports that
// contradict the server's belief: the reported value sits inside the
// filter the server assigned to the reporter, so the node must be running
// an older (lost) filter.
func (w *Cluster) checkImpossible(p wire.Pred, reps []wire.Report) {
	if p.Kind != wire.PredViolating {
		return
	}
	for _, r := range reps {
		if w.believedF[r.ID].Contains(r.Value) {
			w.desync = true
			return
		}
	}
}

// Collect implements cluster.Cluster. Under an active plan the inner
// result is perturbed into a wrapper-owned buffer (double-buffered to
// honour the survives-one-further-Collect contract); inactive plans pass
// the engine's slice through untouched.
func (w *Cluster) Collect(p wire.Pred) []wire.Report {
	if !w.on {
		return w.inner.Collect(p)
	}
	if w.dropCoin(wire.KindCollect) {
		// The collect broadcast itself was lost: no node answers.
		w.ctr.DroppedMsg()
		return nil
	}
	reps := w.inner.Collect(p)
	out := w.perturbReports(w.collectBufs[w.collectIdx][:0], reps, wire.KindCollectReply)
	w.collectBufs[w.collectIdx] = out
	w.collectIdx ^= 1
	w.checkImpossible(p, out)
	return out
}

// Sweep implements cluster.Cluster. Crashed or dropped senders are removed
// from the terminating round; when every sender is lost the sweep looks
// silent to the server — the dangerous case the recovery supervisor exists
// for.
func (w *Cluster) Sweep(p wire.Pred) []wire.Report {
	if !w.on {
		return w.inner.Sweep(p)
	}
	reps := w.inner.Sweep(p)
	if len(reps) == 0 {
		return nil
	}
	out := w.perturbReports(w.sweepBuf[:0], reps, wire.KindExistenceReport)
	w.sweepBuf = out[:0]
	w.checkImpossible(p, out)
	if len(out) == 0 {
		return nil
	}
	return out
}

// DetectViolation implements cluster.Cluster. The decomposition (sweep,
// then one server coin among the survivors) consumes the engine's server
// RNG exactly as the engines' own DetectViolation does, so the inactive
// path is bit-transparent.
func (w *Cluster) DetectViolation() (wire.Report, bool) {
	if !w.on {
		return w.inner.DetectViolation()
	}
	senders := w.Sweep(wire.Violating())
	if len(senders) == 0 {
		return wire.Report{}, false
	}
	return senders[w.inner.Rand().Intn(len(senders))], true
}

// MaxFindInit implements cluster.Cluster; the broadcast can be lost whole.
func (w *Cluster) MaxFindInit(floor int64, reset bool) {
	if w.dropCoin(wire.KindMaxFindInit) {
		w.ctr.DroppedMsg()
		return
	}
	w.inner.MaxFindInit(floor, reset)
}

// MaxFindRaise implements cluster.Cluster; the broadcast can be lost whole.
func (w *Cluster) MaxFindRaise(holder int, best int64) {
	if w.dropCoin(wire.KindMaxFindRaise) {
		w.ctr.DroppedMsg()
		return
	}
	w.inner.MaxFindRaise(holder, best)
}

// MaxFindExclude implements cluster.Cluster; the broadcast can be lost
// whole.
func (w *Cluster) MaxFindExclude(id int) {
	if w.dropCoin(wire.KindMaxFindExclude) {
		w.ctr.DroppedMsg()
		return
	}
	w.inner.MaxFindExclude(id)
}

// ---- cluster.Inspector ----

// Values implements cluster.Inspector.
func (w *Cluster) Values() []int64 { return w.inner.Values() }

// ValuesInto implements cluster.Inspector.
func (w *Cluster) ValuesInto(dst []int64) []int64 { return w.inner.ValuesInto(dst) }

// Filters implements cluster.Inspector.
func (w *Cluster) Filters() []filter.Interval { return w.inner.Filters() }

// FiltersInto implements cluster.Inspector.
func (w *Cluster) FiltersInto(dst []filter.Interval) []filter.Interval {
	return w.inner.FiltersInto(dst)
}

// Tags implements cluster.Inspector.
func (w *Cluster) Tags() []wire.Tag { return w.inner.Tags() }

// Advance implements cluster.Inspector: the step clock ticks, filter ops
// delayed from the previous step land (in their original order, before the
// new observations install), and the stale-probe cache is refreshed for
// every node that is up.
func (w *Cluster) Advance(values []int64) {
	if !w.on {
		w.inner.Advance(values)
		return
	}
	w.step++
	for i := range w.pending {
		op := &w.pending[i]
		switch op.kind {
		case wire.KindFilterRule:
			w.inner.BroadcastRule(&op.rule)
		case wire.KindSetFilter:
			w.inner.SetFilter(op.id, op.iv)
		case wire.KindTag:
			w.inner.SetTagFilter(op.id, op.tag, op.iv)
		}
	}
	w.pending = w.pending[:0]
	for i, v := range values {
		if !w.Crashed(i) {
			w.lastVals[i] = v
		}
	}
	w.inner.Advance(values)
}

// EndStep implements cluster.Inspector.
func (w *Cluster) EndStep() { w.inner.EndStep() }
