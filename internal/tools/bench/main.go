// Command bench regenerates every reproduction experiment (E1–E12): for
// each paper claim it runs the corresponding workloads and prints the
// measured tables, optionally writing text and CSV copies. Independent
// trials and sweep points fan out across -parallel workers; the tables are
// byte-identical for every worker count.
//
// It is an internal tool (it drives internal/exp directly, so it lives
// under internal/tools rather than cmd/, which holds only consumers of the
// public topk API). Run it from the repository root:
//
//	go run ./internal/tools/bench [-quick] [-only E4] [-seed 1]
//	    [-out results/] [-figures=false] [-parallel N]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"topkmon/internal/exp"
)

func main() {
	quick := flag.Bool("quick", false, "reduced sweeps and trial counts")
	only := flag.String("only", "", "run a single experiment id (e.g. E4)")
	seed := flag.Uint64("seed", 1, "root random seed")
	out := flag.String("out", "", "directory for .txt/.csv copies of each table")
	figures := flag.Bool("figures", true, "render ASCII figures after each experiment's tables")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"worker goroutines for independent trials/sweep points (results identical for any value)")
	flag.Parse()

	opts := exp.Options{Quick: *quick, Seed: *seed, Parallelism: *parallel}
	experiments := exp.All()
	if *only != "" {
		e, ok := exp.ByID(*only)
		if !ok {
			fmt.Fprintf(os.Stderr, "bench: unknown experiment %q\n", *only)
			os.Exit(2)
		}
		experiments = []exp.Experiment{e}
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
	}

	for _, e := range experiments {
		start := time.Now()
		fmt.Printf("### %s — %s\n", e.ID, e.Title)
		fmt.Printf("    claim: %s\n\n", e.Claim)
		tables := e.Run(opts)
		for ti, tb := range tables {
			fmt.Println(tb.String())
			if *out != "" {
				base := filepath.Join(*out, fmt.Sprintf("%s_%d", strings.ToLower(e.ID), ti))
				if err := os.WriteFile(base+".txt", []byte(tb.String()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "bench: %v\n", err)
					os.Exit(1)
				}
				if err := os.WriteFile(base+".csv", []byte(tb.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "bench: %v\n", err)
					os.Exit(1)
				}
			}
		}
		if *figures {
			for fi, fig := range exp.RenderFigures(e.ID, tables) {
				fmt.Println(fig)
				if *out != "" {
					base := filepath.Join(*out, fmt.Sprintf("%s_fig%d.txt", strings.ToLower(e.ID), fi))
					if err := os.WriteFile(base, []byte(fig), 0o644); err != nil {
						fmt.Fprintf(os.Stderr, "bench: %v\n", err)
						os.Exit(1)
					}
				}
			}
		}
		fmt.Printf("    (%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
}
