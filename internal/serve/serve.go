// Package serve is the multi-tenant HTTP ingest frontend over the public
// topk facade: one listener multiplexing many independent monitors
// (tenant id → topk.Monitor), the operational form of the ROADMAP's
// "queryable distributed data structure for top-k".
//
// The package deliberately imports nothing from the rest of internal/
// except internal/wal (the durability layer, which itself imports only the
// public topk package) — so the server path inherits every facade
// guarantee (byte-identical outputs to direct engine use, zero-alloc push
// path, no-silent-wrong-answers under faults) instead of re-deriving them;
// the api-boundary check pins this, and TestServeEquivalence proves the
// HTTP transport adds nothing on top. cmd/topkd is the thin binary around
// this package (the one sanctioned internal import of cmd/).
//
// With Options.Durability.Dir set, every accepted batch is journaled to a
// per-tenant write-ahead log BEFORE its step commits, all tenants are
// replayed byte-identically on boot, and the ingest routes accept
// ?client=…&seq=… idempotency parameters: a retried POST with an
// already-committed seq is acknowledged with {"duplicate":true} and
// commits nothing — exactly-once ingest under client retries
// (TestRecoveryEquivalence, durable_test.go).
//
// Routes (all tenant state lives under /v1/{tenant}):
//
//	PUT    /v1/{tenant}          create, JSON Config body (zero fields = server defaults)
//	DELETE /v1/{tenant}          close and remove
//	GET    /v1/{tenant}          config + step count
//	POST   /v1/{tenant}/update   JSON [{"node":i,"value":v},...] = ONE committed step
//	POST   /v1/{tenant}/flush    heartbeat: commit an empty step
//	POST   /v1/{tenant}/reset    {"seed":n} rewind via Monitor.Reset
//	GET    /v1/{tenant}/topk     current output
//	GET    /v1/{tenant}/cost     full Cost counters + check + health introspection
//	GET    /v1/{tenant}/health   health + referee verdict
//	GET    /v1/{tenant}/events   SSE bridge over Monitor.Subscribe
//	GET    /v1/tenants           list tenants
//	GET    /healthz              server liveness
//
// Unknown tenants are created lazily from the server defaults on the
// ingest routes (update/flush) when Options.Lazy is set; reads on unknown
// tenants are 404.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"topkmon/topk"
)

// Options configures a Server.
type Options struct {
	// Defaults seeds every lazily-created tenant and fills zero fields of
	// explicit create requests. Zero fields of Defaults itself fall back to
	// the package baseline (64 nodes, k=4, ε=1/8, lockstep, approx, seed 1).
	Defaults Config
	// Lazy creates unknown tenants from Defaults on first ingest.
	Lazy bool
	// MaxTenants bounds the pool (0 = unlimited).
	MaxTenants int
	// MaxBatch bounds updates per request (0 = 65536).
	MaxBatch int
	// MaxBodyBytes bounds an update request body (0 = 4 MiB).
	MaxBodyBytes int64
	// Durability configures the write-ahead batch log. The zero value
	// (empty Dir) keeps the server volatile.
	Durability Durability
}

// Server owns the tenant pool and the HTTP handlers. It is an
// http.Handler; construct with New and mount anywhere (httptest, a real
// listener, a larger mux).
type Server struct {
	pool     *Pool
	maxBatch int
	maxBody  int64
	mux      *http.ServeMux

	// closing flips once on graceful shutdown: mutating routes refuse with
	// 503 + Retry-After while Close drains in-flight commits tenant by
	// tenant (each tenant mutex is taken before its monitor/log closes).
	closing atomic.Bool

	// batches recycles per-request decode buffers across the ingest path.
	batches sync.Pool
}

// New builds a Server from opts. With durability configured it opens the
// data directory and replays every tenant found there before returning;
// a log that cannot be recovered exactly (lost acked data, unreplayable
// records) fails construction rather than serving a shorter history.
func New(opts Options) (*Server, error) {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 65536
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 4 << 20
	}
	store, err := opts.Durability.openStore()
	if err != nil {
		return nil, err
	}
	s := &Server{
		pool:     NewPool(opts.Defaults, opts.Lazy, opts.MaxTenants, store),
		maxBatch: opts.MaxBatch,
		maxBody:  opts.MaxBodyBytes,
		mux:      http.NewServeMux(),
	}
	if store != nil {
		if err := s.pool.recover(); err != nil {
			s.pool.Close()
			return nil, err
		}
	}
	s.batches.New = func() any { b := make([]topk.Update, 0, 256); return &b }

	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/tenants", s.handleList)
	s.mux.HandleFunc("PUT /v1/{tenant}", s.handleCreate)
	s.mux.HandleFunc("DELETE /v1/{tenant}", s.handleDelete)
	s.mux.HandleFunc("GET /v1/{tenant}", s.handleInfo)
	s.mux.HandleFunc("POST /v1/{tenant}/update", s.handleUpdate)
	s.mux.HandleFunc("POST /v1/{tenant}/flush", s.handleFlush)
	s.mux.HandleFunc("POST /v1/{tenant}/reset", s.handleReset)
	s.mux.HandleFunc("GET /v1/{tenant}/topk", s.handleTopK)
	s.mux.HandleFunc("GET /v1/{tenant}/cost", s.handleCost)
	s.mux.HandleFunc("GET /v1/{tenant}/health", s.handleHealth)
	s.mux.HandleFunc("GET /v1/{tenant}/events", s.handleEvents)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Pool exposes the tenant pool for the embedding binary's lifecycle
// (pre-creating tenants from flags, closing on shutdown).
func (s *Server) Pool() *Pool { return s.pool }

// Close drains and shuts the server down: new mutations are refused with
// 503 + Retry-After, in-flight commits finish (each tenant's mutex is
// taken before its log/monitor closes), logs are fsynced and closed, and
// the store is released. Durable files stay for the next boot.
func (s *Server) Close() {
	s.closing.Store(true)
	s.pool.Close()
}

// draining refuses a mutating request during graceful shutdown.
func (s *Server) draining(w http.ResponseWriter) bool {
	if !s.closing.Load() {
		return false
	}
	w.Header().Set("Retry-After", "1")
	writeErr(w, http.StatusServiceUnavailable, errors.New("serve: shutting down"))
	return true
}

// ---- wire shapes ----

type errorResponse struct {
	Error string `json:"error"`
}

type updateResponse struct {
	Step int64 `json:"step"`
	// Duplicate reports that the request's ?seq= was already committed;
	// the batch was acknowledged without committing a second step.
	// omitempty keeps the non-idempotent wire shape byte-identical.
	Duplicate bool `json:"duplicate,omitempty"`
}

type topkResponse struct {
	Step int64 `json:"step"`
	K    int   `json:"k"`
	TopK []int `json:"topk"`
}

type healthJSON struct {
	State    string `json:"state"`
	StaleFor int64  `json:"staleFor"`
	Err      string `json:"err,omitempty"`
}

type healthResponse struct {
	Steps  int64      `json:"steps"`
	Check  string     `json:"check"` // "ok" or the referee's error
	Health healthJSON `json:"health"`
}

// costResponse is the full introspection snapshot: every topk.Cost
// counter plus epochs, the referee verdict, and health. SilentInvalid is
// the no-silent-wrong-answers alarm — a failing Check while Health claims
// Fresh — which the CI smoke job and the load driver fail on.
type costResponse struct {
	Algorithm        string     `json:"algorithm"`
	Steps            int64      `json:"steps"`
	Epochs           int64      `json:"epochs"`
	Messages         int64      `json:"messages"`
	NodeToServer     int64      `json:"nodeToServer"`
	Unicasts         int64      `json:"unicasts"`
	Broadcasts       int64      `json:"broadcasts"`
	MaxRoundsPerStep int64      `json:"maxRoundsPerStep"`
	MaxMessageBits   int        `json:"maxMessageBits"`
	IndexFallbacks   int64      `json:"indexFallbacks"`
	DroppedMsgs      int64      `json:"droppedMsgs"`
	DupMsgs          int64      `json:"dupMsgs"`
	Retries          int64      `json:"retries"`
	Resyncs          int64      `json:"resyncs"`
	StaleSteps       int64      `json:"staleSteps"`
	Check            string     `json:"check"`
	Health           healthJSON `json:"health"`
	SilentInvalid    bool       `json:"silentInvalid"`
}

type tenantInfo struct {
	Name      string `json:"name"`
	Config    Config `json:"config"`
	Steps     int64  `json:"steps"`
	Algorithm string `json:"algorithm"`
}

type resetRequest struct {
	Seed uint64 `json:"seed"`
}

// ---- helpers ----

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// poolErr maps pool/facade errors to HTTP statuses. The overload
// responses (tenant-cap conflicts and limits) carry Retry-After so a
// well-behaved client backs off instead of hammering the cap.
func poolErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrUnknownTenant):
		writeErr(w, http.StatusNotFound, err)
	case errors.Is(err, ErrTenantExists):
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusConflict, err)
	case errors.Is(err, ErrTooManyTenant):
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, err)
	case errors.Is(err, topk.ErrClosed):
		// The tenant was deleted while this request held it.
		writeErr(w, http.StatusGone, err)
	default:
		writeErr(w, http.StatusBadRequest, err)
	}
}

// tenant resolves {tenant} for a read route (no lazy creation).
func (s *Server) tenant(w http.ResponseWriter, r *http.Request) (*Tenant, bool) {
	name := r.PathValue("tenant")
	t, err := s.pool.Get(name)
	if err != nil {
		poolErr(w, err)
		return nil, false
	}
	return t, true
}

// ingestTenant resolves {tenant} for an ingest route, creating it lazily
// when the pool allows.
func (s *Server) ingestTenant(w http.ResponseWriter, r *http.Request) (*Tenant, bool) {
	name := r.PathValue("tenant")
	t, err := s.pool.GetOrCreate(name)
	if err != nil {
		poolErr(w, err)
		return nil, false
	}
	return t, true
}

func healthOf(h topk.Health) healthJSON {
	j := healthJSON{State: h.State.String(), StaleFor: h.StaleFor}
	if h.Err != nil {
		j.Err = h.Err.Error()
	}
	return j
}

func checkString(err error) string {
	if err == nil {
		return "ok"
	}
	return err.Error()
}

// ---- handlers ----

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "tenants": len(s.pool.List())})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	ts := s.pool.List()
	out := make([]tenantInfo, 0, len(ts))
	for _, t := range ts {
		out = append(out, tenantInfo{
			Name: t.Name, Config: t.Cfg, Steps: t.Mon.Steps(), Algorithm: t.Mon.AlgorithmName(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining(w) {
		return
	}
	name := r.PathValue("tenant")
	var cfg Config
	if r.ContentLength != 0 {
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&cfg); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("serve: config: %w", err))
			return
		}
	}
	t, err := s.pool.Create(name, cfg)
	if err != nil {
		poolErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, tenantInfo{
		Name: t.Name, Config: t.Cfg, Steps: t.Mon.Steps(), Algorithm: t.Mon.AlgorithmName(),
	})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if s.draining(w) {
		return
	}
	if err := s.pool.Delete(r.PathValue("tenant")); err != nil {
		poolErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, tenantInfo{
		Name: t.Name, Config: t.Cfg, Steps: t.Mon.Steps(), Algorithm: t.Mon.AlgorithmName(),
	})
}

// handleUpdate is the hot path: decode one batch (strictly, all-or-nothing
// — see DecodeBatch), journal it when the server is durable, and commit it
// as ONE monitored time step, reporting the tenant's step count.
// ?client=…&seq=… makes the request idempotent: a retry of an
// already-committed seq is acknowledged with {"duplicate":true} and
// commits nothing. With concurrent posters the reported step is the
// monitor's count at read time, not necessarily the step this batch
// committed — per-tenant ordering across clients is the callers' business,
// exactly as with direct UpdateBatch use.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if s.draining(w) {
		return
	}
	client, seq, err := ParseIngestID(r.URL.Query())
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	t, ok := s.ingestTenant(w, r)
	if !ok {
		return
	}
	bufp := s.batches.Get().(*[]topk.Update)
	defer func() { s.batches.Put(bufp) }()
	batch, err := DecodeBatch(http.MaxBytesReader(w, r.Body, s.maxBody), *bufp, s.maxBatch)
	if err != nil {
		var tooBig *http.MaxBytesError
		status := http.StatusBadRequest
		if errors.As(err, &tooBig) || errors.Is(err, ErrBatchTooLarge) {
			// Overload, not malformation: tell the client when to retry
			// (with a smaller batch).
			status = http.StatusRequestEntityTooLarge
			w.Header().Set("Retry-After", "1")
		}
		writeErr(w, status, err)
		return
	}
	*bufp = batch
	step, dup, err := t.CommitBatch(batch, client, seq)
	if err != nil {
		poolErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, updateResponse{Step: step, Duplicate: dup})
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if s.draining(w) {
		return
	}
	t, ok := s.ingestTenant(w, r)
	if !ok {
		return
	}
	step, err := t.CommitFlush()
	if err != nil {
		poolErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, updateResponse{Step: step})
}

func (s *Server) handleReset(w http.ResponseWriter, r *http.Request) {
	if s.draining(w) {
		return
	}
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	req := resetRequest{Seed: t.Cfg.Seed}
	if r.ContentLength != 0 {
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("serve: reset: %w", err))
			return
		}
	}
	step, err := t.CommitReset(req.Seed)
	if err != nil {
		poolErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, updateResponse{Step: step})
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	ids := t.Mon.TopK(make([]int, 0, t.Mon.K()))
	writeJSON(w, http.StatusOK, topkResponse{Step: t.Mon.Steps(), K: t.Mon.K(), TopK: ids})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, healthResponse{
		Steps:  t.Mon.Steps(),
		Check:  checkString(t.Mon.Check()),
		Health: healthOf(t.Mon.Health()),
	})
}

// handleCost serves the introspection snapshot. Check/Health/Cost are
// separate facade calls; to keep the SilentInvalid verdict sound under
// concurrent ingest, the snapshot is retried until no step commits while
// it is being taken (three attempts, then served as-is — scrapers of a
// deliberately quiesced tenant, like the smoke job, always get a
// consistent one).
func (s *Server) handleCost(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	m := t.Mon
	var resp costResponse
	for attempt := 0; attempt < 3; attempt++ {
		before := m.Steps()
		c := m.Cost()
		chk := m.Check()
		h := m.Health()
		epochs := m.Epochs()
		resp = costResponse{
			Algorithm:        m.AlgorithmName(),
			Steps:            c.Steps,
			Epochs:           epochs,
			Messages:         c.Messages,
			NodeToServer:     c.NodeToServer,
			Unicasts:         c.Unicasts,
			Broadcasts:       c.Broadcasts,
			MaxRoundsPerStep: c.MaxRoundsPerStep,
			MaxMessageBits:   c.MaxMessageBits,
			IndexFallbacks:   c.IndexFallbacks,
			DroppedMsgs:      c.DroppedMsgs,
			DupMsgs:          c.DupMsgs,
			Retries:          c.Retries,
			Resyncs:          c.Resyncs,
			StaleSteps:       c.StaleSteps,
			Check:            checkString(chk),
			Health:           healthOf(h),
			SilentInvalid:    chk != nil && h.State == topk.Fresh,
		}
		if m.Steps() == before {
			break
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
