package stream

import (
	"fmt"

	"topkmon/internal/filter"
)

// Descender is the downward twin of Climber and the adversary that
// separates plain bisection from the Section 4 phases: a designated output
// node repeatedly drops to one below the lower endpoint of its filter,
// bleeding the separator search from above.
//
// Against arithmetic bisection (ExactMid, or TOP-K-PROTOCOL with A1/A2
// disabled) each drop halves the remaining gap, costing ~log₂(Top)
// violations per descent. Against phase A1 the separator sits at
// ℓ₀ + 2^(2^r) — near the *bottom* of the gap — so the first drop already
// burns the descender's entire range and the epoch resolves in O(1)
// violations: slow descent is impossible, which is exactly the point of the
// double-exponential probing.
//
// When the descender can no longer drop (its filter reaches the floor, or
// the monitor moved it to the rest side) it returns to the plateau,
// completing a cycle; both the exit and the re-entry change the top-k, so
// the offline optimum pays every cycle too.
type Descender struct {
	K    int
	Rest int
	Top  int64

	LowBase   int64
	descender int
	plateau   int64 // the descender's home value
	cur       []int64
	filters   []filter.Interval

	// Cycles counts completed descend-restore cycles.
	Cycles int
}

// NewDescender builds the adversary; n = k + 1 + rest. Node k is a fill
// node pinned just above the fills so the gap below the plateau stays wide.
func NewDescender(k, rest int, top int64) *Descender {
	if k < 1 || rest < 1 {
		panic("stream: Descender needs k ≥ 1 and rest ≥ 1")
	}
	lowBase := int64(rest) + 2
	if top <= 4*lowBase {
		panic(fmt.Sprintf("stream: Descender plateau %d too low", top))
	}
	g := &Descender{K: k, Rest: rest, Top: top, LowBase: lowBase, descender: k - 1}
	g.cur = make([]int64, k+1+rest)
	for i := 0; i < k; i++ {
		g.cur[i] = top + 2*int64(k-i)
	}
	g.plateau = g.cur[g.descender] // the lowest plateau value, top+2
	g.cur[k] = lowBase
	for i := k + 1; i < len(g.cur); i++ {
		g.cur[i] = int64(i - k)
	}
	return g
}

// Name implements Generator.
func (g *Descender) Name() string { return fmt.Sprintf("descender(top=%d,k=%d)", g.Top, g.K) }

// N implements Generator.
func (g *Descender) N() int { return g.K + 1 + g.Rest }

// ObserveFilters implements Adaptive.
func (g *Descender) ObserveFilters(filters []filter.Interval, _ []int) {
	g.filters = filters
}

// Next implements Generator.
func (g *Descender) Next(t int) []int64 {
	if t == 0 {
		return append([]int64(nil), g.cur...)
	}
	d := g.descender
	lo := int64(0)
	hi := filter.Inf
	if g.filters != nil && d < len(g.filters) {
		lo, hi = g.filters[d].Lo, g.filters[d].Hi
	}
	switch {
	case g.cur[d] < g.plateau && hi < g.plateau:
		// The monitor fenced the descender on the rest side: it has left
		// the top-k; restoring it to the plateau violates that fence and
		// forces the reverse top-k change, completing the cycle.
		g.cur[d] = g.plateau
		g.Cycles++
	case lo >= 2 && g.cur[d] >= lo:
		// Drop to just below the filter's lower endpoint: the smallest
		// move that forces a violation from above. Eventually this sinks
		// below the best fill node, evicting the descender from the
		// top-k, after which the restore case fires.
		g.cur[d] = lo - 1
	default:
		// Mid-churn or no separator left to attack: hold still.
	}
	return append([]int64(nil), g.cur...)
}
