// Package live implements the cluster interface with one goroutine per
// node communicating over channels — the protocols running on genuinely
// concurrent "distributed" nodes.
//
// Semantics match the lockstep engine exactly: the server issues a
// directive (broadcast or unicast) and waits for the addressed nodes'
// round responses (a barrier realising the model's synchronous rounds;
// barrier tokens are simulation scaffolding and carry no message cost).
// Reports are ordered by node id before use, and node-side randomness is
// consumed identically, so a live run with the same seed reproduces the
// lockstep run's counters and outputs bit for bit — asserted by the
// cross-engine equivalence tests.
package live

import (
	"fmt"
	"sort"
	"sync"

	"topkmon/internal/eps"
	"topkmon/internal/filter"
	"topkmon/internal/metrics"
	"topkmon/internal/nodecore"
	"topkmon/internal/rngx"
	"topkmon/internal/wire"
)

type dirKind uint8

const (
	dirAdvance dirKind = iota
	dirApplyRule
	dirSetFilter
	dirSetTagFilter
	dirProbe
	dirCollect
	dirExistRound
	dirMaxInit
	dirMaxRaise
	dirMaxExclude
	dirSnapshot
	dirStop
)

type directive struct {
	kind   dirKind
	value  int64
	rule   *wire.FilterRule
	iv     filter.Interval
	tag    wire.Tag
	pred   wire.Pred
	round  int
	reset  bool
	holder int
	best   int64
}

type response struct {
	id       int
	reported bool
	report   wire.Report
	// snapshot fields (Inspector scaffolding)
	value int64
	filt  filter.Interval
	tag   wire.Tag
}

// Cluster is the goroutine-per-node engine.
type Cluster struct {
	n     int
	dirs  []chan directive
	resp  chan response
	ctr   *metrics.Counters
	rng   *rngx.Source
	maxV  int64
	wg    sync.WaitGroup
	alive bool
}

// New starts n node goroutines.
func New(n int, seed uint64) *Cluster {
	if n < 1 {
		panic("live: need at least one node")
	}
	root := rngx.New(seed)
	c := &Cluster{
		n:     n,
		dirs:  make([]chan directive, n),
		resp:  make(chan response, n),
		ctr:   metrics.NewCounters(),
		rng:   root.Child(0xC0FFEE),
		maxV:  1,
		alive: true,
	}
	for i := 0; i < n; i++ {
		c.dirs[i] = make(chan directive, 1)
		nd := nodecore.New(i, root)
		c.wg.Add(1)
		go c.worker(nd)
	}
	return c
}

// worker is the node goroutine: it owns its nodecore state and answers
// directives until stopped.
func (c *Cluster) worker(nd *nodecore.Node) {
	defer c.wg.Done()
	for d := range c.dirs[nd.ID] {
		resp := response{id: nd.ID}
		switch d.kind {
		case dirAdvance:
			nd.Observe(d.value)
		case dirApplyRule:
			nd.ApplyFilterRule(d.rule)
		case dirSetFilter:
			nd.SetFilter(d.iv)
		case dirSetTagFilter:
			nd.SetTag(d.tag)
			nd.SetFilter(d.iv)
		case dirProbe:
			resp.reported = true
			resp.report = wire.Report{ID: nd.ID, Value: nd.Value, Dir: nd.Violation()}
		case dirCollect:
			if nd.Match(d.pred) {
				resp.reported = true
				resp.report = wire.Report{ID: nd.ID, Value: nd.Value, Dir: nd.Violation()}
			}
		case dirExistRound:
			if nd.Match(d.pred) && nd.ExistenceSend(d.round, c.n) {
				resp.reported = true
				resp.report = wire.Report{ID: nd.ID, Value: nd.Value, Dir: nd.Violation()}
			}
		case dirMaxInit:
			nd.MaxFindInit(d.value, d.reset)
		case dirMaxRaise:
			nd.MaxFindRaise(d.holder, d.best)
		case dirMaxExclude:
			nd.MaxFindExclude(d.holder)
		case dirSnapshot:
			resp.reported = true
			resp.value = nd.Value
			resp.filt = nd.Filter
			resp.tag = nd.Tag
		case dirStop:
			c.resp <- resp
			return
		}
		c.resp <- resp
	}
}

// roundAll sends one directive to every node and gathers the responses of
// the round, ordered by node id (the barrier).
func (c *Cluster) roundAll(d directive) []response {
	for _, ch := range c.dirs {
		ch <- d
	}
	out := make([]response, 0, c.n)
	for i := 0; i < c.n; i++ {
		out = append(out, <-c.resp)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].id < out[b].id })
	return out
}

// roundOne sends a directive to one node and awaits its response.
func (c *Cluster) roundOne(id int, d directive) response {
	c.dirs[id] <- d
	return <-c.resp
}

// Close stops all node goroutines. The cluster is unusable afterwards.
func (c *Cluster) Close() {
	if !c.alive {
		return
	}
	c.alive = false
	for _, ch := range c.dirs {
		ch <- directive{kind: dirStop}
	}
	for i := 0; i < c.n; i++ {
		<-c.resp
	}
	c.wg.Wait()
}

// N implements cluster.Cluster.
func (c *Cluster) N() int { return c.n }

// Counters implements cluster.Cluster.
func (c *Cluster) Counters() *metrics.Counters { return c.ctr }

// Rand implements cluster.Cluster.
func (c *Cluster) Rand() *rngx.Source { return c.rng }

func (c *Cluster) count(ch metrics.Channel, k wire.Kind) {
	c.ctr.Count(ch, k.String(), wire.MsgBits(k, c.n, c.maxV))
}

// Advance implements cluster.Inspector.
func (c *Cluster) Advance(values []int64) {
	if len(values) != c.n {
		panic(fmt.Sprintf("live: Advance with %d values for %d nodes", len(values), c.n))
	}
	for i, ch := range c.dirs {
		v := values[i]
		if v < 0 || v > eps.MaxValue {
			panic(fmt.Sprintf("live: value %d for node %d out of range", v, i))
		}
		if v > c.maxV {
			c.maxV = v
		}
		ch <- directive{kind: dirAdvance, value: v}
	}
	for i := 0; i < c.n; i++ {
		<-c.resp
	}
}

// EndStep implements cluster.Inspector.
func (c *Cluster) EndStep() { c.ctr.EndStep() }

func (c *Cluster) snapshot() []response {
	return c.roundAll(directive{kind: dirSnapshot})
}

// Values implements cluster.Inspector.
func (c *Cluster) Values() []int64 {
	return c.ValuesInto(make([]int64, 0, c.n))
}

// ValuesInto implements cluster.Inspector. The snapshot round still
// allocates (channel scaffolding), but dst's capacity is reused.
func (c *Cluster) ValuesInto(dst []int64) []int64 {
	dst = dst[:0]
	for _, r := range c.snapshot() {
		dst = append(dst, r.value)
	}
	return dst
}

// Filters implements cluster.Inspector.
func (c *Cluster) Filters() []filter.Interval {
	return c.FiltersInto(make([]filter.Interval, 0, c.n))
}

// FiltersInto implements cluster.Inspector.
func (c *Cluster) FiltersInto(dst []filter.Interval) []filter.Interval {
	dst = dst[:0]
	for _, r := range c.snapshot() {
		dst = append(dst, r.filt)
	}
	return dst
}

// Tags implements cluster.Inspector.
func (c *Cluster) Tags() []wire.Tag {
	snap := c.snapshot()
	out := make([]wire.Tag, c.n)
	for i, r := range snap {
		out[i] = r.tag
	}
	return out
}

// BroadcastRule implements cluster.Cluster.
func (c *Cluster) BroadcastRule(rule *wire.FilterRule) {
	c.count(metrics.Broadcast, wire.KindFilterRule)
	c.ctr.Rounds(1)
	c.roundAll(directive{kind: dirApplyRule, rule: rule})
}

// SetFilter implements cluster.Cluster.
func (c *Cluster) SetFilter(id int, iv filter.Interval) {
	c.count(metrics.ServerToNode, wire.KindSetFilter)
	c.roundOne(id, directive{kind: dirSetFilter, iv: iv})
}

// SetTagFilter implements cluster.Cluster.
func (c *Cluster) SetTagFilter(id int, t wire.Tag, iv filter.Interval) {
	c.count(metrics.ServerToNode, wire.KindSetFilter)
	c.roundOne(id, directive{kind: dirSetTagFilter, tag: t, iv: iv})
}

// Probe implements cluster.Cluster.
func (c *Cluster) Probe(id int) wire.Report {
	c.count(metrics.ServerToNode, wire.KindProbeRequest)
	c.count(metrics.NodeToServer, wire.KindProbeReply)
	c.ctr.Rounds(1)
	return c.roundOne(id, directive{kind: dirProbe}).report
}

// Collect implements cluster.Cluster.
func (c *Cluster) Collect(p wire.Pred) []wire.Report {
	c.count(metrics.Broadcast, wire.KindCollect)
	c.ctr.Rounds(1)
	var out []wire.Report
	for _, r := range c.roundAll(directive{kind: dirCollect, pred: p}) {
		if r.reported {
			c.count(metrics.NodeToServer, wire.KindCollectReply)
			out = append(out, r.report)
		}
	}
	return out
}

// Sweep implements cluster.Cluster: the EXISTENCE protocol over live
// goroutine rounds.
func (c *Cluster) Sweep(p wire.Pred) []wire.Report {
	gamma := nodecore.ExistenceRounds(c.n)
	for r := 0; r <= gamma; r++ {
		c.ctr.Rounds(1)
		var senders []wire.Report
		for _, resp := range c.roundAll(directive{kind: dirExistRound, pred: p, round: r}) {
			if resp.reported {
				c.count(metrics.NodeToServer, wire.KindExistenceReport)
				senders = append(senders, resp.report)
			}
		}
		if len(senders) > 0 {
			c.count(metrics.Broadcast, wire.KindHalt)
			return senders
		}
	}
	return nil
}

// DetectViolation implements cluster.Cluster.
func (c *Cluster) DetectViolation() (wire.Report, bool) {
	senders := c.Sweep(wire.Violating())
	if len(senders) == 0 {
		return wire.Report{}, false
	}
	return senders[c.rng.Intn(len(senders))], true
}

// MaxFindInit implements cluster.Cluster.
func (c *Cluster) MaxFindInit(floor int64, reset bool) {
	c.count(metrics.Broadcast, wire.KindMaxFindInit)
	c.ctr.Rounds(1)
	c.roundAll(directive{kind: dirMaxInit, value: floor, reset: reset})
}

// MaxFindRaise implements cluster.Cluster.
func (c *Cluster) MaxFindRaise(holder int, best int64) {
	c.count(metrics.Broadcast, wire.KindMaxFindRaise)
	c.ctr.Rounds(1)
	c.roundAll(directive{kind: dirMaxRaise, holder: holder, best: best})
}

// MaxFindExclude implements cluster.Cluster.
func (c *Cluster) MaxFindExclude(id int) {
	c.count(metrics.Broadcast, wire.KindMaxFindExclude)
	c.ctr.Rounds(1)
	c.roundAll(directive{kind: dirMaxExclude, holder: id})
}
