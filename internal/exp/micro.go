package exp

import (
	"fmt"
	"math"

	"topkmon/internal/filter"
	"topkmon/internal/metrics"
	"topkmon/internal/nodecore"
	"topkmon/internal/protocol"
	"topkmon/internal/rngx"
	"topkmon/internal/wire"
)

// E1Existence reproduces Lemma 3.1: the EXISTENCE protocol decides the
// disjunction with O(1) messages in expectation (the paper's bound is ≤ 6),
// independent of n and of the number b of ones.
func E1Existence() Experiment {
	return Experiment{
		ID:    "E1",
		Title: "EXISTENCE protocol expected messages",
		Claim: "Lemma 3.1: O(1) messages in expectation (≈ ≤ 6), any n, any b ≥ 1",
		Run: func(o Options) []*metrics.Table {
			ns := []int{16, 256, 4096, 65536}
			trials := 400
			if o.Quick {
				ns = []int{16, 1024}
				trials = 80
			}
			tb := metrics.NewTable("E1: EXISTENCE mean messages (per sweep, incl. halt)",
				"n", "b=1", "b=sqrt(n)", "b=n/2", "b=n")
			for _, n := range ns {
				row := []any{n}
				for _, b := range []int{1, int(math.Sqrt(float64(n))), n / 2, n} {
					row = append(row, existenceMean(o, n, b, trials))
				}
				tb.AddRow(row...)
			}
			return []*metrics.Table{tb}
		},
	}
}

// trialCtx is one micro-experiment worker's reusable state: the shared
// engCtx engine cache plus a value vector. E1 leaves vals all-zero across
// trials; E2 refills it per trial.
type trialCtx struct {
	engCtx
	vals []int64
}

func existenceMean(o Options, n, b, trials int) float64 {
	// Each trial's engine state depends only on its own index-derived seed
	// (engine reuse via Reset), so the fan-out cannot change the outcome.
	costs := parMapWith(o, trials,
		func() *trialCtx { return &trialCtx{vals: make([]int64, n)} },
		func(c *trialCtx, trial int) int64 {
			e := c.reset(n, o.Seed+uint64(trial)*977+uint64(n))
			e.Advance(c.vals)
			// b nodes hold a "1": realised as a violating filter, assigned
			// through the engine (so its filter mirror stays consistent);
			// the snapshot below excludes the assignment messages.
			for i := 0; i < b; i++ {
				e.SetFilter(i, filter.Make(5, 10))
			}
			before := e.Counters().Snapshot()
			if senders := e.Sweep(wire.Violating()); len(senders) == 0 {
				panic("exp: EXISTENCE missed b ≥ 1 ones")
			}
			return e.Counters().Snapshot().Sub(before).Total()
		})
	var total int64
	for _, c := range costs {
		total += c
	}
	return float64(total) / float64(trials)
}

// E2MaxFind reproduces Lemma 2.6: computing the node holding the maximum
// costs O(log n) messages in expectation.
func E2MaxFind() Experiment {
	return Experiment{
		ID:    "E2",
		Title: "Maximum computation expected messages",
		Claim: "Lemma 2.6: O(log n) messages in expectation",
		Run: func(o Options) []*metrics.Table {
			ns := []int{16, 64, 256, 1024, 4096}
			trials := 200
			if o.Quick {
				ns = []int{16, 256}
				trials = 40
			}
			tb := metrics.NewTable("E2: FindMax mean messages vs n",
				"n", "log2(n)", "mean msgs", "msgs/log2(n)")
			for _, n := range ns {
				costs := parMapWith(o, trials,
					func() *trialCtx { return &trialCtx{vals: make([]int64, n)} },
					func(c *trialCtx, trial int) int64 {
						e := c.reset(n, o.Seed+uint64(trial)*31+uint64(n))
						r := rngx.New(uint64(trial)*7 + uint64(n))
						for i := range c.vals {
							c.vals[i] = r.Int63n(1 << 30)
						}
						e.Advance(c.vals)
						before := e.Counters().Snapshot()
						if _, ok := protocol.FindMax(e, true); !ok {
							panic("exp: FindMax failed")
						}
						return e.Counters().Snapshot().Sub(before).Total()
					})
				var total int64
				for _, c := range costs {
					total += c
				}
				mean := float64(total) / float64(trials)
				lg := math.Log2(float64(n))
				tb.AddRow(n, lg, mean, mean/lg)
			}
			return []*metrics.Table{tb}
		},
	}
}

// E10Compliance checks the model constraints across representative runs: no
// message exceeds O(log n + log Δ) bits and every protocol invocation
// (EXISTENCE sweep, collect, probe) takes O(log n) rounds. Total rounds per
// time step additionally scale with the number of violations processed —
// inherent to the paper's one-violation-at-a-time handling — so they are
// reported as observed alongside a (violations·log n) reference.
func E10Compliance() Experiment {
	return Experiment{
		ID:    "E10",
		Title: "Model compliance: message size and rounds",
		Claim: "Section 2 model: log-size messages; O(log n)-round protocol invocations",
		Run: func(o Options) []*metrics.Table {
			type probe struct {
				name  string
				n     int
				maxV  int64
				steps int
			}
			probes := []probe{
				{"small", 16, 1 << 16, 300},
				{"wide", 64, 1 << 36, 300},
			}
			if o.Quick {
				probes = probes[:1]
				probes[0].steps = 100
			}
			tb := metrics.NewTable("E10: message-size bound and per-sweep rounds",
				"config", "n", "log2(Δ)", "max msg bits", "bit bound c·log(nΔ)",
				"rounds/sweep (γ+1)", "max rounds/step (observed)")
			reps := parMap(o, len(probes), func(i int) compliance {
				p := probes[i]
				return complianceRun(p.n, p.maxV, p.steps, o.Seed)
			})
			for i, p := range probes {
				logND := math.Log2(float64(p.n)) + math.Log2(float64(p.maxV))
				tb.AddRow(p.name, p.n, math.Log2(float64(p.maxV)),
					reps[i].bits, fmt.Sprintf("%.0f", 24*logND),
					nodecore.ExistenceRounds(p.n)+1, reps[i].rounds)
			}
			return []*metrics.Table{tb}
		},
	}
}

type compliance struct {
	rounds int64
	bits   int
}

func complianceRun(n int, maxV int64, steps int, seed uint64) compliance {
	// A hostile workload maximises per-step protocol work.
	rep := runOrPanic(complianceConfig(n, maxV, steps, seed))
	return compliance{rounds: rep.MaxRounds, bits: rep.MaxBits}
}
