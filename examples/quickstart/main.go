// Quickstart: monitor the ε-approximate top-k of 16 drifting streams with
// the Theorem 5.8 controller on the deterministic engine, validating every
// output against the ground truth and printing the communication bill.
package main

import (
	"fmt"
	"log"

	"topkmon/internal/eps"
	"topkmon/internal/lockstep"
	"topkmon/internal/oracle"
	"topkmon/internal/protocol"
	"topkmon/internal/stream"
)

func main() {
	const (
		n     = 16
		k     = 3
		steps = 1000
	)
	e := eps.MustNew(1, 8) // allow 12.5% slack around the k-th value

	// A cluster of n simulated nodes and the monitoring algorithm.
	engine := lockstep.New(n, 42)
	monitor := protocol.NewApprox(engine, k, e)

	// Streams: smooth random walks, the friendly case for filters.
	gen := stream.NewWalk(n, 10000, 150, 1<<20, 7)

	for t := 0; t < steps; t++ {
		values := gen.Next(t)
		engine.Advance(values)
		if t == 0 {
			monitor.Start()
		} else {
			monitor.HandleStep()
		}

		// The oracle recomputes the truth centrally — only to check the
		// protocol; it is not part of the distributed computation.
		truth := oracle.Compute(values, k, e)
		if err := truth.ValidateEps(monitor.Output()); err != nil {
			log.Fatalf("step %d: %v", t, err)
		}
		engine.EndStep()

		if t%250 == 0 {
			fmt.Printf("step %4d: top-%d positions = %v (v_k = %d)\n",
				t, k, monitor.Output(), truth.VK)
		}
	}

	c := engine.Counters()
	fmt.Printf("\n%d steps monitored with %d messages (%.3f per step), %d epochs\n",
		steps, c.Total(), float64(c.Total())/steps, monitor.Epochs())
	fmt.Printf("a naive report-every-change design would have sent ~%d messages\n", n*steps)
}
