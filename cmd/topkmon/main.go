// Command topkmon runs a live ε-Top-k monitoring session against the
// public topk API: a local workload source pushes one batch of observations
// per tick into an embeddable topk.Monitor (lockstep or live engine, any of
// the paper's algorithms), every output is validated against the built-in
// referee, and the communication bill is reported as the stream evolves.
//
// The command imports ONLY the public topk package — it is the reference
// consumer of the embeddable API (CI enforces that no internal/ package
// leaks into cmd/ or examples/).
//
// Usage:
//
//	topkmon [-n 32] [-k 4] [-eps 1/8] [-steps 2000] [-workload loads]
//	        [-monitor approx] [-seed 7] [-report 200] [-engine live]
//	        [-shards 0] [-repeat 1] [-parallel 0] [-faults spec]
//
// With -repeat R the session runs R times on ONE monitor, rewound between
// sessions with Monitor.Reset(seed+r) — each repetition is bit-identical to
// a fresh process started with that seed, at none of the construction cost
// (for the live engine: the worker goroutines are started once).
//
// With -faults the message layer between server and nodes is perturbed by
// the deterministic fault injector and the monitor's recovery supervisor is
// armed: outputs that fail validation are flagged through Health() instead
// of served silently, and the session summary reports the fault bill. The
// spec is a comma list of drop=P, dup=P, delay=P, retries=N, and
// crash=NODE@FROM:UNTIL (repeatable), e.g.
//
//	topkmon -faults drop=0.1,dup=0.05,crash=2@100:300,crash=5@500:700
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"

	"topkmon/topk"
)

func main() {
	n := flag.Int("n", 32, "number of nodes")
	k := flag.Int("k", 4, "size of the monitored top set")
	epsStr := flag.String("eps", "1/8", "allowed error ε as a fraction p/q (0/1 = exact)")
	steps := flag.Int("steps", 2000, "time steps to run")
	workload := flag.String("workload", "loads", "workload: loads|walk|jumps|oscillator")
	monitor := flag.String("monitor", "approx", "algorithm: approx|topk|exact|half-eps|naive|mid-naive")
	seed := flag.Uint64("seed", 7, "random seed")
	report := flag.Int("report", 200, "status line every this many steps")
	engine := flag.String("engine", "live", "engine: live (goroutines) | lockstep")
	parallel := flag.Int("parallel", 0,
		"cap OS-level parallelism (GOMAXPROCS) for the live engine's workers; 0 keeps the runtime default")
	shards := flag.Int("shards", 0,
		"worker shards for the live engine (each owns n/m nodes and its value-bucket partition); 0 = GOMAXPROCS. Output is bit-identical for every value")
	repeat := flag.Int("repeat", 1,
		"run the session this many times, reusing one monitor via Reset(seed+r) between runs")
	faultSpec := flag.String("faults", "",
		"deterministic fault injection: comma list of drop=P, dup=P, delay=P, retries=N, crash=NODE@FROM:UNTIL (repeatable)")
	flag.Parse()

	if *parallel > 0 {
		runtime.GOMAXPROCS(*parallel)
	}

	e, err := topk.ParseEpsilon(*epsStr)
	if err != nil {
		fail(err)
	}
	algo, err := topk.ParseAlgorithm(*monitor)
	if err != nil {
		fail(err)
	}
	engKind, err := topk.ParseEngine(*engine)
	if err != nil {
		fail(err)
	}

	plan, err := topk.ParseFaultPlan(*faultSpec)
	if err != nil {
		fail(err)
	}

	m, err := topk.New(*k, e,
		topk.WithNodes(*n), topk.WithSeed(*seed), topk.WithEngine(engKind),
		topk.WithShards(*shards), topk.WithMonitor(algo),
		topk.WithFaults(plan))
	if err != nil {
		fail(err)
	}
	defer m.Close()

	for r := 0; r < *repeat; r++ {
		sessionSeed := *seed + uint64(r)
		if r > 0 {
			// One monitor, many sessions: Reset rewinds engine and
			// algorithm to the state a fresh construction with sessionSeed
			// would have.
			if err := m.Reset(sessionSeed); err != nil {
				fail(err)
			}
		}
		gen, err := makeWorkload(*workload, *n, sessionSeed)
		if err != nil {
			fail(err)
		}
		if *repeat > 1 {
			fmt.Printf("=== session %d/%d (seed %d) ===\n", r+1, *repeat, sessionSeed)
		}
		fmt.Printf("topkmon: %s on %s, n=%d k=%d ε=%s engine=%s\n",
			m.AlgorithmName(), gen.name(), *n, *k, e, *engine)
		runSession(m, gen, *steps, *report, plan != nil)
	}
}

// runSession pushes one batch per tick into the monitor, validating every
// output and printing the communication summary. Under -faults an invalid
// output the monitor itself flagged non-Fresh counts as degraded (the
// guarantee working); only unflagged failures count as invalid.
func runSession(m *topk.Monitor, gen *workload, steps, report int, faulty bool) {
	var invalid, degraded int
	n := m.N()
	vals := make([]int64, n)
	batch := make([]topk.Update, 0, n)
	topBuf := make([]int, 0, m.K())
	for t := 0; t < steps; t++ {
		gen.next(vals)
		batch = batch[:0]
		for i, v := range vals {
			batch = append(batch, topk.Update{Node: i, Value: v})
		}
		if err := m.UpdateBatch(batch); err != nil {
			fail(err)
		}
		if err := m.Check(); err != nil {
			if h := m.Health(); h.State != topk.Fresh {
				degraded++
			} else {
				invalid++
				fmt.Printf("step %6d: INVALID OUTPUT: %v\n", t, err)
			}
		}
		if report > 0 && (t+1)%report == 0 {
			c := m.Cost()
			topBuf = m.TopK(topBuf)
			fmt.Printf("step %6d: top-%d=%v  msgs=%d (%.3f/step)\n",
				t+1, m.K(), topBuf, c.Messages, float64(c.Messages)/float64(t+1))
			if faulty {
				h := m.Health()
				fmt.Printf("             health=%s stale-for=%d  dropped=%d dup=%d retries=%d resyncs=%d\n",
					h.State, h.StaleFor, c.DroppedMsgs, c.DupMsgs, c.Retries, c.Resyncs)
			}
		}
	}

	c := m.Cost()
	fmt.Printf("\nfinished %d steps; epochs=%d, invalid outputs=%d\n", steps, m.Epochs(), invalid)
	fmt.Printf("messages: total=%d  node→server=%d  unicast=%d  broadcast=%d\n",
		c.Messages, c.NodeToServer, c.Unicasts, c.Broadcasts)
	fmt.Printf("max rounds/step=%d  max message bits=%d\n", c.MaxRoundsPerStep, c.MaxMessageBits)
	fmt.Printf("engine work: index fallbacks (full scans)=%d (%.3f/step)\n",
		c.IndexFallbacks, float64(c.IndexFallbacks)/float64(steps))
	if faulty {
		h := m.Health()
		fmt.Printf("faults: dropped=%d dup=%d retries=%d resyncs=%d stale-steps=%d\n",
			c.DroppedMsgs, c.DupMsgs, c.Retries, c.Resyncs, c.StaleSteps)
		fmt.Printf("health: %s (stale for %d steps, degraded-and-flagged steps=%d)\n",
			h.State, h.StaleFor, degraded)
	}
}

// workload is a seeded local data source: it fills a value vector per tick.
// The CLI generates its own data (the module's workload generators are
// simulation scaffolding under internal/); all sources are deterministic
// per seed, so sessions replay bit for bit and the output is identical for
// every -shards value.
type workload struct {
	label string
	step  func(t int, vals []int64)
	t     int
}

func (w *workload) name() string { return w.label }
func (w *workload) next(vals []int64) {
	w.step(w.t, vals)
	w.t++
}

const maxVal = int64(1) << 20

func makeWorkload(name string, n int, seed uint64) (*workload, error) {
	rng := rand.New(rand.NewSource(int64(seed + 100)))
	clamp := func(v int64) int64 {
		if v < 0 {
			return 0
		}
		if v > maxVal {
			return maxVal
		}
		return v
	}
	switch name {
	case "loads":
		// Per-node baseline, small jitter, occasional bursts with
		// geometric decay — web-server loads.
		base := make([]int64, n)
		burst := make([]int64, n)
		for i := range base {
			base[i] = 500 + rng.Int63n(1001)
		}
		return &workload{label: "loads", step: func(t int, vals []int64) {
			for i := range vals {
				if rng.Float64() < 0.01 {
					burst[i] += 2000 + rng.Int63n(4001)
				}
				burst[i] -= burst[i] / 4
				vals[i] = clamp(base[i] + burst[i] + rng.Int63n(81) - 40)
			}
		}}, nil
	case "walk":
		// Bounded random walk: smoothly drifting values, the friendly case
		// for filters.
		cur := make([]int64, n)
		for i := range cur {
			cur[i] = 5000 + rng.Int63n(10001)
		}
		return &workload{label: "walk", step: func(t int, vals []int64) {
			for i := range cur {
				if t > 0 {
					cur[i] = clamp(cur[i] + rng.Int63n(401) - 200)
				}
				vals[i] = cur[i]
			}
		}}, nil
	case "jumps":
		// Fresh uniform values every tick: the hostile regime where
		// filters barely help.
		return &workload{label: "jumps", step: func(t int, vals []int64) {
			for i := range vals {
				vals[i] = 100 + rng.Int63n(100000-99)
			}
		}}, nil
	case "oscillator":
		// A few clear leaders, many nodes oscillating around the k-th
		// value, the rest clearly below — the paper's noise scenario.
		top, low := 4, n/4
		dense := n - top - low
		if dense < 0 {
			dense = 0
		}
		return &workload{label: "oscillator", step: func(t int, vals []int64) {
			i := 0
			for j := 0; j < top && i < len(vals); j++ {
				vals[i] = clamp(100000 + rng.Int63n(401))
				i++
			}
			for j := 0; j < dense && i < len(vals); j++ {
				vals[i] = clamp(10000 - 400 + rng.Int63n(801))
				i++
			}
			for ; i < len(vals); i++ {
				vals[i] = clamp(100 + rng.Int63n(401))
			}
		}}, nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "topkmon: %v\n", err)
	os.Exit(2)
}
