package live

import (
	"fmt"
	"reflect"
	"testing"

	"topkmon/internal/cluster"
	"topkmon/internal/eps"
	"topkmon/internal/filter"
	"topkmon/internal/lockstep"
	"topkmon/internal/protocol"
	"topkmon/internal/rngx"
	"topkmon/internal/stream"
	"topkmon/internal/wire"
)

// Interface compliance.
var (
	_ cluster.Engine = (*Cluster)(nil)
	_ cluster.Engine = (*lockstep.Engine)(nil)
)

func TestBasicRoundTrip(t *testing.T) {
	c := New(4, 1)
	defer c.Close()
	c.Advance([]int64{10, 20, 30, 40})
	if got := c.Values(); !reflect.DeepEqual(got, []int64{10, 20, 30, 40}) {
		t.Fatalf("Values = %v", got)
	}
	rep := c.Probe(2)
	if rep.Value != 30 {
		t.Errorf("Probe = %+v", rep)
	}
	c.SetTagFilter(1, wire.TagOut, filter.AtLeast(15))
	if tags := c.Tags(); tags[1] != wire.TagOut {
		t.Errorf("Tags = %v", tags)
	}
	reps := c.Collect(wire.InRange(25, 45))
	if len(reps) != 2 || reps[0].ID != 2 || reps[1].ID != 3 {
		t.Errorf("Collect = %v", reps)
	}
}

func TestSweepDetectsViolations(t *testing.T) {
	c := New(8, 2)
	defer c.Close()
	vals := make([]int64, 8)
	for i := range vals {
		vals[i] = 100
	}
	c.Advance(vals)
	if got := c.Sweep(wire.Violating()); got != nil {
		t.Fatalf("no violations expected, got %v", got)
	}
	c.SetFilter(5, filter.Make(0, 50))
	rep, ok := c.DetectViolation()
	if !ok || rep.ID != 5 || rep.Dir != filter.DirUp {
		t.Fatalf("DetectViolation = %+v ok=%v", rep, ok)
	}
}

func TestFindMaxOnLiveEngine(t *testing.T) {
	c := New(32, 3)
	defer c.Close()
	vals := make([]int64, 32)
	r := rngx.New(9)
	for i := range vals {
		vals[i] = r.Int63n(1 << 20)
	}
	vals[17] = 1 << 21 // clear max
	c.Advance(vals)
	rep, ok := protocol.FindMax(c, true)
	if !ok || rep.ID != 17 {
		t.Fatalf("FindMax = %+v ok=%v", rep, ok)
	}
}

// TestLockstepEquivalence is the strongest integration test in the suite:
// the same seed, workload and monitor on both engines must produce
// identical outputs AND identical message counters, proving the two
// engines implement the same model.
func TestLockstepEquivalence(t *testing.T) {
	const n, k, steps = 12, 3, 250
	e := eps.MustNew(1, 5)
	type mk struct {
		name string
		make func(c cluster.Cluster) protocol.Monitor
	}
	monitors := []mk{
		{"exact-mid", func(c cluster.Cluster) protocol.Monitor { return protocol.NewExactMid(c, k) }},
		{"topk", func(c cluster.Cluster) protocol.Monitor { return protocol.NewTopKProto(c, k, e) }},
		{"approx", func(c cluster.Cluster) protocol.Monitor { return protocol.NewApprox(c, k, e) }},
		{"half-eps", func(c cluster.Cluster) protocol.Monitor { return protocol.NewHalfEps(c, k, e) }},
	}
	// Shard counts bracket the interesting layouts: one worker for all
	// nodes, an uneven multi-shard split, and one goroutine per node. The
	// live engine must match lockstep bit for bit in every one.
	for _, m := range monitors {
		for _, shards := range []int{1, 5, n} {
			t.Run(fmt.Sprintf("%s/m=%d", m.name, shards), func(t *testing.T) {
				// Generate the trace once so both engines see identical data.
				gen := stream.NewWalk(n, 2000, 120, 1<<20, 5)
				trace := make([][]int64, steps)
				for i := range trace {
					trace[i] = gen.Next(i)
				}

				runOn := func(eng cluster.Engine) ([]int, int64, map[string]int64) {
					mon := m.make(eng)
					for ti, vals := range trace {
						eng.Advance(vals)
						if ti == 0 {
							mon.Start()
						} else {
							mon.HandleStep()
						}
						eng.EndStep()
					}
					snap := eng.Counters().Snapshot()
					return mon.Output(), snap.Total(), snap.ByKind
				}

				ls := lockstep.New(n, 42)
				lv := New(n, 42, WithShards(shards))
				defer lv.Close()

				outA, totalA, kindsA := runOn(ls)
				outB, totalB, kindsB := runOn(lv)

				if !reflect.DeepEqual(outA, outB) {
					t.Errorf("outputs diverge: lockstep=%v live=%v", outA, outB)
				}
				if totalA != totalB {
					t.Errorf("totals diverge: lockstep=%d live=%d", totalA, totalB)
				}
				if !reflect.DeepEqual(kindsA, kindsB) {
					t.Errorf("kind counters diverge:\nlockstep=%v\nlive=%v", kindsA, kindsB)
				}
			})
		}
	}
}

// TestLockstepEquivalenceLargeN raises the cross-engine equivalence proof
// to n = 10⁴ nodes: with the batched flush pipeline the live engine must
// still reproduce the lockstep run's outputs and counters bit for bit at a
// scale where any ordering or lost-directive bug in the batch delivery
// would surface.
func TestLockstepEquivalenceLargeN(t *testing.T) {
	if testing.Short() {
		t.Skip("large-n equivalence is CI-sized; skipped under -short")
	}
	const n, k, steps = 10000, 8, 10
	e := eps.MustNew(1, 8)
	gen := stream.NewWalk(n, 100000, 150, 1<<24, 17)
	trace := make([][]int64, steps)
	for i := range trace {
		trace[i] = gen.Next(i)
	}

	runOn := func(eng cluster.Engine) ([]int, int64, map[string]int64) {
		mon := protocol.NewApprox(eng, k, e)
		for ti, vals := range trace {
			eng.Advance(vals)
			if ti == 0 {
				mon.Start()
			} else {
				mon.HandleStep()
			}
			eng.EndStep()
		}
		snap := eng.Counters().Snapshot()
		return mon.Output(), snap.Total(), snap.ByKind
	}

	// Worker shards (m ≪ n) are what makes this scale bearable: one quiet
	// step wakes 8 workers instead of 10⁴ goroutines per barrier round.
	ls := lockstep.New(n, 271828)
	lv := New(n, 271828, WithShards(8))
	defer lv.Close()

	outA, totalA, kindsA := runOn(ls)
	outB, totalB, kindsB := runOn(lv)

	if !reflect.DeepEqual(outA, outB) {
		t.Errorf("outputs diverge: lockstep=%v live=%v", outA, outB)
	}
	if totalA != totalB {
		t.Errorf("totals diverge: lockstep=%d live=%d", totalA, totalB)
	}
	if !reflect.DeepEqual(kindsA, kindsB) {
		t.Errorf("kind counters diverge:\nlockstep=%v\nlive=%v", kindsA, kindsB)
	}
}

// TestLiveStepAllocs enforces the batched engine's allocation budget: after
// warm-up, a full monitored time step (Advance + HandleStep + EndStep) on
// the live engine allocates nothing — the property BenchmarkLiveStep
// tracks, asserted here so CI fails on regressions without running
// benchmarks.
func TestLiveStepAllocs(t *testing.T) {
	const n, k, pregen = 64, 8, 512
	e := eps.MustNew(1, 8)
	gen := stream.NewWalk(n, 100000, 500, 1<<24, 13)
	steps := make([][]int64, pregen)
	for ti := range steps {
		steps[ti] = gen.Next(ti)
	}
	// The budget must hold for every shard layout: worker-side buffers
	// (shard indexes, candidate scratch, report lists) count too, since
	// AllocsPerRun observes the whole process.
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("m=%d", shards), func(t *testing.T) {
			eng := New(n, 5, WithShards(shards))
			defer eng.Close()
			mon := protocol.NewApprox(eng, k, e)
			eng.Advance(steps[0])
			mon.Start()
			eng.EndStep()
			i := 0
			step := func() {
				eng.Advance(steps[(i+1)%pregen])
				mon.HandleStep()
				eng.EndStep()
				i++
			}
			for range 128 {
				step()
			}
			if avg := testing.AllocsPerRun(400, step); avg != 0 {
				t.Errorf("steady-state live step allocates %.2f times per step, want 0", avg)
			}
		})
	}
}

// TestShardPartition pins the worker-shard layout contract: shards cover
// the id space contiguously in ascending order with near-equal sizes, the
// shard count clamps to [1, n], and every node is owned by exactly the
// worker its id maps to.
func TestShardPartition(t *testing.T) {
	cases := []struct {
		n, opt, want int
	}{
		{10, 3, 3}, // uneven split: sizes 4,3,3
		{10, 100, 10} /* clamp to n */, {10, 1, 1},
		{7, 7, 7}, // one goroutine per node
	}
	for _, cs := range cases {
		c := New(cs.n, 1, WithShards(cs.opt))
		if got := c.Shards(); got != cs.want {
			t.Errorf("n=%d WithShards(%d): Shards() = %d, want %d", cs.n, cs.opt, got, cs.want)
		}
		next := 0
		for w, sh := range c.shards {
			if sh.base != next {
				t.Errorf("shard %d base = %d, want %d (contiguous ascending)", w, sh.base, next)
			}
			if len(sh.nodes) < cs.n/cs.want || len(sh.nodes) > cs.n/cs.want+1 {
				t.Errorf("shard %d size = %d, want near-equal split of %d/%d", w, len(sh.nodes), cs.n, cs.want)
			}
			for i, nd := range sh.nodes {
				if nd.ID != sh.base+i {
					t.Errorf("shard %d node %d has id %d", w, i, nd.ID)
				}
				if int(c.workerOf[nd.ID]) != w {
					t.Errorf("workerOf[%d] = %d, want %d", nd.ID, c.workerOf[nd.ID], w)
				}
			}
			next += len(sh.nodes)
		}
		if next != cs.n {
			t.Errorf("shards cover %d ids, want %d", next, cs.n)
		}
		c.Close()
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	c := New(2, 7)
	c.Close()
	c.Close()
}

func TestAdvanceValidation(t *testing.T) {
	c := New(2, 8)
	defer c.Close()
	defer func() {
		if recover() == nil {
			t.Error("wrong-length Advance must panic")
		}
	}()
	c.Advance([]int64{1})
}
