package stream

import (
	"testing"

	"topkmon/internal/eps"
	"topkmon/internal/filter"
)

func TestWalkBoundsAndDeterminism(t *testing.T) {
	a := NewWalk(8, 1000, 50, 2000, 5)
	b := NewWalk(8, 1000, 50, 2000, 5)
	for step := 0; step < 200; step++ {
		va, vb := a.Next(step), b.Next(step)
		for i := range va {
			if va[i] != vb[i] {
				t.Fatal("same seed must replay")
			}
			if va[i] < 0 || va[i] > 2000 {
				t.Fatalf("value %d out of bounds", va[i])
			}
		}
	}
}

func TestWalkStepSize(t *testing.T) {
	g := NewWalk(4, 10000, 7, 1<<30, 3)
	prev := g.Next(0)
	for step := 1; step < 100; step++ {
		cur := g.Next(step)
		for i := range cur {
			d := cur[i] - prev[i]
			if d < -7 || d > 7 {
				t.Fatalf("step %d moved by %d > Step", step, d)
			}
		}
		prev = cur
	}
}

func TestJumpsRange(t *testing.T) {
	g := NewJumps(6, 100, 200, 9)
	for step := 0; step < 100; step++ {
		for _, v := range g.Next(step) {
			if v < 100 || v > 200 {
				t.Fatalf("jump %d outside [100,200]", v)
			}
		}
	}
}

func TestOscillatorStructure(t *testing.T) {
	g := NewOscillator(2, 5, 3, 1000, 50, 100000, 10, 4)
	if g.N() != 10 {
		t.Fatalf("N = %d", g.N())
	}
	for step := 0; step < 50; step++ {
		vals := g.Next(step)
		for i := 0; i < 2; i++ {
			if vals[i] < 100000 {
				t.Fatal("top node below TopLevel")
			}
		}
		for i := 2; i < 7; i++ {
			if vals[i] < 950 || vals[i] > 1050 {
				t.Fatalf("dense node %d at %d outside band", i, vals[i])
			}
		}
		for i := 7; i < 10; i++ {
			if vals[i] > 60 {
				t.Fatalf("low node %d at %d above LowLevel band", i, vals[i])
			}
		}
	}
}

func TestLoadsStaysInRange(t *testing.T) {
	g := NewLoads(8, 500, 25, 0.05, 1000, 4000, 11)
	for step := 0; step < 300; step++ {
		for _, v := range g.Next(step) {
			if v < 0 || v > 4000 {
				t.Fatalf("load %d out of range", v)
			}
		}
	}
}

func TestReplay(t *testing.T) {
	g := NewReplay("m", [][]int64{{1, 2}, {3, 4}})
	if got := g.Next(1); got[0] != 3 || got[1] != 4 {
		t.Fatalf("Next(1) = %v", got)
	}
	if got := g.Next(9); got[0] != 3 {
		t.Fatal("beyond-end must repeat last row")
	}
	// Returned slices must be independent copies.
	row := g.Next(0)
	row[0] = 99
	if g.Next(0)[0] == 99 {
		t.Fatal("Replay must copy rows")
	}
}

func TestDistinctPreservesOrderAndDistinctness(t *testing.T) {
	g := Distinct{Inner: NewJumps(16, 0, 5, 21)} // heavy ties inside
	for step := 0; step < 50; step++ {
		vals := g.Next(step)
		seen := map[int64]bool{}
		for _, v := range vals {
			if seen[v] {
				t.Fatal("distinct wrapper produced a duplicate")
			}
			seen[v] = true
		}
	}
}

func TestLowerBoundAdversaryShape(t *testing.T) {
	e := eps.MustNew(1, 4)
	g := NewLowerBound(6, 2, 2, e, 1<<16)
	if g.Y1 >= g.Y0 {
		t.Fatal("Y1 must be below Y0")
	}
	if !e.ClearlyBelow(g.Y1, g.Y0) {
		t.Fatalf("Y1=%d must be clearly below Y0=%d", g.Y1, g.Y0)
	}
	first := g.Next(0)
	for i := 0; i < 6; i++ {
		if first[i] != g.Y0 {
			t.Fatal("σ nodes must start at Y0")
		}
	}
	// Feed filters that make every σ node droppable; one drop per step.
	filters := make([]filter.Interval, 8)
	for i := range filters {
		filters[i] = filter.AtLeast(g.Y0)
	}
	out := []int{0, 1}
	drops := 0
	prev := first
	for step := 1; step <= 4; step++ {
		g.ObserveFilters(filters, out)
		cur := g.Next(step)
		changed := 0
		for i := range cur {
			if cur[i] != prev[i] {
				changed++
			}
		}
		if changed == 1 {
			drops++
		}
		prev = cur
	}
	if drops != 4 {
		t.Fatalf("expected 4 single-node drops, got %d", drops)
	}
}

func TestLowerBoundPhaseReset(t *testing.T) {
	e := eps.MustNew(1, 4)
	g := NewLowerBound(4, 0, 2, e, 1<<16)
	filters := make([]filter.Interval, 4)
	for i := range filters {
		filters[i] = filter.AtLeast(g.Y0)
	}
	g.Next(0)
	g.ObserveFilters(filters, []int{0, 1})
	g.Next(1) // drop 1
	g.ObserveFilters(filters, []int{0, 1})
	g.Next(2) // drop 2 = σ-k
	g.ObserveFilters(filters, []int{0, 1})
	restored := g.Next(3) // phase reset
	for i := 0; i < 4; i++ {
		if restored[i] != g.Y0 {
			t.Fatalf("phase reset must restore σ nodes, got %v", restored)
		}
	}
}

func TestLowerBoundValidatesSigma(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("σ ≤ k must panic")
		}
	}()
	NewLowerBound(2, 0, 2, eps.MustNew(1, 4), 1000)
}

func TestGeneratorNames(t *testing.T) {
	gens := []Generator{
		NewWalk(2, 10, 1, 100, 1),
		NewJumps(2, 0, 9, 1),
		NewOscillator(1, 1, 1, 10, 1, 100, 1, 1),
		NewLoads(2, 10, 1, 0.1, 10, 100, 1),
		NewReplay("x", [][]int64{{1, 2}}),
		Distinct{Inner: NewJumps(2, 0, 9, 1)},
		NewLowerBound(3, 1, 2, eps.MustNew(1, 4), 1000),
	}
	for _, g := range gens {
		if g.Name() == "" || g.N() < 2 {
			t.Errorf("generator %T metadata broken", g)
		}
	}
}
