package protocol

import (
	"fmt"
	"sort"

	"topkmon/internal/cluster"
	"topkmon/internal/eps"
	"topkmon/internal/filter"
	"topkmon/internal/wire"
)

// HalfEps is the Corollary 5.9 monitor: an ε-Top-k algorithm that is
// O(σ + k log n + log log Δ + log 1/ε)-competitive against an offline
// optimum restricted to the smaller error ε′ ≤ ε/2.
//
// It simulates only the first round of DENSEPROTOCOL with widened
// admission: nodes above (1-ε/2)z/(1-ε) go straight to V1, nodes below
// (1-ε/2)z straight to V3, and any V2 violation moves the node immediately
// (no S-sets, no SUBPROTOCOL). A violation by a settled V1/V3 node — or V1
// overflowing k, or V1∪V2 starving below k — terminates the epoch, at which
// point the ε/2-restricted optimum provably communicated.
type HalfEps struct {
	c cluster.Cluster
	k int
	e eps.Eps // the online error ε; the adversary is held to ε/2

	topk    *TopKProto
	inTopK  bool
	epochs  int64
	started bool

	z      int64
	l0, u0 int64 // the round-0 thresholds (1-ε/2)z and (1-ε/2)z/(1-ε)

	v1, v2, v3 map[int]bool
	out        []int
}

// NewHalfEps returns the Corollary 5.9 monitor.
func NewHalfEps(c cluster.Cluster, k int, e eps.Eps) *HalfEps {
	if k < 1 || k >= c.N() {
		panic(fmt.Sprintf("protocol: HalfEps needs 1 ≤ k < n, got k=%d n=%d", k, c.N()))
	}
	if e.IsZero() {
		panic("protocol: HalfEps needs ε > 0")
	}
	h := &HalfEps{c: c, k: k, e: e}
	h.topk = NewTopKProto(c, k, e)
	h.topk.OnEpochEnd = h.startEpoch
	return h
}

// Name implements Monitor.
func (h *HalfEps) Name() string { return "half-eps" }

// Epochs implements Monitor.
func (h *HalfEps) Epochs() int64 { return h.epochs + h.topk.Epochs() }

// Output implements Monitor.
func (h *HalfEps) Output() []int {
	if h.inTopK {
		return h.topk.Output()
	}
	return h.out
}

// Start implements Monitor.
func (h *HalfEps) Start() { h.startEpoch() }

func (h *HalfEps) startEpoch() {
	reps := TopM(h.c, h.k+1)
	vk, vk1 := reps[h.k-1].Value, reps[h.k].Value
	if h.e.ClearlyBelow(vk1, vk) {
		h.inTopK = true
		h.topk.StartWithProbe(reps)
		return
	}
	h.inTopK = false
	h.epochs++
	h.z = vk

	// Round-0 thresholds with exact rational arithmetic: ℓ₀ is the
	// midpoint (1-ε/2)z of [(1-ε)z, z]; u₀ = (1-ε/2)z/(1-ε). With
	// ε = p/q: ℓ₀ = ⌈z(2q-p)/(2q)⌉ (so v < ℓ₀ ⟺ v < (1-ε/2)z exactly for
	// integers) and u₀ = ⌊z(2q-p)/(2(q-p))⌋ (so v > u₀ ⟺ v above the V1
	// admission threshold exactly).
	half := h.e.Half()
	h.l0 = half.ShrinkCeil(h.z)
	p, q := h.e.Num, h.e.Den
	h.u0 = (h.z * (2*q - p)) / (2 * (q - p))

	high := h.c.Collect(wire.InRange(h.u0+1, filter.Inf))
	mid := h.c.Collect(wire.InRange(h.l0, h.u0))
	h.v1, h.v2, h.v3 = map[int]bool{}, map[int]bool{}, map[int]bool{}
	for _, r := range high {
		h.v1[r.ID] = true
	}
	for _, r := range mid {
		h.v2[r.ID] = true
	}
	for i := 0; i < h.c.N(); i++ {
		if !h.v1[i] && !h.v2[i] {
			h.v3[i] = true
		}
	}
	if len(h.v1) > h.k || len(h.v1)+len(h.v2) < h.k {
		h.startEpoch()
		return
	}
	rule := resetAllTags(wire.TagV3).With(wire.TagV3, filter.AtMost(h.u0))
	h.c.BroadcastRule(rule)
	for _, i := range sortedIDs(h.v1) {
		h.c.SetTagFilter(i, wire.TagV1, filter.AtLeast(h.l0))
	}
	for _, i := range sortedIDs(h.v2) {
		h.c.SetTagFilter(i, wire.TagV2, filter.Make(h.l0, h.u0))
	}
	if len(h.v1) == h.k && len(h.v3) == h.c.N()-h.k {
		h.inTopK = true
		h.topk.StartWithProbe(TopM(h.c, h.k+1))
		return
	}
	h.refreshOutput()
}

func (h *HalfEps) refreshOutput() {
	out := sortedIDs(h.v1)
	fill := sortedIDs(h.v2)
	need := h.k - len(out)
	out = append(out, fill[:need]...)
	sort.Ints(out)
	h.out = out
}

// HandleStep implements Monitor.
func (h *HalfEps) HandleStep() {
	drainViolations(h.c, h.handle)
}

func (h *HalfEps) handle(rep wire.Report) {
	if h.inTopK {
		h.topk.Handle(rep)
		return
	}
	i := rep.ID
	switch {
	case h.v1[i] || h.v3[i]:
		// A settled node left its side: the ε/2-optimum communicated.
		h.startEpoch()
	case h.v2[i] && rep.Dir == filter.DirUp:
		delete(h.v2, i)
		h.v1[i] = true
		h.c.SetTagFilter(i, wire.TagV1, filter.AtLeast(h.l0))
		h.afterMove()
	case h.v2[i]:
		delete(h.v2, i)
		h.v3[i] = true
		h.c.SetTagFilter(i, wire.TagV3, filter.AtMost(h.u0))
		h.afterMove()
	default:
		panic(fmt.Sprintf("protocol: half-eps violation from unclassified node %d", i))
	}
}

func (h *HalfEps) afterMove() {
	if len(h.v1) > h.k || len(h.v1)+len(h.v2) < h.k {
		h.startEpoch()
		return
	}
	if len(h.v1) == h.k && len(h.v3) == h.c.N()-h.k {
		h.inTopK = true
		h.topk.StartWithProbe(TopM(h.c, h.k+1))
		return
	}
	h.refreshOutput()
}
