package serve

import (
	"fmt"
	"math/rand"
	"testing"

	"topkmon/topk"
)

// benchConfig is the tenant shape both durability benchmarks use: big
// enough that the monitor does real work per step, small enough that the
// WAL append (not the engine) dominates the policy comparison.
var benchConfig = Config{
	Nodes: 256, K: 8, Eps: "1/8", Engine: "lockstep", Monitor: "approx", Seed: 7,
}

// benchBatch builds a deterministic 16-update batch per step.
func benchBatch(rng *rand.Rand, nodes int) []topk.Update {
	batch := make([]topk.Update, 16)
	for i := range batch {
		batch[i] = topk.Update{Node: rng.Intn(nodes), Value: int64(rng.Intn(1 << 20))}
	}
	return batch
}

// BenchmarkDurableCommit measures the per-batch ingest cost of each fsync
// policy against the volatile baseline — the headline "what does
// durability cost" number for BENCH.md. Every iteration commits one
// 16-update batch with a fresh seq through the full validate → journal →
// commit path. fsync=always pays a disk flush per batch; interval and
// never pay only the buffered append + CRC; volatile pays nothing.
func BenchmarkDurableCommit(b *testing.B) {
	cases := []struct {
		name  string
		fsync string // "" = volatile (no data dir)
	}{
		{"volatile", ""},
		{"fsync=never", "never"},
		{"fsync=interval", "interval"},
		{"fsync=always", "always"},
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) {
			opts := Options{}
			if bc.fsync != "" {
				opts.Durability = Durability{
					Dir: b.TempDir(), Fsync: bc.fsync, SnapshotEvery: 1 << 30,
				}
			}
			s, err := New(opts)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			tn, err := s.pool.Create("bench", benchConfig)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			batch := benchBatch(rng, benchConfig.Nodes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := tn.CommitBatch(batch, "bench-client", uint64(i+1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecovery measures boot-time replay cost as a function of log
// length: each iteration opens a server over a prepared data dir holding
// one tenant with `steps` journaled batches and replays it to the live
// monitor. This is the restart-latency curve that motivates the
// snapshot-by-replay compaction (CommitReset) and the SnapshotEvery
// durability points.
func BenchmarkRecovery(b *testing.B) {
	for _, steps := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("steps=%d", steps), func(b *testing.B) {
			dir := b.TempDir()
			s, err := New(Options{Durability: Durability{
				Dir: dir, Fsync: "never", SnapshotEvery: 1 << 30,
			}})
			if err != nil {
				b.Fatal(err)
			}
			tn, err := s.pool.Create("bench", benchConfig)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < steps; i++ {
				batch := benchBatch(rng, benchConfig.Nodes)
				if _, _, err := tn.CommitBatch(batch, "bench-client", uint64(i+1)); err != nil {
					b.Fatal(err)
				}
			}
			s.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rs, err := New(Options{Durability: Durability{
					Dir: dir, Fsync: "never", SnapshotEvery: 1 << 30,
				}})
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				tn, err := rs.pool.Get("bench")
				if err != nil || tn.Mon.Steps() != int64(steps) {
					b.Fatalf("recovered %v steps, want %d (err=%v)", tn, steps, err)
				}
				rs.Close()
				b.StartTimer()
			}
		})
	}
}
