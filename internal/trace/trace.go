// Package trace persists and loads workload traces — the recorded value
// matrices that feed replay runs and the offline optimum solver. Two
// formats are supported: CSV (one row per step, interoperable) and a
// compact delta-encoded binary format (magic "TKMT", varint-encoded
// per-node deltas, ~10× smaller for smooth workloads).
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Trace is a recorded run: Values[t][i] is node i's value at step t.
type Trace struct {
	Values [][]int64
}

// New wraps and validates a matrix.
func New(values [][]int64) (*Trace, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("trace: empty matrix")
	}
	n := len(values[0])
	if n == 0 {
		return nil, fmt.Errorf("trace: zero-width matrix")
	}
	for t, row := range values {
		if len(row) != n {
			return nil, fmt.Errorf("trace: step %d has %d values, want %d", t, len(row), n)
		}
	}
	return &Trace{Values: values}, nil
}

// T returns the number of steps.
func (tr *Trace) T() int { return len(tr.Values) }

// N returns the number of nodes.
func (tr *Trace) N() int { return len(tr.Values[0]) }

// --- CSV ---

// WriteCSV writes one comma-separated row per step.
func (tr *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, row := range tr.Values {
		for i, v := range row {
			if i > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatInt(v, 10)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a CSV trace; blank lines are skipped.
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var values [][]int64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		cells := strings.Split(line, ",")
		row := make([]int64, len(cells))
		for i, c := range cells {
			v, err := strconv.ParseInt(strings.TrimSpace(c), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d cell %d: %w", len(values)+1, i+1, err)
			}
			row[i] = v
		}
		values = append(values, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return New(values)
}

// --- binary ---

// magic identifies the binary trace format, version 1.
var magic = [4]byte{'T', 'K', 'M', 'T'}

const version = 1

// WriteBinary writes the delta-encoded binary format: header (magic,
// version, n, T), the first row varint-encoded absolute, then per step the
// zigzag-varint delta of each node against the previous step.
func (tr *Trace) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(x uint64) error {
		k := binary.PutUvarint(buf[:], x)
		_, err := bw.Write(buf[:k])
		return err
	}
	writeVarint := func(x int64) error {
		k := binary.PutVarint(buf[:], x)
		_, err := bw.Write(buf[:k])
		return err
	}
	if err := writeUvarint(version); err != nil {
		return err
	}
	if err := writeUvarint(uint64(tr.N())); err != nil {
		return err
	}
	if err := writeUvarint(uint64(tr.T())); err != nil {
		return err
	}
	prev := make([]int64, tr.N())
	for t, row := range tr.Values {
		for i, v := range row {
			if t == 0 {
				if err := writeVarint(v); err != nil {
					return err
				}
			} else if err := writeVarint(v - prev[i]); err != nil {
				return err
			}
			prev[i] = v
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary format written by WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var got [4]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("trace: header: %w", err)
	}
	if got != magic {
		return nil, fmt.Errorf("trace: bad magic %q", got)
	}
	ver, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: version: %w", err)
	}
	if ver != version {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	n64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: n: %w", err)
	}
	t64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: T: %w", err)
	}
	if n64 == 0 || t64 == 0 || n64 > 1<<22 || t64 > 1<<30 {
		return nil, fmt.Errorf("trace: implausible dimensions %d×%d", t64, n64)
	}
	n, T := int(n64), int(t64)
	values := make([][]int64, T)
	prev := make([]int64, n)
	for t := 0; t < T; t++ {
		row := make([]int64, n)
		for i := 0; i < n; i++ {
			d, err := binary.ReadVarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: step %d node %d: %w", t, i, err)
			}
			if t == 0 {
				row[i] = d
			} else {
				row[i] = prev[i] + d
			}
			prev[i] = row[i]
		}
		values[t] = row
	}
	return New(values)
}
