package nodecore

import (
	"math"
	"testing"

	"topkmon/internal/filter"
	"topkmon/internal/rngx"
	"topkmon/internal/wire"
)

func newNode(t *testing.T, id int) *Node {
	t.Helper()
	return New(id, rngx.New(99))
}

func TestViolationClassification(t *testing.T) {
	nd := newNode(t, 0)
	nd.SetFilter(filter.Make(10, 20))
	nd.Observe(15)
	if nd.Violation() != filter.DirNone {
		t.Error("inside filter must not violate")
	}
	nd.Observe(25)
	if nd.Violation() != filter.DirUp {
		t.Error("above filter must violate up")
	}
	nd.Observe(5)
	if nd.Violation() != filter.DirDown {
		t.Error("below filter must violate down")
	}
}

func TestMatchPredicates(t *testing.T) {
	nd := newNode(t, 3)
	nd.Observe(50)
	nd.SetFilter(filter.Make(0, 40))
	if !nd.Match(wire.Violating()) {
		t.Error("violating node must match PredViolating")
	}
	nd.SetFilter(filter.All)
	if nd.Match(wire.Violating()) {
		t.Error("contained node must not match PredViolating")
	}
	if !nd.Match(wire.InRange(50, 50)) || nd.Match(wire.InRange(51, 99)) {
		t.Error("InRange boundaries wrong")
	}
	nd.SetTag(wire.TagV2)
	if !nd.Match(wire.HasTag(wire.TagV2)) || nd.Match(wire.HasTag(wire.TagV1)) {
		t.Error("HasTag wrong")
	}
	nd.MFActive = true
	if !nd.Match(wire.AboveActive(49)) || nd.Match(wire.AboveActive(50)) {
		t.Error("AboveActive threshold wrong")
	}
	nd.MFActive = false
	if nd.Match(wire.AboveActive(0)) {
		t.Error("inactive node must not match AboveActive")
	}
}

func TestApplyFilterRule(t *testing.T) {
	nd := newNode(t, 1)
	nd.SetTag(wire.TagV2S2)
	nd.SetFilter(filter.Make(1, 2))
	rule := wire.NewFilterRule().
		WithRetag(wire.TagV2S2, wire.TagV2).
		With(wire.TagV2, filter.Make(30, 40))
	nd.ApplyFilterRule(rule)
	if nd.Tag != wire.TagV2 || nd.Filter != filter.Make(30, 40) {
		t.Errorf("rule application failed: %v %v", nd.Tag, nd.Filter)
	}
}

func TestMaxFindLifecycle(t *testing.T) {
	nd := newNode(t, 2)
	nd.Observe(100)
	nd.MaxFindInit(-1, true)
	if !nd.MFActive {
		t.Error("node above floor must activate")
	}
	nd.MaxFindRaise(5, 100) // best equals value: deactivate
	if nd.MFActive {
		t.Error("node at best must deactivate")
	}
	nd.MaxFindInit(-1, false)
	if !nd.MFActive {
		t.Error("re-init must reactivate non-excluded node")
	}
	nd.MaxFindExclude(2)
	if nd.MFActive || !nd.MFExcluded {
		t.Error("exclusion must bench the node")
	}
	nd.MaxFindInit(-1, false)
	if nd.MFActive {
		t.Error("excluded node must stay benched without reset")
	}
	nd.MaxFindInit(-1, true)
	if !nd.MFActive {
		t.Error("reset must clear exclusion")
	}
	nd.MaxFindRaise(2, 50) // holder deactivates even above best
	if nd.MFActive {
		t.Error("holder must deactivate on raise")
	}
}

func TestMaxFindInitFloor(t *testing.T) {
	nd := newNode(t, 4)
	nd.Observe(10)
	nd.MaxFindInit(10, true)
	if nd.MFActive {
		t.Error("node at floor must not activate")
	}
	nd.MaxFindInit(9, true)
	if !nd.MFActive {
		t.Error("node above floor must activate")
	}
}

func TestExistenceRounds(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := ExistenceRounds(n); got != want {
			t.Errorf("ExistenceRounds(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestExistenceFinalRoundIsCertain(t *testing.T) {
	nd := newNode(t, 5)
	n := 64
	gamma := ExistenceRounds(n)
	for trial := 0; trial < 100; trial++ {
		if !nd.ExistenceSend(gamma, n) {
			t.Fatal("final round must send with certainty")
		}
	}
}

func TestExistenceSendRate(t *testing.T) {
	// Round r sends with probability 2^r/n: check empirically at r=3, n=64
	// (p = 1/8).
	nd := New(6, rngx.New(123))
	const n, r, trials = 64, 3, 40000
	hits := 0
	for i := 0; i < trials; i++ {
		if nd.ExistenceSend(r, n) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-0.125) > 0.01 {
		t.Errorf("round-%d send rate %f, want 0.125", r, rate)
	}
}
