package lockstep

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"topkmon/internal/cluster"
	"topkmon/internal/eps"
	"topkmon/internal/filter"
	"topkmon/internal/live"
	"topkmon/internal/metrics"
	"topkmon/internal/rngx"
	"topkmon/internal/wire"
)

// adversarial value distributions for the index: the shapes that stress the
// bucket coarsening hardest.
func distributions(n int, r *rngx.Source) map[string]func() []int64 {
	return map[string]func() []int64{
		"random": func() []int64 {
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = r.Int63n(1 << 30)
			}
			return vals
		},
		"all-equal": func() []int64 { // every node in ONE bucket
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = 4711
			}
			return vals
		},
		"one-hot-bucket": func() []int64 { // dense cluster + sparse rest
			vals := make([]int64, n)
			for i := range vals {
				if i%8 == 0 {
					vals[i] = r.Int63n(eps.MaxValue)
				} else {
					vals[i] = (1 << 20) + r.Int63n(1<<19) // all in bucket 21
				}
			}
			return vals
		},
		"bucket-boundaries": func() []int64 { // 2^k-1 / 2^k straddles
			vals := make([]int64, n)
			for i := range vals {
				k := uint(1 + r.Intn(38))
				vals[i] = int64(1)<<k - r.Int63n(2)
			}
			return vals
		},
		"all-zero": func() []int64 { return make([]int64, n) },
	}
}

// randomPred draws predicates covering every routing path: interval
// predicates (value-bucket-indexed), empty and out-of-range intervals,
// max-find predicates (necessary-only bounds), the mirror-routed violation
// predicate, and the tag full-scan fallback.
func randomPred(r *rngx.Source) wire.Pred {
	switch r.Intn(6) {
	case 0: // in-range, possibly matching
		lo := r.Int63n(1 << 30)
		return wire.InRange(lo, lo+r.Int63n(1<<28))
	case 1: // empty interval
		return wire.InRange(9, 3)
	case 2: // above all values: no matches through the index
		return wire.InRange(eps.MaxValue-5, eps.MaxValue)
	case 3:
		return wire.AboveActive(r.Int63n(1 << 30))
	case 4:
		return wire.Violating()
	default:
		return wire.HasTag(wire.Tag(r.Intn(int(wire.NumTags))))
	}
}

// equivOp is one deterministic scripted operation; the same script replays
// against every engine under comparison, so reports, counters, and coin
// flips must align byte for byte.
type equivOp struct {
	kind    uint8 // see the op constants below
	vals    []int64
	id      int
	tag     wire.Tag
	iv      filter.Interval
	rule    wire.FilterRule
	floor   int64
	reset   bool
	pred    wire.Pred
	endStep bool
}

const (
	opAdvance = iota
	opSetTagFilter
	opBroadcastRule
	opMaxFindInit
	opCollect
	opSweep
	opDirectSweep // lockstep-only E11 ablation; scripts for live omit it
	opDetect
)

// equivScript generates the adversarial op sequence for one distribution:
// per round new observations, periodic filter churn that manufactures and
// clears real violators (unicast narrow filters AND broadcast rules with
// retagging — the exact mutation points the filter mirror must track),
// max-find state churn, then predicate-routed Collect/Sweep plus a
// violation sweep and a DetectViolation.
func equivScript(n, rounds int, dist func() []int64, r *rngx.Source, withDirect bool) []equivOp {
	var ops []equivOp
	for round := 0; round < rounds; round++ {
		ops = append(ops, equivOp{kind: opAdvance, vals: dist()})

		if round%5 == 1 {
			ops = append(ops, equivOp{
				kind: opSetTagFilter,
				id:   r.Intn(n),
				tag:  wire.Tag(r.Intn(int(wire.NumTags))),
				iv:   filter.Make(r.Int63n(1<<20), 1<<21),
			})
		}
		if round%4 == 3 {
			// Broadcast churn: a narrow filter for the untagged majority
			// (mass violator creation on most distributions), an
			// all-admitting one for TagRest, and a retag so filter
			// derivation exercises the rule path end to end.
			lo := r.Int63n(1 << 22)
			rule := wire.NewFilterRule().
				With(wire.TagNone, filter.Make(lo, lo+r.Int63n(1<<22))).
				With(wire.TagRest, filter.All).
				WithRetag(wire.TagV3, wire.TagRest)
			ops = append(ops, equivOp{kind: opBroadcastRule, rule: *rule})
		}
		if round%9 == 7 {
			// Clear the board so later rounds re-create violators afresh.
			rule := wire.NewFilterRule().With(wire.TagNone, filter.All)
			ops = append(ops, equivOp{kind: opBroadcastRule, rule: *rule})
		}
		if round%7 == 2 {
			ops = append(ops, equivOp{
				kind: opMaxFindInit, floor: r.Int63n(1 << 29), reset: round%14 == 2,
			})
		}

		p := randomPred(r)
		ops = append(ops, equivOp{kind: opCollect, pred: p})
		ops = append(ops, equivOp{kind: opSweep, pred: p})
		ops = append(ops, equivOp{kind: opSweep, pred: wire.Violating()})
		if withDirect && round%3 == 0 {
			ops = append(ops, equivOp{kind: opDirectSweep, pred: p})
		}
		ops = append(ops, equivOp{kind: opDetect, endStep: true})
	}
	return ops
}

// equivTrail is everything observable about one scripted run: every op's
// reports, every DetectViolation pick, the per-round counter deltas, and
// the final counter snapshot.
type equivTrail struct {
	reports [][]wire.Report
	picks   []wire.Report
	found   []bool
	deltas  []metrics.Snapshot
	final   metrics.Snapshot
}

// runEquivScript replays ops against eng and records the trail.
func runEquivScript(eng cluster.Engine, ops []equivOp) equivTrail {
	var trail equivTrail
	prev := eng.Counters().Snapshot()
	for i := range ops {
		op := &ops[i]
		switch op.kind {
		case opAdvance:
			eng.Advance(op.vals)
		case opSetTagFilter:
			eng.SetTagFilter(op.id, op.tag, op.iv)
		case opBroadcastRule:
			rule := op.rule
			eng.BroadcastRule(&rule)
		case opMaxFindInit:
			eng.MaxFindInit(op.floor, op.reset)
		case opCollect:
			trail.reports = append(trail.reports, append([]wire.Report(nil), eng.Collect(op.pred)...))
		case opSweep:
			trail.reports = append(trail.reports, append([]wire.Report(nil), eng.Sweep(op.pred)...))
		case opDirectSweep:
			ls := eng.(*Engine)
			ls.DirectReports = true
			trail.reports = append(trail.reports, append([]wire.Report(nil), ls.Sweep(op.pred)...))
			ls.DirectReports = false
		case opDetect:
			rep, ok := eng.DetectViolation()
			trail.picks = append(trail.picks, rep)
			trail.found = append(trail.found, ok)
		}
		if op.endStep {
			eng.EndStep()
			cur := eng.Counters().Snapshot()
			trail.deltas = append(trail.deltas, cur.Sub(prev))
			prev = cur
		}
	}
	trail.final = eng.Counters().Snapshot()
	return trail
}

// diffTrails fails the test at the first divergence between two trails.
func diffTrails(t *testing.T, name string, want, got equivTrail) {
	t.Helper()
	for i := range want.reports {
		if !reflect.DeepEqual(want.reports[i], got.reports[i]) {
			t.Fatalf("%s: reports[%d] diverge:\nfull scan %v\nrouted    %v",
				name, i, want.reports[i], got.reports[i])
		}
	}
	if !reflect.DeepEqual(want.picks, got.picks) || !reflect.DeepEqual(want.found, got.found) {
		t.Fatalf("%s: DetectViolation picks diverge", name)
	}
	for i := range want.deltas {
		if !reflect.DeepEqual(want.deltas[i], got.deltas[i]) {
			t.Fatalf("%s: round %d counter delta diverges:\nfull scan %+v\nrouted    %+v",
				name, i, want.deltas[i], got.deltas[i])
		}
	}
	if !reflect.DeepEqual(want.final, got.final) {
		t.Fatalf("%s: final counters diverge:\nfull scan %+v\nrouted    %+v",
			name, want.final, got.final)
	}
}

// liveShardCounts is the shard matrix the live engine is proven on: the
// degenerate single worker, the smallest cross-shard gather, uneven splits,
// one node per worker, and the hardware default.
func liveShardCounts(n int) []int {
	var counts []int
	seen := map[int]bool{}
	for _, m := range []int{1, 2, 5, 8, n, runtime.NumCPU()} {
		if !seen[m] {
			seen[m] = true
			counts = append(counts, m)
		}
	}
	return counts
}

// TestIndexedScanMatchesFullScan is the routing correctness property test:
// for random predicates — including the mirror-routed violation predicate
// under heavy filter churn — over adversarial value distributions, the
// index-routed Sweep/Collect/DetectViolation must return byte-identical
// reports, per-round counter deltas, and final counters (i.e. identical
// messages and coin flips) to the full scan. The full-scan reference is a
// lockstep engine with routing force-disabled; compared against it are the
// routed lockstep engine and the live engine at every shard count in
// liveShardCounts.
func TestIndexedScanMatchesFullScan(t *testing.T) {
	const n, rounds, seed = 133, 80, 5
	for name := range distributions(n, rngx.New(0)) {
		t.Run(name, func(t *testing.T) {
			r := rngx.New(911)
			script := equivScript(n, rounds, distributions(n, r)[name], r, true)

			fullScan := New(n, seed)
			fullScan.FullScan = true
			want := runEquivScript(fullScan, script)

			// Guard against a vacuous pass: the churn must manufacture
			// real violators, or the mirror was never exercised.
			nviol := 0
			for _, ok := range want.found {
				if ok {
					nviol++
				}
			}
			if nviol == 0 {
				t.Fatal("script produced no violation steps — filter churn too weak to exercise the mirror")
			}

			indexed := New(n, seed)
			diffTrails(t, "lockstep", want, runEquivScript(indexed, script))

			// The live engines replay the same script minus the
			// lockstep-only direct-sweep ablation ops; so does their
			// reference.
			var liveScript []equivOp
			for _, op := range script {
				if op.kind != opDirectSweep {
					liveScript = append(liveScript, op)
				}
			}
			ref := New(n, seed)
			ref.FullScan = true
			liveWant := runEquivScript(ref, liveScript)
			for _, m := range liveShardCounts(n) {
				t.Run(fmt.Sprintf("live/m=%d", m), func(t *testing.T) {
					lc := live.New(n, seed, live.WithShards(m))
					defer lc.Close()
					diffTrails(t, fmt.Sprintf("live m=%d", m), liveWant, runEquivScript(lc, liveScript))
				})
			}
		})
	}
}

// TestIndexVisitsTrackSelectivity pins the point of the two structures: a
// Collect whose value interval isolates a few nodes must visit only them, a
// violation sweep must visit only the violators — zero on a quiet step —
// while the tag fallback keeps visiting all n nodes.
func TestIndexVisitsTrackSelectivity(t *testing.T) {
	const n = 1024
	e := New(n, 3)
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = 1 << 10 // everyone cold in bucket 11
	}
	// Four hot nodes, alone in their magnitude class.
	for _, i := range []int{5, 100, 600, 1023} {
		vals[i] = 1 << 30
	}
	e.Advance(vals)

	before := e.VisitedNodes()
	reps := e.Collect(wire.InRange(1<<29, 1<<31))
	visited := e.VisitedNodes() - before
	if len(reps) != 4 {
		t.Fatalf("collect found %d hot nodes, want 4", len(reps))
	}
	if visited != 4 {
		t.Errorf("indexed collect visited %d nodes, want exactly the 4 candidates", visited)
	}

	before = e.VisitedNodes()
	e.Collect(wire.HasTag(wire.TagNone))
	if visited := e.VisitedNodes() - before; visited != n {
		t.Errorf("tag collect (fallback) visited %d nodes, want %d", visited, n)
	}

	// Quiet violation sweep: the mirror's violator set is empty, so all
	// γ+1 EXISTENCE rounds visit nothing — the tentpole win.
	before = e.VisitedNodes()
	if got := e.Sweep(wire.Violating()); got != nil {
		t.Fatalf("unexpected violators: %v", got)
	}
	if visited := e.VisitedNodes() - before; visited != 0 {
		t.Errorf("quiet violation sweep visited %d nodes, want 0", visited)
	}

	// Three manufactured violators: a direct-report violation sweep (one
	// round, no coin flips) visits exactly the mirrored violator set.
	for _, i := range []int{9, 700, 1023} {
		e.SetFilter(i, filter.Make(1, 2))
	}
	e.DirectReports = true
	before = e.VisitedNodes()
	if got := e.Sweep(wire.Violating()); len(got) != 3 {
		t.Fatalf("violation sweep found %d violators, want 3", len(got))
	}
	if visited := e.VisitedNodes() - before; visited != 3 {
		t.Errorf("violation sweep visited %d nodes, want exactly the 3 violators", visited)
	}
	e.DirectReports = false
}
