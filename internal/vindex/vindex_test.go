package vindex

import (
	"slices"
	"testing"

	"topkmon/internal/eps"
	"topkmon/internal/rngx"
)

// checkInvariants verifies the full structural contract of the index
// against a reference value vector: segment boundaries are monotone, every
// id appears exactly once in byBucket, pos/bkt agree with the layout, and
// each id sits in the bucket BucketOf(values[id]) demands.
func checkInvariants(t *testing.T, ix *Index, base int, values []int64) {
	t.Helper()
	if len(ix.byBucket) != len(values) {
		t.Fatalf("index holds %d ids, want %d", len(ix.byBucket), len(values))
	}
	prev := int32(0)
	for b, s := range ix.start {
		if s < prev || int(s) > len(ix.byBucket) {
			t.Fatalf("start[%d] = %d not monotone in [0, %d]", b, s, len(ix.byBucket))
		}
		prev = s
	}
	if ix.start[0] != 0 || ix.start[len(ix.start)-1] != int32(len(ix.byBucket)) {
		t.Fatalf("start endpoints = %d, %d", ix.start[0], ix.start[len(ix.start)-1])
	}
	seen := make(map[int32]bool, len(ix.byBucket))
	for b := 0; b+1 < len(ix.start); b++ {
		for p := ix.start[b]; p < ix.start[b+1]; p++ {
			id := ix.byBucket[p]
			if seen[id] {
				t.Fatalf("id %d appears twice in byBucket", id)
			}
			seen[id] = true
			i := int(id) - base
			if i < 0 || i >= len(values) {
				t.Fatalf("foreign id %d (base %d, n %d)", id, base, len(values))
			}
			if ix.pos[i] != p {
				t.Fatalf("pos[%d] = %d, byBucket has it at %d", i, ix.pos[i], p)
			}
			if int(ix.bkt[i]) != b {
				t.Fatalf("bkt[%d] = %d, byBucket places it in %d", i, ix.bkt[i], b)
			}
			if want := BucketOf(values[i]); want != b {
				t.Fatalf("id %d value %d in bucket %d, want %d", id, values[i], b, want)
			}
		}
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {eps.MaxValue, numBuckets - 1},
		{eps.MaxValue * 8, numBuckets - 1}, // query endpoints clamp
	}
	for _, c := range cases {
		if got := BucketOf(c.v); got != c.want {
			t.Errorf("BucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestFullRange(t *testing.T) {
	if !FullRange(0, eps.MaxValue) || !FullRange(-3, 1<<62) {
		t.Error("domain-covering intervals must report full range")
	}
	if FullRange(1, 1<<62) || FullRange(0, eps.MaxValue-1) {
		t.Error("proper sub-intervals must not report full range")
	}
}

// TestIndexRandomUpdates drives the index with random value assignments —
// including magnitude jumps across many buckets — and checks the structural
// invariants and span correctness after every batch.
func TestIndexRandomUpdates(t *testing.T) {
	const n, base, rounds = 97, 1000, 60
	r := rngx.New(42)
	ix := New(base, n)
	values := make([]int64, n)
	checkInvariants(t, ix, base, values)

	for round := 0; round < rounds; round++ {
		for upd := 0; upd < n/3; upd++ {
			i := r.Intn(n)
			// Mix magnitudes: tiny, mid, and near-domain-max values.
			var v int64
			switch r.Intn(4) {
			case 0:
				v = r.Int63n(4) // 0..3: buckets 0..2
			case 1:
				v = r.Int63n(1 << 12)
			case 2:
				v = r.Int63n(1 << 30)
			default:
				v = eps.MaxValue - r.Int63n(1<<20)
			}
			values[i] = v
			ix.Update(base+i, v)
		}
		checkInvariants(t, ix, base, values)

		// Span must contain every id whose value is in [lo, hi] (the
		// necessary-condition direction the engines rely on).
		lo := r.Int63n(1 << 32)
		hi := lo + r.Int63n(1<<32)
		span := ix.Span(lo, hi)
		got := make(map[int32]bool, len(span))
		for _, id := range span {
			got[id] = true
		}
		for i, v := range values {
			if v >= lo && v <= hi && !got[int32(base+i)] {
				t.Fatalf("round %d: id %d value %d in [%d,%d] missing from span",
					round, base+i, v, lo, hi)
			}
		}
		// And nothing outside the bucket coarsening of [lo, hi].
		bLo, bHi := BucketOf(lo), BucketOf(hi)
		for _, id := range span {
			b := BucketOf(values[int(id)-base])
			if b < bLo || b > bHi {
				t.Fatalf("round %d: span leaked id %d from bucket %d outside [%d,%d]",
					round, id, b, bLo, bHi)
			}
		}
	}

	// Reset rebuckets everything to value 0.
	ix.Reset()
	for i := range values {
		values[i] = 0
	}
	checkInvariants(t, ix, base, values)
}

func TestSpanEdges(t *testing.T) {
	ix := New(0, 8)
	for i := 0; i < 8; i++ {
		ix.Update(i, int64(1)<<i) // values 1,2,4,...,128: buckets 1..8
	}
	if got := ix.Span(5, 4); got != nil {
		t.Errorf("empty interval span = %v, want nil", got)
	}
	if got := len(ix.Span(0, eps.MaxValue)); got != 8 {
		t.Errorf("full-domain span has %d ids, want 8", got)
	}
	// [4, 7] is exactly bucket 3: only value 4 lives there.
	if got := ix.Span(4, 7); len(got) != 1 || got[0] != 2 {
		t.Errorf("span(4,7) = %v, want [2]", got)
	}
}

func TestAppendSortedOrdersAndReuses(t *testing.T) {
	const n = 64
	ix := New(0, n)
	r := rngx.New(7)
	for i := 0; i < n; i++ {
		ix.Update(i, r.Int63n(1<<20))
	}
	buf := make([]int32, 0, n)
	got := ix.AppendSorted(buf[:0], 1, 1<<20)
	if !slices.IsSorted(got) {
		t.Fatalf("AppendSorted not ascending: %v", got)
	}
	// Same contents as Span, order aside.
	span := append([]int32(nil), ix.Span(1, 1<<20)...)
	slices.Sort(span)
	if !slices.Equal(got, span) {
		t.Fatalf("AppendSorted = %v, span sorted = %v", got, span)
	}
}
