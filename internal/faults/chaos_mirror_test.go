package faults

import (
	"fmt"
	"reflect"
	"testing"

	"topkmon/internal/filter"
	"topkmon/internal/lockstep"
	"topkmon/internal/rngx"
	"topkmon/internal/wire"
)

// TestChaosMirrorMatchesFullScan is the mid-chaos twin of the lockstep
// index-equivalence suite: an indexed engine and a full-scan engine, each
// wrapped with the SAME fault plan (delayed filter assignments, drops,
// dups, crash windows), replay an identical op script heavy on filter
// churn and violation sweeps. At every op the perturbed reports must match
// byte for byte, the desync detector must latch at the same steps, and the
// final counters (model messages AND fault accounting) must be equal —
// i.e. the filter-interval mirror never diverges from ground truth even
// while the fault layer is reordering, losing, and delaying the very
// assignments it mirrors. The injector's coins stay aligned across the two
// runs precisely BECAUSE the report sequences are identical; a single
// divergent report would cascade into a loud counter mismatch.
func TestChaosMirrorMatchesFullScan(t *testing.T) {
	const n, steps = 41, 120
	plans := map[string]*Plan{
		"delay-only":         {Delay: 0.6},
		"delay-certain":      {Delay: 1},
		"delay+drop":         {Delay: 0.5, Drop: 0.25, Dup: 0.05},
		"delay+crashes":      {Delay: 0.4, Crashes: []Crash{{Node: 3, From: 10, Until: 50}, {Node: 17, From: 40, Until: 90}}},
		"drop+crashes":       {Drop: 0.3, Crashes: []Crash{{Node: 0, From: 5, Until: 115}}},
		"everything-at-once": {Drop: 0.2, Dup: 0.1, Delay: 0.7, Crashes: []Crash{{Node: 8, From: 30, Until: 70}}},
	}
	for name, plan := range plans {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				indexed := Wrap(lockstep.New(n, seed), plan, seed)
				full := lockstep.New(n, seed)
				full.FullScan = true
				ref := Wrap(full, plan, seed)

				r := rngx.New(seed * 7919)
				vals := make([]int64, n)
				for step := 0; step < steps; step++ {
					for i := range vals {
						vals[i] = r.Int63n(256)
					}
					indexed.Advance(vals)
					ref.Advance(vals)

					// Filter churn through the injector: unicasts that may
					// be delayed or dropped, and periodic broadcast rules
					// that re-derive most filters at once.
					if step%3 == 0 {
						id, lo := r.Intn(n), r.Int63n(256)
						iv := filter.Make(lo, lo+r.Int63n(32))
						indexed.SetFilter(id, iv)
						ref.SetFilter(id, iv)
					}
					if step%5 == 2 {
						lo := r.Int63n(256)
						rule := wire.NewFilterRule().
							With(wire.TagNone, filter.Make(lo, lo+64)).
							With(wire.TagRest, filter.All)
						indexed.BroadcastRule(rule)
						ref.BroadcastRule(rule)
					}
					if step%11 == 6 {
						id := r.Intn(n)
						tag := wire.Tag(r.Intn(int(wire.NumTags)))
						indexed.SetTagFilter(id, tag, filter.All)
						ref.SetTagFilter(id, tag, filter.All)
					}

					mustEq := func(what string, a, b interface{}) {
						if !reflect.DeepEqual(a, b) {
							t.Fatalf("%s seed %d step %d: %s diverge:\nfull scan %v\nmirror    %v",
								name, seed, step, what, b, a)
						}
					}
					mustEq("violation sweep reports",
						append([]wire.Report(nil), indexed.Sweep(wire.Violating())...),
						append([]wire.Report(nil), ref.Sweep(wire.Violating())...))
					gotRep, gotOK := indexed.DetectViolation()
					wantRep, wantOK := ref.DetectViolation()
					mustEq("DetectViolation", fmt.Sprint(gotRep, gotOK), fmt.Sprint(wantRep, wantOK))
					p := wire.InRange(r.Int63n(256), 300)
					mustEq("collect reports",
						append([]wire.Report(nil), indexed.Collect(p)...),
						append([]wire.Report(nil), ref.Collect(p)...))
					mustEq("desync latch", indexed.TakeDesync(), ref.TakeDesync())

					indexed.EndStep()
					ref.EndStep()
				}
				a, b := indexed.Counters().Snapshot(), ref.Counters().Snapshot()
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("%s seed %d: final counters diverge:\nfull scan %+v\nmirror    %+v",
						name, seed, b, a)
				}
				if a.IndexFallbacks != 0 {
					t.Fatalf("%s seed %d: %d index fallbacks on a violation/interval-only script, want 0",
						name, seed, a.IndexFallbacks)
				}
			}
		})
	}
}
