package wire_test

import (
	"math"
	"testing"

	"topkmon/internal/filter"
	"topkmon/internal/nodecore"
	"topkmon/internal/rngx"
	"topkmon/internal/wire"
)

// FuzzPredBounds cross-checks Pred.Bounds against the node-local Match
// oracle. Bounds promises a NECESSARY interval — the contract the engines'
// value-bucket routing rests on: when ok is true, a node whose value lies
// outside [lo, hi] must never match the predicate, whatever its other
// local state (filter, tag, max-find activity). For PredInRange the bound
// is additionally exact.
func FuzzPredBounds(f *testing.F) {
	f.Add(uint8(2), int64(10), int64(20), uint8(0), int64(15), false)
	f.Add(uint8(1), int64(100), int64(0), uint8(0), int64(101), true)
	f.Add(uint8(1), int64(math.MaxInt64), int64(0), uint8(0), int64(7), true)
	f.Add(uint8(0), int64(0), int64(0), uint8(3), int64(42), false)
	f.Add(uint8(3), int64(0), int64(0), uint8(4), int64(-5), false)
	f.Fuzz(func(t *testing.T, kind uint8, x, y int64, tag uint8, v int64, active bool) {
		p := wire.Pred{
			Kind: wire.PredKind(kind % 4),
			X:    x,
			Y:    y,
			Tag:  wire.Tag(tag % uint8(wire.NumTags)),
		}
		lo, hi, ok := p.Bounds()

		nd := nodecore.New(0, rngx.New(1))
		nd.Observe(v)
		nd.MFActive = active
		nd.SetTag(wire.Tag(tag % uint8(wire.NumTags)))
		nd.SetFilter(filter.Make(y, x)) // arbitrary, possibly empty filter

		if ok && nd.Match(p) && (v < lo || v > hi) {
			t.Fatalf("pred %+v: node value %d matches outside Bounds [%d, %d]", p, v, lo, hi)
		}
		if p.Kind == wire.PredInRange {
			if !ok {
				t.Fatalf("PredInRange must be value-bounded")
			}
			if want := v >= lo && v <= hi; nd.Match(p) != want {
				t.Fatalf("pred %+v: InRange bounds [%d, %d] not exact at %d", p, lo, hi, v)
			}
		}
	})
}
