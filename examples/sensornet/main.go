// Sensornet: the approximation pay-off, through the public topk API. A
// field of sensors reports a noisy measurement; many readings oscillate
// right around the k-th largest value, which is exactly the regime the
// paper's ε-relaxation targets — marginal, noise-driven rank changes need
// not be communicated.
//
// The demo sweeps ε and shows communication collapsing once the
// ε-neighborhood swallows the noise amplitude, while every output remains a
// certified ε-Top-k set (Monitor.Check runs every step).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"topkmon/topk"
)

const (
	kTop    = 4
	steps   = 1200
	sensors = 32
	base    = int64(20000) // the k-th sensor's level
	noise   = int64(600)   // ±3% measurement noise
)

// field fills one tick of sensor readings: 3 sensors clearly hot, 20
// oscillating around base, 9 clearly cold. With distinct=true the readings
// are made pairwise distinct by an order-preserving map (the exact problem
// assumes distinct values via identifier tie-breaking).
func field(rng *rand.Rand, vals []int64, distinct bool) {
	i := 0
	for j := 0; j < kTop-1; j++ {
		vals[i] = base*50 + rng.Int63n(noise+1)
		i++
	}
	for j := 0; j < 20; j++ {
		vals[i] = base - noise + rng.Int63n(2*noise+1)
		i++
	}
	for ; i < len(vals); i++ {
		vals[i] = base/50 + rng.Int63n(noise+1)
	}
	if distinct {
		n := int64(len(vals))
		for j := range vals {
			vals[j] = vals[j]*n + (n - 1 - int64(j))
		}
	}
}

func run(e topk.Epsilon, algo topk.Algorithm) (int64, string) {
	m, err := topk.New(kTop, e, topk.WithNodes(sensors), topk.WithSeed(3), topk.WithMonitor(algo))
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	rng := rand.New(rand.NewSource(77))
	vals := make([]int64, sensors)
	batch := make([]topk.Update, sensors)
	for t := 0; t < steps; t++ {
		field(rng, vals, algo == topk.Exact)
		for i, v := range vals {
			batch[i] = topk.Update{Node: i, Value: v}
		}
		if err := m.UpdateBatch(batch); err != nil {
			log.Fatal(err)
		}
		if err := m.Check(); err != nil {
			log.Fatalf("step %d: %v", t, err)
		}
	}
	return m.Cost().Messages, m.AlgorithmName()
}

func main() {
	fmt.Printf("%d sensors, top-%d monitored for %d steps, noise ≈ ±%.1f%% of v_k\n\n",
		sensors, kTop, steps, 100*float64(noise)/float64(base))
	exactCost, name := run(topk.Zero, topk.Exact)
	fmt.Printf("%-18s ε=0      messages=%7d (%.2f/step)\n",
		name, exactCost, float64(exactCost)/steps)
	for _, frac := range [][2]int64{{1, 100}, {1, 32}, {1, 16}, {1, 8}, {1, 4}} {
		e := topk.MustEpsilon(frac[0], frac[1])
		cost, name := run(e, topk.Approx)
		fmt.Printf("%-18s ε=%-6s messages=%7d (%.2f/step)  %5.1fx cheaper than exact\n",
			name, e, cost, float64(cost)/steps, float64(exactCost)/float64(cost))
	}
	fmt.Println("\nonce the ε-neighborhood covers the noise band, the monitor goes quiet.")
}
