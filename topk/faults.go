package topk

import (
	"fmt"

	"topkmon/internal/faults"
	"topkmon/internal/oracle"
)

// Crash takes one monitored node down for a window of committed steps: the
// node receives no server messages and sends no reports during steps t with
// From ≤ t < Until (the first committed step is step 1). Its pushed values
// keep feeding the monitor's mirror — the data source is alive, the node's
// protocol endpoint is not — which is exactly the divergence the recovery
// supervisor must detect.
type Crash struct {
	Node        int
	From, Until int64
}

// FaultPlan describes deterministic transport faults to inject under the
// monitor: every coin comes from a dedicated RNG stream derived from the
// monitor's seed, so a faulty run replays byte-identically for equal seeds,
// pushes, and plans. The zero plan injects nothing but still arms the
// recovery supervisor, whose per-step validation then never fires — a
// zero-plan monitor is bit-for-bit equivalent to an unfaulted one.
type FaultPlan struct {
	// Drop is the per-message drop probability in [0, 1].
	Drop float64
	// Dup is the per-message duplication probability in [0, 1].
	Dup float64
	// Delay is the probability a filter assignment is applied one step
	// late instead of immediately.
	Delay float64
	// Crashes is the node crash/recover schedule.
	Crashes []Crash
	// Retries is the reliability sublayer's redelivery budget per dropped
	// server→node unicast: 0 means the default (3), negative disables
	// retries.
	Retries int
}

// internal converts the public plan to the injector's representation.
func (p *FaultPlan) internal() *faults.Plan {
	if p == nil {
		return nil
	}
	fp := &faults.Plan{
		Drop:    p.Drop,
		Dup:     p.Dup,
		Delay:   p.Delay,
		Retries: p.Retries,
	}
	if p.Retries < 0 {
		fp.Retries = faults.NoRetries
	}
	for _, c := range p.Crashes {
		fp.Crashes = append(fp.Crashes, faults.Crash{Node: c.Node, From: c.From, Until: c.Until})
	}
	return fp
}

// WithFaults arms the monitor's fault layer: the engine is wrapped in the
// deterministic fault injector (internal/faults) driven by plan, and the
// monitor supervises every committed step — validating the published
// output against the built-in referee, surfacing divergence through
// Health() and degradation events on Subscribe, and healing itself with
// epoch resyncs (re-broadcast filters, re-run the sweep) under bounded
// exponential backoff. The no-silent-wrong-answers guarantee: after every
// committed step, either Check() passes or Health().State != Fresh.
//
// A nil plan disables the fault layer (the default); a zero plan arms
// supervision with nothing to inject, which is bit-for-bit equivalent to
// an unfaulted monitor.
func WithFaults(plan *FaultPlan) Option {
	return func(c *config) { c.faults = plan }
}

// HealthState classifies the monitor's confidence in its published output.
type HealthState uint8

const (
	// Fresh: the last committed step's output passed the referee and no
	// divergence signal is outstanding.
	Fresh HealthState = iota
	// Recovering: an epoch resync just ran (or a protocol desync was
	// detected and healed proactively); the output is valid again but not
	// yet confirmed by a clean follow-up step.
	Recovering
	// Degraded: the last committed step's output failed validation — the
	// published top-k set may be wrong and readers are on notice.
	Degraded
)

// String implements fmt.Stringer.
func (s HealthState) String() string {
	switch s {
	case Fresh:
		return "fresh"
	case Recovering:
		return "recovering"
	case Degraded:
		return "degraded"
	default:
		return fmt.Sprintf("HealthState(%d)", uint8(s))
	}
}

// Health is the monitor's self-assessment as of the last committed step.
// The zero value (Fresh, no staleness) is the permanent health of a
// monitor without WithFaults.
type Health struct {
	// State is the current confidence classification.
	State HealthState
	// StaleFor is the staleness age: the number of consecutive committed
	// steps (ending with the latest) whose published output failed
	// validation. Zero whenever the current output is valid.
	StaleFor int64
	// Err is the most recent validation failure, nil once the output
	// validates again.
	Err error
}

// Health returns the monitor's health. Without WithFaults it is always the
// zero Health (Fresh).
func (m *Monitor) Health() Health {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Health{State: m.health, StaleFor: m.staleFor, Err: m.healthErr}
}

// maxResyncBackoff caps the exponential backoff between resync attempts,
// in committed steps.
const maxResyncBackoff = 16

// guardedStepLocked runs the protocol step with panic isolation: under
// faults a desynced protocol may trip its own invariants (quiescence
// limits, report-shape assumptions), which must degrade the monitor, not
// crash the process. Without faults, panics stay fatal — they are harness
// bugs there, not weather.
func (m *Monitor) guardedStepLocked() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("topk: protocol failed under faults: %v", r)
		}
	}()
	if m.steps == 0 {
		m.mon.Start()
	} else {
		m.mon.HandleStep()
	}
	return nil
}

// validateLocked runs the built-in referee over the monitor's value mirror
// against the current output. Zero allocations in steady state.
func (m *Monitor) validateLocked() error {
	truth := oracle.ComputeInto(&m.sc, m.vals, m.k, m.e)
	return truth.ValidateEps(m.mon.Output())
}

// resyncLocked is the epoch resync: the algorithm is rebuilt on the (still
// possibly faulty) engine and opens a fresh epoch — re-broadcasting
// filters and re-running its opening sweep — exactly as a cold start
// would, with the epoch count carried over. The resync itself runs under
// panic isolation: a resync that fails leaves the monitor degraded for the
// next attempt.
func (m *Monitor) resyncLocked() (err error) {
	m.eng.Counters().Resync()
	m.epochBase += m.mon.Epochs()
	m.mon = m.mkMon(m.eng)
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("topk: resync failed: %v", r)
		}
	}()
	m.mon.Start()
	return nil
}

// superviseLocked is the recovery supervisor, run after every committed
// step of a fault-armed monitor. It enforces the no-silent-wrong-answers
// guarantee: the step's final published output either passes the referee
// or leaves Health degraded, and detected divergence triggers an epoch
// resync under bounded exponential backoff (1, 2, 4, … up to
// maxResyncBackoff steps between attempts while the fault persists).
func (m *Monitor) superviseLocked(stepErr error) {
	verr := stepErr
	if verr == nil {
		verr = m.validateLocked()
	}
	desync := m.faulty.TakeDesync()

	if verr == nil && !desync {
		// Clean step: one clean step after a resync confirms recovery.
		if m.health == Degraded {
			m.health = Recovering
		} else {
			m.health = Fresh
		}
		if m.health == Fresh {
			m.resyncBackoff = 1
			m.resyncCooldown = 0
		}
		m.staleFor = 0
		m.healthErr = nil
		return
	}

	// Divergence: either the output is wrong (verr != nil) or an
	// impossible report proved the protocol state desynced even though the
	// output still validates. Resync now unless still in backoff.
	if m.resyncCooldown > 0 {
		m.resyncCooldown--
	} else {
		rerr := m.resyncLocked()
		m.resyncCooldown = m.resyncBackoff
		if m.resyncBackoff < maxResyncBackoff {
			m.resyncBackoff *= 2
		}
		if rerr == nil {
			// The resync rebuilt the output from live cluster state;
			// re-validate what readers will now see.
			verr = m.validateLocked()
		} else {
			verr = rerr
		}
	}

	if verr == nil {
		m.health = Recovering
		m.staleFor = 0
		m.healthErr = nil
	} else {
		m.health = Degraded
		m.staleFor++
		m.healthErr = verr
		m.eng.Counters().StaleStep()
	}
}
