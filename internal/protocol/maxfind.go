package protocol

import (
	"topkmon/internal/cluster"
	"topkmon/internal/wire"
)

// FindMax computes the node holding the largest value among participating
// nodes (those not excluded by previous runs) using O(log n) messages in
// expectation — the algorithm behind Lemma 2.6.
//
// It repeatedly runs an EXISTENCE sweep for "active and above the current
// best": the terminating round's senders form a roughly uniform sample of
// the remaining candidates, so raising the best to the sample's maximum
// halves the candidate set in expectation, giving O(log n) iterations of
// O(1) expected messages each. When reset is true, exclusions from earlier
// runs are cleared.
func FindMax(c cluster.Cluster, reset bool) (wire.Report, bool) {
	c.MaxFindInit(-1, reset)
	var best wire.Report
	found := false
	for {
		senders := c.Sweep(wire.AboveActive(bestValue(best, found)))
		if len(senders) == 0 {
			return best, found
		}
		top := senders[0]
		for _, s := range senders[1:] {
			if s.Value > top.Value || (s.Value == top.Value && s.ID > top.ID) {
				top = s
			}
		}
		best, found = top, true
		c.MaxFindRaise(best.ID, best.Value)
	}
}

func bestValue(best wire.Report, found bool) int64 {
	if !found {
		return -1
	}
	return best.Value
}

// TopM computes the nodes holding the m largest values (value ties broken
// across runs by node id) using O(m log n) expected messages, by iterating
// FindMax and excluding each found node. The result is ordered by
// decreasing value.
func TopM(c cluster.Cluster, m int) []wire.Report {
	if m > c.N() {
		m = c.N()
	}
	out := make([]wire.Report, 0, m)
	for j := 0; j < m; j++ {
		rep, ok := FindMax(c, j == 0)
		if !ok {
			break
		}
		out = append(out, rep)
		c.MaxFindExclude(rep.ID)
	}
	return out
}
