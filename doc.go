// Package topkmon is a complete Go implementation of "On Competitive
// Algorithms for Approximations of Top-k-Position Monitoring of Distributed
// Streams" (Mäcker, Malatyali, Meyer auf der Heide, 2016).
//
// n distributed nodes each observe a private integer stream; a server must
// continuously know an ε-approximate set of the k nodes holding the largest
// values while spending as few messages as possible. The implementation
// covers every protocol the paper defines — the EXISTENCE sweep (Lemma 3.1),
// maximum computation (Lemma 2.6), the exact monitor (Corollary 3.3),
// TOP-K-PROTOCOL with its four phases (Section 4), DENSEPROTOCOL and
// SUBPROTOCOL (Section 5.2), the Theorem 5.8 controller, and the
// Corollary 5.9 half-error monitor — plus the offline optimal adversary the
// competitive analyses compare against, the Theorem 5.1 lower-bound
// adversary, and a benchmark harness (E1–E13) that reproduces the bound
// shape of every theorem.
//
// Layout:
//
//	topk                the PUBLIC embeddable API: push-based Monitor facade
//	                    over both engines — the single supported entry point
//	topk/items          PUBLIC item-monitoring layer: per-node streaming
//	                    summaries feed the monitor so it tracks top-k ITEMS
//	                    (heavy hitters) across nodes — consumes only topk
//	                    and internal/sketch
//	internal/sketch     streaming summaries (Space-Saving, Misra-Gries,
//	                    Count-Min) behind one Summary interface; stdlib-only
//	                    leaf, allocation-free Observe, Reset(seed) replay
//	internal/protocol   the paper's algorithms (the core contribution)
//	internal/lockstep   deterministic engine (tests, experiments)
//	internal/live       sharded concurrent engine (bit-identical semantics)
//	internal/vindex     value-bucket index shared by both engines
//	internal/offline    the offline optimum OPT (greedy segmentation)
//	internal/oracle     ground truth + output validation
//	internal/stream     workloads and adaptive adversaries;
//	                    stream/items: item-granularity traces (zipfian,
//	                    bursty, adversarial churn) + the recall@k evaluator
//	internal/sim        run harness (drives runs through topk);
//	                    internal/exp: experiments E1–E13
//	internal/serve      multi-tenant HTTP frontend (tenant pool, handlers,
//	                    SSE bridge, durable commit path) — consumes only the
//	                    public topk facade and internal/wal
//	internal/wal        per-tenant write-ahead batch log (CRC-framed records,
//	                    torn-tail tolerant decode, snapshot sidecars) behind
//	                    topkd -data-dir — consumes only topk
//	internal/tools      internal CLIs: tools/bench (experiment tables),
//	                    tools/tracegen (trace generation / offline pricing),
//	                    tools/loadgen (closed-loop load driver for topkd)
//	cmd/topkmon         live monitoring CLI — imports only topk
//	cmd/topkd           multi-tenant HTTP ingest daemon over internal/serve
//	examples/           six runnable scenarios — import only topk (and
//	                    topk/items for the heavyhitters demo)
//
// Applications embed the topk package; cmd/ and examples/ are its reference
// consumers, and CI (plus the topk boundary tests) enforces that neither
// imports any internal/... package — with one sanctioned exception:
// cmd/topkd imports internal/serve, which in turn may import only
// internal/wal (its durability layer), and internal/wal only topk — so the
// served path inherits every facade guarantee (TestServeEquivalence proves
// it byte-identical to direct embedding, and TestRecoveryEquivalence that
// a crash-recovered tenant is byte-identical to an uninterrupted one).
//
// # Performance
//
// The simulation hot path is allocation-free in steady state on BOTH
// engines, enforced by the benchmarks and tests (BenchmarkMonitorStep/*,
// BenchmarkLiveStep/* + TestLiveStepAllocs, BenchmarkOracle, and the
// primitive micro-benchmarks all report 0 allocs/op):
//
//   - The oracle exposes ComputeInto with a reusable Scratch (persistent
//     order/neighborhood/validation buffers and a packed-key index sort);
//     Compute remains as an allocating convenience wrapper. sim.Run,
//     offline.SigmaMax, and cmd/topkmon hold one Scratch per run.
//   - Both engines reuse their sweep buffer and double-buffer Collect
//     results; see the ownership contract on cluster.Cluster. Inspector
//     has ValuesInto/FiltersInto for per-step snapshots.
//   - Both engines route Sweep/Collect through a value-bucket index
//     (internal/vindex, maintained incrementally on Advance): only the
//     nodes plausibly matching the predicate's wire.Pred.Bounds interval
//     are visited, so scan cost tracks the matcher count σ rather than n
//     (BenchmarkSweepSelectivity, experiment E12, BENCH_PR3.json), with a
//     full-scan fallback for state-decided predicates. Routing is
//     observably invisible — byte-identical reports, counters, and coin
//     flips (TestIndexedScanMatchesFullScan).
//   - The live engine runs m worker shards (default GOMAXPROCS; see
//     live.WithShards), each owning a contiguous range of nodes and its
//     bucket partition, and batches directives per step: reply-free
//     mutations are deferred into a reusable batch that rides along with
//     the next response-bearing barrier; Collect/sweep matches land in
//     per-shard report lists, Probe/snapshot replies in per-node slots —
//     one quiet step wakes m workers instead of n goroutines, no
//     per-directive channel round-trips, no steady-state allocation. See
//     the internal/live package docs for the flush protocol.
//   - Protocols reuse broadcast FilterRules (engines apply or copy rules
//     before returning) and their set/output scratch buffers.
//   - offline.Solve reuses envelope and solver buffers and materialises a
//     witness only when a segment closes.
//   - The public topk facade adds nothing on top: Update/UpdateBatch (a
//     full pushed time step), TopK, Cost, and Check are 0 allocs/op in
//     steady state on both engines (TestFacadeStepAllocs; tracked by
//     BenchmarkFacadePush in the root suite and topk's own benchmarks),
//     and a facade-driven run is byte-identical to driving the engines
//     directly (TestFacadeEquivalence).
//
// Engines additionally support Reset(seed): a rewind to the exact state a
// fresh construction with that seed would produce (byte-identical traces,
// asserted by the Reset property tests). The experiment harness reuses one
// engine per worker across all trials of a table cell, and cmd/topkmon
// -repeat reuses one live engine across whole sessions.
//
// Benchmarks: `go test -bench=. -benchmem` at the repo root, or
// `make bench` for machine-readable JSON (BENCH_*.json records the
// trajectory across PRs: BENCH_PR1.json is the lockstep/oracle baseline,
// BENCH_PR2.json the live-engine batching + engine-reuse deltas,
// BENCH_PR3.json the value-index σ-scaling and worker-shard deltas,
// BENCH_PR10.json the sketch/item-layer costs via `make bench-sketch`; see
// BENCH.md for how to read them).
//
// The experiment harness fans independent trials and sweep points across
// exp.Options.Parallelism goroutines (internal/tools/bench flag -parallel;
// every BENCH_*.json run is stamped with a bench-env line recording
// GOMAXPROCS, NumCPU, and the live engine's default shard count). Every unit
// of work derives its seed from its own index — never from execution
// order — so tables are byte-identical for every worker count, asserted by
// TestParallelRunsAreDeterministic.
//
// See README.md for a tour, ARCHITECTURE.md for the paper-section →
// package map and the engine dataflow, DESIGN.md for the system inventory
// and the documented interpretations of underspecified paper details, and
// EXPERIMENTS.md for paper-vs-measured results. This file's package exists
// to carry the module-level documentation and the root benchmark suite
// (bench_test.go), which regenerates every experiment.
package topkmon
