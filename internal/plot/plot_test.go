package plot

import (
	"strings"
	"testing"
)

func TestLineBasics(t *testing.T) {
	out := Line("growth", []string{"10", "20", "30"}, []Series{
		{Name: "exact", Values: []float64{70, 90, 110}},
		{Name: "topk", Values: []float64{65, 65, 65}},
	}, 40, 10)
	if out == "" {
		t.Fatal("empty chart")
	}
	for _, want := range []string{"growth", "exact", "topk", "*", "o", "10", "30"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + axis + labels + 2 legend rows
	if len(lines) != 1+10+1+1+2 {
		t.Errorf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestLineRejectsBadInput(t *testing.T) {
	if Line("", nil, nil, 40, 10) != "" {
		t.Error("empty input should render nothing")
	}
	if Line("", []string{"a"}, []Series{{Name: "s", Values: []float64{1, 2}}}, 40, 10) == "" {
		t.Error("mismatched series should render a diagnostic")
	}
	if Line("", []string{"a"}, []Series{{Name: "s", Values: []float64{1}}}, 2, 2) != "" {
		t.Error("tiny dimensions should render nothing")
	}
}

func TestLineSinglePoint(t *testing.T) {
	out := Line("", []string{"x"}, []Series{{Name: "s", Values: []float64{5}}}, 20, 5)
	if !strings.Contains(out, "*") {
		t.Errorf("single point missing marker:\n%s", out)
	}
}

func TestLineConstantSeries(t *testing.T) {
	out := Line("", []string{"a", "b"}, []Series{{Name: "s", Values: []float64{3, 3}}}, 24, 6)
	if out == "" || !strings.Contains(out, "*") {
		t.Errorf("constant series failed:\n%s", out)
	}
}

func TestBars(t *testing.T) {
	out := Bars("msgs", []string{"naive", "approx"}, []float64{100, 10}, 30)
	if !strings.Contains(out, "naive") || !strings.Contains(out, "█") {
		t.Errorf("bars missing content:\n%s", out)
	}
	naiveLine, approxLine := "", ""
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "naive") {
			naiveLine = l
		}
		if strings.HasPrefix(l, "approx") {
			approxLine = l
		}
	}
	if strings.Count(naiveLine, "█") <= strings.Count(approxLine, "█") {
		t.Errorf("bar lengths not proportional:\n%s", out)
	}
}

func TestBarsRejectsBadInput(t *testing.T) {
	if Bars("", []string{"a"}, []float64{1, 2}, 30) != "" {
		t.Error("mismatched bars accepted")
	}
	if Bars("", nil, nil, 30) != "" {
		t.Error("empty bars accepted")
	}
}

func TestBarsZeroValues(t *testing.T) {
	out := Bars("", []string{"a", "b"}, []float64{0, 0}, 20)
	if out == "" {
		t.Error("zero bars should still render labels")
	}
}
