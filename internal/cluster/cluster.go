// Package cluster defines the engine-neutral server-side interface through
// which all monitoring protocols talk to the distributed nodes.
//
// Two engines implement it: the deterministic sequential engine
// (internal/lockstep), the primary substrate for tests and experiments, and
// the concurrent goroutine engine (internal/live) used by the runnable
// demos. Protocol code written against this interface runs unchanged on
// both, and — given equal seeds — produces identical message counters,
// which the cross-engine equivalence tests assert.
//
// Every method that moves information between server and nodes has a unit
// communication cost per message, matching the model of Section 2.
//
// # Buffer ownership
//
// Both engines run allocation-free in steady state by reusing internal
// buffers; the slices they hand out therefore have documented lifetimes
// rather than being fresh copies:
//
//   - Collect results survive exactly one further Collect (engines double-
//     buffer them, because DENSEPROTOCOL holds one result across a second
//     Collect). Protocols needing a longer lifetime must copy.
//   - Sweep and DetectViolation results are recycled by the next sweep.
//   - ValuesInto/FiltersInto append into caller-owned scratch, reusing its
//     capacity; Values/Filters/Tags are their allocating conveniences.
//   - BroadcastRule arguments are fully applied (or copied, on the live
//     engine) before the call returns, so callers may mutate and reuse one
//     rule across broadcasts.
//
// # Engine reuse
//
// Reset(seed) rewinds an engine to the state a fresh construction with
// that seed would produce, keeping nodes and buffers — the experiment
// harness runs hundreds of trials per table cell on one engine instead of
// constructing one per trial. The Reset property tests assert that a reset
// engine's trace is byte-identical to a fresh engine's.
//
// # Selectivity of Sweep and Collect
//
// Both engines route Sweep and Collect through a value-bucket index
// (internal/vindex) keyed by wire.Pred.Bounds: only nodes whose values can
// possibly match the predicate's interval are visited, so the engines'
// internal scan cost tracks the plausible-matcher count σ rather than n.
// Violation sweeps — whose matches depend on per-node filters, not value
// bounds — are routed through the engines' filter-interval mirror
// (vindex.Mirror): the server assigns every filter, so the engine records
// each assigned interval and maintains the exact violator set, making the
// scheduled quiet-step violation sweep O(1) server-side work. All routing
// is an implementation property with NO protocol-visible effect — the
// model's message costs stated on each method, the report contents and id
// order, and every coin flip are identical to a full scan (nodes outside
// the interval could not have matched or sent). Only tag predicates
// (HasTag) and domain-covering intervals scan all nodes, the documented
// fallback. Protocols should therefore prefer interval predicates
// (InRange, AboveActive with a meaningful floor) over tag collects when
// either formulation is available.
package cluster

import (
	"topkmon/internal/filter"
	"topkmon/internal/metrics"
	"topkmon/internal/rngx"
	"topkmon/internal/wire"
)

// Cluster is the server's view of the distributed system.
type Cluster interface {
	// N returns the number of nodes.
	N() int
	// Counters exposes the communication accounting.
	Counters() *metrics.Counters
	// Rand is the server-side randomness source.
	Rand() *rngx.Source

	// Reset returns the engine to the state a fresh construction with the
	// same n and the given seed would produce: values zeroed, filters
	// all-admitting, tags cleared, max-find state forgotten, counters
	// emptied, and every RNG stream (server and per-node) rewound. Nodes
	// and internal buffers are retained, so experiment harnesses can run
	// hundreds of independent trials on one engine instead of constructing
	// one per trial. Reset is harness scaffolding: a protocol never calls
	// it, and monitors built on the engine before a Reset must be rebuilt.
	Reset(seed uint64)

	// BroadcastRule sends one filter rule to all nodes (cost 1); each node
	// retags itself and derives its filter from its tag. The rule is fully
	// applied when the call returns, so callers may mutate and reuse it.
	BroadcastRule(rule *wire.FilterRule)
	// SetFilter assigns one node's filter (cost 1).
	SetFilter(id int, iv filter.Interval)
	// SetTagFilter assigns one node's tag and filter in a single unicast
	// (cost 1; both fit well inside the log-size message bound).
	SetTagFilter(id int, t wire.Tag, iv filter.Interval)
	// Probe requests and receives one node's value (cost 2).
	Probe(id int) wire.Report
	// Collect broadcasts a predicate; every matching node reports
	// (cost 1 + number of matches). The returned slice is owned by the
	// engine: it stays valid across at most one further Collect and is
	// recycled after that — protocols holding a result longer must copy.
	Collect(p wire.Pred) []wire.Report

	// Sweep runs the EXISTENCE protocol of Lemma 3.1 for the predicate:
	// zero messages when no node matches; otherwise the senders of the
	// terminating round (each cost 1) plus one halt broadcast. The sweep
	// itself needs no kickoff broadcast — it is part of the per-step
	// schedule all nodes know. The returned slice is owned by the engine
	// and is recycled by the next Sweep or DetectViolation.
	Sweep(p wire.Pred) []wire.Report

	// DetectViolation runs a violation sweep and returns one violator
	// (chosen among the terminating round's senders), or ok=false when no
	// node violates its filter.
	DetectViolation() (wire.Report, bool)

	// MaxFindInit (broadcast, cost 1) activates nodes above floor for a
	// max-find run; reset also clears exclusions.
	MaxFindInit(floor int64, reset bool)
	// MaxFindRaise (broadcast, cost 1) announces a new best.
	MaxFindRaise(holder int, best int64)
	// MaxFindExclude (broadcast, cost 1) benches a found maximum.
	MaxFindExclude(id int)
}

// Inspector is the simulation-scaffolding side door used by the oracle,
// validators, and adaptive adversaries — never by protocols. Engines
// implement it alongside Cluster.
type Inspector interface {
	// Values returns a copy of all current node values.
	Values() []int64
	// ValuesInto appends all current node values to dst[:0] and returns
	// it, reusing dst's capacity — the allocation-free form of Values for
	// per-step loops.
	ValuesInto(dst []int64) []int64
	// Filters returns a copy of all current node filters.
	Filters() []filter.Interval
	// FiltersInto appends all current node filters to dst[:0] and returns
	// it, reusing dst's capacity.
	FiltersInto(dst []filter.Interval) []filter.Interval
	// Tags returns a copy of all current node tags.
	Tags() []wire.Tag
	// Advance installs the next observations (start of a time step).
	Advance(values []int64)
	// EndStep closes the step's round accounting.
	EndStep()
}

// Engine combines the protocol-facing and scaffolding-facing interfaces.
type Engine interface {
	Cluster
	Inspector
}
