// Package offline computes the optimal filter-based offline algorithm's
// cost on a recorded instance — the adversary's OPT of the competitive
// analyses.
//
// By Proposition 2.4, OPT w.l.o.g. uses two filters per communication-free
// interval, characterised by Lemma 2.5: an interval [t, t'] is servable
// without communication iff some k-set S satisfies
//
//	MIN_S(t, t') ≥ (1-ε) · MAX_{S̄}(t, t'),
//
// where MIN/MAX are per-node envelopes over the interval. Feasibility is
// monotone under shrinking intervals, so the greedy maximal segmentation
// minimises the number of filter re-assignments; the number of segment
// breaks lower-bounds OPT's messages, exactly as the paper's analyses use
// it. A DP cross-check (BruteSegments) validates greedy on small instances.
package offline

import (
	"fmt"
	"slices"
	"sort"

	"topkmon/internal/eps"
	"topkmon/internal/filter"
	"topkmon/internal/oracle"
)

// Instance is a recorded run: Values[t][i] is node i's value at step t.
type Instance struct {
	Values [][]int64
	K      int
	Eps    eps.Eps
}

// NewInstance validates and wraps a recorded matrix.
func NewInstance(values [][]int64, k int, e eps.Eps) (*Instance, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("offline: empty instance")
	}
	n := len(values[0])
	if k < 1 || k > n {
		return nil, fmt.Errorf("offline: k=%d out of range for n=%d", k, n)
	}
	for t, row := range values {
		if len(row) != n {
			return nil, fmt.Errorf("offline: step %d has %d values, want %d", t, len(row), n)
		}
	}
	return &Instance{Values: values, K: k, Eps: e}, nil
}

// T returns the number of steps.
func (in *Instance) T() int { return len(in.Values) }

// N returns the number of nodes.
func (in *Instance) N() int { return len(in.Values[0]) }

// envelope tracks per-node running MIN and MAX over the current segment.
type envelope struct {
	min, max []int64
}

func newEnvelope(row []int64) *envelope {
	e := &envelope{min: append([]int64(nil), row...), max: append([]int64(nil), row...)}
	return e
}

// reset restarts the envelope at row, reusing its buffers.
func (e *envelope) reset(row []int64) {
	e.min = append(e.min[:0], row...)
	e.max = append(e.max[:0], row...)
}

// copyFrom makes e an independent copy of o, reusing e's buffers.
func (e *envelope) copyFrom(o *envelope) {
	e.min = append(e.min[:0], o.min...)
	e.max = append(e.max[:0], o.max...)
}

func (e *envelope) extend(row []int64) {
	for i, v := range row {
		if v < e.min[i] {
			e.min[i] = v
		}
		if v > e.max[i] {
			e.max[i] = v
		}
	}
}

// solver holds the reusable working memory of the feasibility check; one
// solver reused across all steps of a Solve keeps the O(T) feasibility
// checks allocation-free in steady state.
type solver struct {
	byMax    []int
	pmin     []int64
	minsDesc []int64
	eligible []int
}

// Feasible reports whether some k-set S satisfies
// min_{i∈S} MIN_i ≥ (1-ε)·max_{j∉S} MAX_j for the given envelopes.
//
// For each candidate threshold θ = min_S MIN (necessarily one of the MIN
// values), S must avoid every node with MIN below θ and must contain every
// node with (1-ε)·MAX above θ; those forced nodes form a prefix of the
// MAX-descending order. The check runs in O(n log n).
func Feasible(minEnv, maxEnv []int64, k int, e eps.Eps) bool {
	var s solver
	return s.feasible(minEnv, maxEnv, k, e)
}

// Witness returns a witnessing k-set S (sorted ids) if one exists.
func Witness(minEnv, maxEnv []int64, k int, e eps.Eps) ([]int, bool) {
	var s solver
	return s.witness(minEnv, maxEnv, k, e)
}

// prepare fills the solver's order and threshold buffers for the envelopes.
func (s *solver) prepare(minEnv, maxEnv []int64) {
	n := len(minEnv)
	if cap(s.byMax) < n {
		s.byMax = make([]int, n)
		s.pmin = make([]int64, n+1)
		s.minsDesc = make([]int64, n)
	}
	s.byMax, s.pmin, s.minsDesc = s.byMax[:n], s.pmin[:n+1], s.minsDesc[:n]

	// byMax: ids ordered by MAX descending (canonical id tie-break);
	// pmin[j] = min MIN among the first j of them.
	for i := range s.byMax {
		s.byMax[i] = i
	}
	oracle.SortIDs(s.byMax, maxEnv)
	s.pmin[0] = int64(1) << 62
	for j, id := range s.byMax {
		s.pmin[j+1] = s.pmin[j]
		if minEnv[id] < s.pmin[j+1] {
			s.pmin[j+1] = minEnv[id]
		}
	}

	// minsDesc: candidate thresholds, descending, so the first hit
	// maximises slack.
	copy(s.minsDesc, minEnv)
	slices.SortFunc(s.minsDesc, func(a, b int64) int {
		switch {
		case a > b:
			return -1
		case a < b:
			return 1
		default:
			return 0
		}
	})
}

// findTheta locates the largest feasible threshold, returning its forced
// prefix length. prepare must have run for the same envelopes.
func (s *solver) findTheta(minEnv, maxEnv []int64, k int, e eps.Eps) (theta int64, forced int, ok bool) {
	n := len(minEnv)
	for i := 0; i < n; {
		theta = s.minsDesc[i]
		// Skip the run of equal thresholds; with minsDesc sorted
		// descending, the index past the run is cntMin = |{MIN ≥ θ}|.
		j := i + 1
		for j < n && s.minsDesc[j] == theta {
			j++
		}
		cntMin := j
		i = j
		if cntMin < k {
			continue
		}
		// forced = |{(1-ε)·MAX > θ}| — a prefix of byMax.
		forced = sort.Search(n, func(j int) bool {
			return !gtScaled(maxEnv[s.byMax[j]], theta, e)
		})
		if forced > k {
			continue
		}
		// Every forced node needs MIN ≥ θ.
		if s.pmin[forced] < theta {
			continue
		}
		return theta, forced, true
	}
	return 0, 0, false
}

func (s *solver) feasible(minEnv, maxEnv []int64, k int, e eps.Eps) bool {
	if k == len(minEnv) {
		return true
	}
	s.prepare(minEnv, maxEnv)
	_, _, ok := s.findTheta(minEnv, maxEnv, k, e)
	return ok
}

func (s *solver) witness(minEnv, maxEnv []int64, k int, e eps.Eps) ([]int, bool) {
	n := len(minEnv)
	if k == n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out, true
	}
	s.prepare(minEnv, maxEnv)
	theta, forced, ok := s.findTheta(minEnv, maxEnv, k, e)
	if !ok {
		return nil, false
	}
	return s.buildWitness(minEnv, forced, theta, k), true
}

// gtScaled reports (1-ε)·max > θ.
func gtScaled(max, theta int64, e eps.Eps) bool {
	return e.ClearlyBelow(theta, max) // θ < (1-ε)·max
}

// buildWitness assembles S: the forced prefix plus the highest-MIN fillers
// among the remaining θ-eligible nodes. The returned slice is freshly
// allocated — witnesses are retained in segments.
func (s *solver) buildWitness(minEnv []int64, forced int, theta int64, k int) []int {
	out := make([]int, 0, k)
	out = append(out, s.byMax[:forced]...)
	inS := func(id int) bool {
		for _, f := range s.byMax[:forced] {
			if f == id {
				return true
			}
		}
		return false
	}
	// Fill with eligible nodes (MIN ≥ θ) of largest MIN first
	// (canonical id tie-break).
	s.eligible = s.eligible[:0]
	for id, m := range minEnv {
		if m >= theta && !inS(id) {
			s.eligible = append(s.eligible, id)
		}
	}
	oracle.SortIDs(s.eligible, minEnv)
	for _, id := range s.eligible {
		if len(out) == k {
			break
		}
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// Segment is a maximal communication-free interval [From, To] (inclusive)
// with a witnessing output set.
type Segment struct {
	From, To int
	Out      []int
}

// Result summarises an offline solve.
type Result struct {
	Segments []Segment
	// Breaks = len(Segments) - 1: the lower bound on OPT's messages used
	// by the competitive-ratio experiments.
	Breaks int
	// Realistic counts the Prop 2.4 two-filter deployment: per segment
	// one broadcast plus one unicast per node that switches sides.
	Realistic int64
}

// Solve computes the greedy maximal segmentation. Steady-state steps run a
// single allocation-free feasibility check on reused envelope and solver
// buffers; the witnessing output set is materialised only when a segment
// closes (the greedy envelope is maximal there, so the witness equals the
// one the last feasible extension would have produced).
func (in *Instance) Solve() Result {
	var res Result
	var s solver
	env := newEnvelope(in.Values[0])
	trial := newEnvelope(in.Values[0])
	start := 0
	closeSegment := func(to int) {
		out, ok := s.witness(env.min, env.max, in.K, in.Eps)
		if !ok {
			panic("offline: single step must always be feasible")
		}
		res.Segments = append(res.Segments, Segment{From: start, To: to, Out: out})
	}
	for t := 1; t < in.T(); t++ {
		trial.copyFrom(env)
		trial.extend(in.Values[t])
		if s.feasible(trial.min, trial.max, in.K, in.Eps) {
			env, trial = trial, env
			continue
		}
		closeSegment(t - 1)
		env.reset(in.Values[t])
		start = t
	}
	closeSegment(in.T() - 1)
	res.Breaks = len(res.Segments) - 1
	res.Realistic = in.realisticCost(res.Segments)
	return res
}

// realisticCost charges each segment one broadcast (the rest-side filter)
// plus a unicast per node entering the output side, as in the Prop 2.4 /
// Theorem 5.1 constructions.
func (in *Instance) realisticCost(segs []Segment) int64 {
	var cost int64
	prev := map[int]bool{}
	for si, s := range segs {
		cost++ // broadcast
		cur := make(map[int]bool, len(s.Out))
		for _, id := range s.Out {
			cur[id] = true
			if si == 0 || !prev[id] {
				cost++ // unicast filter to a node joining the output side
			}
		}
		prev = cur
	}
	return cost
}

// PlanFilters materialises the Proposition 2.4 two-filter deployment for a
// solved segment: the output side holds F₁ = [MIN_S(seg), ∞], everyone else
// F₂ = [0, MAX_S̄(seg)]. By Lemma 2.5's characterisation these filters are
// valid at every step of the segment and the output never needs to change —
// the property test in this package verifies both against the oracle.
func (in *Instance) PlanFilters(seg Segment) (fOut, fRest filter.Interval) {
	inS := make(map[int]bool, len(seg.Out))
	for _, id := range seg.Out {
		inS[id] = true
	}
	minS := int64(1) << 62
	maxR := int64(0)
	for t := seg.From; t <= seg.To; t++ {
		for i, v := range in.Values[t] {
			if inS[i] {
				if v < minS {
					minS = v
				}
			} else if v > maxR {
				maxR = v
			}
		}
	}
	if len(seg.Out) == in.N() {
		return filter.AtLeast(0), filter.AtMost(0)
	}
	return filter.AtLeast(minS), filter.AtMost(maxR)
}

// BruteSegments returns the minimum number of segments by dynamic
// programming — O(T²) feasibility checks — for validating greedy on small
// instances.
func (in *Instance) BruteSegments() int {
	T := in.T()
	feas := make([][]bool, T)
	for a := 0; a < T; a++ {
		feas[a] = make([]bool, T)
		env := newEnvelope(in.Values[a])
		for b := a; b < T; b++ {
			if b > a {
				env.extend(in.Values[b])
			}
			feas[a][b] = Feasible(env.min, env.max, in.K, in.Eps)
		}
	}
	const inf = int(1) << 30
	dp := make([]int, T+1)
	for i := 1; i <= T; i++ {
		dp[i] = inf
		for a := 0; a < i; a++ {
			if feas[a][i-1] && dp[a]+1 < dp[i] {
				dp[i] = dp[a] + 1
			}
		}
	}
	return dp[T]
}

// SigmaMax returns max_t σ(t) for the instance, the paper's σ parameter.
func (in *Instance) SigmaMax() int {
	best := 0
	var sc oracle.Scratch
	for _, row := range in.Values {
		truth := oracle.ComputeInto(&sc, row, in.K, in.Eps)
		if truth.Sigma > best {
			best = truth.Sigma
		}
	}
	return best
}
