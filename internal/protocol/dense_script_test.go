package protocol_test

import (
	"testing"

	"topkmon/internal/cluster"
	"topkmon/internal/eps"
	"topkmon/internal/lockstep"
	"topkmon/internal/oracle"
	"topkmon/internal/protocol"
)

// scriptRig drives a Dense monitor over a scripted value matrix,
// validating the ε-output after every step.
type scriptRig struct {
	t      *testing.T
	eng    *lockstep.Engine
	d      *protocol.Dense
	k      int
	e      eps.Eps
	ended  int
	topked int
}

func newScriptRig(t *testing.T, n, k int, e eps.Eps, first []int64) *scriptRig {
	t.Helper()
	rig := &scriptRig{t: t, eng: lockstep.New(n, 1234), k: k, e: e}
	rig.d = protocol.NewDense(rig.eng, k, e)
	rig.d.OnEpochEnd = func() {
		rig.ended++
		rig.d.StartWithProbe(protocol.TopM(rig.eng, k+1))
	}
	rig.d.OnSwitchTopK = func() {
		rig.topked++
		// The rig keeps Dense in charge (restart) — we only script dense
		// regimes, and the restart keeps outputs valid.
		rig.d.StartWithProbe(protocol.TopM(rig.eng, k+1))
	}
	rig.eng.Advance(first)
	rig.d.Start()
	rig.validate(first)
	return rig
}

func (rig *scriptRig) step(vals []int64) {
	rig.t.Helper()
	rig.eng.Advance(vals)
	rig.d.HandleStep()
	rig.validate(vals)
	rig.eng.EndStep()
}

func (rig *scriptRig) validate(vals []int64) {
	rig.t.Helper()
	truth := oracle.Compute(vals, rig.k, rig.e)
	if err := truth.ValidateEps(rig.d.Output()); err != nil {
		rig.t.Fatalf("invalid output: %v", err)
	}
}

// TestDenseScriptedSubEntry walks DENSEPROTOCOL deterministically into
// SUBPROTOCOL: a node first observed above u_r (→ S1), then below ℓ_r
// (→ S1∩S2 → SUB), then driven down until L′ empties and the node moves to
// V3 — covering cases b.2, c.2 and the SUB d.2 cascade.
func TestDenseScriptedSubEntry(t *testing.T) {
	// n=6, k=2, ε=1/2: neighborhood of z is [z/2, 2z].
	e := eps.MustNew(1, 2)
	// A=5000 (V1: > 2z = 2000), B=C=1000 (so z pins immediately),
	// D=900, E=800 (V2), F=100 (V3: < z/2 = 500).
	first := []int64{5000, 1000, 1000, 900, 800, 100}
	rig := newScriptRig(t, 6, 2, e, first)

	// z=1000, L0=[500,1000], ℓ0=750, u0=1500.
	// D (id 3) → 1600 > u0: case b.2 → S1 (|V1|+|S1|+1 = 2 = k not > k).
	rig.step([]int64{5000, 1000, 1000, 1600, 800, 100})
	// D → 700 < ℓ0: case c.2 → S1∩S2 → SUBPROTOCOL runs.
	rig.step([]int64{5000, 1000, 1000, 700, 800, 100})
	if rig.d.SubCalls == 0 {
		t.Fatal("SUBPROTOCOL was not invoked")
	}
	// Drive D down in small decrements: each pass re-halves L′ (SUB d.2)
	// until L′ empties and D lands in V3.
	for _, v := range []int64{640, 580, 540, 520, 510, 505, 502, 501} {
		rig.step([]int64{5000, 1000, 1000, v, 800, 100})
	}
	t.Logf("subCalls=%d halvings=%d epochsEnded=%d topkSwitches=%d",
		rig.d.SubCalls, rig.d.Halvings, rig.ended, rig.topked)
}

// TestDenseScriptedSubToV1 drives the S1∩S2 node upward instead, covering
// SUB case d.1 (move to V1, terminate SUB).
func TestDenseScriptedSubToV1(t *testing.T) {
	e := eps.MustNew(1, 2)
	first := []int64{5000, 1000, 1000, 900, 800, 100}
	rig := newScriptRig(t, 6, 2, e, first)

	rig.step([]int64{5000, 1000, 1000, 1600, 800, 100}) // D → S1
	rig.step([]int64{5000, 1000, 1000, 700, 800, 100})  // D → S1∩S2 → SUB
	if rig.d.SubCalls == 0 {
		t.Fatal("SUBPROTOCOL was not invoked")
	}
	// D → 2500 > z/(1-ε) = 2000: SUB case d.1 — D must join V1.
	rig.step([]int64{5000, 1000, 1000, 2500, 800, 100})
	out := rig.d.Output()
	foundD := false
	for _, id := range out {
		if id == 3 {
			foundD = true
		}
	}
	if !foundD {
		t.Fatalf("node 3 rose clearly above but is not in output %v", out)
	}
}

// TestDenseV1DownViolationHalvesLower covers DENSE case a: a V1 node
// falling below ℓ_r halves L downward.
func TestDenseV1DownViolationHalvesLower(t *testing.T) {
	e := eps.MustNew(1, 2)
	first := []int64{5000, 1000, 1000, 900, 800, 100}
	rig := newScriptRig(t, 6, 2, e, first)
	h0 := rig.d.Halvings
	// A (V1, filter [750, ∞]) falls to 600 < 750: case a.
	rig.step([]int64{600, 1000, 1000, 900, 800, 100})
	if rig.d.Halvings <= h0 && rig.ended == 0 {
		t.Error("V1 down-violation must halve L (or end the epoch)")
	}
}

// TestDenseV3UpViolationHalvesUpper covers DENSE case a′.
func TestDenseV3UpViolationHalvesUpper(t *testing.T) {
	e := eps.MustNew(1, 2)
	first := []int64{5000, 1000, 1000, 900, 800, 100}
	rig := newScriptRig(t, 6, 2, e, first)
	h0 := rig.d.Halvings
	// F (V3, filter [0, 1500]) jumps to 1600: case a′.
	rig.step([]int64{5000, 1000, 1000, 900, 800, 1600})
	if rig.d.Halvings <= h0 && rig.ended == 0 {
		t.Error("V3 up-violation must halve L upward (or end the epoch)")
	}
}

// TestDenseB1MajorityAbove covers case b.1: when more than k nodes are
// certified above u_r, L moves to its upper half.
func TestDenseB1MajorityAbove(t *testing.T) {
	e := eps.MustNew(1, 2)
	// k=1: V1={A}; B,C,D dense; E low. z: need v_k == v_{k+1} for instant
	// pin with k=1: top-1 = A... use k=2 with two pinned nodes instead.
	// A=B=1000 (k=2, z=1000), C,D,E in V2, F low.
	first := []int64{1000, 1000, 900, 850, 800, 100}
	rig := newScriptRig(t, 6, 2, e, first)
	h0 := rig.d.Halvings
	// u0 = 1500. C → 1600 (S1, count |V1|+|S1|+1 = 0+0+1 ≤ 2), then
	// D → 1700 (count 0+1+1 = 2 ≤ 2), then E → 1800 (count 0+2+1 = 3 > 2:
	// b.1 fires).
	rig.step([]int64{1000, 1000, 1600, 850, 800, 100})
	rig.step([]int64{1000, 1000, 1600, 1700, 800, 100})
	rig.step([]int64{1000, 1000, 1600, 1700, 1800, 100})
	if rig.d.Halvings <= h0 && rig.ended == 0 {
		t.Error("three up-certified nodes with k=2 must trigger b.1")
	}
}

// TestDenseEpochEndsWhenLExhausted: a V3 node jumping above every possible
// u_r (u_r ≤ z/(1-ε) = 2000) keeps violating through each upper-half move,
// exhausting L within the step — the epoch must end (Lemma 5.7: OPT
// communicated).
func TestDenseEpochEndsWhenLExhausted(t *testing.T) {
	e := eps.MustNew(1, 2)
	// Three nodes at 1000 so v_k = v_{k+1} pins z without a preamble.
	first := []int64{1000, 1000, 1000, 850, 800, 100}
	rig := newScriptRig(t, 6, 2, e, first)
	rig.step([]int64{1000, 1000, 1000, 850, 800, 2100})
	if rig.ended == 0 {
		t.Error("a persistent above-range violator never ended the dense epoch")
	}
}

// TestDenseSwitchesToTopKWhenClusterDissolves covers case (d)/(e): k nodes
// get observed above u_r and n-k below ℓ_r, so the unique-output regime
// applies and the controller is asked to run TOP-K-PROTOCOL.
func TestDenseSwitchesToTopKWhenClusterDissolves(t *testing.T) {
	e := eps.MustNew(1, 2)
	first := []int64{1000, 1000, 1000, 980, 100, 90}
	rig := newScriptRig(t, 6, 2, e, first)
	// z=1000, ℓ0=750, u0=1500, (1-ε)z = 500.
	// C and D crash below 500: b′.2 puts each in S2, the follow-up
	// violation (v < zLow) lands them in V3 via c′.1.
	rig.step([]int64{1000, 1000, 400, 980, 100, 90})
	rig.step([]int64{1000, 1000, 400, 400, 100, 90})
	// Now V3 covers n-k = 4 nodes. Raise A and B above u0 = 1500: each
	// lands in S1 (b.2); after the second, |V1|+|S1| = k and the switch
	// fires.
	rig.step([]int64{1600, 1000, 400, 400, 100, 90})
	rig.step([]int64{1600, 1700, 400, 400, 100, 90})
	if rig.topked == 0 && rig.ended == 0 {
		t.Error("dissolved cluster neither switched to TOP-K nor ended the epoch")
	}
}

// TestDensePreamble: when v_k ≠ v_{k+1} the preamble filters hold until a
// violation pins z.
func TestDensePreamble(t *testing.T) {
	e := eps.MustNew(1, 2)
	// v_2 = 1000 (B), v_3 = 900 (C): preamble with F1=[900,∞], F2=[0,1000].
	first := []int64{5000, 1000, 900, 800, 700, 100}
	rig := newScriptRig(t, 6, 2, e, first)
	// No violation: stays in preamble, zero cost steps.
	before := rig.eng.Counters().Total()
	rig.step([]int64{5000, 1000, 900, 800, 700, 100})
	if rig.eng.Counters().Total() != before {
		t.Error("quiet preamble step must be free")
	}
	// C crosses above 1000: violation from below → z := v_k = 1000.
	rig.step([]int64{5000, 1000, 1100, 800, 700, 100})
	// After z pins, the protocol classifies and keeps valid outputs
	// (validated inside step).
}

var _ = cluster.Cluster(nil) // keep the import for the rig's type references
