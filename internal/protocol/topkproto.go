package protocol

import (
	"fmt"
	"math"

	"topkmon/internal/cluster"
	"topkmon/internal/eps"
	"topkmon/internal/filter"
	"topkmon/internal/wire"
)

// Phase identifies which of the four strategies of Section 4 is active.
type Phase int8

// The four consecutive phases of TOP-K-PROTOCOL.
const (
	// PhaseA1 (property P1, log log u > log log ℓ + 1 ⟺ u > ℓ²) probes
	// separators ℓ₀ + 2^(2^r) growing double-exponentially.
	PhaseA1 Phase = iota + 1
	// PhaseA2 (property P2, u > 4ℓ) bisects on a log scale: the separator
	// is the geometric mean of ℓ and u.
	PhaseA2
	// PhaseA3 (property P3, u > ℓ/(1-ε)) bisects arithmetically.
	PhaseA3
	// PhaseP4 (u ≤ ℓ/(1-ε)) holds the ε-slack filters [ℓ,∞], [0,u]; the
	// next violation empties L and ends the epoch.
	PhaseP4
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseA1:
		return "A1"
	case PhaseA2:
		return "A2"
	case PhaseA3:
		return "A3"
	case PhaseP4:
		return "P4"
	default:
		return fmt.Sprintf("Phase(%d)", int8(p))
	}
}

// TopKProto is the TOP-K-PROTOCOL of Section 4: it outputs the exact top-k
// at epoch start and witnesses its correctness with an ε-relaxed filter gap,
// achieving O(k log n + log log Δ + log 1/ε) messages per epoch against an
// exact offline optimum (Theorem 4.5).
type TopKProto struct {
	c   cluster.Cluster
	k   int
	e   eps.Eps
	out []int

	l      filter.Interval
	phase  Phase
	r      int   // A1 violation counter
	l0     int64 // ℓ at epoch start (A1's base)
	epochs int64
	// a1Broken marks that A1 saw a violation from above: per Lemma 4.1 the
	// phase then terminates ("the condition log log u′ ≤ log log ℓ′ + 1
	// holds") — A1's separator ℓ₀+2^(2^r) probes from below and cannot
	// track a descending upper bound.
	a1Broken bool

	// Ablation switches for experiment E9: disabling A1/A2 degrades the
	// epoch cost from O(log log Δ) to O(log Δ) bisection.
	DisableA1 bool
	DisableA2 bool

	// OnEpochEnd, when set, is called instead of self-restarting when an
	// epoch terminates (used by the Theorem 5.8 controller).
	OnEpochEnd func()

	phaseViolations map[Phase]int64
	rules           ruleScratch
}

// NewTopKProto returns the Section 4 monitor.
func NewTopKProto(c cluster.Cluster, k int, e eps.Eps) *TopKProto {
	if k < 1 || k >= c.N() {
		panic(fmt.Sprintf("protocol: TopKProto needs 1 ≤ k < n, got k=%d n=%d", k, c.N()))
	}
	return &TopKProto{c: c, k: k, e: e, phaseViolations: make(map[Phase]int64)}
}

// Name implements Monitor.
func (m *TopKProto) Name() string { return "topk-protocol" }

// Epochs implements Monitor.
func (m *TopKProto) Epochs() int64 { return m.epochs }

// Output implements Monitor.
func (m *TopKProto) Output() []int { return m.out }

// PhaseViolations returns how many violations each phase processed (for the
// phase-ablation experiment).
func (m *TopKProto) PhaseViolations() map[Phase]int64 { return m.phaseViolations }

// Start implements Monitor.
func (m *TopKProto) Start() { m.startEpoch() }

func (m *TopKProto) startEpoch() {
	m.StartWithProbe(TopM(m.c, m.k+1))
}

// StartWithProbe begins an epoch from an already-probed top-(k+1) list,
// avoiding a duplicate probe when a controller has just paid for one.
func (m *TopKProto) StartWithProbe(reps []wire.Report) {
	m.epochs++
	m.out = ids(reps[:m.k])
	m.l = filter.Make(reps[m.k].Value, reps[m.k-1].Value)
	m.l0 = m.l.Lo
	m.r = 0
	m.a1Broken = false
	m.recomputePhase()
	fOut, fRest := m.filters()
	m.rules.assignTwoSided(m.c, m.out, fOut, fRest)
}

// recomputePhase applies the P1–P4 cascade to the current L = [ℓ, u].
// Since ℓ only grows and u only shrinks within an epoch, phases advance
// monotonically.
func (m *TopKProto) recomputePhase() {
	l, u := m.l.Lo, m.l.Hi
	switch {
	case m.e.FilterCompatible(l, u): // u ≤ ℓ/(1-ε): property P4
		m.phase = PhaseP4
	case !m.DisableA1 && !m.a1Broken && p1Holds(l, u):
		m.phase = PhaseA1
	case !m.DisableA2 && u > 4*l:
		m.phase = PhaseA2
	default:
		m.phase = PhaseA3
	}
}

// p1Holds checks property P1: log log u > log log ℓ + 1, which over the
// integers is u > ℓ² (base-2 logs), guarded for ℓ ≤ 1.
func p1Holds(l, u int64) bool {
	if l < 2 {
		l = 2
	}
	if l > 1<<31 {
		// ℓ² would overflow, and u ≤ MaxValue < ℓ² anyway.
		return false
	}
	return u > l*l
}

// separator returns the broadcast value m for the bisecting phases.
func (m *TopKProto) separator() int64 {
	l, u := m.l.Lo, m.l.Hi
	switch m.phase {
	case PhaseA1:
		// m := ℓ₀ + 2^(2^r), saturating far above any observable value.
		exp := int64(1) << uint(min(m.r, 6))
		return satAdd(m.l0, pow2Sat(int(min(exp, 60))))
	case PhaseA2:
		return geoMid(l, u)
	default: // PhaseA3
		return m.l.Mid()
	}
}

// geoMid returns an integer approximation of the geometric mean √(ℓu),
// clamped inside [ℓ, u]; any interior point within a constant factor of the
// true mean preserves Lemma 4.2's O(1) bound.
func geoMid(l, u int64) int64 {
	g := int64(math.Sqrt(float64(l) * float64(u)))
	if g < l {
		g = l
	}
	if g > u {
		g = u
	}
	return g
}

func (m *TopKProto) filters() (fOut, fRest filter.Interval) {
	if m.phase == PhaseP4 {
		return filter.AtLeast(m.l.Lo), filter.AtMost(m.l.Hi)
	}
	s := m.separator()
	return filter.AtLeast(s), filter.AtMost(s)
}

// HandleStep implements Monitor.
func (m *TopKProto) HandleStep() {
	drainViolations(m.c, m.Handle)
}

// Handle processes one violation report (exported for the controller).
func (m *TopKProto) Handle(rep wire.Report) {
	m.phaseViolations[m.phase]++
	if m.phase == PhaseP4 {
		// Step 5/6: the violation empties L; terminate the epoch.
		m.endEpoch()
		return
	}
	if rep.Dir == filter.DirUp {
		m.l = m.l.ClampAbove(rep.Value)
	} else {
		m.l = m.l.ClampBelow(rep.Value)
		if m.phase == PhaseA1 {
			// Lemma 4.1: a violation from above terminates A1.
			m.a1Broken = true
		}
	}
	if m.phase == PhaseA1 {
		m.r++
	}
	if m.l.Empty() {
		m.endEpoch()
		return
	}
	m.recomputePhase()
	fOut, fRest := m.filters()
	m.rules.retargetTwoSided(m.c, fOut, fRest)
}

func (m *TopKProto) endEpoch() {
	if m.OnEpochEnd != nil {
		m.OnEpochEnd()
		return
	}
	m.startEpoch()
}
