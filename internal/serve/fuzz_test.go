package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzBatchDecode throws arbitrary bytes at the update-batch request path
// and pins two properties end to end:
//
//  1. DecodeBatch never panics, and on success returns only what a strict
//     re-encode would reproduce (bounded length, both fields present).
//  2. All-or-nothing ingest: a request the handlers reject — malformed
//     JSON, overflowing ids, out-of-range nodes/values, oversized batches,
//     trailing garbage — commits no step and leaves the monitor's output
//     untouched; an accepted request commits exactly one step.
func FuzzBatchDecode(f *testing.F) {
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"node":0,"value":5}]`))
	f.Add([]byte(`[{"node":3,"value":1048576},{"node":0,"value":0}]`))
	f.Add([]byte(`[{"node":0,`))
	f.Add([]byte(`{"node":0,"value":1}`))
	f.Add([]byte(`[{"node":99999999999999999999,"value":1}]`))
	f.Add([]byte(`[{"node":0,"value":99999999999999999999}]`))
	f.Add([]byte(`[{"node":-1,"value":1}]`))
	f.Add([]byte(`[{"node":0,"value":-1}]`))
	f.Add([]byte(`[{"node":1.5,"value":1}]`))
	f.Add([]byte(`[{"node":0,"value":1,"extra":true}]`))
	f.Add([]byte(`[{"node":0}]`))
	f.Add([]byte(`[{"value":1}]`))
	f.Add([]byte(`[{"node":0,"value":1}] trailing`))
	f.Add([]byte(`[null]`))
	f.Add([]byte("[" + strings.Repeat(`{"node":0,"value":1},`, 40) + `{"node":0,"value":1}]`))
	f.Add([]byte("\x00\xff\xfe"))

	const maxBatch = 32
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decoder-level: no panics, hard cap honored.
		batch, err := DecodeBatch(bytes.NewReader(data), nil, maxBatch)
		if err == nil && len(batch) > maxBatch {
			t.Fatalf("decoded %d > max %d updates", len(batch), maxBatch)
		}

		// Handler-level: a tiny single-tenant server; the request either
		// commits exactly one step or leaves the tenant untouched.
		s, err := New(Options{Defaults: Config{Nodes: 4, K: 1, Seed: 1}, Lazy: true, MaxBatch: maxBatch})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		seedReq := httptest.NewRequest(http.MethodPost, "/v1/f/update",
			strings.NewReader(`[{"node":0,"value":7},{"node":1,"value":3}]`))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, seedReq)
		if rec.Code != http.StatusOK {
			t.Fatalf("seeding step: %d", rec.Code)
		}
		ten, err := s.Pool().Get("f")
		if err != nil {
			t.Fatal(err)
		}
		before := ten.Mon.Steps()
		topBefore := ten.Mon.TopK(nil)

		req := httptest.NewRequest(http.MethodPost, "/v1/f/update", bytes.NewReader(data))
		rec = httptest.NewRecorder()
		s.ServeHTTP(rec, req)

		after := ten.Mon.Steps()
		switch {
		case rec.Code == http.StatusOK:
			if after != before+1 {
				t.Fatalf("accepted batch committed %d steps", after-before)
			}
		case after != before:
			t.Fatalf("rejected batch (status %d) committed %d steps", rec.Code, after-before)
		default:
			if topAfter := ten.Mon.TopK(nil); !equalIDs(topBefore, topAfter) {
				t.Fatalf("rejected batch (status %d) mutated output %v -> %v",
					rec.Code, topBefore, topAfter)
			}
		}
	})
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDecodeBatchGolden re-checks the seed corpus properties without the
// fuzz engine, so `go test` alone covers them.
func TestDecodeBatchGolden(t *testing.T) {
	good := map[string]int{
		`[]`:                     0,
		`[{"node":0,"value":5}]`: 1,
		`[{"node":3,"value":1048576},{"node":0,"value":0}]`: 2,
		`[{"node":-1,"value":1}]`:                           1, // range is the monitor's call
		`[{"node":0,"value":-1}]`:                           1,
	}
	for in, n := range good {
		batch, err := DecodeBatch(strings.NewReader(in), nil, 32)
		if err != nil || len(batch) != n {
			t.Errorf("DecodeBatch(%q) = %v, %v; want %d updates", in, batch, err, n)
		}
	}
	bad := []string{
		`[{"node":0,`,
		`{"node":0,"value":1}`,
		`[{"node":99999999999999999999,"value":1}]`,
		`[{"node":0,"value":1,"extra":true}]`,
		`[{"node":0}]`,
		`[{"value":1}]`,
		`[{"node":0,"value":1}] trailing`,
		`[null]`,
		`[{"node":1.5,"value":1}]`,
		``,
	}
	for _, in := range bad {
		if batch, err := DecodeBatch(strings.NewReader(in), nil, 32); err == nil {
			t.Errorf("DecodeBatch(%q) accepted: %v", in, batch)
		}
	}
	if _, err := DecodeBatch(strings.NewReader(`[{"node":0,"value":1},{"node":1,"value":2}]`), nil, 1); err == nil {
		t.Error("max-batch cap not enforced")
	}
}
