package oracle_test

import (
	"reflect"
	"testing"

	"topkmon/internal/eps"
	"topkmon/internal/oracle"
	"topkmon/internal/rngx"
)

// TestComputeIntoMatchesCompute reuses one dirty Scratch across hundreds of
// randomized (n, k, ε, values) cases and asserts the result is identical to
// a fresh Compute each time — the scratch-reuse equivalence property the
// zero-allocation hot path depends on.
func TestComputeIntoMatchesCompute(t *testing.T) {
	r := rngx.New(42)
	var sc oracle.Scratch
	epsilons := []eps.Eps{eps.Zero, eps.MustNew(1, 8), eps.MustNew(1, 4), eps.MustNew(1, 2)}
	for trial := 0; trial < 500; trial++ {
		n := 1 + r.Intn(80)
		k := 1 + r.Intn(n)
		e := epsilons[r.Intn(len(epsilons))]
		vals := make([]int64, n)
		// Mix plenty of ties in (small value range half the time).
		span := int64(1 << 30)
		if r.Bool(0.5) {
			span = 8
		}
		for i := range vals {
			vals[i] = r.Int63n(span)
		}
		want := oracle.Compute(vals, k, e)
		got := oracle.ComputeInto(&sc, vals, k, e)
		assertTruthEqual(t, trial, want, got)
	}
}

// TestComputeIntoFallbackSort covers the comparator fallback for values the
// packed-key sort cannot represent (above eps.MaxValue).
func TestComputeIntoFallbackSort(t *testing.T) {
	r := rngx.New(7)
	var sc oracle.Scratch
	e := eps.MustNew(1, 8)
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(40)
		k := 1 + r.Intn(n)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = eps.MaxValue + r.Int63n(1<<20)
		}
		want := oracle.Compute(vals, k, e)
		got := oracle.ComputeInto(&sc, vals, k, e)
		assertTruthEqual(t, trial, want, got)
	}
}

func assertTruthEqual(t *testing.T, trial int, want, got oracle.Truth) {
	t.Helper()
	if !reflect.DeepEqual(want.Order, got.Order) {
		t.Fatalf("trial %d: Order mismatch\nwant %v\ngot  %v", trial, want.Order, got.Order)
	}
	if want.VK != got.VK {
		t.Fatalf("trial %d: VK %d != %d", trial, got.VK, want.VK)
	}
	if !sameIDs(want.Clearly, got.Clearly) {
		t.Fatalf("trial %d: Clearly mismatch\nwant %v\ngot  %v", trial, want.Clearly, got.Clearly)
	}
	if !sameIDs(want.Neighborhood, got.Neighborhood) {
		t.Fatalf("trial %d: Neighborhood mismatch\nwant %v\ngot  %v", trial, want.Neighborhood, got.Neighborhood)
	}
	if want.Sigma != got.Sigma {
		t.Fatalf("trial %d: Sigma %d != %d", trial, got.Sigma, want.Sigma)
	}
	if want.Unique() != got.Unique() {
		t.Fatalf("trial %d: Unique() diverges", trial)
	}
	// The validators must agree on the exact top-k output…
	out := want.TopK()
	if w, g := want.ValidateEps(out), got.ValidateEps(out); (w == nil) != (g == nil) {
		t.Fatalf("trial %d: ValidateEps diverges: %v vs %v", trial, w, g)
	}
	if w, g := want.ValidateExact(out), got.ValidateExact(out); (w == nil) != (g == nil) {
		t.Fatalf("trial %d: ValidateExact diverges: %v vs %v", trial, w, g)
	}
	// …and on a deliberately wrong output (duplicate first id when k > 1).
	if len(out) > 1 {
		bad := append([]int(nil), out...)
		bad[len(bad)-1] = bad[0]
		if w, g := want.ValidateEps(bad), got.ValidateEps(bad); (w == nil) != (g == nil) {
			t.Fatalf("trial %d: ValidateEps(bad) diverges: %v vs %v", trial, w, g)
		}
	}
}

func sameIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
