package protocol

import (
	"fmt"

	"topkmon/internal/cluster"
	"topkmon/internal/filter"
	"topkmon/internal/wire"
)

// MidNaive is the probe-per-violation exact baseline in the spirit of the
// precursor paper [6] without the Section 3 generic framework: it separates
// the top-k from the rest with the midpoint of [v_{k+1}, v_k], and on every
// violation recomputes the k+1 largest values from scratch. Each violation
// therefore costs O(k log n) messages — against ExactMid's amortised
// O(log Δ) bisection inside an epoch — which experiment E3 quantifies.
type MidNaive struct {
	c      cluster.Cluster
	k      int
	out    []int
	epochs int64
	rules  ruleScratch
}

// NewMidNaive returns the baseline monitor.
func NewMidNaive(c cluster.Cluster, k int) *MidNaive {
	if k < 1 || k >= c.N() {
		panic(fmt.Sprintf("protocol: MidNaive needs 1 ≤ k < n, got k=%d n=%d", k, c.N()))
	}
	return &MidNaive{c: c, k: k}
}

// Name implements Monitor.
func (m *MidNaive) Name() string { return "midpoint-probe" }

// Epochs implements Monitor.
func (m *MidNaive) Epochs() int64 { return m.epochs }

// Output implements Monitor.
func (m *MidNaive) Output() []int { return m.out }

// Start implements Monitor.
func (m *MidNaive) Start() { m.startEpoch() }

func (m *MidNaive) startEpoch() {
	m.epochs++
	reps := TopM(m.c, m.k+1)
	m.out = ids(reps[:m.k])
	mid := (reps[m.k].Value + reps[m.k-1].Value) / 2
	m.rules.assignTwoSided(m.c, m.out, filter.AtLeast(mid), filter.AtMost(mid))
}

// HandleStep implements Monitor.
func (m *MidNaive) HandleStep() {
	drainViolations(m.c, func(wire.Report) { m.startEpoch() })
}
