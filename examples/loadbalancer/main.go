// Loadbalancer: the paper's motivating scenario — a balancer in front of a
// web-server cluster continuously tracking the k most loaded servers, here
// with real concurrency: every server is a goroutine (the live engine), and
// the balancer only learns what the filter protocol tells it.
//
// The demo compares the Theorem 5.8 controller against the naive
// report-every-change design on an identical bursty load trace.
package main

import (
	"fmt"
	"log"

	"topkmon/internal/cluster"
	"topkmon/internal/eps"
	"topkmon/internal/live"
	"topkmon/internal/oracle"
	"topkmon/internal/protocol"
	"topkmon/internal/stream"
)

const (
	servers = 48
	k       = 5
	steps   = 1500
)

func run(mkMonitor func(cluster.Cluster) protocol.Monitor, e eps.Eps, label string) int64 {
	// Four worker shards host the 48 server goroutines' node state: each
	// owns 12 nodes and their value-bucket partition, so a quiet tick wakes
	// 4 workers, not 48 goroutines. The shard count never changes outputs.
	engine := live.New(servers, 11, live.WithShards(4))
	defer engine.Close()
	monitor := mkMonitor(engine)

	// Bursty loads: baseline noise plus sudden hotspots that decay.
	gen := stream.NewLoads(servers, 2000, 60, 0.004, 8000, 1<<20, 99)

	hotSwaps := 0
	var prev []int
	for t := 0; t < steps; t++ {
		values := gen.Next(t)
		engine.Advance(values)
		if t == 0 {
			monitor.Start()
		} else {
			monitor.HandleStep()
		}
		truth := oracle.Compute(values, k, e)
		if err := truth.ValidateEps(monitor.Output()); err != nil {
			log.Fatalf("%s step %d: %v", label, t, err)
		}
		if !equalInts(prev, monitor.Output()) {
			hotSwaps++
			prev = append(prev[:0], monitor.Output()...)
		}
		engine.EndStep()
	}
	total := engine.Counters().Total()
	fmt.Printf("%-22s messages=%7d (%.3f/step)  hot-set changes=%d\n",
		label, total, float64(total)/steps, hotSwaps)
	return total
}

func main() {
	fmt.Printf("balancer tracking top-%d of %d servers over %d ticks\n\n", k, servers, steps)
	e := eps.MustNew(1, 10)
	filtered := run(func(c cluster.Cluster) protocol.Monitor {
		return protocol.NewApprox(c, k, e)
	}, e, "approx (ε=1/10)")
	naive := run(func(c cluster.Cluster) protocol.Monitor {
		return protocol.NewNaive(c, k)
	}, e, "naive report-all")
	fmt.Printf("\nfilter-based monitoring sent %.1fx fewer messages\n",
		float64(naive)/float64(filtered))
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
