package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMultiTenantStress hammers one server with N tenants × M goroutines
// of interleaved update/read/subscribe/reset traffic over a real listener.
// It asserts nothing about outputs (per-tenant interleaving is the
// clients' business) — only that every response is an expected status and
// nothing races, deadlocks, or panics; the CI -race job runs it with the
// detector on.
func TestMultiTenantStress(t *testing.T) {
	const (
		tenants    = 4
		goroutines = 3 // per tenant
	)
	iters := 120
	if testing.Short() {
		iters = 40
	}
	srv := newTestServer(t, Options{Defaults: Config{Nodes: 16, K: 2}, Lazy: true})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	hc := ts.Client()

	// One draining SSE consumer per tenant, attached up front.
	for i := 0; i < tenants; i++ {
		putTenant(t, hc, ts.URL, fmt.Sprintf("s%d", i))
		c := newSSEClient(t, ts.URL, fmt.Sprintf("s%d", i))
		defer c.Close()
		go func() {
			for range c.Events {
			}
		}()
	}

	var wg sync.WaitGroup
	errs := make(chan error, tenants*goroutines)
	for ten := 0; ten < tenants; ten++ {
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(ten, g int) {
				defer wg.Done()
				base := ts.URL + fmt.Sprintf("/v1/s%d", ten)
				for i := 0; i < iters; i++ {
					var resp *http.Response
					var err error
					switch i % 6 {
					case 0, 1, 2:
						body := fmt.Sprintf(`[{"node":%d,"value":%d}]`, (g*7+i)%16, 100+i)
						resp, err = hc.Post(base+"/update", "application/json", strings.NewReader(body))
					case 3:
						resp, err = hc.Get(base + "/topk")
					case 4:
						resp, err = hc.Get(base + "/cost")
					default:
						if g == 0 && i%24 == 5 {
							resp, err = hc.Post(base+"/reset", "application/json", strings.NewReader(`{"seed":3}`))
						} else {
							resp, err = hc.Get(base + "/health")
						}
					}
					if err != nil {
						errs <- err
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("tenant s%d op %d: status %d", ten, i, resp.StatusCode)
						return
					}
				}
			}(ten, g)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestTenantIsolation pins the pool's central liveness property: one
// tenant's lifecycle churn — concurrent Create/Close of one neighbor and
// Reset of another — can neither stall nor corrupt a steady tenant's
// ingest. The pool lock covers only map mutation; monitors are built and
// closed outside it.
func TestTenantIsolation(t *testing.T) {
	steps := 300
	if testing.Short() {
		steps = 100
	}
	srv := newTestServer(t, Options{Defaults: Config{Nodes: 16, K: 2}, Lazy: true})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	hc := ts.Client()

	stop := make(chan struct{})
	var churns, resets atomic.Int64
	var wg sync.WaitGroup
	// Churner: create a live-engine victim (worker goroutines, the most
	// expensive construction), feed it, delete it, repeat.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("victim%d", i%3)
			req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/"+name,
				strings.NewReader(`{"nodes":32,"engine":"live","shards":2}`))
			if resp, err := hc.Do(req); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			if resp, err := hc.Post(ts.URL+"/v1/"+name+"/flush", "application/json", nil); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/"+name, nil)
			if resp, err := hc.Do(req); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			churns.Add(1)
		}
	}()
	// Resetter: continuously rewinds its own tenant.
	putTenant(t, hc, ts.URL, "resettee")
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			body := fmt.Sprintf(`{"seed":%d}`, i)
			if resp, err := hc.Post(ts.URL+"/v1/resettee/reset", "application/json", strings.NewReader(body)); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			resets.Add(1)
		}
	}()

	// The steady tenant: every single batch must land, promptly and in
	// order, while the neighbors churn.
	putTenant(t, hc, ts.URL, "steady")
	start := time.Now()
	for i := 0; i < steps; i++ {
		body := fmt.Sprintf(`[{"node":%d,"value":%d}]`, i%16, 1000+i)
		resp, err := hc.Post(ts.URL+"/v1/steady/update", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("steady ingest %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("steady ingest %d: status %d", i, resp.StatusCode)
		}
	}
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()

	resp, err := hc.Get(ts.URL + "/v1/steady/cost")
	if err != nil {
		t.Fatal(err)
	}
	var cost costResponse
	json.NewDecoder(resp.Body).Decode(&cost)
	resp.Body.Close()
	if cost.Steps != int64(steps) {
		t.Fatalf("steady tenant committed %d steps, want %d", cost.Steps, steps)
	}
	if cost.Check != "ok" {
		t.Fatalf("steady tenant check: %s", cost.Check)
	}
	if churns.Load() == 0 || resets.Load() == 0 {
		t.Fatalf("vacuous run: churns=%d resets=%d", churns.Load(), resets.Load())
	}
	// Liveness, generously bounded: 300 tiny batches finish in well under a
	// minute unless ingest waited on a neighbor's lifecycle.
	if elapsed > time.Minute {
		t.Fatalf("steady ingest of %d batches took %s — stalled behind tenant churn", steps, elapsed)
	}
}
