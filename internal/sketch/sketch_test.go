package sketch

import (
	"math"
	"reflect"
	"testing"
)

// testRNG is a tiny splitmix64 for seeded test traces (kept local so the
// package under test stays stdlib-only even in its tests).
type testRNG struct{ state uint64 }

func (r *testRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix(r.state)
}

// zipfTrace returns a seeded zipf-skewed item trace over [0, items):
// sampled by inverse rank via a precomputed cumulative weight table with
// w(rank) = 1/(rank+1)^s, ranks scattered over item ids by a seeded swap
// pass so item id and popularity are uncorrelated.
func zipfTrace(items, events int, s float64, seed uint64) []uint64 {
	cum := make([]float64, items)
	total := 0.0
	for r := 0; r < items; r++ {
		total += 1 / math.Pow(float64(r+1), s)
		cum[r] = total
	}
	rankToItem := make([]uint64, items)
	for i := range rankToItem {
		rankToItem[i] = uint64(i)
	}
	rng := &testRNG{state: seed}
	for i := items - 1; i > 0; i-- {
		j := int(rng.next() % uint64(i+1))
		rankToItem[i], rankToItem[j] = rankToItem[j], rankToItem[i]
	}
	out := make([]uint64, events)
	for e := range out {
		u := float64(rng.next()>>11) / float64(uint64(1)<<53) * total
		lo, hi := 0, items-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		out[e] = rankToItem[lo]
	}
	return out
}

func mkSummaries() []Summary {
	return []Summary{
		NewSpaceSaving(64),
		NewMisraGries(64),
		NewCountMin(256, 4, 64, 42),
	}
}

// exactCounts replays a trace into an exact frequency map.
func exactCounts(trace []uint64) map[uint64]int64 {
	truth := make(map[uint64]int64)
	for _, it := range trace {
		truth[it]++
	}
	return truth
}

// TestErrorBounds pins each sketch's documented guarantee on a seeded
// zipf trace, with vacuity guards: the trace must actually overflow the
// summaries (Space-Saving evictions, Misra-Gries decrements, Count-Min
// collisions) and at least one estimate must differ from the truth,
// otherwise the bounds are tested on nothing.
func TestErrorBounds(t *testing.T) {
	const items, events = 512, 20000
	trace := zipfTrace(items, events, 1.1, 7)
	truth := exactCounts(trace)
	for _, s := range mkSummaries() {
		t.Run(s.Name(), func(t *testing.T) {
			for _, it := range trace {
				s.Observe(it, 1)
			}
			if s.Total() != events {
				t.Fatalf("Total = %d, want %d", s.Total(), events)
			}
			inexact := 0
			for it := uint64(0); it < items; it++ {
				est, bound := s.Estimate(it)
				f := truth[it]
				if est != f {
					inexact++
				}
				if f < est-bound || f > est+bound {
					t.Fatalf("item %d: true %d outside [%d-%d, %d+%d]", it, f, est, bound, est, bound)
				}
				switch s.(type) {
				case *SpaceSaving, *CountMin:
					if est < f {
						t.Fatalf("%s under-estimates item %d: est %d < true %d", s.Name(), it, est, f)
					}
				case *MisraGries:
					if est > f {
						t.Fatalf("misra-gries over-estimates item %d: est %d > true %d", it, est, f)
					}
				}
			}
			// Vacuity guards: the summaries must be under real pressure and
			// the epsilon*N bound must be non-trivial and respected.
			if inexact == 0 {
				t.Fatal("vacuous: every estimate exact — trace does not stress the summary")
			}
			if s.ErrorBound() <= 0 {
				t.Fatal("vacuous: ErrorBound is 0 under overflow pressure")
			}
			switch sk := s.(type) {
			case *SpaceSaving:
				// eps*N with eps = 1/c.
				if max := s.Total() / 64; s.ErrorBound() > max {
					t.Fatalf("space-saving ErrorBound %d exceeds N/c = %d", s.ErrorBound(), max)
				}
			case *MisraGries:
				if max := s.Total() / (64 + 1); s.ErrorBound() > max {
					t.Fatalf("misra-gries ErrorBound %d exceeds N/(c+1) = %d", s.ErrorBound(), max)
				}
			case *CountMin:
				// The per-item bound must actually hold on this seed for
				// every item (deterministic given the seed).
				_ = sk
			}
		})
	}
}

// TestHeavyDeterministicOrder pins Heavy's (count desc, item asc) contract
// and that two identically-seeded summaries produce byte-identical Heavy
// snapshots after identical traces.
func TestHeavyDeterministicOrder(t *testing.T) {
	const items, events = 256, 8000
	trace := zipfTrace(items, events, 1.2, 11)
	mk := func() []Summary { return mkSummaries() }
	a, b := mk(), mk()
	for i := range a {
		for _, it := range trace {
			a[i].Observe(it, 1)
			b[i].Observe(it, 1)
		}
		ha := a[i].Heavy(16, nil)
		hb := b[i].Heavy(16, nil)
		if !reflect.DeepEqual(ha, hb) {
			t.Fatalf("%s: identical traces disagree:\n%v\n%v", a[i].Name(), ha, hb)
		}
		if len(ha) == 0 {
			t.Fatalf("%s: empty heavy list", a[i].Name())
		}
		for j := 1; j < len(ha); j++ {
			prev, cur := ha[j-1], ha[j]
			if cur.Count > prev.Count || (cur.Count == prev.Count && cur.Item <= prev.Item) {
				t.Fatalf("%s: heavy order violated at %d: %v then %v", a[i].Name(), j, prev, cur)
			}
		}
	}
}

// TestResetReplaysIdentically pins the repo's replay contract: Reset(seed)
// followed by the same trace must reproduce the original run's Heavy
// snapshot, Total, and ErrorBound exactly.
func TestResetReplaysIdentically(t *testing.T) {
	const items, events = 128, 6000
	trace := zipfTrace(items, events, 1.1, 3)
	for _, s := range mkSummaries() {
		t.Run(s.Name(), func(t *testing.T) {
			run := func() ([]Counter, int64, int64) {
				for _, it := range trace {
					s.Observe(it, 2)
				}
				return s.Heavy(32, nil), s.Total(), s.ErrorBound()
			}
			h1, t1, e1 := run()
			s.Reset(42)
			h2, t2, e2 := run()
			if !reflect.DeepEqual(h1, h2) || t1 != t2 || e1 != e2 {
				t.Fatalf("replay after Reset diverged:\n%v total=%d bound=%d\n%v total=%d bound=%d",
					h1, t1, e1, h2, t2, e2)
			}
		})
	}
}

// TestObserveAllocs enforces the construction-time allocation budget:
// steady-state Observe (and Estimate, and Heavy into a reused buffer)
// allocate nothing, the sketch analogue of TestLiveStepAllocs.
func TestObserveAllocs(t *testing.T) {
	const items, events = 512, 4000
	trace := zipfTrace(items, events, 1.1, 9)
	for _, s := range mkSummaries() {
		t.Run(s.Name(), func(t *testing.T) {
			for _, it := range trace {
				s.Observe(it, 1)
			}
			i := 0
			if avg := testing.AllocsPerRun(2000, func() {
				s.Observe(trace[i%len(trace)], 1)
				i++
			}); avg != 0 {
				t.Errorf("Observe allocates %.2f per op, want 0", avg)
			}
			if avg := testing.AllocsPerRun(2000, func() {
				s.Estimate(trace[i%len(trace)])
				i++
			}); avg != 0 {
				t.Errorf("Estimate allocates %.2f per op, want 0", avg)
			}
			buf := make([]Counter, 0, 64)
			if avg := testing.AllocsPerRun(500, func() {
				buf = s.Heavy(16, buf)
			}); avg != 0 {
				t.Errorf("Heavy into reused buffer allocates %.2f per op, want 0", avg)
			}
		})
	}
}

// TestWeightedAndDegenerateObserves covers deltas > 1, ignored deltas,
// single-counter capacities, and the all-equal-ties regime.
func TestWeightedAndDegenerateObserves(t *testing.T) {
	for _, s := range []Summary{NewSpaceSaving(1), NewMisraGries(1), NewCountMin(2, 1, 1, 5)} {
		s.Observe(10, 5)
		s.Observe(11, 0)  // ignored
		s.Observe(12, -3) // ignored
		if s.Total() != 5 {
			t.Fatalf("%s: Total = %d, want 5", s.Name(), s.Total())
		}
		s.Observe(13, 7)
		if h := s.Heavy(4, nil); len(h) == 0 {
			t.Fatalf("%s: no heavy items", s.Name())
		}
	}

	// All-equal ties: every item observed the same amount; Heavy must be
	// item-ascending within the tied count.
	ss := NewSpaceSaving(16)
	for it := uint64(0); it < 8; it++ {
		ss.Observe(it, 3)
	}
	h := ss.Heavy(8, nil)
	if len(h) != 8 {
		t.Fatalf("heavy len %d, want 8", len(h))
	}
	for j, c := range h {
		if c.Item != uint64(j) || c.Count != 3 || c.Err != 0 {
			t.Fatalf("tie order wrong at %d: %+v", j, c)
		}
	}
}

// TestSpaceSavingEvictionAccounting pins the classic eviction mechanics on
// a tiny hand-checkable trace.
func TestSpaceSavingEvictionAccounting(t *testing.T) {
	s := NewSpaceSaving(2)
	s.Observe(1, 5)
	s.Observe(2, 3)
	s.Observe(3, 1) // evicts item 2 (min=3): count 4, err 3
	est, bound := s.Estimate(3)
	if est != 4 || bound != 3 {
		t.Fatalf("estimate(3) = (%d,%d), want (4,3)", est, bound)
	}
	est, bound = s.Estimate(2) // untracked: bounded by min counter
	if est != 4 || bound != 4 {
		t.Fatalf("estimate(2) = (%d,%d), want (4,4)", est, bound)
	}
	if eb := s.ErrorBound(); eb != 4 {
		t.Fatalf("ErrorBound = %d, want 4 (min counter)", eb)
	}
}

// TestMisraGriesDecrementAccounting pins the decrement mechanics.
func TestMisraGriesDecrementAccounting(t *testing.T) {
	m := NewMisraGries(2)
	m.Observe(1, 5)
	m.Observe(2, 3)
	m.Observe(3, 2) // no room: decrement round d=2 (absorbs the arrival)
	if m.ErrorBound() != 2 {
		t.Fatalf("decrs = %d, want 2", m.ErrorBound())
	}
	if est, _ := m.Estimate(1); est != 3 {
		t.Fatalf("estimate(1) = %d, want 3", est)
	}
	if est, _ := m.Estimate(2); est != 1 {
		t.Fatalf("estimate(2) = %d, want 1", est)
	}
	if est, _ := m.Estimate(3); est != 0 {
		t.Fatalf("estimate(3) = %d, want 0 (absorbed)", est)
	}
	m.Observe(4, 4) // d = min(1, 4) = 1 frees item 2's slot, 4 enters with 3
	if est, _ := m.Estimate(4); est != 3 {
		t.Fatalf("estimate(4) = %d, want 3", est)
	}
	if m.ErrorBound() != 3 {
		t.Fatalf("decrs = %d, want 3", m.ErrorBound())
	}
}

// TestCountMinNeverUnderEstimates exercises heavy collision pressure (tiny
// width) — the over-estimate invariant must survive it.
func TestCountMinNeverUnderEstimates(t *testing.T) {
	const items, events = 300, 10000
	trace := zipfTrace(items, events, 1.0, 13)
	c := NewCountMin(8, 2, 8, 99)
	truth := exactCounts(trace)
	for _, it := range trace {
		c.Observe(it, 1)
	}
	under := false
	for it, f := range truth {
		est, _ := c.Estimate(it)
		if est < f {
			t.Fatalf("under-estimate: item %d est %d < true %d", it, est, f)
		}
		if est > f {
			under = true // over-estimates exist: collisions are real
		}
	}
	if !under {
		t.Fatal("vacuous: width-8 sketch produced no collisions")
	}
}

// TestOATableDeleteChains stresses the backward-shift deletion against a
// mirror map through adversarial same-bucket churn.
func TestOATableDeleteChains(t *testing.T) {
	const capacity = 32
	tab := newOATable(capacity)
	mirror := make(map[uint64]int32)
	rng := &testRNG{state: 77}
	keys := make([]uint64, 0, capacity)
	for op := 0; op < 20000; op++ {
		switch rng.next() % 3 {
		case 0, 1:
			if len(keys) < capacity {
				k := rng.next() % 64 // small key space: heavy collisions
				if _, ok := mirror[k]; !ok {
					v := int32(op % 1000)
					tab.put(k, v)
					mirror[k] = v
					keys = append(keys, k)
				}
			}
		case 2:
			if len(keys) > 0 {
				i := int(rng.next() % uint64(len(keys)))
				k := keys[i]
				tab.del(k)
				delete(mirror, k)
				keys[i] = keys[len(keys)-1]
				keys = keys[:len(keys)-1]
			}
		}
		for k, v := range mirror {
			if got := tab.get(k); got != v {
				t.Fatalf("op %d: get(%d) = %d, want %d", op, k, got, v)
			}
		}
		if got := tab.get(12345678); got != -1 {
			t.Fatalf("op %d: absent key resolved to %d", op, got)
		}
	}
}

// TestSizingHelpers pins the Count-Min sizing formulas from the snippets'
// from_error_rate construction.
func TestSizingHelpers(t *testing.T) {
	if w := CountMinWidth(0.01); w != 272 {
		t.Fatalf("CountMinWidth(0.01) = %d, want 272", w)
	}
	if d := CountMinDepth(0.01); d != 5 {
		t.Fatalf("CountMinDepth(0.01) = %d, want 5", d)
	}
}

// TestNames pins the report-name format other layers embed in tables.
func TestNames(t *testing.T) {
	for _, want := range []struct {
		s    Summary
		name string
	}{
		{NewSpaceSaving(64), "space-saving(c=64)"},
		{NewMisraGries(32), "misra-gries(c=32)"},
		{NewCountMin(256, 4, 64, 1), "count-min(w=256,d=4,track=64)"},
	} {
		if got := want.s.Name(); got != want.name {
			t.Fatalf("Name = %q, want %q", got, want.name)
		}
	}
}
