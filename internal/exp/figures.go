package exp

import (
	"topkmon/internal/metrics"
	"topkmon/internal/plot"
)

// FigureSpec declares how to render one ASCII figure from an experiment's
// tables: the x column and the y columns to chart, all referenced by index
// into the named experiment's table list.
type FigureSpec struct {
	ExpID string
	Table int
	Title string
	XCol  int
	YCols []int
}

// figureSpecs are the reproduction's "figures" — the growth curves behind
// each theorem, rendered from the same tables `internal/tools/bench` prints.
func figureSpecs() []FigureSpec {
	return []FigureSpec{
		{ExpID: "E2", Table: 0, Title: "Fig E2: FindMax messages vs n (expect ~log n)",
			XCol: 1, YCols: []int{2}},
		{ExpID: "E3", Table: 0, Title: "Fig E3: exact monitor msgs/epoch vs log2(Δ) (expect linear)",
			XCol: 0, YCols: []int{3}},
		{ExpID: "E4", Table: 0, Title: "Fig E4a: msgs/epoch vs log2(Δ) — exact grows, TOP-K flat",
			XCol: 0, YCols: []int{1, 2}},
		{ExpID: "E4", Table: 1, Title: "Fig E4b: TOP-K msgs/epoch vs 1/ε (expect ~log 1/ε)",
			XCol: 1, YCols: []int{4}},
		{ExpID: "E5", Table: 0, Title: "Fig E5: online/OPT ratio vs σ (expect ~linear: Ω(σ/k))",
			XCol: 0, YCols: []int{5}},
		{ExpID: "E6", Table: 0, Title: "Fig E6a: controller msgs vs dense nodes (superlinear)",
			XCol: 0, YCols: []int{2}},
		{ExpID: "E7", Table: 0, Title: "Fig E7: per-epoch cost vs σ — approx vs half-eps",
			XCol: 0, YCols: []int{2, 3}},
		{ExpID: "E8", Table: 0, Title: "Fig E8: msgs/step vs ε (bars; the noise crossover)",
			XCol: 1, YCols: []int{3}},
		{ExpID: "E9", Table: 0, Title: "Fig E9: msgs/epoch vs log2(Δ) — full flat, ablated grows",
			XCol: 0, YCols: []int{1, 2}},
		{ExpID: "E11", Table: 0, Title: "Fig E11: reporting cost vs n — EXISTENCE vs direct",
			XCol: 0, YCols: []int{1, 2}},
	}
}

// RenderFigures renders the registered figures for an experiment from its
// freshly produced tables. Unknown experiments yield nothing.
func RenderFigures(expID string, tables []*metrics.Table) []string {
	var out []string
	for _, spec := range figureSpecs() {
		if spec.ExpID != expID || spec.Table >= len(tables) {
			continue
		}
		tb := tables[spec.Table]
		xLabels := tb.Column(spec.XCol)
		if len(xLabels) == 0 {
			continue
		}
		var series []plot.Series
		for _, yc := range spec.YCols {
			vals, ok := tb.ColumnFloats(yc)
			if !ok || yc >= len(tb.Headers) {
				continue
			}
			series = append(series, plot.Series{Name: tb.Headers[yc], Values: vals})
		}
		if len(series) == 0 {
			continue
		}
		if fig := plot.Line(spec.Title, xLabels, series, 56, 12); fig != "" {
			out = append(out, fig)
		}
	}
	return out
}
