package topk_test

import (
	"testing"

	"topkmon/internal/eps"
	"topkmon/topk"
)

// mkSteady returns a warmed-up monitor plus the pre-generated step batches
// the steady-state alloc tests and benchmarks cycle through.
func mkSteady(tb testing.TB, engOpts ...topk.Option) (*topk.Monitor, [][]topk.Update) {
	tb.Helper()
	const n, k, pregen = 64, 8, 512
	trace := mkTrace(n, pregen, 13)
	batches := make([][]topk.Update, pregen)
	for t, vals := range trace {
		batches[t] = make([]topk.Update, n)
		for i, v := range vals {
			batches[t][i] = topk.Update{Node: i, Value: v}
		}
	}
	opts := append([]topk.Option{topk.WithNodes(n), topk.WithSeed(5)}, engOpts...)
	m, err := topk.New(k, topk.WrapEps(eps.MustNew(1, 8)), opts...)
	if err != nil {
		tb.Fatal(err)
	}
	return m, batches
}

// TestFacadeStepAllocs enforces the acceptance budget of the push API: in
// steady state, UpdateBatch (one full monitored time step), single-node
// Update (staging), TopK, Cost, and Check allocate nothing — on both
// engines. This is the benchmark-tracked property asserted as a test so CI
// fails on regressions without running benchmarks.
func TestFacadeStepAllocs(t *testing.T) {
	engines := []struct {
		name string
		opts []topk.Option
	}{
		{"lockstep", nil},
		{"live/m=3", []topk.Option{topk.WithEngine(topk.Live), topk.WithShards(3)}},
		// A zero fault plan arms the injector wrapper and the per-step
		// supervisor; the whole fault layer must stay on the zero-alloc
		// budget when nothing is injected.
		{"lockstep/faults=zero", []topk.Option{topk.WithFaults(&topk.FaultPlan{})}},
	}
	for _, eng := range engines {
		t.Run(eng.name, func(t *testing.T) {
			m, batches := mkSteady(t, eng.opts...)
			defer m.Close()
			i := 0
			step := func() {
				if err := m.UpdateBatch(batches[i%len(batches)]); err != nil {
					t.Fatal(err)
				}
				i++
			}
			for range 128 {
				step()
			}
			if avg := testing.AllocsPerRun(400, step); avg != 0 {
				t.Errorf("steady-state UpdateBatch allocates %.2f per step, want 0", avg)
			}

			if avg := testing.AllocsPerRun(400, func() {
				if err := m.Update(7, int64(100000+i%100)); err != nil {
					t.Fatal(err)
				}
				i++
			}); avg != 0 {
				t.Errorf("steady-state Update allocates %.2f per push, want 0", avg)
			}

			out := make([]int, 0, m.K())
			if avg := testing.AllocsPerRun(400, func() {
				out = m.TopK(out)
				if len(out) != m.K() {
					t.Fatal("short output")
				}
			}); avg != 0 {
				t.Errorf("TopK allocates %.2f per read, want 0", avg)
			}

			if avg := testing.AllocsPerRun(400, func() {
				if c := m.Cost(); c.Messages < 0 {
					t.Fatal("bogus cost")
				}
			}); avg != 0 {
				t.Errorf("Cost allocates %.2f per read, want 0", avg)
			}

			// Warm the oracle scratch once, then Check must be free too.
			if err := m.Check(); err != nil {
				t.Fatal(err)
			}
			if avg := testing.AllocsPerRun(400, func() {
				if err := m.Check(); err != nil {
					t.Fatal(err)
				}
			}); avg != 0 {
				t.Errorf("Check allocates %.2f per validation, want 0", avg)
			}
		})
	}
}

// BenchmarkFacadeUpdateBatch measures one pushed time step (n=64, k=8,
// drifting walk) through the public API; 0 allocs/op is the enforced
// budget (TestFacadeStepAllocs).
func BenchmarkFacadeUpdateBatch(b *testing.B) {
	engines := []struct {
		name string
		opts []topk.Option
	}{
		{"lockstep", nil},
		{"live", []topk.Option{topk.WithEngine(topk.Live)}},
	}
	for _, eng := range engines {
		b.Run(eng.name, func(b *testing.B) {
			m, batches := mkSteady(b, eng.opts...)
			defer m.Close()
			for i := 0; i < 64; i++ {
				if err := m.UpdateBatch(batches[i%len(batches)]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.UpdateBatch(batches[i%len(batches)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFacadeTopK measures the zero-alloc read path.
func BenchmarkFacadeTopK(b *testing.B) {
	m, batches := mkSteady(b)
	defer m.Close()
	for i := 0; i < 64; i++ {
		if err := m.UpdateBatch(batches[i%len(batches)]); err != nil {
			b.Fatal(err)
		}
	}
	out := make([]int, 0, m.K())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = m.TopK(out)
		if len(out) != m.K() {
			b.Fatal("short output")
		}
	}
}

// BenchmarkFacadeSingleUpdate measures fine-grained per-node pushes (each
// full rotation over the nodes commits one step).
func BenchmarkFacadeSingleUpdate(b *testing.B) {
	m, batches := mkSteady(b)
	defer m.Close()
	n := m.N()
	for i := 0; i < 64; i++ {
		if err := m.UpdateBatch(batches[i%len(batches)]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := batches[(i/n)%len(batches)][i%n]
		if err := m.Update(u.Node, u.Value); err != nil {
			b.Fatal(err)
		}
	}
}
