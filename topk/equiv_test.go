package topk_test

import (
	"fmt"
	"reflect"
	"testing"

	"topkmon/internal/cluster"
	"topkmon/internal/eps"
	"topkmon/internal/live"
	"topkmon/internal/lockstep"
	"topkmon/internal/metrics"
	"topkmon/internal/protocol"
	"topkmon/internal/stream"
	"topkmon/topk"
)

// directRun is the pre-facade outer loop: generator → engine → monitor,
// exactly as internal/sim drove runs before the push API existed. The
// facade must reproduce it byte for byte.
func directRun(eng cluster.Engine, trace [][]int64, k int, e eps.Eps) ([][]int, metrics.Snapshot, int64) {
	mon := protocol.NewApprox(eng, k, e)
	outs := make([][]int, 0, len(trace))
	for t, vals := range trace {
		eng.Advance(vals)
		if t == 0 {
			mon.Start()
		} else {
			mon.HandleStep()
		}
		eng.EndStep()
		outs = append(outs, append([]int(nil), mon.Output()...))
	}
	return outs, eng.Counters().Snapshot(), mon.Epochs()
}

// facadeRun pushes the same trace through the public API, one UpdateBatch
// per step, constructing engine and monitor through the public options.
func facadeRun(t *testing.T, trace [][]int64, k int, e eps.Eps, seed uint64,
	opts ...topk.Option) ([][]int, topk.Cost, int64, *topk.Monitor) {
	t.Helper()
	n := len(trace[0])
	opts = append([]topk.Option{topk.WithNodes(n), topk.WithSeed(seed)}, opts...)
	m, err := topk.New(k, topk.WrapEps(e), opts...)
	if err != nil {
		t.Fatalf("topk.New: %v", err)
	}
	outs := make([][]int, 0, len(trace))
	batch := make([]topk.Update, 0, n)
	for _, vals := range trace {
		batch = batch[:0]
		for i, v := range vals {
			batch = append(batch, topk.Update{Node: i, Value: v})
		}
		if err := m.UpdateBatch(batch); err != nil {
			t.Fatalf("UpdateBatch: %v", err)
		}
		outs = append(outs, m.TopK(nil))
	}
	return outs, m.Cost(), m.Epochs(), m
}

// mkTrace pre-generates a drifting-walk trace so every run sees identical
// data.
func mkTrace(n, steps int, seed uint64) [][]int64 {
	gen := stream.NewWalk(n, 100000, 400, 1<<24, seed)
	trace := make([][]int64, steps)
	for t := range trace {
		trace[t] = gen.Next(t)
	}
	return trace
}

// TestFacadeEquivalence is the acceptance proof of the push API: a
// facade-driven run (UpdateBatch per step, engine and monitor built through
// the public options) is byte-identical — per-step outputs, full counter
// snapshot including kinds, rounds, bits, and index fallbacks, and epoch
// count — to driving the engines directly, at n ∈ {16, 1024} on both
// engines.
func TestFacadeEquivalence(t *testing.T) {
	const k = 4
	const seed = 42
	e := eps.MustNew(1, 8)
	cases := []struct {
		n, steps int
	}{
		{16, 200},
		{1024, 40},
	}
	for _, tc := range cases {
		trace := mkTrace(tc.n, tc.steps, 7)

		t.Run(fmt.Sprintf("lockstep/n=%d", tc.n), func(t *testing.T) {
			wantOuts, wantSnap, wantEpochs := directRun(lockstep.New(tc.n, seed), trace, k, e)
			gotOuts, gotCost, gotEpochs, m := facadeRun(t, trace, k, e, seed)
			defer m.Close()
			assertEquivalent(t, wantOuts, wantSnap, wantEpochs, gotOuts, gotCost, gotEpochs)
		})

		t.Run(fmt.Sprintf("live/n=%d", tc.n), func(t *testing.T) {
			direct := live.New(tc.n, seed, live.WithShards(4))
			defer direct.Close()
			wantOuts, wantSnap, wantEpochs := directRun(direct, trace, k, e)
			gotOuts, gotCost, gotEpochs, m := facadeRun(t, trace, k, e, seed,
				topk.WithEngine(topk.Live), topk.WithShards(4))
			defer m.Close()
			assertEquivalent(t, wantOuts, wantSnap, wantEpochs, gotOuts, gotCost, gotEpochs)
		})
	}
}

func assertEquivalent(t *testing.T, wantOuts [][]int, want metrics.Snapshot, wantEpochs int64,
	gotOuts [][]int, got topk.Cost, gotEpochs int64) {
	t.Helper()
	if !reflect.DeepEqual(wantOuts, gotOuts) {
		for i := range wantOuts {
			if !reflect.DeepEqual(wantOuts[i], gotOuts[i]) {
				t.Fatalf("outputs diverge first at step %d: direct=%v facade=%v", i, wantOuts[i], gotOuts[i])
			}
		}
		t.Fatalf("outputs diverge: %v vs %v", wantOuts, gotOuts)
	}
	if want.Total() != got.Messages {
		t.Errorf("total messages: direct=%d facade=%d", want.Total(), got.Messages)
	}
	if want.ByChannel[metrics.NodeToServer] != got.NodeToServer ||
		want.ByChannel[metrics.ServerToNode] != got.Unicasts ||
		want.ByChannel[metrics.Broadcast] != got.Broadcasts {
		t.Errorf("channel split diverges: direct=%v facade=%+v", want.ByChannel, got)
	}
	if want.MaxRounds != got.MaxRoundsPerStep {
		t.Errorf("max rounds: direct=%d facade=%d", want.MaxRounds, got.MaxRoundsPerStep)
	}
	if want.MaxBits != got.MaxMessageBits {
		t.Errorf("max bits: direct=%d facade=%d", want.MaxBits, got.MaxMessageBits)
	}
	if want.IndexFallbacks != got.IndexFallbacks {
		t.Errorf("index fallbacks: direct=%d facade=%d", want.IndexFallbacks, got.IndexFallbacks)
	}
	if wantEpochs != gotEpochs {
		t.Errorf("epochs: direct=%d facade=%d", wantEpochs, gotEpochs)
	}
}

// TestUpdateRoundRobinMatchesBatch: fine-grained Update pushes that cycle
// through all nodes form the same steps — and therefore the same outputs
// and bills — as explicit UpdateBatch calls, once the trailing partial
// batch is Flushed.
func TestUpdateRoundRobinMatchesBatch(t *testing.T) {
	const n, k, steps = 16, 3, 120
	e := eps.MustNew(1, 8)
	trace := mkTrace(n, steps, 11)

	_, wantCost, _, mb := facadeRun(t, trace, k, e, 5)
	defer mb.Close()

	mu, err := topk.New(k, topk.WrapEps(e), topk.WithNodes(n), topk.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	defer mu.Close()
	for _, vals := range trace {
		for i, v := range vals {
			// Re-pushing node 0 auto-commits the previous step's batch.
			if err := mu.Update(i, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := mu.Flush(); err != nil { // commit the last staged batch
		t.Fatal(err)
	}
	gotCost := mu.Cost()
	if gotCost != wantCost {
		t.Errorf("round-robin Update cost %+v\nwant (UpdateBatch) %+v", gotCost, wantCost)
	}
	if want, got := mb.TopK(nil), mu.TopK(nil); !reflect.DeepEqual(want, got) {
		t.Errorf("outputs diverge: batch=%v update=%v", want, got)
	}
}

// TestFacadeResetReplaysFresh: after Reset(seed), replaying the same pushes
// yields the same outputs and bill as the first session — the facade-level
// form of the engines' Reset byte-equality property.
func TestFacadeResetReplaysFresh(t *testing.T) {
	const n, k, steps = 32, 4, 150
	e := eps.MustNew(1, 8)
	trace := mkTrace(n, steps, 23)

	run := func(m *topk.Monitor) ([]int, topk.Cost) {
		t.Helper()
		batch := make([]topk.Update, 0, n)
		for _, vals := range trace {
			batch = batch[:0]
			for i, v := range vals {
				batch = append(batch, topk.Update{Node: i, Value: v})
			}
			if err := m.UpdateBatch(batch); err != nil {
				t.Fatal(err)
			}
		}
		return m.TopK(nil), m.Cost()
	}

	m, err := topk.New(k, topk.WrapEps(e), topk.WithNodes(n), topk.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	out1, cost1 := run(m)

	// Stage a push that Reset must discard, then rewind and replay.
	if err := m.Update(3, 123); err != nil {
		t.Fatal(err)
	}
	if err := m.Reset(9); err != nil {
		t.Fatal(err)
	}
	if got := m.Steps(); got != 0 {
		t.Fatalf("Steps after Reset = %d, want 0", got)
	}
	out2, cost2 := run(m)

	if !reflect.DeepEqual(out1, out2) {
		t.Errorf("outputs diverge after Reset: %v vs %v", out1, out2)
	}
	if cost1 != cost2 {
		t.Errorf("cost diverges after Reset:\nfirst  %+v\nsecond %+v", cost1, cost2)
	}
}
