package topk_test

import (
	"fmt"
	"reflect"
	"testing"

	"topkmon/internal/eps"
	"topkmon/topk"
)

// chaosSchedules are the crash schedules the chaos matrix cycles through:
// a single mid-run crash, and two overlapping-window crashes.
func chaosSchedules() [][]topk.Crash {
	return [][]topk.Crash{
		{{Node: 1, From: 10, Until: 30}},
		{{Node: 0, From: 5, Until: 25}, {Node: 7, From: 40, Until: 60}},
	}
}

// chaosTrail is everything observable about a fault-armed facade run:
// per-step outputs, per-step health, and the final bill.
type chaosTrail struct {
	outs    [][]int
	healths []topk.Health
	cost    topk.Cost
}

// chaosRun drives m over trace one batch per step, recording output and
// health after every commit and enforcing the no-silent-wrong-answers
// guarantee: whenever Check fails, Health must not read Fresh.
func chaosRun(t *testing.T, m *topk.Monitor, trace [][]int64) chaosTrail {
	t.Helper()
	var trail chaosTrail
	batch := make([]topk.Update, 0, len(trace[0]))
	for step, vals := range trace {
		batch = batch[:0]
		for i, v := range vals {
			batch = append(batch, topk.Update{Node: i, Value: v})
		}
		if err := m.UpdateBatch(batch); err != nil {
			t.Fatalf("step %d: UpdateBatch: %v", step+1, err)
		}
		h := m.Health()
		if err := m.Check(); err != nil && h.State == topk.Fresh {
			t.Fatalf("step %d: SILENT WRONG ANSWER: Check failed (%v) but Health is fresh", step+1, err)
		}
		trail.outs = append(trail.outs, m.TopK(nil))
		trail.healths = append(trail.healths, h)
	}
	trail.cost = m.Cost()
	return trail
}

// TestChaosNoSilentWrongAnswers is the acceptance proof of the fault layer:
// across drop rates {0, 0.01, 0.1, 0.3}, two crash schedules, and both
// engines, every committed step either validates against the built-in
// referee or is explicitly flagged non-Fresh. The matrix also proves it is
// not vacuous — the injector demonstrably drops messages, and the heavy
// corner demonstrably forces resyncs.
func TestChaosNoSilentWrongAnswers(t *testing.T) {
	const n, k, steps, seed = 24, 4, 80, 9
	e := eps.MustNew(1, 8)
	trace := mkTrace(n, steps, 3)

	var sawDrop, sawResync, sawNonFresh bool
	for _, engine := range []topk.EngineKind{topk.Lockstep, topk.Live} {
		for _, rate := range []float64{0, 0.01, 0.1, 0.3} {
			for si, sched := range chaosSchedules() {
				name := fmt.Sprintf("%v/drop=%v/sched=%d", engine, rate, si)
				t.Run(name, func(t *testing.T) {
					plan := &topk.FaultPlan{
						Drop:    rate,
						Dup:     rate / 2,
						Delay:   rate / 2,
						Crashes: sched,
					}
					m, err := topk.New(k, topk.WrapEps(e),
						topk.WithNodes(n), topk.WithSeed(seed),
						topk.WithEngine(engine), topk.WithShards(3),
						topk.WithFaults(plan))
					if err != nil {
						t.Fatal(err)
					}
					defer m.Close()
					trail := chaosRun(t, m, trace)
					if trail.cost.DroppedMsgs > 0 {
						sawDrop = true
					}
					if trail.cost.Resyncs > 0 {
						sawResync = true
					}
					for _, h := range trail.healths {
						if h.State != topk.Fresh {
							sawNonFresh = true
						}
					}
				})
			}
		}
	}
	if !sawDrop {
		t.Error("chaos matrix never dropped a message — injector is silent")
	}
	if !sawResync {
		t.Error("chaos matrix never resynced — supervisor is silent")
	}
	if !sawNonFresh {
		t.Error("chaos matrix never left Fresh — degradation reporting is silent")
	}
}

// TestChaosReplayByteIdentical: two fault-armed monitors with equal seeds,
// plans and pushes replay chaos byte for byte — outputs, health trail, and
// the full bill including fault accounting.
func TestChaosReplayByteIdentical(t *testing.T) {
	const n, k, steps, seed = 24, 4, 80, 9
	e := eps.MustNew(1, 8)
	trace := mkTrace(n, steps, 3)
	plan := func() *topk.FaultPlan {
		return &topk.FaultPlan{Drop: 0.1, Dup: 0.05, Delay: 0.05, Crashes: chaosSchedules()[1]}
	}

	mk := func() *topk.Monitor {
		m, err := topk.New(k, topk.WrapEps(e), topk.WithNodes(n),
			topk.WithSeed(seed), topk.WithFaults(plan()))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := mk(), mk()
	defer a.Close()
	defer b.Close()
	ta, tb := chaosRun(t, a, trace), chaosRun(t, b, trace)
	if !reflect.DeepEqual(ta, tb) {
		t.Fatalf("identical chaotic runs diverge:\na: %+v\nb: %+v", ta.cost, tb.cost)
	}
}

// TestChaosEngineConformance: the same chaotic run on lockstep and on the
// sharded live engine yields identical outputs, health, and bills — the
// fault layer preserves the engines' observable equivalence.
func TestChaosEngineConformance(t *testing.T) {
	const n, k, steps, seed = 24, 4, 80, 9
	e := eps.MustNew(1, 8)
	trace := mkTrace(n, steps, 3)
	plan := func() *topk.FaultPlan {
		return &topk.FaultPlan{Drop: 0.1, Dup: 0.05, Delay: 0.05, Crashes: chaosSchedules()[0]}
	}

	ls, err := topk.New(k, topk.WrapEps(e), topk.WithNodes(n),
		topk.WithSeed(seed), topk.WithFaults(plan()))
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	lv, err := topk.New(k, topk.WrapEps(e), topk.WithNodes(n),
		topk.WithSeed(seed), topk.WithEngine(topk.Live), topk.WithShards(3),
		topk.WithFaults(plan()))
	if err != nil {
		t.Fatal(err)
	}
	defer lv.Close()

	tl, tv := chaosRun(t, ls, trace), chaosRun(t, lv, trace)
	if !reflect.DeepEqual(tl, tv) {
		t.Fatalf("chaotic runs diverge across engines:\nlockstep: %+v\nlive:     %+v", tl.cost, tv.cost)
	}
}

// TestChaosResetReplays: Reset(seed) on a fault-armed monitor rewinds the
// injector's RNG stream and the supervisor's state machine along with the
// engine, so the replay is byte-identical to the fresh run — and a
// different seed yields a different fault pattern.
func TestChaosResetReplays(t *testing.T) {
	const n, k, steps, seed = 24, 4, 80, 9
	e := eps.MustNew(1, 8)
	trace := mkTrace(n, steps, 3)
	plan := &topk.FaultPlan{Drop: 0.1, Dup: 0.05, Delay: 0.05, Crashes: chaosSchedules()[1]}

	m, err := topk.New(k, topk.WrapEps(e), topk.WithNodes(n),
		topk.WithSeed(seed), topk.WithFaults(plan))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	fresh := chaosRun(t, m, trace)
	if err := m.Reset(seed); err != nil {
		t.Fatal(err)
	}
	if h := m.Health(); h.State != topk.Fresh || h.StaleFor != 0 || h.Err != nil {
		t.Fatalf("Health after Reset = %+v, want zero", h)
	}
	replay := chaosRun(t, m, trace)
	if !reflect.DeepEqual(fresh, replay) {
		t.Fatalf("reset chaotic run diverges from fresh:\nfresh:  %+v\nreplay: %+v", fresh.cost, replay.cost)
	}

	if err := m.Reset(seed + 1); err != nil {
		t.Fatal(err)
	}
	other := chaosRun(t, m, trace)
	if reflect.DeepEqual(fresh.cost, other.cost) {
		t.Fatal("different seeds produced identical chaotic bills")
	}
}

// TestZeroPlanFacadeTransparent: arming the fault layer with a zero plan
// changes nothing — outputs and the full bill are byte-identical to an
// unfaulted monitor, with every fault counter at zero and health pinned
// Fresh.
func TestZeroPlanFacadeTransparent(t *testing.T) {
	const n, k, steps, seed = 32, 4, 150, 42
	e := eps.MustNew(1, 8)
	trace := mkTrace(n, steps, 7)

	wantOuts, wantCost, wantEpochs, mw := facadeRun(t, trace, k, e, seed)
	defer mw.Close()
	gotOuts, gotCost, gotEpochs, mg := facadeRun(t, trace, k, e, seed,
		topk.WithFaults(&topk.FaultPlan{}))
	defer mg.Close()

	if !reflect.DeepEqual(wantOuts, gotOuts) {
		t.Error("outputs diverge under a zero fault plan")
	}
	if wantCost != gotCost {
		t.Errorf("bills diverge under a zero fault plan:\nbare:  %+v\narmed: %+v", wantCost, gotCost)
	}
	if wantEpochs != gotEpochs {
		t.Errorf("epochs diverge: bare=%d armed=%d", wantEpochs, gotEpochs)
	}
	if gotCost.DroppedMsgs|gotCost.DupMsgs|gotCost.Retries|gotCost.Resyncs|gotCost.StaleSteps != 0 {
		t.Errorf("zero plan billed faults: %+v", gotCost)
	}
	if h := mg.Health(); h.State != topk.Fresh || h.StaleFor != 0 || h.Err != nil {
		t.Errorf("zero-plan health = %+v, want Fresh", h)
	}
}

// TestDegradationEvents: a monitor that degrades delivers events carrying
// the non-Fresh health to subscribers, even when the top-k set itself is
// unchanged.
func TestDegradationEvents(t *testing.T) {
	const n, k, steps, seed = 24, 4, 80, 9
	e := eps.MustNew(1, 8)
	trace := mkTrace(n, steps, 3)

	m, err := topk.New(k, topk.WrapEps(e), topk.WithNodes(n),
		topk.WithSeed(seed),
		topk.WithFaults(&topk.FaultPlan{Drop: 0.3, Dup: 0.1, Crashes: chaosSchedules()[0]}))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ev := m.Subscribe()

	trail := chaosRun(t, m, trace)
	var wantNonFresh bool
	for _, h := range trail.healths {
		if h.State != topk.Fresh {
			wantNonFresh = true
		}
	}
	if !wantNonFresh {
		t.Skip("run stayed fresh; degradation event check is moot at this seed")
	}

	var gotNonFresh bool
	for {
		select {
		case e := <-ev:
			if e.Health.State != topk.Fresh {
				gotNonFresh = true
			}
		default:
			if !gotNonFresh {
				t.Fatal("monitor degraded but no event carried a non-Fresh health")
			}
			return
		}
	}
}
