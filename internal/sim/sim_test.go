package sim

import (
	"fmt"
	"testing"

	"topkmon/internal/cluster"
	"topkmon/internal/eps"
	"topkmon/internal/protocol"
	"topkmon/internal/stream"
)

// monitors under test, constructed per run.
func monitorFactories(k int, e eps.Eps) map[string]func(cluster.Cluster) protocol.Monitor {
	return map[string]func(cluster.Cluster) protocol.Monitor{
		"exact-mid": func(c cluster.Cluster) protocol.Monitor { return protocol.NewExactMid(c, k) },
		"topk":      func(c cluster.Cluster) protocol.Monitor { return protocol.NewTopKProto(c, k, e) },
		"approx":    func(c cluster.Cluster) protocol.Monitor { return protocol.NewApprox(c, k, e) },
		"half-eps":  func(c cluster.Cluster) protocol.Monitor { return protocol.NewHalfEps(c, k, e) },
		"naive":     func(c cluster.Cluster) protocol.Monitor { return protocol.NewNaive(c, k) },
		"mid-naive": func(c cluster.Cluster) protocol.Monitor { return protocol.NewMidNaive(c, k) },
	}
}

func generators(n int, seed uint64) map[string]stream.Generator {
	return map[string]stream.Generator{
		"walk":       stream.NewWalk(n, 1000, 20, 1<<20, seed),
		"jumps":      stream.NewJumps(n, 100, 10000, seed),
		"oscillator": stream.NewOscillator(2, n-6, 4, 1000, 30, 5000, 100, seed),
		"loads":      stream.NewLoads(n, 500, 25, 0.02, 2000, 1<<20, seed),
	}
}

// TestAllMonitorsProduceValidEpsOutputs is the central correctness gate:
// every monitor must emit a valid ε-Top-k output at every step on every
// workload.
func TestAllMonitorsProduceValidEpsOutputs(t *testing.T) {
	const n, k, steps = 16, 3, 400
	e := eps.MustNew(1, 10)
	for genName := range generators(n, 1) {
		for monName, factory := range monitorFactories(k, e) {
			t.Run(fmt.Sprintf("%s/%s", monName, genName), func(t *testing.T) {
				gen := generators(n, 7)[genName]
				_, err := Run(Config{
					K: k, Eps: e, Steps: steps, Seed: 42,
					Gen: gen, NewMonitor: factory,
					Validate: ValidateEps,
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestExactMonitorsAreExact checks the exact monitors against the exact
// top-k on distinct-valued streams.
func TestExactMonitorsAreExact(t *testing.T) {
	const n, k, steps = 12, 3, 300
	for _, monName := range []string{"exact-mid", "naive", "mid-naive"} {
		t.Run(monName, func(t *testing.T) {
			factory := monitorFactories(k, eps.Zero)[monName]
			gen := stream.Distinct{Inner: stream.NewWalk(n, 1000, 15, 1<<20, 3)}
			_, err := Run(Config{
				K: k, Eps: eps.Zero, Steps: steps, Seed: 5,
				Gen: gen, NewMonitor: factory,
				Validate: ValidateExact,
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestQuietStreamsAreFree: when values never violate any reasonable filter
// (constant streams), a filter-based monitor pays only its startup cost.
func TestQuietStreamsAreFree(t *testing.T) {
	const n, k, steps = 10, 2, 200
	e := eps.MustNew(1, 4)
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(1000 + 100*i)
	}
	matrix := make([][]int64, steps)
	for t := range matrix {
		matrix[t] = vals
	}
	gen := stream.NewReplay("constant", matrix)
	for _, monName := range []string{"exact-mid", "topk", "approx"} {
		t.Run(monName, func(t *testing.T) {
			rep, err := Run(Config{
				K: k, Eps: e, Steps: steps, Seed: 9,
				Gen: gen, NewMonitor: monitorFactories(k, e)[monName],
				Validate: ValidateEps,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Epochs != 1 {
				t.Errorf("constant stream should need exactly 1 epoch, got %d", rep.Epochs)
			}
			// All communication happens at startup; generous cap.
			if got := rep.Messages.Total(); got > int64(20*(k+1)*n) {
				t.Errorf("constant stream cost %d messages, expected startup-only", got)
			}
		})
	}
}

// TestOPTComputed ensures the offline solver integrates with the run report.
func TestOPTComputed(t *testing.T) {
	const n, k, steps = 8, 2, 150
	e := eps.MustNew(1, 8)
	rep, err := Run(Config{
		K: k, Eps: e, Steps: steps, Seed: 11,
		Gen:        stream.NewWalk(n, 500, 30, 1<<15, 13),
		NewMonitor: monitorFactories(k, e)["approx"],
		Validate:   ValidateEps,
		ComputeOPT: true, OPTEps: e,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OPTBreaks < 0 || rep.RatioLB <= 0 {
		t.Errorf("OPT stats missing: breaks=%d ratio=%f", rep.OPTBreaks, rep.RatioLB)
	}
	if rep.OPTRealistic < int64(rep.OPTBreaks) {
		t.Errorf("realistic OPT cost %d below breaks %d", rep.OPTRealistic, rep.OPTBreaks)
	}
}
