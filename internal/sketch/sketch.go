// Package sketch provides allocation-free-after-construction streaming
// summaries of item-frequency streams: Space-Saving, Misra-Gries, and
// Count-Min, behind one Summary interface. They are the per-node state of
// the heavy-hitter item-monitoring layer (topk/items): each distributed
// node summarises its local item stream in O(capacity) memory, and the
// per-item estimates feed the paper's top-k-position monitor as scalar
// node values (the distributed top-k/k-select setting of arXiv:1709.07259
// over the node-value model of arXiv:1410.7912).
//
// Contracts shared by every Summary, pinned by the unit and fuzz suites:
//
//   - Observe never allocates after construction and never panics on any
//     (item, delta) input; delta <= 0 is ignored (counts are monotone).
//   - Estimate returns (est, bound) with |true - est| <= bound, plus the
//     tighter one-sided guarantee documented per sketch: Space-Saving and
//     Count-Min never under-estimate (est >= true), Misra-Gries never
//     over-estimates (est <= true).
//   - Heavy fills dst[:0] with up to k counters in deterministic order
//     (count descending, item ascending) — byte-identical across runs,
//     worker counts, and -race.
//   - Reset(seed) rewinds to the state a fresh construction with that seed
//     would produce (the repo-wide replay contract; the deterministic
//     sketches ignore the seed's value but honor the rewind).
//   - ErrorBound reports the current worst-case estimation error in stream
//     units, so callers can pin the epsilon*N guarantees numerically.
//
// The package is self-contained by design: it imports nothing from the
// module (stdlib only), pinned by the api-boundary checks — sketches are
// pure data structures the engine layers consume, never the reverse.
package sketch

import "sort"

// Counter is one tracked (item, estimate) pair. Err is the per-item
// estimation bound at the time of the snapshot (0 when the count is exact).
type Counter struct {
	Item  uint64
	Count int64
	Err   int64
}

// Summary is the common interface of the streaming summaries.
type Summary interface {
	// Observe adds delta occurrences of item. delta <= 0 is ignored.
	Observe(item uint64, delta int64)
	// Estimate returns the item's estimated total count and the current
	// bound on its error: the true count lies in [est-bound, est+bound].
	Estimate(item uint64) (est, bound int64)
	// Heavy appends the up-to-k heaviest tracked counters to dst[:0] in
	// deterministic order (count descending, item ascending) and returns it.
	Heavy(k int, dst []Counter) []Counter
	// Total returns N, the sum of all observed deltas.
	Total() int64
	// ErrorBound returns the current worst-case estimation error across
	// all items (the epsilon*N of the sketch's analysis, exact where the
	// structure tracks it exactly).
	ErrorBound() int64
	// Reset rewinds to the freshly-constructed state for seed.
	Reset(seed uint64)
	// Name identifies the sketch and its sizing in reports.
	Name() string
}

// mix is the splitmix64 finalizer — the module's standard bit mixer,
// re-derived here so the package stays stdlib-only.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hashSeed derives the i-th hash-function seed from a root seed.
func hashSeed(seed uint64, i int) uint64 {
	return mix(seed + 0x9e3779b97f4a7c15*uint64(i+1))
}

// --- fixed-capacity open-addressing index (item -> slot) ---
//
// Linear probing over a power-of-two table with backward-shift deletion:
// no tombstones, no growth, no allocation after construction. Both the
// counter-based sketches use it to find an item's slot in O(1) expected.

type oaTable struct {
	mask uint64
	keys []uint64
	vals []int32 // slot index; -1 = empty
}

// newOATable returns a table holding up to cap entries at load factor <= ~0.5.
func newOATable(capacity int) oaTable {
	size := 4
	for size < 2*capacity {
		size <<= 1
	}
	t := oaTable{mask: uint64(size - 1), keys: make([]uint64, size), vals: make([]int32, size)}
	for i := range t.vals {
		t.vals[i] = -1
	}
	return t
}

func (t *oaTable) home(key uint64) uint64 { return mix(key) & t.mask }

// get returns the slot stored for key, or -1.
func (t *oaTable) get(key uint64) int32 {
	for i := t.home(key); ; i = (i + 1) & t.mask {
		if t.vals[i] == -1 {
			return -1
		}
		if t.keys[i] == key {
			return t.vals[i]
		}
	}
}

// put inserts or overwrites key -> slot. The caller guarantees the table
// never exceeds its construction capacity.
func (t *oaTable) put(key uint64, slot int32) {
	for i := t.home(key); ; i = (i + 1) & t.mask {
		if t.vals[i] == -1 || t.keys[i] == key {
			t.keys[i] = key
			t.vals[i] = slot
			return
		}
	}
}

// del removes key, back-shifting the probe chain so lookups stay correct
// without tombstones.
func (t *oaTable) del(key uint64) {
	i := t.home(key)
	for {
		if t.vals[i] == -1 {
			return
		}
		if t.keys[i] == key {
			break
		}
		i = (i + 1) & t.mask
	}
	j := i
	for {
		t.vals[j] = -1
		k := j
		for {
			k = (k + 1) & t.mask
			if t.vals[k] == -1 {
				return
			}
			h := t.home(t.keys[k])
			// Entry at k may move into the hole at j only if its home
			// position is cyclically outside (j, k].
			if (k-h)&t.mask >= (k-j)&t.mask {
				t.keys[j] = t.keys[k]
				t.vals[j] = t.vals[k]
				break
			}
		}
		j = k
	}
}

// clear empties the table in place.
func (t *oaTable) clear() {
	for i := range t.vals {
		t.vals[i] = -1
	}
}

// --- shared deterministic Heavy ordering ---

// heavyOrder sorts slot indices by (count descending, item ascending) —
// the package-wide deterministic iteration order. It implements
// sort.Interface over caller-owned parallel slices so sorting allocates
// nothing (the *heavyOrder to sort.Interface conversion is a pointer, not
// a box).
type heavyOrder struct {
	order []int32
	cnt   []int64
	item  []uint64
}

func (h *heavyOrder) Len() int { return len(h.order) }
func (h *heavyOrder) Less(a, b int) bool {
	x, y := h.order[a], h.order[b]
	if h.cnt[x] != h.cnt[y] {
		return h.cnt[x] > h.cnt[y]
	}
	return h.item[x] < h.item[y]
}
func (h *heavyOrder) Swap(a, b int) { h.order[a], h.order[b] = h.order[b], h.order[a] }

// appendHeavy fills dst[:0] with the top-k of the used slots under
// heavyOrder, reading the per-slot error from errAt (nil = all zero).
func appendHeavy(h *heavyOrder, used int, k int, dst []Counter, errAt []int64) []Counter {
	h.order = h.order[:0]
	for s := 0; s < used; s++ {
		h.order = append(h.order, int32(s))
	}
	sort.Sort(h)
	dst = dst[:0]
	if k > used {
		k = used
	}
	for _, s := range h.order[:k] {
		c := Counter{Item: h.item[s], Count: h.cnt[s]}
		if errAt != nil {
			c.Err = errAt[s]
		}
		dst = append(dst, c)
	}
	return dst
}
