// Sensornet: the approximation pay-off. A field of sensors reports a noisy
// measurement; many readings oscillate right around the k-th largest value,
// which is exactly the regime the paper's ε-relaxation targets — marginal,
// noise-driven rank changes need not be communicated.
//
// The demo sweeps ε and shows communication collapsing once the
// ε-neighborhood swallows the noise amplitude, while every output remains a
// certified ε-Top-k set.
package main

import (
	"fmt"
	"log"

	"topkmon/internal/cluster"
	"topkmon/internal/eps"
	"topkmon/internal/lockstep"
	"topkmon/internal/oracle"
	"topkmon/internal/protocol"
	"topkmon/internal/stream"
)

const (
	kTop  = 4
	steps = 1200
	base  = int64(20000) // the k-th sensor's level
	noise = int64(600)   // ±3% measurement noise
)

func mkField(seed uint64) stream.Generator {
	// 3 sensors clearly hot, 20 oscillating around base, 9 clearly cold.
	return stream.NewOscillator(kTop-1, 20, 9, base, noise, base*50, base/50, seed)
}

func run(e eps.Eps, exact bool) (int64, string) {
	gen := mkField(77)
	engine := lockstep.New(gen.N(), 3)
	var monitor protocol.Monitor
	if exact {
		gen = stream.Distinct{Inner: gen} // the exact problem needs distinct values
		engine = lockstep.New(gen.N(), 3)
		monitor = protocol.NewExactMid(engine, kTop)
	} else {
		monitor = protocol.NewApprox(cluster.Cluster(engine), kTop, e)
	}
	for t := 0; t < steps; t++ {
		values := gen.Next(t)
		engine.Advance(values)
		if t == 0 {
			monitor.Start()
		} else {
			monitor.HandleStep()
		}
		truth := oracle.Compute(values, kTop, e)
		var err error
		if exact {
			err = truth.ValidateExact(monitor.Output())
		} else {
			err = truth.ValidateEps(monitor.Output())
		}
		if err != nil {
			log.Fatalf("step %d: %v", t, err)
		}
		engine.EndStep()
	}
	return engine.Counters().Total(), monitor.Name()
}

func main() {
	fmt.Printf("32 sensors, top-%d monitored for %d steps, noise ≈ ±%.1f%% of v_k\n\n",
		kTop, steps, 100*float64(noise)/float64(base))
	exactCost, name := run(eps.Zero, true)
	fmt.Printf("%-18s ε=0      messages=%7d (%.2f/step)\n",
		name, exactCost, float64(exactCost)/steps)
	for _, e := range []eps.Eps{
		eps.MustNew(1, 100), eps.MustNew(1, 32), eps.MustNew(1, 16),
		eps.MustNew(1, 8), eps.MustNew(1, 4),
	} {
		cost, name := run(e, false)
		fmt.Printf("%-18s ε=%-6s messages=%7d (%.2f/step)  %5.1fx cheaper than exact\n",
			name, e, cost, float64(cost)/steps, float64(exactCost)/float64(cost))
	}
	fmt.Println("\nonce the ε-neighborhood covers the noise band, the monitor goes quiet.")
}
