// Package oracle computes the ground truth of one time step — order
// statistics, the clearly-larger set E(t), the ε-neighborhood K(t), σ(t) —
// and validates monitor outputs against the two defining properties of
// ε-Top-k-Position Monitoring (Section 2):
//
//  1. F_E(t) = {i : v_i ∈ E(t)} ⊆ F(t), and
//  2. F(t) \ F_E(t) ⊆ K(t), with |F(t)| = k.
//
// The oracle sees all values directly; it is simulation scaffolding and
// never takes part in the protocols' communication.
//
// The oracle runs once per simulated time step, so its own cost dominates
// validation-heavy runs. The steady-state entry point is ComputeInto with a
// reused Scratch, which performs no allocations; Compute remains as a
// convenience wrapper that allocates a fresh Scratch per call.
package oracle

import (
	"fmt"
	"slices"

	"topkmon/internal/eps"
)

// Compare orders two node ids by the paper's canonical stream order:
// decreasing value, ties broken by increasing identifier. It returns a
// negative number when a precedes b, following the cmp convention of
// slices.SortFunc. Every ordering of nodes in the reproduction — the
// oracle's π(·,t), the naive baseline's recomputation, the offline
// adversary's envelope orders — derives from this single comparator.
func Compare(values []int64, a, b int) int {
	if values[a] != values[b] {
		if values[a] > values[b] {
			return -1
		}
		return 1
	}
	return a - b
}

// Less reports whether id a precedes id b in the canonical order
// (value descending, id ascending — the paper's identifier tie-break).
func Less(values []int64, a, b int) bool { return Compare(values, a, b) < 0 }

// SortIDs sorts ids in place into the canonical order over values.
func SortIDs(ids []int, values []int64) {
	slices.SortFunc(ids, func(a, b int) int { return Compare(values, a, b) })
}

// Packed-key sorting: (value, id) packed into one uint64 so the full index
// sort runs comparator-free — about 4× faster than a closure-based sort on
// this workload. MaxValue needs 41 bits (the bound is inclusive), leaving
// 23 bits for the id.
const (
	packIDBits = 23
	packIDMask = 1<<packIDBits - 1
)

// packable reports whether values admit the packed-key sort.
func packable(values []int64) bool {
	if len(values) > packIDMask {
		return false
	}
	for _, v := range values {
		if v < 0 || v > eps.MaxValue {
			return false
		}
	}
	return true
}

// sortIndexPacked fills order with [0, n) sorted canonically over values,
// using keys as working memory. Ascending keys of (MaxValue-value, id)
// realise (value desc, id asc).
func sortIndexPacked(order []int, keys []uint64, values []int64) {
	for i, v := range values {
		keys[i] = uint64(eps.MaxValue-v)<<packIDBits | uint64(i)
	}
	slices.Sort(keys)
	for i, k := range keys {
		order[i] = int(k & packIDMask)
	}
}

// Truth is the ground truth of a single time step.
type Truth struct {
	K      int
	Eps    eps.Eps
	Values []int64
	// Order lists node ids by decreasing (value, id); Order[0] is π(1,t).
	Order []int
	// VK is the k-th largest value v_{π(k,t)}.
	VK int64
	// Clearly is the set E(t)'s node ids: v > VK/(1-ε).
	Clearly []int
	// Neighborhood is K(t): (1-ε)·VK ≤ v ≤ VK/(1-ε).
	Neighborhood []int
	// Sigma is |K(t)|.
	Sigma int

	// scratch, when non-nil, backs the slices above and provides the
	// validation mark buffer; set by ComputeInto.
	scratch *Scratch
}

// Scratch holds the oracle's reusable working memory. One Scratch reused
// across all steps of a run keeps ComputeInto and the Validate methods at
// zero allocations in steady state. A Truth computed into a Scratch is valid
// only until the next ComputeInto with the same Scratch; callers that retain
// a Truth across steps must use Compute instead.
type Scratch struct {
	order   []int
	keys    []uint64
	clearly []int
	neigh   []int
	marks   []bool
}

// ComputeInto derives the truth for one step using s's buffers. It panics if
// k is out of range — a harness bug, not a data condition.
func ComputeInto(s *Scratch, values []int64, k int, e eps.Eps) Truth {
	n := len(values)
	if k < 1 || k > n {
		panic(fmt.Sprintf("oracle: k=%d out of range for n=%d", k, n))
	}
	if cap(s.order) < n {
		s.order = make([]int, n)
	}
	s.order = s.order[:n]
	if packable(values) {
		if cap(s.keys) < n {
			s.keys = make([]uint64, n)
		}
		s.keys = s.keys[:n]
		sortIndexPacked(s.order, s.keys, values)
	} else {
		for i := range s.order {
			s.order[i] = i
		}
		SortIDs(s.order, values)
	}

	t := Truth{K: k, Eps: e, Values: values, Order: s.order, scratch: s}
	t.VK = values[s.order[k-1]]

	clearly, neigh := s.clearly[:0], s.neigh[:0]
	for i, v := range values {
		if e.ClearlyAbove(v, t.VK) {
			clearly = append(clearly, i)
		} else if !e.ClearlyBelow(v, t.VK) {
			neigh = append(neigh, i)
		}
	}
	s.clearly, s.neigh = clearly, neigh
	t.Clearly, t.Neighborhood = clearly, neigh
	t.Sigma = len(neigh)
	return t
}

// Compute derives the truth for one step into fresh buffers; the result
// stays valid indefinitely. Hot loops should hold a Scratch and call
// ComputeInto instead.
func Compute(values []int64, k int, e eps.Eps) Truth {
	return ComputeInto(new(Scratch), values, k, e)
}

// marks returns a cleared []bool of len(t.Values), reusing the scratch
// buffer when the Truth is scratch-backed.
func (t Truth) marks() []bool {
	n := len(t.Values)
	if t.scratch == nil {
		return make([]bool, n)
	}
	s := t.scratch
	if cap(s.marks) < n {
		s.marks = make([]bool, n)
	}
	s.marks = s.marks[:n]
	for i := range s.marks {
		s.marks[i] = false
	}
	return s.marks
}

// TopK returns the exact top-k node ids (identifier tie-break), sorted by id.
func (t Truth) TopK() []int {
	out := append([]int(nil), t.Order[:t.K]...)
	slices.Sort(out)
	return out
}

// ValidateEps checks output out against the ε-Top-k properties.
func (t Truth) ValidateEps(out []int) error {
	if len(out) != t.K {
		return fmt.Errorf("output has %d nodes, want k=%d", len(out), t.K)
	}
	in := t.marks()
	for _, id := range out {
		if id < 0 || id >= len(t.Values) {
			return fmt.Errorf("output contains invalid node id %d", id)
		}
		if in[id] {
			return fmt.Errorf("output contains duplicate node id %d", id)
		}
		in[id] = true
	}
	for _, id := range t.Clearly {
		if !in[id] {
			return fmt.Errorf("node %d (value %d) is clearly above v_k=%d but missing from output",
				id, t.Values[id], t.VK)
		}
	}
	for _, id := range out {
		if t.Eps.ClearlyBelow(t.Values[id], t.VK) {
			return fmt.Errorf("node %d (value %d) is clearly below v_k=%d but in output",
				id, t.Values[id], t.VK)
		}
	}
	return nil
}

// ValidateExact checks output out against the exact top-k (tie-broken by id).
func (t Truth) ValidateExact(out []int) error {
	if len(out) != t.K {
		return fmt.Errorf("output has %d nodes, want k=%d", len(out), t.K)
	}
	want := t.marks()
	for _, id := range t.Order[:t.K] {
		want[id] = true
	}
	for _, id := range out {
		if id < 0 || id >= len(t.Values) {
			return fmt.Errorf("node %d in output but not a valid node id", id)
		}
		if !want[id] {
			return fmt.Errorf("node %d (value %d) in output but not in exact top-%d (v_k=%d)",
				id, t.Values[id], t.K, t.VK)
		}
	}
	return nil
}

// Unique reports whether the ε-output is forced, i.e. the exact and the
// approximate problem coincide at this step: |K(t)| = 1, equivalently
// v_{k+1} < (1-ε)·v_k.
func (t Truth) Unique() bool {
	if t.K >= len(t.Values) {
		return true
	}
	vk1 := t.Values[t.Order[t.K]]
	return t.Eps.ClearlyBelow(vk1, t.VK)
}
