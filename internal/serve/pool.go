package serve

import (
	"errors"
	"fmt"
	"regexp"
	"sort"
	"sync"

	"topkmon/internal/wal"
	"topkmon/topk"
)

// Errors returned by the pool; the handlers map them to HTTP statuses.
var (
	ErrUnknownTenant = errors.New("serve: unknown tenant")
	ErrTenantExists  = errors.New("serve: tenant already exists")
	ErrTooManyTenant = errors.New("serve: tenant limit reached")
	ErrBadName       = errors.New("serve: invalid tenant name")
)

// CrashConfig schedules one node crash window, mirroring topk.Crash.
type CrashConfig struct {
	Node  int   `json:"node"`
	From  int64 `json:"from"`
	Until int64 `json:"until"`
}

// FaultConfig arms a tenant's deterministic fault layer, mirroring
// topk.FaultPlan field for field.
type FaultConfig struct {
	Drop    float64       `json:"drop,omitempty"`
	Dup     float64       `json:"dup,omitempty"`
	Delay   float64       `json:"delay,omitempty"`
	Retries int           `json:"retries,omitempty"`
	Crashes []CrashConfig `json:"crashes,omitempty"`
}

// plan converts to the facade's fault plan.
func (f *FaultConfig) plan() *topk.FaultPlan {
	if f == nil {
		return nil
	}
	p := &topk.FaultPlan{Drop: f.Drop, Dup: f.Dup, Delay: f.Delay, Retries: f.Retries}
	for _, c := range f.Crashes {
		p.Crashes = append(p.Crashes, topk.Crash{Node: c.Node, From: c.From, Until: c.Until})
	}
	return p
}

// Config describes one tenant's monitor — the JSON body of a tenant-create
// request, and (fully populated) the server's per-tenant defaults. Zero
// fields inherit the server default; note that seed 0 therefore means "the
// default seed", not seed zero.
type Config struct {
	Nodes   int          `json:"nodes,omitempty"`
	K       int          `json:"k,omitempty"`
	Eps     string       `json:"eps,omitempty"`     // "p/q", e.g. "1/8"
	Engine  string       `json:"engine,omitempty"`  // "lockstep" | "live"
	Shards  int          `json:"shards,omitempty"`  // live engine workers; 0 = GOMAXPROCS
	Monitor string       `json:"monitor,omitempty"` // algorithm name, e.g. "approx"
	Seed    uint64       `json:"seed,omitempty"`
	Faults  *FaultConfig `json:"faults,omitempty"`
}

// withDefaults fills zero fields from d.
func (c Config) withDefaults(d Config) Config {
	if c.Nodes == 0 {
		c.Nodes = d.Nodes
	}
	if c.K == 0 {
		c.K = d.K
	}
	if c.Eps == "" {
		c.Eps = d.Eps
	}
	if c.Engine == "" {
		c.Engine = d.Engine
	}
	if c.Shards == 0 {
		c.Shards = d.Shards
	}
	if c.Monitor == "" {
		c.Monitor = d.Monitor
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.Faults == nil {
		c.Faults = d.Faults
	}
	return c
}

// baseDefaults is the root of the default chain: a server constructed with
// a partial defaults Config still has every field populated.
var baseDefaults = Config{
	Nodes:   64,
	K:       4,
	Eps:     "1/8",
	Engine:  "lockstep",
	Monitor: "approx",
	Seed:    1,
}

// build constructs the tenant monitor. c must be fully populated
// (withDefaults applied).
func (c Config) build() (*topk.Monitor, error) {
	e, err := topk.ParseEpsilon(c.Eps)
	if err != nil {
		return nil, err
	}
	engine, err := topk.ParseEngine(c.Engine)
	if err != nil {
		return nil, err
	}
	algo, err := topk.ParseAlgorithm(c.Monitor)
	if err != nil {
		return nil, err
	}
	return topk.New(c.K, e,
		topk.WithNodes(c.Nodes),
		topk.WithEngine(engine),
		topk.WithShards(c.Shards),
		topk.WithMonitor(algo),
		topk.WithSeed(c.Seed),
		topk.WithFaults(c.Faults.plan()))
}

// Tenant is one entry of the pool: an immutable name/config pair and the
// monitor serving it. The monitor carries its own mutex; the pool never
// holds its lock across monitor calls, so one tenant's slow operation
// (Reset, Close, a large batch) cannot stall another tenant's ingest.
//
// The unexported fields are the durability state (see durable.go): the
// tenant mutex serializes COMMITTED mutations (journal order == commit
// order) and is what graceful shutdown takes to drain in-flight updates.
// On a volatile pool (no data dir) log is nil and the commit methods
// reduce to plain monitor calls under the same mutex.
type Tenant struct {
	Name string
	Cfg  Config
	Mon  *topk.Monitor

	mu        sync.Mutex        // serializes journal+commit; drains on close
	store     *wal.Store        // nil on a volatile pool
	log       *wal.Log          // nil on a volatile pool or after close
	epoch     uint64            // current config epoch (bumped by reset)
	seed      uint64            // seed of the current epoch
	seqs      map[string]uint64 // exactly-once watermark: client → highest seq
	sinceSnap int               // committed steps since the last snapshot
}

// nameRE bounds tenant names: URL-safe, non-empty, short. "tenants" is
// reserved for the listing route.
var nameRE = regexp.MustCompile(`^[A-Za-z0-9_-]{1,64}$`)

// ValidName reports whether s is an acceptable tenant name.
func ValidName(s string) bool {
	return s != "tenants" && nameRE.MatchString(s)
}

// Pool owns the tenant map: lookup under RLock, create/delete under a
// short Lock covering only the map mutation. Monitors are constructed and
// closed OUTSIDE the pool lock.
type Pool struct {
	defaults Config
	lazy     bool
	max      int
	store    *wal.Store // nil = volatile pool (no durability)

	mu      sync.RWMutex
	tenants map[string]*Tenant
}

// NewPool returns a pool whose lazily-created tenants use defaults (zero
// fields fall back to the package baseline: 64 nodes, k=4, ε=1/8,
// lockstep, approx, seed 1). lazy enables creation on first ingest; max
// bounds the tenant count (0 = unlimited). A non-nil store makes every
// tenant durable: creations and accepted batches are journaled, and the
// pool takes ownership of the store (Pool.Close closes it).
func NewPool(defaults Config, lazy bool, max int, store *wal.Store) *Pool {
	return &Pool{
		defaults: defaults.withDefaults(baseDefaults),
		lazy:     lazy,
		max:      max,
		store:    store,
		tenants:  make(map[string]*Tenant),
	}
}

// Defaults returns the fully-populated per-server default config.
func (p *Pool) Defaults() Config { return p.defaults }

// Get returns the named tenant, or ErrUnknownTenant.
func (p *Pool) Get(name string) (*Tenant, error) {
	p.mu.RLock()
	t := p.tenants[name]
	p.mu.RUnlock()
	if t == nil {
		return nil, ErrUnknownTenant
	}
	return t, nil
}

// GetOrCreate returns the named tenant, lazily creating it from the server
// defaults when the pool allows lazy creation. The monitor is built outside
// the pool lock; when two ingests race on a fresh tenant, both build
// (identical, both from defaults) and the loser's monitor is closed.
func (p *Pool) GetOrCreate(name string) (*Tenant, error) {
	if t, err := p.Get(name); err == nil {
		return t, nil
	}
	if !p.lazy {
		return nil, ErrUnknownTenant
	}
	t, err := p.Create(name, Config{})
	if errors.Is(err, ErrTenantExists) {
		return p.Get(name)
	}
	return t, err
}

// Create builds a tenant from cfg (zero fields inherit the server
// defaults) and inserts it, failing with ErrTenantExists / ErrTooManyTenant
// / ErrBadName without side effects.
func (p *Pool) Create(name string, cfg Config) (*Tenant, error) {
	if !ValidName(name) {
		return nil, fmt.Errorf("%w: %q", ErrBadName, name)
	}
	// Cheap pre-checks before paying for a monitor (re-checked on insert).
	p.mu.RLock()
	_, exists := p.tenants[name]
	full := p.max > 0 && len(p.tenants) >= p.max
	p.mu.RUnlock()
	if exists {
		return nil, ErrTenantExists
	}
	if full {
		return nil, ErrTooManyTenant
	}

	cfg = cfg.withDefaults(p.defaults)
	mon, err := cfg.build()
	if err != nil {
		return nil, err
	}
	t := &Tenant{Name: name, Cfg: cfg, Mon: mon, store: p.store, seed: cfg.Seed}

	// The tenant mutex is held across the map insert and the create-record
	// journaling below, so a racing ingest that wins the map lookup still
	// blocks until the tenant is durably created (or rolled back).
	t.mu.Lock()
	defer t.mu.Unlock()

	p.mu.Lock()
	if _, ok := p.tenants[name]; ok {
		p.mu.Unlock()
		mon.Close()
		return nil, ErrTenantExists
	}
	if p.max > 0 && len(p.tenants) >= p.max {
		p.mu.Unlock()
		mon.Close()
		return nil, ErrTooManyTenant
	}
	p.tenants[name] = t
	p.mu.Unlock()

	if p.store != nil {
		if err := t.journalCreate(); err != nil {
			p.mu.Lock()
			delete(p.tenants, name)
			p.mu.Unlock()
			mon.Close()
			return nil, err
		}
	}
	return t, nil
}

// Delete removes the tenant, journals the tombstone, deletes its files,
// and closes its monitor (outside the pool lock — in-flight requests
// holding the *Tenant see ErrClosed from the monitor, never a torn state;
// the tenant mutex drains any in-flight commit before the log closes).
func (p *Pool) Delete(name string) error {
	p.mu.Lock()
	t := p.tenants[name]
	delete(p.tenants, name)
	p.mu.Unlock()
	if t == nil {
		return ErrUnknownTenant
	}
	return t.closeDurable()
}

// List returns a snapshot of the tenants, sorted by name.
func (p *Pool) List() []*Tenant {
	p.mu.RLock()
	out := make([]*Tenant, 0, len(p.tenants))
	for _, t := range p.tenants {
		out = append(out, t)
	}
	p.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Close quiesces every tenant — each tenant mutex is taken, so in-flight
// commits finish — then fsyncs and closes logs, monitors, and the store.
// Durable files stay on disk for the next boot.
func (p *Pool) Close() {
	p.mu.Lock()
	ts := p.tenants
	p.tenants = make(map[string]*Tenant)
	p.mu.Unlock()
	for _, t := range ts {
		t.closeQuiesced()
	}
	if p.store != nil {
		p.store.Close()
	}
}
