package topk_test

import (
	"reflect"
	"strings"
	"testing"

	"topkmon/internal/eps"
	"topkmon/topk"
)

func TestNewValidation(t *testing.T) {
	e := topk.MustEpsilon(1, 8)
	cases := []struct {
		name string
		k    int
		opts []topk.Option
		want string
	}{
		{"no nodes", 3, nil, "node count"},
		{"k too large", 9, []topk.Option{topk.WithNodes(8)}, "outside"},
		{"k zero", 0, []topk.Option{topk.WithNodes(8)}, "outside"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := topk.New(tc.k, e, tc.opts...)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("New error = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestEpsilonValidation(t *testing.T) {
	if _, err := topk.NewEpsilon(3, 2); err == nil {
		t.Error("ε ≥ 1 accepted")
	}
	if _, err := topk.NewEpsilon(-1, 2); err == nil {
		t.Error("ε < 0 accepted")
	}
	e := topk.MustEpsilon(2, 16)
	if e.String() != "1/8" {
		t.Errorf("ε not reduced: %s", e)
	}
	if !topk.Zero.IsZero() {
		t.Error("Zero.IsZero() = false")
	}
}

func TestPushValidation(t *testing.T) {
	m, err := topk.New(2, topk.MustEpsilon(1, 4), topk.WithNodes(4))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Update(4, 1); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := m.Update(-1, 1); err == nil {
		t.Error("negative node accepted")
	}
	if err := m.Update(0, -5); err == nil {
		t.Error("negative value accepted")
	}
	if err := m.Update(0, topk.MaxValue+1); err == nil {
		t.Error("oversized value accepted")
	}
	// A rejected batch must not commit a step.
	if err := m.UpdateBatch([]topk.Update{{Node: 0, Value: 1}, {Node: 99, Value: 1}}); err == nil {
		t.Error("batch with bad node accepted")
	}
	if got := m.Steps(); got != 0 {
		t.Errorf("rejected batch committed %d steps", got)
	}
}

func TestReadsBeforeFirstStep(t *testing.T) {
	m, err := topk.New(2, topk.MustEpsilon(1, 4), topk.WithNodes(4))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if got := m.TopK(nil); len(got) != 0 {
		t.Errorf("TopK before first step = %v", got)
	}
	if err := m.Check(); err != nil {
		t.Errorf("Check before first step: %v", err)
	}
	if c := m.Cost(); c.Messages != 0 || c.Steps != 0 {
		t.Errorf("Cost before first step = %+v", c)
	}
}

func TestStagedPushInvisibleUntilFlush(t *testing.T) {
	m, err := topk.New(1, topk.Zero, topk.WithNodes(3), topk.WithMonitor(topk.Naive))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.UpdateBatch([]topk.Update{{0, 10}, {1, 20}, {2, 30}}); err != nil {
		t.Fatal(err)
	}
	if got := m.TopK(nil); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("TopK = %v, want [2]", got)
	}
	// Stage a push that would change the maximum; not visible yet.
	if err := m.Update(0, 99); err != nil {
		t.Fatal(err)
	}
	if got := m.TopK(nil); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("staged push visible before Flush: TopK = %v", got)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := m.TopK(nil); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("TopK after Flush = %v, want [0]", got)
	}
	if got := m.Steps(); got != 2 {
		t.Errorf("Steps = %d, want 2", got)
	}
}

func TestHeartbeatFlushIsQuiet(t *testing.T) {
	m, err := topk.New(1, topk.MustEpsilon(1, 4), topk.WithNodes(4))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.UpdateBatch([]topk.Update{{0, 100}, {1, 50}, {2, 10}, {3, 5}}); err != nil {
		t.Fatal(err)
	}
	settled := m.Cost()
	for range 10 {
		if err := m.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	c := m.Cost()
	if c.Steps != settled.Steps+10 {
		t.Errorf("heartbeats committed %d steps, want %d", c.Steps, settled.Steps+10)
	}
	if c.Messages != settled.Messages {
		t.Errorf("quiet heartbeats spent %d messages", c.Messages-settled.Messages)
	}
}

// TestQuietFlushNoIndexFallbacks is the facade-level quiet-step regression
// for the filter-interval mirror: once the monitor has settled, heartbeat
// flushes with unchanged values drain violations via mirror-routed sweeps,
// so Cost.IndexFallbacks must not move — on either engine. A regression to
// full-scan violation sweeps would not move this counter (full scans forced
// by routing policy bill fallbacks only for unroutable predicates), but a
// regression in the routing POLICY — PredViolating reclassified as
// unroutable — shows up here immediately.
func TestQuietFlushNoIndexFallbacks(t *testing.T) {
	for name, ek := range map[string]topk.EngineKind{"lockstep": topk.Lockstep, "live": topk.Live} {
		t.Run(name, func(t *testing.T) {
			m, err := topk.New(2, topk.MustEpsilon(1, 4), topk.WithNodes(16), topk.WithEngine(ek))
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			updates := make([]topk.Update, 16)
			for i := range updates {
				updates[i] = topk.Update{Node: i, Value: int64(100 + i*10)}
			}
			if err := m.UpdateBatch(updates); err != nil {
				t.Fatal(err)
			}
			settled := m.Cost()
			for range 20 {
				if err := m.Flush(); err != nil {
					t.Fatal(err)
				}
			}
			c := m.Cost()
			if c.IndexFallbacks != settled.IndexFallbacks {
				t.Errorf("quiet flushes moved IndexFallbacks by %d, want 0",
					c.IndexFallbacks-settled.IndexFallbacks)
			}
		})
	}
}

func TestSubscribe(t *testing.T) {
	m, err := topk.New(1, topk.Zero, topk.WithNodes(3), topk.WithMonitor(topk.Naive))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	events := m.Subscribe()

	if err := m.UpdateBatch([]topk.Update{{0, 10}, {1, 20}, {2, 30}}); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		if ev.Step != 1 || !reflect.DeepEqual(ev.TopK, []int{2}) {
			t.Errorf("event = %+v, want step 1 topk [2]", ev)
		}
	default:
		t.Fatal("no event after first step")
	}

	// A step that does not change the set delivers nothing.
	if err := m.UpdateBatch([]topk.Update{{1, 21}}); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		t.Errorf("unchanged set delivered event %+v", ev)
	default:
	}

	// A step that moves the maximum delivers the new set.
	if err := m.UpdateBatch([]topk.Update{{0, 99}}); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		if ev.Step != 3 || !reflect.DeepEqual(ev.TopK, []int{0}) {
			t.Errorf("event = %+v, want step 3 topk [0]", ev)
		}
	default:
		t.Fatal("no event after set change")
	}

	// Close closes the subscription.
	m.Close()
	if _, open := <-events; open {
		t.Error("subscription channel still open after Close")
	}
}

func TestUnsubscribe(t *testing.T) {
	m, err := topk.New(1, topk.Zero, topk.WithNodes(3), topk.WithMonitor(topk.Naive))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	gone := m.Subscribe()
	kept := m.Subscribe()

	// Unsubscribe closes exactly the removed channel; the survivor keeps
	// receiving.
	m.Unsubscribe(gone)
	if _, open := <-gone; open {
		t.Fatal("unsubscribed channel still open")
	}
	if err := m.UpdateBatch([]topk.Update{{0, 10}, {1, 20}, {2, 30}}); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-kept:
		if ev.Step != 1 {
			t.Errorf("surviving subscriber got %+v", ev)
		}
	default:
		t.Fatal("surviving subscriber got nothing after set change")
	}

	// Foreign and repeated unsubscribes are no-ops, including after Close.
	m.Unsubscribe(gone)
	m.Unsubscribe(make(chan topk.Event))
	m.Close()
	m.Unsubscribe(kept)
}

func TestParsers(t *testing.T) {
	if e, err := topk.ParseEpsilon("1/8"); err != nil || e.String() != "1/8" {
		t.Errorf("ParseEpsilon(1/8) = %v, %v", e, err)
	}
	for _, bad := range []string{"", "0.125", "1/0", "8/1", "x/y"} {
		if _, err := topk.ParseEpsilon(bad); err == nil {
			t.Errorf("ParseEpsilon(%q) accepted", bad)
		}
	}
	if k, err := topk.ParseEngine("live"); err != nil || k != topk.Live {
		t.Errorf("ParseEngine(live) = %v, %v", k, err)
	}
	if _, err := topk.ParseEngine("vax"); err == nil {
		t.Error("ParseEngine(vax) accepted")
	}
	for in, want := range map[string]topk.Algorithm{
		"approx": topk.Approx, "exact": topk.Exact, "exact-mid": topk.Exact,
		"topk": topk.TopKProtocol, "topk-protocol": topk.TopKProtocol,
		"dense": topk.Dense, "half-eps": topk.HalfEps,
		"naive": topk.Naive, "mid-naive": topk.MidNaive,
	} {
		if a, err := topk.ParseAlgorithm(in); err != nil || a != want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v", in, a, err, want)
		}
	}
	if _, err := topk.ParseAlgorithm("quantum"); err == nil {
		t.Error("ParseAlgorithm(quantum) accepted")
	}

	plan, err := topk.ParseFaultPlan("drop=0.1,dup=0.05,delay=0.2,retries=5,crash=2@100:300,crash=5@500:700")
	if err != nil {
		t.Fatal(err)
	}
	want := &topk.FaultPlan{Drop: 0.1, Dup: 0.05, Delay: 0.2, Retries: 5,
		Crashes: []topk.Crash{{Node: 2, From: 100, Until: 300}, {Node: 5, From: 500, Until: 700}}}
	if !reflect.DeepEqual(plan, want) {
		t.Errorf("ParseFaultPlan = %+v, want %+v", plan, want)
	}
	if p, err := topk.ParseFaultPlan(""); err != nil || p != nil {
		t.Errorf("ParseFaultPlan(\"\") = %v, %v; want nil, nil", p, err)
	}
	for _, bad := range []string{"drop", "drop=x", "retries=many", "crash=2", "crash=2@5", "warp=1"} {
		if _, err := topk.ParseFaultPlan(bad); err == nil {
			t.Errorf("ParseFaultPlan(%q) accepted", bad)
		}
	}
}

func TestCheckWiring(t *testing.T) {
	// The naive monitor on distinct values is always exact, so Check
	// passes; this exercises the referee wiring end to end.
	m, err := topk.New(2, topk.MustEpsilon(1, 8), topk.WithNodes(8), topk.WithMonitor(topk.Naive))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	batch := []topk.Update{{0, 10}, {1, 400}, {2, 30}, {3, 900}, {4, 55}, {5, 1}, {6, 77}, {7, 300}}
	if err := m.UpdateBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := m.Check(); err != nil {
		t.Errorf("Check on a valid output: %v", err)
	}
	if got := m.TopK(nil); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Errorf("TopK = %v, want [1 3]", got)
	}
}

func TestClosedMonitor(t *testing.T) {
	m, err := topk.New(1, topk.Zero, topk.WithNodes(2), topk.WithMonitor(topk.Naive))
	if err != nil {
		t.Fatal(err)
	}
	m.UpdateBatch([]topk.Update{{0, 5}, {1, 2}})
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if err := m.Update(0, 1); err != topk.ErrClosed {
		t.Errorf("Update after Close = %v, want ErrClosed", err)
	}
	if err := m.Flush(); err != topk.ErrClosed {
		t.Errorf("Flush after Close = %v, want ErrClosed", err)
	}
	if err := m.Reset(1); err != topk.ErrClosed {
		t.Errorf("Reset after Close = %v, want ErrClosed", err)
	}
	// Reads stay valid.
	if got := m.TopK(nil); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("TopK after Close = %v", got)
	}
	if c := m.Cost(); c.Steps != 1 {
		t.Errorf("Cost after Close = %+v", c)
	}
	// Subscribing after Close yields a closed channel.
	if _, open := <-m.Subscribe(); open {
		t.Error("Subscribe after Close returned an open channel")
	}
}

// TestAllAlgorithmsRun smoke-tests every selectable algorithm through the
// facade on a small distinct-valued workload, Check-validated each step.
func TestAllAlgorithmsRun(t *testing.T) {
	algos := []topk.Algorithm{
		topk.Approx, topk.Exact, topk.TopKProtocol, topk.HalfEps, topk.Naive, topk.MidNaive,
	}
	for _, algo := range algos {
		t.Run(algo.String(), func(t *testing.T) {
			const n, k = 12, 3
			m, err := topk.New(k, topk.MustEpsilon(1, 8), topk.WithNodes(n),
				topk.WithMonitor(algo), topk.WithSeed(3))
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			if m.AlgorithmName() == "" {
				t.Error("empty algorithm name")
			}
			batch := make([]topk.Update, n)
			for step := 0; step < 40; step++ {
				for i := range batch {
					// Distinct, drifting values (Exact assumes distinctness).
					batch[i] = topk.Update{Node: i, Value: int64(1000 + 100*i + (step*37+i*13)%90)}
				}
				if err := m.UpdateBatch(batch); err != nil {
					t.Fatal(err)
				}
				if err := m.Check(); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			}
			if got := len(m.TopK(nil)); got != k {
				t.Errorf("|TopK| = %d, want %d", got, k)
			}
		})
	}
}

// TestWrapEpsRoundTrip pins the scaffolding conversion used by internal/sim.
func TestWrapEpsRoundTrip(t *testing.T) {
	e := eps.MustNew(3, 16)
	if got := topk.WrapEps(e).String(); got != "3/16" {
		t.Errorf("WrapEps → %s", got)
	}
}
