// Package lockstep implements the cluster interface as a deterministic
// sequential simulation: nodes are plain structs, rounds are loops, and the
// only nondeterminism comes from explicitly seeded PRNGs. It is the primary
// substrate for unit tests, property tests, and the experiment harness,
// and is — by construction — exactly the synchronous unit-cost model of
// Section 2.
//
// The engine keeps a value-bucket index and a filter-interval mirror
// (internal/vindex) over its nodes, maintained incrementally at every node
// mutation: predicate-routed primitives (Sweep, Collect) visit only the
// nodes whose values can match the predicate's wire.Pred.Bounds interval,
// and violation sweeps visit exactly the mirror's violator set, so their
// step cost tracks the number of plausible matchers instead of n. Tag
// predicates and domain-covering intervals fall back to the full scan.
// Routing is invisible to protocols: reports stay in id order, only
// matching nodes consume randomness, and messages are counted identically —
// asserted byte-for-byte by TestIndexedScanMatchesFullScan.
package lockstep

import (
	"fmt"

	"topkmon/internal/eps"
	"topkmon/internal/filter"
	"topkmon/internal/metrics"
	"topkmon/internal/nodecore"
	"topkmon/internal/rngx"
	"topkmon/internal/vindex"
	"topkmon/internal/wire"
)

// Engine is a deterministic lockstep cluster of n nodes.
type Engine struct {
	nodes []*nodecore.Node
	ctr   *metrics.Counters
	rng   *rngx.Source
	maxV  int64 // running Δ for message-size accounting

	// router holds the value-bucket index (maintained on Advance) and the
	// filter-interval mirror (maintained at every filter assignment) over
	// the nodes, plus the scratch that turns predicates into id-ordered
	// scan lists. visited counts the node structs predicate-routed
	// primitives actually touched — the observable the index shrinks from
	// n per round to the plausible-matcher count (reported by E12).
	router  vindex.Router
	visited int64

	// FullScan forces the full-scan path everywhere. Ablation scaffolding
	// (like DirectReports) for the index equivalence property tests and
	// BenchmarkViolationSweep; leave false otherwise. It never perturbs
	// outputs, counters, or coin flips — only the engine-side scan cost.
	FullScan bool

	// sweepBuf backs the slices returned by Sweep/directSweep; collectBufs
	// double-buffer Collect so protocols holding one Collect result across
	// a second Collect (DENSEPROTOCOL, the Cor 5.9 monitor) stay correct.
	// See the ownership contract on cluster.Cluster.
	sweepBuf    []wire.Report
	collectBufs [2][]wire.Report
	collectIdx  int

	// DirectReports disables the EXISTENCE protocol: every matching node
	// reports in a single round, each paying one message — the naive
	// reporting scheme the paper's Section 3 improves on. Used by the
	// E11 ablation; leave false for the paper's algorithms.
	DirectReports bool
}

// serverRNG is the Child id of the server-side randomness stream, shared
// with the live engine so both derive identical server coin flips from the
// same seed.
const serverRNG = 0xC0FFEE

// New returns an engine with n nodes, all values 0, all filters [0, ∞].
func New(n int, seed uint64) *Engine {
	if n < 1 {
		panic("lockstep: need at least one node")
	}
	root := rngx.New(seed)
	e := &Engine{
		nodes:  make([]*nodecore.Node, n),
		ctr:    metrics.NewCounters(),
		rng:    root.Child(serverRNG),
		maxV:   1,
		router: vindex.Router{Idx: vindex.New(0, n), Mir: vindex.NewMirror(0, n)},
	}
	for i := range e.nodes {
		e.nodes[i] = nodecore.New(i, root)
	}
	return e
}

// Reset implements cluster.Cluster: it rewinds the engine to the state
// New(len(nodes), seed) constructs, reusing nodes, counters, and the
// sweep/collect buffers. A reset engine replays a fresh engine's run
// bit for bit (asserted by the Reset property tests), which lets the
// experiment harness reuse one engine across all trials of a table cell.
func (e *Engine) Reset(seed uint64) {
	root := rngx.New(seed)
	for _, nd := range e.nodes {
		nd.Reset(root)
	}
	e.ctr.Reset()
	e.rng.Reseed(root.ChildSeed(serverRNG))
	e.maxV = 1
	e.router.Idx.Reset()
	e.router.Mir.Reset()
	e.visited = 0
	e.DirectReports = false
	e.FullScan = false
}

// N implements cluster.Cluster.
func (e *Engine) N() int { return len(e.nodes) }

// Counters implements cluster.Cluster.
func (e *Engine) Counters() *metrics.Counters { return e.ctr }

// Rand implements cluster.Cluster.
func (e *Engine) Rand() *rngx.Source { return e.rng }

// Advance installs the next observations; it is simulation scaffolding (the
// streams are observed locally at the nodes) and costs nothing.
func (e *Engine) Advance(values []int64) {
	if len(values) != len(e.nodes) {
		panic(fmt.Sprintf("lockstep: Advance with %d values for %d nodes", len(values), len(e.nodes)))
	}
	for i, nd := range e.nodes {
		v := values[i]
		if v < 0 || v > eps.MaxValue {
			panic(fmt.Sprintf("lockstep: value %d for node %d outside [0, %d]", v, i, eps.MaxValue))
		}
		nd.Observe(v)
		e.router.Idx.Update(i, v)
		e.router.Mir.SetValue(i, v)
		if v > e.maxV {
			e.maxV = v
		}
	}
}

// EndStep closes the current step's round accounting.
func (e *Engine) EndStep() { e.ctr.EndStep() }

// Values implements cluster.Inspector.
func (e *Engine) Values() []int64 {
	return e.ValuesInto(make([]int64, 0, len(e.nodes)))
}

// ValuesInto implements cluster.Inspector: it appends all current node
// values to dst[:0] and returns it, growing dst only when too small.
func (e *Engine) ValuesInto(dst []int64) []int64 {
	dst = dst[:0]
	for _, nd := range e.nodes {
		dst = append(dst, nd.Value)
	}
	return dst
}

// Filters implements cluster.Inspector.
func (e *Engine) Filters() []filter.Interval {
	return e.FiltersInto(make([]filter.Interval, 0, len(e.nodes)))
}

// FiltersInto implements cluster.Inspector: it appends all current node
// filters to dst[:0] and returns it, growing dst only when too small.
func (e *Engine) FiltersInto(dst []filter.Interval) []filter.Interval {
	dst = dst[:0]
	for _, nd := range e.nodes {
		dst = append(dst, nd.Filter)
	}
	return dst
}

// Tags implements cluster.Inspector.
func (e *Engine) Tags() []wire.Tag {
	ts := make([]wire.Tag, len(e.nodes))
	for i, nd := range e.nodes {
		ts[i] = nd.Tag
	}
	return ts
}

// Node exposes one node for white-box tests. Not part of the cluster
// interfaces and never used by protocols. Callers must treat the node as
// read-only: mutating Value or Filter behind the engine's back desyncs the
// value index and the filter mirror (see the nodecore state-mutation
// contract) — assign filters through SetFilter instead.
func (e *Engine) Node(i int) *nodecore.Node { return e.nodes[i] }

// VisitedNodes returns the cumulative number of node structs the
// predicate-routed primitives (Sweep, DetectViolation, Collect) have
// touched since construction or the last Reset — per sweep round, the size
// of the scan list. Simulation scaffolding for measuring the value index's
// selectivity (experiment E12); it is not message accounting and not part
// of the cluster interfaces.
func (e *Engine) VisitedNodes() int64 { return e.visited }

// scanList returns the nodes a predicate-routed primitive must visit, in
// ascending id order — vindex.Router.ScanList (the routing policy shared
// with the live engine's shards) behind the FullScan ablation toggle.
// Non-routable predicates bill one full-scan fallback on the counters; the
// decision is predicate-only, so the live engine counts identically and the
// FullScan toggle never perturbs the count.
func (e *Engine) scanList(p wire.Pred) []*nodecore.Node {
	if !vindex.Routable(p) {
		e.ctr.IndexFallback()
		return e.nodes
	}
	if e.FullScan {
		return e.nodes
	}
	return e.router.ScanList(p, e.nodes, 0)
}

func (e *Engine) count(ch metrics.Channel, k wire.Kind) {
	e.ctr.Count(ch, k.String(), wire.MsgBits(k, len(e.nodes), e.maxV))
}

// BroadcastRule implements cluster.Cluster. Each node's derived filter is
// re-mirrored after the rule applies — the mirror needs no tag state of its
// own, it records what the node actually holds.
func (e *Engine) BroadcastRule(rule *wire.FilterRule) {
	e.count(metrics.Broadcast, wire.KindFilterRule)
	e.ctr.Rounds(1)
	for _, nd := range e.nodes {
		nd.ApplyFilterRule(rule)
		e.router.Mir.SetFilter(nd.ID, nd.Filter)
	}
}

// SetFilter implements cluster.Cluster.
func (e *Engine) SetFilter(id int, iv filter.Interval) {
	e.count(metrics.ServerToNode, wire.KindSetFilter)
	e.nodes[id].SetFilter(iv)
	e.router.Mir.SetFilter(id, iv)
}

// SetTagFilter implements cluster.Cluster.
func (e *Engine) SetTagFilter(id int, t wire.Tag, iv filter.Interval) {
	e.count(metrics.ServerToNode, wire.KindSetFilter)
	nd := e.nodes[id]
	nd.SetTag(t)
	nd.SetFilter(iv)
	e.router.Mir.SetFilter(id, iv)
}

// Probe implements cluster.Cluster.
func (e *Engine) Probe(id int) wire.Report {
	e.count(metrics.ServerToNode, wire.KindProbeRequest)
	e.count(metrics.NodeToServer, wire.KindProbeReply)
	e.ctr.Rounds(1)
	nd := e.nodes[id]
	return wire.Report{ID: id, Value: nd.Value, Dir: nd.Violation()}
}

// Collect implements cluster.Cluster. Results alternate between two
// engine-owned buffers, honouring the Cluster contract that a Collect result
// survives exactly one further Collect. The scan is routed through the value
// index when the predicate exposes bounds, so server-side work tracks the
// plausible matchers, not n; the message cost (1 broadcast + 1 per match) is
// identical either way.
func (e *Engine) Collect(p wire.Pred) []wire.Report {
	e.count(metrics.Broadcast, wire.KindCollect)
	e.ctr.Rounds(1)
	out := e.collectBufs[e.collectIdx][:0]
	scan := e.scanList(p)
	e.visited += int64(len(scan))
	for _, nd := range scan {
		if nd.Match(p) {
			e.count(metrics.NodeToServer, wire.KindCollectReply)
			out = append(out, wire.Report{ID: nd.ID, Value: nd.Value, Dir: nd.Violation()})
		}
	}
	e.collectBufs[e.collectIdx] = out
	e.collectIdx ^= 1
	return out
}

// Sweep implements cluster.Cluster: the EXISTENCE protocol of Lemma 3.1.
// Nodes matching the predicate send independently with probability
// p_r = 2^r/n per round; the first non-empty round terminates the sweep
// (one halt broadcast). With no matching node the sweep is silent and free.
func (e *Engine) Sweep(p wire.Pred) []wire.Report {
	if e.DirectReports {
		return e.directSweep(p)
	}
	// The candidate list is stable across the sweep's rounds: values only
	// change on Advance, which cannot interleave with a running sweep.
	scan := e.scanList(p)
	gamma := nodecore.ExistenceRounds(len(e.nodes))
	for r := 0; r <= gamma; r++ {
		e.ctr.Rounds(1)
		e.visited += int64(len(scan))
		senders := e.sweepBuf[:0]
		for _, nd := range scan {
			if nd.Match(p) && nd.ExistenceSend(r, len(e.nodes)) {
				e.count(metrics.NodeToServer, wire.KindExistenceReport)
				senders = append(senders, wire.Report{ID: nd.ID, Value: nd.Value, Dir: nd.Violation()})
			}
		}
		e.sweepBuf = senders[:0]
		if len(senders) > 0 {
			e.count(metrics.Broadcast, wire.KindHalt)
			return senders
		}
	}
	return nil
}

// directSweep is the naive reporting scheme (one round, every matching node
// sends); it is always correct but costs one message per matching node per
// sweep — the baseline against which Lemma 3.1's O(1) expectation wins.
func (e *Engine) directSweep(p wire.Pred) []wire.Report {
	e.ctr.Rounds(1)
	senders := e.sweepBuf[:0]
	scan := e.scanList(p)
	e.visited += int64(len(scan))
	for _, nd := range scan {
		if nd.Match(p) {
			e.count(metrics.NodeToServer, wire.KindExistenceReport)
			senders = append(senders, wire.Report{ID: nd.ID, Value: nd.Value, Dir: nd.Violation()})
		}
	}
	e.sweepBuf = senders[:0]
	if len(senders) == 0 {
		return nil
	}
	return senders
}

// DetectViolation implements cluster.Cluster: one violation sweep; among the
// terminating round's senders one is chosen uniformly (the server "processes
// one violation at a time in an arbitrary order").
func (e *Engine) DetectViolation() (wire.Report, bool) {
	senders := e.Sweep(wire.Violating())
	if len(senders) == 0 {
		return wire.Report{}, false
	}
	return senders[e.rng.Intn(len(senders))], true
}

// MaxFindInit implements cluster.Cluster.
func (e *Engine) MaxFindInit(floor int64, reset bool) {
	e.count(metrics.Broadcast, wire.KindMaxFindInit)
	e.ctr.Rounds(1)
	for _, nd := range e.nodes {
		nd.MaxFindInit(floor, reset)
	}
}

// MaxFindRaise implements cluster.Cluster.
func (e *Engine) MaxFindRaise(holder int, best int64) {
	e.count(metrics.Broadcast, wire.KindMaxFindRaise)
	e.ctr.Rounds(1)
	for _, nd := range e.nodes {
		nd.MaxFindRaise(holder, best)
	}
}

// MaxFindExclude implements cluster.Cluster.
func (e *Engine) MaxFindExclude(id int) {
	e.count(metrics.Broadcast, wire.KindMaxFindExclude)
	e.ctr.Rounds(1)
	for _, nd := range e.nodes {
		nd.MaxFindExclude(id)
	}
}
