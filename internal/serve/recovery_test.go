package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"topkmon/internal/wal"
	"topkmon/topk"
)

// durableServer builds a server journaling into dir. SnapshotEvery is
// pushed out of reach unless a test wants snapshots, so truncation-based
// kill points never trip the lost-data check by design of the test rather
// than of the system.
func durableServer(t *testing.T, dir string, snapEvery int) *Server {
	t.Helper()
	return newTestServer(t, Options{Durability: Durability{
		Dir: dir, Fsync: "never", SnapshotEvery: snapEvery,
	}})
}

// postSeq posts one batch with idempotency parameters and returns the
// decoded response.
func postSeq(t *testing.T, s *Server, tenant string, batch []topk.Update, client string, seq uint64) updateResponse {
	t.Helper()
	path := fmt.Sprintf("/v1/%s/update?client=%s&seq=%d", tenant, client, seq)
	rec := do(t, s, "POST", path, encodeBatch(t, batch))
	wantStatus(t, rec, 200)
	var resp updateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestRecoveryEquivalence is the durability layer's headline proof: drive
// a tenant to completion on a durable server, kill the log at every
// interesting byte offset — clean record boundaries, mid-frame-header,
// mid-CRC, mid-payload, and a flipped bit — restart, re-drive the SAME
// batches with the SAME client sequence numbers (the recovered prefix is
// absorbed as duplicates, the lost suffix recommits), and demand the
// final TopK set and the full JSON cost snapshot be byte-identical to an
// uninterrupted in-process monitor. Covered on both engines and with the
// fault injector armed, so even the injector's coin flips replay exactly.
func TestRecoveryEquivalence(t *testing.T) {
	const (
		n     = 48
		k     = 4
		steps = 60
		seed  = 11
	)
	cases := []struct {
		name   string
		cfg    Config
		opts   []topk.Option
		faults *topk.FaultPlan
	}{
		{
			name: "lockstep",
			cfg:  Config{Nodes: n, K: k, Eps: "1/8", Engine: "lockstep", Monitor: "approx", Seed: seed},
			opts: []topk.Option{topk.WithEngine(topk.Lockstep)},
		},
		{
			name: "live",
			cfg:  Config{Nodes: n, K: k, Eps: "1/8", Engine: "live", Shards: 3, Monitor: "approx", Seed: seed},
			opts: []topk.Option{topk.WithEngine(topk.Live), topk.WithShards(3)},
		},
		{
			name: "lockstep-faulty",
			cfg: Config{Nodes: n, K: k, Eps: "1/8", Engine: "lockstep", Monitor: "approx", Seed: seed,
				Faults: &FaultConfig{Drop: 0.05, Dup: 0.02, Delay: 0.05,
					Crashes: []CrashConfig{{Node: 3, From: 10, Until: 30}}}},
			opts: []topk.Option{topk.WithEngine(topk.Lockstep)},
			faults: &topk.FaultPlan{Drop: 0.05, Dup: 0.02, Delay: 0.05,
				Crashes: []topk.Crash{{Node: 3, From: 10, Until: 30}}},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			trace := makeTrace(n, steps, seed)

			// The uninterrupted reference: the facade, driven in-process.
			e := topk.MustEpsilon(1, 8)
			opts := append([]topk.Option{
				topk.WithNodes(n), topk.WithSeed(seed), topk.WithMonitor(topk.Approx),
			}, tc.opts...)
			if tc.faults != nil {
				opts = append(opts, topk.WithFaults(tc.faults))
			}
			direct, err := topk.New(k, e, opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer direct.Close()
			for _, batch := range trace {
				if err := direct.UpdateBatch(batch); err != nil {
					t.Fatal(err)
				}
			}
			wantTopK := fmt.Sprint(direct.TopK(nil))
			wantCost, err := json.Marshal(costSnapshot(direct))
			if err != nil {
				t.Fatal(err)
			}

			// One full durable run produces the reference log.
			src := t.TempDir()
			a := durableServer(t, src, 1<<20)
			cfgBody, _ := json.Marshal(tc.cfg)
			wantStatus(t, do(t, a, "PUT", "/v1/eq", string(cfgBody)), 201)
			for i, batch := range trace {
				if resp := postSeq(t, a, "eq", batch, "c", uint64(i+1)); resp.Duplicate {
					t.Fatalf("step %d: fresh seq reported duplicate", i)
				}
			}
			a.Close()
			full, err := os.ReadFile(filepath.Join(src, "eq.wal"))
			if err != nil {
				t.Fatal(err)
			}
			recs, valid := wal.DecodePrefix(full)
			if valid != int64(len(full)) || len(recs) != steps+1 {
				t.Fatalf("reference log: %d records, %d/%d valid bytes", len(recs), valid, len(full))
			}

			// Kill points: the config-record boundary, a handful of batch
			// boundaries, and for each chosen boundary the mid-frame-header
			// (+3), mid-CRC (+6), and mid-payload (+11) offsets behind it.
			boundaries := []int64{recs[0].End, recs[steps/3].End, recs[2*steps/3].End, recs[steps-1].End, int64(len(full))}
			var kills []int64
			for _, b := range boundaries {
				kills = append(kills, b)
				for _, off := range []int64{3, 6, 11} {
					if b+off < int64(len(full)) {
						kills = append(kills, b+off)
					}
				}
			}
			if testing.Short() {
				kills = []int64{recs[steps/3].End, recs[2*steps/3].End + 6, int64(len(full))}
			}

			check := func(t *testing.T, data []byte) {
				dir := t.TempDir()
				if err := os.WriteFile(filepath.Join(dir, "eq.wal"), data, 0o644); err != nil {
					t.Fatal(err)
				}
				b := durableServer(t, dir, 1<<20)

				// The recovered prefix must already be live.
				wantRecovered, _ := wal.DecodePrefix(data)
				rec := do(t, b, "GET", "/v1/eq", "")
				wantStatus(t, rec, 200)
				var info tenantInfo
				json.Unmarshal(rec.Body.Bytes(), &info)
				if got, want := info.Steps, int64(len(wantRecovered)-1); got != want {
					t.Fatalf("recovered %d steps, want %d", got, want)
				}

				// The client's crash protocol: unsure what landed, resend
				// everything with the original seqs. Recovered steps must
				// dedupe; lost ones must commit — exactly once either way.
				dups := 0
				for i, batch := range trace {
					if resp := postSeq(t, b, "eq", batch, "c", uint64(i+1)); resp.Duplicate {
						dups++
					}
				}
				if dups != len(wantRecovered)-1 {
					t.Fatalf("deduped %d retries, want %d", dups, len(wantRecovered)-1)
				}

				rec = do(t, b, "GET", "/v1/eq/topk", "")
				wantStatus(t, rec, 200)
				var tr topkResponse
				json.Unmarshal(rec.Body.Bytes(), &tr)
				if tr.Step != steps || fmt.Sprint(tr.TopK) != wantTopK {
					t.Fatalf("recovered topk %v (step %d) != direct %s (step %d)",
						tr.TopK, tr.Step, wantTopK, steps)
				}
				rec = do(t, b, "GET", "/v1/eq/cost", "")
				wantStatus(t, rec, 200)
				if got := bytes.TrimSpace(rec.Body.Bytes()); !bytes.Equal(got, wantCost) {
					t.Fatalf("recovered cost snapshot diverged\nrecovered: %s\ndirect:    %s", got, wantCost)
				}
				b.Close()
			}

			for _, kp := range kills {
				t.Run(fmt.Sprintf("kill@%d", kp), func(t *testing.T) {
					check(t, full[:kp])
				})
			}
			// Corrupted tail: a flipped bit mid-log invalidates that record
			// and discards everything after it; recovery still replays the
			// exact prefix and the retries recommit the rest.
			t.Run("bitflip", func(t *testing.T) {
				flip := append([]byte(nil), full...)
				flip[recs[steps/2].End+9] ^= 0x40
				check(t, flip)
			})
		})
	}
}

// TestExactlyOnceRetry pins the duplicate-seq contract on a single
// server, across distinct clients, and across a restart: one seq commits
// exactly one step no matter how many times it is sent.
func TestExactlyOnceRetry(t *testing.T) {
	dir := t.TempDir()
	s := durableServer(t, dir, 1<<20)
	wantStatus(t, do(t, s, "PUT", "/v1/x", `{"nodes":8,"k":2}`), 201)
	batch := []topk.Update{{Node: 1, Value: 100}, {Node: 2, Value: 50}}

	if resp := postSeq(t, s, "x", batch, "a", 1); resp.Duplicate || resp.Step != 1 {
		t.Fatalf("first send: %+v", resp)
	}
	for i := 0; i < 3; i++ {
		if resp := postSeq(t, s, "x", batch, "a", 1); !resp.Duplicate || resp.Step != 1 {
			t.Fatalf("retry %d: %+v", i, resp)
		}
	}
	// A different client's seq 1 is a different identity: it commits.
	if resp := postSeq(t, s, "x", batch, "b", 1); resp.Duplicate || resp.Step != 2 {
		t.Fatalf("client b: %+v", resp)
	}
	// No seq = no idempotency: every send commits.
	rec := do(t, s, "POST", "/v1/x/update", encodeBatch(t, batch))
	wantStatus(t, rec, 200)
	var resp updateResponse
	json.Unmarshal(rec.Body.Bytes(), &resp)
	if resp.Duplicate || resp.Step != 3 {
		t.Fatalf("seqless send: %+v", resp)
	}
	// A malformed seq is a client bug, not a silent non-idempotent commit.
	wantStatus(t, do(t, s, "POST", "/v1/x/update?seq=banana", encodeBatch(t, batch)), 400)

	// The watermark is durable: the retry is still a duplicate after a
	// crash-restart.
	s.Close()
	s2 := durableServer(t, dir, 1<<20)
	if resp := postSeq(t, s2, "x", batch, "a", 1); !resp.Duplicate || resp.Step != 3 {
		t.Fatalf("retry after restart: %+v", resp)
	}
}

// TestResetCompactionDurability: a reset compacts the log to a single
// fresh config record, recovery replays only the new epoch, and — via the
// snapshot written at compaction — a retried pre-reset seq is STILL a
// duplicate after a restart.
func TestResetCompactionDurability(t *testing.T) {
	dir := t.TempDir()
	s := durableServer(t, dir, 1<<20)
	wantStatus(t, do(t, s, "PUT", "/v1/x", `{"nodes":8,"k":2,"seed":7}`), 201)
	batch := []topk.Update{{Node: 0, Value: 10}}
	for i := 1; i <= 5; i++ {
		postSeq(t, s, "x", batch, "a", uint64(i))
	}
	before, _ := os.ReadFile(filepath.Join(dir, "x.wal"))
	wantStatus(t, do(t, s, "POST", "/v1/x/reset", ""), 200)
	after, _ := os.ReadFile(filepath.Join(dir, "x.wal"))
	if len(after) >= len(before) {
		t.Fatalf("compaction did not shrink the log: %d -> %d bytes", len(before), len(after))
	}
	recs, _ := wal.DecodePrefix(after)
	if len(recs) != 1 || recs[0].Kind != wal.KindConfig || recs[0].Epoch != 2 {
		t.Fatalf("compacted log = %+v", recs)
	}
	postSeq(t, s, "x", batch, "a", 6)
	s.Close()

	s2 := durableServer(t, dir, 1<<20)
	rec := do(t, s2, "GET", "/v1/x", "")
	wantStatus(t, rec, 200)
	var info tenantInfo
	json.Unmarshal(rec.Body.Bytes(), &info)
	if info.Steps != 1 {
		t.Fatalf("recovered %d steps after reset+1, want 1", info.Steps)
	}
	// Watermarks crossed the compaction: pre-reset seqs stay committed.
	if resp := postSeq(t, s2, "x", batch, "a", 3); !resp.Duplicate {
		t.Fatal("pre-reset seq recommitted after restart")
	}
	if resp := postSeq(t, s2, "x", batch, "a", 7); resp.Duplicate || resp.Step != 2 {
		t.Fatalf("fresh seq after restart: %+v", resp)
	}
}

// TestDeleteDurability: a deleted tenant stays deleted across a restart
// and leaves no files behind.
func TestDeleteDurability(t *testing.T) {
	dir := t.TempDir()
	s := durableServer(t, dir, 1<<20)
	wantStatus(t, do(t, s, "PUT", "/v1/gone", `{"nodes":8,"k":2}`), 201)
	postSeq(t, s, "gone", []topk.Update{{Node: 0, Value: 1}}, "a", 1)
	wantStatus(t, do(t, s, "DELETE", "/v1/gone", ""), 204)
	if _, err := os.Stat(filepath.Join(dir, "gone.wal")); !os.IsNotExist(err) {
		t.Fatalf("wal file survives delete: %v", err)
	}
	s.Close()
	s2 := durableServer(t, dir, 1<<20)
	wantStatus(t, do(t, s2, "GET", "/v1/gone", ""), 404)
}

// TestLostDataDetection: a log whose valid prefix is shorter than what the
// last snapshot vouched for means acked durable batches disappeared —
// boot must fail loudly instead of silently serving the shorter history.
func TestLostDataDetection(t *testing.T) {
	dir := t.TempDir()
	s := durableServer(t, dir, 2) // snapshot every 2 steps
	wantStatus(t, do(t, s, "PUT", "/v1/x", `{"nodes":8,"k":2}`), 201)
	for i := 1; i <= 4; i++ {
		postSeq(t, s, "x", []topk.Update{{Node: 0, Value: int64(i)}}, "a", uint64(i))
	}
	s.Close()

	path := filepath.Join(dir, "x.wal")
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := wal.DecodePrefix(full)
	if err := os.WriteFile(path, full[:recs[1].End], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = New(Options{Durability: Durability{Dir: dir, Fsync: "never"}})
	if err == nil {
		t.Fatal("boot succeeded on a log that lost snapshotted data")
	}
}

// TestDrainAndRetryAfter pins the overload/shutdown headers: tenant-cap
// 409/429 and body-too-large 413 carry Retry-After, and after Close every
// mutating route refuses with 503 + Retry-After while reads stay up.
func TestDrainAndRetryAfter(t *testing.T) {
	s := newTestServer(t, Options{MaxTenants: 1, MaxBodyBytes: 64})
	wantStatus(t, do(t, s, "PUT", "/v1/one", ""), 201)

	rec := do(t, s, "PUT", "/v1/one", "")
	wantStatus(t, rec, 409)
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("409 without Retry-After")
	}
	rec = do(t, s, "PUT", "/v1/two", "")
	wantStatus(t, rec, 429)
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	big := encodeBatch(t, makeTrace(8, 1, 1)[0])
	rec = do(t, s, "POST", "/v1/one/update", big)
	wantStatus(t, rec, 413)
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("413 without Retry-After")
	}

	s.Close()
	for _, req := range [][2]string{
		{"POST", "/v1/one/update"}, {"POST", "/v1/one/flush"}, {"POST", "/v1/one/reset"},
		{"PUT", "/v1/three"}, {"DELETE", "/v1/one"},
	} {
		rec := do(t, s, req[0], req[1], "")
		wantStatus(t, rec, 503)
		if rec.Header().Get("Retry-After") == "" {
			t.Fatalf("%s %s: 503 without Retry-After", req[0], req[1])
		}
	}
	// Reads survive the drain (the listener is shut down separately).
	wantStatus(t, do(t, s, "GET", "/healthz", ""), 200)
}

// TestVolatileUnchanged: without a data dir the server journals nothing
// and writes nothing — the pre-durability behavior, including working
// idempotency-free ingest.
func TestVolatileUnchanged(t *testing.T) {
	s := newTestServer(t, Options{Defaults: Config{Nodes: 8, K: 2}, Lazy: true})
	wantStatus(t, do(t, s, "POST", "/v1/v/update", `[{"node":0,"value":5}]`), 200)
	// Idempotency still works in-memory on a volatile server.
	b := []topk.Update{{Node: 1, Value: 3}}
	if resp := postSeq(t, s, "v", b, "a", 1); resp.Duplicate {
		t.Fatalf("volatile first send: %+v", resp)
	}
	if resp := postSeq(t, s, "v", b, "a", 1); !resp.Duplicate {
		t.Fatalf("volatile retry: %+v", resp)
	}
}
